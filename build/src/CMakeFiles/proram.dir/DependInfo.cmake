
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dynamic_policy.cc" "src/CMakeFiles/proram.dir/core/dynamic_policy.cc.o" "gcc" "src/CMakeFiles/proram.dir/core/dynamic_policy.cc.o.d"
  "/root/repo/src/core/oram_controller.cc" "src/CMakeFiles/proram.dir/core/oram_controller.cc.o" "gcc" "src/CMakeFiles/proram.dir/core/oram_controller.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/CMakeFiles/proram.dir/core/policy.cc.o" "gcc" "src/CMakeFiles/proram.dir/core/policy.cc.o.d"
  "/root/repo/src/core/static_policy.cc" "src/CMakeFiles/proram.dir/core/static_policy.cc.o" "gcc" "src/CMakeFiles/proram.dir/core/static_policy.cc.o.d"
  "/root/repo/src/core/super_block.cc" "src/CMakeFiles/proram.dir/core/super_block.cc.o" "gcc" "src/CMakeFiles/proram.dir/core/super_block.cc.o.d"
  "/root/repo/src/cpu/trace_cpu.cc" "src/CMakeFiles/proram.dir/cpu/trace_cpu.cc.o" "gcc" "src/CMakeFiles/proram.dir/cpu/trace_cpu.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/proram.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/proram.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/cache_hierarchy.cc" "src/CMakeFiles/proram.dir/mem/cache_hierarchy.cc.o" "gcc" "src/CMakeFiles/proram.dir/mem/cache_hierarchy.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/proram.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/proram.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/dram_backend.cc" "src/CMakeFiles/proram.dir/mem/dram_backend.cc.o" "gcc" "src/CMakeFiles/proram.dir/mem/dram_backend.cc.o.d"
  "/root/repo/src/mem/stream_prefetcher.cc" "src/CMakeFiles/proram.dir/mem/stream_prefetcher.cc.o" "gcc" "src/CMakeFiles/proram.dir/mem/stream_prefetcher.cc.o.d"
  "/root/repo/src/oram/config.cc" "src/CMakeFiles/proram.dir/oram/config.cc.o" "gcc" "src/CMakeFiles/proram.dir/oram/config.cc.o.d"
  "/root/repo/src/oram/integrity.cc" "src/CMakeFiles/proram.dir/oram/integrity.cc.o" "gcc" "src/CMakeFiles/proram.dir/oram/integrity.cc.o.d"
  "/root/repo/src/oram/path_oram.cc" "src/CMakeFiles/proram.dir/oram/path_oram.cc.o" "gcc" "src/CMakeFiles/proram.dir/oram/path_oram.cc.o.d"
  "/root/repo/src/oram/periodic.cc" "src/CMakeFiles/proram.dir/oram/periodic.cc.o" "gcc" "src/CMakeFiles/proram.dir/oram/periodic.cc.o.d"
  "/root/repo/src/oram/position_map.cc" "src/CMakeFiles/proram.dir/oram/position_map.cc.o" "gcc" "src/CMakeFiles/proram.dir/oram/position_map.cc.o.d"
  "/root/repo/src/oram/stash.cc" "src/CMakeFiles/proram.dir/oram/stash.cc.o" "gcc" "src/CMakeFiles/proram.dir/oram/stash.cc.o.d"
  "/root/repo/src/oram/tree.cc" "src/CMakeFiles/proram.dir/oram/tree.cc.o" "gcc" "src/CMakeFiles/proram.dir/oram/tree.cc.o.d"
  "/root/repo/src/oram/unified_oram.cc" "src/CMakeFiles/proram.dir/oram/unified_oram.cc.o" "gcc" "src/CMakeFiles/proram.dir/oram/unified_oram.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/proram.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/proram.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/secure_memory.cc" "src/CMakeFiles/proram.dir/sim/secure_memory.cc.o" "gcc" "src/CMakeFiles/proram.dir/sim/secure_memory.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/proram.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/proram.dir/sim/system.cc.o.d"
  "/root/repo/src/sim/system_config.cc" "src/CMakeFiles/proram.dir/sim/system_config.cc.o" "gcc" "src/CMakeFiles/proram.dir/sim/system_config.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/proram.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/proram.dir/stats/stats.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/CMakeFiles/proram.dir/stats/table.cc.o" "gcc" "src/CMakeFiles/proram.dir/stats/table.cc.o.d"
  "/root/repo/src/trace/benchmarks.cc" "src/CMakeFiles/proram.dir/trace/benchmarks.cc.o" "gcc" "src/CMakeFiles/proram.dir/trace/benchmarks.cc.o.d"
  "/root/repo/src/trace/synthetic.cc" "src/CMakeFiles/proram.dir/trace/synthetic.cc.o" "gcc" "src/CMakeFiles/proram.dir/trace/synthetic.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/CMakeFiles/proram.dir/trace/trace_file.cc.o" "gcc" "src/CMakeFiles/proram.dir/trace/trace_file.cc.o.d"
  "/root/repo/src/trace/zipf.cc" "src/CMakeFiles/proram.dir/trace/zipf.cc.o" "gcc" "src/CMakeFiles/proram.dir/trace/zipf.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/proram.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/proram.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/proram.dir/util/random.cc.o" "gcc" "src/CMakeFiles/proram.dir/util/random.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
