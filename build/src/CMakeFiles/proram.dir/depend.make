# Empty dependencies file for proram.
# This may be replaced when dependencies are built.
