file(REMOVE_RECURSE
  "libproram.a"
)
