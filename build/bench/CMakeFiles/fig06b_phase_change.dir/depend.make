# Empty dependencies file for fig06b_phase_change.
# This may be replaced when dependencies are built.
