file(REMOVE_RECURSE
  "CMakeFiles/fig06b_phase_change.dir/fig06b_phase_change.cc.o"
  "CMakeFiles/fig06b_phase_change.dir/fig06b_phase_change.cc.o.d"
  "fig06b_phase_change"
  "fig06b_phase_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06b_phase_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
