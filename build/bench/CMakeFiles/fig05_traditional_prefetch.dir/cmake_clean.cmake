file(REMOVE_RECURSE
  "CMakeFiles/fig05_traditional_prefetch.dir/fig05_traditional_prefetch.cc.o"
  "CMakeFiles/fig05_traditional_prefetch.dir/fig05_traditional_prefetch.cc.o.d"
  "fig05_traditional_prefetch"
  "fig05_traditional_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_traditional_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
