# Empty dependencies file for fig13_z_value.
# This may be replaced when dependencies are built.
