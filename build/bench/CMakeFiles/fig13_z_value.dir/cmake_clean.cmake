file(REMOVE_RECURSE
  "CMakeFiles/fig13_z_value.dir/fig13_z_value.cc.o"
  "CMakeFiles/fig13_z_value.dir/fig13_z_value.cc.o.d"
  "fig13_z_value"
  "fig13_z_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_z_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
