# Empty compiler generated dependencies file for fig11_dram_bandwidth.
# This may be replaced when dependencies are built.
