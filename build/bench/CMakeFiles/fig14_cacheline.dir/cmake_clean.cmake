file(REMOVE_RECURSE
  "CMakeFiles/fig14_cacheline.dir/fig14_cacheline.cc.o"
  "CMakeFiles/fig14_cacheline.dir/fig14_cacheline.cc.o.d"
  "fig14_cacheline"
  "fig14_cacheline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_cacheline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
