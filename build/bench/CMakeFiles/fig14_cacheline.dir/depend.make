# Empty dependencies file for fig14_cacheline.
# This may be replaced when dependencies are built.
