# Empty dependencies file for fig06a_locality_sweep.
# This may be replaced when dependencies are built.
