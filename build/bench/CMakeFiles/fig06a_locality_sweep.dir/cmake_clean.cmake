file(REMOVE_RECURSE
  "CMakeFiles/fig06a_locality_sweep.dir/fig06a_locality_sweep.cc.o"
  "CMakeFiles/fig06a_locality_sweep.dir/fig06a_locality_sweep.cc.o.d"
  "fig06a_locality_sweep"
  "fig06a_locality_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06a_locality_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
