# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig06a_locality_sweep.
