file(REMOVE_RECURSE
  "CMakeFiles/fig08_real_benchmarks.dir/fig08_real_benchmarks.cc.o"
  "CMakeFiles/fig08_real_benchmarks.dir/fig08_real_benchmarks.cc.o.d"
  "fig08_real_benchmarks"
  "fig08_real_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_real_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
