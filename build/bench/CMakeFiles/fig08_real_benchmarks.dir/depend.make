# Empty dependencies file for fig08_real_benchmarks.
# This may be replaced when dependencies are built.
