file(REMOVE_RECURSE
  "CMakeFiles/fig10_coefficients.dir/fig10_coefficients.cc.o"
  "CMakeFiles/fig10_coefficients.dir/fig10_coefficients.cc.o.d"
  "fig10_coefficients"
  "fig10_coefficients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_coefficients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
