# Empty dependencies file for fig10_coefficients.
# This may be replaced when dependencies are built.
