file(REMOVE_RECURSE
  "CMakeFiles/fig07_sbsize_sweep.dir/fig07_sbsize_sweep.cc.o"
  "CMakeFiles/fig07_sbsize_sweep.dir/fig07_sbsize_sweep.cc.o.d"
  "fig07_sbsize_sweep"
  "fig07_sbsize_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_sbsize_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
