file(REMOVE_RECURSE
  "CMakeFiles/ext_oint_sweep.dir/ext_oint_sweep.cc.o"
  "CMakeFiles/ext_oint_sweep.dir/ext_oint_sweep.cc.o.d"
  "ext_oint_sweep"
  "ext_oint_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_oint_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
