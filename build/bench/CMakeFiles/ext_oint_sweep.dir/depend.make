# Empty dependencies file for ext_oint_sweep.
# This may be replaced when dependencies are built.
