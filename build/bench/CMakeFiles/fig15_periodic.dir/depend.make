# Empty dependencies file for fig15_periodic.
# This may be replaced when dependencies are built.
