file(REMOVE_RECURSE
  "CMakeFiles/fig15_periodic.dir/fig15_periodic.cc.o"
  "CMakeFiles/fig15_periodic.dir/fig15_periodic.cc.o.d"
  "fig15_periodic"
  "fig15_periodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
