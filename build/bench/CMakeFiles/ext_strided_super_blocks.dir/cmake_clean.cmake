file(REMOVE_RECURSE
  "CMakeFiles/ext_strided_super_blocks.dir/ext_strided_super_blocks.cc.o"
  "CMakeFiles/ext_strided_super_blocks.dir/ext_strided_super_blocks.cc.o.d"
  "ext_strided_super_blocks"
  "ext_strided_super_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_strided_super_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
