# Empty dependencies file for ext_strided_super_blocks.
# This may be replaced when dependencies are built.
