# Empty dependencies file for fig09_miss_rate.
# This may be replaced when dependencies are built.
