# Empty dependencies file for fig12_stash_size.
# This may be replaced when dependencies are built.
