file(REMOVE_RECURSE
  "CMakeFiles/proram_cli.dir/proram_cli.cpp.o"
  "CMakeFiles/proram_cli.dir/proram_cli.cpp.o.d"
  "proram_cli"
  "proram_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proram_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
