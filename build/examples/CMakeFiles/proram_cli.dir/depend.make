# Empty dependencies file for proram_cli.
# This may be replaced when dependencies are built.
