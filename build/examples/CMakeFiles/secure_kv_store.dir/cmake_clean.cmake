file(REMOVE_RECURSE
  "CMakeFiles/secure_kv_store.dir/secure_kv_store.cpp.o"
  "CMakeFiles/secure_kv_store.dir/secure_kv_store.cpp.o.d"
  "secure_kv_store"
  "secure_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
