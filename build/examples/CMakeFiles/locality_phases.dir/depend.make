# Empty dependencies file for locality_phases.
# This may be replaced when dependencies are built.
