file(REMOVE_RECURSE
  "CMakeFiles/locality_phases.dir/locality_phases.cpp.o"
  "CMakeFiles/locality_phases.dir/locality_phases.cpp.o.d"
  "locality_phases"
  "locality_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
