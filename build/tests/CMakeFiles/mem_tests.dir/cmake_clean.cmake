file(REMOVE_RECURSE
  "CMakeFiles/mem_tests.dir/mem/cache_hierarchy_test.cc.o"
  "CMakeFiles/mem_tests.dir/mem/cache_hierarchy_test.cc.o.d"
  "CMakeFiles/mem_tests.dir/mem/cache_test.cc.o"
  "CMakeFiles/mem_tests.dir/mem/cache_test.cc.o.d"
  "CMakeFiles/mem_tests.dir/mem/dram_backend_test.cc.o"
  "CMakeFiles/mem_tests.dir/mem/dram_backend_test.cc.o.d"
  "CMakeFiles/mem_tests.dir/mem/dram_test.cc.o"
  "CMakeFiles/mem_tests.dir/mem/dram_test.cc.o.d"
  "CMakeFiles/mem_tests.dir/mem/stream_prefetcher_test.cc.o"
  "CMakeFiles/mem_tests.dir/mem/stream_prefetcher_test.cc.o.d"
  "mem_tests"
  "mem_tests.pdb"
  "mem_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
