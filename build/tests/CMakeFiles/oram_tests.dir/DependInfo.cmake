
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/oram/config_test.cc" "tests/CMakeFiles/oram_tests.dir/oram/config_test.cc.o" "gcc" "tests/CMakeFiles/oram_tests.dir/oram/config_test.cc.o.d"
  "/root/repo/tests/oram/integrity_test.cc" "tests/CMakeFiles/oram_tests.dir/oram/integrity_test.cc.o" "gcc" "tests/CMakeFiles/oram_tests.dir/oram/integrity_test.cc.o.d"
  "/root/repo/tests/oram/path_oram_test.cc" "tests/CMakeFiles/oram_tests.dir/oram/path_oram_test.cc.o" "gcc" "tests/CMakeFiles/oram_tests.dir/oram/path_oram_test.cc.o.d"
  "/root/repo/tests/oram/periodic_test.cc" "tests/CMakeFiles/oram_tests.dir/oram/periodic_test.cc.o" "gcc" "tests/CMakeFiles/oram_tests.dir/oram/periodic_test.cc.o.d"
  "/root/repo/tests/oram/position_map_test.cc" "tests/CMakeFiles/oram_tests.dir/oram/position_map_test.cc.o" "gcc" "tests/CMakeFiles/oram_tests.dir/oram/position_map_test.cc.o.d"
  "/root/repo/tests/oram/security_properties_test.cc" "tests/CMakeFiles/oram_tests.dir/oram/security_properties_test.cc.o" "gcc" "tests/CMakeFiles/oram_tests.dir/oram/security_properties_test.cc.o.d"
  "/root/repo/tests/oram/stash_test.cc" "tests/CMakeFiles/oram_tests.dir/oram/stash_test.cc.o" "gcc" "tests/CMakeFiles/oram_tests.dir/oram/stash_test.cc.o.d"
  "/root/repo/tests/oram/tree_test.cc" "tests/CMakeFiles/oram_tests.dir/oram/tree_test.cc.o" "gcc" "tests/CMakeFiles/oram_tests.dir/oram/tree_test.cc.o.d"
  "/root/repo/tests/oram/unified_oram_test.cc" "tests/CMakeFiles/oram_tests.dir/oram/unified_oram_test.cc.o" "gcc" "tests/CMakeFiles/oram_tests.dir/oram/unified_oram_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/proram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
