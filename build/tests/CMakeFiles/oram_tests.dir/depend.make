# Empty dependencies file for oram_tests.
# This may be replaced when dependencies are built.
