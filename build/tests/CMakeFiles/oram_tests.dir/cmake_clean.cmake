file(REMOVE_RECURSE
  "CMakeFiles/oram_tests.dir/oram/config_test.cc.o"
  "CMakeFiles/oram_tests.dir/oram/config_test.cc.o.d"
  "CMakeFiles/oram_tests.dir/oram/integrity_test.cc.o"
  "CMakeFiles/oram_tests.dir/oram/integrity_test.cc.o.d"
  "CMakeFiles/oram_tests.dir/oram/path_oram_test.cc.o"
  "CMakeFiles/oram_tests.dir/oram/path_oram_test.cc.o.d"
  "CMakeFiles/oram_tests.dir/oram/periodic_test.cc.o"
  "CMakeFiles/oram_tests.dir/oram/periodic_test.cc.o.d"
  "CMakeFiles/oram_tests.dir/oram/position_map_test.cc.o"
  "CMakeFiles/oram_tests.dir/oram/position_map_test.cc.o.d"
  "CMakeFiles/oram_tests.dir/oram/security_properties_test.cc.o"
  "CMakeFiles/oram_tests.dir/oram/security_properties_test.cc.o.d"
  "CMakeFiles/oram_tests.dir/oram/stash_test.cc.o"
  "CMakeFiles/oram_tests.dir/oram/stash_test.cc.o.d"
  "CMakeFiles/oram_tests.dir/oram/tree_test.cc.o"
  "CMakeFiles/oram_tests.dir/oram/tree_test.cc.o.d"
  "CMakeFiles/oram_tests.dir/oram/unified_oram_test.cc.o"
  "CMakeFiles/oram_tests.dir/oram/unified_oram_test.cc.o.d"
  "oram_tests"
  "oram_tests.pdb"
  "oram_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oram_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
