
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/dynamic_policy_test.cc" "tests/CMakeFiles/core_tests.dir/core/dynamic_policy_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/dynamic_policy_test.cc.o.d"
  "/root/repo/tests/core/oram_controller_test.cc" "tests/CMakeFiles/core_tests.dir/core/oram_controller_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/oram_controller_test.cc.o.d"
  "/root/repo/tests/core/static_policy_test.cc" "tests/CMakeFiles/core_tests.dir/core/static_policy_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/static_policy_test.cc.o.d"
  "/root/repo/tests/core/super_block_test.cc" "tests/CMakeFiles/core_tests.dir/core/super_block_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/super_block_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/proram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
