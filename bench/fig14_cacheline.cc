/**
 * @file
 * Fig. 14: cacheline (= ORAM block) size sweep: 64/128/256 B. The
 * qualitative behaviour of the super block schemes is unchanged
 * across block sizes (Sec. 5.5.5).
 */

#include <cstdio>

#include "common.hh"

using namespace proram;

int
main()
{
    bench::banner(
        "Figure 14: Cacheline size sweep (norm. completion time vs "
        "DRAM at the same line size)",
        "scheme ordering stable across 64/128/256 B lines");

    const Experiment exp = bench::defaultExperiment();

    for (const char *name : {"ocean_c", "volrend"}) {
        std::printf("--- %s ---\n", name);
        stats::Table t({"line(B)", "oram", "stat", "dyn"});
        for (std::uint32_t line : {64u, 128u, 256u}) {
            // The workload must stride at the line size or adjacent
            // blocks are not adjacent lines.
            BenchmarkProfile prof = profileByName(name);
            prof.blockBytes = line;
            auto gen = [&] {
                return makeGenerator(prof, exp.traceScale());
            };
            auto tweak = [&](SystemConfig &c) { c.setLineBytes(line); };
            const auto dram = exp.runWith(MemScheme::Dram, tweak, gen);
            const auto oram =
                exp.runWith(MemScheme::OramBaseline, tweak, gen);
            const auto stat =
                exp.runWith(MemScheme::OramStatic, tweak, gen);
            const auto dyn =
                exp.runWith(MemScheme::OramDynamic, tweak, gen);
            t.row()
                .addInt(line)
                .add(metrics::normCompletionTime(dram, oram), 2)
                .add(metrics::normCompletionTime(dram, stat), 2)
                .add(metrics::normCompletionTime(dram, dyn), 2);
        }
        std::printf("%s\n", t.str().c_str());
    }
    return 0;
}
