/**
 * @file
 * Fig. 5: traditional stream prefetching on DRAM vs ORAM. The
 * prefetcher helps the DRAM system (spare bandwidth between demand
 * accesses) but does not help - and can hurt - the ORAM system, whose
 * controller is already saturated (Sec. 5.2).
 */

#include <cstdio>
#include <vector>

#include "common.hh"

using namespace proram;

int
main()
{
    bench::banner(
        "Figure 5: Traditional data prefetching on DRAM and ORAM",
        "dram_pre speedup positive; oram_pre ~zero or negative, "
        "always below dram_pre");

    const Experiment exp = bench::defaultExperiment();
    const std::vector<const char *> benches = {
        "barnes", "cholesky", "lu_nc", "raytrace", "ocean_c",
        "ocean_nc"};

    stats::Table t({"bench", "dram_pre", "oram_pre"});
    std::vector<double> dram_gain, oram_gain;

    for (const char *name : benches) {
        const auto &prof = profileByName(name);
        const auto dram = exp.runBenchmark(MemScheme::Dram, prof);
        const auto dram_pre =
            exp.runBenchmark(MemScheme::DramPrefetch, prof);
        const auto oram = exp.runBenchmark(MemScheme::OramBaseline, prof);
        const auto oram_pre =
            exp.runBenchmark(MemScheme::OramPrefetch, prof);

        const double dg = metrics::speedup(dram, dram_pre);
        const double og = metrics::speedup(oram, oram_pre);
        dram_gain.push_back(dg);
        oram_gain.push_back(og);
        t.row().add(name).addPct(dg).addPct(og);
    }
    t.row().add("avg").addPct(mean(dram_gain)).addPct(mean(oram_gain));

    std::printf("%s\n", t.str().c_str());
    return 0;
}
