/**
 * @file
 * Fig. 13: bucket size Z = 3 vs Z = 4. Z=3 is faster for the
 * baseline (shorter paths beat the higher background-eviction rate);
 * the dynamic scheme gains consistently under both (Sec. 5.5.4).
 */

#include <cstdio>

#include "common.hh"

using namespace proram;

int
main()
{
    bench::banner(
        "Figure 13: Z sweep (norm. completion time vs DRAM)",
        "oram_Z3 < oram_Z4 (Z=3 best for the baseline); dyn gains "
        "under both Z values");

    const Experiment exp = bench::defaultExperiment();

    stats::Table t({"bench", "oram_Z3", "stat_Z3", "dyn_Z3", "oram_Z4",
                    "stat_Z4", "dyn_Z4"});
    for (const char *name : {"fft", "ocean_c", "ocean_nc", "volrend"}) {
        const auto &prof = profileByName(name);
        auto gen = [&] { return makeGenerator(prof, exp.traceScale()); };
        const auto dram = exp.runGenerator(MemScheme::Dram, gen);
        t.row().add(name);
        for (std::uint32_t z : {3u, 4u}) {
            auto tweak = [&](SystemConfig &c) { c.oram.z = z; };
            for (MemScheme s :
                 {MemScheme::OramBaseline, MemScheme::OramStatic,
                  MemScheme::OramDynamic}) {
                const auto res = exp.runWith(s, tweak, gen);
                t.add(metrics::normCompletionTime(dram, res), 2);
            }
        }
    }
    std::printf("%s\n", t.str().c_str());
    return 0;
}
