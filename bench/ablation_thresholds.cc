/**
 * @file
 * Ablation study of PrORAM design choices beyond the paper's figures:
 *  1. adaptive vs static thresholding (Sec. 4.4) on mixed workloads;
 *  2. merge-threshold hysteresis (the +sbsize term) on phase changes;
 *  3. PLB capacity (the Unified ORAM recursion cost).
 */

#include <cstdio>

#include <algorithm>
#include <iterator>

#include "common.hh"
#include "trace/synthetic.hh"

using namespace proram;

namespace
{

std::unique_ptr<TraceGenerator>
mixedGen(bool phases)
{
    // Fixed-size workload: the learning dynamics under study need a
    // minimum trace length, so PRORAM_BENCH_SCALE only shortens below
    // 1.0 mildly (floor at 0.5).
    const double scale =
        std::max(0.5, proram::benchScaleFromEnv());
    SyntheticConfig c;
    c.footprintBlocks = 1ULL << 14;
    c.numAccesses = static_cast<std::uint64_t>(120000 * scale);
    c.localityFraction = 0.6;
    c.phaseLength = phases ? c.numAccesses / 6 : 0;
    c.computeCycles = 4;
    c.seed = 9;
    return std::make_unique<SyntheticGenerator>(c);
}

} // namespace

int
main()
{
    bench::banner(
        "Ablation: thresholding mode, hysteresis, PLB size",
        "adaptive thresholding and the PLB each contribute; removing "
        "them costs performance or memory accesses");

    const Experiment exp = bench::defaultExperiment();

    // 1. Thresholding mode.
    {
        std::printf("--- Thresholding mode (60%% locality) ---\n");
        auto gen = [] { return mixedGen(false); };
        const DynamicPolicyConfig::MergeThreshold modes[] = {
            DynamicPolicyConfig::MergeThreshold::Static,
            DynamicPolicyConfig::MergeThreshold::Adaptive};

        std::vector<Experiment::GridCell> cells;
        cells.push_back(
            bench::generatorCell(exp, MemScheme::OramBaseline, gen));
        for (auto mode : modes) {
            cells.push_back([&exp, mode, gen] {
                return exp.runWith(
                    MemScheme::OramDynamic,
                    [mode](SystemConfig &c) {
                        c.dynamic.mergeThreshold = mode;
                    },
                    gen);
            });
        }
        const auto results = exp.runGrid(cells);

        const auto &oram = results[0];
        stats::Table t({"mode", "speedup", "norm.acc", "bg"});
        for (std::size_t i = 0; i < std::size(modes); ++i) {
            const auto &res = results[1 + i];
            t.row()
                .add(modes[i] ==
                             DynamicPolicyConfig::MergeThreshold::Static
                         ? "static(2n)"
                         : "adaptive(Eq.1)")
                .addPct(metrics::speedup(oram, res))
                .add(metrics::normMemAccesses(oram, res), 3)
                .addInt(res.bgEvictions);
        }
        std::printf("%s\n", t.str().c_str());
    }

    // 2. Hysteresis: compare cBreak == cMerge vs a deliberately
    //    inverted configuration that breaks eagerly (thrash-prone)
    //    under phase changes.
    {
        std::printf("--- Break eagerness under phase change ---\n");
        auto gen = [] { return mixedGen(true); };
        struct Row
        {
            const char *name;
            double cm, cb;
        };
        const Row rows[] = {Row{"balanced (m1b1)", 1, 1},
                            Row{"eager break (m1b8)", 1, 8},
                            Row{"lazy break (m8b1)", 8, 1}};

        std::vector<Experiment::GridCell> cells;
        cells.push_back(
            bench::generatorCell(exp, MemScheme::OramBaseline, gen));
        for (const Row &r : rows) {
            cells.push_back([&exp, r, gen] {
                return exp.runWith(
                    MemScheme::OramDynamic,
                    [r](SystemConfig &c) {
                        c.dynamic.cMerge = r.cm;
                        c.dynamic.cBreak = r.cb;
                    },
                    gen);
            });
        }
        const auto results = exp.runGrid(cells);

        const auto &oram = results[0];
        stats::Table t(
            {"config", "speedup", "merges", "breaks", "missrate"});
        for (std::size_t i = 0; i < std::size(rows); ++i) {
            const auto &res = results[1 + i];
            t.row()
                .add(rows[i].name)
                .addPct(metrics::speedup(oram, res))
                .addInt(res.merges)
                .addInt(res.breaks)
                .add(res.prefetchMissRate(), 3);
        }
        std::printf("%s\n", t.str().c_str());
    }

    // 3. PLB capacity: recursion cost of the unified ORAM.
    {
        std::printf("--- PLB capacity (pos-map recursion cost) ---\n");
        auto gen = [] { return mixedGen(false); };
        const std::uint32_t plbs[] = {1u, 8u, 32u, 64u, 256u};

        std::vector<Experiment::GridCell> cells;
        for (std::uint32_t plb : plbs) {
            cells.push_back([&exp, plb, gen] {
                return exp.runWith(
                    MemScheme::OramDynamic,
                    [plb](SystemConfig &c) { c.oram.plbEntries = plb; },
                    gen);
            });
        }
        const auto results = exp.runGrid(cells);

        stats::Table t({"plb.entries", "cycles(norm)", "posmap.paths",
                        "total.paths"});
        const SimResult &base = results[0]; // plb == 1
        for (std::size_t i = 0; i < std::size(plbs); ++i) {
            const auto &res = results[i];
            t.row()
                .addInt(plbs[i])
                .add(metrics::normCompletionTime(base, res), 3)
                .addInt(res.posMapAccesses)
                .addInt(res.pathAccesses);
        }
        std::printf("%s\n", t.str().c_str());
    }
    return 0;
}
