/**
 * @file
 * Fig. 9: prefetch miss rate of the static vs dynamic super block
 * schemes (Splash2 and SPEC06). The dynamic scheme merges only blocks
 * with observed locality, so it prefetches less blindly and misses
 * less. water_* are omitted as in the paper (too compute bound).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common.hh"

using namespace proram;

namespace
{

void
runSuite(const Experiment &exp, const char *title,
         const std::vector<BenchmarkProfile> &suite,
         const std::vector<std::string> &skip)
{
    std::printf("--- %s ---\n", title);
    stats::Table t({"bench", "stat.missrate", "dyn.missrate"});
    std::vector<double> stat_all, dyn_all;
    for (const auto &prof : suite) {
        bool skipped = false;
        for (const auto &s : skip)
            skipped = skipped || s == prof.name;
        if (skipped)
            continue;
        const auto stat = exp.runBenchmark(MemScheme::OramStatic, prof);
        const auto dyn = exp.runBenchmark(MemScheme::OramDynamic, prof);
        stat_all.push_back(stat.prefetchMissRate());
        dyn_all.push_back(dyn.prefetchMissRate());
        t.row()
            .add(prof.name)
            .add(stat_all.back(), 3)
            .add(dyn_all.back(), 3);
    }
    t.row().add("avg").add(mean(stat_all), 3).add(mean(dyn_all), 3);
    std::printf("%s\n", t.str().c_str());
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 9: Prefetch miss rate, static vs dynamic super blocks",
        "dyn lowers the average miss rate substantially vs stat "
        "(paper: 48.6% -> 37.1% Splash2, 55.5% -> 34.8% SPEC06)");

    const Experiment exp = bench::defaultExperiment();
    runSuite(exp, "Fig. 9a: Splash2", splash2Suite(),
             {"water_ns", "water_s"});
    runSuite(exp, "Fig. 9b: SPEC06", spec06Suite(), {});
    return 0;
}
