/**
 * @file
 * Fig. 10: sweep of the Eq. 1 coefficients C_merge / C_break
 * (mXbY = C_merge = X, C_break = Y). Smaller coefficients merge
 * earlier and help locality-rich benchmarks; locality-poor
 * benchmarks are insensitive (merging never triggers).
 */

#include <cstdio>

#include "common.hh"

using namespace proram;

int
main()
{
    bench::banner(
        "Figure 10: Merge/break coefficient sweep (mXbY)",
        "smaller C_merge -> earlier merging -> better on ocean_*/fft; "
        "volrend flat (no merging regardless)");

    const Experiment exp = bench::defaultExperiment();

    struct Combo
    {
        const char *name;
        double cm, cb;
    };
    const Combo combos[] = {{"m1b1", 1, 1},
                            {"m2b2", 2, 2},
                            {"m4b1", 4, 1},
                            {"m4b4", 4, 4},
                            {"m8b8", 8, 8}};

    stats::Table t({"bench", "m1b1", "m2b2", "m4b1", "m4b4", "m8b8"});
    for (const char *name : {"ocean_c", "ocean_nc", "fft", "volrend"}) {
        const auto &prof = profileByName(name);
        const auto oram =
            exp.runBenchmark(MemScheme::OramBaseline, prof);
        t.row().add(name);
        for (const Combo &c : combos) {
            const auto res = exp.runWith(
                MemScheme::OramDynamic,
                [&](SystemConfig &sc) {
                    sc.dynamic.cMerge = c.cm;
                    sc.dynamic.cBreak = c.cb;
                },
                [&] {
                    return makeGenerator(prof, exp.traceScale());
                });
            t.addPct(metrics::speedup(oram, res));
        }
    }
    std::printf("%s\n", t.str().c_str());
    return 0;
}
