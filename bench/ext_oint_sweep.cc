/**
 * @file
 * Extension experiment (paper Sec. 5.6, last paragraph): with strictly
 * periodic ORAM accesses every scheme consumes the same energy per
 * unit time, but PrORAM's performance advantage "can be easily
 * translated to an energy advantage by setting Oint high". This sweep
 * quantifies that trade-off: completion time and total ORAM accesses
 * (the energy proxy) as Oint grows.
 */

#include <cstdio>

#include "common.hh"

using namespace proram;

int
main()
{
    bench::banner(
        "Extension: Oint sweep - trading performance for energy",
        "larger Oint slows every scheme but cuts dummy accesses; dyn "
        "sustains a given performance level at a larger Oint (= lower "
        "energy) than the baseline");

    const Experiment exp = bench::defaultExperiment();
    const auto &prof = profileByName("ocean_c");
    auto gen = [&] { return makeGenerator(prof, exp.traceScale()); };

    // Non-periodic references.
    const auto oram_np = exp.runGenerator(MemScheme::OramBaseline, gen);
    const auto dyn_np = exp.runGenerator(MemScheme::OramDynamic, gen);

    stats::Table t({"Oint", "oram.cycles(norm)", "oram.accesses",
                    "dyn.cycles(norm)", "dyn.accesses",
                    "dyn.vs.oram"});
    for (Cycles oint :
         {Cycles{100}, Cycles{400}, Cycles{1600}, Cycles{6400}}) {
        auto tweak = [&](SystemConfig &c) {
            c.controller.periodic.enabled = true;
            c.controller.periodic.oInt = oint;
        };
        const auto oram =
            exp.runWith(MemScheme::OramBaseline, tweak, gen);
        const auto dyn = exp.runWith(MemScheme::OramDynamic, tweak, gen);
        t.row()
            .addInt(oint.value())
            .add(metrics::normCompletionTime(oram_np, oram), 2)
            .addInt(oram.memAccesses)
            .add(metrics::normCompletionTime(dyn_np, dyn), 2)
            .addInt(dyn.memAccesses)
            .addPct(metrics::speedup(oram, dyn));
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("(accesses include periodic dummies; at equal Oint the "
                "timing channel leaks nothing and dyn's gain is pure "
                "win.)\n");
    return 0;
}
