/**
 * @file
 * Open-loop sustained-throughput driver for the concurrent controller
 * (DESIGN.md Sec. 13). For each worker count it replays one fixed
 * pre-decoded trace through System::runQueue() back to back and
 * reports sustained requests per host-second plus the p50/p99
 * simulated request latency from the controller's LogHistogram.
 *
 * Serial mode (workers == 1) is the exact dataAccess() protocol -
 * the same bit-identical path the goldens pin - so the 1-worker row
 * is the honest baseline for every concurrency ratio. Host core
 * count is printed with the results: on a 1-core host the multi-
 * worker wins come from reduced locking/arena overhead (sharded
 * stash, path dedup), not parallelism.
 *
 * Usage:
 *   throughput_drive [--json] [--workers 1,2,4,8] [--requests N]
 *                    [--reps R]
 * $PRORAM_BENCH_SCALE shortens the trace like the figure binaries;
 * $PRORAM_STASH_SHARDS / $PRORAM_DEDUP tune the contention knobs.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/oram_controller.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "sim/system_config.hh"
#include "stats/stats.hh"
#include "trace/generator.hh"

namespace proram
{
namespace
{

struct Options
{
    bool json = false;
    std::vector<unsigned> workers = {1, 2, 4, 8};
    std::uint64_t requests = 1ULL << 14;
    unsigned reps = 3;
};

struct Row
{
    unsigned workers = 1;
    std::uint64_t requests = 0;
    double wallSeconds = 0.0;
    double reqPerSec = 0.0;
    std::uint64_t p50Cycles = 0;
    std::uint64_t p99Cycles = 0;
    std::uint64_t dedupHits = 0;
    std::uint64_t dedupMisses = 0;
    std::uint64_t flushWrites = 0;
};

std::vector<unsigned>
parseWorkerList(const char *arg)
{
    std::vector<unsigned> out;
    const std::string s(arg);
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t next = s.find(',', pos);
        if (next == std::string::npos)
            next = s.size();
        const unsigned w = static_cast<unsigned>(
            std::strtoul(s.substr(pos, next - pos).c_str(), nullptr,
                         10));
        if (w > 0)
            out.push_back(w);
        pos = next + 1;
    }
    return out;
}

std::vector<TraceRecord>
makeTrace(std::uint64_t requests, std::uint64_t num_blocks,
          std::uint32_t line_bytes)
{
    // Deterministic xorshift mix of reads and writes over the block
    // space - the same generator family BM_ConcurrentDrive uses, so
    // the snapshot rows and the microbenchmark measure the same
    // workload shape.
    std::vector<TraceRecord> records(requests);
    std::uint64_t x = 9;
    for (TraceRecord &rec : records) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        rec.addr = (x % num_blocks) * line_bytes;
        rec.op = (x >> 32) % 4 == 0 ? OpType::Write : OpType::Read;
    }
    return records;
}

Row
driveOne(unsigned workers, const std::vector<TraceRecord> &records,
         unsigned reps)
{
    SystemConfig cfg = defaultSystemConfig();
    cfg.scheme = MemScheme::OramDynamic;
    cfg.oram.numDataBlocks = 1ULL << 14;
    cfg.workers = workers;

    System system(cfg);
    // Warm-up pass: lazy materialization, thread-local scratch and
    // the dedup window's first-touch loads all happen once, outside
    // the timed region.
    system.runQueue(records);

    const auto start = std::chrono::steady_clock::now();
    for (unsigned r = 0; r < reps; ++r)
        system.runQueue(records);
    const auto stop = std::chrono::steady_clock::now();

    Row row;
    row.workers = workers;
    row.requests = static_cast<std::uint64_t>(records.size()) * reps;
    row.wallSeconds =
        std::chrono::duration<double>(stop - start).count();
    row.reqPerSec = row.wallSeconds > 0.0
                        ? static_cast<double>(row.requests) /
                              row.wallSeconds
                        : 0.0;
    const OramController *ctl = system.controller();
    const stats::LogHistogram &lat = ctl->requestLatencyHist();
    row.p50Cycles = lat.percentileUpperBound(0.50);
    row.p99Cycles = lat.percentileUpperBound(0.99);
    if (const SubtreeCache *sc = ctl->subtreeCache()) {
        row.dedupHits = sc->dedupHits();
        row.dedupMisses = sc->dedupMisses();
        row.flushWrites = sc->flushWrites();
    }
    return row;
}

int
run(const Options &opt)
{
    const double scale = benchScaleFromEnv();
    const std::uint64_t requests = std::max<std::uint64_t>(
        256, static_cast<std::uint64_t>(
                 static_cast<double>(opt.requests) * scale));
    const SystemConfig cfg = defaultSystemConfig();
    const std::vector<TraceRecord> records = makeTrace(
        requests, 1ULL << 14, cfg.hierarchy.l1.lineBytes);

    std::vector<Row> rows;
    rows.reserve(opt.workers.size());
    for (const unsigned w : opt.workers)
        rows.push_back(driveOne(w, records, opt.reps));

    const unsigned cpus = std::thread::hardware_concurrency();
    if (opt.json) {
        std::printf("{\"schema\":\"proram-throughput-v1\","
                    "\"host\":{\"cpus\":%u},"
                    "\"requestsPerRun\":%llu,\"reps\":%u,"
                    "\"results\":[",
                    cpus,
                    static_cast<unsigned long long>(requests),
                    opt.reps);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            std::printf(
                "%s{\"workers\":%u,\"requests\":%llu,"
                "\"wallSeconds\":%.6f,\"reqPerSec\":%.1f,"
                "\"p50Cycles\":%llu,\"p99Cycles\":%llu,"
                "\"dedupHits\":%llu,\"dedupMisses\":%llu,"
                "\"flushWrites\":%llu}",
                i == 0 ? "" : ",", r.workers,
                static_cast<unsigned long long>(r.requests),
                r.wallSeconds, r.reqPerSec,
                static_cast<unsigned long long>(r.p50Cycles),
                static_cast<unsigned long long>(r.p99Cycles),
                static_cast<unsigned long long>(r.dedupHits),
                static_cast<unsigned long long>(r.dedupMisses),
                static_cast<unsigned long long>(r.flushWrites));
        }
        std::printf("]}\n");
        return 0;
    }

    std::printf("sustained-throughput drive (open loop, %llu reqs x "
                "%u reps per row; host cpus=%u)\n",
                static_cast<unsigned long long>(requests), opt.reps,
                cpus);
    std::printf("%8s %12s %12s %12s %12s %12s\n", "workers",
                "req/s", "p50 cyc", "p99 cyc", "dedupHits",
                "dedupMisses");
    const double base =
        rows.empty() ? 0.0 : rows.front().reqPerSec;
    for (const Row &r : rows) {
        std::printf("%8u %12.1f %12llu %12llu %12llu %12llu",
                    r.workers, r.reqPerSec,
                    static_cast<unsigned long long>(r.p50Cycles),
                    static_cast<unsigned long long>(r.p99Cycles),
                    static_cast<unsigned long long>(r.dedupHits),
                    static_cast<unsigned long long>(r.dedupMisses));
        if (base > 0.0)
            std::printf("  (%.2fx vs row 1)", r.reqPerSec / base);
        std::printf("\n");
    }
    if (cpus <= 1) {
        std::printf("note: 1-core host - multi-worker gains reflect "
                    "reduced locking/arena overhead, not "
                    "parallelism\n");
    }
    return 0;
}

} // namespace
} // namespace proram

int
main(int argc, char **argv)
{
    proram::Options opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            opt.json = true;
        } else if (std::strcmp(argv[i], "--workers") == 0 &&
                   i + 1 < argc) {
            opt.workers = proram::parseWorkerList(argv[++i]);
        } else if (std::strcmp(argv[i], "--requests") == 0 &&
                   i + 1 < argc) {
            opt.requests = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--reps") == 0 &&
                   i + 1 < argc) {
            opt.reps = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json] [--workers 1,2,4,8] "
                         "[--requests N] [--reps R]\n",
                         argv[0]);
            return 2;
        }
    }
    if (opt.workers.empty() || opt.reps == 0) {
        std::fprintf(stderr, "error: empty worker list or zero reps\n");
        return 2;
    }
    return proram::run(opt);
}
