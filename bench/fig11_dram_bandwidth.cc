/**
 * @file
 * Fig. 11: DRAM bandwidth sweep (4/8/16 GB/s). Completion time is
 * normalized to the insecure DRAM system at the same bandwidth. The
 * dynamic scheme's gain persists across bandwidths for memory-
 * intensive benchmarks; on low-locality benchmarks dyn tracks the
 * baseline while stat lags.
 */

#include <cstdio>

#include "common.hh"

using namespace proram;

int
main()
{
    bench::banner(
        "Figure 11: DRAM bandwidth sweep (norm. completion time vs "
        "DRAM at the same bandwidth)",
        "ocean_c: dyn < stat < oram at every bandwidth; volrend: "
        "dyn ~ oram < stat");

    const Experiment exp = bench::defaultExperiment();

    for (const char *name : {"ocean_c", "volrend"}) {
        const auto &prof = profileByName(name);
        std::printf("--- %s ---\n", name);
        stats::Table t({"bw(GB/s)", "oram", "stat", "dyn"});
        for (double bw : {4.0, 8.0, 16.0}) {
            auto tweak = [&](SystemConfig &c) {
                c.setDramBandwidthGBs(bw);
            };
            auto gen = [&] {
                return makeGenerator(prof, exp.traceScale());
            };
            const auto dram =
                exp.runWith(MemScheme::Dram, tweak, gen);
            const auto oram =
                exp.runWith(MemScheme::OramBaseline, tweak, gen);
            const auto stat =
                exp.runWith(MemScheme::OramStatic, tweak, gen);
            const auto dyn =
                exp.runWith(MemScheme::OramDynamic, tweak, gen);
            t.row()
                .add(bw, 0)
                .add(metrics::normCompletionTime(dram, oram), 2)
                .add(metrics::normCompletionTime(dram, stat), 2)
                .add(metrics::normCompletionTime(dram, dyn), 2);
        }
        std::printf("%s\n", t.str().c_str());
    }
    return 0;
}
