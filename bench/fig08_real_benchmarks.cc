/**
 * @file
 * Fig. 8a/b/c: speedup and normalized ORAM access count (energy
 * proxy) of the static and dynamic super block schemes over the
 * baseline ORAM, for Splash2, SPEC06 and the DBMS workloads.
 */

#include <cstdio>
#include <vector>

#include "common.hh"

using namespace proram;

namespace
{

void
runSuite(const Experiment &exp, const char *title,
         const std::vector<BenchmarkProfile> &suite)
{
    std::printf("--- %s ---\n", title);
    stats::Table t({"bench", "oram/dram", "stat", "dyn",
                    "stat.norm.acc", "dyn.norm.acc"});

    std::vector<double> stat_all, dyn_all, stat_mem, dyn_mem;
    std::vector<double> stat_acc, dyn_acc;

    // All (benchmark x scheme) cells of this suite run on the pool;
    // results come back in cell order, so the table below is
    // identical to the old serial loop.
    const MemScheme schemes[] = {MemScheme::Dram,
                                 MemScheme::OramBaseline,
                                 MemScheme::OramStatic,
                                 MemScheme::OramDynamic};
    std::vector<Experiment::GridCell> cells;
    for (const auto &prof : suite) {
        for (MemScheme s : schemes)
            cells.push_back(bench::benchmarkCell(exp, s, prof));
    }
    const std::vector<SimResult> results = exp.runGrid(cells);

    for (std::size_t p = 0; p < suite.size(); ++p) {
        const auto &prof = suite[p];
        const auto &dram = results[p * 4 + 0];
        const auto &oram = results[p * 4 + 1];
        const auto &stat = results[p * 4 + 2];
        const auto &dyn = results[p * 4 + 3];

        const double overhead =
            static_cast<double>(oram.cycles.value()) /
            static_cast<double>(dram.cycles.value());
        const double ss = metrics::speedup(oram, stat);
        const double ds = metrics::speedup(oram, dyn);
        stat_all.push_back(ss);
        dyn_all.push_back(ds);
        stat_acc.push_back(metrics::normMemAccesses(oram, stat));
        dyn_acc.push_back(metrics::normMemAccesses(oram, dyn));
        if (prof.memoryIntensive) {
            stat_mem.push_back(ss);
            dyn_mem.push_back(ds);
        }

        t.row()
            .add(prof.name + (prof.memoryIntensive ? " [M]" : ""))
            .add(overhead, 2)
            .addPct(ss)
            .addPct(ds)
            .add(stat_acc.back(), 3)
            .add(dyn_acc.back(), 3);
    }
    t.row()
        .add("avg")
        .add("")
        .addPct(mean(stat_all))
        .addPct(mean(dyn_all))
        .add(mean(stat_acc), 3)
        .add(mean(dyn_acc), 3);
    if (!stat_mem.empty()) {
        t.row()
            .add("mem_avg")
            .add("")
            .addPct(mean(stat_mem))
            .addPct(mean(dyn_mem))
            .add("")
            .add("");
    }
    std::printf("%s\n", t.str().c_str());
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 8: Static vs dynamic super blocks on real benchmarks",
        "dyn >= oram on every benchmark; stat negative on low-locality "
        "ones (volrend, radix, sjeng, astar, omnet, mcf, TPCC); "
        "dyn mem_avg ~ +20% Splash2, avg ~ +5% SPEC06; YCSB >> TPCC; "
        "dyn roughly 2x stat's average gain. [M] = memory intensive");

    const Experiment exp = bench::defaultExperiment();
    runSuite(exp, "Fig. 8a: Splash2", splash2Suite());
    runSuite(exp, "Fig. 8b: SPEC06", spec06Suite());
    runSuite(exp, "Fig. 8c: DBMS", dbmsSuite());
    return 0;
}
