/**
 * @file
 * Fig. 8a/b/c: speedup and normalized ORAM access count (energy
 * proxy) of the static and dynamic super block schemes over the
 * baseline ORAM, for Splash2, SPEC06 and the DBMS workloads.
 */

#include <cstdio>
#include <vector>

#include "common.hh"

using namespace proram;

namespace
{

void
runSuite(const Experiment &exp, const char *title,
         const std::vector<BenchmarkProfile> &suite)
{
    std::printf("--- %s ---\n", title);
    stats::Table t({"bench", "oram/dram", "stat", "dyn",
                    "stat.norm.acc", "dyn.norm.acc"});

    std::vector<double> stat_all, dyn_all, stat_mem, dyn_mem;
    std::vector<double> stat_acc, dyn_acc;

    for (const auto &prof : suite) {
        const auto dram = exp.runBenchmark(MemScheme::Dram, prof);
        const auto oram =
            exp.runBenchmark(MemScheme::OramBaseline, prof);
        const auto stat = exp.runBenchmark(MemScheme::OramStatic, prof);
        const auto dyn = exp.runBenchmark(MemScheme::OramDynamic, prof);

        const double overhead =
            static_cast<double>(oram.cycles) / dram.cycles;
        const double ss = metrics::speedup(oram, stat);
        const double ds = metrics::speedup(oram, dyn);
        stat_all.push_back(ss);
        dyn_all.push_back(ds);
        stat_acc.push_back(metrics::normMemAccesses(oram, stat));
        dyn_acc.push_back(metrics::normMemAccesses(oram, dyn));
        if (prof.memoryIntensive) {
            stat_mem.push_back(ss);
            dyn_mem.push_back(ds);
        }

        t.row()
            .add(prof.name + (prof.memoryIntensive ? " [M]" : ""))
            .add(overhead, 2)
            .addPct(ss)
            .addPct(ds)
            .add(stat_acc.back(), 3)
            .add(dyn_acc.back(), 3);
    }
    t.row()
        .add("avg")
        .add("")
        .addPct(mean(stat_all))
        .addPct(mean(dyn_all))
        .add(mean(stat_acc), 3)
        .add(mean(dyn_acc), 3);
    if (!stat_mem.empty()) {
        t.row()
            .add("mem_avg")
            .add("")
            .addPct(mean(stat_mem))
            .addPct(mean(dyn_mem))
            .add("")
            .add("");
    }
    std::printf("%s\n", t.str().c_str());
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 8: Static vs dynamic super blocks on real benchmarks",
        "dyn >= oram on every benchmark; stat negative on low-locality "
        "ones (volrend, radix, sjeng, astar, omnet, mcf, TPCC); "
        "dyn mem_avg ~ +20% Splash2, avg ~ +5% SPEC06; YCSB >> TPCC; "
        "dyn roughly 2x stat's average gain. [M] = memory intensive");

    const Experiment exp = bench::defaultExperiment();
    runSuite(exp, "Fig. 8a: Splash2", splash2Suite());
    runSuite(exp, "Fig. 8b: SPEC06", spec06Suite());
    runSuite(exp, "Fig. 8c: DBMS", dbmsSuite());
    return 0;
}
