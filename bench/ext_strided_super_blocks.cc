/**
 * @file
 * Extension experiment: strided super blocks - the future work the
 * paper names in Sec. 6.2 ("Merging striding blocks is also possible
 * for the dynamic super block scheme"). A column-major sweep over a
 * row-major matrix touches blocks 2^s apart; the classic contiguous
 * pairing finds no locality there, while stride-matched pairing
 * recovers the same gains unit-stride streaming enjoys.
 */

#include <cstdio>

#include "common.hh"
#include "trace/synthetic.hh"

using namespace proram;

namespace
{

std::unique_ptr<TraceGenerator>
columnWalk(std::uint64_t stride)
{
    SyntheticConfig c;
    c.footprintBlocks = 1ULL << 14;
    c.numAccesses = static_cast<std::uint64_t>(
        60000 * proram::benchScaleFromEnv());
    c.localityFraction = 1.0;
    c.strideBlocks = stride;
    c.computeCycles = 4;
    c.seed = 12;
    return std::make_unique<SyntheticGenerator>(c);
}

} // namespace

int
main()
{
    bench::banner(
        "Extension: strided super blocks (paper Sec. 6.2 future work)",
        "contiguous pairing (strideLog 0) finds no locality in a "
        "strided sweep; stride-matched pairing recovers the "
        "unit-stride gain");

    const Experiment exp = bench::defaultExperiment();

    stats::Table t({"walk.stride", "policy.strideLog", "speedup",
                    "merges", "prefetch.missrate"});

    for (std::uint64_t walk_stride : {1ULL, 4ULL, 8ULL}) {
        auto gen = [&] { return columnWalk(walk_stride); };
        const auto oram =
            exp.runGenerator(MemScheme::OramBaseline, gen);
        for (std::uint32_t policy_stride_log : {0u, 2u, 3u}) {
            const auto dyn = exp.runWith(
                MemScheme::OramDynamic,
                [&](SystemConfig &c) {
                    c.dynamic.strideLog = policy_stride_log;
                },
                gen);
            t.row()
                .addInt(walk_stride)
                .addInt(policy_stride_log)
                .addPct(metrics::speedup(oram, dyn))
                .addInt(dyn.merges)
                .add(dyn.prefetchMissRate(), 3);
        }
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("(stride-matched rows - walk 4/policy 2, walk 8/"
                "policy 3 - should approach the walk-1/policy-0 "
                "gain.)\n");
    return 0;
}
