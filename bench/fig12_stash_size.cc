/**
 * @file
 * Fig. 12: stash size sweep. The baseline barely cares (its
 * background-eviction rate is already low); super block schemes add
 * stash pressure and benefit from a larger stash - the dynamic
 * scheme keeps most of its gain even with a small stash.
 */

#include <cstdio>

#include "common.hh"

using namespace proram;

int
main()
{
    bench::banner(
        "Figure 12: Stash size sweep (norm. completion time vs DRAM)",
        "oram flat; stat/dyn improve with stash size; dyn good even "
        "at small stash sizes (Sec. 5.5.3)");

    const Experiment exp = bench::defaultExperiment();

    for (const char *name : {"ocean_c", "volrend"}) {
        const auto &prof = profileByName(name);
        auto gen = [&] { return makeGenerator(prof, exp.traceScale()); };
        const auto dram = exp.runGenerator(MemScheme::Dram, gen);

        std::printf("--- %s ---\n", name);
        stats::Table t(
            {"stash", "oram", "stat", "dyn", "stat.bg", "dyn.bg"});
        for (std::uint32_t stash : {25u, 50u, 100u, 200u, 300u, 500u}) {
            auto tweak = [&](SystemConfig &c) {
                c.oram.stashCapacity = stash;
            };
            const auto oram =
                exp.runWith(MemScheme::OramBaseline, tweak, gen);
            const auto stat =
                exp.runWith(MemScheme::OramStatic, tweak, gen);
            const auto dyn =
                exp.runWith(MemScheme::OramDynamic, tweak, gen);
            t.row()
                .addInt(stash)
                .add(metrics::normCompletionTime(dram, oram), 2)
                .add(metrics::normCompletionTime(dram, stat), 2)
                .add(metrics::normCompletionTime(dram, dyn), 2)
                .addInt(stat.bgEvictions)
                .addInt(dyn.bgEvictions);
        }
        std::printf("%s\n", t.str().c_str());
    }
    return 0;
}
