/**
 * @file
 * google-benchmark microbenchmarks of the simulator's primitive
 * operations: path read/write, pos-map walk, background eviction,
 * full controller accesses per scheme, policy bookkeeping, and the
 * isolated memory-layout loops (stash scan, PLB lookup, tree path
 * touch) that PR 2's cache-conscious containers target.
 * These measure *simulator* throughput (host time), useful for
 * estimating experiment wall-clock budgets.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "core/oram_controller.hh"
#include "obs/trace.hh"
#include "oram/evict_kernel.hh"
#include "sim/system.hh"
#include "sim/system_config.hh"
#include "trace/benchmarks.hh"
#include "trace/trace_file.hh"
#include "util/random.hh"

namespace proram
{
namespace
{

OramConfig
microCfg()
{
    OramConfig c;
    c.numDataBlocks = 1ULL << 14;
    c.seed = 77;
    return c;
}

HierarchyConfig
microHier()
{
    HierarchyConfig h;
    h.l1 = CacheConfig{32 * 128, 4, 128};
    h.l2 = CacheConfig{512 * 128, 8, 128};
    return h;
}

void
BM_PathReadWrite(benchmark::State &state)
{
    UnifiedOram oram(microCfg());
    oram.initialize();
    OramScheme &engine = oram.engine();
    Rng rng(1);
    for (auto _ : state) {
        const Leaf leaf = engine.randomLeaf();
        engine.readPath(leaf);
        engine.writePath(leaf);
        benchmark::DoNotOptimize(engine.stash().size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathReadWrite);

void
BM_BackgroundEviction(benchmark::State &state)
{
    UnifiedOram oram(microCfg());
    oram.initialize();
    for (auto _ : state)
        oram.engine().dummyAccess();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackgroundEviction);

void
BM_PosMapWalk(benchmark::State &state)
{
    UnifiedOram oram(microCfg());
    oram.initialize();
    Rng rng(2);
    for (auto _ : state) {
        const BlockId b{rng.below(oram.space().numDataBlocks())};
        benchmark::DoNotOptimize(oram.posMapWalk(b).pathAccesses());
        while (oram.engine().stash().overCapacity())
            oram.engine().dummyAccess();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PosMapWalk);

void
BM_ControllerAccess(benchmark::State &state)
{
    const auto scheme = static_cast<MemScheme>(state.range(0));
    CacheHierarchy hier(microHier());
    OramController ctl(microCfg(), ControllerConfig{}, hier);
    if (scheme == MemScheme::OramStatic)
        ctl.configureStatic(2);
    else if (scheme == MemScheme::OramDynamic)
        ctl.configureDynamic(DynamicPolicyConfig{});
    else
        ctl.configureBaseline();

    Rng rng(3);
    Cycles now{0};
    for (auto _ : state) {
        const BlockId b{rng.below(1ULL << 14)};
        now = ctl.demandAccess(now, b, OpType::Read);
        ctl.onDemandTouch(now, b);
        for (const auto &v : hier.fillFromMemory(b, false))
            ctl.writebackAccess(now, v.block);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(schemeName(scheme));
}
BENCHMARK(BM_ControllerAccess)
    ->Arg(static_cast<int>(MemScheme::OramBaseline))
    ->Arg(static_cast<int>(MemScheme::OramStatic))
    ->Arg(static_cast<int>(MemScheme::OramDynamic));

void
BM_StashScan(benchmark::State &state)
{
    // The writePath eviction scan in isolation: iterate a populated
    // stash and compute each block's eviction level off the cached
    // leaf (the contiguous-entry hot loop of the dense stash).
    UnifiedOram oram(microCfg());
    oram.initialize();
    OramScheme &engine = oram.engine();
    // Pull a few paths in without writing back to populate the stash.
    for (std::uint32_t l = 0; l < 4; ++l)
        engine.readPath(engine.randomLeaf());
    const BinaryTree &tree = engine.tree();
    Leaf target{0};
    for (auto _ : state) {
        std::uint64_t acc = 0;
        engine.stash().forEachResident([&](const StashEntry &e) {
            acc += tree.commonLevel(e.leaf, target).value();
        });
        benchmark::DoNotOptimize(acc);
        target = Leaf{static_cast<std::uint32_t>(
            (target.value() + 1) % tree.numLeaves())};
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["stashBlocks"] =
        static_cast<double>(engine.stash().size());
}
BENCHMARK(BM_StashScan);

void
BM_PlbLookup(benchmark::State &state)
{
    // PLB hit/miss/insert churn over a working set larger than the
    // cache: exercises the array-backed LRU's refresh and eviction.
    PosMapBlockCache plb(64);
    Rng rng(5);
    for (auto _ : state) {
        const BlockId b{rng.below(256)};
        if (!plb.lookup(b))
            plb.insert(b);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlbLookup);

void
BM_TreePathTouch(benchmark::State &state)
{
    // Raw slot-arena traversal: walk one root-to-leaf path and sum
    // bucket occupancies (the memory-access pattern of readPath
    // without the stash work).
    UnifiedOram oram(microCfg());
    oram.initialize();
    const BinaryTree &tree = oram.engine().tree();
    Leaf leaf{0};
    for (auto _ : state) {
        std::uint64_t occupied = 0;
        for (std::uint32_t l = 0; l <= tree.levels(); ++l)
            occupied += tree.occupancy(tree.nodeOnPath(leaf, Level{l}));
        benchmark::DoNotOptimize(occupied);
        leaf = Leaf{static_cast<std::uint32_t>(
            (leaf.value() + 1) % tree.numLeaves())};
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreePathTouch);

void
BM_SparseTreeTouch(benchmark::State &state)
{
    // BM_TreePathTouch with the sparse backend and nothing
    // materialized: the cost of the chunk-directory indirection on
    // the all-implicit read path (what cold tree regions pay under
    // the lazy layout).
    OramConfig cfg = microCfg();
    cfg.lazyInit = true;
    cfg.arena.kind = ArenaKind::Sparse;
    UnifiedOram oram(cfg);
    oram.initialize();
    const BinaryTree &tree = oram.engine().tree();
    Leaf leaf{0};
    for (auto _ : state) {
        std::uint64_t occupied = 0;
        for (std::uint32_t l = 0; l <= tree.levels(); ++l)
            occupied += tree.occupancy(tree.nodeOnPath(leaf, Level{l}));
        benchmark::DoNotOptimize(occupied);
        leaf = Leaf{static_cast<std::uint32_t>(
            (leaf.value() + 1) % tree.numLeaves())};
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["chunksMaterialized"] =
        static_cast<double>(tree.arena().chunksMaterialized());
    state.counters["arenaBytesResident"] =
        static_cast<double>(tree.arena().bytesResident());
}
BENCHMARK(BM_SparseTreeTouch);

void
BM_TreeConstruct(benchmark::State &state)
{
    // Dense arena construction at ~0.5 M buckets: dominated by lane
    // initialization (id/free fills; payload lanes stay
    // uninitialized until a real block lands).
    for (auto _ : state) {
        BinaryTree t(18, 3);
        benchmark::DoNotOptimize(t.numBuckets());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreeConstruct);

void
BM_LargeTreeDrive(benchmark::State &state)
{
    // Full controller accesses against a 2^24-block tree - a scale
    // the dense layout cannot even allocate on small hosts. Lazy
    // init + sparse arena keep residency proportional to the touched
    // working set; the counters record how much actually
    // materialized.
    OramConfig cfg;
    cfg.numDataBlocks = 1ULL << 24;
    cfg.stashCapacity = 400;
    cfg.seed = 77;
    cfg.lazyInit = true;
    cfg.arena.kind = ArenaKind::Sparse;
    CacheHierarchy hier(microHier());
    OramController ctl(cfg, ControllerConfig{}, hier);
    ctl.configureBaseline();
    Rng rng(9);
    for (auto _ : state) {
        const BlockId b{rng.below(cfg.numDataBlocks)};
        ctl.dataAccess(ctl.busyUntil(), b, OpType::Write, b.value(),
                       nullptr);
    }
    state.SetItemsProcessed(state.iterations());
    const ArenaBackend &arena = ctl.oram().engine().tree().arena();
    state.counters["chunksMaterialized"] =
        static_cast<double>(arena.chunksMaterialized());
    state.counters["arenaBytesResident"] =
        static_cast<double>(arena.bytesResident());
}
BENCHMARK(BM_LargeTreeDrive);

void
BM_EvictClassify(benchmark::State &state)
{
    // The vectorized heart of writePath: classify every stash slot's
    // eviction level against one path, per kernel variant. 512 slots
    // is a heavily loaded stash (capacity default is 200).
    const auto kernel = static_cast<evict::Kernel>(state.range(0));
    if (!evict::kernelAvailable(kernel)) {
        state.SkipWithError("kernel unavailable on this host");
        return;
    }
    constexpr std::size_t kSlots = 512;
    constexpr std::uint32_t kLevels = 14;
    std::vector<Leaf> leaves(kSlots);
    std::vector<std::uint32_t> out(kSlots);
    Rng rng(6);
    for (Leaf &l : leaves)
        l = Leaf{static_cast<std::uint32_t>(rng.below(1ULL << kLevels))};
    Leaf path_leaf{0};
    for (auto _ : state) {
        evict::classifyLevelsWith(kernel, leaves.data(), kSlots,
                                  path_leaf, kLevels, out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
        path_leaf = Leaf{(path_leaf.value() + 1) & ((1u << kLevels) - 1)};
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kSlots));
    state.SetLabel(evict::kernelName(kernel));
}
BENCHMARK(BM_EvictClassify)
    ->Arg(static_cast<int>(evict::Kernel::Scalar))
    ->Arg(static_cast<int>(evict::Kernel::Swar))
    ->Arg(static_cast<int>(evict::Kernel::Avx2));

void
BM_BatchedDrive(benchmark::State &state)
{
    // End-to-end drive-loop overhead: replay one pre-decoded trace
    // through a full System at the given batch size. The Dram scheme
    // keeps the backend cheap so decode + stats-flush overhead (what
    // batching amortizes) dominates the measurement.
    const auto batch = static_cast<std::uint32_t>(state.range(0));
    SystemConfig cfg = defaultSystemConfig();
    cfg.scheme = MemScheme::Dram;
    cfg.cpuBatch = batch;
    std::vector<TraceRecord> records;
    {
        auto gen = makeGenerator(profileByName("cholesky"), 0.05);
        TraceRecord rec;
        while (gen->next(rec))
            records.push_back(rec);
    }
    std::uint64_t refs = 0;
    for (auto _ : state) {
        System system(cfg);
        ReplayGenerator replay(records);
        const SimResult r = system.run(replay);
        benchmark::DoNotOptimize(r.cycles);
        refs += r.references;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
    state.counters["traceRecords"] =
        static_cast<double>(records.size());
}
BENCHMARK(BM_BatchedDrive)->Arg(1)->Arg(64);

void
BM_ConcurrentDrive(benchmark::State &state)
{
    // The concurrent-controller headline: drain one fixed pre-decoded
    // trace through the pipelined controller at N workers (DESIGN.md
    // §11). Arg 1 is the exact serial protocol; the ratio at Arg 4 is
    // the concurrency win, bounded by host cores (see host.cpus in
    // the benchmark snapshot). Real time, not CPU time: worker
    // threads sum in the latter.
    const auto workers = static_cast<std::uint32_t>(state.range(0));
    SystemConfig cfg = defaultSystemConfig();
    cfg.scheme = MemScheme::OramDynamic;
    cfg.oram.numDataBlocks = 1ULL << 12;
    cfg.workers = workers;
    std::vector<TraceRecord> records(2048);
    std::uint64_t x = 9;
    for (TraceRecord &rec : records) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        rec.addr = (x % (1ULL << 12)) * 128;
        rec.op = (x >> 32) % 4 == 0 ? OpType::Write : OpType::Read;
    }
    System system(cfg);
    std::uint64_t refs = 0;
    for (auto _ : state) {
        const SimResult r = system.runQueue(records);
        benchmark::DoNotOptimize(r.cycles);
        refs += r.references;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
    state.counters["workers"] = static_cast<double>(workers);
}
BENCHMARK(BM_ConcurrentDrive)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void
BM_TraceOverhead(benchmark::State &state)
{
    // The <=2% compiled-in-but-idle budget (ISSUE acceptance): run
    // the instrumented ORAM access loop with the tracer disabled
    // (Arg 0) and enabled (Arg 1). Arg 0 vs a -DPRORAM_TRACING=OFF
    // build of the same bench bounds the macro cost; Arg 1 prices
    // actual recording (not part of the budget, reported for scale).
    const bool tracing = state.range(0) != 0;
#if PRORAM_TRACE_ENABLED
    obs::TraceSink &sink = obs::TraceSink::instance();
    const bool was_enabled = sink.enabled();
    sink.setEnabled(tracing);
#else
    if (tracing) {
        state.SkipWithError("tracer compiled out");
        return;
    }
#endif
    CacheHierarchy hier(microHier());
    OramController ctl(microCfg(), ControllerConfig{}, hier);
    ctl.configureDynamic(DynamicPolicyConfig{});
    Rng rng(7);
    Cycles now{0};
    for (auto _ : state) {
        const BlockId b{rng.below(1ULL << 14)};
        now = ctl.demandAccess(now, b, OpType::Read);
        ctl.onDemandTouch(now, b);
        for (const auto &v : hier.fillFromMemory(b, false))
            ctl.writebackAccess(now, v.block);
    }
#if PRORAM_TRACE_ENABLED
    sink.setEnabled(was_enabled);
    sink.clear();
#endif
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(tracing ? "tracing" : "idle");
}
BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1);

void
BM_MergeBreakBookkeeping(benchmark::State &state)
{
    // Isolated policy-math cost: counter reconstruction + threshold.
    UnifiedOram oram(microCfg());
    oram.initialize();
    class NoLlc : public LlcProbe
    {
      public:
        bool probe(BlockId) const override { return true; }
    } llc;
    DynamicSuperBlockPolicy policy(oram, llc, DynamicPolicyConfig{});
    Rng rng(4);
    std::uint32_t v = 0;
    for (auto _ : state) {
        const BlockId pair{rng.below((1ULL << 14) / 2) * 2};
        policy.writeMergeCounter(pair, 1, v & 3);
        benchmark::DoNotOptimize(policy.readMergeCounter(pair, 1));
        benchmark::DoNotOptimize(policy.mergeThreshold(1));
        ++v;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MergeBreakBookkeeping);

} // namespace
} // namespace proram

BENCHMARK_MAIN();
