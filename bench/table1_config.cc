/**
 * @file
 * Table 1: system configuration. Prints the default configuration
 * used by every experiment plus the derived ORAM geometry/timing.
 */

#include <cstdio>

#include "common.hh"

using namespace proram;

int
main()
{
    bench::banner("Table 1: System Configuration",
                  "the parameters of the paper's secure processor");

    const SystemConfig cfg = defaultSystemConfig();
    const OramConfig &o = cfg.oram;

    stats::Table t({"parameter", "value"});
    t.row().add("Core model").add("1 GHz, in-order, trace-driven");
    t.row().add("L1 I/D cache").add(
        std::to_string(cfg.hierarchy.l1.sizeBytes / 1024) + " KB, " +
        std::to_string(cfg.hierarchy.l1.ways) + "-way");
    t.row().add("Shared L2 cache").add(
        std::to_string(cfg.hierarchy.l2.sizeBytes / 1024) + " KB, " +
        std::to_string(cfg.hierarchy.l2.ways) + "-way");
    t.row().add("Cacheline (block) size").addInt(
        cfg.hierarchy.l1.lineBytes);
    t.row().add("DRAM bandwidth (GB/s)").add(o.dramBytesPerCycle, 1);
    t.row().add("Conventional DRAM latency").addInt(
        cfg.dram.dram.latency.value());
    t.row().add("ORAM capacity (data blocks)").addInt(o.numDataBlocks);
    t.row().add("Number of ORAM hierarchies").addInt(o.hierarchies);
    t.row().add("ORAM basic block size (B)").addInt(o.blockBytes);
    t.row().add("Z (blocks/bucket)").addInt(o.z);
    t.row().add("Max super block size").addInt(cfg.dynamic.maxSbSize);
    t.row().add("Stash size (blocks)").addInt(o.stashCapacity);

    // Derived geometry.
    t.row().add("-- derived: tree levels L").addInt(o.levels());
    t.row().add("-- derived: pos-map levels in tree").addInt(
        o.posMapLevels());
    t.row().add("-- derived: pos-map fanout").addInt(o.posMapFanout());
    t.row().add("-- derived: on-chip pos-map entries").addInt(
        o.onChipPosMapEntries());
    t.row().add("-- derived: path access latency (cycles)").addInt(
        o.pathAccessCycles().value());
    const double util =
        static_cast<double>(o.numTotalBlocks()) /
        (static_cast<double>(o.z) * ((2ULL << o.levels()) - 1));
    t.row().add("-- derived: tree slot utilization").add(util, 3);

    // Full-size (8 GB, 2^26 blocks) timing for reference.
    OramConfig full = o;
    full.timingLevels = 26;
    t.row()
        .add("-- 8 GB configuration path latency (cycles)")
        .addInt(full.pathAccessCycles().value());

    std::printf("%s\n", t.str().c_str());
    return 0;
}
