/**
 * @file
 * Shared plumbing for the figure-reproduction binaries: scale factor,
 * banner printing, and the standard scheme set.
 */

#ifndef PRORAM_BENCH_COMMON_HH
#define PRORAM_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "sim/experiment.hh"
#include "stats/table.hh"

namespace proram::bench
{

/** Print the figure banner with the paper-expected shape. */
inline void
banner(const std::string &title, const std::string &expectation)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Paper expectation: %s\n", expectation.c_str());
    const double scale = benchScaleFromEnv();
    if (scale != 1.0)
        std::printf("(PRORAM_BENCH_SCALE=%.3g - shortened traces)\n",
                    scale);
    const unsigned threads = Experiment::benchThreadsFromEnv();
    if (threads > 1)
        std::printf("(PRORAM_BENCH_THREADS=%u - parallel grid cells)\n",
                    threads);
    std::printf("==============================================================\n");
}

/** Build the default experiment at the env-controlled scale. */
inline Experiment
defaultExperiment()
{
    return Experiment(defaultSystemConfig(), benchScaleFromEnv());
}

/**
 * Grid-cell factories: bind one simulation run into an
 * Experiment::GridCell for runGrid(). The cell captures @p exp by
 * reference - keep the Experiment alive until runGrid() returns.
 */
inline Experiment::GridCell
benchmarkCell(const Experiment &exp, MemScheme scheme,
              const BenchmarkProfile &profile)
{
    return [&exp, scheme, profile] {
        return exp.runBenchmark(scheme, profile);
    };
}

inline Experiment::GridCell
generatorCell(const Experiment &exp, MemScheme scheme,
              std::function<std::unique_ptr<TraceGenerator>()> make_gen)
{
    return [&exp, scheme, make_gen = std::move(make_gen)] {
        return exp.runGenerator(scheme, make_gen);
    };
}

} // namespace proram::bench

#endif // PRORAM_BENCH_COMMON_HH
