/**
 * @file
 * Fig. 6b: phase-change synthetic benchmark. Sm/Am = static/adaptive
 * merging threshold; Nb/Ab = no breaking / adaptive breaking. The
 * breaking variants adapt to the phases and win (Sec. 5.3.2).
 */

#include <cstdio>

#include "common.hh"
#include "trace/synthetic.hh"

using namespace proram;

namespace
{

std::unique_ptr<TraceGenerator>
phaseGen()
{
    SyntheticConfig c;
    c.footprintBlocks = 1ULL << 14;
    c.numAccesses = static_cast<std::uint64_t>(
        160000 * proram::benchScaleFromEnv());
    c.phaseLength = c.numAccesses / 6; // six phases
    c.computeCycles = 4;
    c.seed = 6;
    return std::make_unique<SyntheticGenerator>(c);
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 6b: Phase-change behaviour (Sm/Am merge x Nb/Ab break)",
        "am_ab best: breaking adapts to phases, cutting memory "
        "accesses and the prefetch miss rate vs the Nb variants");

    // Z=3 default: the regime where stale super blocks cost
    // background evictions, so breaking pays (EXPERIMENTS.md).
    SystemConfig cfg = defaultSystemConfig();
    const Experiment exp(cfg, 1.0);

    const auto oram =
        exp.runGenerator(MemScheme::OramBaseline, phaseGen);

    stats::Table t({"variant", "speedup", "norm.mem.accesses",
                    "prefetch.missrate", "breaks"});

    const auto stat = exp.runGenerator(MemScheme::OramStatic, phaseGen);
    t.row()
        .add("static")
        .addPct(metrics::speedup(oram, stat))
        .add(metrics::normMemAccesses(oram, stat), 3)
        .add(stat.prefetchMissRate(), 3)
        .addInt(stat.breaks);

    struct Variant
    {
        const char *name;
        DynamicPolicyConfig::MergeThreshold merge;
        DynamicPolicyConfig::BreakMode brk;
    };
    const Variant variants[] = {
        {"sm_nb", DynamicPolicyConfig::MergeThreshold::Static,
         DynamicPolicyConfig::BreakMode::None},
        {"am_nb", DynamicPolicyConfig::MergeThreshold::Adaptive,
         DynamicPolicyConfig::BreakMode::None},
        {"am_ab", DynamicPolicyConfig::MergeThreshold::Adaptive,
         DynamicPolicyConfig::BreakMode::Adaptive},
    };
    for (const Variant &v : variants) {
        const auto res = exp.runWith(
            MemScheme::OramDynamic,
            [&](SystemConfig &c) {
                c.dynamic.mergeThreshold = v.merge;
                c.dynamic.breakMode = v.brk;
            },
            phaseGen);
        t.row()
            .add(v.name)
            .addPct(metrics::speedup(oram, res))
            .add(metrics::normMemAccesses(oram, res), 3)
            .add(res.prefetchMissRate(), 3)
            .addInt(res.breaks);
    }

    std::printf("%s\n", t.str().c_str());
    return 0;
}
