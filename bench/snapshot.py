#!/usr/bin/env python3
"""Append a micro_ops snapshot to BENCH_micro_ops.json.

Runs the micro_ops google-benchmark binary with repetitions, takes the
per-benchmark median of real_time, and appends a correctly-keyed entry
to the snapshots list:

    bench/snapshot.py --binary build/bench/micro_ops \\
        --label pr3_after \\
        --description "SIMD eviction scan + batched drive loop" \\
        --speedup-vs pr3_before

Only stdlib; safe to run on any host with the repo built. The JSON
file is rewritten with 2-space indentation (matching the committed
style) and a trailing newline.
"""

import argparse
import json
import pathlib
import statistics
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_micro_ops.json"


def run_benchmarks(binary, repetitions, min_time, bench_filter):
    cmd = [
        str(binary),
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
        f"--benchmark_repetitions={repetitions}",
        "--benchmark_report_aggregates_only=true",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    return json.loads(out.stdout)


def medians(report):
    """Median real_time per benchmark, keyed like the committed file
    (e.g. 'BM_ControllerAccess/2'). Prefers the _median aggregate the
    binary already computed; falls back to collecting repetitions."""
    agg = {}
    raw = {}
    for row in report.get("benchmarks", []):
        name = row["name"]
        if row.get("run_type") == "aggregate":
            if row.get("aggregate_name") == "median":
                agg[name.removesuffix("_median")] = row["real_time"]
        else:
            raw.setdefault(name, []).append(row["real_time"])
    if agg:
        return {k: round(v, 1) for k, v in sorted(agg.items())}
    return {
        k: round(statistics.median(v), 1) for k, v in sorted(raw.items())
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", required=True,
                    help="path to the built micro_ops binary")
    ap.add_argument("--label", required=True,
                    help="snapshot key, e.g. pr3_after")
    ap.add_argument("--description", required=True)
    ap.add_argument("--json", default=str(DEFAULT_JSON),
                    help=f"snapshot file (default {DEFAULT_JSON})")
    ap.add_argument("--repetitions", type=int, default=5)
    ap.add_argument("--min-time", default="0.2")
    ap.add_argument("--filter", default="",
                    help="--benchmark_filter regex passthrough")
    ap.add_argument("--speedup-vs", action="append", default=[],
                    help="existing snapshot label to compute speedups "
                         "against (repeatable)")
    args = ap.parse_args()

    path = pathlib.Path(args.json)
    doc = json.loads(path.read_text())
    snapshots = doc.setdefault("snapshots", [])
    if any(s.get("label") == args.label for s in snapshots):
        sys.exit(f"error: snapshot '{args.label}' already exists "
                 f"in {path}; pick a new label")
    by_label = {s["label"]: s for s in snapshots}
    for base in args.speedup_vs:
        if base not in by_label:
            sys.exit(f"error: --speedup-vs label '{base}' not found "
                     f"in {path}")

    report = run_benchmarks(args.binary, args.repetitions,
                            args.min_time, args.filter)
    micro = medians(report)
    if not micro:
        sys.exit("error: benchmark run produced no results")

    entry = {
        "label": args.label,
        "description": args.description,
        "micro_ops": micro,
    }
    speedups = {}
    for base in args.speedup_vs:
        base_micro = by_label[base].get("micro_ops", {})
        common = {
            k: round(base_micro[k] / v, 2)
            for k, v in micro.items()
            if k in base_micro and v > 0
        }
        if common:
            speedups[base] = common
    if speedups:
        entry["speedup_vs"] = speedups

    snapshots.append(entry)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"appended '{args.label}' ({len(micro)} benchmarks) "
          f"to {path}")
    for name, val in micro.items():
        print(f"  {name}: {val}")


if __name__ == "__main__":
    main()
