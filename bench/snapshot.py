#!/usr/bin/env python3
"""Record and compare micro_ops snapshots in BENCH_micro_ops.json.

Snapshot mode runs the micro_ops google-benchmark binary with
repetitions, takes the per-benchmark median of real_time, and appends
a correctly-keyed entry to the snapshots list:

    bench/snapshot.py --binary build/bench/micro_ops \\
        --label pr3_after \\
        --description "SIMD eviction scan + batched drive loop" \\
        --speedup-vs pr3_before

A duplicate label is an error unless --force is given, in which case
the existing entry is replaced in place (its position is kept so
diffs stay readable).

Compare mode runs the binary and checks the fresh medians against a
committed snapshot instead of writing anything; it exits nonzero when
any benchmark regressed by more than --max-regression (CI's
bench-smoke-compare job runs this as a soft gate):

    bench/snapshot.py --binary build/bench/micro_ops \\
        --compare-vs pr3_after --max-regression 0.25

--metrics-jsonl ingests a PRORAM_METRICS_FILE dump (one
proram-metrics-v1 JSON object per line) and attaches a per-scheme
summary to the snapshot entry.

--scheme {path,ring} tags the snapshot with the ORAM protocol it ran
(and exports PRORAM_SCHEME to the benchmark subprocesses, so the tag
is always what actually executed). Compare and --speedup-vs refuse a
base label taken under a different scheme: cross-protocol ratios are
design differences, not regressions. Entries predating the tag count
as "path".

--throughput-binary runs the sustained-throughput driver
(build/bench/throughput_drive --json) and attaches its
proram-throughput-v1 output as the entry's "throughput" section, so
snapshots carry open-loop req/s and latency percentiles per worker
count alongside the micro_ops medians.

Only stdlib; safe to run on any host with the repo built. The JSON
file is rewritten with 2-space indentation (matching the committed
style) and a trailing newline.
"""

import argparse
import json
import os
import pathlib
import statistics
import subprocess
import sys

try:
    import resource
except ImportError:  # non-POSIX host: skip the peak-RSS sample
    resource = None

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_micro_ops.json"
METRICS_SCHEMA = "proram-metrics-v1"

# User counters the arena benchmarks export (micro_ops.cc); folded
# into the snapshot's memory section when present.
MEMORY_COUNTERS = ("arenaBytesResident", "chunksMaterialized")


def run_benchmarks(binary, repetitions, min_time, bench_filter,
                   scheme=None):
    cmd = [
        str(binary),
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
        f"--benchmark_repetitions={repetitions}",
        "--benchmark_report_aggregates_only=true",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    env = dict(os.environ)
    if scheme:
        # The binaries resolve $PRORAM_SCHEME through OramConfig, so
        # the tag recorded in the snapshot is also what actually ran.
        env["PRORAM_SCHEME"] = scheme
    out = subprocess.run(cmd, check=True, capture_output=True, text=True,
                         env=env)
    return json.loads(out.stdout)


def medians(report):
    """Median real_time per benchmark, keyed like the committed file
    (e.g. 'BM_ControllerAccess/2'). Prefers the _median aggregate the
    binary already computed; falls back to collecting repetitions."""
    agg = {}
    raw = {}
    for row in report.get("benchmarks", []):
        name = row["name"]
        if row.get("run_type") == "aggregate":
            if row.get("aggregate_name") == "median":
                agg[name.removesuffix("_median")] = row["real_time"]
        else:
            raw.setdefault(name, []).append(row["real_time"])
    if agg:
        return {k: round(v, 1) for k, v in sorted(agg.items())}
    return {
        k: round(statistics.median(v), 1) for k, v in sorted(raw.items())
    }


def memory_counters(report):
    """Per-benchmark MEMORY_COUNTERS values, keyed like medians().
    Prefers the _median aggregate rows; counter values are identical
    across repetitions (they report end-state, not time)."""
    out = {}
    for row in report.get("benchmarks", []):
        if (row.get("run_type") == "aggregate"
                and row.get("aggregate_name") != "median"):
            continue
        vals = {c: row[c] for c in MEMORY_COUNTERS if c in row}
        if vals:
            out.setdefault(row["name"].removesuffix("_median"), vals)
    return out


def peak_rss_children_bytes():
    """Peak resident set of finished child processes (the benchmark
    binary), in bytes. 0 where getrusage is unavailable."""
    if resource is None:
        return 0
    # Linux reports ru_maxrss in kilobytes.
    return resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * 1024


def summarize_metrics(jsonl_path):
    """Fold a PRORAM_METRICS_FILE JSONL into a compact per-scheme
    summary: run count plus the mean of each histogram's mean."""
    runs = 0
    schemes = {}
    for line in pathlib.Path(jsonl_path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        doc = json.loads(line)
        if doc.get("schema") != METRICS_SCHEMA:
            sys.exit(f"error: {jsonl_path}: expected schema "
                     f"'{METRICS_SCHEMA}', got '{doc.get('schema')}'")
        runs += 1
        entry = schemes.setdefault(doc.get("scheme", "unknown"),
                                   {"runs": 0, "histMeans": {}})
        entry["runs"] += 1
        for name, hist in doc.get("histograms", {}).items():
            entry["histMeans"].setdefault(name, []).append(hist["mean"])
    for entry in schemes.values():
        entry["histMeans"] = {
            k: round(statistics.mean(v), 2)
            for k, v in sorted(entry["histMeans"].items())
        }
    return {"runs": runs, "schemes": schemes}


THROUGHPUT_SCHEMA = "proram-throughput-v1"


def run_throughput(binary, extra_args, scheme=None):
    """Run the open-loop throughput driver and return its parsed
    --json document (schema-checked)."""
    cmd = [str(binary), "--json"] + list(extra_args)
    env = dict(os.environ)
    if scheme:
        env["PRORAM_SCHEME"] = scheme
    out = subprocess.run(cmd, check=True, capture_output=True, text=True,
                         env=env)
    doc = json.loads(out.stdout)
    if doc.get("schema") != THROUGHPUT_SCHEMA:
        sys.exit(f"error: {binary}: expected schema "
                 f"'{THROUGHPUT_SCHEMA}', got '{doc.get('schema')}'")
    return doc


def compare(base_micro, micro, max_regression):
    """Per-benchmark new/base ratios. Returns (rows, regressed) where
    rows are (name, base, new, ratio) for benchmarks present in both."""
    rows = []
    regressed = []
    for name in sorted(micro):
        if name not in base_micro or base_micro[name] <= 0:
            continue
        ratio = micro[name] / base_micro[name]
        rows.append((name, base_micro[name], micro[name], ratio))
        if ratio > 1.0 + max_regression:
            regressed.append(name)
    return rows, regressed


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--binary", required=True,
                    help="path to the built micro_ops binary")
    ap.add_argument("--label",
                    help="snapshot key, e.g. pr3_after (snapshot mode)")
    ap.add_argument("--description", default="")
    ap.add_argument("--json", default=str(DEFAULT_JSON),
                    help=f"snapshot file (default {DEFAULT_JSON})")
    ap.add_argument("--repetitions", type=int, default=5)
    ap.add_argument("--min-time", default="0.2")
    ap.add_argument("--filter", default="",
                    help="--benchmark_filter regex passthrough")
    ap.add_argument("--speedup-vs", action="append", default=[],
                    help="existing snapshot label to compute speedups "
                         "against (repeatable)")
    ap.add_argument("--force", action="store_true",
                    help="replace an existing snapshot with the same "
                         "label instead of erroring")
    ap.add_argument("--compare-vs",
                    help="compare a fresh run against this snapshot "
                         "label instead of recording (exits 1 on "
                         "regression)")
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="allowed fractional slowdown per benchmark "
                         "in compare mode (default 0.25)")
    ap.add_argument("--metrics-jsonl",
                    help="PRORAM_METRICS_FILE dump to summarize into "
                         "the snapshot entry")
    ap.add_argument("--throughput-binary",
                    help="path to the built throughput_drive binary; "
                         "its --json output becomes the entry's "
                         "'throughput' section")
    ap.add_argument("--throughput-args", default="",
                    help="extra args for --throughput-binary, "
                         "space-separated (e.g. '--reps 5')")
    ap.add_argument("--scheme", default="path",
                    choices=("path", "ring"),
                    help="ORAM protocol to run and tag the snapshot "
                         "with (exports PRORAM_SCHEME; default path). "
                         "Compare mode refuses a base snapshot taken "
                         "under a different scheme.")
    args = ap.parse_args()

    if not args.compare_vs and not args.label:
        ap.error("--label is required unless --compare-vs is given")
    if args.compare_vs and args.label:
        ap.error("--label and --compare-vs are mutually exclusive")
    if args.label and not args.description:
        ap.error("--description is required with --label")

    path = pathlib.Path(args.json)
    doc = json.loads(path.read_text())
    snapshots = doc.setdefault("snapshots", [])
    by_label = {s["label"]: s for s in snapshots}

    if args.compare_vs:
        if args.compare_vs not in by_label:
            sys.exit(f"error: --compare-vs label '{args.compare_vs}' "
                     f"not found in {path}")
        # A ratio between protocols is not a regression signal: Ring
        # bills different bucket traffic by design, so mixed-scheme
        # comparisons are an error, never a silent pass. Snapshots
        # predating the scheme tag were all taken under Path ORAM.
        base_scheme = by_label[args.compare_vs].get("scheme", "path")
        if base_scheme != args.scheme:
            sys.exit(f"error: --compare-vs label '{args.compare_vs}' "
                     f"was taken under scheme '{base_scheme}' but this "
                     f"run uses '--scheme {args.scheme}'; compare "
                     f"same-scheme snapshots only")
        base_micro = by_label[args.compare_vs].get("micro_ops", {})
        report = run_benchmarks(args.binary, args.repetitions,
                                args.min_time, args.filter,
                                scheme=args.scheme)
        micro = medians(report)
        if not micro:
            sys.exit("error: benchmark run produced no results")
        rows, regressed = compare(base_micro, micro,
                                  args.max_regression)
        if not rows:
            sys.exit(f"error: no benchmarks in common with "
                     f"'{args.compare_vs}'")
        print(f"compare vs '{args.compare_vs}' "
              f"(max regression {args.max_regression:.0%}):")
        for name, base, new, ratio in rows:
            flag = "  REGRESSED" if name in regressed else ""
            print(f"  {name}: {base} -> {new} "
                  f"({ratio:.2f}x){flag}")
        if regressed:
            print(f"{len(regressed)} benchmark(s) regressed more "
                  f"than {args.max_regression:.0%}")
            sys.exit(1)
        print("no regressions beyond threshold")
        return

    existing = by_label.get(args.label)
    if existing is not None and not args.force:
        sys.exit(f"error: snapshot '{args.label}' already exists "
                 f"in {path}; pick a new label or pass --force")
    for base in args.speedup_vs:
        if base not in by_label:
            sys.exit(f"error: --speedup-vs label '{base}' not found "
                     f"in {path}")
        if base == args.label:
            sys.exit("error: --speedup-vs cannot reference the "
                     "label being recorded")
        base_scheme = by_label[base].get("scheme", "path")
        if base_scheme != args.scheme:
            sys.exit(f"error: --speedup-vs label '{base}' was taken "
                     f"under scheme '{base_scheme}' but this run uses "
                     f"'--scheme {args.scheme}'; speedups are only "
                     f"meaningful between same-scheme snapshots")

    report = run_benchmarks(args.binary, args.repetitions,
                            args.min_time, args.filter,
                            scheme=args.scheme)
    micro = medians(report)
    if not micro:
        sys.exit("error: benchmark run produced no results")

    # Concurrency benchmarks (BM_ConcurrentDrive) only show speedup on
    # multi-core hosts, so every snapshot records where it was taken
    # instead of trusting the file-level hardcoded host block.
    host_cpus = os.cpu_count() or 1
    entry = {
        "label": args.label,
        "description": args.description,
        "scheme": args.scheme,
        "host": {"cpus": host_cpus},
        "micro_ops": micro,
    }
    if isinstance(doc.get("host"), dict):
        doc["host"]["cpus"] = host_cpus
    speedups = {}
    for base in args.speedup_vs:
        base_micro = by_label[base].get("micro_ops", {})
        common = {
            k: round(base_micro[k] / v, 2)
            for k, v in micro.items()
            if k in base_micro and v > 0
        }
        if common:
            speedups[base] = common
    if speedups:
        entry["speedup_vs"] = speedups
    # Memory section: the benchmark subprocess's peak RSS plus any
    # arena counters the benchmarks exported.
    memory = {"peakRssBytes": peak_rss_children_bytes()}
    counters = memory_counters(report)
    if counters:
        memory["benchCounters"] = counters
    entry["memory"] = memory
    if args.metrics_jsonl:
        entry["metrics"] = summarize_metrics(args.metrics_jsonl)
    if args.throughput_binary:
        entry["throughput"] = run_throughput(
            args.throughput_binary, args.throughput_args.split(),
            scheme=args.scheme)

    if existing is not None:
        snapshots[snapshots.index(existing)] = entry
        verb = "replaced"
    else:
        snapshots.append(entry)
        verb = "appended"
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"{verb} '{args.label}' ({len(micro)} benchmarks) "
          f"in {path}")
    for name, val in micro.items():
        print(f"  {name}: {val}")


if __name__ == "__main__":
    main()
