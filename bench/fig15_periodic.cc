/**
 * @file
 * Fig. 15: timing-channel protection via periodic ORAM accesses
 * (Oint = 100). Speedups are relative to the *periodic* baseline
 * ORAM; the non-periodic baseline ("oram") is shown for comparison.
 * Super block gains survive periodicity (Sec. 5.6).
 */

#include <cstdio>
#include <vector>

#include "common.hh"

using namespace proram;

namespace
{

void
runSuite(const Experiment &exp, const char *title,
         const std::vector<BenchmarkProfile> &suite)
{
    std::printf("--- %s ---\n", title);
    stats::Table t({"bench", "oram", "stat_intvl", "dyn_intvl"});
    std::vector<double> o_all, s_all, d_all, s_mem, d_mem;

    auto periodic = [](SystemConfig &c) {
        c.controller.periodic.enabled = true;
        c.controller.periodic.oInt = Cycles{100};
    };

    for (const auto &prof : suite) {
        auto gen = [&] { return makeGenerator(prof, exp.traceScale()); };
        const auto base =
            exp.runWith(MemScheme::OramBaseline, periodic, gen);
        const auto oram =
            exp.runGenerator(MemScheme::OramBaseline, gen);
        const auto stat =
            exp.runWith(MemScheme::OramStatic, periodic, gen);
        const auto dyn =
            exp.runWith(MemScheme::OramDynamic, periodic, gen);

        const double og = metrics::speedup(base, oram);
        const double sg = metrics::speedup(base, stat);
        const double dg = metrics::speedup(base, dyn);
        o_all.push_back(og);
        s_all.push_back(sg);
        d_all.push_back(dg);
        if (prof.memoryIntensive) {
            s_mem.push_back(sg);
            d_mem.push_back(dg);
        }
        t.row().add(prof.name).addPct(og).addPct(sg).addPct(dg);
    }
    t.row()
        .add("avg")
        .addPct(mean(o_all))
        .addPct(mean(s_all))
        .addPct(mean(d_all));
    if (!s_mem.empty()) {
        t.row()
            .add("mem_avg")
            .add("")
            .addPct(mean(s_mem))
            .addPct(mean(d_mem));
    }
    std::printf("%s\n", t.str().c_str());
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 15: Periodic ORAM accesses (Oint = 100 cycles)",
        "periodicity costs only a few percent (oram column small); "
        "dyn_intvl keeps its gain under periodicity");

    const Experiment exp = bench::defaultExperiment();
    runSuite(exp, "Fig. 15a: Splash2", splash2Suite());
    runSuite(exp, "Fig. 15b: SPEC06", spec06Suite());
    runSuite(exp, "Fig. 15c: DBMS", dbmsSuite());
    return 0;
}
