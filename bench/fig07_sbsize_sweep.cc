/**
 * @file
 * Fig. 7: super-block-size sweep on the 100%-locality synthetic
 * benchmark. Static degrades quickly with sbsize (background
 * evictions explode); the dynamic scheme's adaptive thresholding
 * throttles merging and stays flat (Sec. 5.3.3).
 */

#include <cstdio>

#include "common.hh"
#include "trace/synthetic.hh"

using namespace proram;

namespace
{

std::unique_ptr<TraceGenerator>
seqGen()
{
    SyntheticConfig c;
    c.footprintBlocks = 1ULL << 14;
    c.numAccesses = static_cast<std::uint64_t>(
        60000 * proram::benchScaleFromEnv());
    c.localityFraction = 1.0;
    c.computeCycles = 4;
    c.seed = 3;
    return std::make_unique<SyntheticGenerator>(c);
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 7: Super block size sweep (100% locality synthetic)",
        "stat collapses as sbsize grows (bg evictions); dyn throttles "
        "merging and stays positive");

    // Sec. 5.3 runs the synthetic experiments at Z=4; at Z=3 a
    // static sbsize-8 layout cannot even fit in the tree (the stash
    // floor is thousands of blocks), so the sweep uses Z=4 like the
    // paper.
    SystemConfig cfg = defaultSystemConfig();
    cfg.oram.z = 4;
    const Experiment exp(cfg, 1.0);

    const auto oram = exp.runGenerator(MemScheme::OramBaseline, seqGen);

    stats::Table t({"sbsize", "stat", "stat.norm.acc", "stat.bg",
                    "dyn", "dyn.norm.acc", "dyn.bg"});
    for (std::uint32_t sb : {2u, 4u, 8u}) {
        const auto stat = exp.runWith(
            MemScheme::OramStatic,
            [&](SystemConfig &c) { c.staticSbSize = sb; }, seqGen);
        const auto dyn = exp.runWith(
            MemScheme::OramDynamic,
            [&](SystemConfig &c) { c.dynamic.maxSbSize = sb; }, seqGen);
        t.row()
            .addInt(sb)
            .addPct(metrics::speedup(oram, stat))
            .add(metrics::normMemAccesses(oram, stat), 3)
            .addInt(stat.bgEvictions)
            .addPct(metrics::speedup(oram, dyn))
            .add(metrics::normMemAccesses(oram, dyn), 3)
            .addInt(dyn.bgEvictions);
    }
    std::printf("%s\n", t.str().c_str());
    return 0;
}
