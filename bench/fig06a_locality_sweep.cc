/**
 * @file
 * Fig. 6a: synthetic locality sweep (Z = 4). Static super blocks lose
 * at low locality and win at high locality; the dynamic scheme tracks
 * the baseline at zero locality and the static scheme at full
 * locality (Sec. 5.3.1).
 */

#include <cstdio>

#include "common.hh"
#include "trace/synthetic.hh"

using namespace proram;

int
main()
{
    bench::banner(
        "Figure 6a: Sweep of the percentage of data with locality",
        "stat < 0 at low locality, rising with locality; dyn >= oram "
        "everywhere, matching stat at 100%");

    // The paper runs this sweep at Z=4 to accentuate differences;
    // in this simulator's calibration the super-block-pressure regime
    // is Z=3 (the Table 1 default), so we sweep there - see
    // EXPERIMENTS.md.
    SystemConfig cfg = defaultSystemConfig();
    const Experiment exp(cfg, benchScaleFromEnv());

    stats::Table t({"locality", "stat", "dyn"});
    for (double f : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
        auto gen = [&] {
            SyntheticConfig c;
            c.footprintBlocks = 1ULL << 14;
            c.numAccesses = static_cast<std::uint64_t>(
                60000 * benchScaleFromEnv());
            c.localityFraction = f;
            c.computeCycles = 4;
            c.seed = 3;
            return std::make_unique<SyntheticGenerator>(c);
        };
        const auto oram = exp.runGenerator(MemScheme::OramBaseline, gen);
        const auto stat = exp.runGenerator(MemScheme::OramStatic, gen);
        const auto dyn = exp.runGenerator(MemScheme::OramDynamic, gen);
        t.row()
            .add(f, 1)
            .addPct(metrics::speedup(oram, stat))
            .addPct(metrics::speedup(oram, dyn));
    }
    std::printf("%s\n", t.str().c_str());
    return 0;
}
