/**
 * @file
 * Fig. 6a: synthetic locality sweep (Z = 4). Static super blocks lose
 * at low locality and win at high locality; the dynamic scheme tracks
 * the baseline at zero locality and the static scheme at full
 * locality (Sec. 5.3.1).
 */

#include <cstdio>

#include "common.hh"
#include "trace/synthetic.hh"

using namespace proram;

int
main()
{
    bench::banner(
        "Figure 6a: Sweep of the percentage of data with locality",
        "stat < 0 at low locality, rising with locality; dyn >= oram "
        "everywhere, matching stat at 100%");

    // The paper runs this sweep at Z=4 to accentuate differences;
    // in this simulator's calibration the super-block-pressure regime
    // is Z=3 (the Table 1 default), so we sweep there - see
    // EXPERIMENTS.md.
    SystemConfig cfg = defaultSystemConfig();
    const Experiment exp(cfg, benchScaleFromEnv());

    const std::vector<double> fractions = {0.0, 0.2, 0.4,
                                           0.6, 0.8, 1.0};
    std::vector<Experiment::GridCell> cells;
    for (double f : fractions) {
        auto gen = [f] {
            SyntheticConfig c;
            c.footprintBlocks = 1ULL << 14;
            c.numAccesses = static_cast<std::uint64_t>(
                60000 * benchScaleFromEnv());
            c.localityFraction = f;
            c.computeCycles = 4;
            c.seed = 3;
            return std::make_unique<SyntheticGenerator>(c);
        };
        for (MemScheme s :
             {MemScheme::OramBaseline, MemScheme::OramStatic,
              MemScheme::OramDynamic})
            cells.push_back(bench::generatorCell(exp, s, gen));
    }
    const std::vector<SimResult> results = exp.runGrid(cells);

    stats::Table t({"locality", "stat", "dyn"});
    for (std::size_t i = 0; i < fractions.size(); ++i) {
        const auto &oram = results[i * 3 + 0];
        const auto &stat = results[i * 3 + 1];
        const auto &dyn = results[i * 3 + 2];
        t.row()
            .add(fractions[i], 1)
            .addPct(metrics::speedup(oram, stat))
            .addPct(metrics::speedup(oram, dyn));
    }
    std::printf("%s\n", t.str().c_str());
    return 0;
}
