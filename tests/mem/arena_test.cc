/** @file Unit tests for the slot-arena storage backends. */

#include "mem/arena.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.hh"

namespace proram
{
namespace
{

ArenaOptions
opts(ArenaKind kind, std::uint32_t chunk_buckets)
{
    ArenaOptions o;
    o.kind = kind;
    o.chunkBuckets = chunk_buckets;
    return o;
}

TEST(ArenaOptions, ResolvedAppliesDefaults)
{
    // The environment must not leak into this check.
    ASSERT_EQ(std::getenv("PRORAM_ARENA"), nullptr);
    ASSERT_EQ(std::getenv("PRORAM_ARENA_CHUNK"), nullptr);
    const ArenaOptions r = ArenaOptions{}.resolved();
    EXPECT_EQ(r.kind, ArenaKind::Dense);
    EXPECT_EQ(r.chunkBuckets, ArenaBackend::kDefaultChunkBuckets);
    EXPECT_TRUE(r.mmapPath.empty());
    EXPECT_FALSE(r.hugePages);
}

TEST(ArenaOptions, EnvSelectsBackendAndChunk)
{
    ::setenv("PRORAM_ARENA", "sparse", 1);
    ::setenv("PRORAM_ARENA_CHUNK", "64", 1);
    const ArenaOptions r = ArenaOptions{}.resolved();
    ::unsetenv("PRORAM_ARENA");
    ::unsetenv("PRORAM_ARENA_CHUNK");
    EXPECT_EQ(r.kind, ArenaKind::Sparse);
    EXPECT_EQ(r.chunkBuckets, 64u);
    // An explicit config wins over the environment.
    ::setenv("PRORAM_ARENA", "mmap", 1);
    const ArenaOptions e = opts(ArenaKind::Sparse, 16).resolved();
    ::unsetenv("PRORAM_ARENA");
    EXPECT_EQ(e.kind, ArenaKind::Sparse);
    EXPECT_EQ(e.chunkBuckets, 16u);
}

TEST(ArenaOptions, BadEnvValuesAreFatal)
{
    ::setenv("PRORAM_ARENA", "turbo", 1);
    EXPECT_THROW(ArenaOptions{}.resolved(), SimFatal);
    ::unsetenv("PRORAM_ARENA");
    ::setenv("PRORAM_ARENA_CHUNK", "zero", 1);
    EXPECT_THROW(ArenaOptions{}.resolved(), SimFatal);
    ::setenv("PRORAM_ARENA_CHUNK", "24", 1); // not a power of two
    EXPECT_THROW(ArenaOptions{}.resolved(), SimFatal);
    ::unsetenv("PRORAM_ARENA_CHUNK");
}

TEST(Arena, GeometryRoundsUpToWholeChunks)
{
    // 100 buckets over 16-bucket chunks = 7 chunks.
    auto a = ArenaBackend::make(opts(ArenaKind::Sparse, 16), 100, 3);
    EXPECT_EQ(a->numChunks(), 7u);
    EXPECT_EQ(a->chunkBuckets(), 16u);
    EXPECT_EQ(a->chunkShift(), 4u);
    // Lane bytes per chunk: 16*3 ids + 16*3 payloads + 16 counts.
    EXPECT_EQ(a->chunkBytes(), 16u * 3 * 8 + 16u * 3 * 8 + 16u * 4);
    EXPECT_EQ(a->bytesTotal(), 7 * a->chunkBytes());
    EXPECT_EQ(a->bytesResident(), 0u);
}

TEST(Arena, DenseIsFullyResidentUpFront)
{
    auto a = ArenaBackend::make(opts(ArenaKind::Dense, 16), 100, 3);
    EXPECT_STREQ(a->name(), "dense");
    EXPECT_EQ(a->chunksMaterialized(), a->numChunks());
    EXPECT_EQ(a->bytesResident(), a->bytesTotal());
    // Every chunk is readable and all-dummy.
    for (std::uint64_t c = 0; c < a->numChunks(); ++c) {
        const ArenaBackend::View v = a->view(c);
        ASSERT_NE(v.ids, nullptr);
        EXPECT_EQ(v.ids[0], kInvalidBlock);
        EXPECT_EQ(v.free[0], 3u);
    }
}

TEST(Arena, MaterializeIsIdempotentAndAllDummy)
{
    auto a = ArenaBackend::make(opts(ArenaKind::Sparse, 8), 64, 2);
    EXPECT_EQ(a->view(3).ids, nullptr);
    const ArenaBackend::Lanes l = a->materialize(3);
    ASSERT_NE(l.ids, nullptr);
    for (std::uint64_t s = 0; s < 8 * 2; ++s)
        EXPECT_EQ(l.ids[s], kInvalidBlock);
    for (std::uint64_t b = 0; b < 8; ++b)
        EXPECT_EQ(l.free[b], 2u);
    const ArenaBackend::Lanes again = a->materialize(3);
    EXPECT_EQ(again.ids, l.ids);
    EXPECT_EQ(a->chunksMaterialized(), 1u);
    EXPECT_TRUE(a->materialized(3));
    EXPECT_FALSE(a->materialized(2));
}

TEST(Arena, ConcurrentFirstTouchMaterializesOnce)
{
    auto a = ArenaBackend::make(opts(ArenaKind::Sparse, 8), 1 << 12, 3);
    // Hammer a small set of chunks from many threads; every thread
    // must observe the same lane pointers and the count must equal
    // the number of distinct chunks.
    constexpr int kThreads = 8;
    constexpr std::uint64_t kChunks = 16;
    std::vector<std::vector<BlockId *>> seen(
        kThreads, std::vector<BlockId *>(kChunks));
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::uint64_t c = 0; c < kChunks; ++c)
                seen[t][c] = a->materialize(c).ids;
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(a->chunksMaterialized(), kChunks);
    for (int t = 1; t < kThreads; ++t) {
        for (std::uint64_t c = 0; c < kChunks; ++c)
            EXPECT_EQ(seen[t][c], seen[0][c]);
    }
}

#if defined(__linux__)

TEST(Arena, MmapAnonymousRoundTrip)
{
    auto a = ArenaBackend::make(opts(ArenaKind::Mmap, 8), 256, 3);
    EXPECT_STREQ(a->name(), "mmap");
    EXPECT_EQ(a->chunksMaterialized(), 0u);
    const ArenaBackend::Lanes l = a->materialize(5);
    ASSERT_NE(l.ids, nullptr);
    EXPECT_EQ(l.ids[7], kInvalidBlock);
    l.ids[7] = BlockId{99};
    l.data[7] = 1234;
    const ArenaBackend::View v = a->view(5);
    EXPECT_EQ(v.ids[7], BlockId{99});
    EXPECT_EQ(v.data[7], 1234u);
    EXPECT_EQ(a->bytesResident(), a->chunkBytes());
}

TEST(Arena, MmapFileBackedRoundTrip)
{
    std::string path = ::testing::TempDir() + "proram_arena_test.bin";
    {
        ArenaOptions o = opts(ArenaKind::Mmap, 8);
        o.mmapPath = path;
        auto a = ArenaBackend::make(o, 128, 3);
        const ArenaBackend::Lanes l = a->materialize(2);
        l.ids[0] = BlockId{42};
        l.data[0] = 4242;
        EXPECT_EQ(a->view(2).ids[0], BlockId{42});
    }
    // The mapping is MAP_SHARED: the writes reached the file.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    std::remove(path.c_str());
}

TEST(Arena, MmapOpenFailureIsClearFatal)
{
    ArenaOptions o = opts(ArenaKind::Mmap, 8);
    o.mmapPath = "/nonexistent-dir-xyz/arena.bin";
    try {
        ArenaBackend::make(o, 128, 3);
        FAIL() << "expected SimFatal";
    } catch (const SimFatal &e) {
        // The error must name the path and the errno string, not UB.
        EXPECT_NE(std::string(e.what()).find("/nonexistent-dir-xyz"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("cannot open"),
                  std::string::npos);
    }
}

TEST(Arena, MmapHugePageKnobIsAccepted)
{
    // MADV_HUGEPAGE may be refused by the kernel (then it warns), but
    // the backend must construct and work either way.
    ArenaOptions o = opts(ArenaKind::Mmap, 8);
    o.hugePages = true;
    auto a = ArenaBackend::make(o, 128, 3);
    const ArenaBackend::Lanes l = a->materialize(0);
    ASSERT_NE(l.ids, nullptr);
    EXPECT_EQ(l.free[0], 3u);
}

#endif // __linux__

} // namespace
} // namespace proram
