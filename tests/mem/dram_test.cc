/** @file Unit tests for the DRAM timing model. */

#include "mem/dram.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace proram
{
namespace
{

DramConfig
cfg16()
{
    DramConfig c;
    c.latency = Cycles{100};
    c.bytesPerCycle = 16.0;
    c.lineBytes = 128;
    return c;
}

TEST(Dram, TransferCyclesFromBandwidth)
{
    DramModel d(cfg16());
    // 128 B at 16 B/cycle = 8 cycles on the bus.
    EXPECT_EQ(d.transferCycles(), Cycles{8});
}

TEST(Dram, SingleAccessLatency)
{
    DramModel d(cfg16());
    EXPECT_EQ(d.schedule(Cycles{0}), Cycles{108});
}

TEST(Dram, BackToBackAccessesOverlapLatency)
{
    DramModel d(cfg16());
    const Cycles c1 = d.schedule(Cycles{0});
    const Cycles c2 = d.schedule(Cycles{0});
    // Bank parallelism: second access waits only for the bus
    // (8 cycles), not the full latency.
    EXPECT_EQ(c1, Cycles{108});
    EXPECT_EQ(c2, Cycles{116});
}

TEST(Dram, IdleBusResetsPipelining)
{
    DramModel d(cfg16());
    d.schedule(Cycles{0});
    EXPECT_EQ(d.schedule(Cycles{1000}), Cycles{1108});
}

TEST(Dram, CountsTransfers)
{
    DramModel d(cfg16());
    d.schedule(Cycles{0});
    d.schedule(Cycles{0});
    d.schedule(Cycles{50});
    EXPECT_EQ(d.numTransfers(), 3u);
}

TEST(Dram, LowerBandwidthMeansLongerTransfers)
{
    DramConfig c = cfg16();
    c.bytesPerCycle = 4.0; // 4 GB/s
    DramModel d(c);
    EXPECT_EQ(d.transferCycles(), Cycles{32});
    EXPECT_EQ(d.schedule(Cycles{0}), Cycles{132});
}

TEST(Dram, RejectsNonPositiveBandwidth)
{
    DramConfig c = cfg16();
    c.bytesPerCycle = 0.0;
    EXPECT_THROW(DramModel{c}, SimFatal);
}

TEST(Dram, SubCycleTransferClampsToOneCycle)
{
    DramConfig c = cfg16();
    c.lineBytes = 8;
    c.bytesPerCycle = 64.0;
    DramModel d(c);
    EXPECT_EQ(d.transferCycles(), Cycles{1});
}

} // namespace
} // namespace proram
