/** @file Unit tests for the DRAM memory backend (+ prefetch buffer). */

#include "mem/dram_backend.hh"

#include <gtest/gtest.h>

namespace proram
{
namespace
{

using namespace proram::literals;

DramBackendConfig
cfg(bool prefetch)
{
    DramBackendConfig c;
    c.dram.latency = Cycles{100};
    c.dram.bytesPerCycle = 16.0;
    c.dram.lineBytes = 128;
    c.prefetch = prefetch;
    c.prefetcher.degree = 2;
    c.prefetcher.distance = 4;
    c.prefetcher.trainThreshold = 2;
    c.bufferLines = 8;
    return c;
}

TEST(DramBackend, DemandLatencyWithoutPrefetch)
{
    DramBackend be(cfg(false));
    EXPECT_EQ(be.demandAccess(Cycles{0}, 7_id, OpType::Read), Cycles{108});
}

TEST(DramBackend, WritebackOccupiesBus)
{
    DramBackend be(cfg(false));
    be.writebackAccess(Cycles{0}, 1_id);
    // The next demand waits for the write transfer on the bus.
    EXPECT_EQ(be.demandAccess(Cycles{0}, 2_id, OpType::Read), Cycles{116});
}

TEST(DramBackend, SequentialStreamHitsPrefetchBuffer)
{
    DramBackend be(cfg(true));
    Cycles t{0};
    // Train the stream and run well past the training window.
    for (std::uint64_t i = 0; i < 8; ++i)
        t = be.demandAccess(t + Cycles{50}, BlockId{i}, OpType::Read);
    EXPECT_GT(be.prefetchBufferHits(), 0u);
}

TEST(DramBackend, PrefetchHitIsFasterThanMiss)
{
    DramBackend warm(cfg(true));
    DramBackend cold(cfg(false));
    Cycles tw{0}, tc{0};
    for (std::uint64_t i = 0; i < 16; ++i) {
        const BlockId b{i};
        // Large compute gaps leave spare bandwidth for prefetches.
        tw = warm.demandAccess(tw + Cycles{300}, b, OpType::Read);
        tc = cold.demandAccess(tc + Cycles{300}, b, OpType::Read);
    }
    EXPECT_LT(tw, tc) << "prefetching on DRAM must help sequential "
                         "streams with spare bandwidth (Fig. 5)";
}

TEST(DramBackend, RandomStreamUnaffectedByPrefetcher)
{
    DramBackend warm(cfg(true));
    DramBackend cold(cfg(false));
    const BlockId seq[] = {901_id, 17_id, 445_id, 2_id,
                           333_id, 90_id, 761_id, 54_id};
    Cycles tw{0}, tc{0};
    for (BlockId b : seq) {
        tw = warm.demandAccess(tw + Cycles{300}, b, OpType::Read);
        tc = cold.demandAccess(tc + Cycles{300}, b, OpType::Read);
    }
    EXPECT_EQ(tw, tc);
    EXPECT_EQ(warm.prefetchBufferHits(), 0u);
}

TEST(DramBackend, MemAccessCountCountsTransfers)
{
    DramBackend be(cfg(false));
    be.demandAccess(Cycles{0}, 1_id, OpType::Read);
    be.demandAccess(Cycles{200}, 2_id, OpType::Read);
    be.writebackAccess(Cycles{400}, 3_id);
    EXPECT_EQ(be.memAccessCount(), 3u);
}

TEST(DramBackend, BufferCapacityBounded)
{
    DramBackendConfig c = cfg(true);
    c.bufferLines = 2;
    c.prefetcher.degree = 4;
    c.prefetcher.distance = 16;
    DramBackend be(c);
    Cycles t{0};
    for (std::uint64_t i = 0; i < 64; ++i)
        t = be.demandAccess(t + Cycles{10}, BlockId{i}, OpType::Read);
    // No assertion beyond "does not blow up": capacity handling is
    // internal; hits still occur.
    SUCCEED();
}

} // namespace
} // namespace proram
