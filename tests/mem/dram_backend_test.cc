/** @file Unit tests for the DRAM memory backend (+ prefetch buffer). */

#include "mem/dram_backend.hh"

#include <gtest/gtest.h>

namespace proram
{
namespace
{

DramBackendConfig
cfg(bool prefetch)
{
    DramBackendConfig c;
    c.dram.latency = 100;
    c.dram.bytesPerCycle = 16.0;
    c.dram.lineBytes = 128;
    c.prefetch = prefetch;
    c.prefetcher.degree = 2;
    c.prefetcher.distance = 4;
    c.prefetcher.trainThreshold = 2;
    c.bufferLines = 8;
    return c;
}

TEST(DramBackend, DemandLatencyWithoutPrefetch)
{
    DramBackend be(cfg(false));
    EXPECT_EQ(be.demandAccess(0, 7, OpType::Read), 108u);
}

TEST(DramBackend, WritebackOccupiesBus)
{
    DramBackend be(cfg(false));
    be.writebackAccess(0, 1);
    // The next demand waits for the write transfer on the bus.
    EXPECT_EQ(be.demandAccess(0, 2, OpType::Read), 116u);
}

TEST(DramBackend, SequentialStreamHitsPrefetchBuffer)
{
    DramBackend be(cfg(true));
    Cycles t = 0;
    // Train the stream and run well past the training window.
    for (BlockId b = 0; b < 8; ++b)
        t = be.demandAccess(t + 50, b, OpType::Read);
    EXPECT_GT(be.prefetchBufferHits(), 0u);
}

TEST(DramBackend, PrefetchHitIsFasterThanMiss)
{
    DramBackend warm(cfg(true));
    DramBackend cold(cfg(false));
    Cycles tw = 0, tc = 0;
    for (BlockId b = 0; b < 16; ++b) {
        // Large compute gaps leave spare bandwidth for prefetches.
        tw = warm.demandAccess(tw + 300, b, OpType::Read);
        tc = cold.demandAccess(tc + 300, b, OpType::Read);
    }
    EXPECT_LT(tw, tc) << "prefetching on DRAM must help sequential "
                         "streams with spare bandwidth (Fig. 5)";
}

TEST(DramBackend, RandomStreamUnaffectedByPrefetcher)
{
    DramBackend warm(cfg(true));
    DramBackend cold(cfg(false));
    const BlockId seq[] = {901, 17, 445, 2, 333, 90, 761, 54};
    Cycles tw = 0, tc = 0;
    for (BlockId b : seq) {
        tw = warm.demandAccess(tw + 300, b, OpType::Read);
        tc = cold.demandAccess(tc + 300, b, OpType::Read);
    }
    EXPECT_EQ(tw, tc);
    EXPECT_EQ(warm.prefetchBufferHits(), 0u);
}

TEST(DramBackend, MemAccessCountCountsTransfers)
{
    DramBackend be(cfg(false));
    be.demandAccess(0, 1, OpType::Read);
    be.demandAccess(200, 2, OpType::Read);
    be.writebackAccess(400, 3);
    EXPECT_EQ(be.memAccessCount(), 3u);
}

TEST(DramBackend, BufferCapacityBounded)
{
    DramBackendConfig c = cfg(true);
    c.bufferLines = 2;
    c.prefetcher.degree = 4;
    c.prefetcher.distance = 16;
    DramBackend be(c);
    Cycles t = 0;
    for (BlockId b = 0; b < 64; ++b)
        t = be.demandAccess(t + 10, b, OpType::Read);
    // No assertion beyond "does not blow up": capacity handling is
    // internal; hits still occur.
    SUCCEED();
}

} // namespace
} // namespace proram
