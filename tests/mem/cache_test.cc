/** @file Unit tests for the set-associative cache. */

#include "mem/cache.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace proram
{
namespace
{

using namespace proram::literals;

CacheConfig
tiny(std::uint32_t ways = 2, std::uint64_t sets = 4)
{
    // lineBytes 128; size = sets * ways * 128.
    return CacheConfig{sets * ways * 128, ways, 128};
}

TEST(Cache, MissThenHit)
{
    SetAssocCache c(tiny());
    EXPECT_FALSE(c.access(5_id, OpType::Read));
    c.insert(5_id, false);
    EXPECT_TRUE(c.access(5_id, OpType::Read));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, ProbeDoesNotTouchLruOrStats)
{
    SetAssocCache c(tiny(2, 1));
    c.insert(0_id, false); // set 0
    c.insert(1_id, false); // careful: set = block & (numSets-1); 1 set
    // both map to the single set; set is now {0, 1} with 1 MRU.
    const auto hits_before = c.hits();
    EXPECT_TRUE(c.probe(0_id));
    EXPECT_FALSE(c.probe(7_id));
    EXPECT_EQ(c.hits(), hits_before);
    // Insert a third block: LRU victim must still be 0 (probe must
    // not have refreshed it).
    auto v = c.insert(2_id, false);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->block, 0_id);
}

TEST(Cache, LruEviction)
{
    SetAssocCache c(tiny(2, 1));
    c.insert(10_id, false);
    c.insert(20_id, false);
    c.access(10_id, OpType::Read); // 10 becomes MRU
    auto v = c.insert(30_id, false);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->block, 20_id);
    EXPECT_TRUE(c.probe(10_id));
    EXPECT_TRUE(c.probe(30_id));
    EXPECT_FALSE(c.probe(20_id));
}

TEST(Cache, WriteSetsDirtyAndEvictionReportsIt)
{
    SetAssocCache c(tiny(1, 1));
    c.insert(1_id, false);
    c.access(1_id, OpType::Write);
    auto v = c.insert(2_id, false);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->block, 1_id);
    EXPECT_TRUE(v->dirty);
    EXPECT_EQ(c.dirtyEvictions(), 1u);
}

TEST(Cache, InsertDirtyFlag)
{
    SetAssocCache c(tiny(1, 1));
    c.insert(1_id, true);
    auto v = c.insert(2_id, false);
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(v->dirty);
}

TEST(Cache, ReinsertMergesDirtyAndDoesNotEvict)
{
    SetAssocCache c(tiny(1, 1));
    c.insert(1_id, false);
    auto v = c.insert(1_id, true);
    EXPECT_FALSE(v.has_value());
    auto v2 = c.insert(2_id, false);
    ASSERT_TRUE(v2.has_value());
    EXPECT_TRUE(v2->dirty);
}

TEST(Cache, InvalidateReturnsDirtyState)
{
    SetAssocCache c(tiny());
    c.insert(4_id, false);
    c.access(4_id, OpType::Write);
    auto d = c.invalidate(4_id);
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(*d);
    EXPECT_FALSE(c.probe(4_id));
    EXPECT_FALSE(c.invalidate(4_id).has_value());
}

TEST(Cache, MarkDirty)
{
    SetAssocCache c(tiny(1, 1));
    c.insert(3_id, false);
    c.markDirty(3_id);
    auto v = c.insert(7_id, false); // 7 & 0 == 0? sets=1: same set
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(v->dirty);
}

TEST(Cache, SetsIsolateConflicts)
{
    SetAssocCache c(tiny(1, 4)); // 4 sets, direct mapped
    c.insert(0_id, false);
    c.insert(1_id, false);
    c.insert(2_id, false);
    c.insert(3_id, false);
    // All four coexist (different sets).
    EXPECT_TRUE(c.probe(0_id));
    EXPECT_TRUE(c.probe(1_id));
    EXPECT_TRUE(c.probe(2_id));
    EXPECT_TRUE(c.probe(3_id));
    // Block 4 conflicts with block 0 only.
    auto v = c.insert(4_id, false);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->block, 0_id);
}

TEST(Cache, ResidentBlocksEnumerates)
{
    SetAssocCache c(tiny());
    c.insert(1_id, false);
    c.insert(2_id, false);
    auto blocks = c.residentBlocks();
    EXPECT_EQ(blocks.size(), 2u);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(SetAssocCache(CacheConfig{1024, 0, 128}), SimFatal);
    EXPECT_THROW(SetAssocCache(CacheConfig{1024, 2, 100}), SimFatal);
    // 3 sets (not a power of two): 3 * 2 * 128.
    EXPECT_THROW(SetAssocCache(CacheConfig{768, 2, 128}), SimFatal);
}


TEST(Cache, PeekVictimPredictsEviction)
{
    SetAssocCache c(tiny(2, 1));
    EXPECT_FALSE(c.peekVictim(1_id).has_value()) << "free way available";
    c.insert(10_id, false);
    c.insert(20_id, true);
    auto peek = c.peekVictim(30_id);
    ASSERT_TRUE(peek.has_value());
    EXPECT_EQ(peek->block, 10_id);
    EXPECT_FALSE(peek->dirty);
    // Peek must not change state: the actual insert agrees.
    auto v = c.insert(30_id, false);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->block, 10_id);
}

TEST(Cache, PeekVictimOfResidentBlockIsNone)
{
    SetAssocCache c(tiny(1, 1));
    c.insert(5_id, false);
    EXPECT_FALSE(c.peekVictim(5_id).has_value());
}

TEST(Cache, PeekDirty)
{
    SetAssocCache c(tiny());
    EXPECT_FALSE(c.peekDirty(3_id).has_value());
    c.insert(3_id, false);
    ASSERT_TRUE(c.peekDirty(3_id).has_value());
    EXPECT_FALSE(*c.peekDirty(3_id));
    c.access(3_id, OpType::Write);
    EXPECT_TRUE(*c.peekDirty(3_id));
}

TEST(Cache, LowPriorityInsertIsNextVictim)
{
    SetAssocCache c(tiny(2, 1));
    c.insert(10_id, false);
    c.insert(20_id, false, /*low_priority=*/true);
    // 20 sits at LRU despite being inserted last.
    auto v = c.insert(30_id, false);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->block, 20_id);
}

TEST(Cache, DemandHitPromotesLowPriorityLine)
{
    SetAssocCache c(tiny(2, 1));
    c.insert(10_id, false);
    c.insert(20_id, false, /*low_priority=*/true);
    c.access(20_id, OpType::Read); // promoted to MRU
    auto v = c.insert(30_id, false);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->block, 10_id);
}

class CacheFillParam : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CacheFillParam, CapacityNeverExceeded)
{
    const std::uint32_t ways = GetParam();
    SetAssocCache c(tiny(ways, 8));
    const std::uint64_t lines = c.config().numLines();
    for (std::uint64_t b = 0; b < 10 * lines; ++b)
        c.insert(BlockId{b}, b % 3 == 0);
    EXPECT_LE(c.residentBlocks().size(), lines);
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheFillParam,
                         ::testing::Values(1u, 2u, 4u, 8u));

} // namespace
} // namespace proram
