/** @file Unit tests for the set-associative cache. */

#include "mem/cache.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace proram
{
namespace
{

CacheConfig
tiny(std::uint32_t ways = 2, std::uint64_t sets = 4)
{
    // lineBytes 128; size = sets * ways * 128.
    return CacheConfig{sets * ways * 128, ways, 128};
}

TEST(Cache, MissThenHit)
{
    SetAssocCache c(tiny());
    EXPECT_FALSE(c.access(5, OpType::Read));
    c.insert(5, false);
    EXPECT_TRUE(c.access(5, OpType::Read));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, ProbeDoesNotTouchLruOrStats)
{
    SetAssocCache c(tiny(2, 1));
    c.insert(0, false); // set 0
    c.insert(1, false); // careful: set = block & (numSets-1); 1 set
    // both map to the single set; set is now {0, 1} with 1 MRU.
    const auto hits_before = c.hits();
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(7));
    EXPECT_EQ(c.hits(), hits_before);
    // Insert a third block: LRU victim must still be 0 (probe must
    // not have refreshed it).
    auto v = c.insert(2, false);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->block, 0u);
}

TEST(Cache, LruEviction)
{
    SetAssocCache c(tiny(2, 1));
    c.insert(10, false);
    c.insert(20, false);
    c.access(10, OpType::Read); // 10 becomes MRU
    auto v = c.insert(30, false);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->block, 20u);
    EXPECT_TRUE(c.probe(10));
    EXPECT_TRUE(c.probe(30));
    EXPECT_FALSE(c.probe(20));
}

TEST(Cache, WriteSetsDirtyAndEvictionReportsIt)
{
    SetAssocCache c(tiny(1, 1));
    c.insert(1, false);
    c.access(1, OpType::Write);
    auto v = c.insert(2, false);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->block, 1u);
    EXPECT_TRUE(v->dirty);
    EXPECT_EQ(c.dirtyEvictions(), 1u);
}

TEST(Cache, InsertDirtyFlag)
{
    SetAssocCache c(tiny(1, 1));
    c.insert(1, true);
    auto v = c.insert(2, false);
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(v->dirty);
}

TEST(Cache, ReinsertMergesDirtyAndDoesNotEvict)
{
    SetAssocCache c(tiny(1, 1));
    c.insert(1, false);
    auto v = c.insert(1, true);
    EXPECT_FALSE(v.has_value());
    auto v2 = c.insert(2, false);
    ASSERT_TRUE(v2.has_value());
    EXPECT_TRUE(v2->dirty);
}

TEST(Cache, InvalidateReturnsDirtyState)
{
    SetAssocCache c(tiny());
    c.insert(4, false);
    c.access(4, OpType::Write);
    auto d = c.invalidate(4);
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(*d);
    EXPECT_FALSE(c.probe(4));
    EXPECT_FALSE(c.invalidate(4).has_value());
}

TEST(Cache, MarkDirty)
{
    SetAssocCache c(tiny(1, 1));
    c.insert(3, false);
    c.markDirty(3);
    auto v = c.insert(7 * 1, false); // 7 & 0 == 0? sets=1: same set
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(v->dirty);
}

TEST(Cache, SetsIsolateConflicts)
{
    SetAssocCache c(tiny(1, 4)); // 4 sets, direct mapped
    c.insert(0, false);
    c.insert(1, false);
    c.insert(2, false);
    c.insert(3, false);
    // All four coexist (different sets).
    EXPECT_TRUE(c.probe(0));
    EXPECT_TRUE(c.probe(1));
    EXPECT_TRUE(c.probe(2));
    EXPECT_TRUE(c.probe(3));
    // Block 4 conflicts with block 0 only.
    auto v = c.insert(4, false);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->block, 0u);
}

TEST(Cache, ResidentBlocksEnumerates)
{
    SetAssocCache c(tiny());
    c.insert(1, false);
    c.insert(2, false);
    auto blocks = c.residentBlocks();
    EXPECT_EQ(blocks.size(), 2u);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(SetAssocCache(CacheConfig{1024, 0, 128}), SimFatal);
    EXPECT_THROW(SetAssocCache(CacheConfig{1024, 2, 100}), SimFatal);
    // 3 sets (not a power of two): 3 * 2 * 128.
    EXPECT_THROW(SetAssocCache(CacheConfig{768, 2, 128}), SimFatal);
}


TEST(Cache, PeekVictimPredictsEviction)
{
    SetAssocCache c(tiny(2, 1));
    EXPECT_FALSE(c.peekVictim(1).has_value()) << "free way available";
    c.insert(10, false);
    c.insert(20, true);
    auto peek = c.peekVictim(30);
    ASSERT_TRUE(peek.has_value());
    EXPECT_EQ(peek->block, 10u);
    EXPECT_FALSE(peek->dirty);
    // Peek must not change state: the actual insert agrees.
    auto v = c.insert(30, false);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->block, 10u);
}

TEST(Cache, PeekVictimOfResidentBlockIsNone)
{
    SetAssocCache c(tiny(1, 1));
    c.insert(5, false);
    EXPECT_FALSE(c.peekVictim(5).has_value());
}

TEST(Cache, PeekDirty)
{
    SetAssocCache c(tiny());
    EXPECT_FALSE(c.peekDirty(3).has_value());
    c.insert(3, false);
    ASSERT_TRUE(c.peekDirty(3).has_value());
    EXPECT_FALSE(*c.peekDirty(3));
    c.access(3, OpType::Write);
    EXPECT_TRUE(*c.peekDirty(3));
}

TEST(Cache, LowPriorityInsertIsNextVictim)
{
    SetAssocCache c(tiny(2, 1));
    c.insert(10, false);
    c.insert(20, false, /*low_priority=*/true);
    // 20 sits at LRU despite being inserted last.
    auto v = c.insert(30, false);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->block, 20u);
}

TEST(Cache, DemandHitPromotesLowPriorityLine)
{
    SetAssocCache c(tiny(2, 1));
    c.insert(10, false);
    c.insert(20, false, /*low_priority=*/true);
    c.access(20, OpType::Read); // promoted to MRU
    auto v = c.insert(30, false);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->block, 10u);
}

class CacheFillParam : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CacheFillParam, CapacityNeverExceeded)
{
    const std::uint32_t ways = GetParam();
    SetAssocCache c(tiny(ways, 8));
    const std::uint64_t lines = c.config().numLines();
    for (BlockId b = 0; b < 10 * lines; ++b)
        c.insert(b, b % 3 == 0);
    EXPECT_LE(c.residentBlocks().size(), lines);
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheFillParam,
                         ::testing::Values(1u, 2u, 4u, 8u));

} // namespace
} // namespace proram
