/** @file Unit tests for the traditional stream prefetcher. */

#include "mem/stream_prefetcher.hh"

#include <gtest/gtest.h>

#include <set>

namespace proram
{
namespace
{

using namespace proram::literals;

PrefetcherConfig
cfg(std::uint32_t degree = 2, std::uint32_t distance = 4)
{
    PrefetcherConfig c;
    c.numStreams = 4;
    c.degree = degree;
    c.distance = distance;
    c.trainThreshold = 2;
    return c;
}

TEST(Prefetcher, NoPrefetchUntilTrained)
{
    StreamPrefetcher pf(cfg());
    EXPECT_TRUE(pf.observe(100_id).empty()); // allocates stream
    EXPECT_TRUE(pf.observe(101_id).empty()); // confidence 1 < 2
    EXPECT_FALSE(pf.observe(102_id).empty()); // trained now
    EXPECT_EQ(pf.streamsTrained(), 1u);
}

TEST(Prefetcher, AscendingStreamPrefetchesAhead)
{
    StreamPrefetcher pf(cfg());
    pf.observe(10_id);
    pf.observe(11_id);
    auto p = pf.observe(12_id);
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p[0], 13_id);
    EXPECT_EQ(p[1], 14_id);
}

TEST(Prefetcher, DescendingStreamSupported)
{
    StreamPrefetcher pf(cfg());
    pf.observe(50_id);
    pf.observe(49_id);
    auto p = pf.observe(48_id);
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p[0], 47_id);
    EXPECT_EQ(p[1], 46_id);
}

TEST(Prefetcher, FrontierRespectsDistance)
{
    StreamPrefetcher pf(cfg(8, 3));
    pf.observe(10_id);
    pf.observe(11_id);
    auto p = pf.observe(12_id);
    // Degree 8 but distance 3: at most 3 ahead of block 12.
    EXPECT_LE(p.size(), 3u);
    for (auto b : p)
        EXPECT_LE(b.value(), 15u);
}

TEST(Prefetcher, NoDuplicatePrefetches)
{
    StreamPrefetcher pf(cfg(2, 8));
    std::set<BlockId> all;
    for (std::uint64_t b = 20; b < 30; ++b) {
        for (BlockId p : pf.observe(BlockId{b})) {
            EXPECT_TRUE(all.insert(p).second)
                << "block " << p << " prefetched twice";
        }
    }
}

TEST(Prefetcher, RandomAccessesNeverTrain)
{
    StreamPrefetcher pf(cfg());
    std::uint64_t total = 0;
    for (BlockId b : {7_id, 93_id, 12_id, 401_id, 55_id,
                      230_id, 77_id, 910_id})
        total += pf.observe(b).size();
    EXPECT_EQ(total, 0u);
    EXPECT_EQ(pf.streamsTrained(), 0u);
}

TEST(Prefetcher, TracksMultipleStreams)
{
    StreamPrefetcher pf(cfg());
    // Interleave two ascending streams.
    pf.observe(100_id);
    pf.observe(500_id);
    pf.observe(101_id);
    pf.observe(501_id);
    auto a = pf.observe(102_id);
    auto b = pf.observe(502_id);
    EXPECT_FALSE(a.empty());
    EXPECT_FALSE(b.empty());
    EXPECT_EQ(pf.streamsTrained(), 2u);
}

TEST(Prefetcher, IssuedCounterMatches)
{
    StreamPrefetcher pf(cfg());
    std::uint64_t n = 0;
    for (std::uint64_t b = 0; b < 10; ++b)
        n += pf.observe(BlockId{b}).size();
    EXPECT_EQ(pf.issued(), n);
}

} // namespace
} // namespace proram
