/** @file Unit tests for the traditional stream prefetcher. */

#include "mem/stream_prefetcher.hh"

#include <gtest/gtest.h>

#include <set>

namespace proram
{
namespace
{

PrefetcherConfig
cfg(std::uint32_t degree = 2, std::uint32_t distance = 4)
{
    PrefetcherConfig c;
    c.numStreams = 4;
    c.degree = degree;
    c.distance = distance;
    c.trainThreshold = 2;
    return c;
}

TEST(Prefetcher, NoPrefetchUntilTrained)
{
    StreamPrefetcher pf(cfg());
    EXPECT_TRUE(pf.observe(100).empty()); // allocates stream
    EXPECT_TRUE(pf.observe(101).empty()); // confidence 1 < 2
    EXPECT_FALSE(pf.observe(102).empty()); // trained now
    EXPECT_EQ(pf.streamsTrained(), 1u);
}

TEST(Prefetcher, AscendingStreamPrefetchesAhead)
{
    StreamPrefetcher pf(cfg());
    pf.observe(10);
    pf.observe(11);
    auto p = pf.observe(12);
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p[0], 13u);
    EXPECT_EQ(p[1], 14u);
}

TEST(Prefetcher, DescendingStreamSupported)
{
    StreamPrefetcher pf(cfg());
    pf.observe(50);
    pf.observe(49);
    auto p = pf.observe(48);
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p[0], 47u);
    EXPECT_EQ(p[1], 46u);
}

TEST(Prefetcher, FrontierRespectsDistance)
{
    StreamPrefetcher pf(cfg(8, 3));
    pf.observe(10);
    pf.observe(11);
    auto p = pf.observe(12);
    // Degree 8 but distance 3: at most 3 ahead of block 12.
    EXPECT_LE(p.size(), 3u);
    for (auto b : p)
        EXPECT_LE(b, 15u);
}

TEST(Prefetcher, NoDuplicatePrefetches)
{
    StreamPrefetcher pf(cfg(2, 8));
    std::set<BlockId> all;
    for (BlockId b = 20; b < 30; ++b) {
        for (BlockId p : pf.observe(b)) {
            EXPECT_TRUE(all.insert(p).second)
                << "block " << p << " prefetched twice";
        }
    }
}

TEST(Prefetcher, RandomAccessesNeverTrain)
{
    StreamPrefetcher pf(cfg());
    std::uint64_t total = 0;
    for (BlockId b : {7u, 93u, 12u, 401u, 55u, 230u, 77u, 910u})
        total += pf.observe(b).size();
    EXPECT_EQ(total, 0u);
    EXPECT_EQ(pf.streamsTrained(), 0u);
}

TEST(Prefetcher, TracksMultipleStreams)
{
    StreamPrefetcher pf(cfg());
    // Interleave two ascending streams.
    pf.observe(100);
    pf.observe(500);
    pf.observe(101);
    pf.observe(501);
    auto a = pf.observe(102);
    auto b = pf.observe(502);
    EXPECT_FALSE(a.empty());
    EXPECT_FALSE(b.empty());
    EXPECT_EQ(pf.streamsTrained(), 2u);
}

TEST(Prefetcher, IssuedCounterMatches)
{
    StreamPrefetcher pf(cfg());
    std::uint64_t n = 0;
    for (BlockId b = 0; b < 10; ++b)
        n += pf.observe(b).size();
    EXPECT_EQ(pf.issued(), n);
}

} // namespace
} // namespace proram
