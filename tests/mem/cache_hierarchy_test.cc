/** @file Unit tests for the two-level cache hierarchy. */

#include "mem/cache_hierarchy.hh"

#include <gtest/gtest.h>

namespace proram
{
namespace
{

HierarchyConfig
smallHier()
{
    HierarchyConfig cfg;
    cfg.l1 = CacheConfig{2 * 128, 1, 128};  // 2 lines, direct mapped
    cfg.l2 = CacheConfig{8 * 128, 2, 128};  // 8 lines, 2-way
    cfg.l1Latency = 1;
    cfg.l2Latency = 10;
    return cfg;
}

TEST(Hierarchy, MissThenL1Hit)
{
    CacheHierarchy h(smallHier());
    EXPECT_EQ(h.lookup(3, OpType::Read), HitLevel::Miss);
    h.fillFromMemory(3, false);
    EXPECT_EQ(h.lookup(3, OpType::Read), HitLevel::L1);
}

TEST(Hierarchy, L2HitRefillsL1)
{
    CacheHierarchy h(smallHier());
    h.fillFromMemory(0, false);
    h.fillFromMemory(2, false); // evicts 0 from L1 (same set), stays L2
    EXPECT_EQ(h.lookup(0, OpType::Read), HitLevel::L2);
    EXPECT_EQ(h.lookup(0, OpType::Read), HitLevel::L1);
}

TEST(Hierarchy, HitLatencies)
{
    CacheHierarchy h(smallHier());
    EXPECT_EQ(h.hitLatency(HitLevel::L1), 1u);
    EXPECT_EQ(h.hitLatency(HitLevel::L2), 11u);
}

TEST(Hierarchy, DirtyLlcVictimReportedForWriteback)
{
    CacheHierarchy h(smallHier());
    // Fill set 0 of the LLC (blocks 0 and 4 with 4 sets... use
    // conflicting blocks: LLC has 4 sets, 2 ways: 0, 4, 8 conflict).
    h.fillFromMemory(0, true);
    h.fillFromMemory(4, false);
    auto wb = h.fillFromMemory(8, false);
    ASSERT_EQ(wb.size(), 1u);
    EXPECT_EQ(wb[0].block, 0u);
    EXPECT_TRUE(wb[0].dirty);
}

TEST(Hierarchy, CleanVictimsProduceNoWriteback)
{
    CacheHierarchy h(smallHier());
    h.fillFromMemory(0, false);
    h.fillFromMemory(4, false);
    auto wb = h.fillFromMemory(8, false);
    EXPECT_TRUE(wb.empty());
}

TEST(Hierarchy, InclusionBackInvalidatesL1)
{
    CacheHierarchy h(smallHier());
    h.fillFromMemory(0, false);
    EXPECT_EQ(h.lookup(0, OpType::Read), HitLevel::L1);
    // Evict 0 from the LLC via conflicts.
    h.fillFromMemory(4, false);
    h.fillFromMemory(8, false);
    // 0 must be gone from L1 too (inclusive hierarchy).
    EXPECT_EQ(h.lookup(0, OpType::Read), HitLevel::Miss);
}

TEST(Hierarchy, L1DirtinessSurvivesLlcEviction)
{
    CacheHierarchy h(smallHier());
    h.fillFromMemory(0, false);
    h.lookup(0, OpType::Write); // dirty in L1 only
    h.fillFromMemory(4, false);
    auto wb = h.fillFromMemory(8, false); // evicts 0 from LLC
    ASSERT_EQ(wb.size(), 1u);
    EXPECT_EQ(wb[0].block, 0u);
    EXPECT_TRUE(wb[0].dirty) << "L1 dirty bit lost on back-invalidate";
}

TEST(Hierarchy, InsertPrefetchGoesToLlcOnly)
{
    CacheHierarchy h(smallHier());
    BlockId clean = kInvalidBlock;
    h.insertPrefetch(5, &clean);
    EXPECT_TRUE(h.probeLlc(5));
    // First access must be an L2 hit, not L1.
    EXPECT_EQ(h.lookup(5, OpType::Read), HitLevel::L2);
}

TEST(Hierarchy, InsertPrefetchRefusesDirtyVictim)
{
    // A prefetch must never force a write-back: with a dirty LRU
    // victim the insertion is dropped.
    CacheHierarchy h(smallHier());
    h.fillFromMemory(0, true);
    h.fillFromMemory(4, false);
    BlockId clean = kInvalidBlock;
    EXPECT_FALSE(h.insertPrefetch(8, &clean));
    EXPECT_FALSE(h.probeLlc(8));
    EXPECT_TRUE(h.probeLlc(0)) << "dirty line must stay resident";
    EXPECT_EQ(clean, kInvalidBlock);
}

TEST(Hierarchy, InsertPrefetchRefusesL1DirtyVictim)
{
    // The victim may be clean in L2 but dirty in L1 (write-back L1):
    // still refused.
    CacheHierarchy h(smallHier());
    h.fillFromMemory(0, false);
    h.lookup(0, OpType::Write); // dirty in L1 only
    h.fillFromMemory(4, false);
    BlockId clean = kInvalidBlock;
    EXPECT_FALSE(h.insertPrefetch(8, &clean));
    EXPECT_TRUE(h.probeLlc(0));
}

TEST(Hierarchy, InsertPrefetchReportsCleanVictim)
{
    CacheHierarchy h(smallHier());
    h.fillFromMemory(0, false);
    h.fillFromMemory(4, false);
    BlockId clean = kInvalidBlock;
    EXPECT_TRUE(h.insertPrefetch(8, &clean));
    EXPECT_EQ(clean, 0u);
    EXPECT_TRUE(h.probeLlc(8));
}

TEST(Hierarchy, InsertPrefetchResidentIsNoop)
{
    CacheHierarchy h(smallHier());
    h.fillFromMemory(3, true); // dirty
    BlockId clean = kInvalidBlock;
    EXPECT_TRUE(h.insertPrefetch(3, &clean));
    // Still dirty: re-inserting must not launder the dirty bit.
    auto dirty = h.drainDirty();
    EXPECT_EQ(dirty.size(), 1u);
}

TEST(Hierarchy, DrainDirtyReturnsAllDirtyLines)
{
    CacheHierarchy h(smallHier());
    h.fillFromMemory(0, true);
    h.fillFromMemory(1, false);
    h.lookup(1, OpType::Write);
    h.fillFromMemory(2, false);
    auto dirty = h.drainDirty();
    EXPECT_EQ(dirty.size(), 2u);
    EXPECT_FALSE(h.probeLlc(0));
    EXPECT_FALSE(h.probeLlc(1));
    EXPECT_FALSE(h.probeLlc(2));
}

TEST(Hierarchy, ProbeLlcIsTagOnly)
{
    CacheHierarchy h(smallHier());
    h.fillFromMemory(6, false);
    EXPECT_TRUE(h.probeLlc(6));
    EXPECT_FALSE(h.probeLlc(7));
}

} // namespace
} // namespace proram
