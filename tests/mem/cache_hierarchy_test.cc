/** @file Unit tests for the two-level cache hierarchy. */

#include "mem/cache_hierarchy.hh"

#include <gtest/gtest.h>

namespace proram
{
namespace
{

using namespace proram::literals;

HierarchyConfig
smallHier()
{
    HierarchyConfig cfg;
    cfg.l1 = CacheConfig{2 * 128, 1, 128};  // 2 lines, direct mapped
    cfg.l2 = CacheConfig{8 * 128, 2, 128};  // 8 lines, 2-way
    cfg.l1Latency = Cycles{1};
    cfg.l2Latency = Cycles{10};
    return cfg;
}

TEST(Hierarchy, MissThenL1Hit)
{
    CacheHierarchy h(smallHier());
    EXPECT_EQ(h.lookup(3_id, OpType::Read), HitLevel::Miss);
    h.fillFromMemory(3_id, false);
    EXPECT_EQ(h.lookup(3_id, OpType::Read), HitLevel::L1);
}

TEST(Hierarchy, L2HitRefillsL1)
{
    CacheHierarchy h(smallHier());
    h.fillFromMemory(0_id, false);
    h.fillFromMemory(2_id, false); // evicts 0 from L1 (same set), stays L2
    EXPECT_EQ(h.lookup(0_id, OpType::Read), HitLevel::L2);
    EXPECT_EQ(h.lookup(0_id, OpType::Read), HitLevel::L1);
}

TEST(Hierarchy, HitLatencies)
{
    CacheHierarchy h(smallHier());
    EXPECT_EQ(h.hitLatency(HitLevel::L1), Cycles{1});
    EXPECT_EQ(h.hitLatency(HitLevel::L2), Cycles{11});
}

TEST(Hierarchy, DirtyLlcVictimReportedForWriteback)
{
    CacheHierarchy h(smallHier());
    // Fill set 0 of the LLC (blocks 0 and 4 with 4 sets... use
    // conflicting blocks: LLC has 4 sets, 2 ways: 0, 4, 8 conflict).
    h.fillFromMemory(0_id, true);
    h.fillFromMemory(4_id, false);
    auto wb = h.fillFromMemory(8_id, false);
    ASSERT_EQ(wb.size(), 1u);
    EXPECT_EQ(wb[0].block, 0_id);
    EXPECT_TRUE(wb[0].dirty);
}

TEST(Hierarchy, CleanVictimsProduceNoWriteback)
{
    CacheHierarchy h(smallHier());
    h.fillFromMemory(0_id, false);
    h.fillFromMemory(4_id, false);
    auto wb = h.fillFromMemory(8_id, false);
    EXPECT_TRUE(wb.empty());
}

TEST(Hierarchy, InclusionBackInvalidatesL1)
{
    CacheHierarchy h(smallHier());
    h.fillFromMemory(0_id, false);
    EXPECT_EQ(h.lookup(0_id, OpType::Read), HitLevel::L1);
    // Evict 0 from the LLC via conflicts.
    h.fillFromMemory(4_id, false);
    h.fillFromMemory(8_id, false);
    // 0 must be gone from L1 too (inclusive hierarchy).
    EXPECT_EQ(h.lookup(0_id, OpType::Read), HitLevel::Miss);
}

TEST(Hierarchy, L1DirtinessSurvivesLlcEviction)
{
    CacheHierarchy h(smallHier());
    h.fillFromMemory(0_id, false);
    h.lookup(0_id, OpType::Write); // dirty in L1 only
    h.fillFromMemory(4_id, false);
    auto wb = h.fillFromMemory(8_id, false); // evicts 0 from LLC
    ASSERT_EQ(wb.size(), 1u);
    EXPECT_EQ(wb[0].block, 0_id);
    EXPECT_TRUE(wb[0].dirty) << "L1 dirty bit lost on back-invalidate";
}

TEST(Hierarchy, InsertPrefetchGoesToLlcOnly)
{
    CacheHierarchy h(smallHier());
    BlockId clean = kInvalidBlock;
    h.insertPrefetch(5_id, &clean);
    EXPECT_TRUE(h.probeLlc(5_id));
    // First access must be an L2 hit, not L1.
    EXPECT_EQ(h.lookup(5_id, OpType::Read), HitLevel::L2);
}

TEST(Hierarchy, InsertPrefetchRefusesDirtyVictim)
{
    // A prefetch must never force a write-back: with a dirty LRU
    // victim the insertion is dropped.
    CacheHierarchy h(smallHier());
    h.fillFromMemory(0_id, true);
    h.fillFromMemory(4_id, false);
    BlockId clean = kInvalidBlock;
    EXPECT_FALSE(h.insertPrefetch(8_id, &clean));
    EXPECT_FALSE(h.probeLlc(8_id));
    EXPECT_TRUE(h.probeLlc(0_id)) << "dirty line must stay resident";
    EXPECT_EQ(clean, kInvalidBlock);
}

TEST(Hierarchy, InsertPrefetchRefusesL1DirtyVictim)
{
    // The victim may be clean in L2 but dirty in L1 (write-back L1):
    // still refused.
    CacheHierarchy h(smallHier());
    h.fillFromMemory(0_id, false);
    h.lookup(0_id, OpType::Write); // dirty in L1 only
    h.fillFromMemory(4_id, false);
    BlockId clean = kInvalidBlock;
    EXPECT_FALSE(h.insertPrefetch(8_id, &clean));
    EXPECT_TRUE(h.probeLlc(0_id));
}

TEST(Hierarchy, InsertPrefetchReportsCleanVictim)
{
    CacheHierarchy h(smallHier());
    h.fillFromMemory(0_id, false);
    h.fillFromMemory(4_id, false);
    BlockId clean = kInvalidBlock;
    EXPECT_TRUE(h.insertPrefetch(8_id, &clean));
    EXPECT_EQ(clean, 0_id);
    EXPECT_TRUE(h.probeLlc(8_id));
}

TEST(Hierarchy, InsertPrefetchResidentIsNoop)
{
    CacheHierarchy h(smallHier());
    h.fillFromMemory(3_id, true); // dirty
    BlockId clean = kInvalidBlock;
    EXPECT_TRUE(h.insertPrefetch(3_id, &clean));
    // Still dirty: re-inserting must not launder the dirty bit.
    auto dirty = h.drainDirty();
    EXPECT_EQ(dirty.size(), 1u);
}

TEST(Hierarchy, DrainDirtyReturnsAllDirtyLines)
{
    CacheHierarchy h(smallHier());
    h.fillFromMemory(0_id, true);
    h.fillFromMemory(1_id, false);
    h.lookup(1_id, OpType::Write);
    h.fillFromMemory(2_id, false);
    auto dirty = h.drainDirty();
    EXPECT_EQ(dirty.size(), 2u);
    EXPECT_FALSE(h.probeLlc(0_id));
    EXPECT_FALSE(h.probeLlc(1_id));
    EXPECT_FALSE(h.probeLlc(2_id));
}

TEST(Hierarchy, ProbeLlcIsTagOnly)
{
    CacheHierarchy h(smallHier());
    h.fillFromMemory(6_id, false);
    EXPECT_TRUE(h.probeLlc(6_id));
    EXPECT_FALSE(h.probeLlc(7_id));
}

} // namespace
} // namespace proram
