"""Unit tests for bench/snapshot.py (duplicate-label handling,
--force replacement, compare mode, metrics-JSONL ingestion).

Run via ctest (snapshot_py) or directly:
    python3 -m unittest tests/python/snapshot_test.py
The benchmark binary is stubbed with a script that prints canned
google-benchmark JSON, so the test needs no built tree.
"""

import json
import os
import pathlib
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
SNAPSHOT_PY = REPO_ROOT / "bench" / "snapshot.py"

FAKE_REPORT = {
    "benchmarks": [
        {
            "name": "BM_Fast_median",
            "run_type": "aggregate",
            "aggregate_name": "median",
            "real_time": 100.0,
        },
        {
            "name": "BM_Slow_median",
            "run_type": "aggregate",
            "aggregate_name": "median",
            "real_time": 2000.0,
        },
    ]
}


class SnapshotToolTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.dir = pathlib.Path(self.tmp.name)
        self.json_path = self.dir / "bench.json"
        self.binary = self.dir / "fake_micro_ops.py"
        self.write_binary(FAKE_REPORT)
        self.write_doc({
            "unit": "ns_per_iteration",
            "snapshots": [
                {
                    "label": "base",
                    "description": "seed",
                    "micro_ops": {"BM_Fast": 100.0, "BM_Slow": 2000.0},
                },
            ],
        })

    def tearDown(self):
        self.tmp.cleanup()

    def write_binary(self, report):
        self.binary.write_text(
            "#!%s\nimport json\nprint(json.dumps(%r))\n"
            % (sys.executable, report))
        self.binary.chmod(0o755)

    def write_doc(self, doc):
        self.json_path.write_text(json.dumps(doc, indent=2) + "\n")

    def read_doc(self):
        return json.loads(self.json_path.read_text())

    def run_tool(self, *args):
        return subprocess.run(
            [sys.executable, str(SNAPSHOT_PY), "--binary",
             str(self.binary), "--json", str(self.json_path),
             "--repetitions", "1", *args],
            capture_output=True, text=True)

    def test_appends_new_label(self):
        res = self.run_tool("--label", "next", "--description", "d")
        self.assertEqual(res.returncode, 0, res.stderr)
        snaps = self.read_doc()["snapshots"]
        self.assertEqual([s["label"] for s in snaps], ["base", "next"])
        # Snapshots record the host they were taken on (detected, not
        # the file-level hardcoded block).
        self.assertEqual(snaps[-1]["host"]["cpus"], os.cpu_count() or 1)

    def test_duplicate_label_errors_without_force(self):
        res = self.run_tool("--label", "base", "--description", "d")
        self.assertNotEqual(res.returncode, 0)
        self.assertIn("--force", res.stderr)
        # The file must be untouched.
        self.assertEqual(
            self.read_doc()["snapshots"][0]["description"], "seed")

    def test_force_replaces_in_place(self):
        self.run_tool("--label", "tail", "--description", "t")
        res = self.run_tool("--label", "base", "--description",
                            "redone", "--force")
        self.assertEqual(res.returncode, 0, res.stderr)
        snaps = self.read_doc()["snapshots"]
        self.assertEqual([s["label"] for s in snaps], ["base", "tail"])
        self.assertEqual(snaps[0]["description"], "redone")

    def test_compare_passes_within_threshold(self):
        res = self.run_tool("--compare-vs", "base",
                            "--max-regression", "0.25")
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("no regressions", res.stdout)

    def test_compare_fails_on_regression(self):
        regressed = {
            "benchmarks": [
                {
                    "name": "BM_Fast_median",
                    "run_type": "aggregate",
                    "aggregate_name": "median",
                    "real_time": 140.0,
                },
            ]
        }
        self.write_binary(regressed)
        res = self.run_tool("--compare-vs", "base",
                            "--max-regression", "0.25")
        self.assertEqual(res.returncode, 1)
        self.assertIn("REGRESSED", res.stdout)

    def test_compare_and_label_are_exclusive(self):
        res = self.run_tool("--compare-vs", "base", "--label", "x",
                            "--description", "d")
        self.assertNotEqual(res.returncode, 0)

    def test_metrics_jsonl_summary(self):
        jsonl = self.dir / "metrics.jsonl"
        lines = [
            {
                "schema": "proram-metrics-v1",
                "scheme": "oram_dynamic",
                "histograms": {
                    "requestLatency": {"mean": 1000.0},
                },
            },
            {
                "schema": "proram-metrics-v1",
                "scheme": "oram_dynamic",
                "histograms": {
                    "requestLatency": {"mean": 3000.0},
                },
            },
        ]
        jsonl.write_text(
            "\n".join(json.dumps(l) for l in lines) + "\n")
        res = self.run_tool("--label", "m", "--description", "d",
                            "--metrics-jsonl", str(jsonl))
        self.assertEqual(res.returncode, 0, res.stderr)
        snaps = self.read_doc()["snapshots"]
        metrics = snaps[-1]["metrics"]
        self.assertEqual(metrics["runs"], 2)
        self.assertEqual(
            metrics["schemes"]["oram_dynamic"]["histMeans"]
            ["requestLatency"], 2000.0)

    def test_memory_section_records_rss_and_counters(self):
        report = {
            "benchmarks": [
                {
                    "name": "BM_LargeTreeDrive_median",
                    "run_type": "aggregate",
                    "aggregate_name": "median",
                    "real_time": 500.0,
                    "arenaBytesResident": 4096.0,
                    "chunksMaterialized": 2.0,
                },
                {
                    "name": "BM_Fast_median",
                    "run_type": "aggregate",
                    "aggregate_name": "median",
                    "real_time": 100.0,
                },
            ]
        }
        self.write_binary(report)
        res = self.run_tool("--label", "mem", "--description", "d")
        self.assertEqual(res.returncode, 0, res.stderr)
        memory = self.read_doc()["snapshots"][-1]["memory"]
        self.assertGreaterEqual(memory["peakRssBytes"], 0)
        self.assertEqual(
            memory["benchCounters"]["BM_LargeTreeDrive"],
            {"arenaBytesResident": 4096.0, "chunksMaterialized": 2.0})
        # Benchmarks without counters stay out of the section.
        self.assertNotIn("BM_Fast", memory["benchCounters"])

    def test_snapshot_records_scheme_tag(self):
        res = self.run_tool("--label", "ringy", "--description", "d",
                            "--scheme", "ring")
        self.assertEqual(res.returncode, 0, res.stderr)
        snaps = self.read_doc()["snapshots"]
        self.assertEqual(snaps[-1]["scheme"], "ring")
        # Default runs are tagged path.
        self.run_tool("--label", "pathy", "--description", "d")
        self.assertEqual(
            self.read_doc()["snapshots"][-1]["scheme"], "path")

    def test_scheme_exported_to_benchmark_env(self):
        # The stub binary echoes $PRORAM_SCHEME as a benchmark name so
        # the test can see what the subprocess actually ran with.
        self.binary.write_text(
            "#!%s\nimport json, os\n"
            "name = 'BM_' + os.environ.get('PRORAM_SCHEME', 'unset')\n"
            "print(json.dumps({'benchmarks': [{'name': name + '_median',"
            " 'run_type': 'aggregate', 'aggregate_name': 'median',"
            " 'real_time': 1.0}]}))\n" % sys.executable)
        self.binary.chmod(0o755)
        res = self.run_tool("--label", "env", "--description", "d",
                            "--scheme", "ring")
        self.assertEqual(res.returncode, 0, res.stderr)
        micro = self.read_doc()["snapshots"][-1]["micro_ops"]
        self.assertIn("BM_ring", micro)

    def test_compare_refuses_mixed_scheme_labels(self):
        # 'base' predates the tag -> counts as path; a ring compare
        # against it must error out, not silently pass.
        res = self.run_tool("--compare-vs", "base", "--scheme", "ring")
        self.assertNotEqual(res.returncode, 0)
        self.assertIn("same-scheme", res.stderr)
        # Same scheme still compares fine.
        res = self.run_tool("--compare-vs", "base", "--scheme", "path")
        self.assertEqual(res.returncode, 0, res.stderr)

    def test_compare_matches_same_scheme_ring_label(self):
        self.run_tool("--label", "ring_base", "--description", "d",
                      "--scheme", "ring")
        res = self.run_tool("--compare-vs", "ring_base",
                            "--scheme", "ring")
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("no regressions", res.stdout)

    def test_speedup_vs_refuses_mixed_scheme_labels(self):
        res = self.run_tool("--label", "ringy", "--description", "d",
                            "--scheme", "ring", "--speedup-vs", "base")
        self.assertNotEqual(res.returncode, 0)
        self.assertIn("same-scheme", res.stderr)

    def test_metrics_jsonl_rejects_bad_schema(self):
        jsonl = self.dir / "metrics.jsonl"
        jsonl.write_text(json.dumps({"schema": "other"}) + "\n")
        res = self.run_tool("--label", "m", "--description", "d",
                            "--metrics-jsonl", str(jsonl))
        self.assertNotEqual(res.returncode, 0)
        self.assertIn("schema", res.stderr)


if __name__ == "__main__":
    unittest.main()
