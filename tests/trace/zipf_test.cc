/** @file Unit tests for the zipfian generator. */

#include "trace/zipf.hh"

#include <gtest/gtest.h>

#include <vector>

#include "util/logging.hh"

namespace proram
{
namespace
{

TEST(Zipf, StaysInRange)
{
    ZipfGenerator z(100, 0.99);
    Rng rng(1);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(z.next(rng), 100u);
}

TEST(Zipf, RankZeroIsMostPopular)
{
    ZipfGenerator z(1000, 0.99);
    Rng rng(2);
    std::vector<int> count(1000, 0);
    for (int i = 0; i < 50000; ++i)
        ++count[z.next(rng)];
    int max_count = 0, max_idx = -1;
    for (int i = 0; i < 1000; ++i) {
        if (count[i] > max_count) {
            max_count = count[i];
            max_idx = i;
        }
    }
    EXPECT_EQ(max_idx, 0);
    // Head concentration: rank 0 far above the uniform share.
    EXPECT_GT(count[0], 10 * 50);
}

TEST(Zipf, HigherThetaMoreSkewed)
{
    Rng r1(3), r2(3);
    ZipfGenerator lo(1000, 0.5), hi(1000, 0.99);
    int lo_head = 0, hi_head = 0;
    for (int i = 0; i < 30000; ++i) {
        lo_head += lo.next(r1) < 10 ? 1 : 0;
        hi_head += hi.next(r2) < 10 ? 1 : 0;
    }
    EXPECT_GT(hi_head, lo_head);
}

TEST(Zipf, DeterministicGivenRngSeed)
{
    ZipfGenerator a(500, 0.9), b(500, 0.9);
    Rng ra(7), rb(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(ra), b.next(rb));
}

TEST(Zipf, RejectsBadParameters)
{
    EXPECT_THROW(ZipfGenerator(0, 0.9), SimFatal);
    EXPECT_THROW(ZipfGenerator(10, 0.0), SimFatal);
    EXPECT_THROW(ZipfGenerator(10, 1.0), SimFatal);
}

TEST(Zipf, CoversTail)
{
    ZipfGenerator z(50, 0.8);
    Rng rng(9);
    std::vector<bool> seen(50, false);
    for (int i = 0; i < 20000; ++i)
        seen[z.next(rng)] = true;
    int covered = 0;
    for (bool s : seen)
        covered += s ? 1 : 0;
    EXPECT_GT(covered, 45);
}

} // namespace
} // namespace proram
