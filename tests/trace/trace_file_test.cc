/** @file Unit tests for trace record/replay. */

#include "trace/trace_file.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/benchmarks.hh"
#include "trace/synthetic.hh"
#include "util/logging.hh"

namespace proram
{
namespace
{

SyntheticConfig
tiny()
{
    SyntheticConfig c;
    c.footprintBlocks = 256;
    c.numAccesses = 500;
    c.localityFraction = 0.5;
    c.writeFraction = 0.3;
    c.seed = 4;
    return c;
}

TEST(TraceFile, RoundTripPreservesEveryRecord)
{
    SyntheticGenerator gen(tiny());
    std::ostringstream os;
    const std::uint64_t written = writeTrace(gen, os);
    EXPECT_EQ(written, 500u);

    std::istringstream is(os.str());
    const auto records = readTrace(is);
    ASSERT_EQ(records.size(), 500u);

    gen.reset();
    TraceRecord rec;
    for (const TraceRecord &r : records) {
        ASSERT_TRUE(gen.next(rec));
        EXPECT_EQ(r.addr, rec.addr);
        EXPECT_EQ(r.op, rec.op);
        EXPECT_EQ(r.computeCycles, rec.computeCycles);
    }
}

TEST(TraceFile, ReplayGeneratorMatchesSource)
{
    SyntheticGenerator gen(tiny());
    std::ostringstream os;
    writeTrace(gen, os);
    std::istringstream is(os.str());
    ReplayGenerator replay(readTrace(is));
    EXPECT_EQ(replay.size(), 500u);

    gen.reset();
    TraceRecord a, b;
    while (gen.next(a)) {
        ASSERT_TRUE(replay.next(b));
        EXPECT_EQ(a.addr, b.addr);
    }
    EXPECT_FALSE(replay.next(b));
    replay.reset();
    EXPECT_TRUE(replay.next(b));
}

TEST(TraceFile, CommentsAndBlankLinesIgnored)
{
    std::istringstream is(
        "# header\n\n10 1f80 R\n# mid comment\n0 0 W\n");
    const auto records = readTrace(is);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].computeCycles, 10u);
    EXPECT_EQ(records[0].addr, 0x1f80u);
    EXPECT_EQ(records[0].op, OpType::Read);
    EXPECT_EQ(records[1].op, OpType::Write);
}

TEST(TraceFile, MalformedLinesRejected)
{
    std::istringstream bad_op("5 100 X\n");
    EXPECT_THROW(readTrace(bad_op), SimFatal);
    std::istringstream missing("5 100\n");
    EXPECT_THROW(readTrace(missing), SimFatal);
    std::istringstream garbage("hello world R\n");
    EXPECT_THROW(readTrace(garbage), SimFatal);
    std::istringstream trailing("5 100 R extra\n");
    EXPECT_THROW(readTrace(trailing), SimFatal);
    std::istringstream overflow("4294967296 100 R\n");
    EXPECT_THROW(readTrace(overflow), SimFatal);
}

TEST(TraceFile, EmptyTraceRejected)
{
    // A record-free trace would "run" to a zero-cycle result and
    // poison every derived metric; it must be rejected up front.
    std::istringstream empty("");
    EXPECT_THROW(readTrace(empty), SimFatal);
    std::istringstream comments_only("# header\n\n# nothing else\n");
    EXPECT_THROW(readTrace(comments_only), SimFatal);
}

TEST(TraceFile, ErrorsNameSourceAndRecordIndex)
{
    // Operators debug traces by record position, so the diagnostics
    // must carry the source name, the 1-based record index, and the
    // physical line number.
    std::istringstream is("# header\n1 10 R\n2 20 W\n3 30 Q\n");
    try {
        readTrace(is, "bad.trace");
        FAIL() << "expected SimFatal";
    } catch (const SimFatal &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("bad.trace"), std::string::npos) << msg;
        EXPECT_NE(msg.find("record 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
        EXPECT_NE(msg.find("expected R or W"), std::string::npos)
            << msg;
    }
}

TEST(TraceFile, ShortReadNamesTruncatedRecord)
{
    // A trace cut off mid-record (e.g. a partial download) dies with
    // the index of the truncated record, not a generic parse error.
    std::istringstream is("1 10 R\n2 20\n");
    try {
        readTrace(is, "cut.trace");
        FAIL() << "expected SimFatal";
    } catch (const SimFatal &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("cut.trace"), std::string::npos) << msg;
        EXPECT_NE(msg.find("record 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("truncated or malformed"),
                  std::string::npos)
            << msg;
    }
}

TEST(TraceFile, ReadTraceFileNamesPathInErrors)
{
    const std::string path = ::testing::TempDir() + "proram_bad.txt";
    {
        std::ofstream os(path);
        os << "7 1f R\nnot-a-record\n";
    }
    try {
        readTraceFile(path);
        FAIL() << "expected SimFatal";
    } catch (const SimFatal &e) {
        EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(TraceFile, ReplayFillBatchMatchesNext)
{
    SyntheticGenerator gen(tiny());
    std::ostringstream os;
    writeTrace(gen, os);
    std::istringstream is(os.str());
    const auto records = readTrace(is);

    ReplayGenerator one(records);
    ReplayGenerator batched(records);
    TraceRecord batch[48];
    TraceRecord single;
    std::size_t total = 0;
    // Odd batch size exercises the final short batch.
    for (;;) {
        const std::size_t n = batched.fillBatch(batch, 48);
        if (n == 0)
            break;
        total += n;
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_TRUE(one.next(single));
            EXPECT_EQ(batch[i].addr, single.addr);
            EXPECT_EQ(batch[i].op, single.op);
            EXPECT_EQ(batch[i].computeCycles, single.computeCycles);
        }
    }
    EXPECT_FALSE(one.next(single));
    EXPECT_EQ(total, records.size());
}

TEST(TraceFile, MissingFileRejected)
{
    EXPECT_THROW(readTraceFile("/nonexistent/path/trace.txt"),
                 SimFatal);
}

TEST(TraceFile, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "proram_trace.txt";
    auto gen = makeGenerator(profileByName("fft"), 0.01);
    const std::uint64_t written = writeTraceFile(*gen, path);
    const auto records = readTraceFile(path);
    EXPECT_EQ(records.size(), written);
    std::remove(path.c_str());
}

} // namespace
} // namespace proram
