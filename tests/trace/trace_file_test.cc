/** @file Unit tests for trace record/replay. */

#include "trace/trace_file.hh"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/benchmarks.hh"
#include "trace/synthetic.hh"
#include "util/logging.hh"

namespace proram
{
namespace
{

SyntheticConfig
tiny()
{
    SyntheticConfig c;
    c.footprintBlocks = 256;
    c.numAccesses = 500;
    c.localityFraction = 0.5;
    c.writeFraction = 0.3;
    c.seed = 4;
    return c;
}

TEST(TraceFile, RoundTripPreservesEveryRecord)
{
    SyntheticGenerator gen(tiny());
    std::ostringstream os;
    const std::uint64_t written = writeTrace(gen, os);
    EXPECT_EQ(written, 500u);

    std::istringstream is(os.str());
    const auto records = readTrace(is);
    ASSERT_EQ(records.size(), 500u);

    gen.reset();
    TraceRecord rec;
    for (const TraceRecord &r : records) {
        ASSERT_TRUE(gen.next(rec));
        EXPECT_EQ(r.addr, rec.addr);
        EXPECT_EQ(r.op, rec.op);
        EXPECT_EQ(r.computeCycles, rec.computeCycles);
    }
}

TEST(TraceFile, ReplayGeneratorMatchesSource)
{
    SyntheticGenerator gen(tiny());
    std::ostringstream os;
    writeTrace(gen, os);
    std::istringstream is(os.str());
    ReplayGenerator replay(readTrace(is));
    EXPECT_EQ(replay.size(), 500u);

    gen.reset();
    TraceRecord a, b;
    while (gen.next(a)) {
        ASSERT_TRUE(replay.next(b));
        EXPECT_EQ(a.addr, b.addr);
    }
    EXPECT_FALSE(replay.next(b));
    replay.reset();
    EXPECT_TRUE(replay.next(b));
}

TEST(TraceFile, CommentsAndBlankLinesIgnored)
{
    std::istringstream is(
        "# header\n\n10 1f80 R\n# mid comment\n0 0 W\n");
    const auto records = readTrace(is);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].computeCycles, 10u);
    EXPECT_EQ(records[0].addr, 0x1f80u);
    EXPECT_EQ(records[0].op, OpType::Read);
    EXPECT_EQ(records[1].op, OpType::Write);
}

TEST(TraceFile, MalformedLinesRejected)
{
    std::istringstream bad_op("5 100 X\n");
    EXPECT_THROW(readTrace(bad_op), SimFatal);
    std::istringstream missing("5 100\n");
    EXPECT_THROW(readTrace(missing), SimFatal);
    std::istringstream garbage("hello world R\n");
    EXPECT_THROW(readTrace(garbage), SimFatal);
}

TEST(TraceFile, MissingFileRejected)
{
    EXPECT_THROW(readTraceFile("/nonexistent/path/trace.txt"),
                 SimFatal);
}

TEST(TraceFile, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "proram_trace.txt";
    auto gen = makeGenerator(profileByName("fft"), 0.01);
    const std::uint64_t written = writeTraceFile(*gen, path);
    const auto records = readTraceFile(path);
    EXPECT_EQ(records.size(), written);
    std::remove(path.c_str());
}

} // namespace
} // namespace proram
