/** @file Unit tests for the synthetic (Sec. 5.3) benchmark. */

#include "trace/synthetic.hh"

#include <gtest/gtest.h>

#include <set>

#include "util/logging.hh"

namespace proram
{
namespace
{

SyntheticConfig
base()
{
    SyntheticConfig c;
    c.footprintBlocks = 1024;
    c.numAccesses = 20000;
    c.localityFraction = 0.5;
    c.computeCycles = 4;
    c.seed = 11;
    return c;
}

TEST(Synthetic, EmitsExactlyNumAccesses)
{
    SyntheticGenerator g(base());
    TraceRecord r;
    std::uint64_t n = 0;
    while (g.next(r))
        ++n;
    EXPECT_EQ(n, 20000u);
    EXPECT_FALSE(g.next(r));
}

TEST(Synthetic, AddressesWithinFootprint)
{
    SyntheticGenerator g(base());
    TraceRecord r;
    while (g.next(r)) {
        EXPECT_LT(r.addr, 1024u * 128u);
        EXPECT_EQ(r.addr % 128, 0u);
    }
}

TEST(Synthetic, ResetReplaysIdentically)
{
    SyntheticGenerator g(base());
    std::vector<Addr> first;
    TraceRecord r;
    for (int i = 0; i < 500 && g.next(r); ++i)
        first.push_back(r.addr);
    g.reset();
    for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_TRUE(g.next(r));
        EXPECT_EQ(r.addr, first[i]);
    }
}

TEST(Synthetic, ZeroLocalityIsAllRandom)
{
    SyntheticConfig c = base();
    c.localityFraction = 0.0;
    SyntheticGenerator g(c);
    TraceRecord r;
    std::uint64_t sequential_pairs = 0, n = 0;
    Addr prev = ~0ULL;
    while (g.next(r)) {
        if (r.addr == prev + 128)
            ++sequential_pairs;
        prev = r.addr;
        ++n;
    }
    EXPECT_LT(sequential_pairs, n / 50);
}

TEST(Synthetic, FullLocalityIsSequentialScan)
{
    SyntheticConfig c = base();
    c.localityFraction = 1.0;
    SyntheticGenerator g(c);
    TraceRecord r;
    ASSERT_TRUE(g.next(r));
    Addr prev = r.addr;
    for (int i = 0; i < 2000; ++i) {
        ASSERT_TRUE(g.next(r));
        const Addr expect = (prev + 128) % (1024 * 128);
        EXPECT_EQ(r.addr, expect);
        prev = r.addr;
    }
}

TEST(Synthetic, LocalityFractionSplitsAccesses)
{
    SyntheticConfig c = base();
    c.localityFraction = 0.3;
    SyntheticGenerator g(c);
    TraceRecord r;
    std::uint64_t in_seq_region = 0, total = 0;
    const Addr boundary =
        static_cast<Addr>(0.3 * 1024) * 128;
    while (g.next(r)) {
        in_seq_region += r.addr < boundary ? 1 : 0;
        ++total;
    }
    EXPECT_NEAR(static_cast<double>(in_seq_region) / total, 0.3, 0.03);
}

TEST(Synthetic, PhaseModeSwapsRegions)
{
    SyntheticConfig c = base();
    c.phaseLength = 5000;
    SyntheticGenerator g(c);
    TraceRecord r;
    // Phase 0: sequential cursor walks the low half - consecutive
    // address pairs land there. Phase 1: they land in the high half.
    std::uint64_t phase0_low_runs = 0, phase1_high_runs = 0;
    Addr prev = ~0ULL;
    const Addr half = 512 * 128;
    for (std::uint64_t i = 0; i < 10000; ++i) {
        ASSERT_TRUE(g.next(r));
        if (r.addr == prev + 128) {
            if (i < 5000 && r.addr < half)
                ++phase0_low_runs;
            if (i >= 5000 && r.addr >= half)
                ++phase1_high_runs;
        }
        prev = r.addr;
    }
    EXPECT_GT(phase0_low_runs, 1000u);
    EXPECT_GT(phase1_high_runs, 1000u);
}


TEST(Synthetic, StridedSweepStepsByStride)
{
    SyntheticConfig c = base();
    c.localityFraction = 1.0;
    c.strideBlocks = 4;
    SyntheticGenerator g(c);
    TraceRecord r;
    ASSERT_TRUE(g.next(r));
    Addr prev = r.addr;
    std::uint64_t strided_steps = 0, total = 0;
    for (int i = 0; i < 3000; ++i) {
        ASSERT_TRUE(g.next(r));
        strided_steps += r.addr == prev + 4 * 128 ? 1 : 0;
        prev = r.addr;
        ++total;
    }
    // Nearly every step advances by the stride (column wraps rare).
    EXPECT_GT(static_cast<double>(strided_steps) / total, 0.95);
}

TEST(Synthetic, StridedSweepCoversAllBlocks)
{
    SyntheticConfig c = base();
    c.footprintBlocks = 256;
    c.numAccesses = 256;
    c.localityFraction = 1.0;
    c.strideBlocks = 8;
    SyntheticGenerator g(c);
    TraceRecord r;
    std::set<Addr> seen;
    while (g.next(r))
        seen.insert(r.addr);
    EXPECT_EQ(seen.size(), 256u);
}

TEST(Synthetic, WriteFractionHonored)
{
    SyntheticConfig c = base();
    c.writeFraction = 0.4;
    SyntheticGenerator g(c);
    TraceRecord r;
    std::uint64_t writes = 0, total = 0;
    while (g.next(r)) {
        writes += r.op == OpType::Write ? 1 : 0;
        ++total;
    }
    EXPECT_NEAR(static_cast<double>(writes) / total, 0.4, 0.03);
}

TEST(Synthetic, RejectsBadConfig)
{
    SyntheticConfig c = base();
    c.localityFraction = 1.5;
    EXPECT_THROW(SyntheticGenerator{c}, SimFatal);
    c = base();
    c.footprintBlocks = 2;
    EXPECT_THROW(SyntheticGenerator{c}, SimFatal);
}

} // namespace
} // namespace proram
