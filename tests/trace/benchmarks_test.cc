/** @file Unit tests for the benchmark profile registry. */

#include "trace/benchmarks.hh"

#include <gtest/gtest.h>

#include <set>

#include "util/logging.hh"

namespace proram
{
namespace
{

TEST(Benchmarks, SuitesHavePaperCardinality)
{
    EXPECT_EQ(splash2Suite().size(), 14u);
    EXPECT_EQ(spec06Suite().size(), 10u);
    EXPECT_EQ(dbmsSuite().size(), 2u);
}

TEST(Benchmarks, NamesUniqueAcrossSuites)
{
    std::set<std::string> names;
    for (const auto *suite :
         {&splash2Suite(), &spec06Suite(), &dbmsSuite()}) {
        for (const auto &p : *suite)
            EXPECT_TRUE(names.insert(p.name).second) << p.name;
    }
    EXPECT_EQ(names.size(), 26u);
}

TEST(Benchmarks, LookupByName)
{
    EXPECT_EQ(profileByName("ocean_c").suite, "splash2");
    EXPECT_EQ(profileByName("mcf").suite, "spec06");
    EXPECT_EQ(profileByName("YCSB").suite, "dbms");
    EXPECT_THROW(profileByName("nonesuch"), SimFatal);
}

TEST(Benchmarks, MemoryIntensiveFlagsMatchFig8)
{
    EXPECT_FALSE(profileByName("water_ns").memoryIntensive);
    EXPECT_FALSE(profileByName("volrend").memoryIntensive);
    EXPECT_TRUE(profileByName("ocean_c").memoryIntensive);
    EXPECT_TRUE(profileByName("mcf").memoryIntensive);
}

TEST(Benchmarks, GeneratorStaysInFootprint)
{
    for (const char *name : {"ocean_c", "volrend", "YCSB", "TPCC"}) {
        const auto &p = profileByName(name);
        auto g = makeGenerator(p, 0.1);
        TraceRecord r;
        while (g->next(r)) {
            EXPECT_LT(r.addr / p.blockBytes, p.footprintBlocks)
                << name;
        }
    }
}

TEST(Benchmarks, ScaleShrinksTrace)
{
    const auto &p = profileByName("fft");
    auto g = makeGenerator(p, 0.01);
    TraceRecord r;
    std::uint64_t n = 0;
    while (g->next(r))
        ++n;
    EXPECT_EQ(n, p.numAccesses / 100);
}

TEST(Benchmarks, DeterministicAcrossInstances)
{
    const auto &p = profileByName("raytrace");
    auto g1 = makeGenerator(p, 0.05);
    auto g2 = makeGenerator(p, 0.05);
    TraceRecord a, b;
    while (g1->next(a)) {
        ASSERT_TRUE(g2->next(b));
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.op, b.op);
    }
}

TEST(Benchmarks, ResetReplays)
{
    auto g = makeGenerator(profileByName("gcc"), 0.02);
    std::vector<Addr> first;
    TraceRecord r;
    while (g->next(r))
        first.push_back(r.addr);
    g->reset();
    for (Addr a : first) {
        ASSERT_TRUE(g->next(r));
        EXPECT_EQ(r.addr, a);
    }
}

TEST(Benchmarks, OceanHasMoreRunLocalityThanVolrend)
{
    auto count_seq = [](const char *name) {
        auto g = makeGenerator(profileByName(name), 0.2);
        TraceRecord r;
        Addr prev = ~0ULL;
        std::uint64_t seq = 0, n = 0;
        while (g->next(r)) {
            seq += r.addr == prev + 128 ? 1 : 0;
            prev = r.addr;
            ++n;
        }
        return static_cast<double>(seq) / n;
    };
    EXPECT_GT(count_seq("ocean_c"), 3 * count_seq("volrend"));
}

TEST(Benchmarks, YcsbScansWholeRecords)
{
    const auto &p = profileByName("YCSB");
    auto g = makeGenerator(p, 0.1);
    TraceRecord r;
    Addr prev = ~0ULL;
    std::uint64_t seq = 0, n = 0;
    while (g->next(r)) {
        seq += r.addr == prev + 128 ? 1 : 0;
        prev = r.addr;
        ++n;
    }
    // 8-block record scans: most accesses continue a run.
    EXPECT_GT(static_cast<double>(seq) / n, 0.5);
}


TEST(Benchmarks, SequentialRunsConcentrateInStreamRegion)
{
    BenchmarkProfile p = profileByName("mcf"); // seqRegionFraction 0.2
    auto g = makeGenerator(p, 0.2);
    TraceRecord r;
    Addr prev = ~0ULL;
    const Addr region_end = static_cast<Addr>(
        p.seqRegionFraction * p.footprintBlocks * p.blockBytes);
    std::uint64_t runs_in_region = 0, runs_total = 0;
    while (g->next(r)) {
        if (r.addr == prev + p.blockBytes) {
            ++runs_total;
            // allow runs to spill slightly past the region edge
            runs_in_region +=
                r.addr < region_end + 64 * p.blockBytes ? 1 : 0;
        }
        prev = r.addr;
    }
    ASSERT_GT(runs_total, 100u);
    EXPECT_GT(static_cast<double>(runs_in_region) / runs_total, 0.95);
}

TEST(Benchmarks, ComputeGapsReflectMemoryIntensiveness)
{
    EXPECT_GT(profileByName("water_ns").computeCycles,
              profileByName("ocean_c").computeCycles * 10);
}

} // namespace
} // namespace proram
