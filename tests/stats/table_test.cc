/** @file Unit tests for the text table formatter. */

#include "stats/table.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace proram::stats
{
namespace
{

TEST(Table, RendersHeaderAndRows)
{
    Table t({"bench", "speedup"});
    t.row().add("ocean_c").addPct(0.421);
    t.row().add("volrend").addPct(-0.035);
    const std::string out = t.str();
    EXPECT_NE(out.find("bench"), std::string::npos);
    EXPECT_NE(out.find("ocean_c"), std::string::npos);
    EXPECT_NE(out.find("+42.1%"), std::string::npos);
    EXPECT_NE(out.find("-3.5%"), std::string::npos);
}

TEST(Table, FormatsDoublesWithPrecision)
{
    Table t({"v"});
    t.row().add(3.14159, 2);
    EXPECT_NE(t.str().find("3.14"), std::string::npos);
    EXPECT_EQ(t.str().find("3.142"), std::string::npos);
}

TEST(Table, FormatsIntegers)
{
    Table t({"n"});
    t.row().addInt(123456);
    EXPECT_NE(t.str().find("123456"), std::string::npos);
}

TEST(Table, EmptyHeadersRejected)
{
    EXPECT_THROW(Table({}), SimFatal);
}

TEST(Table, AddBeforeRowPanics)
{
    Table t({"a"});
    EXPECT_THROW(t.add("x"), SimPanic);
}

TEST(Table, TooManyCellsPanics)
{
    Table t({"a"});
    t.row().add("x");
    EXPECT_THROW(t.add("y"), SimPanic);
}

TEST(Table, ColumnsAlign)
{
    Table t({"name", "v"});
    t.row().add("a").add("1");
    t.row().add("longname").add("2");
    const std::string out = t.str();
    // Both value cells must start at the same column.
    const auto line_at = [&](int n) {
        std::size_t pos = 0;
        for (int i = 0; i < n; ++i)
            pos = out.find('\n', pos) + 1;
        return out.substr(pos, out.find('\n', pos) - pos);
    };
    const std::string r1 = line_at(2), r2 = line_at(3);
    EXPECT_EQ(r1.find('1'), r2.find('2'));
}

} // namespace
} // namespace proram::stats
