/** @file Unit tests for the statistics package. */

#include "stats/stats.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace proram::stats
{
namespace
{

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    EXPECT_EQ(c.value(), 1u);
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, TracksMoments)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);

    d.sample(2.0);
    d.sample(4.0);
    d.sample(6.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.sum(), 12.0);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 6.0);
}

TEST(Distribution, MinMaxWithNegativeSamples)
{
    Distribution d;
    d.sample(-3.0);
    d.sample(5.0);
    EXPECT_DOUBLE_EQ(d.min(), -3.0);
    EXPECT_DOUBLE_EQ(d.max(), 5.0);
}

TEST(Distribution, ResetClearsState)
{
    Distribution d;
    d.sample(10.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.sum(), 0.0);
}

TEST(Histogram, BucketsSamples)
{
    Histogram h(4, 10.0);
    h.sample(0.0);   // bucket 0
    h.sample(9.9);   // bucket 0
    h.sample(10.0);  // bucket 1
    h.sample(25.0);  // bucket 2
    h.sample(1000.); // clamps to bucket 3
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, RejectsDegenerateShape)
{
    EXPECT_THROW(Histogram(0, 1.0), SimFatal);
    EXPECT_THROW(Histogram(4, 0.0), SimFatal);
}

TEST(StatGroup, RegistersAndReadsScalars)
{
    Counter c;
    c += 7;
    StatGroup g("oram");
    g.addScalar("pathReads", "paths read", c);
    EXPECT_DOUBLE_EQ(g.get("pathReads"), 7.0);
    c += 3;
    EXPECT_DOUBLE_EQ(g.get("pathReads"), 10.0);
}

TEST(StatGroup, RegistersClosures)
{
    StatGroup g("x");
    int v = 5;
    g.addValue("twice", "2v", [&v] { return 2.0 * v; });
    EXPECT_DOUBLE_EQ(g.get("twice"), 10.0);
    v = 6;
    EXPECT_DOUBLE_EQ(g.get("twice"), 12.0);
}

TEST(StatGroup, UnknownStatPanics)
{
    StatGroup g("x");
    EXPECT_THROW(g.get("missing"), SimPanic);
}

TEST(StatGroup, DumpContainsNameValueDesc)
{
    Counter c;
    ++c;
    StatGroup g("ctl");
    g.addScalar("hits", "cache hits", c);
    const std::string out = g.dump();
    EXPECT_NE(out.find("ctl.hits"), std::string::npos);
    EXPECT_NE(out.find("cache hits"), std::string::npos);
}

} // namespace
} // namespace proram::stats
