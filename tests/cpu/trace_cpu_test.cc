/** @file Unit tests for the trace-driven core. */

#include "cpu/trace_cpu.hh"

#include <gtest/gtest.h>

#include <vector>

namespace proram
{
namespace
{

/** Scripted trace for precise timing checks. */
struct ScriptedTrace : TraceGenerator
{
    explicit ScriptedTrace(std::vector<TraceRecord> recs)
        : records(std::move(recs))
    {
    }
    bool next(TraceRecord &r) override
    {
        if (idx >= records.size())
            return false;
        r = records[idx++];
        return true;
    }
    void reset() override { idx = 0; }

    std::vector<TraceRecord> records;
    std::size_t idx = 0;
};

/** Backend with fixed latency, recording calls. */
struct FixedBackend : MemBackend
{
    Cycles demandAccess(Cycles now, BlockId block, OpType) override
    {
        demands.push_back(block);
        return now + latency;
    }
    void writebackAccess(Cycles, BlockId block) override
    {
        writebacks.push_back(block);
    }
    void onDemandTouch(Cycles, BlockId block) override
    {
        touches.push_back(block);
    }
    std::uint64_t memAccessCount() const override
    {
        return demands.size() + writebacks.size();
    }

    Cycles latency{500};
    std::vector<BlockId> demands;
    std::vector<BlockId> writebacks;
    std::vector<BlockId> touches;
};

HierarchyConfig
smallHier()
{
    HierarchyConfig h;
    h.l1 = CacheConfig{2 * 128, 1, 128};
    h.l2 = CacheConfig{8 * 128, 2, 128};
    h.l1Latency = Cycles{1};
    h.l2Latency = Cycles{10};
    return h;
}

TraceRecord
rec(Addr addr, std::uint32_t compute = 0, OpType op = OpType::Read)
{
    return TraceRecord{compute, addr, op};
}

TEST(TraceCpu, MissCostsBackendLatency)
{
    CacheHierarchy h(smallHier());
    FixedBackend be;
    TraceCpu cpu(h, be, 128);
    ScriptedTrace t({rec(0)});
    auto res = cpu.run(t);
    // compute 0 + L2 lookup 11 + 500 backend.
    EXPECT_EQ(res.cycles, Cycles{511});
    EXPECT_EQ(res.llcMisses, 1u);
    EXPECT_EQ(be.demands, std::vector<BlockId>{BlockId{0}});
}

TEST(TraceCpu, HitsAreCheap)
{
    CacheHierarchy h(smallHier());
    FixedBackend be;
    TraceCpu cpu(h, be, 128);
    ScriptedTrace t({rec(0), rec(0), rec(0)});
    auto res = cpu.run(t);
    EXPECT_EQ(res.llcMisses, 1u);
    EXPECT_EQ(res.l1Hits, 2u);
    // 511 + 1 + 1.
    EXPECT_EQ(res.cycles, Cycles{513});
}

TEST(TraceCpu, ComputeGapsAccumulate)
{
    CacheHierarchy h(smallHier());
    FixedBackend be;
    TraceCpu cpu(h, be, 128);
    ScriptedTrace t({rec(0, 100), rec(0, 100)});
    auto res = cpu.run(t);
    EXPECT_EQ(res.cycles, Cycles{100 + 511 + 100 + 1});
}

TEST(TraceCpu, AddressesMapToBlocks)
{
    CacheHierarchy h(smallHier());
    FixedBackend be;
    TraceCpu cpu(h, be, 128);
    // Same line: one miss. Different line: second miss.
    ScriptedTrace t({rec(0), rec(64), rec(128)});
    auto res = cpu.run(t);
    EXPECT_EQ(res.llcMisses, 2u);
    EXPECT_EQ(be.demands, (std::vector<BlockId>{BlockId{0}, BlockId{1}}));
}

TEST(TraceCpu, DirtyEvictionTriggersWriteback)
{
    CacheHierarchy h(smallHier());
    FixedBackend be;
    TraceCpu cpu(h, be, 128);
    // LLC: 4 sets, 2 ways. Blocks 0, 4, 8 conflict in set 0.
    ScriptedTrace t({rec(0, 0, OpType::Write), rec(4 * 128),
                     rec(8 * 128)});
    auto res = cpu.run(t);
    ASSERT_FALSE(be.writebacks.empty());
    EXPECT_EQ(be.writebacks.front(), BlockId{0});
    EXPECT_GE(res.writebacks, 1u);
}

TEST(TraceCpu, DrainWritesDirtyLinesAtEnd)
{
    CacheHierarchy h(smallHier());
    FixedBackend be;
    TraceCpu cpu(h, be, 128);
    ScriptedTrace t({rec(0, 0, OpType::Write),
                     rec(128, 0, OpType::Write)});
    auto res = cpu.run(t);
    EXPECT_EQ(be.writebacks.size(), 2u);
    EXPECT_EQ(res.writebacks, 2u);
}

TEST(TraceCpu, TouchNotifiesBackend)
{
    CacheHierarchy h(smallHier());
    FixedBackend be;
    TraceCpu cpu(h, be, 128);
    // Miss then L2 hit (L1 conflict evicts 0 to... with 2-line L1,
    // 0 and 2 conflict in L1 set 0 but coexist in L2).
    ScriptedTrace t({rec(0), rec(2 * 128), rec(0)});
    cpu.run(t);
    // Misses notify (2) and the final L2 hit notifies (1).
    EXPECT_EQ(be.touches.size(), 3u);
}

TEST(TraceCpu, ReferenceCountsExact)
{
    CacheHierarchy h(smallHier());
    FixedBackend be;
    TraceCpu cpu(h, be, 128);
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 50; ++i)
        recs.push_back(rec((i % 10) * 128));
    ScriptedTrace t(recs);
    auto res = cpu.run(t);
    EXPECT_EQ(res.references, 50u);
    EXPECT_EQ(res.l1Hits + res.l2Hits + res.llcMisses, 50u);
}

} // namespace
} // namespace proram
