/** @file Unit tests for the periodic-access scheduler. */

#include "oram/periodic.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace proram
{
namespace
{

TEST(Periodic, DisabledModeSerializes)
{
    PeriodicScheduler s({false, 100}, 1000);
    auto g1 = s.schedule(0, 1);
    EXPECT_EQ(g1.start, 0u);
    EXPECT_EQ(g1.completion, 1000u);
    // Arrives while busy: waits.
    auto g2 = s.schedule(500, 2);
    EXPECT_EQ(g2.start, 1000u);
    EXPECT_EQ(g2.completion, 3000u);
    // Arrives after idle gap: starts immediately, no dummies.
    auto g3 = s.schedule(10000, 1);
    EXPECT_EQ(g3.start, 10000u);
    EXPECT_EQ(g3.elapsedDummies, 0u);
    EXPECT_EQ(s.totalDummies(), 0u);
}

TEST(Periodic, EnabledPeriodIsPathPlusOint)
{
    PeriodicScheduler s({true, 100}, 1000);
    EXPECT_EQ(s.period(), 1100u);
}

TEST(Periodic, IdleSlotsBecomeDummies)
{
    PeriodicScheduler s({true, 100}, 1000);
    auto g1 = s.schedule(0, 1);
    EXPECT_EQ(g1.start, 0u);
    EXPECT_EQ(g1.elapsedDummies, 0u);
    // Next slot is at 1100. Arriving at 5000 means slots 1100, 2200,
    // 3300, 4400 ran dummies; the request takes the 5500 slot.
    auto g2 = s.schedule(5000, 1);
    EXPECT_EQ(g2.elapsedDummies, 4u);
    EXPECT_EQ(g2.start, 5500u);
    EXPECT_EQ(g2.completion, 6500u);
    EXPECT_EQ(s.totalDummies(), 4u);
}

TEST(Periodic, BackToBackRequestsUseConsecutiveSlots)
{
    PeriodicScheduler s({true, 100}, 1000);
    s.schedule(0, 1);
    auto g2 = s.schedule(0, 1); // queued immediately
    EXPECT_EQ(g2.start, 1100u);
    EXPECT_EQ(g2.elapsedDummies, 0u);
}

TEST(Periodic, MultiPathRequestSpansSlots)
{
    PeriodicScheduler s({true, 100}, 1000);
    auto g = s.schedule(0, 3);
    EXPECT_EQ(g.start, 0u);
    // Paths at 0, 1100, 2200; data ready at 3200.
    EXPECT_EQ(g.completion, 3200u);
    auto g2 = s.schedule(0, 1);
    EXPECT_EQ(g2.start, 3300u);
}

TEST(Periodic, RequestAtExactSlotBoundaryTakesIt)
{
    PeriodicScheduler s({true, 100}, 1000);
    s.schedule(0, 1);
    auto g = s.schedule(1100, 1);
    EXPECT_EQ(g.start, 1100u);
    EXPECT_EQ(g.elapsedDummies, 0u);
}

TEST(Periodic, DrainCountsTrailingDummies)
{
    PeriodicScheduler s({true, 100}, 1000);
    s.schedule(0, 1);
    EXPECT_EQ(s.drainDummies(4500), 4u); // slots 1100..4400
    EXPECT_EQ(s.totalDummies(), 4u);
    // Draining twice is idempotent for the same time.
    EXPECT_EQ(s.drainDummies(4500), 0u);
}

TEST(Periodic, DrainDisabledIsZero)
{
    PeriodicScheduler s({false, 100}, 1000);
    s.schedule(0, 1);
    EXPECT_EQ(s.drainDummies(100000), 0u);
}

TEST(Periodic, ZeroPathCyclesRejected)
{
    EXPECT_THROW(PeriodicScheduler({true, 100}, 0), SimFatal);
}

TEST(Periodic, TimingIndependentOfRequestPattern)
{
    // The access-start sequence must be identical whatever the
    // arrival times - that is the security property.
    PeriodicScheduler a({true, 50}, 500);
    PeriodicScheduler b({true, 50}, 500);
    std::vector<Cycles> starts_a, starts_b;
    // Pattern A: bursts.
    starts_a.push_back(a.schedule(0, 1).start);
    starts_a.push_back(a.schedule(1, 1).start);
    starts_a.push_back(a.schedule(2, 1).start);
    // Pattern B: spread out; count the dummy slots in between.
    starts_b.push_back(b.schedule(0, 1).start);
    auto g = b.schedule(1400, 1);
    // Slot 550 ran a dummy; request takes slot 1650... wait: next slot
    // after 550 is 1100 < 1400 -> also dummy; start = 1650.
    EXPECT_EQ(g.start + 0, 1650u);
    EXPECT_EQ(g.elapsedDummies, 2u);
    // Access starts in pattern B including dummies: 0, 550, 1100,
    // 1650 - a strict multiple-of-period grid, same as pattern A's
    // grid. Verify A's grid:
    EXPECT_EQ(starts_a[0], 0u);
    EXPECT_EQ(starts_a[1], 550u);
    EXPECT_EQ(starts_a[2], 1100u);
}

} // namespace
} // namespace proram
