/** @file Unit tests for the periodic-access scheduler. */

#include "oram/periodic.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace proram
{
namespace
{

TEST(Periodic, DisabledModeSerializes)
{
    PeriodicScheduler s({false, Cycles{100}}, Cycles{1000});
    auto g1 = s.schedule(Cycles{0}, 1);
    EXPECT_EQ(g1.start, Cycles{0});
    EXPECT_EQ(g1.completion, Cycles{1000});
    // Arrives while busy: waits.
    auto g2 = s.schedule(Cycles{500}, 2);
    EXPECT_EQ(g2.start, Cycles{1000});
    EXPECT_EQ(g2.completion, Cycles{3000});
    // Arrives after idle gap: starts immediately, no dummies.
    auto g3 = s.schedule(Cycles{10000}, 1);
    EXPECT_EQ(g3.start, Cycles{10000});
    EXPECT_EQ(g3.elapsedDummies, 0u);
    EXPECT_EQ(s.totalDummies(), 0u);
}

TEST(Periodic, EnabledPeriodIsPathPlusOint)
{
    PeriodicScheduler s({true, Cycles{100}}, Cycles{1000});
    EXPECT_EQ(s.period(), Cycles{1100});
}

TEST(Periodic, IdleSlotsBecomeDummies)
{
    PeriodicScheduler s({true, Cycles{100}}, Cycles{1000});
    auto g1 = s.schedule(Cycles{0}, 1);
    EXPECT_EQ(g1.start, Cycles{0});
    EXPECT_EQ(g1.elapsedDummies, 0u);
    // Next slot is at 1100. Arriving at 5000 means slots 1100, 2200,
    // 3300, 4400 ran dummies; the request takes the 5500 slot.
    auto g2 = s.schedule(Cycles{5000}, 1);
    EXPECT_EQ(g2.elapsedDummies, 4u);
    EXPECT_EQ(g2.start, Cycles{5500});
    EXPECT_EQ(g2.completion, Cycles{6500});
    EXPECT_EQ(s.totalDummies(), 4u);
}

TEST(Periodic, BackToBackRequestsUseConsecutiveSlots)
{
    PeriodicScheduler s({true, Cycles{100}}, Cycles{1000});
    s.schedule(Cycles{0}, 1);
    auto g2 = s.schedule(Cycles{0}, 1); // queued immediately
    EXPECT_EQ(g2.start, Cycles{1100});
    EXPECT_EQ(g2.elapsedDummies, 0u);
}

TEST(Periodic, MultiPathRequestSpansSlots)
{
    PeriodicScheduler s({true, Cycles{100}}, Cycles{1000});
    auto g = s.schedule(Cycles{0}, 3);
    EXPECT_EQ(g.start, Cycles{0});
    // Paths at 0, 1100, 2200; data ready at 3200.
    EXPECT_EQ(g.completion, Cycles{3200});
    auto g2 = s.schedule(Cycles{0}, 1);
    EXPECT_EQ(g2.start, Cycles{3300});
}

TEST(Periodic, RequestAtExactSlotBoundaryTakesIt)
{
    PeriodicScheduler s({true, Cycles{100}}, Cycles{1000});
    s.schedule(Cycles{0}, 1);
    auto g = s.schedule(Cycles{1100}, 1);
    EXPECT_EQ(g.start, Cycles{1100});
    EXPECT_EQ(g.elapsedDummies, 0u);
}

TEST(Periodic, DrainCountsTrailingDummies)
{
    PeriodicScheduler s({true, Cycles{100}}, Cycles{1000});
    s.schedule(Cycles{0}, 1);
    EXPECT_EQ(s.drainDummies(Cycles{4500}), 4u); // slots 1100..4400
    EXPECT_EQ(s.totalDummies(), 4u);
    // Draining twice is idempotent for the same time.
    EXPECT_EQ(s.drainDummies(Cycles{4500}), 0u);
}

TEST(Periodic, DrainDisabledIsZero)
{
    PeriodicScheduler s({false, Cycles{100}}, Cycles{1000});
    s.schedule(Cycles{0}, 1);
    EXPECT_EQ(s.drainDummies(Cycles{100000}), 0u);
}

TEST(Periodic, ZeroPathCyclesRejected)
{
    EXPECT_THROW(PeriodicScheduler({true, Cycles{100}}, Cycles{0}), SimFatal);
}

TEST(Periodic, TimingIndependentOfRequestPattern)
{
    // The access-start sequence must be identical whatever the
    // arrival times - that is the security property.
    PeriodicScheduler a({true, Cycles{50}}, Cycles{500});
    PeriodicScheduler b({true, Cycles{50}}, Cycles{500});
    std::vector<Cycles> starts_a, starts_b;
    // Pattern A: bursts.
    starts_a.push_back(a.schedule(Cycles{0}, 1).start);
    starts_a.push_back(a.schedule(Cycles{1}, 1).start);
    starts_a.push_back(a.schedule(Cycles{2}, 1).start);
    // Pattern B: spread out; count the dummy slots in between.
    starts_b.push_back(b.schedule(Cycles{0}, 1).start);
    auto g = b.schedule(Cycles{1400}, 1);
    // Slot 550 ran a dummy; request takes slot 1650... wait: next slot
    // after 550 is 1100 < 1400 -> also dummy; start = 1650.
    EXPECT_EQ(g.start, Cycles{1650});
    EXPECT_EQ(g.elapsedDummies, 2u);
    // Access starts in pattern B including dummies: 0, 550, 1100,
    // 1650 - a strict multiple-of-period grid, same as pattern A's
    // grid. Verify A's grid:
    EXPECT_EQ(starts_a[0], Cycles{0});
    EXPECT_EQ(starts_a[1], Cycles{550});
    EXPECT_EQ(starts_a[2], Cycles{1100});
}

} // namespace
} // namespace proram
