/** @file Unit tests for ORAM configuration / derived geometry. */

#include "oram/config.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace proram
{
namespace
{

TEST(OramConfig, PosMapFanout)
{
    OramConfig c;
    c.blockBytes = 128;
    c.posMapEntryBytes = 4;
    EXPECT_EQ(c.posMapFanout(), 32u);
}

TEST(OramConfig, PosMapLevelsForDefault)
{
    OramConfig c;
    c.numDataBlocks = 1ULL << 16;
    c.hierarchies = 4;
    // 2^16 -> 2^11 -> 2^6 -> 2 on-chip: 3 tree-resident levels.
    EXPECT_EQ(c.posMapLevels(), 3u);
    EXPECT_EQ(c.onChipPosMapEntries(), 2u);
}

TEST(OramConfig, HierarchyCapLimitsLevels)
{
    OramConfig c;
    c.numDataBlocks = 1ULL << 16;
    c.hierarchies = 2; // data + 1 pos-map level only
    EXPECT_EQ(c.posMapLevels(), 1u);
    EXPECT_EQ(c.onChipPosMapEntries(), 1ULL << 11);
}

TEST(OramConfig, SmallOramNeedsNoRecursion)
{
    OramConfig c;
    c.numDataBlocks = 16;
    EXPECT_EQ(c.posMapLevels(), 0u);
    EXPECT_EQ(c.onChipPosMapEntries(), 16u);
    EXPECT_EQ(c.numTotalBlocks(), 16u);
}

TEST(OramConfig, TotalBlocksIncludesPosMap)
{
    OramConfig c;
    c.numDataBlocks = 1ULL << 16;
    // 65536 + 2048 + 64 + 2 = 67650 (three tree-resident levels).
    EXPECT_EQ(c.numTotalBlocks(), 65536u + 2048u + 64u + 2u);
}

TEST(OramConfig, LevelsGiveHighUtilization)
{
    OramConfig c;
    c.numDataBlocks = 48 * 1024;
    const std::uint64_t slots =
        static_cast<std::uint64_t>(c.z) *
        ((2ULL << c.levels()) - 1);
    const double util =
        static_cast<double>(c.numTotalBlocks()) / slots;
    EXPECT_GT(util, 0.25);
    EXPECT_LT(util, 0.7);
}

TEST(OramConfig, PathAccessCyclesScalesWithLevels)
{
    OramConfig c;
    c.pathOverheadCycles = Cycles{100};
    c.dramBytesPerCycle = 16.0;
    c.z = 3;
    c.blockBytes = 128;
    c.timingLevels = 26; // full-size 8 GB configuration
    // 27 buckets * 3 blocks * 128 B * 2 directions / 16 B/cycle.
    EXPECT_EQ(c.pathAccessCycles(), Cycles{100 + 1296});

    c.timingLevels = 13;
    EXPECT_EQ(c.pathAccessCycles(), Cycles{100 + 672});
}

TEST(OramConfig, TimingLevelsZeroUsesFunctionalLevels)
{
    OramConfig c;
    c.timingLevels = 0;
    EXPECT_EQ(c.effectiveTimingLevels(), c.levels());
    c.timingLevels = 26;
    EXPECT_EQ(c.effectiveTimingLevels(), 26u);
}

TEST(OramConfig, LargerZCostsMoreLatency)
{
    OramConfig c3, c4;
    c3.z = 3;
    c4.z = 4;
    c3.timingLevels = c4.timingLevels = 20;
    EXPECT_GT(c4.pathAccessCycles(), c3.pathAccessCycles());
}

TEST(OramConfig, ValidateRejectsBadGeometry)
{
    OramConfig c;
    c.numDataBlocks = 4;
    EXPECT_THROW(c.validate(), SimFatal);

    c = OramConfig{};
    c.blockBytes = 100;
    EXPECT_THROW(c.validate(), SimFatal);

    c = OramConfig{};
    c.z = 0;
    EXPECT_THROW(c.validate(), SimFatal);

    c = OramConfig{};
    c.dramBytesPerCycle = -1;
    EXPECT_THROW(c.validate(), SimFatal);

    c = OramConfig{};
    EXPECT_NO_THROW(c.validate());
}

} // namespace
} // namespace proram
