/** @file Unit tests for the dense insertion-ordered ORAM stash. */

#include "oram/stash.hh"

#include <gtest/gtest.h>

#include <algorithm>

namespace proram
{
namespace
{

using namespace proram::literals;

TEST(Stash, InsertFindErase)
{
    Stash s(10);
    EXPECT_TRUE(s.insert(5_id, 99, 3_leaf));
    EXPECT_TRUE(s.contains(5_id));
    ASSERT_NE(s.findData(5_id), nullptr);
    EXPECT_EQ(*s.findData(5_id), 99u);
    EXPECT_EQ(s.leafOf(5_id), 3_leaf);
    EXPECT_TRUE(s.erase(5_id));
    EXPECT_FALSE(s.contains(5_id));
    EXPECT_FALSE(s.erase(5_id));
    EXPECT_EQ(s.findData(5_id), nullptr);
    EXPECT_EQ(s.leafOf(5_id), kInvalidLeaf);
}

TEST(Stash, DuplicateInsertRejected)
{
    Stash s(10);
    EXPECT_TRUE(s.insert(1_id, 1, 0_leaf));
    EXPECT_FALSE(s.insert(1_id, 2, 7_leaf));
    EXPECT_EQ(*s.findData(1_id), 1u);
    EXPECT_EQ(s.leafOf(1_id), 0_leaf);
}

TEST(Stash, CapacityIsSoft)
{
    Stash s(2);
    s.insert(1_id, 0, 0_leaf);
    s.insert(2_id, 0, 0_leaf);
    EXPECT_FALSE(s.overCapacity());
    s.insert(3_id, 0, 0_leaf);
    EXPECT_TRUE(s.overCapacity());
    EXPECT_EQ(s.size(), 3u);
}

TEST(Stash, IterationFollowsInsertionOrder)
{
    Stash s(10);
    s.insert(3_id, 0, 0_leaf);
    s.insert(9_id, 0, 0_leaf);
    s.insert(1_id, 0, 0_leaf);
    EXPECT_EQ(s.residentIds(), (std::vector<BlockId>{3_id, 9_id, 1_id}));
    std::vector<BlockId> visited;
    s.forEachResident([&](const StashEntry &e) {
        visited.push_back(e.id);
    });
    EXPECT_EQ(visited, (std::vector<BlockId>{3_id, 9_id, 1_id}));
}

TEST(Stash, InsertionOrderSurvivesEraseAndReinsert)
{
    Stash s(10);
    for (BlockId b : {4_id, 8_id, 15_id, 16_id, 23_id})
        s.insert(b, 0, 0_leaf);
    s.erase(8_id);
    s.erase(16_id);
    // Survivors keep their relative order; a reinsert goes to the end.
    EXPECT_EQ(s.residentIds(),
              (std::vector<BlockId>{4_id, 15_id, 23_id}));
    s.insert(8_id, 0, 0_leaf);
    EXPECT_EQ(s.residentIds(),
              (std::vector<BlockId>{4_id, 15_id, 23_id, 8_id}));
}

TEST(Stash, OrderAndLookupsSurviveCompaction)
{
    // Churn enough dead entries to force internal compaction several
    // times; order and id -> entry mapping must hold throughout.
    Stash s(8);
    for (std::uint64_t b = 0; b < 64; ++b)
        s.insert(BlockId{b}, b * 2,
                 Leaf{static_cast<std::uint32_t>(b % 7)});
    for (std::uint64_t b = 0; b < 64; ++b) {
        if (b % 3 != 0)
            s.erase(BlockId{b});
    }
    std::vector<BlockId> expect;
    for (std::uint64_t b = 0; b < 64; b += 3)
        expect.push_back(BlockId{b});
    EXPECT_EQ(s.residentIds(), expect);
    for (BlockId b : expect) {
        ASSERT_NE(s.findData(b), nullptr) << "block " << b;
        EXPECT_EQ(*s.findData(b), b.value() * 2);
        EXPECT_EQ(s.leafOf(b),
                  Leaf{static_cast<std::uint32_t>(b.value() % 7)});
    }
    EXPECT_EQ(s.size(), expect.size());
}

TEST(Stash, SoALanesStayDenseAndAligned)
{
    // The SoA contract writePath depends on: leafLane()/idLane() are
    // parallel arrays over slotCount() slots, dead slots are marked
    // kInvalidBlock in the id lane, and compaction re-packs all lanes.
    Stash s(8);
    for (std::uint64_t b = 0; b < 6; ++b)
        s.insert(BlockId{b}, b + 100,
                 Leaf{static_cast<std::uint32_t>(b)});
    s.erase(1_id);
    s.erase(4_id);
    ASSERT_EQ(s.slotCount(), 6u); // dead slots still present
    std::size_t live = 0;
    for (std::size_t i = 0; i < s.slotCount(); ++i) {
        if (s.idLane()[i] == kInvalidBlock)
            continue;
        ++live;
        const BlockId id = s.idLane()[i];
        EXPECT_EQ(s.leafLane()[i],
                  Leaf{static_cast<std::uint32_t>(id.value())});
        EXPECT_EQ(s.dataLane()[i], id.value() + 100);
    }
    EXPECT_EQ(live, s.size());
}

TEST(Stash, UpdateLeafRefreshesResidentEntryOnly)
{
    Stash s(4);
    s.insert(6_id, 0, 2_leaf);
    s.updateLeaf(6_id, 11_leaf);
    EXPECT_EQ(s.leafOf(6_id), 11_leaf);
    s.updateLeaf(99_id, 5_leaf); // absent: must be a no-op, not an insert
    EXPECT_FALSE(s.contains(99_id));
    EXPECT_EQ(s.size(), 1u);
}

TEST(Stash, OccupancySampling)
{
    Stash s(10);
    s.insert(1_id, 0, 0_leaf);
    s.sampleOccupancy();
    s.insert(2_id, 0, 0_leaf);
    s.insert(3_id, 0, 0_leaf);
    s.sampleOccupancy();
    EXPECT_EQ(s.occupancy().count(), 2u);
    EXPECT_DOUBLE_EQ(s.occupancy().mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.occupancy().max(), 3.0);
}

TEST(Stash, MutableDataThroughFindData)
{
    Stash s(4);
    s.insert(7_id, 10, 0_leaf);
    *s.findData(7_id) = 20;
    EXPECT_EQ(*s.findData(7_id), 20u);
}

} // namespace
} // namespace proram
