/** @file Unit tests for the dense insertion-ordered ORAM stash. */

#include "oram/stash.hh"

#include <gtest/gtest.h>

#include <algorithm>

namespace proram
{
namespace
{

TEST(Stash, InsertFindErase)
{
    Stash s(10);
    EXPECT_TRUE(s.insert(5, 99, 3));
    EXPECT_TRUE(s.contains(5));
    ASSERT_NE(s.findData(5), nullptr);
    EXPECT_EQ(*s.findData(5), 99u);
    EXPECT_EQ(s.leafOf(5), 3u);
    EXPECT_TRUE(s.erase(5));
    EXPECT_FALSE(s.contains(5));
    EXPECT_FALSE(s.erase(5));
    EXPECT_EQ(s.findData(5), nullptr);
    EXPECT_EQ(s.leafOf(5), kInvalidLeaf);
}

TEST(Stash, DuplicateInsertRejected)
{
    Stash s(10);
    EXPECT_TRUE(s.insert(1, 1, 0));
    EXPECT_FALSE(s.insert(1, 2, 7));
    EXPECT_EQ(*s.findData(1), 1u);
    EXPECT_EQ(s.leafOf(1), 0u);
}

TEST(Stash, CapacityIsSoft)
{
    Stash s(2);
    s.insert(1, 0, 0);
    s.insert(2, 0, 0);
    EXPECT_FALSE(s.overCapacity());
    s.insert(3, 0, 0);
    EXPECT_TRUE(s.overCapacity());
    EXPECT_EQ(s.size(), 3u);
}

TEST(Stash, IterationFollowsInsertionOrder)
{
    Stash s(10);
    s.insert(3, 0, 0);
    s.insert(9, 0, 0);
    s.insert(1, 0, 0);
    EXPECT_EQ(s.residentIds(), (std::vector<BlockId>{3, 9, 1}));
    std::vector<BlockId> visited;
    s.forEachResident([&](const StashEntry &e) {
        visited.push_back(e.id);
    });
    EXPECT_EQ(visited, (std::vector<BlockId>{3, 9, 1}));
}

TEST(Stash, InsertionOrderSurvivesEraseAndReinsert)
{
    Stash s(10);
    for (BlockId b : {4, 8, 15, 16, 23})
        s.insert(b, 0, 0);
    s.erase(8);
    s.erase(16);
    // Survivors keep their relative order; a reinsert goes to the end.
    EXPECT_EQ(s.residentIds(), (std::vector<BlockId>{4, 15, 23}));
    s.insert(8, 0, 0);
    EXPECT_EQ(s.residentIds(), (std::vector<BlockId>{4, 15, 23, 8}));
}

TEST(Stash, OrderAndLookupsSurviveCompaction)
{
    // Churn enough dead entries to force internal compaction several
    // times; order and id -> entry mapping must hold throughout.
    Stash s(8);
    for (BlockId b = 0; b < 64; ++b)
        s.insert(b, b * 2, static_cast<Leaf>(b % 7));
    for (BlockId b = 0; b < 64; ++b) {
        if (b % 3 != 0)
            s.erase(b);
    }
    std::vector<BlockId> expect;
    for (BlockId b = 0; b < 64; b += 3)
        expect.push_back(b);
    EXPECT_EQ(s.residentIds(), expect);
    for (BlockId b : expect) {
        ASSERT_NE(s.findData(b), nullptr) << "block " << b;
        EXPECT_EQ(*s.findData(b), b * 2);
        EXPECT_EQ(s.leafOf(b), static_cast<Leaf>(b % 7));
    }
    EXPECT_EQ(s.size(), expect.size());
}

TEST(Stash, SoALanesStayDenseAndAligned)
{
    // The SoA contract writePath depends on: leafLane()/idLane() are
    // parallel arrays over slotCount() slots, dead slots are marked
    // kInvalidBlock in the id lane, and compaction re-packs all lanes.
    Stash s(8);
    for (BlockId b = 0; b < 6; ++b)
        s.insert(b, b + 100, static_cast<Leaf>(b));
    s.erase(1);
    s.erase(4);
    ASSERT_EQ(s.slotCount(), 6u); // dead slots still present
    std::size_t live = 0;
    for (std::size_t i = 0; i < s.slotCount(); ++i) {
        if (s.idLane()[i] == kInvalidBlock)
            continue;
        ++live;
        const BlockId id = s.idLane()[i];
        EXPECT_EQ(s.leafLane()[i], static_cast<Leaf>(id));
        EXPECT_EQ(s.dataLane()[i], id + 100);
    }
    EXPECT_EQ(live, s.size());
}

TEST(Stash, UpdateLeafRefreshesResidentEntryOnly)
{
    Stash s(4);
    s.insert(6, 0, 2);
    s.updateLeaf(6, 11);
    EXPECT_EQ(s.leafOf(6), 11u);
    s.updateLeaf(99, 5); // absent: must be a no-op, not an insert
    EXPECT_FALSE(s.contains(99));
    EXPECT_EQ(s.size(), 1u);
}

TEST(Stash, OccupancySampling)
{
    Stash s(10);
    s.insert(1, 0, 0);
    s.sampleOccupancy();
    s.insert(2, 0, 0);
    s.insert(3, 0, 0);
    s.sampleOccupancy();
    EXPECT_EQ(s.occupancy().count(), 2u);
    EXPECT_DOUBLE_EQ(s.occupancy().mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.occupancy().max(), 3.0);
}

TEST(Stash, MutableDataThroughFindData)
{
    Stash s(4);
    s.insert(7, 10, 0);
    *s.findData(7) = 20;
    EXPECT_EQ(*s.findData(7), 20u);
}

} // namespace
} // namespace proram
