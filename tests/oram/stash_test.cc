/** @file Unit tests for the dense insertion-ordered ORAM stash. */

#include "oram/stash.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

namespace proram
{
namespace
{

using namespace proram::literals;

TEST(Stash, InsertFindErase)
{
    Stash s(10);
    EXPECT_TRUE(s.insert(5_id, 99, 3_leaf));
    EXPECT_TRUE(s.contains(5_id));
    ASSERT_NE(s.findData(5_id), nullptr);
    EXPECT_EQ(*s.findData(5_id), 99u);
    EXPECT_EQ(s.leafOf(5_id), 3_leaf);
    EXPECT_TRUE(s.erase(5_id));
    EXPECT_FALSE(s.contains(5_id));
    EXPECT_FALSE(s.erase(5_id));
    EXPECT_EQ(s.findData(5_id), nullptr);
    EXPECT_EQ(s.leafOf(5_id), kInvalidLeaf);
}

TEST(Stash, DuplicateInsertRejected)
{
    Stash s(10);
    EXPECT_TRUE(s.insert(1_id, 1, 0_leaf));
    EXPECT_FALSE(s.insert(1_id, 2, 7_leaf));
    EXPECT_EQ(*s.findData(1_id), 1u);
    EXPECT_EQ(s.leafOf(1_id), 0_leaf);
}

TEST(Stash, CapacityIsSoft)
{
    Stash s(2);
    s.insert(1_id, 0, 0_leaf);
    s.insert(2_id, 0, 0_leaf);
    EXPECT_FALSE(s.overCapacity());
    s.insert(3_id, 0, 0_leaf);
    EXPECT_TRUE(s.overCapacity());
    EXPECT_EQ(s.size(), 3u);
}

TEST(Stash, IterationFollowsInsertionOrder)
{
    Stash s(10);
    s.insert(3_id, 0, 0_leaf);
    s.insert(9_id, 0, 0_leaf);
    s.insert(1_id, 0, 0_leaf);
    EXPECT_EQ(s.residentIds(), (std::vector<BlockId>{3_id, 9_id, 1_id}));
    std::vector<BlockId> visited;
    s.forEachResident([&](const StashEntry &e) {
        visited.push_back(e.id);
    });
    EXPECT_EQ(visited, (std::vector<BlockId>{3_id, 9_id, 1_id}));
}

TEST(Stash, InsertionOrderSurvivesEraseAndReinsert)
{
    Stash s(10);
    for (BlockId b : {4_id, 8_id, 15_id, 16_id, 23_id})
        s.insert(b, 0, 0_leaf);
    s.erase(8_id);
    s.erase(16_id);
    // Survivors keep their relative order; a reinsert goes to the end.
    EXPECT_EQ(s.residentIds(),
              (std::vector<BlockId>{4_id, 15_id, 23_id}));
    s.insert(8_id, 0, 0_leaf);
    EXPECT_EQ(s.residentIds(),
              (std::vector<BlockId>{4_id, 15_id, 23_id, 8_id}));
}

TEST(Stash, OrderAndLookupsSurviveCompaction)
{
    // Churn enough dead entries to force internal compaction several
    // times; order and id -> entry mapping must hold throughout.
    Stash s(8);
    for (std::uint64_t b = 0; b < 64; ++b)
        s.insert(BlockId{b}, b * 2,
                 Leaf{static_cast<std::uint32_t>(b % 7)});
    for (std::uint64_t b = 0; b < 64; ++b) {
        if (b % 3 != 0)
            s.erase(BlockId{b});
    }
    std::vector<BlockId> expect;
    for (std::uint64_t b = 0; b < 64; b += 3)
        expect.push_back(BlockId{b});
    EXPECT_EQ(s.residentIds(), expect);
    for (BlockId b : expect) {
        ASSERT_NE(s.findData(b), nullptr) << "block " << b;
        EXPECT_EQ(*s.findData(b), b.value() * 2);
        EXPECT_EQ(s.leafOf(b),
                  Leaf{static_cast<std::uint32_t>(b.value() % 7)});
    }
    EXPECT_EQ(s.size(), expect.size());
}

TEST(Stash, SoALanesStayDenseAndAligned)
{
    // The SoA contract writePath depends on: leafLane()/idLane() are
    // parallel arrays over slotCount() slots, dead slots are marked
    // kInvalidBlock in the id lane, and compaction re-packs all lanes.
    Stash s(8);
    for (std::uint64_t b = 0; b < 6; ++b)
        s.insert(BlockId{b}, b + 100,
                 Leaf{static_cast<std::uint32_t>(b)});
    s.erase(1_id);
    s.erase(4_id);
    ASSERT_EQ(s.slotCount(), 6u); // dead slots still present
    std::size_t live = 0;
    for (std::size_t i = 0; i < s.slotCount(); ++i) {
        if (s.idLane()[i] == kInvalidBlock)
            continue;
        ++live;
        const BlockId id = s.idLane()[i];
        EXPECT_EQ(s.leafLane()[i],
                  Leaf{static_cast<std::uint32_t>(id.value())});
        EXPECT_EQ(s.dataLane()[i], id.value() + 100);
    }
    EXPECT_EQ(live, s.size());
}

TEST(Stash, UpdateLeafRefreshesResidentEntryOnly)
{
    Stash s(4);
    s.insert(6_id, 0, 2_leaf);
    s.updateLeaf(6_id, 11_leaf);
    EXPECT_EQ(s.leafOf(6_id), 11_leaf);
    s.updateLeaf(99_id, 5_leaf); // absent: must be a no-op, not an insert
    EXPECT_FALSE(s.contains(99_id));
    EXPECT_EQ(s.size(), 1u);
}

TEST(Stash, OccupancySampling)
{
    Stash s(10);
    s.insert(1_id, 0, 0_leaf);
    s.sampleOccupancy();
    s.insert(2_id, 0, 0_leaf);
    s.insert(3_id, 0, 0_leaf);
    s.sampleOccupancy();
    EXPECT_EQ(s.occupancy().count(), 2u);
    EXPECT_DOUBLE_EQ(s.occupancy().mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.occupancy().max(), 3.0);
}

TEST(Stash, MutableDataThroughFindData)
{
    Stash s(4);
    s.insert(7_id, 10, 0_leaf);
    *s.findData(7_id) = 20;
    EXPECT_EQ(*s.findData(7_id), 20u);
}

TEST(StashSharded, RedistributionPreservesContents)
{
    Stash s(200);
    for (std::uint64_t i = 0; i < 100; ++i)
        s.insert(BlockId{i}, i + 1000, Leaf{static_cast<std::uint32_t>(i)});

    s.enableConcurrent(8);
    EXPECT_TRUE(s.concurrentEnabled());
    EXPECT_EQ(s.shardCount(), 8u);
    EXPECT_EQ(s.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i) {
        const BlockId id{i};
        EXPECT_TRUE(s.contains(id));
        EXPECT_EQ(s.leafOf(id), Leaf{static_cast<std::uint32_t>(i)});
        // Each block must live in exactly its hash shard: the
        // shard-locked lookup on the owning shard finds it.
        const std::uint32_t shard = s.shardOf(id);
        auto guard = s.lockShard(shard);
        std::uint64_t data = 0;
        ASSERT_TRUE(s.lookupLocked(shard, id, nullptr, &data, nullptr));
        EXPECT_EQ(data, i + 1000);
    }
    EXPECT_EQ(s.residentIds().size(), 100u);
}

TEST(StashSharded, ShardCountRoundsDownToPowerOfTwo)
{
    const auto count = [](std::uint32_t requested) {
        Stash s(4);
        s.enableConcurrent(requested);
        return s.shardCount();
    };
    EXPECT_EQ(count(1), 1u);
    EXPECT_EQ(count(6), 4u);
    EXPECT_EQ(count(8), 8u);
    EXPECT_EQ(count(1000), Stash::kMaxShards);
}

TEST(StashSharded, ClaimPinProtocol)
{
    Stash s(8);
    std::atomic<std::uint8_t> count{0};
    std::atomic<std::uint8_t> filter[16] = {};
    s.setPinFilter(filter);
    s.enableConcurrent(4);

    // Claim before arrival: the block starts pinned at insert.
    filter[3] = 1;
    s.claimPin(3_id, count);
    EXPECT_EQ(count.load(), 1u);
    s.insert(3_id, 7, 0_leaf);
    {
        const std::uint32_t shard = s.shardOf(3_id);
        auto guard = s.lockShard(shard);
        bool pinned = false;
        ASSERT_TRUE(s.lookupLocked(shard, 3_id, nullptr, nullptr,
                                   &pinned));
        EXPECT_TRUE(pinned);
    }
    // Second claim on a resident block nests; only the final release
    // unpins.
    s.claimPin(3_id, count);
    EXPECT_EQ(count.load(), 2u);
    s.releaseUnpin(3_id, count);
    {
        const std::uint32_t shard = s.shardOf(3_id);
        auto guard = s.lockShard(shard);
        bool pinned = false;
        ASSERT_TRUE(s.lookupLocked(shard, 3_id, nullptr, nullptr,
                                   &pinned));
        EXPECT_TRUE(pinned);
    }
    s.releaseUnpin(3_id, count);
    EXPECT_EQ(count.load(), 0u);
    {
        const std::uint32_t shard = s.shardOf(3_id);
        auto guard = s.lockShard(shard);
        bool pinned = true;
        ASSERT_TRUE(s.lookupLocked(shard, 3_id, nullptr, nullptr,
                                   &pinned));
        EXPECT_FALSE(pinned);
    }
}

TEST(StashSharded, AwaitResidentWakesOnInsert)
{
    Stash s(8);
    s.enableConcurrent(2);
    s.insert(9_id, 1, 0_leaf);
    s.awaitResident(9_id); // already resident: returns immediately

    std::thread producer([&s] { s.insert(5_id, 2, 1_leaf); });
    s.awaitResident(5_id);
    producer.join();
    EXPECT_TRUE(s.contains(5_id));
}

TEST(StashSharded, ContentionCountersAccumulate)
{
    Stash s(8);
    s.enableConcurrent(4);
    const std::uint64_t before = s.shardLockAcquisitions();
    s.insert(1_id, 1, 0_leaf);
    s.erase(1_id);
    EXPECT_GT(s.shardLockAcquisitions(), before);
    EXPECT_LE(s.shardLockContended(), s.shardLockAcquisitions());
}

} // namespace
} // namespace proram
