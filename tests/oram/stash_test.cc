/** @file Unit tests for the ORAM stash. */

#include "oram/stash.hh"

#include <gtest/gtest.h>

#include <algorithm>

namespace proram
{
namespace
{

TEST(Stash, InsertFindErase)
{
    Stash s(10);
    EXPECT_TRUE(s.insert(5, 99));
    EXPECT_TRUE(s.contains(5));
    ASSERT_NE(s.find(5), nullptr);
    EXPECT_EQ(s.find(5)->data, 99u);
    EXPECT_TRUE(s.erase(5));
    EXPECT_FALSE(s.contains(5));
    EXPECT_FALSE(s.erase(5));
}

TEST(Stash, DuplicateInsertRejected)
{
    Stash s(10);
    EXPECT_TRUE(s.insert(1, 1));
    EXPECT_FALSE(s.insert(1, 2));
    EXPECT_EQ(s.find(1)->data, 1u);
}

TEST(Stash, CapacityIsSoft)
{
    Stash s(2);
    s.insert(1, 0);
    s.insert(2, 0);
    EXPECT_FALSE(s.overCapacity());
    s.insert(3, 0);
    EXPECT_TRUE(s.overCapacity());
    EXPECT_EQ(s.size(), 3u);
}

TEST(Stash, ResidentIdsSnapshot)
{
    Stash s(10);
    s.insert(3, 0);
    s.insert(9, 0);
    s.insert(1, 0);
    auto ids = s.residentIds();
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, (std::vector<BlockId>{1, 3, 9}));
}

TEST(Stash, OccupancySampling)
{
    Stash s(10);
    s.insert(1, 0);
    s.sampleOccupancy();
    s.insert(2, 0);
    s.insert(3, 0);
    s.sampleOccupancy();
    EXPECT_EQ(s.occupancy().count(), 2u);
    EXPECT_DOUBLE_EQ(s.occupancy().mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.occupancy().max(), 3.0);
}

TEST(Stash, MutableDataThroughFind)
{
    Stash s(4);
    s.insert(7, 10);
    s.find(7)->data = 20;
    EXPECT_EQ(s.find(7)->data, 20u);
}

} // namespace
} // namespace proram
