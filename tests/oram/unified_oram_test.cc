/** @file Unit tests for the unified (recursive) ORAM front end. */

#include "oram/unified_oram.hh"

#include <gtest/gtest.h>

#include "oram/integrity.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace proram
{
namespace
{

using namespace proram::literals;

OramConfig
recCfg()
{
    OramConfig c;
    c.numDataBlocks = 1ULL << 12; // 2 pos-map levels
    c.plbEntries = 8;
    c.stashCapacity = 60;
    c.seed = 5;
    return c;
}

TEST(UnifiedOram, InitializeAssignsLeavesToEveryBlock)
{
    UnifiedOram u(recCfg());
    u.initialize();
    for (std::uint64_t i = 0; i < u.space().numTotalBlocks(); ++i) {
        const BlockId b{i};
        EXPECT_NE(u.posMap().leafOf(b), kInvalidLeaf);
        EXPECT_LT(u.posMap().leafOf(b).value(),
                  u.engine().tree().numLeaves());
    }
    EXPECT_TRUE(checkIntegrity(u).ok);
}

TEST(UnifiedOram, InitializeTwicePanics)
{
    UnifiedOram u(recCfg());
    u.initialize();
    EXPECT_THROW(u.initialize(), SimPanic);
}

TEST(UnifiedOram, StaticInitializationMergesAlignedGroups)
{
    UnifiedOram u(recCfg());
    u.initialize(4);
    for (std::uint64_t i = 0; i < u.space().numDataBlocks(); i += 4) {
        const BlockId base{i};
        const Leaf leaf = u.posMap().leafOf(base);
        for (BlockId m = base; m < base + 4; ++m) {
            EXPECT_EQ(u.posMap().leafOf(m), leaf);
            EXPECT_EQ(u.posMap().entry(m).sbSize(), 4u);
        }
    }
    EXPECT_TRUE(checkIntegrity(u).ok);
}

TEST(UnifiedOram, StaticInitializationCannotSpanPosMapBlocks)
{
    UnifiedOram u(recCfg());
    EXPECT_THROW(u.initialize(64), SimFatal); // fanout is 32
}

TEST(UnifiedOram, PosMapBlocksNeverMerged)
{
    UnifiedOram u(recCfg());
    u.initialize(2);
    for (std::uint64_t i = u.space().numDataBlocks();
         i < u.space().numTotalBlocks(); ++i) {
        EXPECT_EQ(u.posMap().entry(BlockId{i}).sbSize(), 1u);
    }
}

TEST(UnifiedOram, ColdWalkFetchesWholeChain)
{
    UnifiedOram u(recCfg());
    u.initialize();
    const PosMapWalk walk = u.posMapWalk(0_id);
    // 2 tree-resident pos-map levels, PLB cold: both fetched.
    EXPECT_EQ(walk.pathAccesses(), 2u);
    EXPECT_TRUE(u.posMapCached(0_id));
}

TEST(UnifiedOram, WarmWalkIsFree)
{
    UnifiedOram u(recCfg());
    u.initialize();
    u.posMapWalk(0_id);
    const PosMapWalk walk = u.posMapWalk(0_id);
    EXPECT_EQ(walk.pathAccesses(), 0u);
    // Neighbouring addresses share the pos-map block.
    EXPECT_EQ(u.posMapWalk(1_id).pathAccesses(), 0u);
    EXPECT_EQ(u.posMapWalk(31_id).pathAccesses(), 0u);
}

TEST(UnifiedOram, DistantAddressMissesOnlyLevel1)
{
    UnifiedOram u(recCfg());
    u.initialize();
    u.posMapWalk(0_id);
    // Block 32 uses a different level-1 block but (0 and 32) share
    // the level-2 block, which is now cached.
    EXPECT_EQ(u.posMapWalk(32_id).pathAccesses(), 1u);
}

TEST(UnifiedOram, WalkRemapsFetchedPosMapBlocks)
{
    UnifiedOram u(recCfg());
    u.initialize();
    const BlockId pm1 = u.space().posMapBlockOf(0_id);
    const Leaf before = u.posMap().leafOf(pm1);
    u.posMapWalk(0_id);
    // Remapped with overwhelming probability (leaf space is large);
    // allow equality but require integrity.
    (void)before;
    EXPECT_TRUE(checkIntegrity(u).ok);
}

TEST(UnifiedOram, ManyWalksPreserveIntegrity)
{
    UnifiedOram u(recCfg());
    u.initialize();
    Rng rng(7);
    for (int i = 0; i < 300; ++i) {
        u.posMapWalk(BlockId{rng.below(u.space().numDataBlocks())});
        while (u.engine().stash().overCapacity())
            u.engine().dummyAccess();
    }
    const auto report = checkIntegrity(u);
    EXPECT_TRUE(report.ok) << (report.violations.empty()
                                   ? ""
                                   : report.violations.front());
}

TEST(UnifiedOram, PlbThrashingStillCorrect)
{
    OramConfig cfg = recCfg();
    cfg.plbEntries = 1; // pathological PLB
    UnifiedOram u(cfg);
    u.initialize();
    Rng rng(8);
    std::uint64_t total_paths = 0;
    for (int i = 0; i < 100; ++i)
        total_paths +=
            u.posMapWalk(BlockId{rng.below(4096)}).pathAccesses();
    EXPECT_GT(total_paths, 100u); // nearly every walk misses
    EXPECT_TRUE(checkIntegrity(u).ok);
}

TEST(UnifiedOram, WalkOfPosMapBlockItself)
{
    UnifiedOram u(recCfg());
    u.initialize();
    // Walking a level-1 block needs only its level-2 parent.
    const BlockId pm1 = u.space().posMapBlockOf(0_id);
    const PosMapWalk walk = u.posMapWalk(pm1);
    EXPECT_EQ(walk.pathAccesses(), 1u);
}

} // namespace
} // namespace proram
