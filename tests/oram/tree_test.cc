/** @file Unit tests for the binary-tree bucket storage. */

#include "oram/tree.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace proram
{
namespace
{

TEST(Bucket, OccupancyAndFreeSlots)
{
    Bucket b(3);
    EXPECT_EQ(b.occupancy(), 0u);
    Slot *s = b.freeSlot();
    ASSERT_NE(s, nullptr);
    s->id = 7;
    EXPECT_EQ(b.occupancy(), 1u);
    b.freeSlot()->id = 8;
    b.freeSlot()->id = 9;
    EXPECT_EQ(b.occupancy(), 3u);
    EXPECT_EQ(b.freeSlot(), nullptr);
}

TEST(Tree, GeometryCounts)
{
    BinaryTree t(3, 4);
    EXPECT_EQ(t.levels(), 3u);
    EXPECT_EQ(t.numLeaves(), 8u);
    EXPECT_EQ(t.numBuckets(), 15u);
    EXPECT_EQ(t.z(), 4u);
}

TEST(Tree, RootIsOnEveryPath)
{
    BinaryTree t(4, 3);
    for (Leaf s = 0; s < t.numLeaves(); ++s)
        EXPECT_EQ(t.nodeOnPath(s, 0), 0u);
}

TEST(Tree, LeavesAreDistinctAndAtBottom)
{
    BinaryTree t(3, 3);
    // Leaf nodes occupy heap indices [7, 15).
    std::uint64_t prev = 0;
    for (Leaf s = 0; s < t.numLeaves(); ++s) {
        const std::uint64_t node = t.nodeOnPath(s, 3);
        EXPECT_GE(node, 7u);
        EXPECT_LT(node, 15u);
        if (s > 0) {
            EXPECT_NE(node, prev);
        }
        prev = node;
    }
}

TEST(Tree, PathIsConnectedParentChain)
{
    BinaryTree t(5, 3);
    for (Leaf s : {0u, 13u, 31u}) {
        std::uint64_t parent = t.nodeOnPath(s, 0);
        for (std::uint32_t l = 1; l <= t.levels(); ++l) {
            const std::uint64_t node = t.nodeOnPath(s, l);
            EXPECT_EQ((node - 1) / 2, parent)
                << "path " << s << " broken at level " << l;
            parent = node;
        }
    }
}

TEST(Tree, CommonLevelProperties)
{
    BinaryTree t(3, 3);
    // Same leaf: full depth.
    EXPECT_EQ(t.commonLevel(5, 5), 3u);
    // Leaves 0 (000) and 7 (111) diverge at the root.
    EXPECT_EQ(t.commonLevel(0, 7), 0u);
    // Leaves 6 (110) and 7 (111) share root + 2 levels.
    EXPECT_EQ(t.commonLevel(6, 7), 2u);
    // Symmetric.
    for (Leaf a = 0; a < 8; ++a) {
        for (Leaf b = 0; b < 8; ++b)
            EXPECT_EQ(t.commonLevel(a, b), t.commonLevel(b, a));
    }
}

TEST(Tree, CommonLevelMatchesSharedNodes)
{
    BinaryTree t(4, 3);
    for (Leaf a = 0; a < t.numLeaves(); a += 3) {
        for (Leaf b = 0; b < t.numLeaves(); b += 5) {
            const std::uint32_t cl = t.commonLevel(a, b);
            for (std::uint32_t l = 0; l <= cl; ++l)
                EXPECT_EQ(t.nodeOnPath(a, l), t.nodeOnPath(b, l));
            if (cl < t.levels()) {
                EXPECT_NE(t.nodeOnPath(a, cl + 1),
                          t.nodeOnPath(b, cl + 1));
            }
        }
    }
}

TEST(Tree, OutOfRangePanics)
{
    BinaryTree t(3, 3);
    EXPECT_THROW(t.nodeOnPath(8, 0), SimPanic);
    EXPECT_THROW(t.nodeOnPath(0, 4), SimPanic);
}

TEST(Tree, CountRealBlocks)
{
    BinaryTree t(2, 2);
    EXPECT_EQ(t.countRealBlocks(), 0u);
    t.bucket(0).freeSlot()->id = 1;
    t.bucket(4).freeSlot()->id = 2;
    EXPECT_EQ(t.countRealBlocks(), 2u);
}

} // namespace
} // namespace proram
