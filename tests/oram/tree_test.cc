/** @file Unit tests for the binary-tree slot-arena storage. */

#include "oram/tree.hh"

#include <gtest/gtest.h>

#include <vector>

#include "util/logging.hh"

namespace proram
{
namespace
{

using namespace proram::literals;

TEST(Bucket, OccupancyAndFreeSlots)
{
    BinaryTree t(1, 3);
    BucketRef b = t.bucket(0_node);
    EXPECT_EQ(b.occupancy(), 0u);
    EXPECT_EQ(b.freeSlots(), 3u);
    EXPECT_TRUE(b.tryPlace(7_id, 70));
    EXPECT_EQ(b.occupancy(), 1u);
    EXPECT_TRUE(b.tryPlace(8_id, 0));
    EXPECT_TRUE(b.tryPlace(9_id, 0));
    EXPECT_EQ(b.occupancy(), 3u);
    EXPECT_EQ(b.freeSlots(), 0u);
    EXPECT_FALSE(b.tryPlace(10_id, 0));
}

TEST(Bucket, PlacementFillsFirstDummySlot)
{
    BinaryTree t(1, 3);
    BucketRef b = t.bucket(0_node);
    b.tryPlace(1_id, 10);
    b.tryPlace(2_id, 20);
    b.tryPlace(3_id, 30);
    EXPECT_EQ(b.id(0), 1_id);
    b.clearSlot(1);
    EXPECT_TRUE(b.isDummy(1));
    EXPECT_EQ(b.occupancy(), 2u);
    // Reuse reclaims the hole, not a new slot.
    EXPECT_TRUE(b.tryPlace(4_id, 40));
    EXPECT_EQ(b.id(1), 4_id);
    EXPECT_EQ(b.data(1), 40u);
}

TEST(Bucket, ClearSlotIsIdempotent)
{
    BinaryTree t(1, 2);
    BucketRef b = t.bucket(0_node);
    b.tryPlace(5_id, 0);
    b.clearSlot(0);
    b.clearSlot(0); // clearing a dummy must not inflate the free count
    EXPECT_EQ(b.freeSlots(), 2u);
    EXPECT_EQ(b.occupancy(), 0u);
}

TEST(Bucket, OccupancyScanMatchesCountThenDetectsRawCorruption)
{
    BinaryTree t(1, 4);
    BucketRef b = t.bucket(1_node);
    b.tryPlace(1_id, 0);
    b.tryPlace(2_id, 0);
    EXPECT_EQ(b.occupancyScan(), b.occupancy());
    // Corrupt a slot behind the bookkeeping's back: the O(1) count is
    // now stale and only the checked scan sees the truth.
    b.rawId(0) = kInvalidBlock;
    EXPECT_EQ(b.occupancy(), 2u);
    EXPECT_EQ(b.occupancyScan(), 1u);
}

TEST(Tree, ArenaLayoutIsBucketMajor)
{
    BinaryTree t(2, 3);
    t.bucket(4_node).tryPlace(42_id, 9);
    // Bucket b slot i lives at lane offset (b mod chunk)*Z+i of its
    // chunk; node 4 fits inside the default first chunk, so the raw
    // lane view and the typed accessors must agree.
    const ArenaBackend::View v = t.arena().view(0);
    ASSERT_NE(v.ids, nullptr);
    EXPECT_EQ(v.ids[4 * 3 + 0], 42_id);
    EXPECT_EQ(v.data[4 * 3 + 0], 9u);
    EXPECT_EQ(t.slotId(4_node, 0), 42_id);
    EXPECT_EQ(t.slotData(4_node, 0), 9u);
}

TEST(Tree, GeometryCounts)
{
    BinaryTree t(3, 4);
    EXPECT_EQ(t.levels(), 3u);
    EXPECT_EQ(t.numLeaves(), 8u);
    EXPECT_EQ(t.numBuckets(), 15u);
    EXPECT_EQ(t.z(), 4u);
}

TEST(Tree, RootIsOnEveryPath)
{
    BinaryTree t(4, 3);
    for (std::uint32_t s = 0; s < t.numLeaves(); ++s)
        EXPECT_EQ(t.nodeOnPath(Leaf{s}, 0_lvl), 0_node);
}

TEST(Tree, LeavesAreDistinctAndAtBottom)
{
    BinaryTree t(3, 3);
    // Leaf nodes occupy heap indices [7, 15).
    TreeIdx prev{0};
    for (std::uint32_t s = 0; s < t.numLeaves(); ++s) {
        const TreeIdx node = t.nodeOnPath(Leaf{s}, 3_lvl);
        EXPECT_GE(node.value(), 7u);
        EXPECT_LT(node.value(), 15u);
        if (s > 0) {
            EXPECT_NE(node, prev);
        }
        prev = node;
    }
}

TEST(Tree, PathIsConnectedParentChain)
{
    BinaryTree t(5, 3);
    for (Leaf s : {0_leaf, 13_leaf, 31_leaf}) {
        TreeIdx parent = t.nodeOnPath(s, 0_lvl);
        for (std::uint32_t l = 1; l <= t.levels(); ++l) {
            const TreeIdx node = t.nodeOnPath(s, Level{l});
            EXPECT_EQ(TreeIdx{(node.value() - 1) / 2}, parent)
                << "path " << s << " broken at level " << l;
            parent = node;
        }
    }
}

TEST(Tree, CommonLevelProperties)
{
    BinaryTree t(3, 3);
    // Same leaf: full depth.
    EXPECT_EQ(t.commonLevel(5_leaf, 5_leaf), 3_lvl);
    // Leaves 0 (000) and 7 (111) diverge at the root.
    EXPECT_EQ(t.commonLevel(0_leaf, 7_leaf), 0_lvl);
    // Leaves 6 (110) and 7 (111) share root + 2 levels.
    EXPECT_EQ(t.commonLevel(6_leaf, 7_leaf), 2_lvl);
    // Symmetric.
    for (std::uint32_t a = 0; a < 8; ++a) {
        for (std::uint32_t b = 0; b < 8; ++b)
            EXPECT_EQ(t.commonLevel(Leaf{a}, Leaf{b}),
                      t.commonLevel(Leaf{b}, Leaf{a}));
    }
}

TEST(Tree, CommonLevelMatchesSharedNodes)
{
    BinaryTree t(4, 3);
    for (std::uint32_t a = 0; a < t.numLeaves(); a += 3) {
        for (std::uint32_t b = 0; b < t.numLeaves(); b += 5) {
            const Level cl = t.commonLevel(Leaf{a}, Leaf{b});
            for (Level l{0}; l <= cl; ++l)
                EXPECT_EQ(t.nodeOnPath(Leaf{a}, l),
                          t.nodeOnPath(Leaf{b}, l));
            if (cl.value() < t.levels()) {
                EXPECT_NE(t.nodeOnPath(Leaf{a}, cl + 1),
                          t.nodeOnPath(Leaf{b}, cl + 1));
            }
        }
    }
}

TEST(Tree, OutOfRangePanics)
{
    BinaryTree t(3, 3);
    EXPECT_THROW(t.nodeOnPath(8_leaf, 0_lvl), SimPanic);
    EXPECT_THROW(t.nodeOnPath(0_leaf, 4_lvl), SimPanic);
}

TEST(Tree, CountRealBlocks)
{
    BinaryTree t(2, 2);
    EXPECT_EQ(t.countRealBlocks(), 0u);
    t.tryPlace(0_node, 1_id, 0);
    t.tryPlace(4_node, 2_id, 0);
    EXPECT_EQ(t.countRealBlocks(), 2u);
}

ArenaOptions
sparseOpts(std::uint32_t chunk_buckets)
{
    ArenaOptions o;
    o.kind = ArenaKind::Sparse;
    o.chunkBuckets = chunk_buckets;
    return o;
}

TEST(SparseTree, ImplicitChunksReadAllDummyWithoutMaterializing)
{
    // 6 levels = 127 buckets over 4-bucket chunks = 32 chunks.
    BinaryTree t(6, 3, sparseOpts(4));
    EXPECT_EQ(t.arena().chunksMaterialized(), 0u);
    EXPECT_EQ(t.arena().bytesResident(), 0u);
    for (TreeIdx n{0}; n.value() < t.numBuckets(); ++n) {
        EXPECT_EQ(t.occupancy(n), 0u);
        EXPECT_EQ(t.freeSlots(n), 3u);
        for (std::uint32_t i = 0; i < t.z(); ++i) {
            EXPECT_EQ(t.slotId(n, i), kInvalidBlock);
            EXPECT_EQ(t.slotData(n, i), 0u);
        }
    }
    // Reads (and clearing already-dummy slots) never materialize.
    t.clearSlot(9_node, 1);
    EXPECT_EQ(t.bucket(40_node).occupancyScan(), 0u);
    EXPECT_EQ(t.countRealBlocks(), 0u);
    EXPECT_EQ(t.arena().chunksMaterialized(), 0u);
}

TEST(SparseTree, WritesMaterializeOnlyTouchedChunks)
{
    BinaryTree t(6, 3, sparseOpts(4));
    EXPECT_TRUE(t.tryPlace(0_node, 1_id, 11));   // chunk 0
    EXPECT_TRUE(t.tryPlace(100_node, 2_id, 22)); // chunk 25
    EXPECT_EQ(t.arena().chunksMaterialized(), 2u);
    EXPECT_EQ(t.arena().bytesResident(), 2 * t.arena().chunkBytes());
    EXPECT_EQ(t.slotId(0_node, 0), 1_id);
    EXPECT_EQ(t.slotData(100_node, 0), 22u);
    EXPECT_EQ(t.occupancy(100_node), 1u);
    EXPECT_EQ(t.countRealBlocks(), 2u);
    // Untouched chunks stay implicit.
    EXPECT_FALSE(t.arena().materialized(1));
    // Clearing the only real block keeps the chunk materialized but
    // returns its bucket to all-dummy.
    t.clearSlot(100_node, 0);
    EXPECT_EQ(t.occupancy(100_node), 0u);
    EXPECT_EQ(t.countRealBlocks(), 1u);
    EXPECT_EQ(t.arena().chunksMaterialized(), 2u);
}

TEST(SparseTree, OccupancyScanAfterRawCorruptionInFreshChunk)
{
    BinaryTree t(6, 4, sparseOpts(4));
    // rawId on an implicit chunk is a write: it must materialize the
    // chunk as all-dummy first, then hand out the reference.
    BucketRef b = t.bucket(77_node);
    b.rawId(2) = 9_id;
    EXPECT_EQ(t.arena().chunksMaterialized(), 1u);
    // The raw write bypassed the free count: the O(1) occupancy is
    // stale (still all-free) and only the checked scan sees the
    // corruption - in a freshly materialized chunk whose other slots
    // must all read as dummies.
    EXPECT_EQ(b.occupancy(), 0u);
    EXPECT_EQ(b.occupancyScan(), 1u);
    for (std::uint32_t i = 0; i < t.z(); ++i) {
        if (i != 2) {
            EXPECT_TRUE(b.isDummy(i));
        }
    }
    // A neighbouring bucket of the same fresh chunk is untouched.
    EXPECT_EQ(t.bucket(78_node).occupancyScan(), 0u);
    b.rawId(2) = kInvalidBlock;
    EXPECT_EQ(b.occupancyScan(), 0u);
}

TEST(SparseTree, BackendsAreFunctionallyIdentical)
{
    ArenaOptions dense;
    dense.kind = ArenaKind::Dense;
    dense.chunkBuckets = 8;
    std::vector<ArenaOptions> opts{dense, sparseOpts(8)};
#if defined(__linux__)
    ArenaOptions mm;
    mm.kind = ArenaKind::Mmap;
    mm.chunkBuckets = 8;
    opts.push_back(mm);
#endif
    // The same operation sequence must leave every backend with the
    // same visible slot state.
    std::vector<BinaryTree> trees;
    for (const ArenaOptions &o : opts)
        trees.emplace_back(5, 3, o);
    for (BinaryTree &t : trees) {
        for (std::uint64_t n = 0; n < t.numBuckets(); n += 7)
            t.tryPlace(TreeIdx{n}, BlockId{n}, n * 3);
        t.clearSlot(TreeIdx{7}, 0);
    }
    const BinaryTree &ref = trees.front();
    for (std::size_t k = 1; k < trees.size(); ++k) {
        const BinaryTree &t = trees[k];
        EXPECT_EQ(t.countRealBlocks(), ref.countRealBlocks());
        for (TreeIdx n{0}; n.value() < ref.numBuckets(); ++n) {
            EXPECT_EQ(t.occupancy(n), ref.occupancy(n));
            for (std::uint32_t i = 0; i < ref.z(); ++i) {
                EXPECT_EQ(t.slotId(n, i), ref.slotId(n, i));
                if (t.slotId(n, i) != kInvalidBlock) {
                    EXPECT_EQ(t.slotData(n, i), ref.slotData(n, i));
                }
            }
        }
    }
}

TEST(SparseTree, BadChunkSizeIsFatal)
{
    ArenaOptions o;
    o.kind = ArenaKind::Sparse;
    o.chunkBuckets = 6; // not a power of two
    EXPECT_THROW(BinaryTree(4, 3, o), SimFatal);
}

} // namespace
} // namespace proram
