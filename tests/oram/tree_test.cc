/** @file Unit tests for the binary-tree slot-arena storage. */

#include "oram/tree.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace proram
{
namespace
{

TEST(Bucket, OccupancyAndFreeSlots)
{
    BinaryTree t(1, 3);
    BucketRef b = t.bucket(0);
    EXPECT_EQ(b.occupancy(), 0u);
    EXPECT_EQ(b.freeSlots(), 3u);
    EXPECT_TRUE(b.tryPlace(7, 70));
    EXPECT_EQ(b.occupancy(), 1u);
    EXPECT_TRUE(b.tryPlace(8, 0));
    EXPECT_TRUE(b.tryPlace(9, 0));
    EXPECT_EQ(b.occupancy(), 3u);
    EXPECT_EQ(b.freeSlots(), 0u);
    EXPECT_FALSE(b.tryPlace(10, 0));
}

TEST(Bucket, PlacementFillsFirstDummySlot)
{
    BinaryTree t(1, 3);
    BucketRef b = t.bucket(0);
    b.tryPlace(1, 10);
    b.tryPlace(2, 20);
    b.tryPlace(3, 30);
    EXPECT_EQ(b.id(0), 1u);
    b.clearSlot(1);
    EXPECT_TRUE(b.isDummy(1));
    EXPECT_EQ(b.occupancy(), 2u);
    // Reuse reclaims the hole, not a new slot.
    EXPECT_TRUE(b.tryPlace(4, 40));
    EXPECT_EQ(b.id(1), 4u);
    EXPECT_EQ(b.data(1), 40u);
}

TEST(Bucket, ClearSlotIsIdempotent)
{
    BinaryTree t(1, 2);
    BucketRef b = t.bucket(0);
    b.tryPlace(5, 0);
    b.clearSlot(0);
    b.clearSlot(0); // clearing a dummy must not inflate the free count
    EXPECT_EQ(b.freeSlots(), 2u);
    EXPECT_EQ(b.occupancy(), 0u);
}

TEST(Bucket, OccupancyScanMatchesCountThenDetectsRawCorruption)
{
    BinaryTree t(1, 4);
    BucketRef b = t.bucket(1);
    b.tryPlace(1, 0);
    b.tryPlace(2, 0);
    EXPECT_EQ(b.occupancyScan(), b.occupancy());
    // Corrupt a slot behind the bookkeeping's back: the O(1) count is
    // now stale and only the checked scan sees the truth.
    b.rawId(0) = kInvalidBlock;
    EXPECT_EQ(b.occupancy(), 2u);
    EXPECT_EQ(b.occupancyScan(), 1u);
}

TEST(Tree, ArenaLayoutIsBucketMajor)
{
    BinaryTree t(2, 3);
    t.bucket(4).tryPlace(42, 9);
    // Bucket b slot i lives at arena offset b*Z+i.
    EXPECT_EQ(t.idArena()[4 * 3 + 0], 42u);
    EXPECT_EQ(t.dataArena()[4 * 3 + 0], 9u);
    EXPECT_EQ(t.slotId(4, 0), 42u);
    EXPECT_EQ(t.slotData(4, 0), 9u);
    EXPECT_EQ(t.slotBase(4), 12u);
}

TEST(Tree, GeometryCounts)
{
    BinaryTree t(3, 4);
    EXPECT_EQ(t.levels(), 3u);
    EXPECT_EQ(t.numLeaves(), 8u);
    EXPECT_EQ(t.numBuckets(), 15u);
    EXPECT_EQ(t.z(), 4u);
}

TEST(Tree, RootIsOnEveryPath)
{
    BinaryTree t(4, 3);
    for (Leaf s = 0; s < t.numLeaves(); ++s)
        EXPECT_EQ(t.nodeOnPath(s, 0), 0u);
}

TEST(Tree, LeavesAreDistinctAndAtBottom)
{
    BinaryTree t(3, 3);
    // Leaf nodes occupy heap indices [7, 15).
    std::uint64_t prev = 0;
    for (Leaf s = 0; s < t.numLeaves(); ++s) {
        const std::uint64_t node = t.nodeOnPath(s, 3);
        EXPECT_GE(node, 7u);
        EXPECT_LT(node, 15u);
        if (s > 0) {
            EXPECT_NE(node, prev);
        }
        prev = node;
    }
}

TEST(Tree, PathIsConnectedParentChain)
{
    BinaryTree t(5, 3);
    for (Leaf s : {0u, 13u, 31u}) {
        std::uint64_t parent = t.nodeOnPath(s, 0);
        for (std::uint32_t l = 1; l <= t.levels(); ++l) {
            const std::uint64_t node = t.nodeOnPath(s, l);
            EXPECT_EQ((node - 1) / 2, parent)
                << "path " << s << " broken at level " << l;
            parent = node;
        }
    }
}

TEST(Tree, CommonLevelProperties)
{
    BinaryTree t(3, 3);
    // Same leaf: full depth.
    EXPECT_EQ(t.commonLevel(5, 5), 3u);
    // Leaves 0 (000) and 7 (111) diverge at the root.
    EXPECT_EQ(t.commonLevel(0, 7), 0u);
    // Leaves 6 (110) and 7 (111) share root + 2 levels.
    EXPECT_EQ(t.commonLevel(6, 7), 2u);
    // Symmetric.
    for (Leaf a = 0; a < 8; ++a) {
        for (Leaf b = 0; b < 8; ++b)
            EXPECT_EQ(t.commonLevel(a, b), t.commonLevel(b, a));
    }
}

TEST(Tree, CommonLevelMatchesSharedNodes)
{
    BinaryTree t(4, 3);
    for (Leaf a = 0; a < t.numLeaves(); a += 3) {
        for (Leaf b = 0; b < t.numLeaves(); b += 5) {
            const std::uint32_t cl = t.commonLevel(a, b);
            for (std::uint32_t l = 0; l <= cl; ++l)
                EXPECT_EQ(t.nodeOnPath(a, l), t.nodeOnPath(b, l));
            if (cl < t.levels()) {
                EXPECT_NE(t.nodeOnPath(a, cl + 1),
                          t.nodeOnPath(b, cl + 1));
            }
        }
    }
}

TEST(Tree, OutOfRangePanics)
{
    BinaryTree t(3, 3);
    EXPECT_THROW(t.nodeOnPath(8, 0), SimPanic);
    EXPECT_THROW(t.nodeOnPath(0, 4), SimPanic);
}

TEST(Tree, CountRealBlocks)
{
    BinaryTree t(2, 2);
    EXPECT_EQ(t.countRealBlocks(), 0u);
    t.tryPlace(0, 1, 0);
    t.tryPlace(4, 2, 0);
    EXPECT_EQ(t.countRealBlocks(), 2u);
}

} // namespace
} // namespace proram
