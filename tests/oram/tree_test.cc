/** @file Unit tests for the binary-tree slot-arena storage. */

#include "oram/tree.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace proram
{
namespace
{

using namespace proram::literals;

TEST(Bucket, OccupancyAndFreeSlots)
{
    BinaryTree t(1, 3);
    BucketRef b = t.bucket(0_node);
    EXPECT_EQ(b.occupancy(), 0u);
    EXPECT_EQ(b.freeSlots(), 3u);
    EXPECT_TRUE(b.tryPlace(7_id, 70));
    EXPECT_EQ(b.occupancy(), 1u);
    EXPECT_TRUE(b.tryPlace(8_id, 0));
    EXPECT_TRUE(b.tryPlace(9_id, 0));
    EXPECT_EQ(b.occupancy(), 3u);
    EXPECT_EQ(b.freeSlots(), 0u);
    EXPECT_FALSE(b.tryPlace(10_id, 0));
}

TEST(Bucket, PlacementFillsFirstDummySlot)
{
    BinaryTree t(1, 3);
    BucketRef b = t.bucket(0_node);
    b.tryPlace(1_id, 10);
    b.tryPlace(2_id, 20);
    b.tryPlace(3_id, 30);
    EXPECT_EQ(b.id(0), 1_id);
    b.clearSlot(1);
    EXPECT_TRUE(b.isDummy(1));
    EXPECT_EQ(b.occupancy(), 2u);
    // Reuse reclaims the hole, not a new slot.
    EXPECT_TRUE(b.tryPlace(4_id, 40));
    EXPECT_EQ(b.id(1), 4_id);
    EXPECT_EQ(b.data(1), 40u);
}

TEST(Bucket, ClearSlotIsIdempotent)
{
    BinaryTree t(1, 2);
    BucketRef b = t.bucket(0_node);
    b.tryPlace(5_id, 0);
    b.clearSlot(0);
    b.clearSlot(0); // clearing a dummy must not inflate the free count
    EXPECT_EQ(b.freeSlots(), 2u);
    EXPECT_EQ(b.occupancy(), 0u);
}

TEST(Bucket, OccupancyScanMatchesCountThenDetectsRawCorruption)
{
    BinaryTree t(1, 4);
    BucketRef b = t.bucket(1_node);
    b.tryPlace(1_id, 0);
    b.tryPlace(2_id, 0);
    EXPECT_EQ(b.occupancyScan(), b.occupancy());
    // Corrupt a slot behind the bookkeeping's back: the O(1) count is
    // now stale and only the checked scan sees the truth.
    b.rawId(0) = kInvalidBlock;
    EXPECT_EQ(b.occupancy(), 2u);
    EXPECT_EQ(b.occupancyScan(), 1u);
}

TEST(Tree, ArenaLayoutIsBucketMajor)
{
    BinaryTree t(2, 3);
    t.bucket(4_node).tryPlace(42_id, 9);
    // Bucket b slot i lives at arena offset b*Z+i.
    EXPECT_EQ(t.idArena()[4 * 3 + 0], 42_id);
    EXPECT_EQ(t.dataArena()[4 * 3 + 0], 9u);
    EXPECT_EQ(t.slotId(4_node, 0), 42_id);
    EXPECT_EQ(t.slotData(4_node, 0), 9u);
    EXPECT_EQ(t.slotBase(4_node), 12u);
}

TEST(Tree, GeometryCounts)
{
    BinaryTree t(3, 4);
    EXPECT_EQ(t.levels(), 3u);
    EXPECT_EQ(t.numLeaves(), 8u);
    EXPECT_EQ(t.numBuckets(), 15u);
    EXPECT_EQ(t.z(), 4u);
}

TEST(Tree, RootIsOnEveryPath)
{
    BinaryTree t(4, 3);
    for (std::uint32_t s = 0; s < t.numLeaves(); ++s)
        EXPECT_EQ(t.nodeOnPath(Leaf{s}, 0_lvl), 0_node);
}

TEST(Tree, LeavesAreDistinctAndAtBottom)
{
    BinaryTree t(3, 3);
    // Leaf nodes occupy heap indices [7, 15).
    TreeIdx prev{0};
    for (std::uint32_t s = 0; s < t.numLeaves(); ++s) {
        const TreeIdx node = t.nodeOnPath(Leaf{s}, 3_lvl);
        EXPECT_GE(node.value(), 7u);
        EXPECT_LT(node.value(), 15u);
        if (s > 0) {
            EXPECT_NE(node, prev);
        }
        prev = node;
    }
}

TEST(Tree, PathIsConnectedParentChain)
{
    BinaryTree t(5, 3);
    for (Leaf s : {0_leaf, 13_leaf, 31_leaf}) {
        TreeIdx parent = t.nodeOnPath(s, 0_lvl);
        for (std::uint32_t l = 1; l <= t.levels(); ++l) {
            const TreeIdx node = t.nodeOnPath(s, Level{l});
            EXPECT_EQ(TreeIdx{(node.value() - 1) / 2}, parent)
                << "path " << s << " broken at level " << l;
            parent = node;
        }
    }
}

TEST(Tree, CommonLevelProperties)
{
    BinaryTree t(3, 3);
    // Same leaf: full depth.
    EXPECT_EQ(t.commonLevel(5_leaf, 5_leaf), 3_lvl);
    // Leaves 0 (000) and 7 (111) diverge at the root.
    EXPECT_EQ(t.commonLevel(0_leaf, 7_leaf), 0_lvl);
    // Leaves 6 (110) and 7 (111) share root + 2 levels.
    EXPECT_EQ(t.commonLevel(6_leaf, 7_leaf), 2_lvl);
    // Symmetric.
    for (std::uint32_t a = 0; a < 8; ++a) {
        for (std::uint32_t b = 0; b < 8; ++b)
            EXPECT_EQ(t.commonLevel(Leaf{a}, Leaf{b}),
                      t.commonLevel(Leaf{b}, Leaf{a}));
    }
}

TEST(Tree, CommonLevelMatchesSharedNodes)
{
    BinaryTree t(4, 3);
    for (std::uint32_t a = 0; a < t.numLeaves(); a += 3) {
        for (std::uint32_t b = 0; b < t.numLeaves(); b += 5) {
            const Level cl = t.commonLevel(Leaf{a}, Leaf{b});
            for (Level l{0}; l <= cl; ++l)
                EXPECT_EQ(t.nodeOnPath(Leaf{a}, l),
                          t.nodeOnPath(Leaf{b}, l));
            if (cl.value() < t.levels()) {
                EXPECT_NE(t.nodeOnPath(Leaf{a}, cl + 1),
                          t.nodeOnPath(Leaf{b}, cl + 1));
            }
        }
    }
}

TEST(Tree, OutOfRangePanics)
{
    BinaryTree t(3, 3);
    EXPECT_THROW(t.nodeOnPath(8_leaf, 0_lvl), SimPanic);
    EXPECT_THROW(t.nodeOnPath(0_leaf, 4_lvl), SimPanic);
}

TEST(Tree, CountRealBlocks)
{
    BinaryTree t(2, 2);
    EXPECT_EQ(t.countRealBlocks(), 0u);
    t.tryPlace(0_node, 1_id, 0);
    t.tryPlace(4_node, 2_id, 0);
    EXPECT_EQ(t.countRealBlocks(), 2u);
}

} // namespace
} // namespace proram
