/** @file Unit + property tests for the Path ORAM engine. */

#include "oram/path_oram.hh"

#include <gtest/gtest.h>

#include "util/random.hh"

namespace proram
{
namespace
{

using namespace proram::literals;

OramConfig
tinyCfg(std::uint32_t z = 3)
{
    OramConfig c;
    c.numDataBlocks = 256;
    c.z = z;
    c.stashCapacity = 50;
    c.seed = 99;
    return c;
}

struct Fixture
{
    explicit Fixture(const OramConfig &cfg = tinyCfg())
        : config(cfg), posMap(cfg.numDataBlocks,
                              Leaf{static_cast<std::uint32_t>(1ULL << cfg.levels())}),
          oram(cfg, posMap)
    {
    }

    /** Assign random leaves and place all blocks. */
    void init()
    {
        for (std::uint64_t b = 0; b < config.numDataBlocks; ++b)
            posMap.setLeaf(BlockId{b}, oram.randomLeaf());
        for (std::uint64_t b = 0; b < config.numDataBlocks; ++b)
            oram.placeInitial(BlockId{b}, b * 3);
    }

    /** Count copies of a block across stash + tree. */
    int copies(BlockId id)
    {
        int n = oram.stash().contains(id) ? 1 : 0;
        const BinaryTree &t = oram.tree();
        for (std::uint64_t node = 0; node < t.numBuckets(); ++node) {
            for (std::uint32_t i = 0; i < t.z(); ++i) {
                if (t.slotId(TreeIdx{node}, i) == id)
                    ++n;
            }
        }
        return n;
    }

    OramConfig config;
    PositionMap posMap;
    PathOram oram;
};

TEST(PathOram, InitialPlacementStoresEveryBlockOnce)
{
    Fixture f;
    f.init();
    EXPECT_EQ(f.oram.tree().countRealBlocks() + f.oram.stash().size(),
              f.config.numDataBlocks);
    EXPECT_EQ(f.copies(0_id), 1);
    EXPECT_EQ(f.copies(255_id), 1);
}

TEST(PathOram, ReadPathPullsMappedBlockIntoStash)
{
    Fixture f;
    f.init();
    const BlockId b{42};
    const Leaf leaf = f.posMap.leafOf(b);
    f.oram.readPath(leaf);
    EXPECT_TRUE(f.oram.stash().contains(b));
}

TEST(PathOram, ReadPathPreservesPayload)
{
    Fixture f;
    f.init();
    const BlockId b{17};
    f.oram.readPath(f.posMap.leafOf(b));
    ASSERT_TRUE(f.oram.stash().contains(b));
    ASSERT_NE(f.oram.stash().findData(b), nullptr);
    EXPECT_EQ(*f.oram.stash().findData(b), b.value() * 3);
}

TEST(PathOram, ReadPathCachesCurrentLeafInStashEntry)
{
    Fixture f;
    f.init();
    const BlockId b{23};
    const Leaf leaf = f.posMap.leafOf(b);
    f.oram.readPath(leaf);
    ASSERT_TRUE(f.oram.stash().contains(b));
    EXPECT_EQ(f.oram.stash().leafOf(b), leaf);
}

TEST(PathOram, RemapWhileResidentRefreshesCachedLeaf)
{
    // The leaf-cache coherence invariant: a remap made through the
    // position map between readPath and writePath must be visible in
    // the stash entry the eviction scan reads.
    Fixture f;
    f.init();
    const BlockId b{42};
    const Leaf leaf = f.posMap.leafOf(b);
    f.oram.readPath(leaf);
    const Leaf remapped{static_cast<std::uint32_t>(
        (leaf.value() + f.oram.tree().numLeaves() / 2) %
        f.oram.tree().numLeaves())};
    f.posMap.setLeaf(b, remapped);
    ASSERT_TRUE(f.oram.stash().contains(b));
    EXPECT_EQ(f.oram.stash().leafOf(b), remapped);
}

TEST(PathOram, RemapMidAccessStopsEvictionBelowDivergence)
{
    // Remap a resident block to the opposite half of the tree (paths
    // share only the root) and write the old path back: a stale
    // cached leaf would bury the block deep on the OLD path; with
    // coherence it may land in the root bucket at most.
    Fixture f;
    f.init();
    const BlockId b{7};
    const Leaf leaf = f.posMap.leafOf(b);
    f.oram.readPath(leaf);
    ASSERT_TRUE(f.oram.stash().contains(b));
    const Leaf opposite{static_cast<std::uint32_t>(
        leaf.value() ^ (f.oram.tree().numLeaves() / 2))}; // flip top bit
    f.posMap.setLeaf(b, opposite);
    f.oram.writePath(leaf);
    const BinaryTree &t = f.oram.tree();
    if (!f.oram.stash().contains(b)) {
        bool in_root = false;
        for (std::uint32_t i = 0; i < t.z(); ++i)
            in_root = in_root || t.slotId(TreeIdx{0}, i) == b;
        EXPECT_TRUE(in_root) << "remapped block evicted below the root";
    }
    EXPECT_EQ(f.copies(b), 1);
}

TEST(PathOram, WritePathEvictsBlocksBackToTree)
{
    Fixture f;
    f.init();
    const Leaf leaf{static_cast<std::uint32_t>(
        5 % f.oram.tree().numLeaves())};
    f.oram.readPath(leaf);
    const auto stash_after_read = f.oram.stash().size();
    f.oram.writePath(leaf);
    // Everything read from the path goes back (no remaps happened).
    EXPECT_LE(f.oram.stash().size(), stash_after_read);
}

TEST(PathOram, AccessWithRemapKeepsSingleCopy)
{
    Fixture f;
    f.init();
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const BlockId b{rng.below(f.config.numDataBlocks)};
        const Leaf leaf = f.posMap.leafOf(b);
        f.oram.readPath(leaf);
        ASSERT_TRUE(f.oram.stash().contains(b));
        f.posMap.setLeaf(b, f.oram.randomLeaf());
        f.oram.writePath(leaf);
    }
    for (BlockId b : {0_id, 77_id, 128_id, 255_id})
        EXPECT_EQ(f.copies(b), 1) << "block " << b;
}

TEST(PathOram, BlocksLandOnlyOnTheirMappedPath)
{
    Fixture f;
    f.init();
    Rng rng(2);
    for (int i = 0; i < 300; ++i) {
        const BlockId b{rng.below(f.config.numDataBlocks)};
        const Leaf leaf = f.posMap.leafOf(b);
        f.oram.readPath(leaf);
        f.posMap.setLeaf(b, f.oram.randomLeaf());
        f.oram.writePath(leaf);
    }
    // Exhaustive invariant sweep.
    const BinaryTree &t = f.oram.tree();
    for (std::uint64_t node = 0; node < t.numBuckets(); ++node) {
        std::uint32_t level = 0;
        for (std::uint64_t n = node; n > 0; n = (n - 1) / 2)
            ++level;
        for (std::uint32_t i = 0; i < t.z(); ++i) {
            const BlockId id = t.slotId(TreeIdx{node}, i);
            if (id == kInvalidBlock)
                continue;
            EXPECT_EQ(t.nodeOnPath(f.posMap.leafOf(id), Level{level}),
                      TreeIdx{node})
                << "block " << id << " off its path";
        }
    }
}

TEST(PathOram, DummyAccessNeverGrowsStash)
{
    Fixture f;
    f.init();
    // Stress the stash first with remapping accesses.
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const BlockId b{rng.below(f.config.numDataBlocks)};
        const Leaf leaf = f.posMap.leafOf(b);
        f.oram.readPath(leaf);
        f.posMap.setLeaf(b, f.oram.randomLeaf());
        f.oram.writePath(leaf);
    }
    for (int i = 0; i < 50; ++i) {
        const auto before = f.oram.stash().size();
        f.oram.dummyAccess();
        EXPECT_LE(f.oram.stash().size(), before);
    }
}

TEST(PathOram, WritePathPlacesDeepestFirst)
{
    // A block mapped exactly to the accessed path must end up below
    // (deeper than or equal to) blocks that only share the root.
    OramConfig cfg = tinyCfg();
    cfg.numDataBlocks = 8; // tiny tree, levels derived
    Fixture f(cfg);
    const Leaf target{0};
    for (std::uint64_t b = 0; b < 8; ++b)
        f.posMap.setLeaf(BlockId{b}, target); // all on path 0
    for (std::uint64_t b = 0; b < 8; ++b)
        f.oram.stash().insert(BlockId{b}, 0, target);
    f.oram.writePath(target);
    // With Z=3 and a multi-level path, the leaf bucket must be full.
    const BinaryTree &t = f.oram.tree();
    EXPECT_EQ(t.bucket(t.nodeOnPath(target, t.leafLevel())).occupancy(),
              t.z());
}

TEST(PathOram, RandomLeafCoversRange)
{
    Fixture f;
    const std::uint64_t leaves = f.oram.tree().numLeaves();
    std::vector<bool> seen(leaves, false);
    for (int i = 0; i < 20000; ++i)
        seen[f.oram.randomLeaf().value()] = true;
    std::size_t covered = 0;
    for (bool s : seen)
        covered += s ? 1 : 0;
    EXPECT_GT(covered, static_cast<std::size_t>(leaves * 0.9));
}

TEST(PathOram, PathReadsCounted)
{
    Fixture f;
    f.init();
    const auto before = f.oram.pathReads();
    f.oram.readPath(0_leaf);
    f.oram.writePath(0_leaf);
    f.oram.dummyAccess();
    EXPECT_EQ(f.oram.pathReads(), before + 2);
}

class PathOramZParam : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PathOramZParam, InvariantHoldsAcrossZ)
{
    OramConfig cfg = tinyCfg(GetParam());
    Fixture f(cfg);
    f.init();
    Rng rng(4);
    for (int i = 0; i < 150; ++i) {
        const BlockId b{rng.below(cfg.numDataBlocks)};
        const Leaf leaf = f.posMap.leafOf(b);
        f.oram.readPath(leaf);
        ASSERT_TRUE(f.oram.stash().contains(b));
        f.posMap.setLeaf(b, f.oram.randomLeaf());
        f.oram.writePath(leaf);
        while (f.oram.stash().overCapacity())
            f.oram.dummyAccess();
    }
    EXPECT_EQ(f.oram.tree().countRealBlocks() + f.oram.stash().size(),
              cfg.numDataBlocks);
}

INSTANTIATE_TEST_SUITE_P(Z, PathOramZParam,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u));

} // namespace
} // namespace proram
