/** @file Negative tests: the integrity checker must detect every
 *  class of corruption it claims to check. */

#include "oram/integrity.hh"

#include <gtest/gtest.h>

namespace proram
{
namespace
{

OramConfig
cfg()
{
    OramConfig c;
    c.numDataBlocks = 1ULL << 10;
    c.seed = 77;
    return c;
}

/** Find the tree slot currently holding @p id, or nullptr. */
Slot *
findSlot(UnifiedOram &u, BlockId id)
{
    BinaryTree &t = u.engine().tree();
    for (std::uint64_t node = 0; node < t.numBuckets(); ++node) {
        for (std::uint32_t i = 0; i < t.z(); ++i) {
            Slot &s = t.bucket(node).slot(i);
            if (s.id == id)
                return &s;
        }
    }
    return nullptr;
}

TEST(Integrity, HealthyOramPasses)
{
    UnifiedOram u(cfg());
    u.initialize();
    const auto rep = checkIntegrity(u);
    EXPECT_TRUE(rep.ok);
    EXPECT_TRUE(rep.violations.empty());
}

TEST(Integrity, DetectsLostBlock)
{
    UnifiedOram u(cfg());
    u.initialize();
    Slot *s = findSlot(u, 5);
    ASSERT_NE(s, nullptr);
    s->id = kInvalidBlock; // drop the block
    const auto rep = checkIntegrity(u);
    EXPECT_FALSE(rep.ok);
    bool found = false;
    for (const auto &v : rep.violations)
        found = found || v.find("lost") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(Integrity, DetectsDuplicateBlock)
{
    UnifiedOram u(cfg());
    u.initialize();
    // Stash copy + tree copy at once.
    ASSERT_NE(findSlot(u, 9), nullptr);
    u.engine().stash().insert(9, 0);
    const auto rep = checkIntegrity(u);
    EXPECT_FALSE(rep.ok);
    bool found = false;
    for (const auto &v : rep.violations)
        found = found || v.find("duplicated") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(Integrity, DetectsOffPathBlock)
{
    UnifiedOram u(cfg());
    u.initialize();
    // Remap a tree-resident block without moving it: unless the new
    // random leaf happens to share the whole path, it is off-path.
    const BlockId victim = 3;
    ASSERT_NE(findSlot(u, victim), nullptr);
    const Leaf old_leaf = u.posMap().leafOf(victim);
    u.posMap().setLeaf(victim,
                       (old_leaf + u.engine().tree().numLeaves() / 2) %
                           u.engine().tree().numLeaves());
    const auto rep = checkIntegrity(u);
    EXPECT_FALSE(rep.ok);
}

TEST(Integrity, DetectsSuperBlockLeafMismatch)
{
    UnifiedOram u(cfg());
    u.initialize(2); // static pairs
    // Tear one pair's member onto a different leaf, but keep it in
    // the stash so the path invariant itself still holds.
    Slot *s = findSlot(u, 0);
    if (s) {
        u.engine().stash().insert(0, s->data);
        s->id = kInvalidBlock;
    }
    u.posMap().setLeaf(0, (u.posMap().leafOf(1) + 1) %
                              u.engine().tree().numLeaves());
    const auto rep = checkIntegrity(u);
    EXPECT_FALSE(rep.ok);
    bool found = false;
    for (const auto &v : rep.violations)
        found = found || v.find("different leaves") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(Integrity, DetectsSuperBlockGeometryMismatch)
{
    UnifiedOram u(cfg());
    u.initialize(2);
    u.posMap().entry(4).sbSizeLog = 0; // half of pair (4,5) shrunk
    const auto rep = checkIntegrity(u);
    EXPECT_FALSE(rep.ok);
}

TEST(Integrity, DetectsPosMapBlockInSuperBlock)
{
    UnifiedOram u(cfg());
    u.initialize();
    const BlockId pm = u.space().numDataBlocks() + 1;
    u.posMap().entry(pm).sbSizeLog = 1;
    const auto rep = checkIntegrity(u);
    EXPECT_FALSE(rep.ok);
}

TEST(Integrity, DetectsOversizedStridedGroup)
{
    UnifiedOram u(cfg());
    u.initialize();
    // size 4 (log 2) with stride 16 (log 4): span 64 > fanout 32.
    for (std::uint32_t i = 0; i < 4; ++i) {
        PosEntry &e = u.posMap().entry(i * 16);
        e.sbSizeLog = 2;
        e.sbStrideLog = 4;
    }
    const auto rep = checkIntegrity(u);
    EXPECT_FALSE(rep.ok);
}

} // namespace
} // namespace proram
