/** @file Negative tests: the integrity checker must detect every
 *  class of corruption it claims to check. */

#include "oram/integrity.hh"

#include <gtest/gtest.h>

namespace proram
{
namespace
{

using namespace proram::literals;

OramConfig
cfg()
{
    OramConfig c;
    c.numDataBlocks = 1ULL << 10;
    c.seed = 77;
    return c;
}

/** Locate the tree slot currently holding @p id. */
struct SlotLoc
{
    bool found = false;
    std::uint64_t node = 0;
    std::uint32_t i = 0;
};

SlotLoc
findSlot(UnifiedOram &u, BlockId id)
{
    const BinaryTree &t = u.engine().tree();
    for (std::uint64_t node = 0; node < t.numBuckets(); ++node) {
        for (std::uint32_t i = 0; i < t.z(); ++i) {
            if (t.slotId(TreeIdx{node}, i) == id)
                return {true, node, i};
        }
    }
    return {};
}

TEST(Integrity, HealthyOramPasses)
{
    UnifiedOram u(cfg());
    u.initialize();
    const auto rep = checkIntegrity(u);
    EXPECT_TRUE(rep.ok);
    EXPECT_TRUE(rep.violations.empty());
}

TEST(Integrity, DetectsLostBlock)
{
    UnifiedOram u(cfg());
    u.initialize();
    const SlotLoc loc = findSlot(u, 5_id);
    ASSERT_TRUE(loc.found);
    // Drop the block behind the bookkeeping's back (raw corruption).
    u.engine().tree().bucket(TreeIdx{loc.node}).rawId(loc.i) = kInvalidBlock;
    const auto rep = checkIntegrity(u);
    EXPECT_FALSE(rep.ok);
    bool found = false;
    for (const auto &v : rep.violations)
        found = found || v.find("lost") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(Integrity, DetectsDuplicateBlock)
{
    UnifiedOram u(cfg());
    u.initialize();
    // Stash copy + tree copy at once.
    ASSERT_TRUE(findSlot(u, 9_id).found);
    u.engine().stash().insert(9_id, 0, u.posMap().leafOf(9_id));
    const auto rep = checkIntegrity(u);
    EXPECT_FALSE(rep.ok);
    bool found = false;
    for (const auto &v : rep.violations)
        found = found || v.find("duplicated") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(Integrity, DetectsOffPathBlock)
{
    UnifiedOram u(cfg());
    u.initialize();
    // Remap a tree-resident block without moving it: unless the new
    // random leaf happens to share the whole path, it is off-path.
    const BlockId victim{3};
    ASSERT_TRUE(findSlot(u, victim).found);
    const Leaf old_leaf = u.posMap().leafOf(victim);
    u.posMap().setLeaf(
        victim, Leaf{static_cast<std::uint32_t>(
                    (old_leaf.value() +
                     u.engine().tree().numLeaves() / 2) %
                    u.engine().tree().numLeaves())});
    const auto rep = checkIntegrity(u);
    EXPECT_FALSE(rep.ok);
}

TEST(Integrity, DetectsSuperBlockLeafMismatch)
{
    UnifiedOram u(cfg());
    u.initialize(2); // static pairs
    // Tear one pair's member onto a different leaf, but keep it in
    // the stash so the path invariant itself still holds.
    const SlotLoc loc = findSlot(u, 0_id);
    if (loc.found) {
        BucketRef b = u.engine().tree().bucket(TreeIdx{loc.node});
        u.engine().stash().insert(0_id, b.data(loc.i),
                                  u.posMap().leafOf(0_id));
        b.clearSlot(loc.i);
    }
    u.posMap().setLeaf(
        0_id, Leaf{static_cast<std::uint32_t>(
                  (u.posMap().leafOf(1_id).value() + 1) %
                  u.engine().tree().numLeaves())});
    const auto rep = checkIntegrity(u);
    EXPECT_FALSE(rep.ok);
    bool found = false;
    for (const auto &v : rep.violations)
        found = found || v.find("different leaves") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(Integrity, DetectsSuperBlockGeometryMismatch)
{
    UnifiedOram u(cfg());
    u.initialize(2);
    u.posMap().entry(4_id).sbSizeLog = 0; // half of pair (4,5) shrunk
    const auto rep = checkIntegrity(u);
    EXPECT_FALSE(rep.ok);
}

TEST(Integrity, DetectsPosMapBlockInSuperBlock)
{
    UnifiedOram u(cfg());
    u.initialize();
    const BlockId pm{u.space().numDataBlocks() + 1};
    u.posMap().entry(pm).sbSizeLog = 1;
    const auto rep = checkIntegrity(u);
    EXPECT_FALSE(rep.ok);
}

TEST(Integrity, DetectsOversizedStridedGroup)
{
    UnifiedOram u(cfg());
    u.initialize();
    // size 4 (log 2) with stride 16 (log 4): span 64 > fanout 32.
    for (std::uint32_t i = 0; i < 4; ++i) {
        PosEntry &e = u.posMap().entry(BlockId{i * 16u});
        e.sbSizeLog = 2;
        e.sbStrideLog = 4;
    }
    const auto rep = checkIntegrity(u);
    EXPECT_FALSE(rep.ok);
}

} // namespace
} // namespace proram
