/**
 * @file
 * Statistical security-property tests (paper Secs. 2.2, 4.6): the
 * observable access sequence is the sequence of path leaves; it must
 * be uniform and unlinkable regardless of the logical pattern, with
 * and without super blocks.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/oram_controller.hh"
#include "mem/cache_hierarchy.hh"
#include "sim/system_config.hh"
#include "util/random.hh"

namespace proram
{
namespace
{

using namespace proram::literals;

OramConfig
secCfg()
{
    OramConfig c;
    c.numDataBlocks = 1ULL << 12;
    c.stashCapacity = 100;
    c.seed = 31;
    return c;
}

HierarchyConfig
smallHier()
{
    HierarchyConfig h;
    h.l1 = CacheConfig{4 * 128, 2, 128};
    h.l2 = CacheConfig{64 * 128, 4, 128};
    return h;
}

/**
 * Harness recording the leaf sequence an adversary would observe.
 * We reconstruct it by reading the position map *before* each access
 * (the leaf about to be touched) - equivalent to bus snooping.
 */
struct Observer
{
    Observer(MemScheme scheme)
        : hier(smallHier()),
          ctl(secCfg(), ControllerConfig{}, hier)
    {
        if (scheme == MemScheme::OramStatic)
            ctl.configureStatic(2);
        else if (scheme == MemScheme::OramDynamic)
            ctl.configureDynamic(DynamicPolicyConfig{});
        else
            ctl.configureBaseline();
    }

    Leaf observeAccess(BlockId b)
    {
        const Leaf leaf = ctl.oram().posMap().leafOf(b);
        now = ctl.demandAccess(now, b, OpType::Read);
        ctl.onDemandTouch(now, b);
        for (const auto &v :
             hier.fillFromMemory(b, false)) {
            ctl.writebackAccess(now, v.block);
        }
        return leaf;
    }

    CacheHierarchy hier;
    OramController ctl;
    Cycles now{0};
};

double
chiSquareUniform(const std::vector<Leaf> &leaves, std::uint32_t buckets,
                 std::uint64_t num_leaves)
{
    std::vector<double> count(buckets, 0.0);
    for (Leaf l : leaves)
        count[static_cast<std::uint64_t>(l.value()) * buckets /
              num_leaves] += 1;
    const double expect =
        static_cast<double>(leaves.size()) / buckets;
    double chi2 = 0.0;
    for (double c : count)
        chi2 += (c - expect) * (c - expect) / expect;
    return chi2;
}

class LeafUniformity : public ::testing::TestWithParam<MemScheme>
{
};

TEST_P(LeafUniformity, RepeatedSameBlockLooksUniform)
{
    Observer obs(GetParam());
    const std::uint64_t leaves = obs.ctl.oram().engine().tree().numLeaves();
    std::vector<Leaf> observed;
    // Pathological logical pattern: hammer one block. LLC is tiny,
    // but ensure misses by touching conflicting blocks in between.
    for (int i = 0; i < 1500; ++i) {
        observed.push_back(obs.observeAccess(7_id));
        // Evict 7 from the small LLC (same-set conflicts).
        for (std::uint64_t b = 7 + 64; b < 7 + 64 * 6; b += 64)
            obs.observeAccess(BlockId{b});
    }
    // 16 buckets, dof 15: 99.9% critical value 37.7.
    EXPECT_LT(chiSquareUniform(observed, 16, leaves), 37.7);
}

TEST_P(LeafUniformity, SequentialScanLooksUniform)
{
    Observer obs(GetParam());
    const std::uint64_t leaves = obs.ctl.oram().engine().tree().numLeaves();
    std::vector<Leaf> observed;
    for (int pass = 0; pass < 3; ++pass) {
        for (std::uint64_t b = 0; b < 2000; ++b)
            observed.push_back(obs.observeAccess(BlockId{b}));
    }
    EXPECT_LT(chiSquareUniform(observed, 16, leaves), 37.7);
}

TEST_P(LeafUniformity, ConsecutiveLeavesUncorrelated)
{
    Observer obs(GetParam());
    const double n_leaves =
        static_cast<double>(obs.ctl.oram().engine().tree().numLeaves());
    std::vector<Leaf> observed;
    Rng rng(77);
    for (int i = 0; i < 4000; ++i)
        observed.push_back(obs.observeAccess(BlockId{rng.below(4096)}));
    // Pearson correlation between successive observations.
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    const std::size_t n = observed.size() - 1;
    for (std::size_t i = 0; i < n; ++i) {
        const double x = observed[i].value() / n_leaves;
        const double y = observed[i + 1].value() / n_leaves;
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
    }
    const double cov = sxy / n - (sx / n) * (sy / n);
    const double vx = sxx / n - (sx / n) * (sx / n);
    const double vy = syy / n - (sy / n) * (sy / n);
    const double corr = cov / std::sqrt(vx * vy);
    EXPECT_LT(std::fabs(corr), 0.06);
}

INSTANTIATE_TEST_SUITE_P(Schemes, LeafUniformity,
                         ::testing::Values(MemScheme::OramBaseline,
                                           MemScheme::OramStatic,
                                           MemScheme::OramDynamic),
                         [](const auto &info) {
                             return std::string(schemeName(info.param));
                         });

TEST(Security, RemapIsFreshAfterEveryAccess)
{
    Observer obs(MemScheme::OramBaseline);
    // After accessing block b, its next observed leaf must be drawn
    // independently: check that consecutive observed leaves for the
    // same block repeat no more often than chance predicts.
    std::vector<Leaf> observed;
    for (int i = 0; i < 2000; ++i) {
        observed.push_back(obs.observeAccess(3_id));
        for (std::uint64_t b = 3 + 64; b < 3 + 64 * 6; b += 64)
            obs.observeAccess(BlockId{b});
    }
    std::uint64_t repeats = 0;
    for (std::size_t i = 1; i < observed.size(); ++i)
        repeats += observed[i] == observed[i - 1] ? 1 : 0;
    const double expected =
        static_cast<double>(observed.size()) /
        static_cast<double>(obs.ctl.oram().engine().tree().numLeaves());
    EXPECT_LT(static_cast<double>(repeats), 8 * expected + 8);
}

TEST(Security, DynamicAndBaselineIssueIndistinguishableUnits)
{
    // Every logical access must be a whole-path access: the adversary
    // sees only (leaf, full path) pairs. Structural check: the path
    // read counter equals the number of path-unit operations the
    // controller reports, for both schemes.
    for (MemScheme scheme :
         {MemScheme::OramBaseline, MemScheme::OramDynamic}) {
        Observer obs(scheme);
        Rng rng(5);
        for (int i = 0; i < 500; ++i)
            obs.observeAccess(BlockId{rng.below(4096)});
        EXPECT_EQ(obs.ctl.oram().engine().pathReads(),
                  obs.ctl.stats().pathAccesses)
            << schemeName(scheme);
    }
}

} // namespace
} // namespace proram
