/** @file Unit tests for the position map, block space and PLB. */

#include "oram/position_map.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <list>

#include "util/logging.hh"
#include "util/random.hh"

namespace proram
{
namespace
{

using namespace proram::literals;

OramConfig
smallCfg()
{
    OramConfig c;
    c.numDataBlocks = 1ULL << 12; // 4096
    c.blockBytes = 128;           // fanout 32
    c.hierarchies = 4;
    return c;
}

TEST(BlockSpace, LayoutForSmallConfig)
{
    BlockSpace space(smallCfg());
    EXPECT_EQ(space.numDataBlocks(), 4096u);
    EXPECT_EQ(space.fanout(), 32u);
    // 4096 -> 128 -> 4 on-chip: 2 tree-resident pos-map levels.
    EXPECT_EQ(space.posMapLevels(), 2u);
    EXPECT_EQ(space.levelCount(1), 128u);
    EXPECT_EQ(space.levelCount(2), 4u);
    EXPECT_EQ(space.levelBase(1), 4096_id);
    EXPECT_EQ(space.levelBase(2), 4096_id + 128);
    EXPECT_EQ(space.numTotalBlocks(), 4096u + 128u + 4u);
}

TEST(BlockSpace, LevelOf)
{
    BlockSpace space(smallCfg());
    EXPECT_EQ(space.levelOf(0_id), 0u);
    EXPECT_EQ(space.levelOf(4095_id), 0u);
    EXPECT_EQ(space.levelOf(4096_id), 1u);
    EXPECT_EQ(space.levelOf(4096_id + 127), 1u);
    EXPECT_EQ(space.levelOf(4096_id + 128), 2u);
    EXPECT_TRUE(space.isData(4095_id));
    EXPECT_FALSE(space.isData(4096_id));
}

TEST(BlockSpace, PosMapBlockOfDataBlock)
{
    BlockSpace space(smallCfg());
    // Data block 0..31 covered by pos-map block 4096.
    EXPECT_EQ(space.posMapBlockOf(0_id), 4096_id);
    EXPECT_EQ(space.posMapBlockOf(31_id), 4096_id);
    EXPECT_EQ(space.posMapBlockOf(32_id), 4097_id);
    EXPECT_EQ(space.posMapBlockOf(4095_id), 4096_id + 127);
}

TEST(BlockSpace, PosMapBlockOfPosMapBlock)
{
    BlockSpace space(smallCfg());
    // Level-1 block index 0..31 covered by level-2 block 0.
    EXPECT_EQ(space.posMapBlockOf(4096_id), 4096_id + 128);
    EXPECT_EQ(space.posMapBlockOf(4096_id + 33), 4096_id + 129);
    // Level-2 blocks are covered by the on-chip table.
    EXPECT_EQ(space.posMapBlockOf(4096_id + 128), kInvalidBlock);
}

TEST(BlockSpace, WholeChainTerminates)
{
    BlockSpace space(smallCfg());
    for (BlockId b : {0_id, 1000_id, 4095_id}) {
        BlockId cur = b;
        int hops = 0;
        while ((cur = space.posMapBlockOf(cur)) != kInvalidBlock) {
            ++hops;
            ASSERT_LT(hops, 10);
        }
        EXPECT_EQ(hops, 2);
    }
}

TEST(BlockSpace, OutOfRangePanics)
{
    BlockSpace space(smallCfg());
    EXPECT_THROW(space.levelOf(BlockId{space.numTotalBlocks()}), SimPanic);
}

TEST(PositionMap, EntryRoundTrip)
{
    PositionMap pm(100, Leaf{64});
    pm.setLeaf(7_id, 13_leaf);
    EXPECT_EQ(pm.leafOf(7_id), 13_leaf);
    PosEntry &e = pm.entry(7_id);
    e.sbSizeLog = 2;
    e.mergeBit = true;
    e.prefetchBit = true;
    EXPECT_EQ(pm.entry(7_id).sbSize(), 4u);
    EXPECT_TRUE(pm.entry(7_id).mergeBit);
    EXPECT_TRUE(pm.entry(7_id).prefetchBit);
    EXPECT_FALSE(pm.entry(7_id).breakBit);
    EXPECT_FALSE(pm.entry(7_id).hitBit);
}

TEST(PositionMap, FreshEntriesAreInvalid)
{
    PositionMap pm(10, Leaf{8});
    EXPECT_EQ(pm.leafOf(0_id), kInvalidLeaf);
    EXPECT_EQ(pm.entry(0_id).sbSize(), 1u);
}

TEST(PositionMap, OutOfRangePanics)
{
    PositionMap pm(10, Leaf{8});
    EXPECT_THROW(pm.leafOf(10_id), SimPanic);
}

TEST(Plb, HitMissLru)
{
    PosMapBlockCache plb(2);
    EXPECT_FALSE(plb.lookup(1_id));
    plb.insert(1_id);
    plb.insert(2_id);
    EXPECT_TRUE(plb.lookup(1_id)); // refreshes 1
    plb.insert(3_id);              // evicts 2 (LRU)
    EXPECT_TRUE(plb.contains(1_id));
    EXPECT_FALSE(plb.contains(2_id));
    EXPECT_TRUE(plb.contains(3_id));
    EXPECT_EQ(plb.size(), 2u);
}

TEST(Plb, ReinsertRefreshes)
{
    PosMapBlockCache plb(2);
    plb.insert(1_id);
    plb.insert(2_id);
    plb.insert(1_id); // refresh, no eviction
    plb.insert(3_id); // evicts 2
    EXPECT_TRUE(plb.contains(1_id));
    EXPECT_FALSE(plb.contains(2_id));
}

TEST(Plb, CountsHitsAndMisses)
{
    PosMapBlockCache plb(4);
    plb.lookup(9_id);
    plb.insert(9_id);
    plb.lookup(9_id);
    EXPECT_EQ(plb.hits(), 1u);
    EXPECT_EQ(plb.misses(), 1u);
}

TEST(Plb, ZeroCapacityRejected)
{
    EXPECT_THROW(PosMapBlockCache(0), SimFatal);
}

TEST(Plb, MatchesReferenceLruModel)
{
    // The array-backed intrusive LRU must be behaviorally identical
    // to the textbook list-based cache it replaced: drive both with
    // the same randomized lookup/insert stream and compare contents
    // and hit counts throughout.
    constexpr std::uint32_t kCap = 8;
    PosMapBlockCache plb(kCap);
    std::list<BlockId> model; // front = most recent
    Rng rng(31);
    std::uint64_t model_hits = 0;
    for (int step = 0; step < 5000; ++step) {
        const BlockId b{rng.below(32)};
        const auto it = std::find(model.begin(), model.end(), b);
        const bool model_hit = it != model.end();
        if (model_hit) {
            ++model_hits;
            model.splice(model.begin(), model, it);
        }
        EXPECT_EQ(plb.lookup(b), model_hit) << "step " << step;
        if (!model_hit) {
            if (model.size() >= kCap)
                model.pop_back();
            model.push_front(b);
            plb.insert(b);
        }
        ASSERT_EQ(plb.size(), model.size());
    }
    EXPECT_EQ(plb.hits(), model_hits);
    for (BlockId b : model)
        EXPECT_TRUE(plb.contains(b)) << "block " << b;
}

TEST(PositionMap, SetLeafForwardsToAttachedLeafCache)
{
    // The leaf-cache coherence hook: while a stash is attached, every
    // setLeaf must refresh that stash's cached copy for resident
    // blocks and leave non-resident blocks alone.
    PositionMap pm(100, Leaf{64});
    Stash stash(8);
    stash.insert(7_id, 0, 1_leaf);
    pm.attachLeafCache(&stash);
    pm.setLeaf(7_id, 42_leaf);
    EXPECT_EQ(pm.leafOf(7_id), 42_leaf);
    EXPECT_EQ(stash.leafOf(7_id), 42_leaf);
    pm.setLeaf(8_id, 13_leaf); // not stash-resident: no phantom insert
    EXPECT_FALSE(stash.contains(8_id));
    pm.attachLeafCache(nullptr);
    pm.setLeaf(7_id, 5_leaf); // detached: stash copy goes stale by design
    EXPECT_EQ(stash.leafOf(7_id), 42_leaf);
}

} // namespace
} // namespace proram
