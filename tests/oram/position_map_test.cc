/** @file Unit tests for the position map, block space and PLB. */

#include "oram/position_map.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <list>

#include "util/logging.hh"
#include "util/random.hh"

namespace proram
{
namespace
{

OramConfig
smallCfg()
{
    OramConfig c;
    c.numDataBlocks = 1ULL << 12; // 4096
    c.blockBytes = 128;           // fanout 32
    c.hierarchies = 4;
    return c;
}

TEST(BlockSpace, LayoutForSmallConfig)
{
    BlockSpace space(smallCfg());
    EXPECT_EQ(space.numDataBlocks(), 4096u);
    EXPECT_EQ(space.fanout(), 32u);
    // 4096 -> 128 -> 4 on-chip: 2 tree-resident pos-map levels.
    EXPECT_EQ(space.posMapLevels(), 2u);
    EXPECT_EQ(space.levelCount(1), 128u);
    EXPECT_EQ(space.levelCount(2), 4u);
    EXPECT_EQ(space.levelBase(1), 4096u);
    EXPECT_EQ(space.levelBase(2), 4096u + 128u);
    EXPECT_EQ(space.numTotalBlocks(), 4096u + 128u + 4u);
}

TEST(BlockSpace, LevelOf)
{
    BlockSpace space(smallCfg());
    EXPECT_EQ(space.levelOf(0), 0u);
    EXPECT_EQ(space.levelOf(4095), 0u);
    EXPECT_EQ(space.levelOf(4096), 1u);
    EXPECT_EQ(space.levelOf(4096 + 127), 1u);
    EXPECT_EQ(space.levelOf(4096 + 128), 2u);
    EXPECT_TRUE(space.isData(4095));
    EXPECT_FALSE(space.isData(4096));
}

TEST(BlockSpace, PosMapBlockOfDataBlock)
{
    BlockSpace space(smallCfg());
    // Data block 0..31 covered by pos-map block 4096.
    EXPECT_EQ(space.posMapBlockOf(0), 4096u);
    EXPECT_EQ(space.posMapBlockOf(31), 4096u);
    EXPECT_EQ(space.posMapBlockOf(32), 4097u);
    EXPECT_EQ(space.posMapBlockOf(4095), 4096u + 127u);
}

TEST(BlockSpace, PosMapBlockOfPosMapBlock)
{
    BlockSpace space(smallCfg());
    // Level-1 block index 0..31 covered by level-2 block 0.
    EXPECT_EQ(space.posMapBlockOf(4096), 4096u + 128u);
    EXPECT_EQ(space.posMapBlockOf(4096 + 33), 4096u + 128u + 1u);
    // Level-2 blocks are covered by the on-chip table.
    EXPECT_EQ(space.posMapBlockOf(4096 + 128), kInvalidBlock);
}

TEST(BlockSpace, WholeChainTerminates)
{
    BlockSpace space(smallCfg());
    for (BlockId b : {0ULL, 1000ULL, 4095ULL}) {
        BlockId cur = b;
        int hops = 0;
        while ((cur = space.posMapBlockOf(cur)) != kInvalidBlock) {
            ++hops;
            ASSERT_LT(hops, 10);
        }
        EXPECT_EQ(hops, 2);
    }
}

TEST(BlockSpace, OutOfRangePanics)
{
    BlockSpace space(smallCfg());
    EXPECT_THROW(space.levelOf(space.numTotalBlocks()), SimPanic);
}

TEST(PositionMap, EntryRoundTrip)
{
    PositionMap pm(100, 64);
    pm.setLeaf(7, 13);
    EXPECT_EQ(pm.leafOf(7), 13u);
    PosEntry &e = pm.entry(7);
    e.sbSizeLog = 2;
    e.mergeBit = true;
    e.prefetchBit = true;
    EXPECT_EQ(pm.entry(7).sbSize(), 4u);
    EXPECT_TRUE(pm.entry(7).mergeBit);
    EXPECT_TRUE(pm.entry(7).prefetchBit);
    EXPECT_FALSE(pm.entry(7).breakBit);
    EXPECT_FALSE(pm.entry(7).hitBit);
}

TEST(PositionMap, FreshEntriesAreInvalid)
{
    PositionMap pm(10, 8);
    EXPECT_EQ(pm.leafOf(0), kInvalidLeaf);
    EXPECT_EQ(pm.entry(0).sbSize(), 1u);
}

TEST(PositionMap, OutOfRangePanics)
{
    PositionMap pm(10, 8);
    EXPECT_THROW(pm.leafOf(10), SimPanic);
}

TEST(Plb, HitMissLru)
{
    PosMapBlockCache plb(2);
    EXPECT_FALSE(plb.lookup(1));
    plb.insert(1);
    plb.insert(2);
    EXPECT_TRUE(plb.lookup(1)); // refreshes 1
    plb.insert(3);              // evicts 2 (LRU)
    EXPECT_TRUE(plb.contains(1));
    EXPECT_FALSE(plb.contains(2));
    EXPECT_TRUE(plb.contains(3));
    EXPECT_EQ(plb.size(), 2u);
}

TEST(Plb, ReinsertRefreshes)
{
    PosMapBlockCache plb(2);
    plb.insert(1);
    plb.insert(2);
    plb.insert(1); // refresh, no eviction
    plb.insert(3); // evicts 2
    EXPECT_TRUE(plb.contains(1));
    EXPECT_FALSE(plb.contains(2));
}

TEST(Plb, CountsHitsAndMisses)
{
    PosMapBlockCache plb(4);
    plb.lookup(9);
    plb.insert(9);
    plb.lookup(9);
    EXPECT_EQ(plb.hits(), 1u);
    EXPECT_EQ(plb.misses(), 1u);
}

TEST(Plb, ZeroCapacityRejected)
{
    EXPECT_THROW(PosMapBlockCache(0), SimFatal);
}

TEST(Plb, MatchesReferenceLruModel)
{
    // The array-backed intrusive LRU must be behaviorally identical
    // to the textbook list-based cache it replaced: drive both with
    // the same randomized lookup/insert stream and compare contents
    // and hit counts throughout.
    constexpr std::uint32_t kCap = 8;
    PosMapBlockCache plb(kCap);
    std::list<BlockId> model; // front = most recent
    Rng rng(31);
    std::uint64_t model_hits = 0;
    for (int step = 0; step < 5000; ++step) {
        const BlockId b = rng.below(32);
        const auto it = std::find(model.begin(), model.end(), b);
        const bool model_hit = it != model.end();
        if (model_hit) {
            ++model_hits;
            model.splice(model.begin(), model, it);
        }
        EXPECT_EQ(plb.lookup(b), model_hit) << "step " << step;
        if (!model_hit) {
            if (model.size() >= kCap)
                model.pop_back();
            model.push_front(b);
            plb.insert(b);
        }
        ASSERT_EQ(plb.size(), model.size());
    }
    EXPECT_EQ(plb.hits(), model_hits);
    for (BlockId b : model)
        EXPECT_TRUE(plb.contains(b)) << "block " << b;
}

TEST(PositionMap, SetLeafForwardsToAttachedLeafCache)
{
    // The leaf-cache coherence hook: while a stash is attached, every
    // setLeaf must refresh that stash's cached copy for resident
    // blocks and leave non-resident blocks alone.
    PositionMap pm(100, 64);
    Stash stash(8);
    stash.insert(7, 0, 1);
    pm.attachLeafCache(&stash);
    pm.setLeaf(7, 42);
    EXPECT_EQ(pm.leafOf(7), 42u);
    EXPECT_EQ(stash.leafOf(7), 42u);
    pm.setLeaf(8, 13); // not stash-resident: no phantom insert
    EXPECT_FALSE(stash.contains(8));
    pm.attachLeafCache(nullptr);
    pm.setLeaf(7, 5); // detached: stash copy goes stale by design
    EXPECT_EQ(stash.leafOf(7), 42u);
}

} // namespace
} // namespace proram
