/** @file Unit + property tests for the Ring ORAM engine. */

#include "oram/ring_oram.hh"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "oram/path_oram.hh"
#include "util/bits.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace proram
{
namespace
{

using namespace proram::literals;

OramConfig
tinyCfg(std::uint32_t z = 3)
{
    OramConfig c;
    c.numDataBlocks = 256;
    c.z = z;
    c.stashCapacity = 50;
    c.seed = 99;
    c.scheme = SchemeKind::Ring;
    return c;
}

struct Fixture
{
    explicit Fixture(const OramConfig &cfg = tinyCfg())
        : config(cfg), posMap(cfg.numDataBlocks,
                              Leaf{static_cast<std::uint32_t>(1ULL << cfg.levels())}),
          oram(cfg, posMap)
    {
    }

    /** Assign random leaves and place all blocks. */
    void init()
    {
        for (std::uint64_t b = 0; b < config.numDataBlocks; ++b)
            posMap.setLeaf(BlockId{b}, oram.randomLeaf());
        for (std::uint64_t b = 0; b < config.numDataBlocks; ++b)
            oram.placeInitial(BlockId{b}, b * 3);
    }

    /** Count copies of a block across stash + tree. */
    int copies(BlockId id)
    {
        int n = oram.stash().contains(id) ? 1 : 0;
        const BinaryTree &t = oram.tree();
        for (std::uint64_t node = 0; node < t.numBuckets(); ++node) {
            for (std::uint32_t i = 0; i < t.z(); ++i) {
                if (t.slotId(TreeIdx{node}, i) == id)
                    ++n;
            }
        }
        return n;
    }

    OramConfig config;
    PositionMap posMap;
    RingOram oram;
};

TEST(RingOram, ReverseLexSchedulePermutesTheLeaves)
{
    Fixture f;
    const std::uint64_t leaves = f.oram.tree().numLeaves();
    const std::uint32_t levels = f.oram.tree().levels();
    std::set<std::uint32_t> seen;
    for (std::uint64_t g = 0; g < leaves; ++g) {
        const Leaf l = f.oram.evictionLeafAt(g);
        EXPECT_EQ(l.value(), reverseBits(g, levels)) << "g=" << g;
        seen.insert(l.value());
    }
    // One full period touches every leaf exactly once, then wraps.
    EXPECT_EQ(seen.size(), leaves);
    EXPECT_EQ(f.oram.evictionLeafAt(leaves), f.oram.evictionLeafAt(0));
    // Consecutive evictions alternate tree halves (the max-distance
    // property that keeps upper buckets drained).
    EXPECT_EQ(f.oram.evictionLeafAt(0), 0_leaf);
    EXPECT_EQ(f.oram.evictionLeafAt(1).value(), leaves / 2);
}

TEST(RingOram, InitialPlacementStoresEveryBlockOnce)
{
    Fixture f;
    f.init();
    EXPECT_EQ(f.oram.tree().countRealBlocks() + f.oram.stash().size(),
              f.config.numDataBlocks);
    EXPECT_EQ(f.copies(0_id), 1);
    EXPECT_EQ(f.copies(255_id), 1);
}

TEST(RingOram, ReadPathPullsInterestSetIntoStash)
{
    Fixture f;
    f.init();
    const BlockId b{42};
    const Leaf leaf = f.posMap.leafOf(b);
    f.oram.readPath(leaf);
    EXPECT_TRUE(f.oram.stash().contains(b));
    // The interest set is exactly the blocks mapped to the accessed
    // leaf: everything now in the stash must be mapped there.
    const BinaryTree &t = f.oram.tree();
    for (std::uint64_t blk = 0; blk < f.config.numDataBlocks; ++blk) {
        if (f.oram.stash().contains(BlockId{blk})) {
            EXPECT_EQ(f.posMap.leafOf(BlockId{blk}), leaf)
                << "block " << blk << " not of interest";
        }
    }
    (void)t;
}

TEST(RingOram, ReadPathLeavesOtherBlocksInPlace)
{
    // Unlike Path ORAM, a Ring read must NOT move blocks mapped to
    // other leaves off the accessed path - it reads one (modeled)
    // block per bucket and leaves the rest.
    Fixture f;
    f.init();
    const BlockId b{42};
    const Leaf leaf = f.posMap.leafOf(b);
    const std::uint64_t resident_before = f.oram.tree().countRealBlocks();
    const std::size_t stash_before = f.oram.stash().size();
    f.oram.readPath(leaf);
    const std::uint64_t moved =
        resident_before - f.oram.tree().countRealBlocks();
    EXPECT_EQ(moved, f.oram.stash().size() - stash_before);
    EXPECT_LT(moved, f.oram.tree().levels() + 1ull); // not a full path
}

TEST(RingOram, ReadPathPreservesPayload)
{
    Fixture f;
    f.init();
    const BlockId b{17};
    f.oram.readPath(f.posMap.leafOf(b));
    ASSERT_TRUE(f.oram.stash().contains(b));
    ASSERT_NE(f.oram.stash().findData(b), nullptr);
    EXPECT_EQ(*f.oram.stash().findData(b), b.value() * 3);
}

TEST(RingOram, BucketReadBudgetTriggersEarlyReshuffle)
{
    OramConfig cfg = tinyCfg();
    cfg.ringS = 2;    // reshuffle after two reads
    cfg.ringA = 1024; // keep scheduled evictions out of the way
    Fixture f(cfg);
    f.init();
    EXPECT_EQ(f.oram.ringS(), 2u);

    const Leaf leaf{0};
    const std::uint64_t before = f.oram.schemeCounters().earlyReshuffles;
    for (int i = 0; i < 8; ++i) {
        f.oram.readPath(leaf);
        // The counter resets the moment it hits S: it never rests at
        // or above the budget.
        EXPECT_LT(f.oram.bucketReadCount(TreeIdx{0}), 2u) << "read " << i;
    }
    const std::uint64_t after = f.oram.schemeCounters().earlyReshuffles;
    // 8 reads x (levels+1) buckets at S=2: every bucket reshuffled
    // four times.
    EXPECT_EQ(after - before, 4ull * (f.oram.tree().levels() + 1));
}

TEST(RingOram, ScheduledEvictionEveryAAccesses)
{
    OramConfig cfg = tinyCfg();
    cfg.ringA = 4;
    Fixture f(cfg);
    f.init();
    EXPECT_EQ(f.oram.ringA(), 4u);
    EXPECT_EQ(f.oram.evictionsRun(), 0u);
    for (int i = 0; i < 40; ++i) {
        const BlockId b{static_cast<std::uint64_t>(i) %
                        cfg.numDataBlocks};
        const Leaf leaf = f.posMap.leafOf(b);
        f.oram.readPath(leaf);
        f.posMap.setLeaf(b, f.oram.randomLeaf());
        f.oram.writePath(leaf);
    }
    EXPECT_EQ(f.oram.evictionsRun(), 10u);
}

TEST(RingOram, ScheduledEvictionResetsPathReadCounters)
{
    OramConfig cfg = tinyCfg();
    cfg.ringS = 200; // no early reshuffles; only evictions reset
    cfg.ringA = 1024;
    Fixture f(cfg);
    f.init();
    const Leaf target = f.oram.evictionLeafAt(0);
    for (int i = 0; i < 5; ++i)
        f.oram.readPath(target);
    const BinaryTree &t = f.oram.tree();
    EXPECT_GE(f.oram.bucketReadCount(t.nodeOnPath(target, Level{0})), 5u);
    f.oram.dummyAccess(); // forces eviction g=0 onto `target`
    for (std::uint32_t lvl = 0; lvl <= t.levels(); ++lvl)
        EXPECT_EQ(f.oram.bucketReadCount(t.nodeOnPath(target, Level{lvl})),
                  0u)
            << "level " << lvl;
}

TEST(RingOram, DummyAccessAdvancesScheduleAndNeverGrowsStash)
{
    Fixture f;
    f.init();
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const BlockId b{rng.below(f.config.numDataBlocks)};
        const Leaf leaf = f.posMap.leafOf(b);
        f.oram.readPath(leaf);
        f.posMap.setLeaf(b, f.oram.randomLeaf());
        f.oram.writePath(leaf);
    }
    for (int i = 0; i < 50; ++i) {
        const auto before = f.oram.stash().size();
        const std::uint64_t g = f.oram.evictionsRun();
        const Leaf written = f.oram.dummyAccess();
        EXPECT_EQ(written, f.oram.evictionLeafAt(g));
        EXPECT_EQ(f.oram.evictionsRun(), g + 1);
        EXPECT_LE(f.oram.stash().size(), before);
    }
}

TEST(RingOram, AccessWithRemapKeepsSingleCopy)
{
    Fixture f;
    f.init();
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const BlockId b{rng.below(f.config.numDataBlocks)};
        const Leaf leaf = f.posMap.leafOf(b);
        f.oram.readPath(leaf);
        ASSERT_TRUE(f.oram.stash().contains(b));
        f.posMap.setLeaf(b, f.oram.randomLeaf());
        f.oram.writePath(leaf);
        while (f.oram.stash().overCapacity())
            f.oram.dummyAccess();
    }
    for (BlockId b : {0_id, 77_id, 128_id, 255_id})
        EXPECT_EQ(f.copies(b), 1) << "block " << b;
    EXPECT_EQ(f.oram.tree().countRealBlocks() + f.oram.stash().size(),
              f.config.numDataBlocks);
}

TEST(RingOram, BlocksLandOnlyOnTheirMappedPath)
{
    Fixture f;
    f.init();
    Rng rng(2);
    for (int i = 0; i < 300; ++i) {
        const BlockId b{rng.below(f.config.numDataBlocks)};
        const Leaf leaf = f.posMap.leafOf(b);
        f.oram.readPath(leaf);
        f.posMap.setLeaf(b, f.oram.randomLeaf());
        f.oram.writePath(leaf);
    }
    const BinaryTree &t = f.oram.tree();
    for (std::uint64_t node = 0; node < t.numBuckets(); ++node) {
        std::uint32_t level = 0;
        for (std::uint64_t n = node; n > 0; n = (n - 1) / 2)
            ++level;
        for (std::uint32_t i = 0; i < t.z(); ++i) {
            const BlockId id = t.slotId(TreeIdx{node}, i);
            if (id == kInvalidBlock)
                continue;
            EXPECT_EQ(t.nodeOnPath(f.posMap.leafOf(id), Level{level}),
                      TreeIdx{node})
                << "block " << id << " off its path";
        }
    }
}

TEST(RingOram, SchemeCountersTallyBucketTraffic)
{
    Fixture f;
    f.init();
    Rng rng(4);
    for (int i = 0; i < 100; ++i) {
        const BlockId b{rng.below(f.config.numDataBlocks)};
        const Leaf leaf = f.posMap.leafOf(b);
        f.oram.readPath(leaf);
        f.posMap.setLeaf(b, f.oram.randomLeaf());
        f.oram.writePath(leaf);
    }
    const SchemeCounters c = f.oram.schemeCounters();
    // Every readPath bills at least one modeled read per path bucket.
    EXPECT_GE(c.bucketReads, 100ull * (f.oram.tree().levels() + 1));
    // Most buckets hold nothing of interest: dummy reads dominate.
    EXPECT_GT(c.dummyReads, 0u);
    EXPECT_LT(c.dummyReads, c.bucketReads);
    EXPECT_EQ(c.scheduledEvictions, f.oram.evictionsRun());
}

TEST(RingOram, PathReadsCounted)
{
    Fixture f;
    f.init();
    const auto before = f.oram.pathReads();
    f.oram.readPath(0_leaf);
    // writePath only schedules; dummyAccess runs a real path rewrite.
    f.oram.dummyAccess();
    EXPECT_EQ(f.oram.pathReads(), before + 2);
}

TEST(RingOram, FactorySelectsSchemeFromConfig)
{
    OramConfig cfg = tinyCfg();
    PositionMap pm(cfg.numDataBlocks,
                   Leaf{static_cast<std::uint32_t>(1ULL << cfg.levels())});
    cfg.scheme = SchemeKind::Ring;
    EXPECT_STREQ(makeOramScheme(cfg, pm)->name(), "ring");
    cfg.scheme = SchemeKind::Path;
    EXPECT_STREQ(makeOramScheme(cfg, pm)->name(), "path");
}

TEST(RingOram, EnvKnobsResolveSchemeAndParameters)
{
    const auto withEnv = [](const char *name, const char *value,
                            auto &&fn) {
        const char *prev = std::getenv(name);
        const std::string saved = prev ? prev : "";
        ::setenv(name, value, 1);
        fn();
        if (prev != nullptr)
            ::setenv(name, saved.c_str(), 1);
        else
            ::unsetenv(name);
    };

    OramConfig cfg = tinyCfg();
    cfg.scheme = SchemeKind::Default;
    withEnv("PRORAM_SCHEME", "ring", [&] {
        EXPECT_EQ(cfg.resolvedScheme(), SchemeKind::Ring);
    });
    withEnv("PRORAM_SCHEME", "path", [&] {
        EXPECT_EQ(cfg.resolvedScheme(), SchemeKind::Path);
    });
    // An explicit config choice beats the environment.
    cfg.scheme = SchemeKind::Path;
    withEnv("PRORAM_SCHEME", "ring", [&] {
        EXPECT_EQ(cfg.resolvedScheme(), SchemeKind::Path);
    });

    cfg = tinyCfg();
    withEnv("PRORAM_RING_S", "7", [&] {
        EXPECT_EQ(cfg.resolvedRingS(), 7u);
    });
    withEnv("PRORAM_RING_A", "5", [&] {
        EXPECT_EQ(cfg.resolvedRingA(), 5u);
    });
    cfg.ringS = 9; // explicit beats env
    withEnv("PRORAM_RING_S", "7", [&] {
        EXPECT_EQ(cfg.resolvedRingS(), 9u);
    });
}

TEST(RingOram, DefaultRingParametersDeriveFromZ)
{
    OramConfig cfg = tinyCfg(4);
    EXPECT_EQ(cfg.resolvedRingS(), 8u); // 2 * Z
    EXPECT_EQ(cfg.resolvedRingA(), 2u);
    EXPECT_STREQ(schemeKindName(SchemeKind::Ring), "ring");
    EXPECT_STREQ(schemeKindName(SchemeKind::Path), "path");
    EXPECT_EQ(parseSchemeKind("ring"), SchemeKind::Ring);
    EXPECT_EQ(parseSchemeKind("path"), SchemeKind::Path);
    EXPECT_THROW(parseSchemeKind("square"), SimFatal);
}

class RingOramZParam : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(RingOramZParam, InvariantHoldsAcrossZ)
{
    OramConfig cfg = tinyCfg(GetParam());
    Fixture f(cfg);
    f.init();
    Rng rng(4);
    for (int i = 0; i < 150; ++i) {
        const BlockId b{rng.below(cfg.numDataBlocks)};
        const Leaf leaf = f.posMap.leafOf(b);
        f.oram.readPath(leaf);
        ASSERT_TRUE(f.oram.stash().contains(b));
        f.posMap.setLeaf(b, f.oram.randomLeaf());
        f.oram.writePath(leaf);
        while (f.oram.stash().overCapacity())
            f.oram.dummyAccess();
    }
    EXPECT_EQ(f.oram.tree().countRealBlocks() + f.oram.stash().size(),
              cfg.numDataBlocks);
}

INSTANTIATE_TEST_SUITE_P(Z, RingOramZParam,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u));

} // namespace
} // namespace proram
