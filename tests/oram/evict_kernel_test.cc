/**
 * @file
 * Randomized equivalence tests for the vectorized eviction-level
 * kernels: every variant the host can run must agree bit-for-bit with
 * the scalar reference on every input - random leaves across the full
 * 32-bit range, dead-slot garbage (kInvalidLeaf), unaligned lengths
 * that exercise the vector tails, and levels small enough that the
 * subtraction wraps mod 2^32.
 */

#include "oram/evict_kernel.hh"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "util/types.hh"

namespace proram
{
namespace
{

std::vector<evict::Kernel>
availableKernels()
{
    std::vector<evict::Kernel> out{evict::Kernel::Scalar};
    if (evict::kernelAvailable(evict::Kernel::Swar))
        out.push_back(evict::Kernel::Swar);
    if (evict::kernelAvailable(evict::Kernel::Avx2))
        out.push_back(evict::Kernel::Avx2);
    return out;
}

TEST(EvictKernel, ScalarMatchesCommonLevelFormula)
{
    // levels - bit_width(a ^ b), the BinaryTree::commonLevel contract.
    const std::uint32_t levels = 16;
    const Leaf leaves[] = {Leaf{0}, Leaf{1}, Leaf{0x8000},
                           Leaf{0xFFFF}, Leaf{0x1234}};
    std::uint32_t out[5];
    evict::classifyLevelsWith(evict::Kernel::Scalar, leaves, 5,
                              Leaf{0x1234}, levels, out);
    EXPECT_EQ(out[4], levels);     // identical leaf: full depth
    EXPECT_EQ(out[0], levels - 13); // diff 0x1234: bit_width 13
    EXPECT_EQ(out[3], levels - 16); // diff 0xEDCB: bit_width 16
}

TEST(EvictKernel, AllVariantsMatchScalarOnRandomInput)
{
    std::mt19937_64 rng(0xC0FFEE);
    const std::uint32_t level_grid[] = {1, 5, 16, 25, 32};
    // Lengths straddle the SWAR (4) and AVX2 (8) strides to hit every
    // tail-handling branch, plus n == 0.
    const std::size_t len_grid[] = {0, 1, 3, 7, 8, 9, 15, 64, 257};

    for (const std::uint32_t levels : level_grid) {
        for (const std::size_t n : len_grid) {
            std::vector<Leaf> leaves(n);
            const Leaf path_leaf{static_cast<std::uint32_t>(rng())};
            for (std::size_t i = 0; i < n; ++i) {
                switch (rng() % 4) {
                  case 0: // in-range leaf for this tree depth
                    leaves[i] = Leaf{static_cast<std::uint32_t>(
                        rng() & ((levels >= 32)
                                     ? 0xFFFFFFFFu
                                     : ((1u << levels) - 1)))};
                    break;
                  case 1: // full 32-bit garbage (dead-slot lane)
                    leaves[i] = Leaf{static_cast<std::uint32_t>(rng())};
                    break;
                  case 2:
                    leaves[i] = kInvalidLeaf;
                    break;
                  default:
                    leaves[i] = path_leaf; // zero-diff lane
                    break;
                }
            }
            std::vector<std::uint32_t> ref(n), got(n);
            evict::classifyLevelsWith(evict::Kernel::Scalar,
                                      leaves.data(), n, path_leaf,
                                      levels, ref.data());
            for (const evict::Kernel k : availableKernels()) {
                std::fill(got.begin(), got.end(), 0xDEAD);
                evict::classifyLevelsWith(k, leaves.data(), n,
                                          path_leaf, levels,
                                          got.data());
                ASSERT_EQ(got, ref)
                    << "kernel=" << evict::kernelName(k)
                    << " levels=" << levels << " n=" << n;
            }
        }
    }
}

TEST(EvictKernel, DispatchResolvesToAnAvailableVariant)
{
    const evict::Kernel active = evict::activeKernel();
    EXPECT_NE(active, evict::Kernel::Auto);
    EXPECT_TRUE(evict::kernelAvailable(active));
}

TEST(EvictKernel, ForceKernelPinsAndAutoRestores)
{
    const evict::Kernel before = evict::activeKernel();
    evict::forceKernel(evict::Kernel::Scalar);
    EXPECT_EQ(evict::activeKernel(), evict::Kernel::Scalar);

    // Dispatch through the pinned kernel must still be correct.
    const Leaf leaves[] = {Leaf{3}, Leaf{9}, Leaf{12}, Leaf{40}};
    std::uint32_t out[4];
    evict::classifyLevels(leaves, 4, Leaf{9}, 10, out);
    EXPECT_EQ(out[1], 10u);

    evict::forceKernel(evict::Kernel::Auto); // re-resolve
    EXPECT_EQ(evict::activeKernel(), before);
}

TEST(EvictKernel, ScalarAlwaysAvailableAndNamed)
{
    EXPECT_TRUE(evict::kernelAvailable(evict::Kernel::Scalar));
    EXPECT_TRUE(evict::kernelAvailable(evict::Kernel::Auto));
    EXPECT_STREQ(evict::kernelName(evict::Kernel::Scalar), "scalar");
    EXPECT_STREQ(evict::kernelName(evict::Kernel::Swar), "swar");
    EXPECT_STREQ(evict::kernelName(evict::Kernel::Avx2), "avx2");
}

} // namespace
} // namespace proram
