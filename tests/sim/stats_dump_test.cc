/** @file Tests for the per-component named-statistics views. */

#include <gtest/gtest.h>

#include "sim/secure_memory.hh"
#include "sim/system.hh"
#include "trace/synthetic.hh"

namespace proram
{
namespace
{

SystemConfig
cfg(MemScheme scheme)
{
    SystemConfig c = defaultSystemConfig();
    c.scheme = scheme;
    c.oram.numDataBlocks = 1ULL << 12;
    return c;
}

TEST(StatsDump, ControllerGroupTracksLiveCounters)
{
    SecureMemory mem(cfg(MemScheme::OramDynamic));
    for (Addr a = 0; a < 2000 * 128; a += 128)
        mem.write(a, 1);

    const auto group = mem.controller().buildStatGroup();
    const SimResult s = mem.stats();
    EXPECT_DOUBLE_EQ(group.get("pathAccesses"),
                     static_cast<double>(s.pathAccesses));
    EXPECT_DOUBLE_EQ(group.get("posMapAccesses"),
                     static_cast<double>(s.posMapAccesses));
    EXPECT_DOUBLE_EQ(group.get("merges"),
                     static_cast<double>(s.merges));
    EXPECT_GT(group.get("plbHits") + group.get("plbMisses"), 0.0);
}

TEST(StatsDump, GroupIsLive)
{
    SecureMemory mem(cfg(MemScheme::OramBaseline));
    const auto group = mem.controller().buildStatGroup();
    const double before = group.get("pathAccesses");
    mem.read(0);
    EXPECT_GT(group.get("pathAccesses"), before);
}

TEST(StatsDump, SystemDumpContainsBothGroups)
{
    System sys(cfg(MemScheme::OramDynamic));
    SyntheticConfig t;
    t.footprintBlocks = 1024;
    t.numAccesses = 2000;
    SyntheticGenerator gen(t);
    sys.run(gen);

    const std::string dump = sys.dumpStats();
    EXPECT_NE(dump.find("caches.llcMisses"), std::string::npos);
    EXPECT_NE(dump.find("oram_controller.pathAccesses"),
              std::string::npos);
    EXPECT_NE(dump.find("oram_controller.stashOccupancyAvg"),
              std::string::npos);
}

TEST(StatsDump, DramSystemDumpsCachesOnly)
{
    System sys(cfg(MemScheme::Dram));
    const std::string dump = sys.dumpStats();
    EXPECT_NE(dump.find("caches.l1Hits"), std::string::npos);
    EXPECT_EQ(dump.find("oram_controller"), std::string::npos);
}

TEST(StatsDump, SecureMemoryDump)
{
    SecureMemory mem(cfg(MemScheme::OramStatic));
    mem.write(0, 1);
    const std::string dump = mem.dumpStats();
    EXPECT_NE(dump.find("oram_controller.realRequests"),
              std::string::npos);
}

} // namespace
} // namespace proram
