/** @file Unit tests for the experiment harness and metrics. */

#include "sim/experiment.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace proram
{
namespace
{

SimResult
fake(Cycles cycles, std::uint64_t accesses)
{
    SimResult r;
    r.cycles = cycles;
    r.memAccesses = accesses;
    return r;
}

TEST(Metrics, Speedup)
{
    EXPECT_DOUBLE_EQ(metrics::speedup(fake(Cycles{1000}, 1), fake(Cycles{800}, 1)),
                     0.25);
    EXPECT_DOUBLE_EQ(metrics::speedup(fake(Cycles{1000}, 1), fake(Cycles{1000}, 1)),
                     0.0);
    EXPECT_LT(metrics::speedup(fake(Cycles{1000}, 1), fake(Cycles{1250}, 1)), 0.0);
}

TEST(Metrics, NormMemAccesses)
{
    EXPECT_DOUBLE_EQ(
        metrics::normMemAccesses(fake(Cycles{1}, 200), fake(Cycles{1}, 150)), 0.75);
}

TEST(Metrics, NormCompletionTime)
{
    EXPECT_DOUBLE_EQ(
        metrics::normCompletionTime(fake(Cycles{100}, 1), fake(Cycles{250}, 1)), 2.5);
}

TEST(Metrics, DegenerateInputsPanic)
{
    EXPECT_THROW(metrics::speedup(fake(Cycles{1}, 1), fake(Cycles{0}, 1)), SimPanic);
    EXPECT_THROW(metrics::normMemAccesses(fake(Cycles{1}, 0), fake(Cycles{1}, 1)),
                 SimPanic);
}

TEST(Experiment, Mean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Experiment, RunBenchmarkProducesResults)
{
    SystemConfig cfg = defaultSystemConfig();
    Experiment exp(cfg, 0.02);
    const auto res = exp.runBenchmark(MemScheme::OramBaseline,
                                      profileByName("fft"));
    EXPECT_GT(res.cycles, Cycles{0});
    EXPECT_EQ(res.scheme, "oram");
}

TEST(Experiment, RunWithAppliesTweaks)
{
    SystemConfig cfg = defaultSystemConfig();
    Experiment exp(cfg, 0.02);
    const auto &prof = profileByName("fft");
    const auto base = exp.runBenchmark(MemScheme::OramBaseline, prof);
    const auto slow = exp.runWith(
        MemScheme::OramBaseline,
        [](SystemConfig &c) { c.setDramBandwidthGBs(4.0); },
        [&] { return makeGenerator(prof, 0.02); });
    EXPECT_GT(slow.cycles, base.cycles);
}

TEST(Experiment, FreshSystemsPerRun)
{
    SystemConfig cfg = defaultSystemConfig();
    Experiment exp(cfg, 0.02);
    const auto &prof = profileByName("raytrace");
    const auto a = exp.runBenchmark(MemScheme::OramDynamic, prof);
    const auto b = exp.runBenchmark(MemScheme::OramDynamic, prof);
    EXPECT_EQ(a.cycles, b.cycles) << "state leaked between runs";
}

TEST(Experiment, RejectsBadScale)
{
    EXPECT_THROW(Experiment(defaultSystemConfig(), 0.0), SimFatal);
}

} // namespace
} // namespace proram
