/** @file Unit tests for system configuration and wiring. */

#include "sim/system.hh"

#include <gtest/gtest.h>

#include "trace/synthetic.hh"
#include "util/logging.hh"

namespace proram
{
namespace
{

SystemConfig
smallCfg(MemScheme scheme)
{
    SystemConfig cfg = defaultSystemConfig();
    cfg.scheme = scheme;
    cfg.oram.numDataBlocks = 1ULL << 12;
    return cfg;
}

SyntheticConfig
tinyTrace()
{
    SyntheticConfig t;
    t.footprintBlocks = 2048;
    t.numAccesses = 4000;
    t.localityFraction = 0.5;
    t.seed = 13;
    return t;
}

TEST(SystemConfig, SchemeNamesMatchPaperLegends)
{
    EXPECT_STREQ(schemeName(MemScheme::Dram), "dram");
    EXPECT_STREQ(schemeName(MemScheme::DramPrefetch), "dram_pre");
    EXPECT_STREQ(schemeName(MemScheme::OramBaseline), "oram");
    EXPECT_STREQ(schemeName(MemScheme::OramPrefetch), "oram_pre");
    EXPECT_STREQ(schemeName(MemScheme::OramStatic), "stat");
    EXPECT_STREQ(schemeName(MemScheme::OramDynamic), "dyn");
}

TEST(SystemConfig, DefaultsMatchTable1)
{
    const SystemConfig cfg = defaultSystemConfig();
    EXPECT_EQ(cfg.hierarchy.l1.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.hierarchy.l1.ways, 4u);
    EXPECT_EQ(cfg.hierarchy.l2.sizeBytes, 512u * 1024);
    EXPECT_EQ(cfg.hierarchy.l2.ways, 8u);
    EXPECT_EQ(cfg.hierarchy.l1.lineBytes, 128u);
    EXPECT_EQ(cfg.oram.blockBytes, 128u);
    EXPECT_EQ(cfg.oram.z, 3u);
    EXPECT_EQ(cfg.oram.stashCapacity, 100u);
    EXPECT_EQ(cfg.oram.hierarchies, 4u);
    EXPECT_DOUBLE_EQ(cfg.oram.dramBytesPerCycle, 16.0);
    EXPECT_EQ(cfg.dram.dram.latency, Cycles{100});
    EXPECT_EQ(cfg.dynamic.maxSbSize, 2u);
}

TEST(SystemConfig, SetLineBytesPropagates)
{
    SystemConfig cfg = defaultSystemConfig();
    cfg.setLineBytes(64);
    EXPECT_EQ(cfg.hierarchy.l1.lineBytes, 64u);
    EXPECT_EQ(cfg.hierarchy.l2.lineBytes, 64u);
    EXPECT_EQ(cfg.oram.blockBytes, 64u);
    EXPECT_EQ(cfg.dram.dram.lineBytes, 64u);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(SystemConfig, SetBandwidthPropagates)
{
    SystemConfig cfg = defaultSystemConfig();
    cfg.setDramBandwidthGBs(4.0);
    EXPECT_DOUBLE_EQ(cfg.oram.dramBytesPerCycle, 4.0);
    EXPECT_DOUBLE_EQ(cfg.dram.dram.bytesPerCycle, 4.0);
}

TEST(SystemConfig, ValidateCatchesMismatchedLines)
{
    SystemConfig cfg = defaultSystemConfig();
    cfg.oram.blockBytes = 64;
    EXPECT_THROW(cfg.validate(), SimFatal);
}

TEST(System, DramSchemeHasNoController)
{
    System sys(smallCfg(MemScheme::Dram));
    EXPECT_EQ(sys.controller(), nullptr);
}

TEST(System, OramSchemesHaveController)
{
    for (MemScheme s : {MemScheme::OramBaseline, MemScheme::OramStatic,
                        MemScheme::OramDynamic,
                        MemScheme::OramPrefetch}) {
        System sys(smallCfg(s));
        EXPECT_NE(sys.controller(), nullptr);
    }
}

TEST(System, RunProducesConsistentResults)
{
    System sys(smallCfg(MemScheme::OramBaseline));
    SyntheticGenerator gen(tinyTrace());
    const SimResult res = sys.run(gen);
    EXPECT_EQ(res.scheme, "oram");
    EXPECT_EQ(res.references, 4000u);
    EXPECT_GT(res.cycles, Cycles{0});
    EXPECT_GT(res.llcMisses, 0u);
    EXPECT_EQ(res.memAccesses, res.pathAccesses);
    EXPECT_GE(res.pathAccesses, res.llcMisses);
}

TEST(System, RunsAreDeterministic)
{
    SimResult a, b;
    {
        System sys(smallCfg(MemScheme::OramDynamic));
        SyntheticGenerator gen(tinyTrace());
        a = sys.run(gen);
    }
    {
        System sys(smallCfg(MemScheme::OramDynamic));
        SyntheticGenerator gen(tinyTrace());
        b = sys.run(gen);
    }
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.pathAccesses, b.pathAccesses);
    EXPECT_EQ(a.merges, b.merges);
    EXPECT_EQ(a.breaks, b.breaks);
}

TEST(System, OramIsSlowerThanDram)
{
    SyntheticGenerator g1(tinyTrace()), g2(tinyTrace());
    System dram(smallCfg(MemScheme::Dram));
    System oram(smallCfg(MemScheme::OramBaseline));
    const auto rd = dram.run(g1);
    const auto ro = oram.run(g2);
    EXPECT_GT(ro.cycles, rd.cycles)
        << "Path ORAM must cost more than insecure DRAM (Sec. 2.6)";
}

TEST(System, DynamicStatsPopulated)
{
    SystemConfig cfg = smallCfg(MemScheme::OramDynamic);
    cfg.oram.numDataBlocks = 1ULL << 13;
    System sys(cfg);
    SyntheticConfig t = tinyTrace();
    // Footprint must exceed the LLC (4096 lines) or prefetched
    // blocks are never reloaded and hits never get counted.
    t.footprintBlocks = 1ULL << 13;
    t.numAccesses = 20000;
    t.localityFraction = 1.0;
    SyntheticGenerator gen(t);
    const auto res = sys.run(gen);
    EXPECT_GT(res.merges, 0u);
    EXPECT_GT(res.prefetchHits, 0u);
    EXPECT_GT(res.avgStashOccupancy, 0.0);
}

} // namespace
} // namespace proram
