/** @file Functional tests for the SecureMemory public facade. */

#include "sim/secure_memory.hh"

#include <gtest/gtest.h>

#include <map>

#include "oram/integrity.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace proram
{
namespace
{

SystemConfig
memCfg(MemScheme scheme)
{
    SystemConfig cfg = defaultSystemConfig();
    cfg.scheme = scheme;
    cfg.oram.numDataBlocks = 1ULL << 12;
    return cfg;
}

TEST(SecureMemory, RejectsDramSchemes)
{
    EXPECT_THROW(SecureMemory(memCfg(MemScheme::Dram)), SimFatal);
}

TEST(SecureMemory, UnwrittenReadsReturnZero)
{
    SecureMemory mem(memCfg(MemScheme::OramBaseline));
    EXPECT_EQ(mem.read(0), 0u);
    EXPECT_EQ(mem.read(128 * 77), 0u);
}

TEST(SecureMemory, ReadYourWrites)
{
    SecureMemory mem(memCfg(MemScheme::OramDynamic));
    mem.write(0, 11);
    mem.write(128, 22);
    EXPECT_EQ(mem.read(0), 11u);
    EXPECT_EQ(mem.read(128), 22u);
    mem.write(0, 33);
    EXPECT_EQ(mem.read(0), 33u);
}

TEST(SecureMemory, CapacityEnforced)
{
    SecureMemory mem(memCfg(MemScheme::OramBaseline));
    EXPECT_THROW(mem.read(mem.capacityBytes()), SimFatal);
}

TEST(SecureMemory, TimeAdvancesOnMisses)
{
    SecureMemory mem(memCfg(MemScheme::OramBaseline));
    const Cycles t0 = mem.now();
    mem.read(0);
    const Cycles t1 = mem.now();
    EXPECT_GT(t1, t0);
    // Cached: cheap.
    mem.read(0);
    EXPECT_LT(mem.now() - t1, Cycles{20});
    mem.compute(Cycles{1000});
    EXPECT_EQ(mem.now(), t1 + (mem.now() - t1));
}

class SecureMemorySchemes : public ::testing::TestWithParam<MemScheme>
{
};

TEST_P(SecureMemorySchemes, RandomWorkloadMatchesReferenceMap)
{
    SecureMemory mem(memCfg(GetParam()));
    std::map<Addr, std::uint64_t> ref;
    Rng rng(97);
    for (int i = 0; i < 4000; ++i) {
        const Addr addr = rng.below(1ULL << 12) * 128;
        if (rng.chance(0.4)) {
            const std::uint64_t v = rng.next();
            mem.write(addr, v);
            ref[addr] = v;
        } else {
            const auto it = ref.find(addr);
            EXPECT_EQ(mem.read(addr),
                      it == ref.end() ? 0u : it->second);
        }
    }
    // Cross-check every written address at the end.
    for (const auto &[addr, v] : ref)
        EXPECT_EQ(mem.read(addr), v);
    EXPECT_TRUE(checkIntegrity(mem.controller().oram()).ok);
}

TEST_P(SecureMemorySchemes, SequentialScanRoundTrip)
{
    SecureMemory mem(memCfg(GetParam()));
    for (Addr a = 0; a < 2000 * 128; a += 128)
        mem.write(a, a / 128 + 1);
    for (Addr a = 0; a < 2000 * 128; a += 128)
        EXPECT_EQ(mem.read(a), a / 128 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SecureMemorySchemes,
    ::testing::Values(MemScheme::OramBaseline, MemScheme::OramStatic,
                      MemScheme::OramDynamic),
    [](const auto &info) {
        return std::string(schemeName(info.param));
    });

TEST(SecureMemory, DirtyVictimsOfPrefetchInsertionsSurvive)
{
    // Regression: a prefetch insertion inside the controller can
    // evict a *dirty* LLC line; its payload must reach the tree via
    // the write-back data source, not be zeroed or dropped.
    SystemConfig cfg = memCfg(MemScheme::OramDynamic);
    cfg.oram.numDataBlocks = 1ULL << 13;
    SecureMemory mem(cfg);
    const std::uint64_t n = 6000; // > LLC lines, forces evictions
    // Sequential write pass: merges pairs AND dirties every line.
    for (std::uint64_t i = 0; i < n; ++i)
        mem.write(i * 128, i * 13 + 7);
    // Second pass re-reads everything after heavy prefetch churn.
    for (std::uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(mem.read(i * 128), i * 13 + 7) << "block " << i;
    EXPECT_GT(mem.stats().merges, 0u);
}

TEST(SecureMemory, StatsAccumulate)
{
    SecureMemory mem(memCfg(MemScheme::OramDynamic));
    for (Addr a = 0; a < 3000 * 128; a += 128)
        mem.write(a, 1);
    const SimResult s = mem.stats();
    EXPECT_EQ(s.scheme, "dyn");
    EXPECT_EQ(s.references, 3000u);
    EXPECT_GT(s.llcMisses, 0u);
    EXPECT_GT(s.pathAccesses, s.llcMisses);
    EXPECT_GT(s.merges, 0u);
}

TEST(SecureMemory, PeriodicModeWorksFunctionally)
{
    SystemConfig cfg = memCfg(MemScheme::OramDynamic);
    cfg.controller.periodic.enabled = true;
    cfg.controller.periodic.oInt = Cycles{100};
    SecureMemory mem(cfg);
    for (Addr a = 0; a < 500 * 128; a += 128)
        mem.write(a, a + 5);
    mem.compute(Cycles{500000});
    for (Addr a = 0; a < 500 * 128; a += 128)
        EXPECT_EQ(mem.read(a), a + 5);
    EXPECT_GT(mem.stats().periodicDummies, 0u);
}

} // namespace
} // namespace proram
