/**
 * @file
 * Obliviousness-auditor tests. Both directions of the acceptance
 * criterion are covered: every shipped configuration must pass the
 * audit, and a deliberately leaky access stream (driven straight into
 * the observer API, one leak per check) must trip the matching check.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "obs/audit.hh"
#include "sim/system.hh"
#include "sim/system_config.hh"
#include "trace/benchmarks.hh"
#include "trace/trace_file.hh"
#include "util/bits.hh"

namespace proram
{
namespace
{

using namespace proram::literals;

using obs::AuditCheck;
using obs::AuditConfig;
using obs::AuditReport;
using obs::ObliviousnessAuditor;
using obs::PathKind;

std::vector<TraceRecord>
profileRecords(const char *name, double scale)
{
    std::vector<TraceRecord> records;
    auto gen = makeGenerator(profileByName(name), scale);
    TraceRecord rec;
    while (gen->next(rec))
        records.push_back(rec);
    return records;
}

const AuditCheck &
findCheck(const AuditReport &rep, const std::string &name)
{
    for (const AuditCheck &c : rep.checks) {
        if (c.name == name)
            return c;
    }
    ADD_FAILURE() << "no check named " << name << "\n"
                  << rep.summary();
    static const AuditCheck missing;
    return missing;
}

/** Well-spread deterministic leaf sequence (multiplicative hash of
 *  the index; odd multiplier, so every residue class is visited). */
Leaf
spreadLeaf(std::uint64_t i, std::uint64_t num_leaves)
{
    return Leaf{
        static_cast<std::uint32_t>((i * 2654435761ULL) % num_leaves)};
}

TEST(ChiSquare, CriticalValueTracksQuantileAndDof)
{
    // chi2 tables: dof=15 -> 30.58 @0.99, 44.26 @0.9999. The
    // Wilson-Hilferty approximation should land within a few percent.
    const double c99 = obs::chiSquareCritical(15, 0.99);
    const double c9999 = obs::chiSquareCritical(15, 0.9999);
    EXPECT_NEAR(c99, 30.58, 1.5);
    EXPECT_NEAR(c9999, 44.26, 2.0);
    EXPECT_LT(c99, c9999);
    EXPECT_LT(c9999, obs::chiSquareCritical(31, 0.9999));
}

TEST(ChiSquare, UniformStatisticSeparatesFlatFromSkewed)
{
    const std::vector<std::uint64_t> flat(16, 1000);
    EXPECT_DOUBLE_EQ(obs::chiSquareUniform(flat), 0.0);

    std::vector<std::uint64_t> skewed(16, 0);
    skewed[3] = 16000;
    EXPECT_GT(obs::chiSquareUniform(skewed),
              obs::chiSquareCritical(15, 0.9999));

    // Small honest fluctuations stay well under the critical value.
    std::vector<std::uint64_t> noisy(16, 1000);
    for (std::size_t i = 0; i < noisy.size(); ++i)
        noisy[i] += (i % 2) ? 30 : -30;
    EXPECT_LT(obs::chiSquareUniform(noisy),
              obs::chiSquareCritical(15, 0.9999));
}

TEST(ChiSquare, TwoSampleSeparatesShapesNotSizes)
{
    const std::vector<std::uint64_t> a(16, 1000);
    const std::vector<std::uint64_t> same_shape_smaller(16, 250);
    EXPECT_NEAR(obs::twoSampleChiSquare(a, same_shape_smaller), 0.0,
                1e-9);

    std::vector<std::uint64_t> b(16, 1000);
    b[0] = 4000;
    b[15] = 50;
    const double stat = obs::twoSampleChiSquare(a, b);
    EXPECT_GT(stat, obs::chiSquareCritical(15, 0.9999));
    // Symmetric in its arguments.
    EXPECT_DOUBLE_EQ(stat, obs::twoSampleChiSquare(b, a));
}

TEST(Auditor, HonestPeriodicStreamPassesEveryCheck)
{
    constexpr std::uint64_t kLeaves = 1024;
    constexpr Cycles kPeriod{10};
    ObliviousnessAuditor auditor(AuditConfig{}, kLeaves, kPeriod,
                                 /*check_dummy_fill=*/true);

    // Mirror the controller's reporting order: idle-slot dummies are
    // drained first, then the request's paths, then the grant.
    Cycles expected_start{0};
    std::uint64_t seq = 0;
    for (std::uint64_t req = 0; req < 2000; ++req) {
        std::uint64_t dummies = (req % 5 == 0) ? 3 : 0;
        for (std::uint64_t d = 0; d < dummies; ++d) {
            auditor.onPath(PathKind::PeriodicDummy,
                           spreadLeaf(seq++, kLeaves));
        }
        const std::uint64_t paths = 1 + (req % 3);
        auditor.onPath(PathKind::Real, spreadLeaf(seq++, kLeaves));
        for (std::uint64_t p = 1; p < paths; ++p) {
            auditor.onPath(PathKind::PosMap,
                           spreadLeaf(seq++, kLeaves));
        }
        const Cycles start = expected_start + dummies * kPeriod;
        auditor.onGrant(start, paths);
        expected_start = start + paths * kPeriod;
    }

    // An honest Ring engine reports its scheduled evictions in exact
    // reverse-lexicographic order: g-th eviction = bit-reverse(g).
    for (std::uint64_t g = 0; g < 600; ++g) {
        auditor.onEvictionPath(Leaf{static_cast<std::uint32_t>(
            reverseBits(g % kLeaves, log2Floor(kLeaves)))});
    }

    const AuditReport rep = auditor.report();
    EXPECT_TRUE(rep.pass()) << rep.summary();
    for (const AuditCheck &c : rep.checks) {
        EXPECT_TRUE(c.evaluated) << c.name << " not evaluated\n"
                                 << rep.summary();
        EXPECT_TRUE(c.pass) << c.name << " failed\n" << rep.summary();
    }
    EXPECT_EQ(rep.realPaths, 2000u);
    EXPECT_EQ(auditor.pathsOfKind(PathKind::PeriodicDummy), 1200u);
}

TEST(Auditor, LeafReuseTripsUniformityAndFreshness)
{
    // The classic leak: a block keeps its leaf across accesses, so
    // the observed sequence clusters on one path.
    ObliviousnessAuditor auditor(AuditConfig{}, 1024);
    for (int i = 0; i < 1000; ++i)
        auditor.onPath(PathKind::Real, 7_leaf);

    const AuditReport rep = auditor.report();
    EXPECT_FALSE(rep.pass());
    EXPECT_FALSE(findCheck(rep, "leaf-uniformity-all").pass);
    EXPECT_FALSE(findCheck(rep, "leaf-uniformity-real").pass);
    EXPECT_FALSE(findCheck(rep, "remap-freshness").pass);
}

TEST(Auditor, BiasedRemapTripsUniformityWithoutRepeats)
{
    // Subtler leak: never the same leaf twice, but the low half of
    // the tree is favored 3:1.
    ObliviousnessAuditor auditor(AuditConfig{}, 1024);
    std::uint64_t seq = 0;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t half = (i % 4 == 0) ? 512 : 0;
        auditor.onPath(
            PathKind::Real,
            Leaf{static_cast<std::uint32_t>(half) +
                 spreadLeaf(seq++, 512).value()});
    }
    const AuditReport rep = auditor.report();
    EXPECT_FALSE(findCheck(rep, "leaf-uniformity-all").pass);
    EXPECT_TRUE(findCheck(rep, "remap-freshness").pass)
        << rep.summary();
}

TEST(Auditor, OffSlotGrantTripsTiming)
{
    ObliviousnessAuditor auditor(AuditConfig{}, 1024,
                                 /*period=*/Cycles{10});
    auditor.onPath(PathKind::Real, 3_leaf);
    auditor.onGrant(/*start=*/Cycles{5}, /*paths=*/1);

    const AuditReport rep = auditor.report();
    const AuditCheck &timing = findCheck(rep, "oint-timing");
    EXPECT_TRUE(timing.evaluated);
    EXPECT_FALSE(timing.pass);
    EXPECT_FALSE(rep.pass());
}

TEST(Auditor, SkippedDummyTripsFill)
{
    // Address-correlated dummy skipping: the schedule jumps ahead
    // three slots but no dummy accesses were performed for them.
    ObliviousnessAuditor auditor(AuditConfig{}, 1024,
                                 /*period=*/Cycles{10},
                                 /*check_dummy_fill=*/true);
    auditor.onPath(PathKind::Real, 3_leaf);
    auditor.onGrant(/*start=*/Cycles{0}, /*paths=*/1); // expected next: 10
    auditor.onPath(PathKind::Real, 9_leaf);
    auditor.onGrant(/*start=*/Cycles{40}, /*paths=*/1);

    const AuditReport rep = auditor.report();
    const AuditCheck &fill = findCheck(rep, "oint-dummy-fill");
    EXPECT_TRUE(fill.evaluated);
    EXPECT_FALSE(fill.pass);
    // Timing and accounting are clean; only the fill leaks.
    EXPECT_TRUE(findCheck(rep, "oint-timing").pass);
    EXPECT_TRUE(findCheck(rep, "path-accounting").pass);
}

TEST(Auditor, DemandDependentEvictionTripsSchedule)
{
    // Ring ORAM leak: an engine that evicts the just-read (demand)
    // path instead of the public reverse-lexicographic schedule.
    ObliviousnessAuditor auditor(AuditConfig{}, 1024);
    auditor.onEvictionPath(0_leaf);   // g=0: bitrev(0) = 0, honest
    auditor.onEvictionPath(7_leaf);   // g=1: expected bitrev(1) = 512
    auditor.onEvictionPath(256_leaf); // g=2: honest again

    const AuditReport rep = auditor.report();
    const AuditCheck &sched = findCheck(rep, "ring-eviction-schedule");
    EXPECT_TRUE(sched.evaluated);
    EXPECT_FALSE(sched.pass);
    EXPECT_EQ(sched.statistic, 1.0);
    EXPECT_FALSE(rep.pass());
}

TEST(Auditor, ReverseLexEvictionSequencePasses)
{
    // The honest schedule, wrapping past 2^L: every eviction path is
    // bit-reverse(g mod 1024) in order.
    ObliviousnessAuditor auditor(AuditConfig{}, 1024);
    for (std::uint64_t g = 0; g < 2500; ++g) {
        auditor.onEvictionPath(Leaf{static_cast<std::uint32_t>(
            reverseBits(g % 1024, 10))});
    }
    const AuditReport rep = auditor.report();
    const AuditCheck &sched = findCheck(rep, "ring-eviction-schedule");
    EXPECT_TRUE(sched.evaluated);
    EXPECT_TRUE(sched.pass) << rep.summary();
    EXPECT_EQ(auditor.evictionPaths(), 2500u);
}

TEST(Auditor, HiddenPathTripsAccounting)
{
    ObliviousnessAuditor auditor(AuditConfig{}, 1024,
                                 /*period=*/Cycles{10});
    auditor.onPath(PathKind::Real, 3_leaf);
    auditor.onPath(PathKind::Real, 11_leaf); // performed but not granted
    auditor.onGrant(/*start=*/Cycles{0}, /*paths=*/1);

    const AuditReport rep = auditor.report();
    const AuditCheck &acct = findCheck(rep, "path-accounting");
    EXPECT_TRUE(acct.evaluated);
    EXPECT_FALSE(acct.pass);
}

TEST(AuditorSystem, ShippedOramConfigsPassTheAudit)
{
    const std::vector<TraceRecord> records =
        profileRecords("cholesky", 0.02);

    struct Case
    {
        MemScheme scheme;
        bool periodic;
    };
    const Case cases[] = {
        {MemScheme::OramBaseline, false},
        {MemScheme::OramStatic, false},
        {MemScheme::OramDynamic, false},
        {MemScheme::OramDynamic, true},
    };
    for (const Case &c : cases) {
        SystemConfig cfg = defaultSystemConfig();
        cfg.scheme = c.scheme;
        cfg.controller.periodic.enabled = c.periodic;
        cfg.audit.enabled = true;

        System system(cfg);
        ASSERT_NE(system.auditor(), nullptr)
            << schemeName(c.scheme);
        ReplayGenerator gen(records);
        system.run(gen); // panics internally on a failed audit

        const AuditReport rep = system.auditor()->report();
        EXPECT_TRUE(rep.pass())
            << schemeName(c.scheme) << "\n" << rep.summary();
        EXPECT_GE(rep.realPaths, cfg.audit.minSamples)
            << schemeName(c.scheme)
            << ": too few samples to mean anything";
        const AuditCheck &timing = findCheck(rep, "oint-timing");
        EXPECT_EQ(timing.evaluated, c.periodic)
            << schemeName(c.scheme);
    }
}

TEST(AuditorSystem, PrefetchSchemeGatesFillCheckOff)
{
    // The traditional-prefetcher path schedules without draining
    // idle slots first, so the System wiring must keep oint-timing
    // on but oint-dummy-fill off for that scheme.
    SystemConfig cfg = defaultSystemConfig();
    cfg.scheme = MemScheme::OramPrefetch;
    cfg.controller.periodic.enabled = true;
    cfg.audit.enabled = true;

    System system(cfg);
    ASSERT_NE(system.auditor(), nullptr);
    ReplayGenerator gen(profileRecords("cholesky", 0.02));
    system.run(gen);

    const AuditReport rep = system.auditor()->report();
    EXPECT_TRUE(rep.pass()) << rep.summary();
    EXPECT_TRUE(findCheck(rep, "oint-timing").evaluated);
    EXPECT_FALSE(findCheck(rep, "oint-dummy-fill").evaluated);
}

TEST(AuditorSystem, DramSchemeNeverBuildsAnAuditor)
{
    SystemConfig cfg = defaultSystemConfig();
    cfg.scheme = MemScheme::Dram;
    cfg.audit.enabled = true;
    System system(cfg);
    EXPECT_EQ(system.auditor(), nullptr);
}

TEST(AuditorSystem, EnvVarEnablesTheAuditor)
{
    SystemConfig cfg = defaultSystemConfig();
    cfg.scheme = MemScheme::OramBaseline;
    ASSERT_FALSE(cfg.audit.enabled);

    // The suite itself may run under PRORAM_AUDIT=1 (CI's audited
    // sanitize step does exactly that); save and restore it.
    const char *ambient = std::getenv("PRORAM_AUDIT");
    const std::string saved = ambient ? ambient : "";

    ::unsetenv("PRORAM_AUDIT");
    {
        System plain(cfg);
        EXPECT_EQ(plain.auditor(), nullptr);
    }
    ::setenv("PRORAM_AUDIT", "1", 1);
    {
        System audited(cfg);
        EXPECT_NE(audited.auditor(), nullptr);
    }
    ::setenv("PRORAM_AUDIT", "0", 1);
    {
        System off(cfg);
        EXPECT_EQ(off.auditor(), nullptr);
    }
    if (ambient)
        ::setenv("PRORAM_AUDIT", saved.c_str(), 1);
    else
        ::unsetenv("PRORAM_AUDIT");
}

TEST(AuditorSystem, DifferentialReplayCannotTellWorkloadsApart)
{
    // Two very different logical access patterns; the public leaf
    // distributions must be statistically indistinguishable.
    SystemConfig cfg = defaultSystemConfig();
    cfg.scheme = MemScheme::OramDynamic;

    const AuditReport rep = obs::auditDifferentialReplay(
        cfg, profileRecords("cholesky", 0.02),
        profileRecords("radix", 0.02));
    const AuditCheck &diff = findCheck(rep, "differential-replay");
    EXPECT_TRUE(diff.evaluated) << rep.summary();
    EXPECT_TRUE(diff.pass) << rep.summary();
    EXPECT_TRUE(rep.pass());
}

} // namespace
} // namespace proram
