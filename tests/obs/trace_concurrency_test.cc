/**
 * @file
 * Concurrency tests for the lock-free ring tracer driven through the
 * util::ThreadPool grid runner - the exact pairing the parallel
 * experiment sweep runs in production. These tests are the workload
 * behind CI's ThreadSanitizer job (ISSUE 5 race analysis); they also
 * run in the normal suites, where the assertions below check the
 * counting invariants that survive concurrency.
 *
 * What the tracer guarantees under concurrent record() (and what TSan
 * validates, see obs/trace.cc):
 *  - every record() lands exactly once in the per-category counters
 *    (fetch_add, relaxed: counters are monotonic totals with no
 *    ordering obligations);
 *  - ring slots are claimed uniquely via fetch_add on the cursor, so
 *    two recorders never interleave within one slot *unless* the ring
 *    wraps a full lap mid-write - the documented torn-slot case that
 *    writeJson tolerates and the capacity here avoids;
 *  - enable/disable flips are racy-by-design relaxed loads: a recorder
 *    may observe the old value for one event, never anything torn.
 */

#include "obs/trace.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <vector>

#include "util/thread_pool.hh"

#if PRORAM_TRACE_ENABLED

namespace proram
{
namespace
{

/** RAII: enable an empty sink; restore disabled + clear on exit. */
class SinkSession
{
  public:
    SinkSession()
    {
        obs::TraceSink::instance().clear();
        obs::TraceSink::setEnabled(true);
    }
    ~SinkSession()
    {
        obs::TraceSink::setEnabled(false);
        obs::TraceSink::instance().clear();
    }
};

std::uint64_t
countFor(const char *cat)
{
    for (const auto &[name, count] :
         obs::TraceSink::instance().categoryCounts()) {
        if (name == cat)
            return count;
    }
    return 0;
}

TEST(TraceConcurrency, PooledRecordersCountEveryEvent)
{
    SinkSession session;
    constexpr unsigned kWorkers = 4;
    constexpr std::uint64_t kEventsPerJob = 5000;
    constexpr unsigned kJobs = 8;

    util::ThreadPool pool(kWorkers);
    std::vector<std::future<void>> done;
    done.reserve(kJobs);
    for (unsigned j = 0; j < kJobs; ++j) {
        done.push_back(pool.submit([j] {
            for (std::uint64_t i = 0; i < kEventsPerJob; ++i) {
                PRORAM_TRACE_EVENT("tsan", "tick", "job",
                                   static_cast<std::uint64_t>(j));
                {
                    PRORAM_TRACE_SCOPE_ARG("tsan", "scope", "i", i);
                }
            }
        }));
    }
    for (auto &f : done)
        f.get();

    // fetch_add makes the category counters exact whatever the
    // interleaving; the ring itself may have wrapped (that only
    // affects which events survive, not how many were counted).
    EXPECT_EQ(countFor("tsan"), 2 * kEventsPerJob * kJobs);
    EXPECT_GE(obs::TraceSink::instance().size(), std::size_t{1});
}

TEST(TraceConcurrency, RecordersRaceEnableFlips)
{
    // Drive recorders while another thread toggles the enable flag:
    // the relaxed load in the macros means some events are dropped at
    // the flip boundary - by design - but nothing tears and counts
    // stay <= the attempted total.
    SinkSession session;
    constexpr std::uint64_t kAttempts = 20000;
    std::atomic<bool> stop{false};

    util::ThreadPool pool(3);
    auto recorder = [&] {
        for (std::uint64_t i = 0; i < kAttempts; ++i)
            PRORAM_TRACE_EVENT("flip", "evt", "i", i);
    };
    auto r1 = pool.submit(recorder);
    auto r2 = pool.submit(recorder);
    auto toggler = pool.submit([&] {
        bool on = false;
        while (!stop.load(std::memory_order_relaxed)) {
            obs::TraceSink::setEnabled(on);
            on = !on;
        }
        obs::TraceSink::setEnabled(true);
    });
    r1.get();
    r2.get();
    stop.store(true, std::memory_order_relaxed);
    toggler.get();

    EXPECT_LE(countFor("flip"), 2 * kAttempts);
}

TEST(TraceConcurrency, CategoryRegistryUnderContention)
{
    // First use of each category races compare_exchange_strong on the
    // registry slots; every thread must settle on one slot per
    // distinct literal (string-compare fallback across TUs).
    SinkSession session;
    static const char *const kCats[] = {"ca", "cb", "cc", "cd",
                                        "ce", "cf", "cg", "ch"};
    constexpr std::uint64_t kPerCat = 500;

    util::ThreadPool pool(4);
    std::vector<std::future<void>> done;
    for (unsigned t = 0; t < 4; ++t) {
        done.push_back(pool.submit([t] {
            for (std::uint64_t i = 0; i < kPerCat; ++i) {
                for (const char *cat : kCats)
                    obs::TraceSink::instance().record(
                        cat, "evt", 'i', 0, 0, nullptr, t);
            }
        }));
    }
    for (auto &f : done)
        f.get();

    for (const char *cat : kCats)
        EXPECT_EQ(countFor(cat), 4 * kPerCat) << cat;
}

TEST(TraceConcurrency, RingWrapUnderContention)
{
    // Force the full-lap collision the per-slot seqlock exists for:
    // a tiny ring laps dozens of times while four recorders hammer
    // it, so tickets `capacity` apart race for the same physical
    // slot. Counters must stay exact (they count attempts), dropped()
    // must equal the wrap overshoot, and the quiesced dump must see
    // only whole events.
    obs::TraceSink::instance().setCapacity(1024);
    SinkSession session;
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPerThread = 20000;

    util::ThreadPool pool(kThreads);
    std::vector<std::future<void>> done;
    for (unsigned t = 0; t < kThreads; ++t) {
        done.push_back(pool.submit([] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                PRORAM_TRACE_EVENT("wrap", "evt", "i", i);
        }));
    }
    for (auto &f : done)
        f.get();
    obs::TraceSink::setEnabled(false);

    const std::uint64_t total = kThreads * kPerThread;
    EXPECT_EQ(countFor("wrap"), total);
    EXPECT_EQ(obs::TraceSink::instance().size(), std::size_t{1024});
    EXPECT_EQ(obs::TraceSink::instance().dropped(), total - 1024);
    const std::string json = obs::TraceSink::instance().json();
    EXPECT_NE(json.find("\"wrap\""), std::string::npos);

    // Restore the default ring for the rest of the suite.
    obs::TraceSink::instance().setCapacity(std::size_t{1} << 18);
}

TEST(TraceConcurrency, JsonDumpAfterQuiescePreservesEvents)
{
    // The sanctioned dump protocol: quiesce recording, then read.
    SinkSession session;
    util::ThreadPool pool(4);
    std::vector<std::future<void>> done;
    for (unsigned t = 0; t < 4; ++t) {
        done.push_back(pool.submit([] {
            for (int i = 0; i < 1000; ++i)
                PRORAM_TRACE_EVENT("dump", "evt", "i",
                                   static_cast<std::uint64_t>(i));
        }));
    }
    for (auto &f : done)
        f.get();
    obs::TraceSink::setEnabled(false);

    const std::string json = obs::TraceSink::instance().json();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"dump\""), std::string::npos);
}

} // namespace
} // namespace proram

#endif // PRORAM_TRACE_ENABLED
