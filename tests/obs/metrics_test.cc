/**
 * @file
 * Metrics-registry tests: the proram-metrics-v1 JSON document must
 * parse, carry the registered labels/groups/histograms, and a full
 * System run must produce the document bench/snapshot.py ingests.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hh"
#include "sim/system.hh"
#include "sim/system_config.hh"
#include "stats/stats.hh"
#include "trace/benchmarks.hh"
#include "trace/trace_file.hh"

#include "mini_json.hh"

namespace proram
{
namespace
{

using obs::MetricsRegistry;
using test::JsonValue;
using test::parseJson;

TEST(MetricsRegistry, EmitsSchemaLabelsGroupsAndHistograms)
{
    stats::LogHistogram hist;
    for (std::uint64_t v : {0ULL, 1ULL, 3ULL, 3ULL, 100ULL})
        hist.sample(v);
    stats::Distribution dist;
    dist.sample(2.0);
    dist.sample(6.0);

    stats::StatGroup group("unit_group");
    group.addValue("answer", "a fixed value", [] { return 42.0; });

    MetricsRegistry reg;
    reg.addLabel("scheme", "unit_test");
    reg.addGroup(group);
    reg.addLogHistogram("latency", "unit latency", &hist);
    reg.addDistribution("occupancy", "unit occupancy", &dist);

    const JsonValue doc = parseJson(reg.json());
    EXPECT_EQ(doc.at("schema").str, obs::kMetricsSchema);
    EXPECT_EQ(doc.at("scheme").str, "unit_test");
    EXPECT_DOUBLE_EQ(
        doc.at("groups").at("unit_group").at("answer").number, 42.0);

    const JsonValue &lat = doc.at("histograms").at("latency");
    EXPECT_EQ(lat.at("desc").str, "unit latency");
    EXPECT_DOUBLE_EQ(lat.at("total").number, 5.0);
    EXPECT_DOUBLE_EQ(lat.at("min").number, 0.0);
    EXPECT_DOUBLE_EQ(lat.at("max").number, 100.0);
    EXPECT_NEAR(lat.at("mean").number, 107.0 / 5.0, 1e-12);

    // Buckets are emitted up to the last occupied one, each with a
    // consistent [lo, hi) range, and their counts add up.
    const JsonValue &buckets = lat.at("buckets");
    ASSERT_TRUE(buckets.isArray());
    ASSERT_FALSE(buckets.items.empty());
    double covered = 0.0;
    for (const JsonValue &b : buckets.items) {
        EXPECT_LT(b.at("lo").number, b.at("hi").number);
        covered += b.at("count").number;
    }
    EXPECT_DOUBLE_EQ(covered, 5.0);
    EXPECT_GE(lat.at("p99UpperBound").number, 100.0);

    const JsonValue &occ = doc.at("distributions").at("occupancy");
    EXPECT_DOUBLE_EQ(occ.at("mean").number, 4.0);
    EXPECT_DOUBLE_EQ(occ.at("min").number, 2.0);
    EXPECT_DOUBLE_EQ(occ.at("max").number, 6.0);
}

TEST(MetricsRegistry, SystemRunProducesIngestibleDocument)
{
    SystemConfig cfg = defaultSystemConfig();
    cfg.scheme = MemScheme::OramDynamic;
    System system(cfg);
    {
        std::vector<TraceRecord> records;
        auto gen = makeGenerator(profileByName("cholesky"), 0.02);
        TraceRecord rec;
        while (gen->next(rec))
            records.push_back(rec);
        ReplayGenerator replay(records);
        system.run(replay);
    }

    const JsonValue doc = parseJson(system.metricsJson());
    EXPECT_EQ(doc.at("schema").str, obs::kMetricsSchema);
    EXPECT_EQ(doc.at("scheme").str,
              schemeName(MemScheme::OramDynamic));

    // The controller group snapshot.py keys on must be present with
    // real counts.
    const JsonValue &ctl = doc.at("groups").at("oram_controller");
    EXPECT_GT(ctl.at("realRequests").number, 0.0);
    EXPECT_GT(ctl.at("pathAccesses").number, 0.0);

    // The observability histograms sampled once per request.
    const JsonValue &lat =
        doc.at("histograms").at("requestLatency");
    EXPECT_GT(lat.at("total").number, 0.0);
    EXPECT_GT(lat.at("mean").number, 0.0);
    EXPECT_EQ(doc.at("histograms").at("posMapWalkDepth")
                  .at("total").number,
              ctl.at("realRequests").number +
                  ctl.at("writebacks").number);

    // traceEventCounts is always present; its content depends on
    // whether the tracer is compiled in and enabled.
    EXPECT_TRUE(doc.has("traceEventCounts"));
}

} // namespace
} // namespace proram
