/**
 * @file
 * Event-tracer tests: ring-buffer wrap semantics, Chrome trace_event
 * JSON round-trip, layer coverage of the instrumented simulator (the
 * ISSUE acceptance asks for >= 8 distinct categories spanning
 * cpu -> controller -> oram -> dram), and bit-invisibility of
 * enabled tracing on simulation results.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "sim/system_config.hh"
#include "trace/benchmarks.hh"
#include "trace/trace_file.hh"

#include "mini_json.hh"

namespace proram
{
namespace
{

using obs::TraceSink;
using test::JsonValue;
using test::parseJson;

/** Quiesce, shrink, and clear the global sink around every test so
 *  cases cannot see each other's events. */
class TraceSinkTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        TraceSink::setEnabled(false);
        sink().setCapacity(1 << 12);
        sink().clear();
    }

    void
    TearDown() override
    {
        TraceSink::setEnabled(false);
        sink().setCapacity(1 << 12);
        sink().clear();
    }

    TraceSink &
    sink()
    {
        return TraceSink::instance();
    }
};

TEST_F(TraceSinkTest, DisabledSinkRecordsNothing)
{
    ASSERT_FALSE(TraceSink::enabled());
    PRORAM_TRACE_EVENT("test", "ignored", "v", 1);
    {
        PRORAM_TRACE_SCOPE("test", "ignoredScope");
    }
    obs::traceInstant("test", "ignoredDirect", "v", 2);
    EXPECT_EQ(sink().size(), 0u);
    EXPECT_EQ(sink().dropped(), 0u);
}

TEST_F(TraceSinkTest, RingWrapKeepsMostRecentAndCountsDropped)
{
    sink().setCapacity(1024);
    ASSERT_EQ(sink().capacity(), 1024u);
    TraceSink::setEnabled(true);

    constexpr std::uint64_t kEvents = 1500;
    for (std::uint64_t i = 0; i < kEvents; ++i)
        obs::traceInstant("test", "wrap", "i", i);
    TraceSink::setEnabled(false);

    EXPECT_EQ(sink().size(), 1024u);
    EXPECT_EQ(sink().dropped(), kEvents - 1024);

    // The survivors must be exactly the most recent 1024 events,
    // oldest first (events are emitted in timestamp order).
    const JsonValue doc = parseJson(sink().json());
    const JsonValue &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    ASSERT_EQ(events.items.size(), 1024u);
    EXPECT_EQ(events.items.front().at("args").at("i").number,
              static_cast<double>(kEvents - 1024));
    EXPECT_EQ(events.items.back().at("args").at("i").number,
              static_cast<double>(kEvents - 1));
    EXPECT_EQ(doc.at("otherData").at("droppedEvents").number,
              static_cast<double>(kEvents - 1024));
}

TEST_F(TraceSinkTest, JsonRoundTripsChromeSchema)
{
    // Drive the sink API directly (not the macros) so the schema is
    // covered in -DPRORAM_TRACING=OFF builds too.
    TraceSink::setEnabled(true);
    {
        obs::TraceScope scope("testcat", "scopedWork", "leaf", 42);
    }
    obs::traceInstant("testcat", "pointEvent", "block", 7);
    TraceSink::setEnabled(false);

    const JsonValue doc = parseJson(sink().json());
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("displayTimeUnit").str, "ns");

    const JsonValue &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    ASSERT_EQ(events.items.size(), 2u);

    const JsonValue *scoped = nullptr;
    const JsonValue *instant = nullptr;
    for (const JsonValue &e : events.items) {
        // Every event carries the keys Perfetto's JSON importer
        // requires.
        for (const char *key : {"name", "cat", "ph", "ts", "pid",
                                "tid"}) {
            EXPECT_TRUE(e.has(key)) << "missing " << key;
        }
        if (e.at("name").str == "scopedWork")
            scoped = &e;
        if (e.at("name").str == "pointEvent")
            instant = &e;
    }
    ASSERT_NE(scoped, nullptr);
    ASSERT_NE(instant, nullptr);

    EXPECT_EQ(scoped->at("ph").str, "X");
    EXPECT_EQ(scoped->at("cat").str, "testcat");
    EXPECT_TRUE(scoped->has("dur"));
    EXPECT_GE(scoped->at("dur").number, 0.0);
    EXPECT_EQ(scoped->at("args").at("leaf").number, 42.0);

    EXPECT_EQ(instant->at("ph").str, "i");
    EXPECT_FALSE(instant->has("dur"));
    EXPECT_EQ(instant->at("args").at("block").number, 7.0);
}

TEST_F(TraceSinkTest, CategoryCountsSurviveRingWrap)
{
    sink().setCapacity(1024);
    TraceSink::setEnabled(true);
    for (int i = 0; i < 2000; ++i)
        obs::traceInstant("catA", "e", nullptr, 0);
    for (int i = 0; i < 30; ++i)
        obs::traceInstant("catB", "e", nullptr, 0);
    TraceSink::setEnabled(false);

    std::uint64_t a = 0, b = 0;
    for (const auto &[name, count] : sink().categoryCounts()) {
        if (name == "catA")
            a = count;
        if (name == "catB")
            b = count;
    }
    // catA wrapped out of the ring; the counters still hold the full
    // totals (they feed the metrics registry, not the ring dump).
    EXPECT_EQ(a, 2000u);
    EXPECT_EQ(b, 30u);
}

#if PRORAM_TRACE_ENABLED

TEST_F(TraceSinkTest, TracedRunCoversEveryInstrumentedLayer)
{
    sink().setCapacity(1 << 14);
    TraceSink::setEnabled(true);

    // One insecure-DRAM run (cpu + dram categories) and one dynamic
    // ORAM run under periodic accesses (controller, posmap, plb,
    // oram, evict, dummy, policy).
    SystemConfig periodic_cfg = defaultSystemConfig();
    periodic_cfg.controller.periodic.enabled = true;
    Experiment exp(periodic_cfg, /*trace_scale=*/0.02);
    exp.runBenchmark(MemScheme::Dram, profileByName("cholesky"));
    exp.runBenchmark(MemScheme::OramDynamic,
                     profileByName("cholesky"));
    TraceSink::setEnabled(false);

    std::set<std::string> cats;
    for (const auto &[name, count] : sink().categoryCounts()) {
        EXPECT_GT(count, 0u);
        cats.insert(name);
    }
    for (const char *expected :
         {"cpu", "dram", "controller", "plb", "posmap", "oram",
          "evict", "dummy", "policy"}) {
        EXPECT_TRUE(cats.count(expected))
            << "category '" << expected << "' never fired";
    }
    EXPECT_GE(cats.size(), 8u);

    // The full dump of a real run must still be valid trace JSON.
    const JsonValue doc = parseJson(sink().json());
    const JsonValue &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    EXPECT_EQ(events.items.size(), sink().size());
    double last_ts = 0.0;
    for (const JsonValue &e : events.items) {
        ASSERT_TRUE(e.has("ph"));
        const std::string &ph = e.at("ph").str;
        EXPECT_TRUE(ph == "X" || ph == "i") << "phase " << ph;
        EXPECT_GE(e.at("ts").number, last_ts);
        last_ts = e.at("ts").number;
    }
}

TEST_F(TraceSinkTest, EnabledTracingIsBitInvisibleToResults)
{
    std::vector<TraceRecord> records;
    {
        auto gen = makeGenerator(profileByName("cholesky"), 0.02);
        TraceRecord rec;
        while (gen->next(rec))
            records.push_back(rec);
    }
    SystemConfig cfg = defaultSystemConfig();
    cfg.scheme = MemScheme::OramDynamic;

    auto run = [&] {
        System system(cfg);
        ReplayGenerator replay(records);
        return system.run(replay);
    };

    TraceSink::setEnabled(false);
    const SimResult quiet = run();
    TraceSink::setEnabled(true);
    const SimResult traced = run();
    TraceSink::setEnabled(false);

    EXPECT_GT(sink().size(), 0u) << "traced run recorded nothing";
    EXPECT_EQ(quiet.cycles, traced.cycles);
    EXPECT_EQ(quiet.references, traced.references);
    EXPECT_EQ(quiet.llcMisses, traced.llcMisses);
    EXPECT_EQ(quiet.writebacks, traced.writebacks);
    EXPECT_EQ(quiet.memAccesses, traced.memAccesses);
    EXPECT_EQ(quiet.pathAccesses, traced.pathAccesses);
    EXPECT_EQ(quiet.posMapAccesses, traced.posMapAccesses);
    EXPECT_EQ(quiet.bgEvictions, traced.bgEvictions);
    EXPECT_EQ(quiet.periodicDummies, traced.periodicDummies);
    EXPECT_EQ(quiet.merges, traced.merges);
    EXPECT_EQ(quiet.breaks, traced.breaks);
    EXPECT_DOUBLE_EQ(quiet.avgStashOccupancy,
                     traced.avgStashOccupancy);
}

#endif // PRORAM_TRACE_ENABLED

} // namespace
} // namespace proram
