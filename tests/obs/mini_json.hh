/**
 * @file
 * Minimal recursive-descent JSON reader for the observability tests:
 * just enough to round-trip what stats::JsonWriter and the trace sink
 * emit (objects, arrays, strings with escapes, numbers, bools, null).
 * Throws std::runtime_error on malformed input - a test failure, not
 * a recovery path. Test-only; the simulator itself never parses JSON.
 */

#ifndef PRORAM_TESTS_OBS_MINI_JSON_HH
#define PRORAM_TESTS_OBS_MINI_JSON_HH

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace proram::test
{

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> fields;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    bool has(const std::string &key) const
    {
        return kind == Kind::Object && fields.count(key) > 0;
    }

    const JsonValue &at(const std::string &key) const
    {
        if (!has(key))
            throw std::runtime_error("missing key: " + key);
        return fields.at(key);
    }
};

class MiniJsonParser
{
  public:
    explicit MiniJsonParser(const std::string &text) : text_(text) {}

    JsonValue parse()
    {
        const JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            throw std::runtime_error("trailing JSON content");
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            throw std::runtime_error("unexpected end of JSON");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c) {
            throw std::runtime_error(std::string("expected '") + c +
                                     "' at offset " +
                                     std::to_string(pos_));
        }
        ++pos_;
    }

    bool consume(char c)
    {
        if (peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue parseValue()
    {
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            parseLiteral("null");
            return JsonValue{};
          default:
            return parseNumber();
        }
    }

    JsonValue parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        if (consume('}'))
            return v;
        do {
            JsonValue key = parseString();
            expect(':');
            v.fields.emplace(key.str, parseValue());
        } while (consume(','));
        expect('}');
        return v;
    }

    JsonValue parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        if (consume(']'))
            return v;
        do {
            v.items.push_back(parseValue());
        } while (consume(','));
        expect(']');
        return v;
    }

    JsonValue parseString()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        expect('"');
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    throw std::runtime_error("bad escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case 'n': c = '\n'; break;
                  case 'r': c = '\r'; break;
                  case 't': c = '\t'; break;
                  case 'u': {
                    // \uXXXX: decode latin-1 range only (the writer
                    // escapes raw control bytes this way).
                    if (pos_ + 4 > text_.size())
                        throw std::runtime_error("bad \\u escape");
                    const unsigned code = static_cast<unsigned>(
                        std::stoul(text_.substr(pos_, 4), nullptr, 16));
                    pos_ += 4;
                    c = static_cast<char>(code & 0xff);
                    break;
                  }
                  default:
                    throw std::runtime_error("bad escape char");
                }
            }
            v.str.push_back(c);
        }
        expect('"');
        return v;
    }

    JsonValue parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (peek() == 't') {
            parseLiteral("true");
            v.boolean = true;
        } else {
            parseLiteral("false");
            v.boolean = false;
        }
        return v;
    }

    JsonValue parseNumber()
    {
        skipWs();
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        if (pos_ == start)
            throw std::runtime_error("expected number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = std::stod(text_.substr(start, pos_ - start));
        return v;
    }

    void parseLiteral(const char *lit)
    {
        skipWs();
        for (const char *p = lit; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                throw std::runtime_error("bad literal");
            ++pos_;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

inline JsonValue
parseJson(const std::string &text)
{
    return MiniJsonParser(text).parse();
}

} // namespace proram::test

#endif // PRORAM_TESTS_OBS_MINI_JSON_HH
