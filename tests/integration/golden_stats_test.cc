/**
 * @file
 * Fixed-seed golden statistics: a fig08-tiny grid (two SPLASH-2
 * profiles x three ORAM schemes at trace scale 0.02) must reproduce
 * the exact scheme statistics captured from the seed implementation.
 *
 * This is the guard for "the memory layout is an optimization, not a
 * behavior change": the dense stash's insertion-ordered iteration,
 * the slot arena's first-dummy placement, and the array-backed PLB
 * LRU must make bit-identical decisions to the containers they
 * replaced. Any divergence in eviction order, PLB victim choice, or
 * remap visibility shows up here as a changed count.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/arena.hh"
#include "oram/evict_kernel.hh"
#include "sim/experiment.hh"
#include "sim/system_config.hh"
#include "trace/benchmarks.hh"

namespace proram
{
namespace
{

struct Golden
{
    const char *profile;
    MemScheme scheme;
    std::uint64_t cycles;
    std::uint64_t pathAccesses;
    std::uint64_t posMapAccesses;
    std::uint64_t bgEvictions;
    std::uint64_t prefetchHits;
    std::uint64_t prefetchMisses;
    std::uint64_t merges;
    std::uint64_t breaks;
};

// Captured from the seed implementation (unordered_map stash,
// per-bucket vectors, list LRU) at commit 2a24917, with
// Experiment(defaultSystemConfig(), /*scale=*/0.02), seed defaults.
const Golden kGoldens[] = {
    {"cholesky", MemScheme::OramBaseline,
     3155386, 4894, 1406, 0, 0, 0, 0, 0},
    {"cholesky", MemScheme::OramStatic,
     2462375, 4077, 1380, 67, 0, 8, 0, 0},
    {"cholesky", MemScheme::OramDynamic,
     3155386, 4894, 1406, 0, 0, 0, 868, 0},
    {"radix", MemScheme::OramBaseline,
     4144036, 6699, 2729, 0, 0, 0, 0, 0},
    {"radix", MemScheme::OramStatic,
     3724924, 6252, 2590, 63, 0, 27, 0, 0},
    {"radix", MemScheme::OramDynamic,
     4144036, 6699, 2729, 0, 0, 0, 401, 0},
};

void
expectGolden(const Golden &g, const SimResult &r)
{
    EXPECT_EQ(r.cycles, Cycles{g.cycles});
    EXPECT_EQ(r.pathAccesses, g.pathAccesses);
    EXPECT_EQ(r.posMapAccesses, g.posMapAccesses);
    EXPECT_EQ(r.bgEvictions, g.bgEvictions);
    EXPECT_EQ(r.prefetchHits, g.prefetchHits);
    EXPECT_EQ(r.prefetchMisses, g.prefetchMisses);
    EXPECT_EQ(r.merges, g.merges);
    EXPECT_EQ(r.breaks, g.breaks);
}

TEST(GoldenStats, Fig08TinyMatchesSeedCapture)
{
    Experiment exp(defaultSystemConfig(), /*trace_scale=*/0.02);
    for (const Golden &g : kGoldens) {
        const SimResult r =
            exp.runBenchmark(g.scheme, profileByName(g.profile));
        SCOPED_TRACE(std::string(g.profile) + "/" + r.scheme);
        expectGolden(g, r);
    }
}

struct PeriodicGolden
{
    const char *profile;
    MemScheme scheme;
    std::uint64_t cycles;
    std::uint64_t pathAccesses;
    std::uint64_t posMapAccesses;
    std::uint64_t bgEvictions;
    std::uint64_t periodicDummies;
    std::uint64_t prefetchHits;
    std::uint64_t prefetchMisses;
    std::uint64_t merges;
    std::uint64_t breaks;
};

// Periodic (Oint) mode: same grid with
// controller.periodic.enabled = true at the default interval.
// Captured from commit 9d55793 (pre-SoA), identical under the SoA
// stash + counting-sort eviction scan.
const PeriodicGolden kPeriodicGoldens[] = {
    {"cholesky", MemScheme::OramBaseline,
     3483940, 4967, 1406, 0, 73, 0, 0, 0, 0},
    {"cholesky", MemScheme::OramStatic,
     2732300, 4160, 1380, 10, 140, 0, 8, 0, 0},
    {"cholesky", MemScheme::OramDynamic,
     3483940, 4967, 1406, 0, 73, 0, 0, 868, 0},
    {"radix", MemScheme::OramBaseline,
     4575096, 6701, 2729, 0, 2, 0, 0, 0, 0},
    {"radix", MemScheme::OramStatic,
     4128919, 6295, 2590, 93, 13, 0, 27, 0, 0},
    {"radix", MemScheme::OramDynamic,
     4575096, 6701, 2729, 0, 2, 0, 0, 401, 0},
};

TEST(GoldenStats, Fig08TinyPeriodicModeMatchesCapture)
{
    Experiment exp(defaultSystemConfig(), /*trace_scale=*/0.02);
    for (const PeriodicGolden &g : kPeriodicGoldens) {
        const SimResult r = exp.runWith(
            g.scheme,
            [](SystemConfig &cfg) {
                cfg.controller.periodic.enabled = true;
            },
            [&] {
                return makeGenerator(profileByName(g.profile), 0.02);
            });
        SCOPED_TRACE(std::string(g.profile) + "/" + r.scheme);
        EXPECT_EQ(r.cycles, Cycles{g.cycles});
        EXPECT_EQ(r.pathAccesses, g.pathAccesses);
        EXPECT_EQ(r.posMapAccesses, g.posMapAccesses);
        EXPECT_EQ(r.bgEvictions, g.bgEvictions);
        EXPECT_EQ(r.periodicDummies, g.periodicDummies);
        EXPECT_EQ(r.prefetchHits, g.prefetchHits);
        EXPECT_EQ(r.prefetchMisses, g.prefetchMisses);
        EXPECT_EQ(r.merges, g.merges);
        EXPECT_EQ(r.breaks, g.breaks);
    }
}

TEST(GoldenStats, GoldensHoldUnderEveryArenaBackend)
{
    // The slot arena's storage backend is a memory-layout choice,
    // not a behavior change: lazily materialized chunks must read
    // exactly like the dense lanes they replace, so the full golden
    // grid re-runs bit-identically on every backend. Small chunks
    // on purpose - plenty of chunk-boundary and first-touch traffic.
    Experiment exp(defaultSystemConfig(), /*trace_scale=*/0.02);
    std::vector<ArenaOptions> backends;
    ArenaOptions sparse;
    sparse.kind = ArenaKind::Sparse;
    sparse.chunkBuckets = 64;
    backends.push_back(sparse);
#if defined(__linux__)
    ArenaOptions mm;
    mm.kind = ArenaKind::Mmap;
    mm.chunkBuckets = 128;
    backends.push_back(mm);
#endif
    for (const ArenaOptions &arena : backends) {
        for (const Golden &g : kGoldens) {
            const SimResult r = exp.runWith(
                g.scheme,
                [&arena](SystemConfig &cfg) { cfg.oram.arena = arena; },
                [&] {
                    return makeGenerator(profileByName(g.profile), 0.02);
                });
            SCOPED_TRACE(std::string(arenaKindName(arena.kind)) + "/" +
                         g.profile + "/" + r.scheme);
            expectGolden(g, r);
        }
    }
}

TEST(GoldenStats, GoldensHoldUnderEveryEvictKernel)
{
    // The eviction-scan kernels must be interchangeable down to the
    // last stat: re-run one golden cell with dispatch pinned to each
    // variant the host can run.
    Experiment exp(defaultSystemConfig(), /*trace_scale=*/0.02);
    const Golden &g = kGoldens[1]; // cholesky / OramStatic
    for (const evict::Kernel k :
         {evict::Kernel::Scalar, evict::Kernel::Swar,
          evict::Kernel::Avx2}) {
        if (!evict::kernelAvailable(k))
            continue;
        evict::forceKernel(k);
        const SimResult r =
            exp.runBenchmark(g.scheme, profileByName(g.profile));
        SCOPED_TRACE(std::string("kernel=") + evict::kernelName(k));
        expectGolden(g, r);
    }
    evict::forceKernel(evict::Kernel::Auto);
}

} // namespace
} // namespace proram
