/**
 * @file
 * Fixed-seed golden statistics: a fig08-tiny grid (two SPLASH-2
 * profiles x three ORAM schemes at trace scale 0.02) must reproduce
 * the exact scheme statistics captured from the seed implementation.
 *
 * This is the guard for "the memory layout is an optimization, not a
 * behavior change": the dense stash's insertion-ordered iteration,
 * the slot arena's first-dummy placement, and the array-backed PLB
 * LRU must make bit-identical decisions to the containers they
 * replaced. Any divergence in eviction order, PLB victim choice, or
 * remap visibility shows up here as a changed count.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/system_config.hh"
#include "trace/benchmarks.hh"

namespace proram
{
namespace
{

struct Golden
{
    const char *profile;
    MemScheme scheme;
    std::uint64_t cycles;
    std::uint64_t pathAccesses;
    std::uint64_t posMapAccesses;
    std::uint64_t bgEvictions;
    std::uint64_t prefetchHits;
    std::uint64_t prefetchMisses;
    std::uint64_t merges;
    std::uint64_t breaks;
};

// Captured from the seed implementation (unordered_map stash,
// per-bucket vectors, list LRU) at commit 2a24917, with
// Experiment(defaultSystemConfig(), /*scale=*/0.02), seed defaults.
const Golden kGoldens[] = {
    {"cholesky", MemScheme::OramBaseline,
     3155386, 4894, 1406, 0, 0, 0, 0, 0},
    {"cholesky", MemScheme::OramStatic,
     2462375, 4077, 1380, 67, 0, 8, 0, 0},
    {"cholesky", MemScheme::OramDynamic,
     3155386, 4894, 1406, 0, 0, 0, 868, 0},
    {"radix", MemScheme::OramBaseline,
     4144036, 6699, 2729, 0, 0, 0, 0, 0},
    {"radix", MemScheme::OramStatic,
     3724924, 6252, 2590, 63, 0, 27, 0, 0},
    {"radix", MemScheme::OramDynamic,
     4144036, 6699, 2729, 0, 0, 0, 401, 0},
};

TEST(GoldenStats, Fig08TinyMatchesSeedCapture)
{
    Experiment exp(defaultSystemConfig(), /*trace_scale=*/0.02);
    for (const Golden &g : kGoldens) {
        const SimResult r =
            exp.runBenchmark(g.scheme, profileByName(g.profile));
        SCOPED_TRACE(std::string(g.profile) + "/" + r.scheme);
        EXPECT_EQ(r.cycles, g.cycles);
        EXPECT_EQ(r.pathAccesses, g.pathAccesses);
        EXPECT_EQ(r.posMapAccesses, g.posMapAccesses);
        EXPECT_EQ(r.bgEvictions, g.bgEvictions);
        EXPECT_EQ(r.prefetchHits, g.prefetchHits);
        EXPECT_EQ(r.prefetchMisses, g.prefetchMisses);
        EXPECT_EQ(r.merges, g.merges);
        EXPECT_EQ(r.breaks, g.breaks);
    }
}

} // namespace
} // namespace proram
