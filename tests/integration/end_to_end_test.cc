/** @file End-to-end integration: realistic applications over the
 *  public API, exercising the full stack. */

#include <gtest/gtest.h>

#include <vector>

#include "oram/integrity.hh"
#include "sim/experiment.hh"
#include "sim/secure_memory.hh"

namespace proram
{
namespace
{

SystemConfig
cfg(MemScheme scheme)
{
    SystemConfig c = defaultSystemConfig();
    c.scheme = scheme;
    c.oram.numDataBlocks = 1ULL << 13;
    return c;
}

/** An in-place matrix transpose over SecureMemory. */
TEST(EndToEnd, ObliviousMatrixTranspose)
{
    SecureMemory mem(cfg(MemScheme::OramDynamic));
    const std::uint64_t n = 64;
    auto at = [&](std::uint64_t r, std::uint64_t c) {
        return (r * n + c) * 128;
    };
    for (std::uint64_t r = 0; r < n; ++r) {
        for (std::uint64_t c = 0; c < n; ++c)
            mem.write(at(r, c), r * 1000 + c);
    }
    for (std::uint64_t r = 0; r < n; ++r) {
        for (std::uint64_t c = r + 1; c < n; ++c) {
            const auto a = mem.read(at(r, c));
            const auto b = mem.read(at(c, r));
            mem.write(at(r, c), b);
            mem.write(at(c, r), a);
        }
    }
    for (std::uint64_t r = 0; r < n; ++r) {
        for (std::uint64_t c = 0; c < n; ++c)
            ASSERT_EQ(mem.read(at(r, c)), c * 1000 + r);
    }
    EXPECT_TRUE(checkIntegrity(mem.controller().oram()).ok);
    EXPECT_GT(mem.stats().merges, 0u);
}

/** A hash-table build + probe (random access pattern). */
TEST(EndToEnd, ObliviousHashTable)
{
    SecureMemory mem(cfg(MemScheme::OramDynamic));
    const std::uint64_t buckets = 4096;
    auto slot = [&](std::uint64_t k) {
        return ((k * 2654435761ULL) % buckets) * 128;
    };
    for (std::uint64_t k = 1; k <= 1500; ++k)
        mem.write(slot(k), k);
    std::uint64_t found = 0;
    for (std::uint64_t k = 1; k <= 1500; ++k)
        found += mem.read(slot(k)) != 0 ? 1 : 0;
    EXPECT_EQ(found, 1500u);
    EXPECT_TRUE(checkIntegrity(mem.controller().oram()).ok);
}

/** Grid stencil sweep (the ocean-style pattern PrORAM targets). */
TEST(EndToEnd, StencilSweepBenefitsFromPrefetching)
{
    SystemConfig base_cfg = cfg(MemScheme::OramBaseline);
    SystemConfig dyn_cfg = cfg(MemScheme::OramDynamic);
    auto sweep = [](SecureMemory &mem) {
        const std::uint64_t cells = 6000;
        for (int pass = 0; pass < 3; ++pass) {
            for (std::uint64_t i = 1; i + 1 < cells; ++i) {
                const auto l = mem.read((i - 1) * 128);
                const auto c = mem.read(i * 128);
                const auto r = mem.read((i + 1) * 128);
                mem.write(i * 128, l + c + r);
            }
        }
    };
    SecureMemory base(base_cfg), dyn(dyn_cfg);
    sweep(base);
    sweep(dyn);
    EXPECT_LT(dyn.now(), base.now())
        << "dynamic super blocks must accelerate streaming sweeps";
    EXPECT_LT(dyn.stats().pathAccesses, base.stats().pathAccesses);
}

/** Full trace-driven runs complete and agree with CPU accounting. */
TEST(EndToEnd, TraceRunsAllSchemes)
{
    Experiment exp(defaultSystemConfig(), 0.05);
    const auto &prof = profileByName("cholesky");
    for (MemScheme s :
         {MemScheme::Dram, MemScheme::DramPrefetch,
          MemScheme::OramBaseline, MemScheme::OramPrefetch,
          MemScheme::OramStatic, MemScheme::OramDynamic}) {
        const auto res = exp.runBenchmark(s, prof);
        EXPECT_GT(res.cycles, Cycles{0}) << schemeName(s);
        EXPECT_EQ(res.references, prof.numAccesses / 20)
            << schemeName(s);
        EXPECT_GT(res.memAccesses, 0u) << schemeName(s);
    }
}

/** The whole benchmark registry is runnable. */
TEST(EndToEnd, EveryProfileRuns)
{
    Experiment exp(defaultSystemConfig(), 0.01);
    for (const auto *suite :
         {&splash2Suite(), &spec06Suite(), &dbmsSuite()}) {
        for (const auto &p : *suite) {
            const auto res =
                exp.runBenchmark(MemScheme::OramDynamic, p);
            EXPECT_GT(res.cycles, Cycles{0}) << p.name;
        }
    }
}

} // namespace
} // namespace proram
