/**
 * @file
 * Batched request pipeline determinism: the TraceCpu drive loop
 * amortizes decode and stats flushes over RequestBatch-sized chunks,
 * but per-record semantics (access order, epoch rolls, scheduler
 * decisions) are untouched - so every batch size must produce a
 * bit-identical SimResult. This is the contract that lets the batch
 * size be a pure performance knob.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "cpu/request_batch.hh"
#include "sim/experiment.hh"
#include "trace/benchmarks.hh"

namespace proram
{
namespace
{

void
expectSameResult(const SimResult &a, const SimResult &b,
                 const char *what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.references, b.references);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.writebacks, b.writebacks);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    EXPECT_EQ(a.pathAccesses, b.pathAccesses);
    EXPECT_EQ(a.posMapAccesses, b.posMapAccesses);
    EXPECT_EQ(a.bgEvictions, b.bgEvictions);
    EXPECT_EQ(a.periodicDummies, b.periodicDummies);
    EXPECT_EQ(a.prefetchHits, b.prefetchHits);
    EXPECT_EQ(a.prefetchMisses, b.prefetchMisses);
    EXPECT_EQ(a.merges, b.merges);
    EXPECT_EQ(a.breaks, b.breaks);
    EXPECT_DOUBLE_EQ(a.avgStashOccupancy, b.avgStashOccupancy);
}

SimResult
runWithBatch(const Experiment &exp, MemScheme scheme,
             std::uint32_t batch)
{
    return exp.runWith(
        scheme,
        [batch](SystemConfig &cfg) { cfg.cpuBatch = batch; },
        [&] { return makeGenerator(profileByName("cholesky"),
                                   exp.traceScale()); });
}

TEST(BatchedDrive, BatchSizeNeverChangesResults)
{
    Experiment exp(defaultSystemConfig(), /*trace_scale=*/0.02);
    const MemScheme schemes[] = {MemScheme::Dram,
                                 MemScheme::OramBaseline,
                                 MemScheme::OramDynamic};
    for (const MemScheme scheme : schemes) {
        const SimResult base = runWithBatch(exp, scheme, 1);
        expectSameResult(base, runWithBatch(exp, scheme, 7),
                         "batch 7 vs 1");
        expectSameResult(base, runWithBatch(exp, scheme, 64),
                         "batch 64 vs 1");
    }
}

TEST(BatchedDrive, ReplayFastPathMatchesLiveGenerator)
{
    // runReplay feeds pre-decoded records through the contiguous-copy
    // fillBatch; the live generator decodes per batch. Same records,
    // same machine - same stats.
    Experiment exp(defaultSystemConfig(), /*trace_scale=*/0.02);
    auto gen = makeGenerator(profileByName("radix"), 0.02);
    std::vector<TraceRecord> records;
    TraceRecord rec;
    while (gen->next(rec))
        records.push_back(rec);

    const SimResult live =
        exp.runBenchmark(MemScheme::OramDynamic,
                         profileByName("radix"));
    const SimResult replay =
        exp.runReplay(MemScheme::OramDynamic, records);
    expectSameResult(live, replay, "replay vs live");
}

TEST(BatchedDrive, BatchSizeFromEnvClampsToCapacity)
{
    ::setenv("PRORAM_BATCH", "9999", 1);
    EXPECT_EQ(batchSizeFromEnv(), RequestBatch::kCapacity);
    ::setenv("PRORAM_BATCH", "0", 1); // non-positive: fall to default
    EXPECT_EQ(batchSizeFromEnv(), RequestBatch::kDefaultSize);
    ::setenv("PRORAM_BATCH", "17", 1);
    EXPECT_EQ(batchSizeFromEnv(), 17u);
    ::unsetenv("PRORAM_BATCH");
    EXPECT_EQ(batchSizeFromEnv(), RequestBatch::kDefaultSize);
}

} // namespace
} // namespace proram
