/**
 * @file
 * Scheme-interface conformance (DESIGN.md §14): every OramScheme
 * implementation must satisfy the same controller-visible contract.
 * The grid drives both protocols through the full pipelined
 * controller at several worker counts with the dedup window on and
 * off, and requires trace-order payload semantics plus the structural
 * invariants after any interleaving. The schemes legitimately differ
 * in path counts and timing; they must NOT differ in what a request
 * observes.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "cpu/request_batch.hh"
#include "oram/integrity.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "util/logging.hh"

namespace proram
{
namespace
{

constexpr std::uint32_t kLineBytes = 128;

/** Deterministic xorshift trace over @p footprint_blocks data blocks. */
std::vector<TraceRecord>
makeTrace(std::size_t n, std::uint64_t footprint_blocks,
          std::uint64_t seed)
{
    std::vector<TraceRecord> records;
    records.reserve(n);
    std::uint64_t x = seed | 1;
    for (std::size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        TraceRecord rec;
        rec.addr = (x % footprint_blocks) * kLineBytes;
        rec.op = (x >> 32) % 4 == 0 ? OpType::Write : OpType::Read;
        records.push_back(rec);
    }
    return records;
}

SystemConfig
smallConfig(SchemeKind kind)
{
    SystemConfig cfg = defaultSystemConfig();
    cfg.oram.numDataBlocks = 1ULL << 12;
    cfg.oram.scheme = kind;
    return cfg;
}

/** Trace-order payload model: what every read/write must observe. */
std::vector<std::uint64_t>
expectedPayloads(const std::vector<TraceRecord> &records)
{
    std::vector<std::uint64_t> last(1ULL << 12, 0);
    std::vector<std::uint64_t> expect(records.size(), 0);
    for (std::size_t i = 0; i < records.size(); ++i) {
        const std::uint64_t block = records[i].addr / kLineBytes;
        if (records[i].op == OpType::Write)
            last[block] = (static_cast<std::uint64_t>(i) + 1) *
                          0x9E3779B97F4A7C15ULL;
        expect[i] = last[block];
    }
    return expect;
}

void
expectIntact(System &sys, const std::string &label)
{
    ASSERT_NE(sys.controller(), nullptr);
    const auto report = checkIntegrity(sys.controller()->oram());
    EXPECT_TRUE(report.ok)
        << label << ": " << report.violations.size()
        << " violations, first: "
        << (report.violations.empty() ? "" : report.violations.front());
}

class SchemeConformance
    : public ::testing::TestWithParam<
          std::tuple<SchemeKind, unsigned, int>>
{
};

TEST_P(SchemeConformance, PayloadsMatchTraceOrderAndTreeStaysIntact)
{
    const auto [kind, workers, window] = GetParam();
    const std::vector<TraceRecord> records =
        makeTrace(1200, 1ULL << 12, 0x5C4E3E);

    SystemConfig cfg = smallConfig(kind);
    cfg.scheme = MemScheme::OramDynamic;
    cfg.workers = workers;
    cfg.controller.dedupWindow = window;
    System sys(cfg);
    std::vector<std::uint64_t> payloads;
    const SimResult res = sys.runQueue(records, &payloads);

    EXPECT_EQ(res.references, records.size());
    EXPECT_GT(res.cycles, Cycles{0});
    EXPECT_EQ(payloads, expectedPayloads(records));
    expectIntact(sys, std::string(schemeKindName(kind)) + "_w" +
                          std::to_string(workers));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchemeConformance,
    ::testing::Combine(::testing::Values(SchemeKind::Path,
                                         SchemeKind::Ring),
                       ::testing::Values(1u, 2u, 8u),
                       ::testing::Values(0, 1)),
    [](const auto &info) {
        return std::string(schemeKindName(std::get<0>(info.param))) +
               "_w" + std::to_string(std::get<1>(info.param)) +
               "_win" + std::to_string(std::get<2>(info.param));
    });

TEST(SchemeConformance, SchemesObserveIdenticalPayloads)
{
    // The protocol choice is invisible to the memory semantics: the
    // same trace must read back the same values under either scheme,
    // serial and concurrent.
    const std::vector<TraceRecord> records =
        makeTrace(1500, 1ULL << 12, 0xFEED5);
    const std::vector<std::uint64_t> expect = expectedPayloads(records);

    for (const SchemeKind kind : {SchemeKind::Path, SchemeKind::Ring}) {
        for (const unsigned workers : {1u, 8u}) {
            SystemConfig cfg = smallConfig(kind);
            cfg.scheme = MemScheme::OramBaseline;
            cfg.workers = workers;
            System sys(cfg);
            std::vector<std::uint64_t> payloads;
            sys.runQueue(records, &payloads);
            EXPECT_EQ(payloads, expect)
                << schemeKindName(kind) << " workers=" << workers;
        }
    }
}

TEST(SchemeConformance, AuditedRunPassesOnBothSchemes)
{
    // System panics at end-of-run on an audit failure, so a clean
    // return proves the leaf-uniformity checks (and, for Ring, the
    // deterministic-eviction accounting check) held.
    const std::vector<TraceRecord> records =
        makeTrace(1200, 1ULL << 12, 0xAD17ED);
    for (const SchemeKind kind : {SchemeKind::Path, SchemeKind::Ring}) {
        SystemConfig cfg = smallConfig(kind);
        cfg.scheme = MemScheme::OramDynamic;
        cfg.audit.enabled = true;
        cfg.workers = 4;
        System sys(cfg);
        const SimResult res = sys.runQueue(records, nullptr);
        EXPECT_EQ(res.references, records.size());
        ASSERT_NE(sys.auditor(), nullptr);
        const obs::AuditReport rep = sys.auditor()->report();
        EXPECT_TRUE(rep.pass()) << schemeKindName(kind) << "\n"
                                << rep.summary();
        if (kind == SchemeKind::Ring) {
            // The Ring run must actually exercise the schedule check.
            EXPECT_GT(sys.auditor()->evictionPaths(), 0u);
        } else {
            EXPECT_EQ(sys.auditor()->evictionPaths(), 0u);
        }
    }
}

TEST(SchemeConformance, RingSurvivesSmallBucketAndBudgetCorners)
{
    // Early-reshuffle stress: Z=1 buckets with the minimum read
    // budget force a reshuffle on nearly every bucket touch, and an
    // eviction every access keeps the tiny buckets from starving the
    // stash. Payload semantics must hold regardless.
    const std::vector<TraceRecord> records =
        makeTrace(800, 1ULL << 12, 0xC0124E5);
    const std::vector<std::uint64_t> expect = expectedPayloads(records);

    for (const unsigned workers : {1u, 8u}) {
        SystemConfig cfg = smallConfig(SchemeKind::Ring);
        cfg.scheme = MemScheme::OramDynamic;
        cfg.workers = workers;
        cfg.oram.z = 1;
        cfg.oram.ringS = 1;
        cfg.oram.ringA = 1;
        cfg.oram.stashCapacity = 400;
        System sys(cfg);
        std::vector<std::uint64_t> payloads;
        sys.runQueue(records, &payloads);
        EXPECT_EQ(payloads, expect) << "workers=" << workers;
        expectIntact(sys, "ring_small_zs_w" + std::to_string(workers));
    }
}

TEST(SchemeConformance, MetricsLabelAndCountersNameTheScheme)
{
    const std::vector<TraceRecord> records =
        makeTrace(400, 1ULL << 12, 0x1ABE1);

    SystemConfig ring = smallConfig(SchemeKind::Ring);
    ring.scheme = MemScheme::OramBaseline;
    System rsys(ring);
    rsys.runQueue(records, nullptr);
    const std::string rjson = rsys.metricsJson();
    EXPECT_NE(rjson.find("\"oramScheme\":\"ring\""), std::string::npos)
        << rjson.substr(0, 200);
    EXPECT_NE(rjson.find("ringBucketReads"), std::string::npos);
    EXPECT_NE(rjson.find("ringEarlyReshuffles"), std::string::npos);

    SystemConfig path = smallConfig(SchemeKind::Path);
    path.scheme = MemScheme::OramBaseline;
    System psys(path);
    psys.runQueue(records, nullptr);
    EXPECT_NE(psys.metricsJson().find("\"oramScheme\":\"path\""),
              std::string::npos);
}

TEST(SchemeConformance, SerialRunMatchesQueueDrainPerScheme)
{
    // run() (trace CPU, serial protocol) and runQueue() at one worker
    // drive the same engine; a scheme whose serial and staged paths
    // disagree would diverge here via the integrity sweep.
    for (const SchemeKind kind : {SchemeKind::Path, SchemeKind::Ring}) {
        const std::vector<TraceRecord> records =
            makeTrace(1000, 1ULL << 12, 0x5E71A1);
        SystemConfig cfg = smallConfig(kind);
        cfg.scheme = MemScheme::OramBaseline;
        cfg.workers = 1;
        System sys(cfg);
        std::vector<std::uint64_t> payloads;
        const SimResult res = sys.runQueue(records, &payloads);
        EXPECT_EQ(res.references, records.size());
        EXPECT_EQ(payloads, expectedPayloads(records));
        expectIntact(sys, std::string("serial_") + schemeKindName(kind));
    }
}

} // namespace
} // namespace proram
