/**
 * @file
 * Concurrent queue-drain correctness (DESIGN.md §11). The pipelined
 * controller may interleave requests to distinct blocks arbitrarily,
 * but every request must observe the same payload it would in trace
 * order (the RequestSequencer holds same-block requests back), and the
 * ORAM invariants must hold after any interleaving. Timing and path
 * counts are schedule-dependent and deliberately not compared across
 * worker counts; workers == 1 is the exact serial protocol.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cpu/request_batch.hh"
#include "oram/integrity.hh"
#include "oram/scheme.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "util/logging.hh"

namespace proram
{
namespace
{

constexpr std::uint32_t kLineBytes = 128;

/** Deterministic xorshift trace over @p footprint_blocks data blocks. */
std::vector<TraceRecord>
makeTrace(std::size_t n, std::uint64_t footprint_blocks,
          std::uint64_t seed)
{
    std::vector<TraceRecord> records;
    records.reserve(n);
    std::uint64_t x = seed | 1;
    for (std::size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        TraceRecord rec;
        rec.addr = (x % footprint_blocks) * kLineBytes;
        rec.op = (x >> 32) % 4 == 0 ? OpType::Write : OpType::Read;
        records.push_back(rec);
    }
    return records;
}

SystemConfig
smallConfig()
{
    SystemConfig cfg = defaultSystemConfig();
    cfg.oram.numDataBlocks = 1ULL << 12;
    return cfg;
}

/** Trace-order payload model: what every read/write must observe. */
std::vector<std::uint64_t>
expectedPayloads(const std::vector<TraceRecord> &records)
{
    std::vector<std::uint64_t> last(1ULL << 12, 0);
    std::vector<std::uint64_t> expect(records.size(), 0);
    for (std::size_t i = 0; i < records.size(); ++i) {
        const std::uint64_t block = records[i].addr / kLineBytes;
        if (records[i].op == OpType::Write)
            last[block] = (static_cast<std::uint64_t>(i) + 1) *
                          0x9E3779B97F4A7C15ULL;
        expect[i] = last[block];
    }
    return expect;
}

class ConcurrentDrive
    : public ::testing::TestWithParam<std::tuple<MemScheme, unsigned>>
{
};

TEST_P(ConcurrentDrive, PayloadsMatchTraceOrder)
{
    const auto [scheme, workers] = GetParam();
    const std::vector<TraceRecord> records =
        makeTrace(1500, 1ULL << 12, 0xC0FFEE);

    Experiment exp(smallConfig());
    std::vector<std::uint64_t> payloads;
    const SimResult res =
        exp.runConcurrent(scheme, records, workers, &payloads);

    EXPECT_EQ(res.references, records.size());
    EXPECT_GT(res.cycles, Cycles{0});
    EXPECT_EQ(payloads, expectedPayloads(records));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConcurrentDrive,
    ::testing::Combine(::testing::Values(MemScheme::OramBaseline,
                                         MemScheme::OramDynamic),
                       ::testing::Values(1u, 2u, 8u)),
    [](const auto &info) {
        return std::string(schemeName(std::get<0>(info.param))) +
               "_w" + std::to_string(std::get<1>(info.param));
    });

TEST(ConcurrentDrive, SerialDrainMatchesWorkerDrains)
{
    // Same trace, workers 1 vs 2 vs 8: identical payloads and real
    // request counts (path/timing stats are schedule-dependent).
    const std::vector<TraceRecord> records =
        makeTrace(1200, 1ULL << 12, 0xBEEF);
    Experiment exp(smallConfig());

    std::vector<std::uint64_t> p1, p2, p8;
    const SimResult r1 =
        exp.runConcurrent(MemScheme::OramDynamic, records, 1, &p1);
    const SimResult r2 =
        exp.runConcurrent(MemScheme::OramDynamic, records, 2, &p2);
    const SimResult r8 =
        exp.runConcurrent(MemScheme::OramDynamic, records, 8, &p8);

    EXPECT_EQ(p1, p2);
    EXPECT_EQ(p1, p8);
    EXPECT_EQ(r1.references, r2.references);
    EXPECT_EQ(r1.references, r8.references);
}

TEST(ConcurrentDrive, ForcedContentionOnOneSubtree)
{
    // Every request hits one of four blocks: maximal sequencer
    // dependency chains plus every path fetch fighting over the same
    // upper-tree buckets. Invariants must survive; payloads must still
    // follow trace order.
    std::vector<TraceRecord> records;
    std::uint64_t x = 0x5EED;
    for (std::size_t i = 0; i < 800; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        TraceRecord rec;
        rec.addr = ((x >> 33) % 4) * kLineBytes;
        rec.op = (x >> 13) % 2 == 0 ? OpType::Write : OpType::Read;
        records.push_back(rec);
    }

    SystemConfig cfg = smallConfig();
    cfg.scheme = MemScheme::OramDynamic;
    cfg.workers = 8;
    System sys(cfg);
    std::vector<std::uint64_t> payloads;
    const SimResult res = sys.runQueue(records, &payloads);

    EXPECT_EQ(res.references, records.size());
    EXPECT_EQ(payloads, expectedPayloads(records));

    ASSERT_NE(sys.controller(), nullptr);
    const auto report = checkIntegrity(sys.controller()->oram());
    EXPECT_TRUE(report.ok)
        << report.violations.size() << " violations, first: "
        << (report.violations.empty() ? ""
                                      : report.violations.front());
    ASSERT_NE(sys.controller()->subtreeCache(), nullptr);
    EXPECT_GT(sys.controller()->subtreeCache()->acquisitions(), 0u);
}

TEST(ConcurrentDrive, ForcedFullOverlapDedupReusesResidentBuckets)
{
    // Every request touches one of two blocks, so every in-flight
    // path shares the same dedicated buckets. With the window forced
    // on, each windowed bucket is loaded from the arena at most once
    // for the whole drain (residency persists across flushes): misses
    // are bounded by the dedicated-node count, and the overlap shows
    // up as hits. Payload semantics and the invariants must be
    // untouched by the adoption.
    std::vector<TraceRecord> records;
    std::uint64_t x = 0xDEDU;
    for (std::size_t i = 0; i < 600; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        TraceRecord rec;
        rec.addr = ((x >> 33) % 2) * kLineBytes;
        rec.op = (x >> 13) % 2 == 0 ? OpType::Write : OpType::Read;
        records.push_back(rec);
    }

    SystemConfig cfg = smallConfig();
    cfg.scheme = MemScheme::OramDynamic;
    cfg.workers = 8;
    cfg.controller.dedupWindow = 1;
    System sys(cfg);
    std::vector<std::uint64_t> payloads;
    sys.runQueue(records, &payloads);
    EXPECT_EQ(payloads, expectedPayloads(records));

    ASSERT_NE(sys.controller(), nullptr);
    const SubtreeCache *sc = sys.controller()->subtreeCache();
    ASSERT_NE(sc, nullptr);
    EXPECT_GT(sc->dedupHits(), 0u);
    EXPECT_GT(sc->dedupMisses(), 0u);
    EXPECT_LE(sc->dedupMisses(), sc->dedicatedNodes());
    // Accounting exact: every windowed-node hold is either the
    // first-touch load or an adoption, never both or neither.
    EXPECT_GT(sc->dedupHits() + sc->dedupMisses(), records.size());
    // The end-of-drain flush wrote the dirty residents back.
    EXPECT_GT(sc->flushWrites(), 0u);
    EXPECT_LE(sc->flushWrites(), sc->dedicatedNodes());

    const auto report = checkIntegrity(sys.controller()->oram());
    EXPECT_TRUE(report.ok)
        << report.violations.size() << " violations, first: "
        << (report.violations.empty() ? ""
                                      : report.violations.front());

    // Satellite telemetry: the dedup and shard counters surface in
    // the proram-metrics-v1 document.
    const std::string json = sys.metricsJson();
    EXPECT_NE(json.find("dedupHits"), std::string::npos);
    EXPECT_NE(json.find("stashShardLockAcquisitions"),
              std::string::npos);
}

TEST(ConcurrentDrive, DedupWindowOffMatchesOnAtEveryWorkerCount)
{
    // The window is a pure performance cache: payloads must be
    // identical with it forced off and forced on, at every worker
    // count.
    const std::vector<TraceRecord> records =
        makeTrace(1200, 1ULL << 12, 0xDE0FF);
    std::vector<std::uint64_t> expect = expectedPayloads(records);

    for (const unsigned workers : {1u, 2u, 8u}) {
        for (const int window : {0, 1}) {
            SystemConfig cfg = smallConfig();
            cfg.scheme = MemScheme::OramDynamic;
            cfg.workers = workers;
            cfg.controller.dedupWindow = window;
            System sys(cfg);
            std::vector<std::uint64_t> payloads;
            sys.runQueue(records, &payloads);
            EXPECT_EQ(payloads, expect)
                << "workers=" << workers << " window=" << window;
            ASSERT_NE(sys.controller(), nullptr);
            const auto report =
                checkIntegrity(sys.controller()->oram());
            EXPECT_TRUE(report.ok)
                << "workers=" << workers << " window=" << window
                << ": " << report.violations.size()
                << " violations, first: "
                << (report.violations.empty()
                        ? ""
                        : report.violations.front());
        }
    }
}

TEST(ConcurrentDrive, ShardedStashInvariantsAcrossShardCounts)
{
    // Same churn trace at 8 workers with the stash split 1 / 4 / 32
    // ways: the shard count is a pure contention knob, so payloads
    // and the Path ORAM invariant must be unaffected.
    const std::vector<TraceRecord> records =
        makeTrace(1500, 1ULL << 12, 0x5AAD5);
    const std::vector<std::uint64_t> expect = expectedPayloads(records);

    for (const std::uint32_t shards : {1u, 4u, 32u}) {
        SystemConfig cfg = smallConfig();
        cfg.scheme = MemScheme::OramDynamic;
        cfg.workers = 8;
        cfg.controller.stashShards = shards;
        System sys(cfg);
        std::vector<std::uint64_t> payloads;
        sys.runQueue(records, &payloads);
        EXPECT_EQ(payloads, expect) << "shards=" << shards;

        ASSERT_NE(sys.controller(), nullptr);
        const Stash &stash =
            sys.controller()->oram().engine().stash();
        EXPECT_EQ(stash.shardCount(), shards) << "shards=" << shards;
        EXPECT_GT(stash.shardLockAcquisitions(), 0u);
        const auto report = checkIntegrity(sys.controller()->oram());
        EXPECT_TRUE(report.ok)
            << "shards=" << shards << ": "
            << report.violations.size() << " violations, first: "
            << (report.violations.empty()
                    ? ""
                    : report.violations.front());
    }
}

TEST(ConcurrentDrive, AuditedEightWorkerRunPasses)
{
    // Dedup adoption must be invisible to the auditor: every logical
    // path touch still reports its public leaf, so an 8-worker run
    // with maximal overlap stays uniform and the audit passes.
    const std::vector<TraceRecord> records =
        makeTrace(1200, 1ULL << 12, 0xA8D17);
    SystemConfig cfg = smallConfig();
    cfg.scheme = MemScheme::OramDynamic;
    cfg.audit.enabled = true;
    cfg.workers = 8;
    cfg.controller.dedupWindow = 1;
    System sys(cfg);
    const SimResult res = sys.runQueue(records, nullptr);
    EXPECT_EQ(res.references, records.size());
    ASSERT_NE(sys.auditor(), nullptr);
    EXPECT_TRUE(sys.auditor()->report().pass());
}

TEST(ConcurrentDrive, InvariantsHoldAfterConcurrentChurn)
{
    const std::vector<TraceRecord> records =
        makeTrace(2000, 1ULL << 12, 0xD15EA5E);
    SystemConfig cfg = smallConfig();
    cfg.scheme = MemScheme::OramDynamic;
    cfg.workers = 8;
    System sys(cfg);
    const SimResult res = sys.runQueue(records, nullptr);
    EXPECT_EQ(res.references, records.size());

    ASSERT_NE(sys.controller(), nullptr);
    const auto report = checkIntegrity(sys.controller()->oram());
    EXPECT_TRUE(report.ok)
        << report.violations.size() << " violations, first: "
        << (report.violations.empty() ? ""
                                      : report.violations.front());
}

TEST(ConcurrentDrive, SparseLazyMatchesEagerDenseAtEveryWorkerCount)
{
    // The sparse arena + lazy initialization must be invisible to
    // the drive semantics: every worker count observes exactly the
    // payloads of the eager dense serial run, first-touch accounting
    // stays exact under concurrency, and the invariants hold.
    const std::vector<TraceRecord> records =
        makeTrace(1500, 1ULL << 12, 0xFACADE);
    Experiment exp(smallConfig());
    std::vector<std::uint64_t> expect;
    exp.runConcurrent(MemScheme::OramDynamic, records, 1, &expect);

    for (const unsigned workers : {1u, 2u, 8u}) {
        SystemConfig cfg = smallConfig();
        cfg.scheme = MemScheme::OramDynamic;
        cfg.workers = workers;
        cfg.oram.lazyInit = true;
        cfg.oram.arena.kind = ArenaKind::Sparse;
        cfg.oram.arena.chunkBuckets = 16;
        System sys(cfg);
        std::vector<std::uint64_t> payloads;
        sys.runQueue(records, &payloads);
        EXPECT_EQ(payloads, expect) << "workers=" << workers;

        ASSERT_NE(sys.controller(), nullptr);
        const ArenaBackend &arena =
            sys.controller()->oram().engine().tree().arena();
        std::uint64_t seen = 0;
        for (std::uint64_t c = 0; c < arena.numChunks(); ++c)
            seen += arena.materialized(c) ? 1 : 0;
        EXPECT_GT(seen, 0u);
        EXPECT_EQ(arena.chunksMaterialized(), seen);
        EXPECT_EQ(arena.bytesResident(), seen * arena.chunkBytes());
        const auto report = checkIntegrity(sys.controller()->oram());
        EXPECT_TRUE(report.ok)
            << report.violations.size() << " violations, first: "
            << (report.violations.empty() ? ""
                                          : report.violations.front());
    }
}

TEST(ConcurrentDrive, SparseLazySerialChunkSetIsDeterministic)
{
    // Serial drive, same trace, run twice: lazy creation and chunk
    // materialization are functions of the (seeded) access sequence
    // alone, so the materialized-chunk set must repeat exactly.
    const std::vector<TraceRecord> records =
        makeTrace(1000, 1ULL << 12, 0xDECADE);
    const auto run = [&records] {
        SystemConfig cfg = smallConfig();
        cfg.scheme = MemScheme::OramBaseline;
        cfg.workers = 1;
        cfg.oram.lazyInit = true;
        cfg.oram.arena.kind = ArenaKind::Sparse;
        cfg.oram.arena.chunkBuckets = 16;
        System sys(cfg);
        sys.runQueue(records, nullptr);
        const ArenaBackend &arena =
            sys.controller()->oram().engine().tree().arena();
        std::vector<bool> chunks(arena.numChunks());
        for (std::uint64_t c = 0; c < arena.numChunks(); ++c)
            chunks[c] = arena.materialized(c);
        return chunks;
    };
    EXPECT_EQ(run(), run());
}

TEST(ConcurrentDrive, AuditedConcurrentRunPasses)
{
    // cfg.audit on: System::runQueue panics at end-of-run if the
    // auditor saw anything non-oblivious. Uses the env-resolved
    // worker count when PRORAM_WORKERS is set (the CI sanitize matrix
    // runs this test with PRORAM_AUDIT=1 PRORAM_WORKERS=4), and a
    // fixed concurrent count otherwise.
    const std::vector<TraceRecord> records =
        makeTrace(1000, 1ULL << 12, 0xA0D17);
    SystemConfig cfg = smallConfig();
    cfg.scheme = MemScheme::OramDynamic;
    cfg.audit.enabled = true;
    cfg.workers = workersFromEnv() > 1 ? 0 : 4;
    System sys(cfg);
    EXPECT_GE(sys.workers(), 1u);
    const SimResult res = sys.runQueue(records, nullptr);
    EXPECT_EQ(res.references, records.size());
    ASSERT_NE(sys.auditor(), nullptr);
    EXPECT_TRUE(sys.auditor()->report().pass());
}

TEST(ConcurrentDrive, WorkersFromEnvClampsAndDefaults)
{
    // Restore any CI-provided value so later tests in this binary
    // still see the environment they were launched with.
    const char *prev = std::getenv("PRORAM_WORKERS");
    const std::string saved = prev ? prev : "";
    ::setenv("PRORAM_WORKERS", "9999", 1);
    EXPECT_EQ(workersFromEnv(), kMaxDriveWorkers);
    ::setenv("PRORAM_WORKERS", "0", 1);
    EXPECT_EQ(workersFromEnv(), 1u);
    ::setenv("PRORAM_WORKERS", "4", 1);
    EXPECT_EQ(workersFromEnv(), 4u);
    ::unsetenv("PRORAM_WORKERS");
    EXPECT_EQ(workersFromEnv(), 1u);
    if (prev != nullptr)
        ::setenv("PRORAM_WORKERS", saved.c_str(), 1);
}

TEST(ConcurrentDrive, RingBackgroundEvictionBoundsStashOccupancy)
{
    // PR-9 contract, pinned: in concurrent mode the Ring engine
    // advertises dummyAccessConcurrentSafe() and its dummyAccess()
    // makes real eviction progress (a scheduled-eviction pass under
    // the scheme's own node + shard locks), so the controller's
    // stage-4 loop bounds stash occupancy. Before that contract the
    // random-path round-trip extracted nothing through the
    // claim-gated fetch and an over-capacity stash stayed over
    // capacity for the rest of the drain.
    std::vector<TraceRecord> records;
    std::uint64_t x = 0x91A6;
    for (std::size_t i = 0; i < 1000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        TraceRecord rec;
        // Write-heavy over a wide footprint: lazy creation inserts
        // into the stash faster than the A-schedule drains it.
        rec.addr = (x % (1ULL << 12)) * kLineBytes;
        rec.op = (x >> 32) % 4 == 0 ? OpType::Read : OpType::Write;
        records.push_back(rec);
    }

    SystemConfig cfg = smallConfig();
    cfg.oram.scheme = SchemeKind::Ring;
    cfg.oram.stashCapacity = 16; // force the over-capacity probe
    cfg.scheme = MemScheme::OramDynamic;
    cfg.workers = 4;
    System sys(cfg);
    const SimResult res = sys.runQueue(records, nullptr);
    EXPECT_EQ(res.references, records.size());

    ASSERT_NE(sys.controller(), nullptr);
    const OramScheme &engine = sys.controller()->oram().engine();
    EXPECT_TRUE(engine.dummyAccessConcurrentSafe());
    // The pressure actually exercised the scheme-managed dummy path.
    EXPECT_GT(sys.controller()->stats().bgEvictions, 0u);
    // Eviction progress: the drained stash sits at/near capacity
    // instead of holding the working set. One in-flight path of slack
    // covers the final request's absorb racing the last bg pass.
    const Stash &stash = engine.stash();
    EXPECT_LE(stash.size(),
              stash.capacity() +
                  cfg.controller.maxBgEvictionsPerRequest);
    const auto report = checkIntegrity(sys.controller()->oram());
    EXPECT_TRUE(report.ok)
        << report.violations.size() << " violations, first: "
        << (report.violations.empty() ? ""
                                      : report.violations.front());
}

TEST(ConcurrentDrive, ConcurrentModeRejectsPeriodicScheduler)
{
    SystemConfig cfg = smallConfig();
    cfg.scheme = MemScheme::OramBaseline;
    cfg.workers = 4;
    cfg.controller.periodic.enabled = true;
    EXPECT_THROW(cfg.validate(), SimFatal);

    SystemConfig pre = smallConfig();
    pre.scheme = MemScheme::OramPrefetch;
    pre.workers = 4;
    EXPECT_THROW(pre.validate(), SimFatal);
}

} // namespace
} // namespace proram
