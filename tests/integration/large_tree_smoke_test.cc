/**
 * @file
 * Large-tree smoke: the sparse arena plus lazy initialization must
 * carry trees far beyond what the dense layout can hold. The
 * always-run case exercises the full lazy + sparse drive at 2^20
 * data blocks; the 2^24 case runs where PRORAM_LARGE_SMOKE is set
 * (CI runs it under a ulimit the dense layout cannot satisfy) and
 * the paper-scale 2^26 case where PRORAM_LARGE_SMOKE=26.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <unordered_map>

#include "core/oram_controller.hh"
#include "mem/cache_hierarchy.hh"
#include "obs/metrics.hh"
#include "oram/integrity.hh"
#include "sim/system_config.hh"

namespace proram
{
namespace
{

bool
largeSmokeEnabled()
{
    const char *e = std::getenv("PRORAM_LARGE_SMOKE");
    return e != nullptr && *e != '\0' && std::string(e) != "0";
}

bool
paperScaleEnabled()
{
    const char *e = std::getenv("PRORAM_LARGE_SMOKE");
    return e != nullptr && std::string(e) == "26";
}

OramConfig
largeCfg(std::uint64_t data_blocks)
{
    OramConfig c;
    c.numDataBlocks = data_blocks;
    c.stashCapacity = 400;
    c.seed = 7;
    c.lazyInit = true;
    c.arena.kind = ArenaKind::Sparse;
    return c;
}

HierarchyConfig
tinyHier()
{
    HierarchyConfig h;
    h.l1 = CacheConfig{4 * 128, 2, 128};
    h.l2 = CacheConfig{64 * 128, 4, 128};
    return h;
}

/**
 * Drive @p accesses mixed reads/writes over a lazily initialized
 * sparse tree of @p data_blocks and check payload round-trips, the
 * virtual-residency read-as-zero contract, the arena's residency
 * accounting and (when asked) full structural integrity.
 */
void
driveSparseLazy(std::uint64_t data_blocks, std::uint64_t accesses,
                bool check_integrity)
{
    CacheHierarchy hier(tinyHier());
    OramController ctl(largeCfg(data_blocks), ControllerConfig{}, hier);
    ctl.configureBaseline();

    const BinaryTree &tree = ctl.oram().engine().tree();
    ASSERT_STREQ(tree.arena().name(), "sparse");
    ASSERT_EQ(tree.arena().chunksMaterialized(), 0u);

    // A block never touched is virtually resident with payload 0.
    std::uint64_t got = ~0ULL;
    ctl.dataAccess(Cycles{0}, BlockId{data_blocks / 2}, OpType::Read,
                   0, &got);
    EXPECT_EQ(got, 0u);

    // Deterministic scattered write/read mix (LCG, fixed seed).
    std::unordered_map<std::uint64_t, std::uint64_t> shadow;
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    for (std::uint64_t i = 0; i < accesses; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const BlockId block{(x >> 11) % data_blocks};
        if ((x & 3) != 0) {
            ctl.dataAccess(ctl.busyUntil(), block, OpType::Write,
                           i + 1, nullptr);
            shadow[block.value()] = i + 1;
        } else {
            std::uint64_t v = ~0ULL;
            ctl.dataAccess(ctl.busyUntil(), block, OpType::Read, 0,
                           &v);
            const auto it = shadow.find(block.value());
            EXPECT_EQ(v, it == shadow.end() ? 0 : it->second);
        }
    }
    for (const auto &[id, val] : shadow) {
        std::uint64_t v = ~0ULL;
        ctl.dataAccess(ctl.busyUntil(), BlockId{id}, OpType::Read, 0,
                       &v);
        EXPECT_EQ(v, val);
    }

    // Sparse residency: something materialized, the byte accounting
    // is chunk-granular, and the tree is still mostly implicit.
    const ArenaBackend &arena = tree.arena();
    EXPECT_GT(arena.chunksMaterialized(), 0u);
    EXPECT_EQ(arena.bytesResident(),
              arena.chunksMaterialized() * arena.chunkBytes());
    EXPECT_LT(arena.bytesResident(), arena.bytesTotal() / 4);

    // The telemetry reaches the controller's stat group (and from
    // there the proram-metrics-v1 document).
    const stats::StatGroup g = ctl.buildStatGroup();
    EXPECT_EQ(g.get("arenaChunksMaterialized"),
              static_cast<double>(arena.chunksMaterialized()));
    EXPECT_EQ(g.get("arenaBytesResident"),
              static_cast<double>(arena.bytesResident()));
    EXPECT_GT(obs::peakRssBytes(), 0u);

    if (check_integrity) {
        EXPECT_TRUE(checkIntegrity(ctl.oram()).ok);
    }
}

TEST(LargeTreeSmoke, SparseLazyDriveMillionBlocks)
{
    driveSparseLazy(1ULL << 20, 600, /*check_integrity=*/true);
}

TEST(LargeTreeSmoke, SixteenMillionBlocksUnderMemoryCap)
{
    if (!largeSmokeEnabled())
        GTEST_SKIP() << "set PRORAM_LARGE_SMOKE=1 to run";
    // CI runs this under `ulimit -v` tight enough that the dense
    // layout (~840 MB of lanes at 2^24 blocks) cannot even
    // construct; integrity is skipped (the full-tree scan is what
    // the sparse layout lets us avoid paying).
    driveSparseLazy(1ULL << 24, 400, /*check_integrity=*/false);
}

TEST(LargeTreeSmoke, PaperScaleSixtyFourMillionBlocks)
{
    if (!paperScaleEnabled())
        GTEST_SKIP() << "set PRORAM_LARGE_SMOKE=26 to run";
    driveSparseLazy(1ULL << 26, 400, /*check_integrity=*/false);
}

} // namespace
} // namespace proram
