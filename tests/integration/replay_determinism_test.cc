/** @file Integration: trace capture/replay produces bit-identical
 *  simulations, and simulations are reproducible across processes
 *  (the property every experiment in EXPERIMENTS.md relies on). */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/system.hh"
#include "trace/benchmarks.hh"
#include "trace/trace_file.hh"

namespace proram
{
namespace
{

SystemConfig
cfg(MemScheme scheme)
{
    SystemConfig c = defaultSystemConfig();
    c.scheme = scheme;
    return c;
}

TEST(ReplayDeterminism, ReplayedTraceReproducesLiveRun)
{
    const auto &prof = profileByName("cholesky");

    // Live run straight from the generator.
    SimResult live;
    {
        System sys(cfg(MemScheme::OramDynamic));
        auto gen = makeGenerator(prof, 0.05);
        live = sys.run(*gen);
    }

    // Capture the same trace to text, replay it.
    std::ostringstream os;
    {
        auto gen = makeGenerator(prof, 0.05);
        writeTrace(*gen, os);
    }
    SimResult replayed;
    {
        std::istringstream is(os.str());
        ReplayGenerator replay(readTrace(is));
        System sys(cfg(MemScheme::OramDynamic));
        replayed = sys.run(replay);
    }

    EXPECT_EQ(live.cycles, replayed.cycles);
    EXPECT_EQ(live.pathAccesses, replayed.pathAccesses);
    EXPECT_EQ(live.merges, replayed.merges);
    EXPECT_EQ(live.breaks, replayed.breaks);
    EXPECT_EQ(live.prefetchHits, replayed.prefetchHits);
}

TEST(ReplayDeterminism, EverySchemeIsDeterministic)
{
    const auto &prof = profileByName("gobmk");
    for (MemScheme s :
         {MemScheme::Dram, MemScheme::DramPrefetch,
          MemScheme::OramBaseline, MemScheme::OramStatic,
          MemScheme::OramDynamic}) {
        SimResult a, b;
        {
            System sys(cfg(s));
            auto gen = makeGenerator(prof, 0.05);
            a = sys.run(*gen);
        }
        {
            System sys(cfg(s));
            auto gen = makeGenerator(prof, 0.05);
            b = sys.run(*gen);
        }
        EXPECT_EQ(a.cycles, b.cycles) << schemeName(s);
        EXPECT_EQ(a.memAccesses, b.memAccesses) << schemeName(s);
    }
}

TEST(ReplayDeterminism, SeedChangesTheRunButNotTheShape)
{
    BenchmarkProfile prof = profileByName("fft");
    SimResult runs[2];
    for (int i = 0; i < 2; ++i) {
        prof.seed = 1000 + i;
        System sys(cfg(MemScheme::OramDynamic));
        ProfileGenerator gen(prof, 0.1);
        runs[i] = sys.run(gen);
    }
    EXPECT_NE(runs[0].cycles, runs[1].cycles)
        << "different seeds must differ";
    // Same workload character: results within 20%.
    const double ratio = static_cast<double>(runs[0].cycles) /
                         static_cast<double>(runs[1].cycles);
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.2);
}

} // namespace
} // namespace proram
