/** @file Integration: trace capture/replay produces bit-identical
 *  simulations, and simulations are reproducible across processes
 *  (the property every experiment in EXPERIMENTS.md relies on). */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "trace/benchmarks.hh"
#include "trace/trace_file.hh"

namespace proram
{
namespace
{

SystemConfig
cfg(MemScheme scheme)
{
    SystemConfig c = defaultSystemConfig();
    c.scheme = scheme;
    return c;
}

TEST(ReplayDeterminism, ReplayedTraceReproducesLiveRun)
{
    const auto &prof = profileByName("cholesky");

    // Live run straight from the generator.
    SimResult live;
    {
        System sys(cfg(MemScheme::OramDynamic));
        auto gen = makeGenerator(prof, 0.05);
        live = sys.run(*gen);
    }

    // Capture the same trace to text, replay it.
    std::ostringstream os;
    {
        auto gen = makeGenerator(prof, 0.05);
        writeTrace(*gen, os);
    }
    SimResult replayed;
    {
        std::istringstream is(os.str());
        ReplayGenerator replay(readTrace(is));
        System sys(cfg(MemScheme::OramDynamic));
        replayed = sys.run(replay);
    }

    EXPECT_EQ(live.cycles, replayed.cycles);
    EXPECT_EQ(live.pathAccesses, replayed.pathAccesses);
    EXPECT_EQ(live.merges, replayed.merges);
    EXPECT_EQ(live.breaks, replayed.breaks);
    EXPECT_EQ(live.prefetchHits, replayed.prefetchHits);
}

TEST(ReplayDeterminism, EverySchemeIsDeterministic)
{
    const auto &prof = profileByName("gobmk");
    for (MemScheme s :
         {MemScheme::Dram, MemScheme::DramPrefetch,
          MemScheme::OramBaseline, MemScheme::OramStatic,
          MemScheme::OramDynamic}) {
        SimResult a, b;
        {
            System sys(cfg(s));
            auto gen = makeGenerator(prof, 0.05);
            a = sys.run(*gen);
        }
        {
            System sys(cfg(s));
            auto gen = makeGenerator(prof, 0.05);
            b = sys.run(*gen);
        }
        EXPECT_EQ(a.cycles, b.cycles) << schemeName(s);
        EXPECT_EQ(a.memAccesses, b.memAccesses) << schemeName(s);
    }
}

TEST(ReplayDeterminism, ParallelGridMatchesSerialGrid)
{
    // The bench binaries' core assumption: runGrid() on a worker pool
    // produces bit-identical SimResults, in the same order, as the
    // serial loop. Cells cover every scheme plus a config tweak so
    // per-cell seeding paths are all exercised.
    const Experiment exp(defaultSystemConfig(), 0.03);
    const auto &prof_a = profileByName("fft");
    const auto &prof_b = profileByName("gobmk");

    std::vector<Experiment::GridCell> cells;
    for (const auto *prof : {&prof_a, &prof_b}) {
        for (MemScheme s :
             {MemScheme::Dram, MemScheme::OramBaseline,
              MemScheme::OramStatic, MemScheme::OramDynamic}) {
            cells.push_back(
                [&exp, s, prof] { return exp.runBenchmark(s, *prof); });
        }
    }
    cells.push_back([&exp, &prof_a] {
        return exp.runWith(
            MemScheme::OramDynamic,
            [](SystemConfig &c) { c.oram.plbEntries = 8; },
            [&] { return makeGenerator(prof_a, 0.03); });
    });

    const auto serial = exp.runGrid(cells, 1);
    const auto parallel = exp.runGrid(cells, 4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].scheme, parallel[i].scheme) << "cell " << i;
        EXPECT_EQ(serial[i].cycles, parallel[i].cycles) << "cell " << i;
        EXPECT_EQ(serial[i].memAccesses, parallel[i].memAccesses)
            << "cell " << i;
        EXPECT_EQ(serial[i].pathAccesses, parallel[i].pathAccesses)
            << "cell " << i;
        EXPECT_EQ(serial[i].merges, parallel[i].merges) << "cell " << i;
        EXPECT_EQ(serial[i].breaks, parallel[i].breaks) << "cell " << i;
    }
}

TEST(ReplayDeterminism, GridCellExceptionPropagates)
{
    const Experiment exp(defaultSystemConfig(), 0.03);
    std::vector<Experiment::GridCell> cells;
    cells.push_back([&exp] {
        return exp.runBenchmark(MemScheme::Dram, profileByName("fft"));
    });
    cells.push_back(
        []() -> SimResult { throw std::runtime_error("boom"); });
    EXPECT_THROW(exp.runGrid(cells, 2), std::runtime_error);
}

TEST(ReplayDeterminism, SeedChangesTheRunButNotTheShape)
{
    BenchmarkProfile prof = profileByName("fft");
    SimResult runs[2];
    for (int i = 0; i < 2; ++i) {
        prof.seed = 1000 + i;
        System sys(cfg(MemScheme::OramDynamic));
        ProfileGenerator gen(prof, 0.1);
        runs[i] = sys.run(gen);
    }
    EXPECT_NE(runs[0].cycles, runs[1].cycles)
        << "different seeds must differ";
    // Same workload character: results within 20%.
    const double ratio = static_cast<double>(runs[0].cycles.value()) /
                         static_cast<double>(runs[1].cycles.value());
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.2);
}

} // namespace
} // namespace proram
