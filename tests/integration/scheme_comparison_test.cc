/** @file Directional integration tests: the qualitative claims of the
 *  paper's evaluation must hold on this simulator. */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "trace/synthetic.hh"

namespace proram
{
namespace
{

std::unique_ptr<TraceGenerator>
synth(double locality, std::uint64_t phase = 0,
      std::uint32_t compute = 4)
{
    SyntheticConfig c;
    c.footprintBlocks = 1ULL << 14;
    // Long enough that the dynamic scheme reaches steady state
    // (each block revisited several times).
    c.numAccesses = 60000;
    c.localityFraction = locality;
    c.phaseLength = phase;
    c.computeCycles = compute;
    c.seed = 3;
    return std::make_unique<SyntheticGenerator>(c);
}

Experiment
makeExp()
{
    SystemConfig cfg = defaultSystemConfig();
    return Experiment(cfg, 1.0);
}

TEST(SchemeComparison, DynamicNeverLosesToBaseline)
{
    // Fig. 6a's key claim: dyn >= oram at every locality level
    // (allow sub-1% noise).
    Experiment exp = makeExp();
    for (double f : {0.0, 0.5, 1.0}) {
        const auto oram = exp.runGenerator(MemScheme::OramBaseline,
                                           [&] { return synth(f); });
        const auto dyn = exp.runGenerator(MemScheme::OramDynamic,
                                          [&] { return synth(f); });
        EXPECT_GT(metrics::speedup(oram, dyn), -0.01)
            << "locality " << f;
    }
}

TEST(SchemeComparison, StaticLosesWithoutLocality)
{
    Experiment exp = makeExp();
    const auto oram = exp.runGenerator(MemScheme::OramBaseline,
                                       [&] { return synth(0.0); });
    const auto stat = exp.runGenerator(MemScheme::OramStatic,
                                       [&] { return synth(0.0); });
    EXPECT_LT(metrics::speedup(oram, stat), 0.0)
        << "static super blocks must hurt at zero locality "
           "(Sec. 3.3.2)";
}

TEST(SchemeComparison, BothSchemesWinWithFullLocality)
{
    // Fig. 6a runs the synthetic benchmark at Z=4 (Sec. 5.3), which
    // relaxes tree utilization so the static scheme is not throttled
    // by background eviction.
    Experiment exp = makeExp();
    exp.baseConfig().oram.z = 4;
    const auto oram = exp.runGenerator(MemScheme::OramBaseline,
                                       [&] { return synth(1.0); });
    const auto stat = exp.runGenerator(MemScheme::OramStatic,
                                       [&] { return synth(1.0); });
    const auto dyn = exp.runGenerator(MemScheme::OramDynamic,
                                      [&] { return synth(1.0); });
    EXPECT_GT(metrics::speedup(oram, stat), 0.05);
    EXPECT_GT(metrics::speedup(oram, dyn), 0.05);
}

TEST(SchemeComparison, DynamicReducesMemoryAccessesWithLocality)
{
    // The energy proxy of Fig. 8: fewer ORAM accesses than baseline.
    Experiment exp = makeExp();
    exp.baseConfig().oram.z = 4;
    const auto oram = exp.runGenerator(MemScheme::OramBaseline,
                                       [&] { return synth(1.0); });
    const auto dyn = exp.runGenerator(MemScheme::OramDynamic,
                                      [&] { return synth(1.0); });
    EXPECT_LT(metrics::normMemAccesses(oram, dyn), 0.95);
}

TEST(SchemeComparison, BreakingHelpsPhaseChange)
{
    // Fig. 6b: with phase changes, adaptive breaking (am_ab) beats
    // no-breaking (am_nb) in ORAM accesses or time.
    Experiment exp = makeExp();
    auto gen = [&] { return synth(0.5, /*phase=*/6000); };
    const auto no_break = exp.runWith(
        MemScheme::OramDynamic,
        [](SystemConfig &c) {
            c.dynamic.breakMode = DynamicPolicyConfig::BreakMode::None;
        },
        gen);
    const auto with_break = exp.runWith(
        MemScheme::OramDynamic,
        [](SystemConfig &c) {
            c.dynamic.breakMode =
                DynamicPolicyConfig::BreakMode::Adaptive;
        },
        gen);
    EXPECT_GT(with_break.breaks, 0u);
    EXPECT_LE(with_break.prefetchMissRate(),
              no_break.prefetchMissRate() + 0.02);
}

TEST(SchemeComparison, TraditionalPrefetchHelpsDramHurtsOram)
{
    // Fig. 5: sequential-heavy workload with compute gaps.
    Experiment exp = makeExp();
    auto gen = [&] { return synth(0.9, 0, 40); };
    const auto dram = exp.runGenerator(MemScheme::Dram, gen);
    const auto dram_pre = exp.runGenerator(MemScheme::DramPrefetch, gen);
    const auto oram = exp.runGenerator(MemScheme::OramBaseline, gen);
    const auto oram_pre = exp.runGenerator(MemScheme::OramPrefetch, gen);
    EXPECT_GT(metrics::speedup(dram, dram_pre), 0.0)
        << "prefetching must help on DRAM";
    EXPECT_LT(metrics::speedup(oram, oram_pre),
              metrics::speedup(dram, dram_pre))
        << "prefetching must help ORAM less than DRAM (Sec. 5.2)";
}

TEST(SchemeComparison, LowerBandwidthHurtsEveryOramScheme)
{
    Experiment exp = makeExp();
    auto gen = [&] { return synth(0.8); };
    for (MemScheme s : {MemScheme::OramBaseline, MemScheme::OramStatic,
                        MemScheme::OramDynamic}) {
        const auto fast = exp.runGenerator(s, gen);
        const auto slow = exp.runWith(
            s, [](SystemConfig &c) { c.setDramBandwidthGBs(4.0); },
            gen);
        EXPECT_GT(slow.cycles, fast.cycles) << schemeName(s);
    }
}

TEST(SchemeComparison, LargerStashHelpsSuperBlockSchemes)
{
    Experiment exp = makeExp();
    auto gen = [&] { return synth(1.0); };
    const auto small = exp.runWith(
        MemScheme::OramStatic,
        [](SystemConfig &c) { c.oram.stashCapacity = 25; }, gen);
    const auto large = exp.runWith(
        MemScheme::OramStatic,
        [](SystemConfig &c) { c.oram.stashCapacity = 400; }, gen);
    EXPECT_LT(large.bgEvictions, small.bgEvictions);
    EXPECT_LE(large.cycles, small.cycles);
}

TEST(SchemeComparison, PeriodicAccessesCostLittle)
{
    // Sec. 5.6: with a small Oint, adding periodicity degrades
    // performance only mildly.
    Experiment exp = makeExp();
    auto gen = [&] { return synth(0.7); };
    const auto plain = exp.runGenerator(MemScheme::OramDynamic, gen);
    const auto periodic = exp.runWith(
        MemScheme::OramDynamic,
        [](SystemConfig &c) {
            c.controller.periodic.enabled = true;
            c.controller.periodic.oInt = Cycles{100};
        },
        gen);
    EXPECT_LT(metrics::normCompletionTime(plain, periodic), 1.25);
    EXPECT_GE(metrics::normCompletionTime(plain, periodic), 1.0);
}

} // namespace
} // namespace proram
