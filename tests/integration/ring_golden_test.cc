/**
 * @file
 * Fixed-seed golden statistics for the Ring ORAM protocol: the same
 * fig08-tiny grid as golden_stats_test.cc (two SPLASH-2 profiles x
 * three super-block policies at trace scale 0.02), run with
 * OramConfig::scheme = SchemeKind::Ring.
 *
 * Ring goldens are pinned separately from Path goldens because the
 * protocols legitimately differ in bucket traffic and eviction
 * scheduling (one-block-per-bucket reads, rate-A deterministic
 * reverse-lexicographic evictions). What must NOT differ is the
 * prefetcher: merges/breaks/prefetch counts are policy decisions made
 * on stash-resident blocks and position-map state, so a Ring run and
 * a Path run over the same trace see the same policy inputs. Any
 * divergence in merges/breaks between this table and the Path table
 * means the scheme leaked into the policy layer.
 *
 * Set PRORAM_CAPTURE_GOLDENS=1 to print a paste-ready table instead
 * of asserting (used once to harvest the pinned values below).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.hh"
#include "sim/system_config.hh"
#include "trace/benchmarks.hh"

namespace proram
{
namespace
{

bool
captureMode()
{
    const char *env = std::getenv("PRORAM_CAPTURE_GOLDENS");
    return env && env[0] != '\0' && env[0] != '0';
}

struct RingGolden
{
    const char *profile;
    MemScheme scheme;
    std::uint64_t cycles;
    std::uint64_t pathAccesses;
    std::uint64_t posMapAccesses;
    std::uint64_t bgEvictions;
    std::uint64_t prefetchHits;
    std::uint64_t prefetchMisses;
    std::uint64_t merges;
    std::uint64_t breaks;
};

// Captured at the commit that introduced the Ring engine, with
// Experiment(defaultSystemConfig(), /*scale=*/0.02), seed defaults,
// ring S/A defaults (S=2Z=6, A=2). pathAccesses counts Ring's
// scheduled eviction passes as path reads (each rewrites one path),
// so the figures sit above the Path table's.
const RingGolden kRingGoldens[] = {
    {"cholesky", MemScheme::OramBaseline,
     6965106, 11389, 1406, 6495, 0, 0, 0, 0},
    {"cholesky", MemScheme::OramStatic,
     8331935, 15009, 1380, 10999, 0, 8, 0, 0},
    {"cholesky", MemScheme::OramDynamic,
     6985606, 11481, 1406, 6587, 0, 0, 323, 1},
    {"radix", MemScheme::OramBaseline,
     9662636, 16346, 2729, 9647, 0, 0, 0, 0},
    {"radix", MemScheme::OramStatic,
     13909324, 24110, 2590, 17921, 0, 27, 0, 0},
    {"radix", MemScheme::OramDynamic,
     9640496, 16280, 2729, 9581, 0, 0, 100, 0},
};

void
printRow(const char *profile, const SimResult &r,
         std::uint64_t periodic_dummies = ~0ULL)
{
    if (periodic_dummies == ~0ULL) {
        std::printf("    {\"%s\", MemScheme::?%s?,\n"
                    "     %llu, %llu, %llu, %llu, %llu, %llu, %llu, "
                    "%llu},\n",
                    profile, r.scheme.c_str(),
                    static_cast<unsigned long long>(r.cycles.value()),
                    static_cast<unsigned long long>(r.pathAccesses),
                    static_cast<unsigned long long>(r.posMapAccesses),
                    static_cast<unsigned long long>(r.bgEvictions),
                    static_cast<unsigned long long>(r.prefetchHits),
                    static_cast<unsigned long long>(r.prefetchMisses),
                    static_cast<unsigned long long>(r.merges),
                    static_cast<unsigned long long>(r.breaks));
    } else {
        std::printf("    {\"%s\", MemScheme::?%s?,\n"
                    "     %llu, %llu, %llu, %llu, %llu, %llu, %llu, "
                    "%llu, %llu},\n",
                    profile, r.scheme.c_str(),
                    static_cast<unsigned long long>(r.cycles.value()),
                    static_cast<unsigned long long>(r.pathAccesses),
                    static_cast<unsigned long long>(r.posMapAccesses),
                    static_cast<unsigned long long>(r.bgEvictions),
                    static_cast<unsigned long long>(periodic_dummies),
                    static_cast<unsigned long long>(r.prefetchHits),
                    static_cast<unsigned long long>(r.prefetchMisses),
                    static_cast<unsigned long long>(r.merges),
                    static_cast<unsigned long long>(r.breaks));
    }
}

void
expectRingGolden(const RingGolden &g, const SimResult &r)
{
    EXPECT_EQ(r.cycles, Cycles{g.cycles});
    EXPECT_EQ(r.pathAccesses, g.pathAccesses);
    EXPECT_EQ(r.posMapAccesses, g.posMapAccesses);
    EXPECT_EQ(r.bgEvictions, g.bgEvictions);
    EXPECT_EQ(r.prefetchHits, g.prefetchHits);
    EXPECT_EQ(r.prefetchMisses, g.prefetchMisses);
    EXPECT_EQ(r.merges, g.merges);
    EXPECT_EQ(r.breaks, g.breaks);
}

TEST(RingGolden, Fig08TinyMatchesCapture)
{
    Experiment exp(defaultSystemConfig(), /*trace_scale=*/0.02);
    for (const RingGolden &g : kRingGoldens) {
        const SimResult r = exp.runWith(
            g.scheme,
            [](SystemConfig &cfg) {
                cfg.oram.scheme = SchemeKind::Ring;
            },
            [&] {
                return makeGenerator(profileByName(g.profile), 0.02);
            });
        if (captureMode()) {
            printRow(g.profile, r);
            continue;
        }
        SCOPED_TRACE(std::string(g.profile) + "/" + r.scheme);
        expectRingGolden(g, r);
    }
}

TEST(RingGolden, PolicyRunsOnBothSchemesWithSameWalkTraffic)
{
    // The prefetcher code is scheme-agnostic, but its *inputs* are
    // not identical across protocols: the dynamic policy only merges
    // blocks that are stash-co-resident, and Ring's interest-set
    // reads leave non-interest path blocks in the tree where Path
    // ORAM would have pulled them into the stash. So merge counts
    // legitimately differ (fewer candidates under Ring). What must
    // match is the demand-side traffic the trace dictates - the
    // position-map walk count - and the policy must be demonstrably
    // live (nonzero merges) under both schemes.
    Experiment exp(defaultSystemConfig(), /*trace_scale=*/0.02);
    const auto run = [&](SchemeKind kind) {
        return exp.runWith(
            MemScheme::OramDynamic,
            [kind](SystemConfig &cfg) { cfg.oram.scheme = kind; },
            [&] { return makeGenerator(profileByName("cholesky"), 0.02); });
    };
    const SimResult path = run(SchemeKind::Path);
    const SimResult ring = run(SchemeKind::Ring);
    EXPECT_EQ(ring.posMapAccesses, path.posMapAccesses);
    EXPECT_GT(ring.merges, 0u);
    EXPECT_GT(path.merges, 0u);
    // Fewer co-resident candidates can only shrink the merge count.
    EXPECT_LE(ring.merges, path.merges);
}

struct RingPeriodicGolden
{
    const char *profile;
    MemScheme scheme;
    std::uint64_t cycles;
    std::uint64_t pathAccesses;
    std::uint64_t posMapAccesses;
    std::uint64_t bgEvictions;
    std::uint64_t periodicDummies;
    std::uint64_t prefetchHits;
    std::uint64_t prefetchMisses;
    std::uint64_t merges;
    std::uint64_t breaks;
};

// Periodic (Oint) mode on Ring: controller.periodic.enabled = true at
// the default interval, scheme = Ring. Captured alongside the table
// above.
const RingPeriodicGolden kRingPeriodicGoldens[] = {
    {"cholesky", MemScheme::OramBaseline,
     7691100, 11389, 1406, 6422, 73, 0, 0, 0, 0},
    {"cholesky", MemScheme::OramDynamic,
     7719620, 11481, 1406, 6514, 73, 0, 0, 323, 1},
    {"radix", MemScheme::OramStatic,
     15529559, 24110, 2590, 17908, 13, 0, 27, 0, 0},
};

TEST(RingGolden, PeriodicModeMatchesCapture)
{
    Experiment exp(defaultSystemConfig(), /*trace_scale=*/0.02);
    for (const RingPeriodicGolden &g : kRingPeriodicGoldens) {
        const SimResult r = exp.runWith(
            g.scheme,
            [](SystemConfig &cfg) {
                cfg.oram.scheme = SchemeKind::Ring;
                cfg.controller.periodic.enabled = true;
            },
            [&] {
                return makeGenerator(profileByName(g.profile), 0.02);
            });
        if (captureMode()) {
            printRow(g.profile, r, r.periodicDummies);
            continue;
        }
        SCOPED_TRACE(std::string(g.profile) + "/" + r.scheme);
        EXPECT_EQ(r.cycles, Cycles{g.cycles});
        EXPECT_EQ(r.pathAccesses, g.pathAccesses);
        EXPECT_EQ(r.posMapAccesses, g.posMapAccesses);
        EXPECT_EQ(r.bgEvictions, g.bgEvictions);
        EXPECT_EQ(r.periodicDummies, g.periodicDummies);
        EXPECT_EQ(r.prefetchHits, g.prefetchHits);
        EXPECT_EQ(r.prefetchMisses, g.prefetchMisses);
        EXPECT_EQ(r.merges, g.merges);
        EXPECT_EQ(r.breaks, g.breaks);
    }
}

TEST(RingGolden, AuditedRunMatchesUnauditedGolden)
{
    // The auditor is an observer: attaching it must not perturb a
    // single stat, and the run must survive its end-of-run report
    // (System panics on audit failure, including the Ring-only
    // ring-eviction-schedule check).
    Experiment exp(defaultSystemConfig(), /*trace_scale=*/0.02);
    const RingGolden &g = kRingGoldens[2]; // cholesky / OramDynamic
    const SimResult r = exp.runWith(
        g.scheme,
        [](SystemConfig &cfg) {
            cfg.oram.scheme = SchemeKind::Ring;
            cfg.audit.enabled = true;
        },
        [&] {
            return makeGenerator(profileByName(g.profile), 0.02);
        });
    if (captureMode()) {
        printRow(g.profile, r);
        return;
    }
    SCOPED_TRACE(std::string(g.profile) + "/" + r.scheme + "/audited");
    expectRingGolden(g, r);
}

} // namespace
} // namespace proram
