/** @file Integration: the Eq. 1 feedback loop end to end - the
 *  controller's measured rates must reach the policy and move the
 *  thresholds in the right direction. */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/oram_controller.hh"
#include "sim/system_config.hh"
#include "util/random.hh"

namespace proram
{
namespace
{

struct Rig
{
    explicit Rig(std::uint32_t stash)
    {
        // High-utilization tree (the Table 1 operating point) so
        // merged pairs generate real background-eviction pressure.
        ocfg.numDataBlocks = 48 * 1024;
        ocfg.stashCapacity = stash;
        ocfg.seed = 51;
        ccfg.epochRequests = 200;
        hier = std::make_unique<CacheHierarchy>(HierarchyConfig{
            CacheConfig{4 * 128, 2, 128},
            CacheConfig{64 * 128, 4, 128}, Cycles{1}, Cycles{10}});
        ctl = std::make_unique<OramController>(ocfg, ccfg, *hier);
        ctl->configureDynamic(DynamicPolicyConfig{});
        policy = static_cast<DynamicSuperBlockPolicy *>(&ctl->policy());
    }

    /**
     * Drive repeated write-heavy scans over a cyclic working set,
     * sampling the epoch-updated thresholds (pressure is bursty, so
     * the peak is the meaningful observable).
     */
    void
    scan(std::uint64_t accesses, std::uint64_t footprint = 6000)
    {
        Cycles t = ctl->busyUntil();
        Rng rng(5);
        for (std::uint64_t i = 0; i < accesses; ++i) {
            const BlockId b{i % footprint};
            const OpType op =
                rng.chance(0.5) ? OpType::Write : OpType::Read;
            t = ctl->demandAccess(t, b, op);
            ctl->onDemandTouch(t, b);
            for (const auto &v :
                 hier->fillFromMemory(b, op == OpType::Write))
                ctl->writebackAccess(t, v.block);
            maxMergeThr = std::max(maxMergeThr,
                                   policy->mergeThreshold(1));
            maxBreakThr = std::max(maxBreakThr,
                                   policy->breakThreshold(2));
        }
    }

    OramConfig ocfg;
    ControllerConfig ccfg;
    std::unique_ptr<CacheHierarchy> hier;
    std::unique_ptr<OramController> ctl;
    DynamicSuperBlockPolicy *policy = nullptr;
    double maxMergeThr = 0.0;
    double maxBreakThr = 0.0;
};

TEST(AdaptiveFeedback, PressureRaisesMergeThreshold)
{
    // Tiny stash: merged pairs trigger background evictions, epochs
    // roll, and eviction_rate x access_rate reaches Eq. 1.
    Rig pressured(/*stash=*/10);
    pressured.scan(18000);
    ASSERT_GT(pressured.ctl->stats().bgEvictions, 0u);
    EXPECT_GT(pressured.maxMergeThr, 1.0)
        << "eviction pressure never raised the Eq. 1 threshold";

    // Plenty of stash: no pressure, threshold pinned at the
    // hysteresis floor throughout.
    Rig relaxed(/*stash=*/400);
    relaxed.scan(18000);
    EXPECT_GT(pressured.maxMergeThr, relaxed.maxMergeThr);
    EXPECT_DOUBLE_EQ(relaxed.maxMergeThr, 1.0);
}

TEST(AdaptiveFeedback, BreakThresholdNeverDropsBelowFloor)
{
    // The break threshold needs ev*acc > phr/4 to leave its floor
    // (Eq. 1 with sbsize 2) - rarer than the merge threshold moving;
    // the invariant under any pressure is floor <= break <= merge+1.
    Rig pressured(/*stash=*/10);
    pressured.scan(18000);
    EXPECT_GE(pressured.maxBreakThr, 1.0);
    Rig relaxed(/*stash=*/400);
    relaxed.scan(18000);
    EXPECT_GE(pressured.maxBreakThr, relaxed.maxBreakThr);
}

TEST(AdaptiveFeedback, PressuredSystemMergesMoreConservatively)
{
    // Same locality, same trace: the pressured system must not end
    // with more merged pairs than the relaxed one.
    Rig pressured(/*stash=*/10);
    pressured.scan(18000);
    Rig relaxed(/*stash=*/400);
    relaxed.scan(18000);
    EXPECT_LE(pressured.ctl->policyStats().merges,
              relaxed.ctl->policyStats().merges);
}

} // namespace
} // namespace proram
