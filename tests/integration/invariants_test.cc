/** @file Long-churn property tests: the ORAM invariants must survive
 *  every (scheme, Z, stash, max-sbsize) combination. */

#include <gtest/gtest.h>

#include <tuple>

#include "oram/integrity.hh"
#include "sim/system.hh"
#include "trace/synthetic.hh"

namespace proram
{
namespace
{

using Combo = std::tuple<MemScheme, std::uint32_t /*z*/,
                         std::uint32_t /*stash*/,
                         std::uint32_t /*maxSb*/>;

class InvariantChurn : public ::testing::TestWithParam<Combo>
{
};

TEST_P(InvariantChurn, SurvivesMixedWorkload)
{
    const auto [scheme, z, stash, max_sb] = GetParam();

    SystemConfig cfg = defaultSystemConfig();
    cfg.scheme = scheme;
    cfg.oram.numDataBlocks = 1ULL << 12;
    cfg.oram.z = z;
    cfg.oram.stashCapacity = stash;
    cfg.staticSbSize = max_sb;
    cfg.dynamic.maxSbSize = max_sb;
    cfg.dynamic.breakMode = DynamicPolicyConfig::BreakMode::Adaptive;

    System sys(cfg);

    SyntheticConfig t;
    t.footprintBlocks = 1ULL << 12;
    t.numAccesses = 12000;
    t.localityFraction = 0.6;
    t.phaseLength = 3000; // force merge + break churn
    t.writeFraction = 0.3;
    t.seed = 1234 + z + stash + max_sb;
    SyntheticGenerator gen(t);

    const SimResult res = sys.run(gen);
    EXPECT_GT(res.cycles, Cycles{0});

    ASSERT_NE(sys.controller(), nullptr);
    const auto report = checkIntegrity(sys.controller()->oram());
    EXPECT_TRUE(report.ok)
        << report.violations.size() << " violations, first: "
        << (report.violations.empty() ? "" : report.violations.front());

    // The stash must never exceed its threshold after settling.
    EXPECT_LE(sys.controller()->oram().engine().stash().size(),
              stash);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InvariantChurn,
    ::testing::Combine(
        ::testing::Values(MemScheme::OramBaseline, MemScheme::OramStatic,
                          MemScheme::OramDynamic),
        ::testing::Values(3u, 4u),
        ::testing::Values(50u, 150u),
        ::testing::Values(2u, 4u)),
    [](const auto &info) {
        // NOTE: no structured bindings here - commas inside the
        // binding would split the INSTANTIATE macro's arguments.
        return std::string(schemeName(std::get<0>(info.param))) + "_z" +
               std::to_string(std::get<1>(info.param)) + "_stash" +
               std::to_string(std::get<2>(info.param)) + "_sb" +
               std::to_string(std::get<3>(info.param));
    });

TEST(Invariants, PeriodicModePreservesIntegrity)
{
    SystemConfig cfg = defaultSystemConfig();
    cfg.scheme = MemScheme::OramDynamic;
    cfg.oram.numDataBlocks = 1ULL << 12;
    cfg.controller.periodic.enabled = true;
    cfg.controller.periodic.oInt = Cycles{100};
    System sys(cfg);

    SyntheticConfig t;
    t.footprintBlocks = 1ULL << 12;
    t.numAccesses = 6000;
    t.localityFraction = 0.7;
    t.computeCycles = 300; // idle gaps -> many dummies
    SyntheticGenerator gen(t);

    const SimResult res = sys.run(gen);
    EXPECT_GT(res.periodicDummies, 0u);
    EXPECT_TRUE(checkIntegrity(sys.controller()->oram()).ok);
}

TEST(Invariants, TraditionalOramPrefetchPreservesIntegrity)
{
    SystemConfig cfg = defaultSystemConfig();
    cfg.scheme = MemScheme::OramPrefetch;
    cfg.oram.numDataBlocks = 1ULL << 12;
    System sys(cfg);

    SyntheticConfig t;
    t.footprintBlocks = 1ULL << 12;
    t.numAccesses = 6000;
    t.localityFraction = 0.9;
    SyntheticGenerator gen(t);
    sys.run(gen);
    EXPECT_TRUE(checkIntegrity(sys.controller()->oram()).ok);
}

TEST(Invariants, Z2NeedsMoreBackgroundEvictionThanZ4)
{
    auto run = [](std::uint32_t z) {
        SystemConfig cfg = defaultSystemConfig();
        cfg.scheme = MemScheme::OramStatic;
        cfg.oram.numDataBlocks = 1ULL << 12;
        cfg.oram.z = z;
        System sys(cfg);
        SyntheticConfig t;
        t.footprintBlocks = 1ULL << 12;
        t.numAccesses = 10000;
        t.localityFraction = 0.2;
        SyntheticGenerator gen(t);
        return sys.run(gen);
    };
    const auto z2 = run(2), z4 = run(4);
    EXPECT_GT(z2.bgEvictions, z4.bgEvictions)
        << "smaller Z must raise the background-eviction rate "
           "(Sec. 5.5.4)";
}

} // namespace
} // namespace proram
