/** @file Unit tests for the open-addressing FlatIndex. */

#include "util/flat_index.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/random.hh"
#include "util/types.hh"

#include <unordered_map>

namespace proram
{
namespace
{

TEST(FlatIndex, PutGetErase)
{
    FlatIndex idx;
    EXPECT_EQ(idx.get(7), FlatIndex::kNone);
    idx.put(7, 3);
    EXPECT_EQ(idx.get(7), 3u);
    idx.put(7, 4); // overwrite
    EXPECT_EQ(idx.get(7), 4u);
    EXPECT_EQ(idx.size(), 1u);
    EXPECT_TRUE(idx.erase(7));
    EXPECT_EQ(idx.get(7), FlatIndex::kNone);
    EXPECT_FALSE(idx.erase(7));
    EXPECT_EQ(idx.size(), 0u);
}

TEST(FlatIndex, GrowsPastSizingHint)
{
    FlatIndex idx(4);
    for (std::uint64_t k = 0; k < 1000; ++k)
        idx.put(k, static_cast<std::uint32_t>(k * 2));
    EXPECT_EQ(idx.size(), 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k)
        EXPECT_EQ(idx.get(k), static_cast<std::uint32_t>(k * 2));
}

TEST(FlatIndex, EmptySentinelKeyRejected)
{
    FlatIndex idx;
    EXPECT_THROW(idx.put(kInvalidBlock.value(), 0), SimPanic);
}

TEST(FlatIndex, BackwardShiftKeepsProbeRunsReachable)
{
    // Dense sequential keys maximize probe-run collisions; randomly
    // interleaved erases must never orphan a key (the classic
    // tombstone-free deletion bug this guards against).
    FlatIndex idx;
    std::unordered_map<std::uint64_t, std::uint32_t> model;
    Rng rng(42);
    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t k = rng.below(512);
        if (rng.chance(0.4)) {
            EXPECT_EQ(idx.erase(k), model.erase(k) != 0);
        } else {
            const auto v = static_cast<std::uint32_t>(rng.below(1u << 30));
            idx.put(k, v);
            model[k] = v;
        }
    }
    EXPECT_EQ(idx.size(), model.size());
    for (std::uint64_t k = 0; k < 512; ++k) {
        const auto it = model.find(k);
        if (it == model.end())
            EXPECT_EQ(idx.get(k), FlatIndex::kNone) << "key " << k;
        else
            EXPECT_EQ(idx.get(k), it->second) << "key " << k;
    }
}

TEST(FlatIndex, ClearKeepsCapacityAndEmptiesMap)
{
    FlatIndex idx;
    for (std::uint64_t k = 0; k < 100; ++k)
        idx.put(k, 1);
    idx.clear();
    EXPECT_EQ(idx.size(), 0u);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_EQ(idx.get(k), FlatIndex::kNone);
    idx.put(5, 9);
    EXPECT_EQ(idx.get(5), 9u);
}

} // namespace
} // namespace proram
