/**
 * @file
 * Runtime lock-order checker (util/lock_order.hh) and the annotated
 * mutex wrapper (util/mutex.hh). The checker's assertions exist only
 * when PRORAM_LOCK_ORDER_CHECKS is defined (Debug builds; the CI
 * nightly Debug job runs this suite with it on), so the violation
 * tests are compiled conditionally and the Release build instead
 * pins the zero-cost contract: every hook is a no-op.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/lock_order.hh"
#include "util/logging.hh"
#include "util/mutex.hh"

namespace proram
{
namespace
{

using lock_order::Rank;

TEST(ScopedLockTest, LocksAndReleases)
{
    util::Mutex m;
    {
        const util::ScopedLock lk(m);
        EXPECT_TRUE(lk.owns());
        EXPECT_FALSE(m.try_lock());
    }
    EXPECT_TRUE(m.try_lock());
    m.unlock();
}

TEST(ScopedLockTest, EmptyHoldOwnsNothing)
{
    const util::ScopedLock lk;
    EXPECT_FALSE(lk.owns());
}

TEST(ScopedLockTest, EarlyUnlockIsIdempotent)
{
    util::Mutex m;
    util::ScopedLock lk(m);
    lk.unlock();
    EXPECT_FALSE(lk.owns());
    lk.unlock(); // no-op on an empty hold
    EXPECT_TRUE(m.try_lock());
    m.unlock();
}

TEST(ScopedLockTest, MoveTransfersOwnership)
{
    util::Mutex m;
    util::ScopedLock a(m);
    util::ScopedLock b(std::move(a));
    EXPECT_FALSE(a.owns());
    EXPECT_TRUE(b.owns());
    util::ScopedLock c;
    c = std::move(b);
    EXPECT_TRUE(c.owns());
    c.unlock();
    EXPECT_TRUE(m.try_lock());
    m.unlock();
}

TEST(ScopedLockTest, ContentionCounterBumpsOnlyWhenBlocked)
{
    util::Mutex m;
    std::atomic<std::uint64_t> contended{0};
    {
        const util::ScopedLock lk(m, contended);
    }
    EXPECT_EQ(contended.load(), 0u); // uncontended try_lock path

    m.lock();
    std::thread t([&] {
        const util::ScopedLock lk(m, contended);
    });
    // The worker's try_lock fails while we hold m, bumping the
    // counter before it parks in the blocking lock().
    while (contended.load(std::memory_order_relaxed) == 0)
        std::this_thread::yield();
    m.unlock();
    t.join();
    EXPECT_EQ(contended.load(), 1u);
}

#ifdef PRORAM_LOCK_ORDER_CHECKS

TEST(LockOrderTest, DescendingHierarchyIsAccepted)
{
    util::Mutex meta(Rank::Meta);
    util::Mutex node(Rank::Node);
    util::Mutex shard(Rank::StashShard);
    util::Mutex leaf(Rank::Leaf);
    const util::ScopedLock a(meta);
    const util::ScopedLock b(node);
    const util::ScopedLock c(shard);
    const util::ScopedLock d(leaf);
    EXPECT_EQ(lock_order::heldCount(Rank::Meta), 1u);
    EXPECT_EQ(lock_order::heldCount(Rank::Node), 1u);
    EXPECT_EQ(lock_order::heldCount(Rank::StashShard), 1u);
    EXPECT_EQ(lock_order::heldCount(Rank::Leaf), 1u);
}

TEST(LockOrderTest, OutOfOrderAcquisitionPanics)
{
    util::Mutex node(Rank::Node);
    util::Mutex meta(Rank::Meta);
    const util::ScopedLock guard(node);
    EXPECT_THROW(meta.lock(), SimPanic);
    // The std::mutex itself locked before the rank check threw; the
    // test must not leak the hold into later tests.
    meta.native().unlock();
}

TEST(LockOrderTest, LeafNeverAcquiresUpward)
{
    util::Mutex leaf(Rank::Leaf);
    util::Mutex shard(Rank::StashShard);
    const util::ScopedLock g(leaf);
    EXPECT_THROW(shard.lock(), SimPanic);
    shard.native().unlock();
}

TEST(LockOrderTest, OneHoldRuleForNodeAndShard)
{
    util::Mutex a(Rank::Node);
    util::Mutex b(Rank::Node);
    const util::ScopedLock g(a);
    EXPECT_THROW(b.lock(), SimPanic);
    b.native().unlock();
}

TEST(LockOrderTest, LeafRankMayStack)
{
    // The blessed stack: ring's eviction scheduler holds
    // scheduleMutex_ while randomLeaf() takes rngMutex_.
    util::Mutex schedule(Rank::Leaf);
    util::Mutex rng(Rank::Leaf);
    const util::ScopedLock g(schedule);
    const util::ScopedLock r(rng);
    EXPECT_EQ(lock_order::heldCount(Rank::Leaf), 2u);
}

TEST(LockOrderTest, TryLockIsRankCheckedOnSuccess)
{
    util::Mutex shard(Rank::StashShard);
    util::Mutex node(Rank::Node);
    const util::ScopedLock g(shard);
    EXPECT_THROW(node.try_lock(), SimPanic);
    node.native().unlock();
}

TEST(LockOrderTest, UnrankedMutexIsExempt)
{
    util::Mutex leaf(Rank::Leaf);
    util::Mutex plain; // kUnranked: single-purpose, opted out
    const util::ScopedLock g(leaf);
    const util::ScopedLock p(plain);
    EXPECT_EQ(lock_order::heldCount(Rank::kUnranked), 0u);
}

TEST(LockOrderTest, ReleaseUnderflowPanics)
{
    EXPECT_THROW(lock_order::onRelease(Rank::Node), SimPanic);
}

TEST(LockOrderTest, ScopedRankRegistersAndReleases)
{
    // The cv-wait shape: awaitResident / waitFor register the rank
    // around a native-handle unique_lock.
    {
        const lock_order::ScopedRank rank(Rank::StashShard);
        EXPECT_EQ(lock_order::heldCount(Rank::StashShard), 1u);
        util::Mutex meta(Rank::Meta);
        EXPECT_THROW(meta.lock(), SimPanic);
        meta.native().unlock();
    }
    EXPECT_EQ(lock_order::heldCount(Rank::StashShard), 0u);
}

TEST(LockOrderTest, TrackerIsPerThread)
{
    util::Mutex node(Rank::Node);
    const util::ScopedLock g(node);
    // Another thread's held-set is empty: it may take the meta lock
    // while this thread sits inside a node hold.
    std::thread t([] {
        util::Mutex meta(Rank::Meta);
        const util::ScopedLock m(meta);
        EXPECT_EQ(lock_order::heldCount(Rank::Node), 0u);
    });
    t.join();
}

#else // !PRORAM_LOCK_ORDER_CHECKS

TEST(LockOrderTest, ReleaseModeHooksAreNoOps)
{
    // Zero-cost contract: without the define the hooks exist but do
    // nothing - no tracker state, no panics, heldCount always 0.
    lock_order::onAcquire(Rank::Meta);
    lock_order::onAcquire(Rank::Meta); // would panic when checking
    lock_order::onRelease(Rank::Node); // would underflow-panic
    EXPECT_EQ(lock_order::heldCount(Rank::Meta), 0u);

    util::Mutex node(Rank::Node);
    util::Mutex meta(Rank::Meta);
    const util::ScopedLock g(node);
    const util::ScopedLock m(meta); // inversion passes unchecked
    EXPECT_EQ(lock_order::heldCount(Rank::Node), 0u);
}

#endif // PRORAM_LOCK_ORDER_CHECKS

} // namespace
} // namespace proram
