/** @file Unit tests for util/bits.hh. */

#include "util/bits.hh"

#include <gtest/gtest.h>

namespace proram
{
namespace
{

TEST(Bits, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
}

TEST(Bits, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(4), 2u);
    EXPECT_EQ(log2Floor(1023), 9u);
    EXPECT_EQ(log2Floor(1024), 10u);
}

TEST(Bits, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
    EXPECT_EQ(log2Ceil(1025), 11u);
}

TEST(Bits, Log2FloorCeilAgreeOnPowersOfTwo)
{
    for (unsigned s = 0; s < 63; ++s) {
        const std::uint64_t v = 1ULL << s;
        EXPECT_EQ(log2Floor(v), s);
        EXPECT_EQ(log2Ceil(v), s);
    }
}

TEST(Bits, AlignDown)
{
    EXPECT_EQ(alignDown(0, 8), 0u);
    EXPECT_EQ(alignDown(7, 8), 0u);
    EXPECT_EQ(alignDown(8, 8), 8u);
    EXPECT_EQ(alignDown(17, 8), 16u);
}

TEST(Bits, AlignUp)
{
    EXPECT_EQ(alignUp(0, 8), 0u);
    EXPECT_EQ(alignUp(1, 8), 8u);
    EXPECT_EQ(alignUp(8, 8), 8u);
    EXPECT_EQ(alignUp(17, 8), 24u);
}

TEST(Bits, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(100, 3), 34u);
}

} // namespace
} // namespace proram
