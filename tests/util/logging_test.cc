/** @file Unit tests for panic/fatal reporting. */

#include "util/logging.hh"

#include <gtest/gtest.h>

#include <string>

namespace proram
{
namespace
{

TEST(Logging, PanicThrowsSimPanic)
{
    EXPECT_THROW(panic("boom"), SimPanic);
}

TEST(Logging, FatalThrowsSimFatal)
{
    EXPECT_THROW(fatal("bad config"), SimFatal);
}

TEST(Logging, PanicMessageCarriesArgsAndLocation)
{
    try {
        panic("value is ", 42, " not ", 7);
        FAIL() << "panic did not throw";
    } catch (const SimPanic &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("value is 42 not 7"), std::string::npos);
        EXPECT_NE(msg.find("logging_test.cc"), std::string::npos);
    }
}

TEST(Logging, PanicIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(panic_if(false, "never"));
    EXPECT_THROW(panic_if(true, "always"), SimPanic);
}

TEST(Logging, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(fatal_if(false, "never"));
    EXPECT_THROW(fatal_if(1 + 1 == 2, "always"), SimFatal);
}

} // namespace
} // namespace proram
