/**
 * @file
 * Compile-time contract tests for the strong domain types: which
 * constructions and operators exist (static_assert + a tests-only
 * SFINAE probe), and runtime behavior of the ones that do.
 *
 * The negative cases are the point: a regression that re-enables
 * implicit conversion or cross-domain arithmetic fails this TU at
 * compile time, before any golden can drift.
 */

#include "util/types.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <type_traits>
#include <unordered_set>

namespace proram
{
namespace
{

using namespace proram::literals;

// ------------------------------------------------------------------
// SFINAE probes: does `expression` compile for these operand types?
// ------------------------------------------------------------------

template <typename A, typename B, typename = void>
struct CanAdd : std::false_type
{
};
template <typename A, typename B>
struct CanAdd<A, B,
              std::void_t<decltype(std::declval<A>() +
                                   std::declval<B>())>>
    : std::true_type
{
};

template <typename A, typename B, typename = void>
struct CanSub : std::false_type
{
};
template <typename A, typename B>
struct CanSub<A, B,
              std::void_t<decltype(std::declval<A>() -
                                   std::declval<B>())>>
    : std::true_type
{
};

template <typename A, typename B, typename = void>
struct CanMul : std::false_type
{
};
template <typename A, typename B>
struct CanMul<A, B,
              std::void_t<decltype(std::declval<A>() *
                                   std::declval<B>())>>
    : std::true_type
{
};

template <typename A, typename B, typename = void>
struct CanXor : std::false_type
{
};
template <typename A, typename B>
struct CanXor<A, B,
              std::void_t<decltype(std::declval<A>() ^
                                   std::declval<B>())>>
    : std::true_type
{
};

template <typename A, typename B, typename = void>
struct CanCompare : std::false_type
{
};
template <typename A, typename B>
struct CanCompare<A, B,
                  std::void_t<decltype(std::declval<A>() ==
                                       std::declval<B>())>>
    : std::true_type
{
};

template <typename T, typename = void>
struct CanIncrement : std::false_type
{
};
template <typename T>
struct CanIncrement<T, std::void_t<decltype(++std::declval<T &>())>>
    : std::true_type
{
};

// ------------------------------------------------------------------
// Construction: explicit only, no implicit unwrap.
// ------------------------------------------------------------------

static_assert(!std::is_convertible_v<std::uint64_t, BlockId>,
              "raw integers must not implicitly become block ids");
static_assert(!std::is_convertible_v<std::uint32_t, Leaf>,
              "raw integers must not implicitly become leaf labels");
static_assert(!std::is_convertible_v<BlockId, std::uint64_t>,
              "block ids must not implicitly decay to integers");
static_assert(!std::is_convertible_v<Leaf, std::uint32_t>,
              "leaf labels must not implicitly decay to integers");
static_assert(std::is_constructible_v<BlockId, std::uint64_t>,
              "explicit construction is the sanctioned entry");
static_assert(std::is_constructible_v<Leaf, std::uint32_t>);

// No cross-domain conversion in either direction.
static_assert(!std::is_constructible_v<Leaf, TreeIdx>);
static_assert(!std::is_constructible_v<TreeIdx, Leaf>);
static_assert(!std::is_constructible_v<BlockId, Leaf>);
static_assert(!std::is_constructible_v<Cycles, Level>);

// Lane streaming (SoA stash, SWAR/AVX2 kernels) requires layout
// identity with the rep.
static_assert(sizeof(Leaf) == sizeof(std::uint32_t));
static_assert(sizeof(BlockId) == sizeof(std::uint64_t));
static_assert(std::is_trivially_copyable_v<Leaf> &&
              std::is_trivially_copyable_v<BlockId>);

// ------------------------------------------------------------------
// Capability map (the "arithmetic only where meaningful" table).
// ------------------------------------------------------------------

// Cycles: a true quantity. Additive with itself, scalable by a raw
// count, never mixable with another domain.
static_assert(CanAdd<Cycles, Cycles>::value);
static_assert(CanSub<Cycles, Cycles>::value);
static_assert(CanMul<Cycles, int>::value);
static_assert(CanMul<int, Cycles>::value);
static_assert(!CanAdd<Cycles, int>::value,
              "cycles + raw int would hide a units bug");
static_assert(!CanAdd<Cycles, Level>::value);
static_assert(!CanMul<Cycles, Cycles>::value,
              "cycles * cycles is not a cycle count");

// BlockId / TreeIdx / Level: ordinals. Displacement by an integer
// and ordinal - ordinal -> raw distance; never ordinal + ordinal.
static_assert(CanAdd<BlockId, std::uint64_t>::value);
static_assert(CanSub<BlockId, BlockId>::value);
static_assert(std::is_same_v<decltype(std::declval<BlockId>() -
                                      std::declval<BlockId>()),
                             std::uint64_t>,
              "id - id is a group-relative index, not an id");
static_assert(!CanAdd<BlockId, BlockId>::value,
              "id + id has no meaning");
static_assert(!CanAdd<BlockId, TreeIdx>::value);
static_assert(!CanAdd<Level, Cycles>::value);
static_assert(CanAdd<Level, int>::value);
static_assert(CanSub<Level, Level>::value);
static_assert(!CanMul<BlockId, int>::value,
              "scaling an ordinal is meaningless");

// Leaf: secret label. Only xor (the path-agreement mask) and
// counting; xor yields the raw mask for std::bit_width.
static_assert(CanXor<Leaf, Leaf>::value);
static_assert(std::is_same_v<decltype(std::declval<Leaf>() ^
                                      std::declval<Leaf>()),
                             std::uint32_t>);
static_assert(!CanAdd<Leaf, Leaf>::value,
              "leaf labels must not be added");
static_assert(!CanAdd<Leaf, int>::value);
static_assert(!CanSub<Leaf, Leaf>::value);
static_assert(!CanXor<Leaf, BlockId>::value);
static_assert(!CanXor<Leaf, std::uint32_t>::value,
              "xor against raw bits would bypass the label domain");

// Comparison never crosses domains.
static_assert(CanCompare<Leaf, Leaf>::value);
static_assert(!CanCompare<Leaf, TreeIdx>::value);
static_assert(!CanCompare<BlockId, std::uint64_t>::value);
static_assert(!CanCompare<Cycles, int>::value);

// Counters: all five iterate.
static_assert(CanIncrement<Cycles>::value &&
              CanIncrement<BlockId>::value &&
              CanIncrement<Leaf>::value &&
              CanIncrement<TreeIdx>::value &&
              CanIncrement<Level>::value);

// ------------------------------------------------------------------
// Runtime behavior of the sanctioned operations.
// ------------------------------------------------------------------

TEST(StrongType, ValueRoundTrip)
{
    EXPECT_EQ(BlockId{42}.value(), 42u);
    EXPECT_EQ(Leaf{7}.value(), 7u);
    EXPECT_EQ((512_id).value(), 512u);
    EXPECT_EQ((3_lvl).value(), 3u);
    EXPECT_EQ((100_cyc).value(), 100u);
}

TEST(StrongType, CyclesQuantityArithmetic)
{
    Cycles t{100};
    t += Cycles{50};
    EXPECT_EQ(t, Cycles{150});
    EXPECT_EQ(t - Cycles{30}, Cycles{120});
    EXPECT_EQ(t * 2, Cycles{300});
    EXPECT_EQ(2 * t, Cycles{300});
    EXPECT_EQ(t % Cycles{40}, Cycles{30});
}

TEST(StrongType, OrdinalOffsetAndDistance)
{
    const BlockId base{64};
    EXPECT_EQ(base + 3, BlockId{67});
    EXPECT_EQ((base + 3) - base, 3u);
    BlockId id = base;
    id += 8;
    EXPECT_EQ(id, BlockId{72});
    EXPECT_EQ(++id, BlockId{73});
}

TEST(StrongType, LeafXorAgreementMask)
{
    // commonLevel's input: identical labels xor to zero, labels that
    // disagree at the root xor to a full-width mask.
    EXPECT_EQ(5_leaf ^ 5_leaf, 0u);
    EXPECT_EQ(0_leaf ^ 7_leaf, 7u);
    EXPECT_EQ(6_leaf ^ 7_leaf, 1u);
}

TEST(StrongType, OrderingWithinDomain)
{
    EXPECT_LT(3_lvl, 4_lvl);
    EXPECT_GT(9_node, 3_node);
    EXPECT_LE(Cycles{5}, Cycles{5});
}

TEST(StrongType, Sentinels)
{
    EXPECT_NE(0_id, kInvalidBlock);
    EXPECT_NE(0_leaf, kInvalidLeaf);
    EXPECT_EQ(kInvalidBlock.value(),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(StrongType, HashAndStreamInsertion)
{
    std::unordered_set<BlockId> ids{1_id, 2_id, 1_id};
    EXPECT_EQ(ids.size(), 2u);
    std::ostringstream os;
    os << 42_id << ":" << 3_leaf;
    EXPECT_EQ(os.str(), "42:3");
}

TEST(StrongType, DefaultConstructionIsZero)
{
    EXPECT_EQ(Cycles{}.value(), 0u);
    EXPECT_EQ(BlockId{}.value(), 0u);
}

} // namespace
} // namespace proram
