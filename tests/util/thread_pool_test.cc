/** @file Unit tests for the fixed-size FIFO thread pool. */

#include "util/thread_pool.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace proram::util
{
namespace
{

TEST(ThreadPool, RunsSubmittedJobs)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.size(), 2u);
    std::atomic<int> sum{0};
    std::vector<std::future<void>> futures;
    for (int i = 1; i <= 10; ++i)
        futures.push_back(pool.submit([&sum, i] { sum += i; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPool, ReturnsValuesThroughFutures)
{
    ThreadPool pool(3);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 20; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    // Futures collect in submission order regardless of completion
    // order - the property runGrid() relies on for deterministic
    // result layout.
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::mutex m;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i) {
        futures.push_back(pool.submit([&order, &m, i] {
            std::lock_guard<std::mutex> lock(m);
            order.push_back(i);
        }));
    }
    for (auto &f : futures)
        f.get();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i) << "FIFO queue must run jobs in order";
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("cell failed"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsPendingJobs)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 8; ++i)
            pool.submit([&ran] { ++ran; });
        // No explicit wait: destruction must still run everything.
    }
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnv)
{
    ::setenv("PRORAM_BENCH_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
    ::setenv("PRORAM_BENCH_THREADS", "not-a-number", 1);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
    ::unsetenv("PRORAM_BENCH_THREADS");
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

} // namespace
} // namespace proram::util
