/** @file Unit tests for the deterministic RNG. */

#include "util/random.hh"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/logging.hh"

namespace proram
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowZeroPanics)
{
    Rng rng(7);
    EXPECT_THROW(rng.below(0), SimPanic);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BelowIsApproximatelyUniform)
{
    // Chi-square test at 10 buckets, 20k samples; 99.9% critical
    // value for 9 dof is 27.9.
    Rng rng(42);
    const int buckets = 10, samples = 20000;
    std::vector<int> count(buckets, 0);
    for (int i = 0; i < samples; ++i)
        ++count[rng.below(buckets)];
    const double expect = static_cast<double>(samples) / buckets;
    double chi2 = 0;
    for (int c : count)
        chi2 += (c - expect) * (c - expect) / expect;
    EXPECT_LT(chi2, 27.9);
}

TEST(Rng, InRangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.inRange(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        saw_lo |= v == 10;
        saw_hi |= v == 13;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

} // namespace
} // namespace proram
