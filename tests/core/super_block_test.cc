/** @file Unit tests for super-block geometry helpers. */

#include "core/super_block.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace proram
{
namespace
{

using namespace proram::literals;

TEST(SuperBlock, BaseAlignment)
{
    EXPECT_EQ(sbBase(0_id, 2), 0_id);
    EXPECT_EQ(sbBase(1_id, 2), 0_id);
    EXPECT_EQ(sbBase(2_id, 2), 2_id);
    EXPECT_EQ(sbBase(7_id, 4), 4_id);
    EXPECT_EQ(sbBase(7_id, 1), 7_id);
}

TEST(SuperBlock, NonPow2SizePanics)
{
    EXPECT_THROW(sbBase(0_id, 3), SimPanic);
    EXPECT_THROW(sbNeighborBase(0_id, 6), SimPanic);
}

TEST(SuperBlock, NeighborBaseXors)
{
    // Fig. 3: (0x00,0x01) and (0x02,0x03) are neighbours.
    EXPECT_EQ(sbNeighborBase(0_id, 2), 2_id);
    EXPECT_EQ(sbNeighborBase(2_id, 2), 0_id);
    EXPECT_EQ(sbNeighborBase(4_id, 4), 0_id);
    EXPECT_EQ(sbNeighborBase(0_id, 4), 4_id);
    EXPECT_EQ(sbNeighborBase(5_id, 1), 4_id);
}

TEST(SuperBlock, MisalignedNeighborPanics)
{
    EXPECT_THROW(sbNeighborBase(1_id, 2), SimPanic);
}

TEST(SuperBlock, AreNeighborsMatchesPaperExamples)
{
    // Block 0x02 is a neighbour of 0x03 (size 1).
    EXPECT_TRUE(areNeighbors(2_id, 3_id, 1));
    // (0x00,0x01) is a neighbour of (0x02,0x03).
    EXPECT_TRUE(areNeighbors(0_id, 2_id, 2));
    // (0x02,0x03) is NOT a neighbour of (0x04,0x05).
    EXPECT_FALSE(areNeighbors(2_id, 4_id, 2));
    // 0x03 and 0x04 are not neighbours at size 1 either.
    EXPECT_FALSE(areNeighbors(3_id, 4_id, 1));
    // Misaligned inputs are never neighbours.
    EXPECT_FALSE(areNeighbors(1_id, 2_id, 2));
}

TEST(SuperBlock, MembersEnumerate)
{
    EXPECT_EQ(sbMembers(4_id, 1), (std::vector<BlockId>{4_id}));
    EXPECT_EQ(sbMembers(4_id, 4), (std::vector<BlockId>{4_id, 5_id, 6_id, 7_id}));
}

TEST(SuperBlock, MergeWithinBoundsChecksDataSpace)
{
    // 100 data blocks: pair (96..99 size 4 -> 8-aligned pair 96..103)
    // spills past the end.
    EXPECT_FALSE(mergeWithinBounds(96_id, 4, 100, 32));
    EXPECT_TRUE(mergeWithinBounds(96_id, 2, 100, 32));
}

TEST(SuperBlock, MergeWithinBoundsChecksFanout)
{
    // Merging size-16 blocks creates size 32 == fanout: allowed.
    EXPECT_TRUE(mergeWithinBounds(0_id, 16, 1024, 32));
    // Creating size 64 > fanout 32: forbidden (Sec. 4.1).
    EXPECT_FALSE(mergeWithinBounds(0_id, 32, 1024, 32));
}

TEST(SuperBlock, NeighborhoodIsInvolution)
{
    for (std::uint32_t size : {1u, 2u, 4u, 8u}) {
        for (std::uint64_t b = 0; b < 64; b += size) {
            const BlockId base{b};
            EXPECT_EQ(sbNeighborBase(sbNeighborBase(base, size), size),
                      base);
        }
    }
}


TEST(SuperBlockStrided, Stride0MatchesClassic)
{
    for (BlockId id : {0_id, 5_id, 13_id, 100_id}) {
        for (std::uint32_t size : {1u, 2u, 4u}) {
            EXPECT_EQ(sbBaseStrided(id, size, 0), sbBase(id, size));
            EXPECT_EQ(sbMembersStrided(sbBase(id, size), size, 0),
                      sbMembers(sbBase(id, size), size));
        }
    }
    EXPECT_EQ(sbNeighborBaseStrided(4_id, 4, 0), sbNeighborBase(4_id, 4));
}

TEST(SuperBlockStrided, BaseClearsStrideField)
{
    // size 2, stride 4 (log 2): members {b, b+4}; bit 2 selects.
    EXPECT_EQ(sbBaseStrided(0_id, 2, 2), 0_id);
    EXPECT_EQ(sbBaseStrided(4_id, 2, 2), 0_id);
    EXPECT_EQ(sbBaseStrided(5_id, 2, 2), 1_id);
    EXPECT_EQ(sbBaseStrided(7_id, 2, 2), 3_id);
    // size 4, stride 2 (log 1): bits 1..2 cleared.
    EXPECT_EQ(sbBaseStrided(6_id, 4, 1), 0_id);
    EXPECT_EQ(sbBaseStrided(9_id, 4, 1), BlockId{9u & ~6u});
}

TEST(SuperBlockStrided, MembersAreStrideSpaced)
{
    EXPECT_EQ(sbMembersStrided(1_id, 2, 2),
              (std::vector<BlockId>{1_id, 5_id}));
    EXPECT_EQ(sbMembersStrided(0_id, 4, 1),
              (std::vector<BlockId>{0_id, 2_id, 4_id, 6_id}));
}

TEST(SuperBlockStrided, NeighborFlipsNextBit)
{
    // Pair {1,5} (size 2 stride 4): neighbour is {9,13}.
    EXPECT_EQ(sbNeighborBaseStrided(1_id, 2, 2), 9_id);
    EXPECT_EQ(sbNeighborBaseStrided(9_id, 2, 2), 1_id);
}

TEST(SuperBlockStrided, NeighborhoodIsInvolution)
{
    for (std::uint32_t s : {0u, 1u, 2u, 3u}) {
        for (std::uint32_t size : {1u, 2u, 4u}) {
            for (std::uint64_t i = 0; i < 64; ++i) {
                const BlockId id{i};
                const BlockId base = sbBaseStrided(id, size, s);
                EXPECT_EQ(sbNeighborBaseStrided(
                              sbNeighborBaseStrided(base, size, s),
                              size, s),
                          base);
            }
        }
    }
}

TEST(SuperBlockStrided, MergeBoundsUseSpan)
{
    // size 8 stride 4: merged span = 16*4 = 64 > fanout 32.
    EXPECT_FALSE(mergeWithinBoundsStrided(0_id, 8, 2, 1 << 20, 32));
    // size 4 stride 2: span 16 <= 32, inside data space.
    EXPECT_TRUE(mergeWithinBoundsStrided(0_id, 4, 1, 1 << 20, 32));
    // Last member past the data space.
    EXPECT_FALSE(mergeWithinBoundsStrided(96_id, 2, 2, 100, 32));
}

} // namespace
} // namespace proram
