/** @file Unit tests for PrORAM's dynamic super block policy. */

#include "core/dynamic_policy.hh"

#include <gtest/gtest.h>

#include <set>

#include "core/super_block.hh"
#include "oram/integrity.hh"
#include "util/random.hh"
#include "util/logging.hh"

namespace proram
{
namespace
{

using namespace proram::literals;

struct FakeLlc : LlcProbe
{
    bool probe(BlockId b) const override { return resident.count(b); }
    std::set<BlockId> resident;
};

struct Fixture
{
    explicit Fixture(DynamicPolicyConfig pcfg = {})
    {
        cfg.numDataBlocks = 1ULL << 12;
        cfg.seed = 23;
        oram = std::make_unique<UnifiedOram>(cfg);
        oram->initialize(1);
        policy = std::make_unique<DynamicSuperBlockPolicy>(*oram, llc,
                                                           pcfg);
    }

    AccessDecision access(BlockId b, bool wb = false)
    {
        oram->posMapWalk(b);
        const Leaf leaf = oram->posMap().leafOf(b);
        oram->engine().readPath(leaf);
        auto d = policy->onDataAccess(b, wb);
        oram->engine().writePath(leaf);
        while (oram->engine().stash().overCapacity())
            oram->engine().dummyAccess();
        return d;
    }

    std::uint32_t sbSize(BlockId b)
    {
        return oram->posMap().entry(b).sbSize();
    }

    OramConfig cfg;
    FakeLlc llc;
    std::unique_ptr<UnifiedOram> oram;
    std::unique_ptr<DynamicSuperBlockPolicy> policy;
};

TEST(DynamicPolicy, ConfigValidation)
{
    OramConfig cfg;
    cfg.numDataBlocks = 1ULL << 12;
    UnifiedOram oram(cfg);
    FakeLlc llc;
    DynamicPolicyConfig p;
    p.maxSbSize = 3;
    EXPECT_THROW(DynamicSuperBlockPolicy(oram, llc, p), SimFatal);
    p = {};
    p.maxSbSize = 64; // fanout is 32
    EXPECT_THROW(DynamicSuperBlockPolicy(oram, llc, p), SimFatal);
    p = {};
    p.cMerge = 0.0;
    EXPECT_THROW(DynamicSuperBlockPolicy(oram, llc, p), SimFatal);
}

TEST(DynamicPolicy, AllBlocksStartAsSingletons)
{
    Fixture f;
    for (std::uint64_t b = 0; b < 32; ++b)
        EXPECT_EQ(f.sbSize(BlockId{b}), 1u);
}

TEST(DynamicPolicy, NoMergeWithoutNeighborInLlc)
{
    Fixture f;
    f.access(0_id);
    f.access(0_id);
    f.access(0_id);
    EXPECT_EQ(f.sbSize(0_id), 1u);
    EXPECT_EQ(f.policy->policyStats().merges, 0u);
}

TEST(DynamicPolicy, MergeAfterObservedLocality)
{
    Fixture f;
    // Neighbour 1 is LLC-resident whenever 0 is accessed: locality.
    f.llc.resident = {1_id};
    f.access(0_id); // merge counter 0 -> 1 >= threshold(1)=1 -> merge
    EXPECT_EQ(f.sbSize(0_id), 2u);
    EXPECT_EQ(f.sbSize(1_id), 2u);
    EXPECT_EQ(f.oram->posMap().leafOf(0_id), f.oram->posMap().leafOf(1_id));
    EXPECT_EQ(f.policy->policyStats().merges, 1u);
    EXPECT_TRUE(checkIntegrity(*f.oram).ok);
}

TEST(DynamicPolicy, MergeRemapRefreshesStashCachedLeaves)
{
    // A merge remaps blocks that are stash-resident mid-access; the
    // stash's cached leaf copies must see the new mapping so this
    // same access's write-back evicts along the right path.
    Fixture f;
    f.llc.resident = {1_id};
    f.oram->posMapWalk(0_id);
    const Leaf old_leaf = f.oram->posMap().leafOf(0_id);
    f.oram->engine().readPath(old_leaf);
    ASSERT_TRUE(f.oram->engine().stash().contains(0_id));
    f.policy->onDataAccess(0_id, /*wb=*/false); // merges (0,1), remaps
    ASSERT_EQ(f.sbSize(0_id), 2u);
    const Stash &stash = f.oram->engine().stash();
    ASSERT_TRUE(stash.contains(0_id));
    EXPECT_EQ(stash.leafOf(0_id), f.oram->posMap().leafOf(0_id));
    if (stash.contains(1_id)) {
        EXPECT_EQ(stash.leafOf(1_id), f.oram->posMap().leafOf(1_id));
    }
    f.oram->engine().writePath(old_leaf);
    EXPECT_TRUE(checkIntegrity(*f.oram).ok);
}

TEST(DynamicPolicy, BreakRemapRefreshesStashCachedLeaves)
{
    DynamicPolicyConfig p;
    p.breakMode = DynamicPolicyConfig::BreakMode::Static;
    Fixture f(p);
    f.llc.resident = {1_id};
    f.access(0_id); // merge
    ASSERT_EQ(f.sbSize(0_id), 2u);
    f.llc.resident.clear();
    bool broke = false;
    for (int i = 0; i < 8 && !broke; ++i) {
        f.oram->posMapWalk(0_id);
        const Leaf leaf = f.oram->posMap().leafOf(0_id);
        f.oram->engine().readPath(leaf);
        f.policy->onDataAccess(0_id, /*wb=*/false);
        broke = f.sbSize(0_id) == 1;
        if (broke) {
            // Both halves were just remapped to fresh independent
            // leaves; the resident copy's cached leaf must match.
            ASSERT_TRUE(f.oram->engine().stash().contains(0_id));
            EXPECT_EQ(f.oram->engine().stash().leafOf(0_id),
                      f.oram->posMap().leafOf(0_id));
        }
        f.oram->engine().writePath(leaf);
        while (f.oram->engine().stash().overCapacity())
            f.oram->engine().dummyAccess();
    }
    ASSERT_TRUE(broke);
    EXPECT_TRUE(checkIntegrity(*f.oram).ok);
}

TEST(DynamicPolicy, MergeCounterDecrementsOnNoLocality)
{
    Fixture f;
    f.llc.resident = {1_id};
    // Raise the threshold so one observation is not enough.
    f.policy->onEpoch(/*ev=*/0.5, /*acc=*/1.0); // adaptive > 0
    const double thr = f.policy->mergeThreshold(1);
    ASSERT_GT(thr, 1.0);
    f.access(0_id);
    EXPECT_EQ(f.sbSize(0_id), 1u);
    const auto c1 = f.policy->readMergeCounter(0_id, 1);
    EXPECT_EQ(c1, 1u);
    // Now neighbour absent: counter decrements.
    f.llc.resident.clear();
    f.access(0_id);
    EXPECT_EQ(f.policy->readMergeCounter(0_id, 1), 0u);
}

TEST(DynamicPolicy, MergedGroupPrefetchesSibling)
{
    Fixture f;
    f.llc.resident = {1_id};
    f.access(0_id);           // merged
    f.llc.resident.clear(); // sibling no longer cached
    auto d = f.access(0_id);
    EXPECT_EQ(d.prefetches, std::vector<BlockId>{1_id});
    EXPECT_TRUE(f.oram->posMap().entry(1_id).prefetchBit);
}

TEST(DynamicPolicy, PrefetchHitFeedsBreakCounterUp)
{
    Fixture f;
    f.llc.resident = {1_id};
    f.access(0_id); // merge
    f.llc.resident.clear();
    f.access(0_id); // prefetch 1
    f.policy->onDemandTouch(1_id);
    f.access(0_id); // consume: hit
    EXPECT_EQ(f.policy->policyStats().prefetchHits, 1u);
    EXPECT_EQ(f.sbSize(0_id), 2u) << "hit must not break the super block";
}

TEST(DynamicPolicy, RepeatedMissesBreakSuperBlock)
{
    DynamicPolicyConfig p;
    p.breakMode = DynamicPolicyConfig::BreakMode::Static;
    Fixture f(p);
    f.llc.resident = {1_id};
    f.access(0_id); // merge
    f.llc.resident.clear();
    // Break counter init = 3 (2 bits). Each access prefetches 1,
    // never used -> next access decrements. 3 misses drop it to 0,
    // the 4th pushes below the static threshold -> break.
    int broke_at = -1;
    for (int i = 0; i < 8; ++i) {
        f.access(0_id);
        if (f.sbSize(0_id) == 1) {
            broke_at = i;
            break;
        }
    }
    EXPECT_GE(broke_at, 2);
    EXPECT_NE(broke_at, -1) << "super block never broke";
    EXPECT_EQ(f.policy->policyStats().breaks, 1u);
    // Halves mapped independently.
    EXPECT_EQ(f.sbSize(1_id), 1u);
    EXPECT_TRUE(checkIntegrity(*f.oram).ok);
}

TEST(DynamicPolicy, BreakModeNoneNeverBreaks)
{
    DynamicPolicyConfig p;
    p.breakMode = DynamicPolicyConfig::BreakMode::None;
    Fixture f(p);
    f.llc.resident = {1_id};
    f.access(0_id);
    f.llc.resident.clear();
    for (int i = 0; i < 20; ++i)
        f.access(0_id);
    EXPECT_EQ(f.sbSize(0_id), 2u);
    EXPECT_EQ(f.policy->policyStats().breaks, 0u);
}

TEST(DynamicPolicy, MaxSbSizeCapsGrowth)
{
    DynamicPolicyConfig p;
    p.maxSbSize = 2;
    Fixture f(p);
    f.llc.resident = {0_id, 1_id, 2_id, 3_id};
    for (int i = 0; i < 10; ++i) {
        f.access(0_id);
        f.access(2_id);
    }
    EXPECT_EQ(f.sbSize(0_id), 2u);
    EXPECT_EQ(f.sbSize(2_id), 2u);
    // Pair (0,1) and (2,3) must NOT merge into a size-4 group.
    EXPECT_EQ(f.policy->policyStats().merges, 2u);
}

TEST(DynamicPolicy, GrowsToSize4WhenAllowed)
{
    DynamicPolicyConfig p;
    p.maxSbSize = 4;
    Fixture f(p);
    f.llc.resident = {0_id, 1_id, 2_id, 3_id};
    for (int i = 0; i < 12 && f.sbSize(0_id) < 4; ++i) {
        f.access(0_id);
        f.access(2_id);
    }
    EXPECT_EQ(f.sbSize(0_id), 4u);
    for (std::uint64_t m = 0; m < 4; ++m)
        EXPECT_EQ(f.oram->posMap().leafOf(BlockId{m}),
                  f.oram->posMap().leafOf(0_id));
    EXPECT_TRUE(checkIntegrity(*f.oram).ok);
}

TEST(DynamicPolicy, CounterBitSlicingRoundTrips)
{
    Fixture f;
    for (std::uint32_t v : {0u, 1u, 2u, 3u}) {
        f.policy->writeMergeCounter(8_id, 1, v);
        EXPECT_EQ(f.policy->readMergeCounter(8_id, 1), v);
    }
    for (std::uint32_t v : {0u, 5u, 15u}) {
        f.policy->writeMergeCounter(8_id, 2, v);
        EXPECT_EQ(f.policy->readMergeCounter(8_id, 2), v);
    }
    for (std::uint32_t v : {0u, 1u, 2u, 3u}) {
        f.policy->writeBreakCounter(12_id, 2, v);
        EXPECT_EQ(f.policy->readBreakCounter(12_id, 2), v);
    }
}

TEST(DynamicPolicy, CounterBitsLiveInPosMapEntries)
{
    Fixture f;
    f.policy->writeMergeCounter(0_id, 1, 0b10);
    EXPECT_TRUE(f.oram->posMap().entry(0_id).mergeBit);
    EXPECT_FALSE(f.oram->posMap().entry(1_id).mergeBit);
    f.policy->writeBreakCounter(0_id, 2, 0b01);
    EXPECT_FALSE(f.oram->posMap().entry(0_id).breakBit);
    EXPECT_TRUE(f.oram->posMap().entry(1_id).breakBit);
}

TEST(DynamicPolicy, StaticVsAdaptiveThresholds)
{
    DynamicPolicyConfig p;
    p.mergeThreshold = DynamicPolicyConfig::MergeThreshold::Static;
    Fixture f(p);
    EXPECT_DOUBLE_EQ(f.policy->mergeThreshold(1), 2.0);
    EXPECT_DOUBLE_EQ(f.policy->mergeThreshold(2), 4.0);
    EXPECT_DOUBLE_EQ(f.policy->mergeThreshold(4), 8.0);

    Fixture g;
    // Fresh adaptive state: rates zero -> merge threshold is the
    // hysteresis term; break threshold floors at the bottomed-out
    // value of 1.
    EXPECT_DOUBLE_EQ(g.policy->mergeThreshold(1), 1.0);
    EXPECT_DOUBLE_EQ(g.policy->breakThreshold(2), 1.0);
}

TEST(DynamicPolicy, AdaptiveThresholdFollowsEquation1)
{
    Fixture f;
    f.policy->onEpoch(0.2, 0.5); // phr defaults to 1.0 (no samples)
    // threshold = C * n^2 * ev * acc / phr = 1 * 4 * 0.2 * 0.5 / 1.
    EXPECT_NEAR(f.policy->adaptiveThreshold(2, 1.0), 0.4, 1e-9);
    EXPECT_NEAR(f.policy->mergeThreshold(2), 2.4, 1e-9);
    // Break threshold floors at 1.0 (bottomed-out counter breaks).
    EXPECT_NEAR(f.policy->breakThreshold(2), 1.0, 1e-9);
    // Coefficient scales linearly (Fig. 10).
    EXPECT_NEAR(f.policy->adaptiveThreshold(2, 4.0), 1.6, 1e-9);
    f.policy->onEpoch(0.8, 1.0); // adaptive(2) = 3.2 > floor
    EXPECT_NEAR(f.policy->breakThreshold(2), 3.2, 1e-9);
}

TEST(DynamicPolicy, PrefetchHitRateLowersThreshold)
{
    Fixture hi, lo;
    // hi: all prefetch hits; lo: all misses.
    hi.llc.resident = {1_id};
    hi.access(0_id);
    hi.llc.resident.clear();
    hi.access(0_id);
    hi.policy->onDemandTouch(1_id);
    hi.access(0_id);
    hi.policy->onEpoch(0.3, 0.8);

    lo.llc.resident = {1_id};
    lo.access(0_id);
    lo.llc.resident.clear();
    lo.access(0_id);
    lo.access(0_id);
    lo.policy->onEpoch(0.3, 0.8);

    EXPECT_LT(hi.policy->adaptiveThreshold(2, 1.0),
              lo.policy->adaptiveThreshold(2, 1.0));
}

TEST(DynamicPolicy, HysteresisSeparatesMergeAndBreak)
{
    Fixture f;
    f.policy->onEpoch(0.5, 1.0);
    EXPECT_NEAR(f.policy->mergeThreshold(2) -
                    f.policy->breakThreshold(2),
                2.0, 1e-9);
}

TEST(DynamicPolicy, InitialBreakCounterClamped)
{
    EXPECT_EQ(DynamicSuperBlockPolicy::initialBreakCounter(2), 3u);
    EXPECT_EQ(DynamicSuperBlockPolicy::initialBreakCounter(4), 8u);
    EXPECT_EQ(DynamicSuperBlockPolicy::initialBreakCounter(8), 16u);
}

TEST(DynamicPolicy, WritebackIsRemapOnly)
{
    Fixture f;
    f.llc.resident = {1_id};
    auto d = f.access(0_id, /*wb=*/true);
    EXPECT_TRUE(d.prefetches.empty());
    EXPECT_EQ(f.sbSize(0_id), 1u) << "write-backs must not merge";
    EXPECT_EQ(f.policy->readMergeCounter(0_id, 1), 0u);
}

TEST(DynamicPolicy, BrokenHalvesDoNotInstantlyRemerge)
{
    DynamicPolicyConfig p;
    p.breakMode = DynamicPolicyConfig::BreakMode::Static;
    Fixture f(p);
    f.llc.resident = {1_id};
    f.access(0_id);
    f.llc.resident.clear();
    for (int i = 0; i < 8 && f.sbSize(0_id) == 2; ++i)
        f.access(0_id);
    ASSERT_EQ(f.sbSize(0_id), 1u);
    // Merge bits were cleared on break.
    EXPECT_EQ(f.policy->readMergeCounter(0_id, 1), 0u);
}

TEST(DynamicPolicy, MergeRequiresCoherentNeighbor)
{
    DynamicPolicyConfig p;
    p.maxSbSize = 4;
    Fixture f(p);
    // Merge (0,1) but leave (2,3) as singletons; then demand locality
    // between pair (0,1) and its size-2 neighbour (2,3): merging must
    // be refused while (2,3) is incoherent (different leaves).
    f.llc.resident = {1_id};
    f.access(0_id);
    ASSERT_EQ(f.sbSize(0_id), 2u);
    // Keep 1 resident too so the (0,1) break counter never decays
    // (a sibling in the LLC is not re-prefetched).
    f.llc.resident = {1_id, 2_id, 3_id};
    for (int i = 0; i < 5; ++i)
        f.access(0_id);
    EXPECT_EQ(f.sbSize(0_id), 2u);
    EXPECT_TRUE(checkIntegrity(*f.oram).ok);
}

TEST(DynamicPolicy, IntegrityUnderRandomChurn)
{
    DynamicPolicyConfig p;
    p.maxSbSize = 4;
    p.breakMode = DynamicPolicyConfig::BreakMode::Static;
    Fixture f(p);
    Rng rng(17);
    for (int i = 0; i < 600; ++i) {
        const BlockId b{rng.below(256)};
        // Randomly toggle neighbour residency to exercise both paths.
        f.llc.resident.clear();
        if (rng.chance(0.5)) {
            const BlockId nb = sbNeighborBase(
                sbBase(b, f.sbSize(b)), f.sbSize(b));
            for (std::uint32_t k = 0; k < f.sbSize(b); ++k)
                f.llc.resident.insert(nb + k);
        }
        f.access(b, rng.chance(0.2));
        if (rng.chance(0.3))
            f.policy->onDemandTouch(BlockId{rng.below(256)});
        if (i % 100 == 99)
            f.policy->onEpoch(rng.real() * 0.3, rng.real());
    }
    const auto rep = checkIntegrity(*f.oram);
    EXPECT_TRUE(rep.ok) << (rep.violations.empty()
                                ? ""
                                : rep.violations.front());
}


TEST(DynamicPolicyStrided, MergesStridePairs)
{
    DynamicPolicyConfig p;
    p.strideLog = 2; // pair (b, b+4)
    Fixture f(p);
    f.llc.resident = {4_id};
    f.access(0_id); // neighbour of 0 at stride 4 is block 4 -> merge
    EXPECT_EQ(f.sbSize(0_id), 2u);
    EXPECT_EQ(f.sbSize(4_id), 2u);
    EXPECT_EQ(f.oram->posMap().entry(0_id).sbStrideLog, 2u);
    EXPECT_EQ(f.oram->posMap().leafOf(0_id), f.oram->posMap().leafOf(4_id));
    // The contiguous neighbour is untouched.
    EXPECT_EQ(f.sbSize(1_id), 1u);
    EXPECT_TRUE(checkIntegrity(*f.oram).ok);
}

TEST(DynamicPolicyStrided, ContiguousResidencyDoesNotMerge)
{
    DynamicPolicyConfig p;
    p.strideLog = 2;
    Fixture f(p);
    f.llc.resident = {1_id}; // contiguous neighbour, wrong stride
    for (int i = 0; i < 4; ++i)
        f.access(0_id);
    EXPECT_EQ(f.sbSize(0_id), 1u);
}

TEST(DynamicPolicyStrided, StridedGroupPrefetchesStrideSibling)
{
    DynamicPolicyConfig p;
    p.strideLog = 3;
    Fixture f(p);
    f.llc.resident = {8_id};
    f.access(0_id);
    ASSERT_EQ(f.sbSize(0_id), 2u);
    f.llc.resident.clear();
    auto d = f.access(0_id);
    EXPECT_EQ(d.prefetches, std::vector<BlockId>{8_id});
}

TEST(DynamicPolicyStrided, BreakRestoresStridedSingletons)
{
    DynamicPolicyConfig p;
    p.strideLog = 2;
    p.breakMode = DynamicPolicyConfig::BreakMode::Static;
    Fixture f(p);
    f.llc.resident = {4_id};
    f.access(0_id);
    ASSERT_EQ(f.sbSize(0_id), 2u);
    f.llc.resident.clear();
    for (int i = 0; i < 8 && f.sbSize(0_id) == 2; ++i)
        f.access(0_id);
    EXPECT_EQ(f.sbSize(0_id), 1u);
    EXPECT_EQ(f.sbSize(4_id), 1u);
    EXPECT_TRUE(checkIntegrity(*f.oram).ok);
}

TEST(DynamicPolicyStrided, SpanValidation)
{
    OramConfig cfg;
    cfg.numDataBlocks = 1ULL << 12;
    UnifiedOram oram(cfg);
    FakeLlc llc;
    DynamicPolicyConfig p;
    p.maxSbSize = 4;
    p.strideLog = 4; // span 64 > fanout 32
    EXPECT_THROW(DynamicSuperBlockPolicy(oram, llc, p), SimFatal);
    p.strideLog = 3; // span 32 == fanout: allowed
    EXPECT_NO_THROW(DynamicSuperBlockPolicy(oram, llc, p));
}

TEST(DynamicPolicyStrided, ChurnKeepsIntegrity)
{
    DynamicPolicyConfig p;
    p.strideLog = 2;
    p.maxSbSize = 4;
    p.breakMode = DynamicPolicyConfig::BreakMode::Static;
    Fixture f(p);
    Rng rng(29);
    for (int i = 0; i < 500; ++i) {
        const BlockId b{rng.below(512)};
        f.llc.resident.clear();
        if (rng.chance(0.5)) {
            const std::uint32_t n = f.sbSize(b);
            const BlockId nb = sbNeighborBaseStrided(
                sbBaseStrided(b, n, 2), n, 2);
            for (BlockId m : sbMembersStrided(nb, n, 2))
                f.llc.resident.insert(m);
        }
        f.access(b, rng.chance(0.2));
    }
    const auto rep = checkIntegrity(*f.oram);
    EXPECT_TRUE(rep.ok) << (rep.violations.empty()
                                ? ""
                                : rep.violations.front());
}

} // namespace
} // namespace proram
