/** @file Unit tests for the ORAM controller (backend integration). */

#include "core/oram_controller.hh"

#include <gtest/gtest.h>

#include "oram/integrity.hh"
#include "sim/system_config.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace proram
{
namespace
{

using namespace proram::literals;

OramConfig
ctlCfg()
{
    OramConfig c;
    c.numDataBlocks = 1ULL << 12;
    c.stashCapacity = 80;
    c.seed = 41;
    return c;
}

HierarchyConfig
hierCfg()
{
    HierarchyConfig h;
    h.l1 = CacheConfig{4 * 128, 2, 128};
    h.l2 = CacheConfig{64 * 128, 4, 128};
    return h;
}

struct Fixture
{
    explicit Fixture(MemScheme scheme = MemScheme::OramBaseline,
                     ControllerConfig ccfg = {},
                     OramConfig ocfg = ctlCfg())
        : hier(hierCfg()), ctl(ocfg, ccfg, hier)
    {
        if (scheme == MemScheme::OramStatic)
            ctl.configureStatic(2);
        else if (scheme == MemScheme::OramDynamic)
            ctl.configureDynamic(DynamicPolicyConfig{});
        else
            ctl.configureBaseline();
    }

    CacheHierarchy hier;
    OramController ctl;
};

TEST(Controller, UseBeforeConfigurePanics)
{
    CacheHierarchy hier(hierCfg());
    OramController ctl(ctlCfg(), ControllerConfig{}, hier);
    EXPECT_THROW(ctl.demandAccess(Cycles{0}, 0_id, OpType::Read), SimPanic);
}

TEST(Controller, DemandAccessCostsAtLeastOnePath)
{
    Fixture f;
    const Cycles done = f.ctl.demandAccess(Cycles{0}, 5_id, OpType::Read);
    // Cold PLB: 3 pos-map paths + 1 data path.
    const Cycles path = ctlCfg().pathAccessCycles();
    EXPECT_GE(done, path);
    EXPECT_EQ(f.ctl.stats().pathAccesses,
              f.ctl.stats().posMapAccesses + 1);
}

TEST(Controller, WarmPosMapCostsOnePath)
{
    Fixture f;
    f.ctl.demandAccess(Cycles{0}, 5_id, OpType::Read);
    const auto before = f.ctl.stats().pathAccesses;
    const Cycles t0 = f.ctl.busyUntil();
    const Cycles done = f.ctl.demandAccess(t0, 6_id, OpType::Read);
    EXPECT_EQ(f.ctl.stats().pathAccesses - before, 1u);
    EXPECT_EQ(done - t0, ctlCfg().pathAccessCycles());
}

TEST(Controller, AccessesSerialize)
{
    Fixture f;
    const Cycles c1 = f.ctl.demandAccess(Cycles{0}, 1_id, OpType::Read);
    // Issued while busy: starts after c1.
    const Cycles c2 = f.ctl.demandAccess(Cycles{10}, BlockId{33 * 32}, OpType::Read);
    EXPECT_GE(c2, c1 + ctlCfg().pathAccessCycles());
}

TEST(Controller, ReadYourWrites)
{
    Fixture f;
    Cycles t{0};
    t = f.ctl.dataAccess(t, 9_id, OpType::Write, 1234, nullptr);
    std::uint64_t v = 0;
    f.ctl.dataAccess(t, 9_id, OpType::Read, 0, &v);
    EXPECT_EQ(v, 1234u);
}

TEST(Controller, WritebackWithDataPersists)
{
    Fixture f;
    Cycles t = f.ctl.writebackWithData(Cycles{0}, 4_id, 777);
    std::uint64_t v = 0;
    f.ctl.dataAccess(t, 4_id, OpType::Read, 0, &v);
    EXPECT_EQ(v, 777u);
    EXPECT_EQ(f.ctl.stats().writebacks, 1u);
}

TEST(Controller, NonDataBlockAccessPanics)
{
    Fixture f;
    const BlockId pm{ctlCfg().numDataBlocks + 1};
    EXPECT_THROW(f.ctl.demandAccess(Cycles{0}, pm, OpType::Read), SimPanic);
}

TEST(Controller, StaticSchemePrefetchesIntoLlc)
{
    Fixture f(MemScheme::OramStatic);
    f.ctl.demandAccess(Cycles{0}, 10_id, OpType::Read); // super block {10, 11}
    EXPECT_TRUE(f.hier.probeLlc(11_id));
    EXPECT_FALSE(f.hier.probeLlc(12_id));
}

TEST(Controller, DynamicSchemeLearnsFromLlc)
{
    Fixture f(MemScheme::OramDynamic);
    Cycles t{0};
    // Access 20 then 21: when 21 is accessed, 20 sits in the LLC,
    // so the pair merges; later accesses prefetch the sibling.
    t = f.ctl.demandAccess(t, 20_id, OpType::Read);
    f.hier.fillFromMemory(20_id, false);
    t = f.ctl.demandAccess(t, 21_id, OpType::Read);
    f.hier.fillFromMemory(21_id, false);
    EXPECT_EQ(f.ctl.oram().posMap().entry(20_id).sbSize(), 2u);
    EXPECT_EQ(f.ctl.policyStats().merges, 1u);
}

TEST(Controller, BackgroundEvictionKeepsStashBounded)
{
    OramConfig ocfg = ctlCfg();
    ocfg.stashCapacity = 12;
    Fixture f(MemScheme::OramStatic, ControllerConfig{}, ocfg);
    Rng rng(3);
    Cycles t{0};
    for (int i = 0; i < 300; ++i) {
        t = f.ctl.demandAccess(t, BlockId{rng.below(4096)}, OpType::Read);
        EXPECT_LE(f.ctl.oram().engine().stash().size(), 12u);
    }
    EXPECT_GT(f.ctl.stats().bgEvictions, 0u);
}

TEST(Controller, EpochRollsEveryNRequests)
{
    ControllerConfig ccfg;
    ccfg.epochRequests = 10;
    Fixture f(MemScheme::OramDynamic, ccfg);
    Rng rng(4);
    Cycles t{0};
    for (int i = 0; i < 25; ++i)
        t = f.ctl.demandAccess(t, BlockId{rng.below(4096)}, OpType::Read);
    // No direct observable beyond "no crash" plus thresholds update;
    // sanity: the run completed and stats accumulated.
    EXPECT_EQ(f.ctl.stats().realRequests, 25u);
}

TEST(Controller, PeriodicModeCountsDummies)
{
    ControllerConfig ccfg;
    ccfg.periodic.enabled = true;
    ccfg.periodic.oInt = Cycles{100};
    Fixture f(MemScheme::OramBaseline, ccfg);
    Cycles t = f.ctl.demandAccess(Cycles{0}, 1_id, OpType::Read);
    // Long idle gap: dummies must fill it.
    t += Cycles{50000};
    f.ctl.demandAccess(t, 2_id, OpType::Read);
    EXPECT_GT(f.ctl.stats().periodicDummies, 0u);
    f.ctl.finalize(t + Cycles{100000});
    EXPECT_GT(f.ctl.stats().periodicDummies, 10u);
}

TEST(Controller, PeriodicDummiesAreFunctional)
{
    ControllerConfig ccfg;
    ccfg.periodic.enabled = true;
    ccfg.periodic.oInt = Cycles{100};
    Fixture f(MemScheme::OramBaseline, ccfg);
    Cycles t = f.ctl.demandAccess(Cycles{0}, 1_id, OpType::Read);
    f.ctl.finalize(t + Cycles{200000});
    // Dummy accesses really read paths.
    EXPECT_EQ(f.ctl.oram().engine().pathReads(),
              f.ctl.stats().pathAccesses);
    EXPECT_TRUE(checkIntegrity(f.ctl.oram()).ok);
}

TEST(Controller, TraditionalPrefetcherIssuesOramAccesses)
{
    ControllerConfig ccfg;
    ccfg.traditionalPrefetcher = true;
    Fixture f(MemScheme::OramBaseline, ccfg);
    Cycles t{0};
    for (std::uint64_t i = 100; i < 110; ++i) {
        const BlockId b{i};
        t = f.ctl.demandAccess(t, b, OpType::Read);
        f.hier.fillFromMemory(b, false);
        f.ctl.onDemandTouch(t, b);
    }
    EXPECT_GT(f.ctl.stats().traditionalPrefetches, 0u);
}

TEST(Controller, MemAccessCountEqualsPathAccesses)
{
    Fixture f(MemScheme::OramDynamic);
    Rng rng(6);
    Cycles t{0};
    for (int i = 0; i < 100; ++i)
        t = f.ctl.demandAccess(t, BlockId{rng.below(4096)}, OpType::Read);
    EXPECT_EQ(f.ctl.memAccessCount(), f.ctl.stats().pathAccesses);
    EXPECT_EQ(f.ctl.oram().engine().pathReads(),
              f.ctl.stats().pathAccesses);
}


TEST(Controller, BgEvictionBudgetBoundsPathologicalConfigs)
{
    // Static sbsize 8 at Z=3 cannot fit in the tree: more blocks are
    // permanently homeless than the stash holds. The per-request
    // budget must keep the simulation finite while recording the
    // collapse in the dummy-access count.
    OramConfig ocfg = ctlCfg();
    ocfg.numDataBlocks = 48 * 1024;
    ControllerConfig ccfg;
    ccfg.maxBgEvictionsPerRequest = 8;
    CacheHierarchy hier(hierCfg());
    OramController ctl(ocfg, ccfg, hier);
    ctl.configureStatic(8);
    Cycles t{0};
    for (int i = 0; i < 20; ++i)
        t = ctl.demandAccess(t, BlockId{static_cast<std::uint64_t>(i) * 64},
                             OpType::Read);
    EXPECT_GE(ctl.stats().bgEvictions, 8u * 10);
    EXPECT_LE(ctl.stats().bgEvictions, 8u * 20 + 20);
}

TEST(Controller, PrefetchDropUndoesMarking)
{
    // Fill the tiny LLC with dirty lines so the prefetch insertion of
    // a merged sibling is refused; its prefetch bit must be cleared.
    Fixture f(MemScheme::OramDynamic);
    Cycles t{0};
    // Merge pair (20, 21).
    t = f.ctl.demandAccess(t, 20_id, OpType::Read);
    f.hier.fillFromMemory(20_id, false);
    t = f.ctl.demandAccess(t, 21_id, OpType::Read);
    f.hier.fillFromMemory(21_id, false);
    ASSERT_EQ(f.ctl.oram().posMap().entry(20_id).sbSize(), 2u);
    // Dirty every LLC set.
    for (std::uint64_t b = 1000; b < 1000 + 64; ++b)
        f.hier.fillFromMemory(BlockId{b}, true);
    // Re-access 20: sibling 21 prefetch insertion hits a dirty
    // victim everywhere -> dropped -> bit cleared.
    t = f.ctl.demandAccess(t, 20_id, OpType::Read);
    EXPECT_FALSE(f.hier.probeLlc(21_id));
    EXPECT_FALSE(f.ctl.oram().posMap().entry(21_id).prefetchBit);
}

TEST(Controller, IntegrityAfterMixedWorkload)
{
    for (MemScheme scheme :
         {MemScheme::OramBaseline, MemScheme::OramStatic,
          MemScheme::OramDynamic}) {
        Fixture f(scheme);
        Rng rng(scheme == MemScheme::OramStatic ? 1 : 2);
        Cycles t{0};
        for (int i = 0; i < 250; ++i) {
            const BlockId b{rng.below(4096)};
            const OpType op =
                rng.chance(0.3) ? OpType::Write : OpType::Read;
            t = f.ctl.demandAccess(t, b, op);
            f.ctl.onDemandTouch(t, b);
            for (const auto &v : f.hier.fillFromMemory(
                     b, op == OpType::Write)) {
                f.ctl.writebackAccess(t, v.block);
            }
        }
        const auto rep = checkIntegrity(f.ctl.oram());
        EXPECT_TRUE(rep.ok)
            << schemeName(scheme) << ": "
            << (rep.violations.empty() ? "" : rep.violations.front());
    }
}

} // namespace
} // namespace proram
