#include "core/request_sequencer.hh"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace proram
{
namespace
{

TEST(RequestSequencer, DependenciesFirstTouchIsFree)
{
    const std::vector<BlockId> blocks{BlockId{3}, BlockId{5},
                                      BlockId{7}};
    const auto deps = RequestSequencer::dependencies(blocks, 16);
    ASSERT_EQ(deps.size(), 3u);
    EXPECT_EQ(deps[0], -1);
    EXPECT_EQ(deps[1], -1);
    EXPECT_EQ(deps[2], -1);
}

TEST(RequestSequencer, DependenciesChainSameBlock)
{
    // Repeats of a block chain onto the latest earlier touch, not the
    // first one: 3 -> -1, 5 -> -1, 3 -> 0, 3 -> 2, 5 -> 1.
    const std::vector<BlockId> blocks{BlockId{3}, BlockId{5},
                                      BlockId{3}, BlockId{3},
                                      BlockId{5}};
    const auto deps = RequestSequencer::dependencies(blocks, 16);
    ASSERT_EQ(deps.size(), 5u);
    EXPECT_EQ(deps[0], -1);
    EXPECT_EQ(deps[1], -1);
    EXPECT_EQ(deps[2], 0);
    EXPECT_EQ(deps[3], 2);
    EXPECT_EQ(deps[4], 1);
}

TEST(RequestSequencer, DependenciesEmpty)
{
    const std::vector<BlockId> blocks;
    EXPECT_TRUE(RequestSequencer::dependencies(blocks, 4).empty());
}

TEST(RequestSequencer, WaitForNegativeReturnsImmediately)
{
    RequestSequencer seq(4);
    seq.waitFor(-1); // must not block
    EXPECT_FALSE(seq.isDone(0));
}

TEST(RequestSequencer, MarkDoneUnblocksWaiter)
{
    RequestSequencer seq(2);
    std::thread waiter([&] {
        seq.waitFor(0);
        seq.markDone(1);
    });
    EXPECT_FALSE(seq.isDone(1));
    seq.markDone(0);
    waiter.join();
    EXPECT_TRUE(seq.isDone(0));
    EXPECT_TRUE(seq.isDone(1));
}

TEST(RequestSequencer, WaitAfterDoneReturnsImmediately)
{
    RequestSequencer seq(1);
    seq.markDone(0);
    seq.waitFor(0); // already satisfied
    EXPECT_TRUE(seq.isDone(0));
}

} // namespace
} // namespace proram
