/** @file Unit tests for the static super block policy. */

#include "core/static_policy.hh"

#include <gtest/gtest.h>

#include <set>

#include "oram/integrity.hh"
#include "util/random.hh"
#include "util/logging.hh"

namespace proram
{
namespace
{

using namespace proram::literals;

/** LLC stand-in with an explicit resident set. */
struct FakeLlc : LlcProbe
{
    bool probe(BlockId b) const override { return resident.count(b); }
    std::set<BlockId> resident;
};

struct Fixture
{
    Fixture(std::uint32_t sb_size)
    {
        cfg.numDataBlocks = 1ULL << 12;
        cfg.seed = 21;
        oram = std::make_unique<UnifiedOram>(cfg);
        oram->initialize(sb_size);
        policy = std::make_unique<StaticSuperBlockPolicy>(*oram, llc,
                                                          sb_size);
    }

    /** Emulate the controller's access flow for one block. */
    AccessDecision access(BlockId b, bool wb = false)
    {
        oram->posMapWalk(b);
        const Leaf leaf = oram->posMap().leafOf(b);
        oram->engine().readPath(leaf);
        auto d = policy->onDataAccess(b, wb);
        oram->engine().writePath(leaf);
        while (oram->engine().stash().overCapacity())
            oram->engine().dummyAccess();
        return d;
    }

    OramConfig cfg;
    FakeLlc llc;
    std::unique_ptr<UnifiedOram> oram;
    std::unique_ptr<StaticSuperBlockPolicy> policy;
};

TEST(StaticPolicy, RejectsBadSizes)
{
    OramConfig cfg;
    cfg.numDataBlocks = 1ULL << 12;
    UnifiedOram oram(cfg);
    FakeLlc llc;
    EXPECT_THROW(StaticSuperBlockPolicy(oram, llc, 3), SimFatal);
    EXPECT_THROW(StaticSuperBlockPolicy(oram, llc, 64), SimFatal);
}

TEST(StaticPolicy, AccessPrefetchesAllSiblings)
{
    Fixture f(4);
    auto d = f.access(5_id); // super block {4,5,6,7}
    std::set<BlockId> got(d.prefetches.begin(), d.prefetches.end());
    EXPECT_EQ(got, (std::set<BlockId>{4_id, 6_id, 7_id}));
}

TEST(StaticPolicy, LlcResidentSiblingsNotReprefetched)
{
    Fixture f(4);
    f.llc.resident = {4_id, 6_id};
    auto d = f.access(5_id);
    std::set<BlockId> got(d.prefetches.begin(), d.prefetches.end());
    EXPECT_EQ(got, (std::set<BlockId>{7_id}));
}

TEST(StaticPolicy, WholeGroupRemappedTogether)
{
    Fixture f(4);
    const Leaf before = f.oram->posMap().leafOf(4_id);
    f.access(6_id);
    const Leaf after = f.oram->posMap().leafOf(4_id);
    for (std::uint64_t m = 4; m < 8; ++m)
        EXPECT_EQ(f.oram->posMap().leafOf(BlockId{m}), after);
    // Fresh leaf with overwhelming probability; at minimum the
    // geometry stays intact.
    (void)before;
    EXPECT_TRUE(checkIntegrity(*f.oram).ok);
}

TEST(StaticPolicy, GroupSizeNeverChanges)
{
    Fixture f(2);
    for (std::uint64_t b = 0; b < 64; ++b)
        f.access(BlockId{b});
    for (std::uint64_t b = 0; b < 64; ++b)
        EXPECT_EQ(f.oram->posMap().entry(BlockId{b}).sbSize(), 2u);
    EXPECT_EQ(f.policy->policyStats().merges, 0u);
    EXPECT_EQ(f.policy->policyStats().breaks, 0u);
}

TEST(StaticPolicy, WritebackDoesNotPrefetch)
{
    Fixture f(4);
    auto d = f.access(5_id, /*wb=*/true);
    EXPECT_TRUE(d.prefetches.empty());
    // But the group is still co-remapped.
    const Leaf leaf = f.oram->posMap().leafOf(4_id);
    for (std::uint64_t m = 4; m < 8; ++m)
        EXPECT_EQ(f.oram->posMap().leafOf(BlockId{m}), leaf);
}

TEST(StaticPolicy, PrefetchBitsSetOnSiblings)
{
    Fixture f(2);
    f.access(0_id);
    EXPECT_TRUE(f.oram->posMap().entry(1_id).prefetchBit);
    EXPECT_FALSE(f.oram->posMap().entry(1_id).hitBit);
    EXPECT_FALSE(f.oram->posMap().entry(0_id).prefetchBit);
}

TEST(StaticPolicy, HitAndMissAccounting)
{
    Fixture f(2);
    f.access(0_id); // prefetches 1
    f.policy->onDemandTouch(1_id); // prefetch used
    f.access(0_id); // bits consumed: one hit
    EXPECT_EQ(f.policy->policyStats().prefetchHits, 1u);

    f.access(2_id); // prefetches 3, never touched
    f.access(2_id); // consumed: one miss
    EXPECT_EQ(f.policy->policyStats().prefetchMisses, 1u);
}

TEST(StaticPolicy, Size1DegeneratesToBaseline)
{
    Fixture f(1);
    auto d = f.access(9_id);
    EXPECT_TRUE(d.prefetches.empty());
    EXPECT_EQ(f.oram->posMap().entry(9_id).sbSize(), 1u);
}

TEST(StaticPolicy, IntegrityAfterManyAccesses)
{
    Fixture f(4);
    Rng rng(3);
    for (int i = 0; i < 400; ++i)
        f.access(BlockId{rng.below(f.cfg.numDataBlocks)});
    const auto rep = checkIntegrity(*f.oram);
    EXPECT_TRUE(rep.ok) << (rep.violations.empty()
                                ? ""
                                : rep.violations.front());
}

} // namespace
} // namespace proram
