#include "core/oram_controller.hh"

#include <algorithm>
#include <cstdlib>

#include "core/dynamic_policy.hh"
#include "core/static_policy.hh"
#include "core/super_block.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace proram
{

namespace
{

/** The calling request's claim set (stage 1 fills it, stage 3b
 *  releases it). File-scope so the policy claim guard can subtract
 *  the caller's own claims: the guard must veto merges only on
 *  *other* requests' in-flight blocks, and the policy runs while the
 *  caller's own claims are still up (they keep the remap set pinned
 *  until the remaps land). */
thread_local std::vector<BlockId> tlsClaims;

} // namespace

OramController::OramController(const OramConfig &oram_cfg,
                               const ControllerConfig &ctl_cfg,
                               CacheHierarchy &hierarchy)
    : oramCfg_(oram_cfg), ctlCfg_(ctl_cfg), hierarchy_(hierarchy),
      oram_(oram_cfg),
      scheduler_(ctl_cfg.periodic, oram_cfg.pathAccessCycles())
{
    if (ctl_cfg.traditionalPrefetcher) {
        prefetcher_ =
            std::make_unique<StreamPrefetcher>(ctl_cfg.prefetcher);
    }
}

void
OramController::configureBaseline()
{
    policy_ = std::make_unique<BaselinePolicy>(oram_, *this);
    oram_.initialize(1);
}

void
OramController::configureStatic(std::uint32_t sb_size)
{
    policy_ =
        std::make_unique<StaticSuperBlockPolicy>(oram_, *this, sb_size);
    oram_.initialize(sb_size);
}

void
OramController::configureDynamic(const DynamicPolicyConfig &cfg)
{
    policy_ = std::make_unique<DynamicSuperBlockPolicy>(oram_, *this, cfg);
    oram_.initialize(1);
}

bool
OramController::probe(BlockId block) const
{
    return hierarchy_.probeLlc(block);
}

void
OramController::attachAuditor(obs::ObliviousnessAuditor *auditor)
{
    auditor_ = auditor;
    // Pos-map path accesses happen inside the unified front end; have
    // it report their public leaves directly. In concurrent mode the
    // walk runs mid-pipeline, so its leaves buffer into the request's
    // pmSink_ and replay contiguously at commit (the auditor's
    // per-grant path accounting assumes grant-ordered delivery).
    if (auditor) {
        oram_.setPosMapObserver([this](Leaf leaf) {
            if (pmSink_ != nullptr)
                pmSink_->push_back(leaf);
            else
                auditor_->onPath(obs::PathKind::PosMap, leaf);
        });
        // Scheduled-eviction paths (Ring ORAM) report straight to the
        // auditor: the engine serializes the calls in schedule order,
        // and onEvictionPath touches only its own fields, so no
        // commit-time buffering is needed. Path ORAM never fires it.
        oram_.engine().setEvictionObserver([this](Leaf leaf) {
            auditor_->onEvictionPath(leaf);
        });
    } else {
        oram_.setPosMapObserver({});
        oram_.engine().setEvictionObserver({});
    }
}

void
OramController::enableConcurrent(unsigned workers)
{
    panic_if(!policy_, "enableConcurrent before configure*()");
    panic_if(scheduler_.enabled(),
             "periodic scheduling is defined over a serial schedule; "
             "concurrent drive mode requires periodic.enabled=false");
    panic_if(ctlCfg_.traditionalPrefetcher,
             "traditional prefetcher drives through the cache "
             "hierarchy; not supported in concurrent drive mode");
    if (workers <= 1)
        return;
    concurrent_ = true;

    // Resolve the contention knobs (DESIGN.md Sec. 13): explicit
    // config wins, then the environment, then the defaults.
    std::uint32_t shards = ctlCfg_.stashShards;
    if (shards == 0) {
        shards = 8;
        if (const char *env = std::getenv("PRORAM_STASH_SHARDS")) {
            shards = static_cast<std::uint32_t>(
                std::strtoul(env, nullptr, 10));
            if (shards == 0)
                shards = 1;
        }
    }
    bool dedup = ctlCfg_.dedupWindow != 0;
    if (ctlCfg_.dedupWindow < 0) {
        if (const char *env = std::getenv("PRORAM_DEDUP"))
            dedup = std::strtoul(env, nullptr, 10) != 0;
    }

    subtree_ = std::make_unique<SubtreeCache>(
        oram_.engine().tree().numBuckets());
    if (dedup)
        subtree_->enableWindow(oram_.engine().tree());
    const std::uint64_t total = oram_.space().numTotalBlocks();
    claimed_ = std::make_unique<std::atomic<std::uint8_t>[]>(total);
    oram_.engine().enableConcurrent(subtree_.get(), claimed_.get(),
                                    shards);
    oram_.setClaimTable(claimed_.get());
    // Claims visible to the guard minus the calling request's own:
    // the policy runs with its own claims still up (see tlsClaims).
    policy_->setClaimGuard([this](BlockId b) {
        std::uint8_t own = 0;
        for (const BlockId m : tlsClaims)
            own += static_cast<std::uint8_t>(m == b);
        return claimed_[b.value()].load(std::memory_order_relaxed) >
               own;
    });
}

void
OramController::flushSubtreeWindow()
{
    if (subtree_ != nullptr)
        subtree_->flushWindow(oram_.engine().tree());
}

std::uint64_t
OramController::performAccess(BlockId block, bool is_writeback,
                              OpType op,
                              const std::uint64_t *write_data,
                              std::uint64_t *read_out)
{
    panic_if(!policy_, "controller used before configure*()");
    panic_if(!oram_.space().isData(block),
             "CPU-visible access to non-data block ", block);
    PRORAM_TRACE_SCOPE_ARG("controller", "access", "block", block);

    // 1. Recursion: bring the pos-map chain on-chip (Sec. 2.3).
    const PosMapWalk walk = oram_.posMapWalk(block);
    std::uint64_t paths = walk.pathAccesses();
    stats_.posMapAccesses += walk.pathAccesses();
    walkDepth_.sample(walk.pathAccesses());

    // 2. Read the super block's path into the stash (Sec. 2.2 step 2).
    const Leaf leaf = oram_.posMap().leafOf(block);
    if (auditor_)
        auditor_->onPath(obs::PathKind::Real, leaf);
    OramScheme &engine = oram_.engine();
    engine.readPath(leaf);
    ++paths;
    // Lazy initialization: a block that was never placed is created
    // here (payload 0, current leaf) - a no-op in eager mode.
    oram_.ensureCreated(block);
    std::uint64_t *payload = engine.stash().findData(block);
    panic_if(!payload, "block ", block, " absent from path ", leaf,
             " and stash (invariant broken)");

    // 3. Payload (null write_data = remap-only, payload preserved).
    if (op == OpType::Write && write_data)
        *payload = *write_data;
    if (read_out)
        *read_out = *payload;

    // 4. Policy: remap / merge / break / choose prefetches
    //    (steps 4 of the paper, plus Algorithms 1-2).
    const AccessDecision decision =
        policy_->onDataAccess(block, is_writeback);
    sbSize_.sample(oram_.posMap().entry(block).sbSize());

    // 5. Write-back phase (step 5).
    engine.writePath(leaf);

    // 6. Hand prefetched siblings to the LLC. Insertions that would
    //    displace dirty lines are dropped by the hierarchy (a
    //    prefetch must not force write-backs); undo their marking.
    for (BlockId p : decision.prefetches) {
        BlockId clean_victim = kInvalidBlock;
        if (!hierarchy_.insertPrefetch(p, &clean_victim))
            policy_->onPrefetchDropped(p);
    }

    // 7. Background eviction keeps the stash bounded (Sec. 2.4),
    //    within the per-request budget (see ControllerConfig).
    std::uint64_t spent = 0;
    while (engine.stash().overCapacity() &&
           spent < ctlCfg_.maxBgEvictionsPerRequest) {
        const Leaf dummy_leaf = engine.dummyAccess();
        if (auditor_)
            auditor_->onPath(obs::PathKind::BgEvict, dummy_leaf);
        ++paths;
        ++spent;
        ++stats_.bgEvictions;
    }
    return paths;
}

void
OramController::maybeRollEpoch(Cycles now)
{
    const std::uint64_t requests =
        stats_.realRequests + stats_.writebacks;
    if (requests - epochRequestBase_ < ctlCfg_.epochRequests)
        return;

    const std::uint64_t epoch_requests = requests - epochRequestBase_;
    const std::uint64_t epoch_bg = stats_.bgEvictions - epochBgBase_;
    const double eviction_rate =
        static_cast<double>(epoch_bg) / epoch_requests;
    const Cycles wall =
        now > epochStart_ ? now - epochStart_ : Cycles{1};
    const double access_rate =
        std::min(1.0, static_cast<double>(epochBusy_.value()) /
                          static_cast<double>(wall.value()));

    policy_->onEpoch(eviction_rate, access_rate);

    epochRequestBase_ = requests;
    epochBgBase_ = stats_.bgEvictions;
    epochStart_ = now;
    epochBusy_ = Cycles{0};
}

void
OramController::drainPeriodicDummies(Cycles now)
{
    // Idle periodic slots that elapsed ran dummy accesses.
    const std::uint64_t elapsed = scheduler_.drainDummies(now);
    for (std::uint64_t i = 0; i < elapsed; ++i) {
        const Leaf leaf = oram_.engine().dummyAccess();
        PRORAM_TRACE_EVENT("dummy", "periodic", "leaf", leaf);
        if (auditor_)
            auditor_->onPath(obs::PathKind::PeriodicDummy, leaf);
    }
    stats_.periodicDummies += elapsed;
    stats_.pathAccesses += elapsed;
}

Cycles
OramController::dataAccess(Cycles now, BlockId block, OpType op,
                           std::uint64_t write_data,
                           std::uint64_t *read_out)
{
    PRORAM_TRACE_SCOPE_ARG("controller", "dataAccess", "block", block);
    drainPeriodicDummies(now);

    std::uint64_t paths =
        performAccess(block, false, op,
                      op == OpType::Write ? &write_data : nullptr,
                      read_out);
    ++stats_.realRequests;
    stats_.pathAccesses += paths;

    const PeriodicGrant grant = scheduler_.schedule(now, paths);
    if (auditor_)
        auditor_->onGrant(grant.start, paths);
    requestLatency_.sample((grant.completion - now).value());
    epochBusy_ += grant.completion - grant.start;
    busyUntil_ = grant.completion;
    maybeRollEpoch(grant.completion);

    // The traditional prefetcher (Fig. 5) trains in onDemandTouch,
    // which the core calls exactly once per demand access (cache hit
    // or miss-return); training here too would double-observe misses.
    return grant.completion;
}

Cycles
OramController::demandAccess(Cycles now, BlockId block, OpType op)
{
    return dataAccess(now, block, op, 0, nullptr);
}

Cycles
OramController::queueAccess(BlockId block, OpType op,
                            const std::uint64_t *write_data,
                            std::uint64_t *read_out)
{
    if (!concurrent_) {
        // Serial queue drain: the exact dataAccess() protocol,
        // back-to-back against the controller clock.
        return dataAccess(busyUntil_, block, op,
                          write_data != nullptr ? *write_data : 0,
                          read_out);
    }

    panic_if(!policy_, "controller used before configure*()");
    panic_if(!oram_.space().isData(block),
             "CPU-visible access to non-data block ", block);
    PRORAM_TRACE_SCOPE_ARG("controller", "access", "block", block);

    OramScheme &engine = oram_.engine();
    static thread_local std::vector<FetchedBlock> fetchBuf;
    if (fetchBuf.size() < engine.maxPathBlocks())
        fetchBuf.resize(engine.maxPathBlocks());

    // Stage 1 - position-map walk, leaf resolve, super-block claim.
    // Claiming every current member (claim count + stash pin,
    // atomically per member under its shard lock) keeps the whole
    // remap set out of other requests' eviction passes until the
    // remaps land in stage 3b, so no member can land back in the tree
    // under a mapping this access is about to change. Only the meta
    // lock is held across the walk: the stash shard locks are taken
    // member-wise inside claimPin / the walk's inserts.
    std::vector<Leaf> pmLeaves;
    std::uint64_t walkPaths = 0;
    Leaf leaf = kInvalidLeaf;
    {
        const util::ScopedLock meta(metaLock_);
        pmSink_ = &pmLeaves;
        const PosMapWalk walk = oram_.posMapWalk(block);
        pmSink_ = nullptr;
        walkPaths = walk.pathAccesses();
        leaf = oram_.posMap().leafOf(block);
        const PosEntry &entry = oram_.posMap().entry(block);
        const std::uint32_t n = entry.sbSize();
        const std::uint32_t stride = entry.sbStrideLog;
        const BlockId base = sbBaseStrided(block, n, stride);
        tlsClaims.clear();
        for (std::uint32_t i = 0; i < n; ++i) {
            const BlockId m = sbMemberAt(base, i, stride);
            engine.stash().claimPin(m, claimed_[m.value()]);
            tlsClaims.push_back(m);
        }
    }

    // Stage 2 - path fetch into a thread-local buffer. Only per-node
    // locks are held, one bucket at a time: this is the stage that
    // overlaps across in-flight requests (dedicated buckets dedup
    // through the SubtreeCache window).
    const std::size_t fetched = engine.fetchPath(leaf, fetchBuf.data());
    std::uint64_t paths = walkPaths + 1;

    // Stage 3a - absorb the fetched blocks, then wait until the
    // target block is stash-resident. Our fetch may have missed it if
    // another request's fetch cleared it off a shared bucket first;
    // once any absorb deposits it, the claim pin makes stash
    // residency permanent until we release it below.
    {
        const util::ScopedLock meta(metaLock_);
        engine.absorbPath(fetchBuf.data(), fetched);
        // Lazy initialization: a block that was never placed cannot
        // arrive from any fetch; create it now so the residency wait
        // below terminates. No-op in eager mode, and same-block
        // requests are serialized by the sequencer, so creation
        // cannot race with itself.
        oram_.ensureCreated(block);
    }
    engine.stash().awaitResident(block);

    // Stage 3b - payload, policy remap, claim release, then this
    // request's eviction pass. The policy runs while our own claims
    // are still up (the guard subtracts them via tlsClaims), so every
    // block it remaps stays pinned until the new mapping is in the
    // position map; only then are the claims dropped and the members
    // handed back to the eviction passes. The eviction itself runs
    // outside the meta lock: it takes shard and node locks bucket-
    // wise (DESIGN.md Sec. 13).
    AccessDecision decision;
    {
        const util::ScopedLock meta(metaLock_);
        {
            const std::uint32_t s = engine.stash().shardOf(block);
            const util::ScopedLock sl = engine.stash().lockShard(s);
            std::uint64_t *payload =
                engine.stash().findDataLocked(s, block);
            panic_if(!payload, "block ", block, " absent from path ",
                     leaf, " and stash (invariant broken)");
            if (op == OpType::Write && write_data != nullptr)
                *payload = *write_data;
            if (read_out != nullptr)
                *read_out = *payload;
        }
        decision = policy_->onDataAccess(block, false);
        sbSize_.sample(oram_.posMap().entry(block).sbSize());
        for (const BlockId m : tlsClaims)
            engine.stash().releaseUnpin(m, claimed_[m.value()]);
        tlsClaims.clear();
    }
    engine.evictPath(leaf);

    // Stage 4 - background eviction while the stash is over capacity,
    // within the per-request budget. The capacity probe is lock-free
    // (atomic live count); random leaves come from the engine RNG
    // (internally locked); leaves are recorded for the audit replay
    // at commit.
    std::vector<Leaf> bgLeaves;
    std::uint64_t spent = 0;
    while (spent < ctlCfg_.maxBgEvictionsPerRequest) {
        if (!engine.stash().overCapacity())
            break;
        Leaf dummy_leaf;
        if (engine.dummyAccessConcurrentSafe()) {
            // Scheme-managed dummy (Ring): one scheduled-eviction
            // pass under the scheme's own node + shard locks. The
            // random-path round-trip below would make no eviction
            // progress here - the claim-gated fetch extracts nothing
            // unclaimed and only every A-th evictPath call runs a
            // real pass.
            dummy_leaf = engine.dummyAccess();
        } else {
            dummy_leaf = engine.randomLeaf();
            PRORAM_TRACE_SCOPE_ARG("dummy", "bgEvict", "leaf",
                                   dummy_leaf);
            const std::size_t n = engine.fetchPath(dummy_leaf,
                                                   fetchBuf.data());
            {
                const util::ScopedLock meta(metaLock_);
                engine.absorbPath(fetchBuf.data(), n);
            }
            engine.evictPath(dummy_leaf);
        }
        bgLeaves.push_back(dummy_leaf);
        ++paths;
        ++spent;
    }

    // Stage 5 - commit: prefetch insertion, audit replay, timing and
    // stats, all under the meta lock. Timing is a serial grant chain
    // in commit order against the shared busy-until clock.
    {
        const util::ScopedLock meta(metaLock_);
        for (BlockId p : decision.prefetches) {
            BlockId clean_victim = kInvalidBlock;
            if (!hierarchy_.insertPrefetch(p, &clean_victim))
                policy_->onPrefetchDropped(p);
        }
        ++stats_.realRequests;
        stats_.posMapAccesses += walkPaths;
        stats_.pathAccesses += paths;
        stats_.bgEvictions += spent;
        walkDepth_.sample(walkPaths);

        const Cycles now = busyUntil_;
        if (auditor_ != nullptr) {
            for (Leaf l : pmLeaves)
                auditor_->onPath(obs::PathKind::PosMap, l);
            auditor_->onPath(obs::PathKind::Real, leaf);
            for (Leaf l : bgLeaves)
                auditor_->onPath(obs::PathKind::BgEvict, l);
        }
        const PeriodicGrant grant = scheduler_.schedule(now, paths);
        if (auditor_ != nullptr)
            auditor_->onGrant(grant.start, paths);
        requestLatency_.sample((grant.completion - now).value());
        epochBusy_ += grant.completion - grant.start;
        busyUntil_ = grant.completion;
        maybeRollEpoch(grant.completion);
        return grant.completion;
    }
}

void
OramController::writebackOne(Cycles now, BlockId block)
{
    // Timing-only write-back: remap the super block, preserve payload
    // (the trace CPU carries no data).
    PRORAM_TRACE_SCOPE_ARG("controller", "writeback", "block", block);
    drainPeriodicDummies(now);

    std::uint64_t paths =
        performAccess(block, true, OpType::Write, nullptr, nullptr);
    ++stats_.writebacks;
    stats_.pathAccesses += paths;

    const PeriodicGrant grant = scheduler_.schedule(now, paths);
    if (auditor_)
        auditor_->onGrant(grant.start, paths);
    requestLatency_.sample((grant.completion - now).value());
    epochBusy_ += grant.completion - grant.start;
    busyUntil_ = grant.completion;
    maybeRollEpoch(grant.completion);
}

void
OramController::writebackAccess(Cycles now, BlockId block)
{
    writebackOne(now, block);
}

void
OramController::writebackBatch(Cycles now, const BlockId *blocks,
                               std::size_t n)
{
    // One virtual entry for the whole batch; per-request scheduling,
    // epoch rolls and counters are unchanged (and must stay so -
    // maybeRollEpoch reads the running counts request by request), so
    // results are identical to n writebackAccess() calls.
    for (std::size_t i = 0; i < n; ++i)
        writebackOne(now, blocks[i]);
}

Cycles
OramController::writebackWithData(Cycles now, BlockId block,
                                  std::uint64_t data)
{
    PRORAM_TRACE_SCOPE_ARG("controller", "writebackData", "block",
                           block);
    drainPeriodicDummies(now);

    std::uint64_t paths =
        performAccess(block, true, OpType::Write, &data, nullptr);
    ++stats_.writebacks;
    stats_.pathAccesses += paths;

    const PeriodicGrant grant = scheduler_.schedule(now, paths);
    if (auditor_)
        auditor_->onGrant(grant.start, paths);
    requestLatency_.sample((grant.completion - now).value());
    epochBusy_ += grant.completion - grant.start;
    busyUntil_ = grant.completion;
    maybeRollEpoch(grant.completion);
    return grant.completion;
}

void
OramController::onDemandTouch(Cycles now, BlockId block)
{
    policy_->onDemandTouch(block);

    // A demand hit on a traditionally-prefetched line keeps its
    // stream alive (Fig. 5 experiment).
    if (prefetcher_) {
        Cycles t = std::max(now, busyUntil_);
        for (BlockId cand : prefetcher_->observe(block)) {
            if (cand.value() >= oram_.space().numDataBlocks() ||
                hierarchy_.probeLlc(cand)) {
                continue;
            }
            PRORAM_TRACE_EVENT("controller", "streamPrefetch",
                               "block", cand);
            std::uint64_t p =
                performAccess(cand, false, OpType::Read, nullptr,
                              nullptr);
            stats_.pathAccesses += p;
            ++stats_.traditionalPrefetches;
            BlockId clean_victim = kInvalidBlock;
            hierarchy_.insertPrefetch(cand, &clean_victim);
            const PeriodicGrant g = scheduler_.schedule(t, p);
            if (auditor_)
                auditor_->onGrant(g.start, p);
            epochBusy_ += g.completion - g.start;
            busyUntil_ = g.completion;
            t = g.completion;
        }
    }
}

void
OramController::finalize(Cycles end)
{
    drainPeriodicDummies(end);
    // Quiescent by contract at finalize: sync the dedup window so any
    // post-run tree inspection sees the authoritative buckets.
    flushSubtreeWindow();
}

std::uint64_t
OramController::memAccessCount() const
{
    return stats_.pathAccesses;
}

stats::StatGroup
OramController::buildStatGroup() const
{
    stats::StatGroup g("oram_controller");
    auto scalar = [&](const char *name, const char *desc,
                      const std::uint64_t &field) {
        const std::uint64_t *p = &field;
        g.addValue(name, desc,
                   [p] { return static_cast<double>(*p); });
    };
    scalar("realRequests", "demand misses served", stats_.realRequests);
    scalar("writebacks", "dirty-victim ORAM accesses",
           stats_.writebacks);
    scalar("pathAccesses", "total tree paths read+written",
           stats_.pathAccesses);
    scalar("posMapAccesses", "paths spent on PLB misses",
           stats_.posMapAccesses);
    scalar("bgEvictions", "background-eviction paths",
           stats_.bgEvictions);
    scalar("periodicDummies", "timing-protection dummy accesses",
           stats_.periodicDummies);
    scalar("traditionalPrefetches", "stream-prefetcher ORAM accesses",
           stats_.traditionalPrefetches);

    const SuperBlockPolicy *pol = policy_.get();
    g.addValue("merges", "super blocks merged (Alg. 1)", [pol] {
        return pol ? static_cast<double>(pol->policyStats().merges)
                   : 0.0;
    });
    g.addValue("breaks", "super blocks broken (Alg. 2)", [pol] {
        return pol ? static_cast<double>(pol->policyStats().breaks)
                   : 0.0;
    });
    g.addValue("prefetchHits", "super-block prefetches used", [pol] {
        return pol
                   ? static_cast<double>(pol->policyStats().prefetchHits)
                   : 0.0;
    });
    g.addValue("prefetchMissRate", "unused / issued prefetches",
               [pol] { return pol ? pol->policyStats().missRate()
                                  : 0.0; });

    const UnifiedOram *o = &oram_;
    g.addValue("stashOccupancyAvg", "mean stash blocks per access",
               [o] { return o->engine().stash().occupancy().mean(); });
    g.addValue("stashOccupancyMax", "peak sampled stash occupancy",
               [o] { return o->engine().stash().occupancy().max(); });
    g.addValue("plbHits", "position-map block cache hits",
               [o] { return static_cast<double>(o->plb().hits()); });
    g.addValue("plbMisses", "position-map block cache misses",
               [o] { return static_cast<double>(o->plb().misses()); });

    // Concurrency telemetry (DESIGN.md Sec. 13): lock traffic and
    // path-dedup effectiveness. All zero in serial mode.
    g.addValue("subtreeLockAcquisitions",
               "tree node-lock acquisitions (concurrent mode)", [this] {
                   return subtree_ ? static_cast<double>(
                                         subtree_->acquisitions())
                                   : 0.0;
               });
    g.addValue("subtreeLockContended",
               "node-lock acquisitions that had to block", [this] {
                   return subtree_
                              ? static_cast<double>(subtree_->contended())
                              : 0.0;
               });
    g.addValue("stashShards", "stash shard count", [o] {
        return static_cast<double>(o->engine().stash().shardCount());
    });
    g.addValue("stashShardLockAcquisitions",
               "stash shard-lock acquisitions", [o] {
                   return static_cast<double>(
                       o->engine().stash().shardLockAcquisitions());
               });
    g.addValue("stashShardLockContended",
               "shard-lock acquisitions that had to block", [o] {
                   return static_cast<double>(
                       o->engine().stash().shardLockContended());
               });
    g.addValue("dedupHits",
               "dedicated-bucket touches served from the dedup window",
               [this] {
                   return subtree_
                              ? static_cast<double>(subtree_->dedupHits())
                              : 0.0;
               });
    g.addValue("dedupMisses",
               "dedicated-bucket touches that read the arena", [this] {
                   return subtree_ ? static_cast<double>(
                                         subtree_->dedupMisses())
                                   : 0.0;
               });
    g.addValue("dedupFlushWrites",
               "arena bucket writes performed by window flushes",
               [this] {
                   return subtree_ ? static_cast<double>(
                                         subtree_->flushWrites())
                                   : 0.0;
               });

    // Per-scheme protocol counters (zero under Path ORAM): Ring's
    // bucket-granular read traffic and its decoupled write schedule.
    g.addValue("ringBucketReads",
               "modeled single-block bucket reads (ring scheme)", [o] {
                   return static_cast<double>(
                       o->engine().schemeCounters().bucketReads);
               });
    g.addValue("ringDummyReads",
               "bucket reads that returned a dummy (ring scheme)", [o] {
                   return static_cast<double>(
                       o->engine().schemeCounters().dummyReads);
               });
    g.addValue("ringEarlyReshuffles",
               "buckets reshuffled on an exhausted read budget", [o] {
                   return static_cast<double>(
                       o->engine().schemeCounters().earlyReshuffles);
               });
    g.addValue("ringScheduledEvictions",
               "reverse-lexicographic eviction passes run", [o] {
                   return static_cast<double>(
                       o->engine().schemeCounters().scheduledEvictions);
               });

    // Slot-arena materialization telemetry (DESIGN.md Sec. 12):
    // memory cost as a first-class metric next to the path counters.
    g.addValue("arenaChunksMaterialized",
               "slot-arena chunks materialized (first writes)", [o] {
                   return static_cast<double>(
                       o->engine().tree().arena().chunksMaterialized());
               });
    g.addValue("arenaBytesResident",
               "lane bytes of materialized arena chunks", [o] {
                   return static_cast<double>(
                       o->engine().tree().arena().bytesResident());
               });
    g.addValue("arenaBytesTotal",
               "lane bytes if every chunk were materialized", [o] {
                   return static_cast<double>(
                       o->engine().tree().arena().bytesTotal());
               });
    return g;
}

} // namespace proram
