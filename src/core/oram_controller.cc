#include "core/oram_controller.hh"

#include <algorithm>

#include "core/dynamic_policy.hh"
#include "core/static_policy.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace proram
{

OramController::OramController(const OramConfig &oram_cfg,
                               const ControllerConfig &ctl_cfg,
                               CacheHierarchy &hierarchy)
    : oramCfg_(oram_cfg), ctlCfg_(ctl_cfg), hierarchy_(hierarchy),
      oram_(oram_cfg),
      scheduler_(ctl_cfg.periodic, oram_cfg.pathAccessCycles())
{
    if (ctl_cfg.traditionalPrefetcher) {
        prefetcher_ =
            std::make_unique<StreamPrefetcher>(ctl_cfg.prefetcher);
    }
}

void
OramController::configureBaseline()
{
    policy_ = std::make_unique<BaselinePolicy>(oram_, *this);
    oram_.initialize(1);
}

void
OramController::configureStatic(std::uint32_t sb_size)
{
    policy_ =
        std::make_unique<StaticSuperBlockPolicy>(oram_, *this, sb_size);
    oram_.initialize(sb_size);
}

void
OramController::configureDynamic(const DynamicPolicyConfig &cfg)
{
    policy_ = std::make_unique<DynamicSuperBlockPolicy>(oram_, *this, cfg);
    oram_.initialize(1);
}

bool
OramController::probe(BlockId block) const
{
    return hierarchy_.probeLlc(block);
}

void
OramController::attachAuditor(obs::ObliviousnessAuditor *auditor)
{
    auditor_ = auditor;
    // Pos-map path accesses happen inside the unified front end; have
    // it report their public leaves directly.
    if (auditor) {
        oram_.setPosMapObserver([auditor](Leaf leaf) {
            auditor->onPath(obs::PathKind::PosMap, leaf);
        });
    } else {
        oram_.setPosMapObserver({});
    }
}

std::uint64_t
OramController::performAccess(BlockId block, bool is_writeback,
                              OpType op,
                              const std::uint64_t *write_data,
                              std::uint64_t *read_out)
{
    panic_if(!policy_, "controller used before configure*()");
    panic_if(!oram_.space().isData(block),
             "CPU-visible access to non-data block ", block);
    PRORAM_TRACE_SCOPE_ARG("controller", "access", "block", block);

    // 1. Recursion: bring the pos-map chain on-chip (Sec. 2.3).
    const PosMapWalk walk = oram_.posMapWalk(block);
    std::uint64_t paths = walk.pathAccesses();
    stats_.posMapAccesses += walk.pathAccesses();
    walkDepth_.sample(walk.pathAccesses());

    // 2. Read the super block's path into the stash (Sec. 2.2 step 2).
    const Leaf leaf = oram_.posMap().leafOf(block);
    if (auditor_)
        auditor_->onPath(obs::PathKind::Real, leaf);
    PathOram &engine = oram_.engine();
    engine.readPath(leaf);
    ++paths;
    std::uint64_t *payload = engine.stash().findData(block);
    panic_if(!payload, "block ", block, " absent from path ", leaf,
             " and stash (invariant broken)");

    // 3. Payload (null write_data = remap-only, payload preserved).
    if (op == OpType::Write && write_data)
        *payload = *write_data;
    if (read_out)
        *read_out = *payload;

    // 4. Policy: remap / merge / break / choose prefetches
    //    (steps 4 of the paper, plus Algorithms 1-2).
    const AccessDecision decision =
        policy_->onDataAccess(block, is_writeback);
    sbSize_.sample(oram_.posMap().entry(block).sbSize());

    // 5. Write-back phase (step 5).
    engine.writePath(leaf);

    // 6. Hand prefetched siblings to the LLC. Insertions that would
    //    displace dirty lines are dropped by the hierarchy (a
    //    prefetch must not force write-backs); undo their marking.
    for (BlockId p : decision.prefetches) {
        BlockId clean_victim = kInvalidBlock;
        if (!hierarchy_.insertPrefetch(p, &clean_victim))
            policy_->onPrefetchDropped(p);
    }

    // 7. Background eviction keeps the stash bounded (Sec. 2.4),
    //    within the per-request budget (see ControllerConfig).
    std::uint64_t spent = 0;
    while (engine.stash().overCapacity() &&
           spent < ctlCfg_.maxBgEvictionsPerRequest) {
        const Leaf dummy_leaf = engine.dummyAccess();
        if (auditor_)
            auditor_->onPath(obs::PathKind::BgEvict, dummy_leaf);
        ++paths;
        ++spent;
        ++stats_.bgEvictions;
    }
    return paths;
}

void
OramController::maybeRollEpoch(Cycles now)
{
    const std::uint64_t requests =
        stats_.realRequests + stats_.writebacks;
    if (requests - epochRequestBase_ < ctlCfg_.epochRequests)
        return;

    const std::uint64_t epoch_requests = requests - epochRequestBase_;
    const std::uint64_t epoch_bg = stats_.bgEvictions - epochBgBase_;
    const double eviction_rate =
        static_cast<double>(epoch_bg) / epoch_requests;
    const Cycles wall =
        now > epochStart_ ? now - epochStart_ : Cycles{1};
    const double access_rate =
        std::min(1.0, static_cast<double>(epochBusy_.value()) /
                          static_cast<double>(wall.value()));

    policy_->onEpoch(eviction_rate, access_rate);

    epochRequestBase_ = requests;
    epochBgBase_ = stats_.bgEvictions;
    epochStart_ = now;
    epochBusy_ = Cycles{0};
}

void
OramController::drainPeriodicDummies(Cycles now)
{
    // Idle periodic slots that elapsed ran dummy accesses.
    const std::uint64_t elapsed = scheduler_.drainDummies(now);
    for (std::uint64_t i = 0; i < elapsed; ++i) {
        const Leaf leaf = oram_.engine().dummyAccess();
        PRORAM_TRACE_EVENT("dummy", "periodic", "leaf", leaf);
        if (auditor_)
            auditor_->onPath(obs::PathKind::PeriodicDummy, leaf);
    }
    stats_.periodicDummies += elapsed;
    stats_.pathAccesses += elapsed;
}

Cycles
OramController::dataAccess(Cycles now, BlockId block, OpType op,
                           std::uint64_t write_data,
                           std::uint64_t *read_out)
{
    PRORAM_TRACE_SCOPE_ARG("controller", "dataAccess", "block", block);
    drainPeriodicDummies(now);

    std::uint64_t paths =
        performAccess(block, false, op,
                      op == OpType::Write ? &write_data : nullptr,
                      read_out);
    ++stats_.realRequests;
    stats_.pathAccesses += paths;

    const PeriodicGrant grant = scheduler_.schedule(now, paths);
    if (auditor_)
        auditor_->onGrant(grant.start, paths);
    requestLatency_.sample((grant.completion - now).value());
    epochBusy_ += grant.completion - grant.start;
    busyUntil_ = grant.completion;
    maybeRollEpoch(grant.completion);

    // The traditional prefetcher (Fig. 5) trains in onDemandTouch,
    // which the core calls exactly once per demand access (cache hit
    // or miss-return); training here too would double-observe misses.
    return grant.completion;
}

Cycles
OramController::demandAccess(Cycles now, BlockId block, OpType op)
{
    return dataAccess(now, block, op, 0, nullptr);
}

void
OramController::writebackOne(Cycles now, BlockId block)
{
    // Timing-only write-back: remap the super block, preserve payload
    // (the trace CPU carries no data).
    PRORAM_TRACE_SCOPE_ARG("controller", "writeback", "block", block);
    drainPeriodicDummies(now);

    std::uint64_t paths =
        performAccess(block, true, OpType::Write, nullptr, nullptr);
    ++stats_.writebacks;
    stats_.pathAccesses += paths;

    const PeriodicGrant grant = scheduler_.schedule(now, paths);
    if (auditor_)
        auditor_->onGrant(grant.start, paths);
    requestLatency_.sample((grant.completion - now).value());
    epochBusy_ += grant.completion - grant.start;
    busyUntil_ = grant.completion;
    maybeRollEpoch(grant.completion);
}

void
OramController::writebackAccess(Cycles now, BlockId block)
{
    writebackOne(now, block);
}

void
OramController::writebackBatch(Cycles now, const BlockId *blocks,
                               std::size_t n)
{
    // One virtual entry for the whole batch; per-request scheduling,
    // epoch rolls and counters are unchanged (and must stay so -
    // maybeRollEpoch reads the running counts request by request), so
    // results are identical to n writebackAccess() calls.
    for (std::size_t i = 0; i < n; ++i)
        writebackOne(now, blocks[i]);
}

Cycles
OramController::writebackWithData(Cycles now, BlockId block,
                                  std::uint64_t data)
{
    PRORAM_TRACE_SCOPE_ARG("controller", "writebackData", "block",
                           block);
    drainPeriodicDummies(now);

    std::uint64_t paths =
        performAccess(block, true, OpType::Write, &data, nullptr);
    ++stats_.writebacks;
    stats_.pathAccesses += paths;

    const PeriodicGrant grant = scheduler_.schedule(now, paths);
    if (auditor_)
        auditor_->onGrant(grant.start, paths);
    requestLatency_.sample((grant.completion - now).value());
    epochBusy_ += grant.completion - grant.start;
    busyUntil_ = grant.completion;
    maybeRollEpoch(grant.completion);
    return grant.completion;
}

void
OramController::onDemandTouch(Cycles now, BlockId block)
{
    policy_->onDemandTouch(block);

    // A demand hit on a traditionally-prefetched line keeps its
    // stream alive (Fig. 5 experiment).
    if (prefetcher_) {
        Cycles t = std::max(now, busyUntil_);
        for (BlockId cand : prefetcher_->observe(block)) {
            if (cand.value() >= oram_.space().numDataBlocks() ||
                hierarchy_.probeLlc(cand)) {
                continue;
            }
            PRORAM_TRACE_EVENT("controller", "streamPrefetch",
                               "block", cand);
            std::uint64_t p =
                performAccess(cand, false, OpType::Read, nullptr,
                              nullptr);
            stats_.pathAccesses += p;
            ++stats_.traditionalPrefetches;
            BlockId clean_victim = kInvalidBlock;
            hierarchy_.insertPrefetch(cand, &clean_victim);
            const PeriodicGrant g = scheduler_.schedule(t, p);
            if (auditor_)
                auditor_->onGrant(g.start, p);
            epochBusy_ += g.completion - g.start;
            busyUntil_ = g.completion;
            t = g.completion;
        }
    }
}

void
OramController::finalize(Cycles end)
{
    drainPeriodicDummies(end);
}

std::uint64_t
OramController::memAccessCount() const
{
    return stats_.pathAccesses;
}

stats::StatGroup
OramController::buildStatGroup() const
{
    stats::StatGroup g("oram_controller");
    auto scalar = [&](const char *name, const char *desc,
                      const std::uint64_t &field) {
        const std::uint64_t *p = &field;
        g.addValue(name, desc,
                   [p] { return static_cast<double>(*p); });
    };
    scalar("realRequests", "demand misses served", stats_.realRequests);
    scalar("writebacks", "dirty-victim ORAM accesses",
           stats_.writebacks);
    scalar("pathAccesses", "total tree paths read+written",
           stats_.pathAccesses);
    scalar("posMapAccesses", "paths spent on PLB misses",
           stats_.posMapAccesses);
    scalar("bgEvictions", "background-eviction paths",
           stats_.bgEvictions);
    scalar("periodicDummies", "timing-protection dummy accesses",
           stats_.periodicDummies);
    scalar("traditionalPrefetches", "stream-prefetcher ORAM accesses",
           stats_.traditionalPrefetches);

    const SuperBlockPolicy *pol = policy_.get();
    g.addValue("merges", "super blocks merged (Alg. 1)", [pol] {
        return pol ? static_cast<double>(pol->policyStats().merges)
                   : 0.0;
    });
    g.addValue("breaks", "super blocks broken (Alg. 2)", [pol] {
        return pol ? static_cast<double>(pol->policyStats().breaks)
                   : 0.0;
    });
    g.addValue("prefetchHits", "super-block prefetches used", [pol] {
        return pol
                   ? static_cast<double>(pol->policyStats().prefetchHits)
                   : 0.0;
    });
    g.addValue("prefetchMissRate", "unused / issued prefetches",
               [pol] { return pol ? pol->policyStats().missRate()
                                  : 0.0; });

    const UnifiedOram *o = &oram_;
    g.addValue("stashOccupancyAvg", "mean stash blocks per access",
               [o] { return o->engine().stash().occupancy().mean(); });
    g.addValue("stashOccupancyMax", "peak sampled stash occupancy",
               [o] { return o->engine().stash().occupancy().max(); });
    g.addValue("plbHits", "position-map block cache hits",
               [o] { return static_cast<double>(o->plb().hits()); });
    g.addValue("plbMisses", "position-map block cache misses",
               [o] { return static_cast<double>(o->plb().misses()); });
    return g;
}

} // namespace proram
