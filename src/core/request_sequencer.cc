#include "core/request_sequencer.hh"

#include "util/logging.hh"

namespace proram
{

RequestSequencer::RequestSequencer(std::size_t n) : done_(n, 0) {}

std::vector<std::int64_t>
RequestSequencer::dependencies(const std::vector<BlockId> &blocks,
                               std::uint64_t num_blocks)
{
    std::vector<std::int64_t> deps(blocks.size(), -1);
    std::vector<std::int64_t> lastSeen(num_blocks, -1);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const std::uint64_t b = blocks[i].value();
        panic_if(b >= num_blocks, "trace block ", blocks[i],
                 " outside the configured block space");
        deps[i] = lastSeen[b];
        lastSeen[b] = static_cast<std::int64_t>(i);
    }
    return deps;
}

// Thread-safety escape: the condition-variable wait needs the native
// std::mutex handle and releases/reacquires it invisibly. The rank
// tracker still sees the hold via ScopedRank.
void
RequestSequencer::waitFor(std::int64_t dep)
    PRORAM_NO_THREAD_SAFETY_ANALYSIS
{
    if (dep < 0)
        return;
    const auto i = static_cast<std::size_t>(dep);
    const lock_order::ScopedRank rank(lock_order::Rank::Leaf);
    std::unique_lock<std::mutex> lk(mutex_.native());
    panic_if(i >= done_.size(), "dependency index out of range");
    cv_.wait(lk, [&] { return done_[i] != 0; });
}

void
RequestSequencer::markDone(std::size_t i)
{
    {
        const util::ScopedLock lk(mutex_);
        panic_if(i >= done_.size(), "request index out of range");
        done_[i] = 1;
    }
    cv_.notify_all();
}

bool
RequestSequencer::isDone(std::size_t i)
{
    const util::ScopedLock lk(mutex_);
    panic_if(i >= done_.size(), "request index out of range");
    return done_[i] != 0;
}

} // namespace proram
