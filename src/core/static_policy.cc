#include "core/static_policy.hh"

#include "core/super_block.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace proram
{

StaticSuperBlockPolicy::StaticSuperBlockPolicy(UnifiedOram &oram,
                                               const LlcProbe &llc,
                                               std::uint32_t sb_size)
    : SuperBlockPolicy(oram, llc), sbSize_(sb_size)
{
    fatal_if(!isPowerOf2(sb_size), "super block size must be 2^k");
    fatal_if(sb_size > oram.space().fanout(),
             "super block cannot span position-map blocks");
}

AccessDecision
StaticSuperBlockPolicy::onDataAccess(BlockId requested, bool is_writeback)
{
    const BlockId base = sbBase(requested, sbSize_);
    // The trailing partial group (if numDataBlocks is not a multiple
    // of sbSize) was initialized as singletons; honour the recorded
    // size rather than assuming sbSize_.
    const std::uint32_t size =
        oram_.posMap().entry(requested).sbSize();
    const auto members = sbMembers(sbBase(requested, size), size);
    (void)base;

    remapGroup(members);

    AccessDecision decision;
    if (is_writeback)
        return decision;

    std::vector<bool> in_llc(members.size());
    for (std::size_t i = 0; i < members.size(); ++i)
        in_llc[i] = llc_.probe(members[i]);

    // Bit bookkeeping feeds the Fig. 9 miss-rate statistic only.
    consumePrefetchBits(members, in_llc);

    for (std::size_t i = 0; i < members.size(); ++i) {
        const BlockId m = members[i];
        if (m == requested || in_llc[i])
            continue;
        markPrefetched(m);
        decision.prefetches.push_back(m);
    }
    return decision;
}

} // namespace proram
