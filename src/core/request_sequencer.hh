/**
 * @file
 * Admission control for the concurrent drive mode: requests to the
 * same block must execute in trace order (a later write must not be
 * observed by an earlier read), while requests to distinct blocks may
 * run in any interleaving.
 *
 * The sequencer precomputes, for every trace index i, the index of
 * the latest earlier request to the same block (its dependency), and
 * lets workers block until that dependency has committed. Dependencies
 * always point at strictly earlier indices and workers claim indices
 * in increasing order, so progress is guaranteed: the oldest
 * uncommitted request never waits.
 */

#ifndef PRORAM_CORE_REQUEST_SEQUENCER_HH
#define PRORAM_CORE_REQUEST_SEQUENCER_HH

#include <condition_variable>
#include <cstdint>
#include <vector>

#include "util/annotations.hh"
#include "util/mutex.hh"
#include "util/types.hh"

namespace proram
{

class RequestSequencer
{
  public:
    /** Track completion of @p n requests, all initially pending. */
    explicit RequestSequencer(std::size_t n);

    /**
     * Per-request dependency index: dependencies(blocks, total)[i] is
     * the largest j < i with blocks[j] == blocks[i], or -1 if request
     * i is the first touch of its block. @p num_blocks bounds the
     * id space (flat last-seen table; no hashing on this path).
     */
    static std::vector<std::int64_t>
    dependencies(const std::vector<BlockId> &blocks,
                 std::uint64_t num_blocks);

    /** Block until request @p dep has committed; @p dep < 0 returns
     *  immediately (no dependency). Caller holds no locks. */
    void waitFor(std::int64_t dep) PRORAM_EXCLUDES(mutex_);

    /** Mark request @p i committed and wake waiters. */
    void markDone(std::size_t i) PRORAM_EXCLUDES(mutex_);

    bool isDone(std::size_t i) PRORAM_EXCLUDES(mutex_);

  private:
    /** Leaf rank: the sequencer never acquires anything under it. */
    util::Mutex mutex_{lock_order::Rank::Leaf};
    std::condition_variable cv_;
    std::vector<std::uint8_t> done_ PRORAM_GUARDED_BY(mutex_);
};

} // namespace proram

#endif // PRORAM_CORE_REQUEST_SEQUENCER_HH
