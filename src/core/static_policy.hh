/**
 * @file
 * The static super block scheme of Ren et al. (paper Sec. 3.3): every
 * aligned group of n = 2^k consecutive data blocks is merged at
 * initialization time and never regrouped. Accessing any member loads
 * and remaps the whole group; siblings are prefetched into the LLC.
 */

#ifndef PRORAM_CORE_STATIC_POLICY_HH
#define PRORAM_CORE_STATIC_POLICY_HH

#include "core/policy.hh"

namespace proram
{

/**
 * Static super block policy. Requires the ORAM to have been
 * initialized with the same super block size (groups pre-merged).
 * Prefetch/hit bits are still tracked - not to drive any decision
 * (there is none to make), but to report the prefetch miss rates of
 * Fig. 9.
 */
class StaticSuperBlockPolicy : public SuperBlockPolicy
{
  public:
    StaticSuperBlockPolicy(UnifiedOram &oram, const LlcProbe &llc,
                           std::uint32_t sb_size);

    AccessDecision onDataAccess(BlockId requested,
                                bool is_writeback) override;
    const char *name() const override { return "stat"; }

    std::uint32_t sbSize() const { return sbSize_; }

  private:
    std::uint32_t sbSize_;
};

} // namespace proram

#endif // PRORAM_CORE_STATIC_POLICY_HH
