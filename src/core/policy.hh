/**
 * @file
 * Super-block prefetch policy interface. The ORAM controller performs
 * the mechanical part of every access (pos-map walk, path read/write,
 * background eviction, timing); the policy decides, *between* the path
 * read and the write-back, how blocks are remapped and regrouped, and
 * which siblings are handed to the LLC as prefetches.
 */

#ifndef PRORAM_CORE_POLICY_HH
#define PRORAM_CORE_POLICY_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "oram/unified_oram.hh"
#include "util/types.hh"

namespace proram
{

/** Tag-array probe into the LLC (paper Sec. 4.5.2). */
class LlcProbe
{
  public:
    virtual ~LlcProbe() = default;
    virtual bool probe(BlockId block) const = 0;
};

/** What the policy decided for one data access. */
struct AccessDecision
{
    /** Sibling blocks to insert into the LLC as prefetches. */
    std::vector<BlockId> prefetches;
};

/** Aggregated policy statistics (feeds Figs. 6-10). */
struct PolicyStats
{
    std::uint64_t prefetchHits = 0;
    std::uint64_t prefetchMisses = 0;
    std::uint64_t merges = 0;
    std::uint64_t breaks = 0;
    std::uint64_t blocksPrefetched = 0;

    double missRate() const
    {
        const std::uint64_t total = prefetchHits + prefetchMisses;
        return total == 0 ? 0.0
                          : static_cast<double>(prefetchMisses) / total;
    }
};

/**
 * Base class of the three schemes the paper compares: baseline (no
 * super blocks), static super block, and PrORAM's dynamic super block.
 */
class SuperBlockPolicy
{
  public:
    SuperBlockPolicy(UnifiedOram &oram, const LlcProbe &llc)
        : oram_(oram), llc_(llc)
    {
    }
    virtual ~SuperBlockPolicy() = default;

    /**
     * Called while the requested block's super block sits in the
     * stash, after the path read and before the write-back. Must
     * remap every member (Path ORAM step 4).
     *
     * @param requested the demanded data block
     * @param is_writeback LLC victim write-back (remap-only: no
     *        prefetching and no learning, see DESIGN.md)
     */
    virtual AccessDecision onDataAccess(BlockId requested,
                                        bool is_writeback) = 0;

    /** The core demand-touched @p block in the cache hierarchy
     *  ("In Processor ... b.hit = true", Algorithm 2). */
    virtual void onDemandTouch(BlockId block);

    /** The LLC refused the prefetch insertion (dirty victim): undo
     *  the prefetch marking - the block was never cached. */
    virtual void onPrefetchDropped(BlockId block);

    /** Controller feedback for adaptive thresholding (Sec. 4.4.2);
     *  called once per epoch. */
    virtual void onEpoch(double eviction_rate, double access_rate)
    {
        (void)eviction_rate;
        (void)access_rate;
    }

    const PolicyStats &policyStats() const { return stats_; }

    /**
     * Concurrent-mode hook (empty in serial mode): true if @p block
     * is claimed by a *different* in-flight request. A merge must not
     * adopt members of a foreign claimed super block - the claimant's
     * remap set would grow under it mid-access (DESIGN.md §13). The
     * calling request keeps its own members claimed through the
     * policy (the claims pin them against foreign evictions until the
     * policy's remaps land), so the controller's guard subtracts the
     * caller's own claim counts before answering.
     */
    void setClaimGuard(std::function<bool(BlockId)> fn)
    {
        claimGuard_ = std::move(fn);
    }

    /** Scheme name for reports. */
    virtual const char *name() const = 0;

  protected:
    /** Remap every member of the group to one fresh random leaf. */
    void remapGroup(const std::vector<BlockId> &members);

    /**
     * Consume the prefetch/hit bits of the members "coming from ORAM"
     * (not LLC-resident), accounting hits/misses, clearing prefetch
     * bits, and returning the counter delta (+hits - misses) for the
     * break scheme.
     */
    int consumePrefetchBits(const std::vector<BlockId> &members,
                            const std::vector<bool> &in_llc);

    /** Mark @p block as freshly prefetched (prefetch=1, hit=0). */
    void markPrefetched(BlockId block);

    bool claimedElsewhere(BlockId block) const
    {
        return claimGuard_ && claimGuard_(block);
    }

    UnifiedOram &oram_;
    const LlcProbe &llc_;
    PolicyStats stats_;
    std::function<bool(BlockId)> claimGuard_;
};

/** Baseline: every block is its own super block; remap-and-return. */
class BaselinePolicy : public SuperBlockPolicy
{
  public:
    using SuperBlockPolicy::SuperBlockPolicy;

    AccessDecision onDataAccess(BlockId requested,
                                bool is_writeback) override;
    const char *name() const override { return "oram"; }
};

} // namespace proram

#endif // PRORAM_CORE_POLICY_HH
