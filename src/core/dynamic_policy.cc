#include "core/dynamic_policy.hh"

#include <algorithm>

#include "core/super_block.hh"
#include "obs/trace.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace proram
{

DynamicSuperBlockPolicy::DynamicSuperBlockPolicy(
    UnifiedOram &oram, const LlcProbe &llc,
    const DynamicPolicyConfig &cfg)
    : SuperBlockPolicy(oram, llc), cfg_(cfg)
{
    fatal_if(!isPowerOf2(cfg.maxSbSize),
             "max super block size must be 2^k");
    fatal_if((static_cast<std::uint64_t>(cfg.maxSbSize)
              << cfg.strideLog) > oram.space().fanout(),
             "max super block span (size << strideLog) exceeds "
             "pos-map fanout (Secs. 4.1, 6.2)");
    fatal_if(cfg.cMerge <= 0.0 || cfg.cBreak <= 0.0,
             "Eq. 1 coefficients must be positive");
}

std::uint32_t
DynamicSuperBlockPolicy::counterMax(std::uint32_t bits)
{
    return (1u << std::min(bits, 16u)) - 1;
}

std::uint32_t
DynamicSuperBlockPolicy::initialBreakCounter(std::uint32_t m)
{
    return std::min(2 * m, counterMax(m));
}

std::uint32_t
DynamicSuperBlockPolicy::readMergeCounter(BlockId pair_base,
                                          std::uint32_t n) const
{
    // The counter is the concatenation of the 2n members' merge bits
    // (Fig. 4); members are stride-spaced under the Sec. 6.2 extension.
    std::uint32_t v = 0;
    for (std::uint32_t i = 0; i < 2 * n; ++i) {
        const BlockId m = sbMemberAt(pair_base, i, cfg_.strideLog);
        v <<= 1;
        v |= oram_.posMap().entry(m).mergeBit ? 1u : 0u;
    }
    return v;
}

void
DynamicSuperBlockPolicy::writeMergeCounter(BlockId pair_base,
                                           std::uint32_t n,
                                           std::uint32_t value)
{
    const std::uint32_t bits = 2 * n;
    for (std::uint32_t i = 0; i < bits; ++i) {
        const BlockId m = sbMemberAt(pair_base, i, cfg_.strideLog);
        const std::uint32_t bit = (value >> (bits - 1 - i)) & 1u;
        oram_.posMap().entry(m).mergeBit = bit != 0;
    }
}

std::uint32_t
DynamicSuperBlockPolicy::readBreakCounter(BlockId base,
                                          std::uint32_t m) const
{
    std::uint32_t v = 0;
    for (std::uint32_t i = 0; i < m; ++i) {
        const BlockId b = sbMemberAt(base, i, cfg_.strideLog);
        v <<= 1;
        v |= oram_.posMap().entry(b).breakBit ? 1u : 0u;
    }
    return v;
}

void
DynamicSuperBlockPolicy::writeBreakCounter(BlockId base, std::uint32_t m,
                                           std::uint32_t value)
{
    for (std::uint32_t i = 0; i < m; ++i) {
        const BlockId b = sbMemberAt(base, i, cfg_.strideLog);
        const std::uint32_t bit = (value >> (m - 1 - i)) & 1u;
        oram_.posMap().entry(b).breakBit = bit != 0;
    }
}

double
DynamicSuperBlockPolicy::adaptiveThreshold(std::uint32_t sbsize,
                                           double c) const
{
    // Eq. 1: threshold = C * sbsize^2 * eviction_rate * access_rate
    //                    / prefetch_hit_rate
    const double phr =
        std::max(prefetchHitRate_, cfg_.minPrefetchHitRate);
    return c * static_cast<double>(sbsize) * sbsize * evictionRate_ *
           accessRate_ / phr;
}

double
DynamicSuperBlockPolicy::mergeThreshold(std::uint32_t n) const
{
    if (cfg_.mergeThreshold ==
        DynamicPolicyConfig::MergeThreshold::Static) {
        // Sec. 4.4.1: merge when the counter reaches 2n.
        return 2.0 * n;
    }
    // Sec. 4.4.2 with hysteresis: threshold_merge = threshold + sbsize.
    return adaptiveThreshold(n, cfg_.cMerge) + n;
}

double
DynamicSuperBlockPolicy::breakThreshold(std::uint32_t m) const
{
    if (cfg_.breakMode == DynamicPolicyConfig::BreakMode::Static) {
        // Sec. 4.4.1: break when the counter bottoms out at 0,
        // i.e. falls below 1.
        return 1.0;
    }
    // Adaptive (Eq. 1), floored at the static "bottomed-out" value:
    // when the eviction rate is ~0 the equation yields ~0, which
    // would never fire even though every recent prefetch missed.
    return std::max(adaptiveThreshold(m, cfg_.cBreak), 1.0);
}

void
DynamicSuperBlockPolicy::onEpoch(double eviction_rate,
                                 double access_rate)
{
    evictionRate_ = eviction_rate;
    accessRate_ = access_rate;
    const std::uint64_t hits = stats_.prefetchHits - epochHitsBase_;
    const std::uint64_t misses =
        stats_.prefetchMisses - epochMissesBase_;
    prefetchHitRate_ =
        (hits + misses) == 0
            ? 1.0
            : static_cast<double>(hits) / (hits + misses);
    epochHitsBase_ = stats_.prefetchHits;
    epochMissesBase_ = stats_.prefetchMisses;
}

bool
DynamicSuperBlockPolicy::neighborCoherent(BlockId nbase,
                                          std::uint32_t n) const
{
    const PosEntry &first = oram_.posMap().entry(nbase);
    if (first.sbSize() != n ||
        (n > 1 && first.sbStrideLog != cfg_.strideLog)) {
        return false;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
        const PosEntry &e =
            oram_.posMap().entry(sbMemberAt(nbase, i, cfg_.strideLog));
        if (e.sbSize() != n || e.leaf != first.leaf)
            return false;
        if (n > 1 && e.sbStrideLog != cfg_.strideLog)
            return false;
    }
    return true;
}

bool
DynamicSuperBlockPolicy::applyBreakScheme(
    BlockId requested, BlockId &base, std::uint32_t &n,
    const std::vector<BlockId> &members, const std::vector<bool> &in_llc)
{
    // Reconstruct the break counter and fold in the prefetch verdicts
    // of the members coming from ORAM (Algorithm 2).
    const std::uint32_t max = counterMax(n);
    int counter = static_cast<int>(readBreakCounter(base, n));
    counter += consumePrefetchBits(members, in_llc);
    counter = std::clamp(counter, 0, static_cast<int>(max));

    if (cfg_.breakMode == DynamicPolicyConfig::BreakMode::None ||
        static_cast<double>(counter) >= breakThreshold(n)) {
        writeBreakCounter(base, n, static_cast<std::uint32_t>(counter));
        return false;
    }

    // Break B = (B1, B2) at the midpoint; the requested half returns
    // to the LLC, the other half is written back to the tree. Both
    // halves get fresh independent leaves (security argument Sec. 4.6).
    const std::uint32_t half = n / 2;
    const std::uint32_t stride = cfg_.strideLog;
    const BlockId req_half = sbBaseStrided(requested, half, stride);
    const BlockId other_half = req_half == base
                                   ? base +
                                         (static_cast<std::uint64_t>(
                                              half)
                                          << stride)
                                   : base;

    const Leaf leaf_req = oram_.engine().randomLeaf();
    const Leaf leaf_other = oram_.engine().randomLeaf();
    const auto half_log = static_cast<std::uint8_t>(log2Floor(half));
    // Remaps go through setLeaf so members sitting in the stash (this
    // very access just read them in) see their cached leaf refreshed
    // before the write-back's eviction scan runs.
    for (std::uint32_t i = 0; i < half; ++i) {
        const std::uint64_t off = static_cast<std::uint64_t>(i)
                                  << stride;
        oram_.posMap().setLeaf(req_half + off, leaf_req);
        PosEntry &a = oram_.posMap().entry(req_half + off);
        a.sbSizeLog = half_log;
        a.sbStrideLog = half > 1 ? static_cast<std::uint8_t>(stride) : 0;
        oram_.posMap().setLeaf(other_half + off, leaf_other);
        PosEntry &b = oram_.posMap().entry(other_half + off);
        b.sbSizeLog = half_log;
        b.sbStrideLog = half > 1 ? static_cast<std::uint8_t>(stride) : 0;
    }
    // Counters restart for the new geometry: the members' merge bits
    // are cleared (so the halves do not instantly re-merge) and the
    // halves' break counters re-initialized. writeMergeCounter over
    // the half-pair at `base` covers exactly the n member blocks.
    writeMergeCounter(base, half, 0);
    writeBreakCounter(req_half, half, initialBreakCounter(half));
    writeBreakCounter(other_half, half, initialBreakCounter(half));
    ++stats_.breaks;
    PRORAM_TRACE_EVENT("policy", "break", "size", half);

    base = req_half;
    n = half;
    return true;
}

void
DynamicSuperBlockPolicy::applyMergeScheme(BlockId base, std::uint32_t n)
{
    if (n >= cfg_.maxSbSize)
        return;
    const std::uint32_t stride = cfg_.strideLog;
    if (!mergeWithinBoundsStrided(base, n, stride,
                                  oram_.space().numDataBlocks(),
                                  oram_.space().fanout()))
        return;

    const BlockId nbase = sbNeighborBaseStrided(base, n, stride);
    const BlockId pair_base = sbBaseStrided(base, 2 * n, stride);
    const std::uint32_t max = counterMax(2 * n);
    std::uint32_t counter = readMergeCounter(pair_base, n);

    bool all_in_llc = true;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!llc_.probe(sbMemberAt(nbase, i, stride))) {
            all_in_llc = false;
            break;
        }
    }

    if (!all_in_llc) {
        if (counter > 0)
            --counter;
        writeMergeCounter(pair_base, n, counter);
        return;
    }

    if (counter < max)
        ++counter;
    // A pair member claimed by another in-flight request vetoes the
    // merge (concurrent mode only; claimedElsewhere is always false
    // serially): merging would extend that request's remap set while
    // its members are neither in our stash nor remappable.
    bool pair_claimed = false;
    for (std::uint32_t i = 0; i < 2 * n; ++i) {
        if (claimedElsewhere(sbMemberAt(pair_base, i, stride))) {
            pair_claimed = true;
            break;
        }
    }
    if (static_cast<double>(counter) < mergeThreshold(n) ||
        !neighborCoherent(nbase, n) || pair_claimed) {
        writeMergeCounter(pair_base, n, counter);
        return;
    }

    // Merge: B adopts B''s path (its members are in the stash right
    // now, so the invariant holds trivially); the pair becomes one
    // super block of size 2n with fresh counters.
    const Leaf nleaf = oram_.posMap().leafOf(nbase);
    const auto merged_log = static_cast<std::uint8_t>(log2Floor(2 * n));
    for (std::uint32_t i = 0; i < n; ++i)
        oram_.posMap().setLeaf(sbMemberAt(base, i, stride), nleaf);
    for (std::uint32_t i = 0; i < 2 * n; ++i) {
        PosEntry &e =
            oram_.posMap().entry(sbMemberAt(pair_base, i, stride));
        e.sbSizeLog = merged_log;
        e.sbStrideLog = static_cast<std::uint8_t>(stride);
    }
    writeMergeCounter(pair_base, n, 0);
    writeBreakCounter(pair_base, 2 * n, initialBreakCounter(2 * n));
    ++stats_.merges;
    PRORAM_TRACE_EVENT("policy", "merge", "size", 2 * n);
}

AccessDecision
DynamicSuperBlockPolicy::onDataAccess(BlockId requested,
                                      bool is_writeback)
{
    std::uint32_t n = oram_.posMap().entry(requested).sbSize();
    BlockId base = sbBaseStrided(requested, n, cfg_.strideLog);
    // Scratch members keep the per-access hot path allocation-free
    // once warmed up (n is small, bounded by maxSbSize).
    std::vector<BlockId> &members = membersScratch_;
    members.clear();
    for (std::uint32_t i = 0; i < n; ++i)
        members.push_back(sbMemberAt(base, i, cfg_.strideLog));

    if (is_writeback) {
        // Victim write-back: remap-only; no learning, no prefetching.
        remapGroup(members);
        return {};
    }

    std::vector<bool> &in_llc = inLlcScratch_;
    in_llc.assign(members.size(), false);
    for (std::size_t i = 0; i < members.size(); ++i)
        in_llc[i] = llc_.probe(members[i]);

    bool broke = false;
    if (n > 1) {
        broke = applyBreakScheme(requested, base, n, members, in_llc);
        if (broke) {
            members.clear();
            for (std::uint32_t i = 0; i < n; ++i)
                members.push_back(sbMemberAt(base, i, cfg_.strideLog));
            in_llc.assign(members.size(), false);
            for (std::size_t i = 0; i < members.size(); ++i)
                in_llc[i] = llc_.probe(members[i]);
        }
    } else {
        // Singleton: still settle the block's own prefetch verdict.
        consumePrefetchBits(members, in_llc);
    }

    if (!broke)
        remapGroup(members);

    AccessDecision decision;
    for (std::size_t i = 0; i < members.size(); ++i) {
        const BlockId m = members[i];
        if (m == requested || in_llc[i])
            continue;
        markPrefetched(m);
        decision.prefetches.push_back(m);
    }

    // Merging and breaking on the same access would thrash; the +n
    // hysteresis term plus this guard prevent it (Sec. 4.4.2).
    if (!broke)
        applyMergeScheme(base, n);
    return decision;
}

} // namespace proram
