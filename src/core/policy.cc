#include "core/policy.hh"

#include "util/logging.hh"

namespace proram
{

void
SuperBlockPolicy::onDemandTouch(BlockId block)
{
    if (!oram_.space().isData(block))
        return;
    PosEntry &e = oram_.posMap().entry(block);
    // "when block b is accessed: b.hit = true" (Algorithm 2). Only
    // meaningful while the prefetch bit is set, but set unconditionally
    // as the paper does; it is overwritten at the next prefetch.
    e.hitBit = true;
}

void
SuperBlockPolicy::onPrefetchDropped(BlockId block)
{
    PosEntry &e = oram_.posMap().entry(block);
    e.prefetchBit = false;
    if (stats_.blocksPrefetched > 0)
        --stats_.blocksPrefetched;
}

void
SuperBlockPolicy::remapGroup(const std::vector<BlockId> &members)
{
    const Leaf fresh = oram_.engine().randomLeaf();
    for (BlockId m : members)
        oram_.posMap().setLeaf(m, fresh);
}

int
SuperBlockPolicy::consumePrefetchBits(const std::vector<BlockId> &members,
                                      const std::vector<bool> &in_llc)
{
    panic_if(members.size() != in_llc.size(),
             "member/in_llc size mismatch");
    int delta = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        if (in_llc[i]) {
            // LLC-resident copies are not "coming from ORAM"; their
            // bits are judged when they next arrive from the tree.
            continue;
        }
        PosEntry &e = oram_.posMap().entry(members[i]);
        if (e.prefetchBit && e.hitBit) {
            ++stats_.prefetchHits;
            ++delta;
        } else if (e.prefetchBit && !e.hitBit) {
            ++stats_.prefetchMisses;
            --delta;
        }
        e.prefetchBit = false;
    }
    return delta;
}

void
SuperBlockPolicy::markPrefetched(BlockId block)
{
    PosEntry &e = oram_.posMap().entry(block);
    e.prefetchBit = true;
    e.hitBit = false;
    ++stats_.blocksPrefetched;
}

AccessDecision
BaselinePolicy::onDataAccess(BlockId requested, bool is_writeback)
{
    (void)is_writeback;
    oram_.posMap().setLeaf(requested, oram_.engine().randomLeaf());
    return {};
}

} // namespace proram
