/**
 * @file
 * PrORAM's dynamic super block scheme (paper Sec. 4): merge and break
 * counters materialized from per-block bits in the position map
 * (Fig. 4), Algorithm 1 (merge), Algorithm 2 (break), and the static /
 * adaptive thresholding of Sec. 4.4 with merge-side hysteresis.
 */

#ifndef PRORAM_CORE_DYNAMIC_POLICY_HH
#define PRORAM_CORE_DYNAMIC_POLICY_HH

#include "core/policy.hh"

namespace proram
{

/** Knobs of the dynamic scheme (defaults = paper configuration). */
struct DynamicPolicyConfig
{
    /** Maximum super block size (Table 1 default: 2; Fig. 7 sweeps). */
    std::uint32_t maxSbSize = 2;

    /** How the merge threshold is computed (Sec. 4.4). */
    enum class MergeThreshold { Static, Adaptive };
    MergeThreshold mergeThreshold = MergeThreshold::Adaptive;

    /** Whether/how super blocks break (Fig. 6b ablates None). */
    enum class BreakMode { None, Static, Adaptive };
    BreakMode breakMode = BreakMode::Adaptive;

    /** Coefficients C of Eq. 1 for merge and break (Fig. 10). */
    double cMerge = 1.0;
    double cBreak = 1.0;

    /** Floor for the prefetch hit rate in Eq. 1 (avoids div-by-~0). */
    double minPrefetchHitRate = 0.05;

    /**
     * log2 of the member stride (the paper's Sec. 6.2 future-work
     * extension): 0 groups contiguous blocks; s groups blocks 2^s
     * apart, exploiting column-major/strided locality. Constraint:
     * maxSbSize << strideLog must fit in one position-map block.
     */
    std::uint32_t strideLog = 0;
};

/**
 * The dynamic super block policy. All persistent state lives in the
 * position-map entries (leaf, sbSizeLog, merge/break/prefetch/hit
 * bits), mirroring the paper's "counters are stored in the position
 * map ORAM" design; the policy object holds only the windowed rates
 * for adaptive thresholding.
 */
class DynamicSuperBlockPolicy : public SuperBlockPolicy
{
  public:
    DynamicSuperBlockPolicy(UnifiedOram &oram, const LlcProbe &llc,
                            const DynamicPolicyConfig &cfg);

    AccessDecision onDataAccess(BlockId requested,
                                bool is_writeback) override;
    void onEpoch(double eviction_rate, double access_rate) override;
    const char *name() const override { return "dyn"; }

    const DynamicPolicyConfig &config() const { return cfg_; }

    /** Current Eq. 1 value for a given super block size (testing). */
    double adaptiveThreshold(std::uint32_t sbsize, double c) const;
    /** Merge threshold incl. hysteresis (+sbsize) for size @p n. */
    double mergeThreshold(std::uint32_t n) const;
    /** Break threshold for a super block of size @p m. */
    double breakThreshold(std::uint32_t m) const;

    /** Counter plumbing, public for tests: counters are bit-sliced
     *  across the members' position-map entries (Fig. 4). */
    std::uint32_t readMergeCounter(BlockId pair_base,
                                   std::uint32_t n) const;
    void writeMergeCounter(BlockId pair_base, std::uint32_t n,
                           std::uint32_t value);
    std::uint32_t readBreakCounter(BlockId base, std::uint32_t m) const;
    void writeBreakCounter(BlockId base, std::uint32_t m,
                           std::uint32_t value);

    static std::uint32_t counterMax(std::uint32_t bits);
    /** Initial break-counter value: 2m clamped into m bits. */
    static std::uint32_t initialBreakCounter(std::uint32_t m);

  private:
    /** Algorithm 2. @return true if the super block was broken (and
     *  the requested half re-targeted into @p base / @p n). */
    bool applyBreakScheme(BlockId requested, BlockId &base,
                          std::uint32_t &n,
                          const std::vector<BlockId> &members,
                          const std::vector<bool> &in_llc);

    /** Algorithm 1. */
    void applyMergeScheme(BlockId base, std::uint32_t n);

    bool neighborCoherent(BlockId nbase, std::uint32_t n) const;

    DynamicPolicyConfig cfg_;

    /** onDataAccess scratch, reused across accesses so the hot path
     *  makes no allocations once warmed up. */
    std::vector<BlockId> membersScratch_;
    std::vector<bool> inLlcScratch_;

    /** Windowed inputs to Eq. 1, refreshed by onEpoch(). */
    double evictionRate_ = 0.0;
    double accessRate_ = 0.0;
    double prefetchHitRate_ = 1.0;
    std::uint64_t epochHitsBase_ = 0;
    std::uint64_t epochMissesBase_ = 0;
};

} // namespace proram

#endif // PRORAM_CORE_DYNAMIC_POLICY_HH
