/**
 * @file
 * The trusted ORAM controller: ties the unified ORAM, a super-block
 * policy, the LLC and the (optional) periodic-access scheduler into
 * one memory backend. This is the component Fig. 1 of the paper draws
 * inside the trusted domain.
 */

#ifndef PRORAM_CORE_ORAM_CONTROLLER_HH
#define PRORAM_CORE_ORAM_CONTROLLER_HH

#include <atomic>
#include <memory>
#include <vector>

#include "core/dynamic_policy.hh"
#include "core/policy.hh"
#include "obs/audit.hh"
#include "stats/stats.hh"
#include "mem/backend.hh"
#include "mem/cache_hierarchy.hh"
#include "mem/stream_prefetcher.hh"
#include "oram/periodic.hh"
#include "oram/subtree_cache.hh"
#include "oram/unified_oram.hh"
#include "util/mutex.hh"

namespace proram
{

/** Controller configuration beyond the OramConfig geometry. */
struct ControllerConfig
{
    PeriodicConfig periodic{};
    /** Rate-window length in memory requests (Sec. 4.4.2). */
    std::uint64_t epochRequests = 1000;
    /**
     * Background-eviction budget per request. Pathological
     * configurations (e.g. static sbsize 8 at Z=3) leave more blocks
     * permanently homeless than the stash holds; real hardware would
     * thrash dummies forever, so the simulator caps the dummies per
     * request and carries the excess - the performance collapse is
     * still fully visible through the dummy-access count (Fig. 7).
     */
    std::uint64_t maxBgEvictionsPerRequest = 64;
    /**
     * Attach a traditional stream prefetcher in front of the ORAM
     * (the Fig. 5 negative result), issuing full ORAM accesses for
     * predicted blocks.
     */
    bool traditionalPrefetcher = false;
    PrefetcherConfig prefetcher{};
    /**
     * Stash shard count for concurrent drive mode (rounded down to a
     * power of two, clamped to [1, Stash::kMaxShards]). 0 (default)
     * resolves $PRORAM_STASH_SHARDS, falling back to 8. Ignored in
     * serial mode (the stash stays single-sharded).
     */
    std::uint32_t stashShards = 0;
    /**
     * Cross-request path-dedup window over the SubtreeCache's
     * dedicated nodes (DESIGN.md Sec. 13): 1 forces on, 0 forces off,
     * -1 (default) resolves $PRORAM_DEDUP, falling back to on.
     * Ignored in serial mode.
     */
    int dedupWindow = -1;
};

/** Counters the experiment harness reads after a run. */
struct ControllerStats
{
    std::uint64_t realRequests = 0;   ///< demand misses served
    std::uint64_t writebacks = 0;     ///< dirty-victim accesses
    std::uint64_t pathAccesses = 0;   ///< total tree paths touched
    std::uint64_t posMapAccesses = 0; ///< paths spent on PLB misses
    std::uint64_t bgEvictions = 0;    ///< background-eviction paths
    std::uint64_t periodicDummies = 0;
    std::uint64_t traditionalPrefetches = 0;
};

/**
 * The ORAM memory backend. Owns the functional ORAM and the policy;
 * holds a reference to the LLC for prefetch insertion and neighbour
 * probing.
 */
class OramController : public MemBackend, public LlcProbe
{
  public:
    OramController(const OramConfig &oram_cfg,
                   const ControllerConfig &ctl_cfg,
                   CacheHierarchy &hierarchy);

    /** Choose the scheme, then initialize the ORAM contents. */
    void configureBaseline();
    void configureStatic(std::uint32_t sb_size);
    void configureDynamic(const DynamicPolicyConfig &cfg);

    // MemBackend
    Cycles demandAccess(Cycles now, BlockId block, OpType op) override;
    void writebackAccess(Cycles now, BlockId block) override;
    void writebackBatch(Cycles now, const BlockId *blocks,
                        std::size_t n) override;
    void onDemandTouch(Cycles now, BlockId block) override;
    void finalize(Cycles end) override;
    std::uint64_t memAccessCount() const override;

    /** Write-back carrying a real payload (SecureMemory facade). */
    Cycles writebackWithData(Cycles now, BlockId block,
                             std::uint64_t data);

    // LlcProbe (handed to the policy)
    bool probe(BlockId block) const override;

    /**
     * Functional read/write with payload, used by the SecureMemory
     * facade and the tests. Timing identical to demandAccess.
     */
    Cycles dataAccess(Cycles now, BlockId block, OpType op,
                      std::uint64_t write_data, std::uint64_t *read_out);

    /**
     * Switch into the concurrent drive mode: after this, several
     * threads may call queueAccess() simultaneously. Builds the
     * per-node SubtreeCache over the tree arena (with the dedup
     * window, unless disabled), shards the stash, allocates the
     * per-block claim table, and flips the engine into locked bucket
     * access. Must run after configure*() and before any queueAccess();
     * incompatible with the periodic scheduler (timing protection is
     * defined over a serial schedule - see DESIGN.md §11).
     */
    void enableConcurrent(unsigned workers);
    bool concurrentEnabled() const { return concurrent_; }

    /**
     * One logical access from the concurrent request queue. In serial
     * mode (enableConcurrent not called) this is exactly
     * dataAccess(busyUntil(), ...). In concurrent mode the access
     * runs as pipeline stages under the controller's lock hierarchy;
     * timing commits in completion order against the shared
     * busy-until clock. @return the request's completion time.
     */
    Cycles queueAccess(BlockId block, OpType op,
                       const std::uint64_t *write_data,
                       std::uint64_t *read_out);

    /** Node-lock contention counters (null in serial mode). */
    const SubtreeCache *subtreeCache() const { return subtree_.get(); }

    /**
     * Write the dedup window's dirty resident buckets back to the
     * arena. Must run at a quiescent point (no in-flight
     * queueAccess) before anything reads the tree directly -
     * integrity checks, goldens, serial traffic. No-op in serial mode
     * or with the window disabled. The sim harness calls this after
     * every concurrent drain (System::runQueue).
     */
    void flushSubtreeWindow();

    const ControllerStats &stats() const { return stats_; }

    /**
     * Attach the obliviousness auditor: the controller reports every
     * path access (with its public leaf) and every scheduler grant.
     * Pure observation - attaching changes no simulated behaviour.
     */
    void attachAuditor(obs::ObliviousnessAuditor *auditor);

    // Observability histograms (sampled unconditionally; the cost is
    // a couple of integer ops per request).
    /** Request latency (grant completion - arrival), in cycles. */
    const stats::LogHistogram &requestLatencyHist() const
    {
        return requestLatency_;
    }
    /** Pos-map path accesses per demand request (recursion cost). */
    const stats::LogHistogram &walkDepthHist() const
    {
        return walkDepth_;
    }
    /** Super-block size of each accessed data block, post-policy. */
    const stats::LogHistogram &sbSizeHist() const { return sbSize_; }

    /**
     * gem5-style named-statistics view over the controller, the
     * policy and the ORAM internals. The group holds closures into
     * this object: use it only while the controller is alive.
     */
    stats::StatGroup buildStatGroup() const;

    const PolicyStats &policyStats() const
    {
        return policy_->policyStats();
    }
    UnifiedOram &oram() { return oram_; }
    const UnifiedOram &oram() const { return oram_; }
    SuperBlockPolicy &policy() { return *policy_; }
    const PeriodicScheduler &scheduler() const { return scheduler_; }
    Cycles busyUntil() const { return busyUntil_; }

  private:
    /**
     * The functional part of one logical ORAM access (pos-map walk +
     * super-block path access + policy + background eviction).
     * @param write_data new payload, or nullptr to preserve the
     *        block's current payload (remap-only write-back)
     * @return the number of path accesses performed.
     */
    std::uint64_t performAccess(BlockId block, bool is_writeback,
                                OpType op,
                                const std::uint64_t *write_data,
                                std::uint64_t *read_out);

    /** Refresh the policy's Eq. 1 rate window. */
    void maybeRollEpoch(Cycles now);

    /** Shared body of writebackAccess / writebackBatch. */
    void writebackOne(Cycles now, BlockId block);

    /** Run the dummy accesses of idle periodic slots up to @p now,
     *  with observability reporting. */
    void drainPeriodicDummies(Cycles now);

    OramConfig oramCfg_;
    ControllerConfig ctlCfg_;
    CacheHierarchy &hierarchy_;
    UnifiedOram oram_;
    std::unique_ptr<SuperBlockPolicy> policy_;
    PeriodicScheduler scheduler_;
    std::unique_ptr<StreamPrefetcher> prefetcher_;

    ControllerStats stats_;
    Cycles busyUntil_{0};
    obs::ObliviousnessAuditor *auditor_ = nullptr;

    // Concurrent drive mode (DESIGN.md §11/§13/§15). Lock hierarchy:
    // metaLock_ < per-node locks (SubtreeCache, one at a time) <
    // stash-shard locks (Stash, one at a time on the hot path); the
    // engine's RNG mutex is leaf-level and acquirable anywhere. The
    // rare multi-shard operations (resharding, drained iteration) run
    // single-threaded by contract. Debug builds assert the order on
    // every acquisition (util/lock_order.hh); the lock-order lint
    // (tools/lint/lock_order_lint.py) rejects out-of-order shapes
    // statically.
    //   metaLock_: position map + PLB + policy + scheduler + stats_ +
    //              histograms + auditor + epoch + busyUntil_ + LLC
    //              prefetch insertion + pmSink_ + claim-count writes.
    //              (Members stay un-GUARDED_BY: serial mode reads and
    //              writes them lock-free by design, so the capability
    //              map is documented here and enforced by the runtime
    //              rank checker instead.)
    //   node locks: that bucket's tree slots + dedup-window copy.
    //   shard locks: that shard's stash lanes/index/pin lane; the
    //              occupancy distribution has its own internal lock.
    bool concurrent_ = false;
    util::Mutex metaLock_{lock_order::Rank::Meta};
    std::unique_ptr<SubtreeCache> subtree_;
    /** Per-BlockId claim counts: > 0 while in-flight requests own the
     *  block (pinning it against eviction; super blocks can overlap,
     *  so claims nest). Writes go through Stash::claimPin /
     *  releaseUnpin under metaLock_ (atomically with the pin under
     *  the member's shard lock); reads are lock-free (stash pin
     *  filter, policy claim guard). */
    std::unique_ptr<std::atomic<std::uint8_t>[]> claimed_;
    /** When non-null (during a concurrent pos-map walk, under
     *  metaLock_), pos-map path leaves buffer here instead of going
     *  to the auditor, and replay contiguously at commit so the
     *  auditor's per-grant accounting stays exact. */
    std::vector<Leaf> *pmSink_ = nullptr;

    stats::LogHistogram requestLatency_;
    stats::LogHistogram walkDepth_;
    stats::LogHistogram sbSize_;

    // Epoch bookkeeping for adaptive thresholding.
    std::uint64_t epochRequestBase_ = 0;
    std::uint64_t epochBgBase_ = 0;
    Cycles epochStart_{0};
    Cycles epochBusy_{0};
};

} // namespace proram

#endif // PRORAM_CORE_ORAM_CONTROLLER_HH
