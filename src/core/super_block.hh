/**
 * @file
 * Super-block geometry helpers (paper Sec. 3.2): super blocks are
 * 2^k-sized, address-aligned groups of data blocks; two same-sized
 * groups are *neighbours* iff they merge into the next aligned
 * power-of-two group.
 */

#ifndef PRORAM_CORE_SUPER_BLOCK_HH
#define PRORAM_CORE_SUPER_BLOCK_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace proram
{

/** Base (lowest id) of the size-@p size super block containing @p id. */
BlockId sbBase(BlockId id, std::uint32_t size);

/**
 * Base of the neighbour of the super block at @p base with @p size
 * (Sec. 4.1: the unique same-sized group forming a 2x group with it).
 */
BlockId sbNeighborBase(BlockId base, std::uint32_t size);

/** @return true if @p a is the neighbour block of @p b at @p size. */
bool areNeighbors(BlockId a, BlockId b, std::uint32_t size);

/** Member ids of the super block at @p base. */
std::vector<BlockId> sbMembers(BlockId base, std::uint32_t size);

/**
 * Whether the 2x-sized merged group starting at the pair base would
 * stay inside the data space and inside one position-map block
 * (Sec. 4.1: all members' mappings must share a Pos-Map block).
 */
bool mergeWithinBounds(BlockId base, std::uint32_t size,
                       std::uint64_t num_data_blocks,
                       std::uint32_t pos_map_fanout);

/**
 * @name Strided super blocks (the paper's Sec. 6.2 future work).
 *
 * A strided super block of size n = 2^k with stride 2^s groups the
 * blocks agreeing on every address bit except bits [s, s+k): its
 * members are base + i*2^s. The classic scheme is the s = 0 special
 * case. Because the group lies inside one (n*2^s)-aligned window,
 * co-residency in a single position-map block is guaranteed whenever
 * n*2^s <= fanout.
 * @{
 */

/** Base (member with zeroed [s, s+k) bits) of @p id's group. */
BlockId sbBaseStrided(BlockId id, std::uint32_t size,
                      std::uint32_t stride_log);

/** Base of the neighbour group (differs in bit s + log2(size)). */
BlockId sbNeighborBaseStrided(BlockId base, std::uint32_t size,
                              std::uint32_t stride_log);

/** Member ids of the strided group at @p base. */
std::vector<BlockId> sbMembersStrided(BlockId base, std::uint32_t size,
                                      std::uint32_t stride_log);

/** The @p i-th member of the strided group at @p base; the
 *  allocation-free alternative to sbMembersStrided() on hot paths. */
inline BlockId
sbMemberAt(BlockId base, std::uint32_t i, std::uint32_t stride_log)
{
    return base + (static_cast<std::uint64_t>(i) << stride_log);
}

/** Bounds/fanout check for merging two size-@p size strided groups. */
bool mergeWithinBoundsStrided(BlockId base, std::uint32_t size,
                              std::uint32_t stride_log,
                              std::uint64_t num_data_blocks,
                              std::uint32_t pos_map_fanout);

/** @} */

} // namespace proram

#endif // PRORAM_CORE_SUPER_BLOCK_HH
