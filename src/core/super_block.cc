#include "core/super_block.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace proram
{

// Super-block geometry is bit-field math on the *address-space*
// layout of block ids, so these helpers are the one sanctioned place
// that unwraps BlockId to its raw representation; everything else in
// the core manipulates groups through them.

BlockId
sbBase(BlockId id, std::uint32_t size)
{
    panic_if(!isPowerOf2(size), "super block size must be 2^k");
    return BlockId{alignDown(id.value(), size)};
}

BlockId
sbNeighborBase(BlockId base, std::uint32_t size)
{
    panic_if(!isPowerOf2(size), "super block size must be 2^k");
    panic_if(base.value() % size != 0, "misaligned super block base");
    return BlockId{base.value() ^ size};
}

bool
areNeighbors(BlockId a, BlockId b, std::uint32_t size)
{
    if (a.value() % size != 0 || b.value() % size != 0)
        return false;
    return (a.value() ^ b.value()) == size;
}

std::vector<BlockId>
sbMembers(BlockId base, std::uint32_t size)
{
    std::vector<BlockId> out;
    out.reserve(size);
    for (std::uint32_t i = 0; i < size; ++i)
        out.push_back(base + i);
    return out;
}

bool
mergeWithinBounds(BlockId base, std::uint32_t size,
                  std::uint64_t num_data_blocks,
                  std::uint32_t pos_map_fanout)
{
    const std::uint64_t pair_base =
        alignDown(base.value(), 2ULL * size);
    if (pair_base + 2ULL * size > num_data_blocks)
        return false;
    // All 2*size mappings must live in one Pos-Map block; since the
    // pair is 2*size-aligned, it spans one block iff it fits.
    return 2ULL * size <= pos_map_fanout;
}

BlockId
sbBaseStrided(BlockId id, std::uint32_t size, std::uint32_t stride_log)
{
    panic_if(!isPowerOf2(size), "super block size must be 2^k");
    // Clear bits [stride_log, stride_log + log2(size)).
    const std::uint64_t field =
        (static_cast<std::uint64_t>(size) - 1) << stride_log;
    return BlockId{id.value() & ~field};
}

BlockId
sbNeighborBaseStrided(BlockId base, std::uint32_t size,
                      std::uint32_t stride_log)
{
    panic_if(!isPowerOf2(size), "super block size must be 2^k");
    panic_if(base != sbBaseStrided(base, size, stride_log),
             "misaligned strided super block base");
    return BlockId{base.value() ^
                   (static_cast<std::uint64_t>(size) << stride_log)};
}

std::vector<BlockId>
sbMembersStrided(BlockId base, std::uint32_t size,
                 std::uint32_t stride_log)
{
    std::vector<BlockId> out;
    out.reserve(size);
    for (std::uint32_t i = 0; i < size; ++i)
        out.push_back(sbMemberAt(base, i, stride_log));
    return out;
}

bool
mergeWithinBoundsStrided(BlockId base, std::uint32_t size,
                         std::uint32_t stride_log,
                         std::uint64_t num_data_blocks,
                         std::uint32_t pos_map_fanout)
{
    const std::uint64_t merged_span =
        2ULL * size << stride_log; // window of the merged group
    const BlockId pair_base = sbBaseStrided(base, 2 * size, stride_log);
    const BlockId last =
        pair_base + ((2ULL * size - 1) << stride_log);
    if (last.value() >= num_data_blocks)
        return false;
    return merged_span <= pos_map_fanout;
}

} // namespace proram
