#include "util/thread_pool.hh"

#include <cstdlib>

namespace proram::util
{

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0)
        num_threads = 1;
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        const ScopedLock lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        const ScopedLock lock(mutex_);
        queue_.push_back(std::move(job));
    }
    cv_.notify_one();
}

// Thread-safety escape: the condition-variable wait needs the native
// std::mutex handle and releases/reacquires it invisibly. The rank
// tracker still sees the hold via ScopedRank.
void
ThreadPool::workerLoop() PRORAM_NO_THREAD_SAFETY_ANALYSIS
{
    for (;;) {
        std::function<void()> job;
        {
            const lock_order::ScopedRank rank(lock_order::Rank::Leaf);
            std::unique_lock<std::mutex> lock(mutex_.native());
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job(); // packaged_task: exceptions land in the future
    }
}

unsigned
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("PRORAM_BENCH_THREADS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace proram::util
