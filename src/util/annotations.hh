/**
 * @file
 * Source annotations consumed by the static-analysis layer
 * (tools/lint/oblivious_lint.py; DESIGN.md "Static analysis").
 *
 * Under clang the macros expand to `annotate` attributes so the
 * libclang engine sees them in the AST; under other compilers they
 * expand to nothing. The linter's fallback engine keys on the macro
 * tokens themselves, so the annotations work identically everywhere.
 *
 * - PRORAM_OBLIVIOUS: this function's control flow must not depend on
 *   secret state (Leaf / BlockId values). The linter flags any branch,
 *   loop bound, switch, or ternary whose condition data-depends on a
 *   secret-typed parameter, outside the allowlisted sentinel
 *   comparisons (== / != against kInvalidBlock / kInvalidLeaf, which
 *   gate dummy-slot handling that Path ORAM performs on every slot of
 *   every fetched bucket regardless of the access).
 *
 * - PRORAM_HOT: this function runs on the per-access hot path and
 *   must not allocate. The linter flags `new` expressions and
 *   growth calls (push_back / emplace_back / resize / reserve /
 *   insert / assign) on containers inside the body.
 *
 * - PRORAM_LINT_ALLOW(rule): suppress one diagnostic of @p rule on
 *   the same or the following source line, e.g.
 *   `// PRORAM_LINT_ALLOW(hot-alloc): one-time lazy init`.
 *   Suppressions are grep-able and reviewed like NOLINT.
 *
 * Thread-safety macros (PRORAM_CAPABILITY and friends) expand to
 * clang's Thread Safety Analysis attributes, so a clang build with
 * `-Wthread-safety -Werror` (the CI `thread-safety` job) statically
 * verifies the meta < node < stash-shard lock discipline documented
 * in DESIGN.md Sec. 15. Under gcc they expand to nothing. The only
 * sanctioned per-function opt-out is PRORAM_NO_THREAD_SAFETY_ANALYSIS,
 * and every use must carry a why-comment (condition-variable waits
 * and scoped-lock plumbing the analysis cannot model).
 */

#ifndef PRORAM_UTIL_ANNOTATIONS_HH
#define PRORAM_UTIL_ANNOTATIONS_HH

#if defined(__clang__)
#define PRORAM_OBLIVIOUS __attribute__((annotate("proram_oblivious")))
#define PRORAM_HOT __attribute__((annotate("proram_hot")))
#else
#define PRORAM_OBLIVIOUS
#define PRORAM_HOT
#endif

/* Clang Thread Safety Analysis attribute surface. Kept to the subset
 * the codebase uses; see
 * https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for semantics.
 */
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PRORAM_TSA(x) __attribute__((x))
#endif
#endif
#ifndef PRORAM_TSA
#define PRORAM_TSA(x)
#endif

/** The annotated type is a lockable capability (e.g. util::Mutex). */
#define PRORAM_CAPABILITY(x) PRORAM_TSA(capability(x))
/** The annotated type is an RAII holder of a capability
 *  (e.g. util::ScopedLock). */
#define PRORAM_SCOPED_CAPABILITY PRORAM_TSA(scoped_lockable)
/** Data member readable/writable only while holding @p x. */
#define PRORAM_GUARDED_BY(x) PRORAM_TSA(guarded_by(x))
/** Pointee (not the pointer) guarded by @p x. */
#define PRORAM_PT_GUARDED_BY(x) PRORAM_TSA(pt_guarded_by(x))
/** Caller must hold the listed capabilities on entry (and still on
 *  exit). */
#define PRORAM_REQUIRES(...) \
    PRORAM_TSA(requires_capability(__VA_ARGS__))
/** Function acquires the listed capabilities (held on return). */
#define PRORAM_ACQUIRE(...) PRORAM_TSA(acquire_capability(__VA_ARGS__))
/** Function releases the listed capabilities. */
#define PRORAM_RELEASE(...) PRORAM_TSA(release_capability(__VA_ARGS__))
/** Function acquires the capabilities iff it returns @p b. */
#define PRORAM_TRY_ACQUIRE(b, ...) \
    PRORAM_TSA(try_acquire_capability(b, __VA_ARGS__))
/** Caller must NOT already hold the listed capabilities (deadlock
 *  guard for self-locking entry points). */
#define PRORAM_EXCLUDES(...) PRORAM_TSA(locks_excluded(__VA_ARGS__))
/** Declares static ordering between capabilities. */
#define PRORAM_ACQUIRED_BEFORE(...) \
    PRORAM_TSA(acquired_before(__VA_ARGS__))
#define PRORAM_ACQUIRED_AFTER(...) \
    PRORAM_TSA(acquired_after(__VA_ARGS__))
/** Function returns a reference to a capability. */
#define PRORAM_RETURN_CAPABILITY(x) PRORAM_TSA(lock_returned(x))
/** Escape hatch: body not analyzed. Every use needs a why-comment. */
#define PRORAM_NO_THREAD_SAFETY_ANALYSIS \
    PRORAM_TSA(no_thread_safety_analysis)

#endif // PRORAM_UTIL_ANNOTATIONS_HH
