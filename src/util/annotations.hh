/**
 * @file
 * Source annotations consumed by the static-analysis layer
 * (tools/lint/oblivious_lint.py; DESIGN.md "Static analysis").
 *
 * Under clang the macros expand to `annotate` attributes so the
 * libclang engine sees them in the AST; under other compilers they
 * expand to nothing. The linter's fallback engine keys on the macro
 * tokens themselves, so the annotations work identically everywhere.
 *
 * - PRORAM_OBLIVIOUS: this function's control flow must not depend on
 *   secret state (Leaf / BlockId values). The linter flags any branch,
 *   loop bound, switch, or ternary whose condition data-depends on a
 *   secret-typed parameter, outside the allowlisted sentinel
 *   comparisons (== / != against kInvalidBlock / kInvalidLeaf, which
 *   gate dummy-slot handling that Path ORAM performs on every slot of
 *   every fetched bucket regardless of the access).
 *
 * - PRORAM_HOT: this function runs on the per-access hot path and
 *   must not allocate. The linter flags `new` expressions and
 *   growth calls (push_back / emplace_back / resize / reserve /
 *   insert / assign) on containers inside the body.
 *
 * - PRORAM_LINT_ALLOW(rule): suppress one diagnostic of @p rule on
 *   the same or the following source line, e.g.
 *   `// PRORAM_LINT_ALLOW(hot-alloc): one-time lazy init`.
 *   Suppressions are grep-able and reviewed like NOLINT.
 */

#ifndef PRORAM_UTIL_ANNOTATIONS_HH
#define PRORAM_UTIL_ANNOTATIONS_HH

#if defined(__clang__)
#define PRORAM_OBLIVIOUS __attribute__((annotate("proram_oblivious")))
#define PRORAM_HOT __attribute__((annotate("proram_hot")))
#else
#define PRORAM_OBLIVIOUS
#define PRORAM_HOT
#endif

#endif // PRORAM_UTIL_ANNOTATIONS_HH
