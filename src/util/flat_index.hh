/**
 * @file
 * Open-addressing hash index from BlockId-sized keys to 32-bit slot
 * numbers: one contiguous cell array, linear probing, backward-shift
 * deletion (no tombstones). This is the lookup side of the ORAM core's
 * cache-conscious containers (dense stash, PLB): the *values* live in
 * a flat array owned by the caller; the index only maps key -> slot,
 * so a probe touches one small cell run instead of chasing list nodes.
 */

#ifndef PRORAM_UTIL_FLAT_INDEX_HH
#define PRORAM_UTIL_FLAT_INDEX_HH

#include <cstdint>
#include <vector>

#include "util/bits.hh"
#include "util/logging.hh"

namespace proram
{

/**
 * Key -> uint32 map with open addressing. Keys are arbitrary 64-bit
 * values except the all-ones sentinel (kInvalidBlock), which marks
 * empty cells. Deterministic: layout depends only on the sequence of
 * put/erase calls, never on allocation addresses.
 */
class FlatIndex
{
  public:
    /** Returned by get() when the key is absent. */
    static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

    /** @param expected_entries sizing hint (may grow beyond it). */
    explicit FlatIndex(std::size_t expected_entries = 0)
    {
        rehash(cellCountFor(expected_entries));
    }

    std::size_t size() const { return size_; }

    /** Slot stored for @p key, or kNone. */
    std::uint32_t get(std::uint64_t key) const
    {
        std::size_t i = home(key);
        while (cells_[i].key != kEmptyKey) {
            if (cells_[i].key == key)
                return cells_[i].value;
            i = (i + 1) & mask_;
        }
        return kNone;
    }

    /** Insert @p key -> @p value, overwriting any previous mapping. */
    void put(std::uint64_t key, std::uint32_t value)
    {
        panic_if(key == kEmptyKey, "FlatIndex key is the empty sentinel");
        if ((size_ + 1) * 10 > (mask_ + 1) * 7)
            rehash((mask_ + 1) * 2);
        std::size_t i = home(key);
        while (cells_[i].key != kEmptyKey) {
            if (cells_[i].key == key) {
                cells_[i].value = value;
                return;
            }
            i = (i + 1) & mask_;
        }
        cells_[i] = {key, value};
        ++size_;
    }

    /** Remove @p key. @return true if it was present. */
    bool erase(std::uint64_t key)
    {
        std::size_t i = home(key);
        while (cells_[i].key != key) {
            if (cells_[i].key == kEmptyKey)
                return false;
            i = (i + 1) & mask_;
        }
        // Backward-shift: pull every displaced cell of the probe run
        // over the hole so lookups never need tombstones.
        std::size_t hole = i;
        std::size_t j = i;
        while (true) {
            j = (j + 1) & mask_;
            if (cells_[j].key == kEmptyKey)
                break;
            const std::size_t h = home(cells_[j].key);
            // Cell j still reaches its home without crossing the hole
            // iff h lies cyclically in (hole, j]; otherwise move it.
            const bool reachable = (j >= hole)
                                       ? (h > hole && h <= j)
                                       : (h > hole || h <= j);
            if (reachable)
                continue;
            cells_[hole] = cells_[j];
            hole = j;
        }
        cells_[hole].key = kEmptyKey;
        --size_;
        return true;
    }

    /** Drop every entry, keeping the current cell array. */
    void clear()
    {
        for (Cell &c : cells_)
            c.key = kEmptyKey;
        size_ = 0;
    }

  private:
    static constexpr std::uint64_t kEmptyKey = ~0ULL;

    struct Cell
    {
        std::uint64_t key = kEmptyKey;
        std::uint32_t value = 0;
    };

    static std::size_t cellCountFor(std::size_t entries)
    {
        // Keep load factor <= 0.7 at the expected size; minimum 16.
        std::size_t cells = 16;
        while (entries * 10 > cells * 7)
            cells *= 2;
        return cells;
    }

    std::size_t home(std::uint64_t key) const
    {
        // Fibonacci multiplicative hash: spreads the dense BlockId
        // keyspace across cells without libstdc++'s modulo-by-prime.
        return (key * 0x9E3779B97F4A7C15ULL >> 32) & mask_;
    }

    void rehash(std::size_t cells)
    {
        std::vector<Cell> old = std::move(cells_);
        cells_.assign(cells, Cell{});
        mask_ = cells - 1;
        size_ = 0;
        for (const Cell &c : old) {
            if (c.key != kEmptyKey)
                put(c.key, c.value);
        }
    }

    std::vector<Cell> cells_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace proram

#endif // PRORAM_UTIL_FLAT_INDEX_HH
