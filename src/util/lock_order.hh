/**
 * @file
 * Debug-build runtime checker for the lock hierarchy
 * (meta < node < stash-shard < leaf; DESIGN.md Sec. 15).
 *
 * Each ranked util::Mutex reports its rank to a thread-local tracker
 * on lock/unlock. Acquisition asserts two rules the static layers
 * (clang -Wthread-safety, tools/lint/lock_order_lint.py) cannot fully
 * see across translation units:
 *
 *   1. ordering - every rank currently held by this thread must be
 *      strictly lower than the rank being acquired, and
 *   2. single-hold - at most one lock of rank Node and one of rank
 *      StashShard may be held at a time (the evictPath contract:
 *      one node hold per level, one shard hold per candidate).
 *
 * Compiled in only when PRORAM_LOCK_ORDER_CHECKS is defined (Debug
 * and sanitizer builds; see CMakeLists.txt). In Release every hook is
 * an empty inline function and the tracker state does not exist, so
 * the checker is zero-cost where it is not wanted.
 */

#ifndef PRORAM_UTIL_LOCK_ORDER_HH
#define PRORAM_UTIL_LOCK_ORDER_HH

#include <cstdint>

#ifdef PRORAM_LOCK_ORDER_CHECKS
#include "util/logging.hh"
#endif

namespace proram::lock_order
{

/**
 * Position in the lock partial order; lower ranks are acquired first.
 * kUnranked opts a mutex out of checking (single-purpose locks with
 * no documented position, e.g. test-local mutexes).
 */
enum class Rank : std::uint8_t
{
    Meta = 0,       ///< OramController::metaLock_ (outermost).
    Node = 1,       ///< SubtreeCache per-node/striped mutexes.
    StashShard = 2, ///< Stash shard mutexes.
    Leaf = 3,       ///< Innermost: rngMutex_, scheduleMutex_,
                    ///< statsLock_, arena latches, sequencer/pool.
    kUnranked = 255
};

inline constexpr std::uint8_t kRankCount = 4;

#ifdef PRORAM_LOCK_ORDER_CHECKS

namespace detail
{
/** Per-thread count of held locks at each rank. */
inline thread_local std::uint32_t held[kRankCount] = {};
} // namespace detail

/** Assert @p r may be acquired given this thread's held set, then
 *  record the hold. */
inline void
onAcquire(Rank r)
{
    if (r == Rank::kUnranked)
        return;
    const auto rank = static_cast<std::uint8_t>(r);
    for (std::uint8_t h = rank + 1; h < kRankCount; ++h) {
        panic_if(detail::held[h] != 0,
                 "lock-order violation: acquiring rank ",
                 static_cast<unsigned>(rank), " while holding rank ",
                 static_cast<unsigned>(h),
                 " (hierarchy: meta(0) < node(1) < shard(2) < "
                 "leaf(3))");
    }
    // Same-rank stacking: banned for meta (one mutex: self-deadlock),
    // node and shard (the one-hold-per-level evictPath contract).
    // Leaf-rank locks may stack - e.g. ring's eviction scheduler holds
    // scheduleMutex_ while randomLeaf() takes rngMutex_; leaves never
    // acquire upward so no cycle is possible.
    if (r != Rank::Leaf) {
        panic_if(detail::held[rank] != 0,
                 "lock-order violation: two rank-",
                 static_cast<unsigned>(rank),
                 " locks held at once (one-hold rule)");
    }
    ++detail::held[rank];
}

/** Record release of a rank-@p r hold. */
inline void
onRelease(Rank r)
{
    if (r == Rank::kUnranked)
        return;
    const auto rank = static_cast<std::uint8_t>(r);
    panic_if(detail::held[rank] == 0,
             "lock-order underflow: releasing rank ",
             static_cast<unsigned>(rank), " not held by this thread");
    --detail::held[rank];
}

/** Locks of rank @p r currently held by this thread (tests). */
inline std::uint32_t
heldCount(Rank r)
{
    return r == Rank::kUnranked
               ? 0
               : detail::held[static_cast<std::uint8_t>(r)];
}

#else // !PRORAM_LOCK_ORDER_CHECKS

inline void onAcquire(Rank) {}
inline void onRelease(Rank) {}
inline std::uint32_t heldCount(Rank) { return 0; }

#endif // PRORAM_LOCK_ORDER_CHECKS

/**
 * RAII rank registration for lock sites that bypass util::Mutex -
 * condition-variable waits that need the native std::mutex handle
 * (Stash::awaitResident, RequestSequencer::waitFor, ThreadPool).
 * The cv wait releases/reacquires the mutex invisibly, but within
 * this thread the rank is logically held across the wait, which is
 * exactly what the ordering check wants.
 */
class ScopedRank
{
  public:
    explicit ScopedRank(Rank r) : rank_(r) { onAcquire(rank_); }
    ~ScopedRank() { onRelease(rank_); }
    ScopedRank(const ScopedRank &) = delete;
    ScopedRank &operator=(const ScopedRank &) = delete;

  private:
    Rank rank_;
};

} // namespace proram::lock_order

#endif // PRORAM_UTIL_LOCK_ORDER_HH
