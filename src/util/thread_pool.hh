/**
 * @file
 * A minimal fixed-size thread pool (single shared FIFO queue, no work
 * stealing) for running independent simulation cells concurrently.
 *
 * Simulations are self-contained - every System owns its RNGs, tree
 * and stats - so cell-level parallelism needs no synchronisation
 * beyond the queue itself. Results stay bit-identical to serial runs
 * because each cell derives all randomness from its own config seed.
 */

#ifndef PRORAM_UTIL_THREAD_POOL_HH
#define PRORAM_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/annotations.hh"
#include "util/mutex.hh"

namespace proram::util
{

/**
 * Fixed worker count, shared FIFO queue. Jobs are picked up in
 * submission order (though they may *complete* out of order); use the
 * returned futures to collect results in a deterministic order.
 */
class ThreadPool
{
  public:
    /** Spawn @p num_threads workers (clamped to >= 1). */
    explicit ThreadPool(unsigned num_threads);

    /** Drains nothing: pending jobs still run; then workers join. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Queue @p fn for execution. The future carries the return value
     * or any exception thrown by the job.
     */
    template <typename Fn>
    auto submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using R = std::invoke_result_t<Fn>;
        // shared_ptr because std::function requires a copyable target
        // and packaged_task is move-only.
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> result = task->get_future();
        enqueue([task] { (*task)(); });
        return result;
    }

    /**
     * Worker count from $PRORAM_BENCH_THREADS, defaulting to
     * std::thread::hardware_concurrency() (>= 1).
     */
    static unsigned defaultThreadCount();

  private:
    void enqueue(std::function<void()> job) PRORAM_EXCLUDES(mutex_);
    void workerLoop();

    /** Leaf rank: pool jobs acquire their own locks only after the
     *  queue lock is released. */
    util::Mutex mutex_{lock_order::Rank::Leaf};
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_ PRORAM_GUARDED_BY(mutex_);
    bool stopping_ PRORAM_GUARDED_BY(mutex_) = false;
    std::vector<std::thread> workers_;
};

} // namespace proram::util

#endif // PRORAM_UTIL_THREAD_POOL_HH
