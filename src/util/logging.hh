/**
 * @file
 * gem5-style status/error reporting: panic() for simulator bugs,
 * fatal() for user/configuration errors, warn()/inform() for status.
 */

#ifndef PRORAM_UTIL_LOGGING_HH
#define PRORAM_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace proram
{

/**
 * Abort the simulation because of an internal simulator bug.
 * Something that should never happen regardless of user input.
 * Throws SimPanic (so tests can assert on it) rather than abort().
 */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/**
 * Terminate because the *user's* configuration is invalid
 * (bad parameters, impossible geometry). Throws SimFatal.
 */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning about questionable but survivable conditions. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Print an informational status message. */
void informImpl(const std::string &msg);

/** Thrown by panic(): an internal invariant was violated. */
class SimPanic : public std::exception
{
  public:
    explicit SimPanic(std::string msg) : msg_(std::move(msg)) {}
    const char *what() const noexcept override { return msg_.c_str(); }

  private:
    std::string msg_;
};

/** Thrown by fatal(): the user configuration cannot be simulated. */
class SimFatal : public std::exception
{
  public:
    explicit SimFatal(std::string msg) : msg_(std::move(msg)) {}
    const char *what() const noexcept override { return msg_.c_str(); }

  private:
    std::string msg_;
};

namespace detail
{

inline void
formatTo(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatTo(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatTo(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    formatTo(os, args...);
    return os.str();
}

} // namespace detail
} // namespace proram

#define panic(...)                                                       \
    ::proram::panicImpl(__FILE__, __LINE__,                              \
                        ::proram::detail::format(__VA_ARGS__))

#define fatal(...)                                                       \
    ::proram::fatalImpl(__FILE__, __LINE__,                              \
                        ::proram::detail::format(__VA_ARGS__))

#define warn(...)                                                        \
    ::proram::warnImpl(__FILE__, __LINE__,                               \
                       ::proram::detail::format(__VA_ARGS__))

#define panic_if(cond, ...)                                              \
    do {                                                                 \
        if (cond)                                                        \
            panic(__VA_ARGS__);                                          \
    } while (0)

#define fatal_if(cond, ...)                                              \
    do {                                                                 \
        if (cond)                                                        \
            fatal(__VA_ARGS__);                                          \
    } while (0)

#endif // PRORAM_UTIL_LOGGING_HH
