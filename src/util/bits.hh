/**
 * @file
 * Small bit-manipulation helpers used throughout the simulator.
 */

#ifndef PRORAM_UTIL_BITS_HH
#define PRORAM_UTIL_BITS_HH

#include <cstdint>

namespace proram
{

/** @return true iff @p v is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * Floor of log2.
 * @pre v > 0
 */
constexpr unsigned
log2Floor(std::uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** Ceiling of log2. @pre v > 0 */
constexpr unsigned
log2Ceil(std::uint64_t v)
{
    return v <= 1 ? 0 : log2Floor(v - 1) + 1;
}

/** Round @p v down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Ceiling division for unsigned integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Reverse the low @p width bits of @p v (bits at or above @p width
 * are dropped). Ring ORAM's deterministic eviction order enumerates
 * leaves as reverseBits(g, L): consecutive eviction paths then share
 * the longest possible common prefix with the *most distant* prior
 * path, spreading tree writes evenly (Ren et al., Sec. 3.2).
 * @pre width <= 64
 */
constexpr std::uint64_t
reverseBits(std::uint64_t v, unsigned width)
{
    std::uint64_t r = 0;
    for (unsigned i = 0; i < width; ++i) {
        r = (r << 1) | (v & 1);
        v >>= 1;
    }
    return r;
}

} // namespace proram

#endif // PRORAM_UTIL_BITS_HH
