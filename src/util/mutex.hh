/**
 * @file
 * Capability-annotated mutex and scoped lock for the concurrent core.
 *
 * std::mutex and std::unique_lock are invisible to clang's Thread
 * Safety Analysis (libstdc++ ships them unannotated), so every lock
 * in the meta < node < stash-shard hierarchy is a util::Mutex - a
 * PRORAM_CAPABILITY wrapper - and every hold is a util::ScopedLock -
 * a PRORAM_SCOPED_CAPABILITY RAII guard the analysis can track, even
 * when returned by value from an ACQUIRE-annotated lock factory
 * (Stash::lockShard, SubtreeCache::lockNode).
 *
 * The wrapper also feeds the Debug-build runtime checker: a Mutex
 * constructed with a lock_order::Rank reports acquisition/release to
 * the thread-local tracker in util/lock_order.hh, which asserts the
 * hierarchy on every lock when PRORAM_LOCK_ORDER_CHECKS is on. In
 * Release both layers compile to exactly the std::mutex operations.
 *
 * Condition-variable waits need the native std::mutex handle
 * (std::condition_variable::wait takes std::unique_lock<std::mutex>);
 * those few sites use native() plus lock_order::ScopedRank and are
 * marked PRORAM_NO_THREAD_SAFETY_ANALYSIS with a why-comment.
 */

#ifndef PRORAM_UTIL_MUTEX_HH
#define PRORAM_UTIL_MUTEX_HH

#include <atomic>
#include <cstdint>
#include <mutex>

#include "util/annotations.hh"
#include "util/lock_order.hh"

namespace proram::util
{

/** Lockable capability: std::mutex plus an optional hierarchy rank. */
class PRORAM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    explicit Mutex(lock_order::Rank rank) : rank_(rank) {}

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() PRORAM_ACQUIRE()
    {
        mtx_.lock();
        lock_order::onAcquire(rank_);
    }
    /** @return true iff the lock was taken. Rank-checked like lock():
     *  a try-acquire that would violate the order still trips the
     *  checker when it succeeds. */
    bool try_lock() PRORAM_TRY_ACQUIRE(true)
    {
        if (!mtx_.try_lock())
            return false;
        lock_order::onAcquire(rank_);
        return true;
    }
    void unlock() PRORAM_RELEASE()
    {
        lock_order::onRelease(rank_);
        mtx_.unlock();
    }

    /** Underlying std::mutex, for condition-variable waits only. The
     *  caller owns the rank bookkeeping (lock_order::ScopedRank). */
    std::mutex &native() { return mtx_; }

    /** Assign the hierarchy rank after default construction (array
     *  members: make_unique<Mutex[]> cannot pass a ctor argument).
     *  Must happen before the mutex sees concurrent traffic. */
    void setRank(lock_order::Rank rank) { rank_ = rank; }

    lock_order::Rank rank() const { return rank_; }

  private:
    std::mutex mtx_;
    lock_order::Rank rank_ = lock_order::Rank::kUnranked;
};

/**
 * RAII hold on a util::Mutex. Movable and default-constructible so
 * lock factories can return it by value and serial-mode callers can
 * carry an empty (no-op) instance; clang's analysis tracks the
 * capability through the by-value return of an ACQUIRE-annotated
 * factory, which is what makes the factories checkable at call sites.
 */
class PRORAM_SCOPED_CAPABILITY ScopedLock
{
  public:
    /** Empty hold: owns nothing, destructor is a no-op. */
    ScopedLock() = default;

    /** Lock @p m for the lifetime of this object. */
    explicit ScopedLock(Mutex &m) PRORAM_ACQUIRE(m) : mtx_(&m)
    {
        m.lock();
    }

    /**
     * Contention-counting variant: one try_lock, then a blocking
     * lock that bumps @p contended on failure - the lockShardFast /
     * lockNodeFast idiom (relaxed: observability counter only).
     */
    ScopedLock(Mutex &m, std::atomic<std::uint64_t> &contended)
        PRORAM_ACQUIRE(m)
        : mtx_(&m)
    {
        if (!m.try_lock()) {
            contended.fetch_add(1, std::memory_order_relaxed);
            m.lock();
        }
    }

    // Move-only plumbing. The analysis does not model moves of scoped
    // capabilities; the few call sites that need them (conditional
    // locking in dual serial/concurrent paths) are structured so the
    // capability state stays correct per scope.
    ScopedLock(ScopedLock &&other) noexcept : mtx_(other.mtx_)
    {
        other.mtx_ = nullptr;
    }
    ScopedLock &operator=(ScopedLock &&other) noexcept
    {
        if (this != &other) {
            if (mtx_ != nullptr)
                mtx_->unlock();
            mtx_ = other.mtx_;
            other.mtx_ = nullptr;
        }
        return *this;
    }
    ScopedLock(const ScopedLock &) = delete;
    ScopedLock &operator=(const ScopedLock &) = delete;

    /** Release early (no-op when empty). */
    void unlock() PRORAM_RELEASE()
    {
        if (mtx_ != nullptr) {
            mtx_->unlock();
            mtx_ = nullptr;
        }
    }

    bool owns() const { return mtx_ != nullptr; }

    ~ScopedLock() PRORAM_RELEASE()
    {
        if (mtx_ != nullptr)
            mtx_->unlock();
    }

  private:
    Mutex *mtx_ = nullptr;
};

} // namespace proram::util

#endif // PRORAM_UTIL_MUTEX_HH
