/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * The simulator must be bit-reproducible across runs, so every
 * stochastic component owns an Rng seeded from the experiment
 * configuration instead of sharing global state.
 */

#ifndef PRORAM_UTIL_RANDOM_HH
#define PRORAM_UTIL_RANDOM_HH

#include <cstdint>

namespace proram
{

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain reference
 * algorithm), re-implemented here. Fast, 256-bit state, passes BigCrush;
 * plenty for simulation (not for cryptography - the simulated ORAM's
 * "random" leaves model a hardware TRNG, they are not a security
 * boundary of this codebase).
 */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return next raw 64-bit value. */
    std::uint64_t next();

    /**
     * Uniform value in [0, bound), rejection-sampled to avoid modulo
     * bias. @pre bound > 0
     */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. @pre lo <= hi */
    std::uint64_t inRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double real();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

  private:
    std::uint64_t s_[4];
};

} // namespace proram

#endif // PRORAM_UTIL_RANDOM_HH
