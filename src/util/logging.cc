#include "util/logging.hh"

#include <iostream>

namespace proram
{

namespace
{

std::string
locate(const char *file, int line, const char *kind,
       const std::string &msg)
{
    std::ostringstream os;
    os << kind << ": " << msg << " @ " << file << ":" << line;
    return os.str();
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    throw SimPanic(locate(file, line, "panic", msg));
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    throw SimFatal(locate(file, line, "fatal", msg));
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << locate(file, line, "warn", msg) << "\n";
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << "\n";
}

} // namespace proram
