/**
 * @file
 * Fundamental scalar types shared across the PrORAM simulator.
 */

#ifndef PRORAM_UTIL_TYPES_HH
#define PRORAM_UTIL_TYPES_HH

#include <cstdint>
#include <limits>

namespace proram
{

/** Simulated cycle count (1 GHz core by default, so cycles == ns). */
using Cycles = std::uint64_t;

/** Byte address in the program (virtual) address space. */
using Addr = std::uint64_t;

/** Logical ORAM block identifier (program address / block size). */
using BlockId = std::uint64_t;

/** Leaf label in the Path ORAM binary tree, in [0, 2^L). */
using Leaf = std::uint32_t;

/** Sentinel for "no block" (dummy slot, invalid id). */
inline constexpr BlockId kInvalidBlock =
    std::numeric_limits<BlockId>::max();

/** Sentinel for "no leaf assigned". */
inline constexpr Leaf kInvalidLeaf = std::numeric_limits<Leaf>::max();

/** Kind of memory operation flowing through the hierarchy. */
enum class OpType : std::uint8_t { Read, Write };

} // namespace proram

#endif // PRORAM_UTIL_TYPES_HH
