/**
 * @file
 * Fundamental domain types shared across the PrORAM simulator.
 *
 * All five are distinct strong types (util/strong_type.hh): explicit
 * construction, `.value()` to unwrap, and only the arithmetic that is
 * meaningful for the quantity. Mixing them (leaf vs. tree index, id
 * vs. address, level vs. cycle count) is a compile error, and the
 * obliviousness linter (tools/lint/oblivious_lint.py) keys its
 * secret-data-dependence tracking on these wrappers.
 */

#ifndef PRORAM_UTIL_TYPES_HH
#define PRORAM_UTIL_TYPES_HH

#include <cstdint>
#include <limits>

#include "util/strong_type.hh"

namespace proram
{

namespace tags
{
struct Cycles;
struct BlockId;
struct Leaf;
struct TreeIdx;
struct Level;
} // namespace tags

/** Simulated cycle count (1 GHz core by default, so cycles == ns).
 *  A true quantity: additive with itself, scalable by a count. */
using Cycles = util::Strong<std::uint64_t, tags::Cycles,
                            util::kOpAdditive | util::kOpScale |
                                util::kOpCounter>;

/** Byte address in the program (virtual) address space. Kept raw:
 *  addresses enter from traces and leave to caches as plain numbers,
 *  and never mix with the secret-labelled ORAM namespaces below. */
using Addr = std::uint64_t;

/** Logical ORAM block identifier (program address / block size).
 *  An ordinal: members of a super-block group are reached by integer
 *  offsets from the base id, and id - id is a group-relative index. */
using BlockId = util::Strong<std::uint64_t, tags::BlockId,
                             util::kOpOffset | util::kOpDistance |
                                 util::kOpCounter>;

/** Leaf label in the Path ORAM binary tree, in [0, 2^L). Secret.
 *  No arithmetic except xor, which yields the path-agreement mask
 *  consumed by bit_width (BinaryTree::commonLevel). */
using Leaf = util::Strong<std::uint32_t, tags::Leaf,
                          util::kOpBitXor | util::kOpCounter>;

/** Heap-order node index in the bucket tree, in [0, 2^(L+1)-1).
 *  Public (which bucket), unlike the leaf label that selected it. */
using TreeIdx = util::Strong<std::uint64_t, tags::TreeIdx,
                             util::kOpOffset | util::kOpDistance |
                                 util::kOpCounter>;

/** Level in the bucket tree: root is Level{0}, leaves Level{L}. */
using Level = util::Strong<std::uint32_t, tags::Level,
                           util::kOpOffset | util::kOpDistance |
                               util::kOpCounter>;

/** Sentinel for "no block" (dummy slot, invalid id). */
inline constexpr BlockId kInvalidBlock{
    std::numeric_limits<std::uint64_t>::max()};

/** Sentinel for "no leaf assigned". */
inline constexpr Leaf kInvalidLeaf{
    std::numeric_limits<std::uint32_t>::max()};

/** Kind of memory operation flowing through the hierarchy. */
enum class OpType : std::uint8_t { Read, Write };

/** Literal suffixes for the strong types: `7_id`, `3_leaf`, `100_cyc`,
 *  `5_node`, `2_lvl`. Opt-in via `using namespace proram::literals;`
 *  (tests and examples; production code mostly carries values, not
 *  literals). */
namespace literals
{

constexpr BlockId operator""_id(unsigned long long v)
{
    return BlockId{static_cast<std::uint64_t>(v)};
}
constexpr Leaf operator""_leaf(unsigned long long v)
{
    return Leaf{static_cast<std::uint32_t>(v)};
}
constexpr Cycles operator""_cyc(unsigned long long v)
{
    return Cycles{static_cast<std::uint64_t>(v)};
}
constexpr TreeIdx operator""_node(unsigned long long v)
{
    return TreeIdx{static_cast<std::uint64_t>(v)};
}
constexpr Level operator""_lvl(unsigned long long v)
{
    return Level{static_cast<std::uint32_t>(v)};
}

} // namespace literals

} // namespace proram

template <>
struct std::hash<proram::Cycles>
    : proram::util::StrongHash<proram::Cycles>
{
};
template <>
struct std::hash<proram::BlockId>
    : proram::util::StrongHash<proram::BlockId>
{
};
template <>
struct std::hash<proram::Leaf> : proram::util::StrongHash<proram::Leaf>
{
};
template <>
struct std::hash<proram::TreeIdx>
    : proram::util::StrongHash<proram::TreeIdx>
{
};
template <>
struct std::hash<proram::Level>
    : proram::util::StrongHash<proram::Level>
{
};

#endif // PRORAM_UTIL_TYPES_HH
