/**
 * @file
 * Strong integer wrapper underlying the project's domain types
 * (util/types.hh): explicit construction, `.value()` to unwrap, and
 * arithmetic only where it is meaningful for the tagged quantity.
 *
 * Rationale (ISSUE 5 / DESIGN.md "Static analysis"): PrORAM's
 * obliviousness argument keeps several integer namespaces that must
 * never mix - leaf labels, logical block ids, heap node indices, tree
 * levels, simulated cycles. With raw `using` aliases the compiler
 * happily adds a leaf to a node index; with these wrappers that is a
 * compile error, and the obliviousness linter can key its
 * data-dependence tracking on the wrapper types instead of on every
 * `uint64_t` in the program.
 *
 * Capabilities are opt-in per tag via the `Ops` bitmask:
 *  - kOpCounter:  ++ / -- (ordinals that are iterated).
 *  - kOpAdditive: T + T -> T, T - T -> T, += , -= (true quantities,
 *                 e.g. cycle counts).
 *  - kOpOffset:   T + integral -> T, T - integral -> T (ordinals with
 *                 meaningful displacement, e.g. block ids in a
 *                 super-block group).
 *  - kOpDistance: T - T -> Rep (distance between two ordinals; never
 *                 combined with kOpAdditive).
 *  - kOpScale:    T * integral -> T (quantities only).
 *  - kOpBitXor:   T ^ T -> Rep (leaf-label path agreement masks).
 *
 * Everything else - implicit conversion in either direction, mixed-tag
 * arithmetic, T + T on ordinals - does not compile.
 */

#ifndef PRORAM_UTIL_STRONG_TYPE_HH
#define PRORAM_UTIL_STRONG_TYPE_HH

#include <compare>
#include <concepts>
#include <cstdint>
#include <functional>
#include <ostream>
#include <type_traits>

namespace proram
{
namespace util
{

inline constexpr unsigned kOpCounter = 1u << 0;
inline constexpr unsigned kOpAdditive = 1u << 1;
inline constexpr unsigned kOpOffset = 1u << 2;
inline constexpr unsigned kOpDistance = 1u << 3;
inline constexpr unsigned kOpScale = 1u << 4;
inline constexpr unsigned kOpBitXor = 1u << 5;

/**
 * Tagged integer. @tparam RepT underlying representation,
 * @tparam TagT an empty struct naming the domain, @tparam Ops the
 * kOp* capability mask.
 */
template <typename RepT, typename TagT, unsigned Ops = 0>
class Strong
{
    static_assert(std::is_integral_v<RepT> && std::is_unsigned_v<RepT>,
                  "Strong<> wraps unsigned integral representations");
    static_assert(!((Ops & kOpAdditive) && (Ops & kOpDistance)),
                  "additive types already define T - T -> T");

  public:
    using Rep = RepT;
    using Tag = TagT;

    constexpr Strong() = default;
    constexpr explicit Strong(Rep v) : v_(v) {}

    /** The wrapped representation; the only way out of the type. */
    constexpr Rep value() const { return v_; }

    friend constexpr bool operator==(Strong a, Strong b)
    {
        return a.v_ == b.v_;
    }
    friend constexpr auto operator<=>(Strong a, Strong b)
    {
        return a.v_ <=> b.v_;
    }

    // kOpCounter ----------------------------------------------------
    constexpr Strong &operator++() requires((Ops & kOpCounter) != 0)
    {
        ++v_;
        return *this;
    }
    constexpr Strong operator++(int) requires((Ops & kOpCounter) != 0)
    {
        Strong t = *this;
        ++v_;
        return t;
    }
    constexpr Strong &operator--() requires((Ops & kOpCounter) != 0)
    {
        --v_;
        return *this;
    }
    constexpr Strong operator--(int) requires((Ops & kOpCounter) != 0)
    {
        Strong t = *this;
        --v_;
        return t;
    }

    // kOpAdditive ---------------------------------------------------
    friend constexpr Strong
    operator+(Strong a, Strong b) requires((Ops & kOpAdditive) != 0)
    {
        return Strong(static_cast<Rep>(a.v_ + b.v_));
    }
    friend constexpr Strong
    operator-(Strong a, Strong b) requires((Ops & kOpAdditive) != 0)
    {
        return Strong(static_cast<Rep>(a.v_ - b.v_));
    }
    constexpr Strong &
    operator+=(Strong b) requires((Ops & kOpAdditive) != 0)
    {
        v_ = static_cast<Rep>(v_ + b.v_);
        return *this;
    }
    constexpr Strong &
    operator-=(Strong b) requires((Ops & kOpAdditive) != 0)
    {
        v_ = static_cast<Rep>(v_ - b.v_);
        return *this;
    }

    /** Phase within a period (quantities only). */
    friend constexpr Strong
    operator%(Strong a, Strong b) requires((Ops & kOpAdditive) != 0)
    {
        return Strong(static_cast<Rep>(a.v_ % b.v_));
    }

    // kOpOffset / kOpDistance ---------------------------------------
    template <std::integral I>
    friend constexpr Strong
    operator+(Strong a, I d) requires((Ops & kOpOffset) != 0)
    {
        return Strong(static_cast<Rep>(a.v_ + static_cast<Rep>(d)));
    }
    template <std::integral I>
    friend constexpr Strong
    operator-(Strong a, I d) requires((Ops & kOpOffset) != 0)
    {
        return Strong(static_cast<Rep>(a.v_ - static_cast<Rep>(d)));
    }
    friend constexpr Rep
    operator-(Strong a, Strong b) requires((Ops & kOpDistance) != 0)
    {
        return static_cast<Rep>(a.v_ - b.v_);
    }
    template <std::integral I>
    constexpr Strong &operator+=(I d) requires((Ops & kOpOffset) != 0)
    {
        v_ = static_cast<Rep>(v_ + static_cast<Rep>(d));
        return *this;
    }
    template <std::integral I>
    constexpr Strong &operator-=(I d) requires((Ops & kOpOffset) != 0)
    {
        v_ = static_cast<Rep>(v_ - static_cast<Rep>(d));
        return *this;
    }

    // kOpScale ------------------------------------------------------
    template <std::integral I>
    friend constexpr Strong
    operator*(Strong a, I d) requires((Ops & kOpScale) != 0)
    {
        return Strong(static_cast<Rep>(a.v_ * static_cast<Rep>(d)));
    }
    template <std::integral I>
    friend constexpr Strong
    operator*(I d, Strong a) requires((Ops & kOpScale) != 0)
    {
        return Strong(static_cast<Rep>(a.v_ * static_cast<Rep>(d)));
    }

    // kOpBitXor -----------------------------------------------------
    friend constexpr Rep
    operator^(Strong a, Strong b) requires((Ops & kOpBitXor) != 0)
    {
        return static_cast<Rep>(a.v_ ^ b.v_);
    }

    /** Diagnostics only (panic/format/gtest); prints the raw value. */
    friend std::ostream &operator<<(std::ostream &os, Strong s)
    {
        return os << s.v_;
    }

  private:
    Rep v_{};
};

/** std::hash support for strong types (tests / cold-path sets). */
template <typename S>
struct StrongHash
{
    std::size_t operator()(S s) const noexcept
    {
        return std::hash<typename S::Rep>{}(s.value());
    }
};

} // namespace util
} // namespace proram

#endif // PRORAM_UTIL_STRONG_TYPE_HH
