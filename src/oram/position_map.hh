/**
 * @file
 * Position map state plus the unified-recursion address-space layout.
 *
 * Functionally, the position map is one flat table: for every
 * tree-resident block (data blocks *and* position-map blocks) it holds
 * the current leaf, the super-block size, and the per-block metadata
 * bits of the dynamic super block scheme (merge / break / prefetch /
 * hit - paper Sec. 4.1 and 4.5.1). The *recursion* (which position-map
 * block must be on-chip to know a leaf, and which path accesses a PLB
 * miss costs) is modelled by BlockSpace + PosMapBlockCache and charged
 * by the unified ORAM front end.
 *
 * Leaf-cache coherence: stash entries cache their block's leaf so the
 * eviction scan never re-reads the position map. setLeaf() is the one
 * mutation point for leaves, and it forwards every remap to the
 * attached Stash (see attachLeafCache()) - remap call sites do not,
 * and must not, update the stash themselves.
 */

#ifndef PRORAM_ORAM_POSITION_MAP_HH
#define PRORAM_ORAM_POSITION_MAP_HH

#include <cstdint>
#include <vector>

#include "oram/config.hh"
#include "oram/stash.hh"
#include "util/flat_index.hh"
#include "util/types.hh"

namespace proram
{

/** Per-block position-map entry (Fig. 4 of the paper). */
struct PosEntry
{
    Leaf leaf = kInvalidLeaf;
    /** log2 of the super block this block belongs to (0 = alone). */
    std::uint8_t sbSizeLog = 0;
    /** log2 of the group's member stride (0 = contiguous; Sec. 6.2
     *  strided-super-block extension). */
    std::uint8_t sbStrideLog = 0;
    /** Merge-counter bit contributed by this block. */
    bool mergeBit = false;
    /** Break-counter bit contributed by this block. */
    bool breakBit = false;
    /** Block was brought in as a prefetch (Sec. 4.3). */
    bool prefetchBit = false;
    /** Block's last prefetch was demand-used (Sec. 4.3). */
    bool hitBit = false;

    std::uint32_t sbSize() const { return 1u << sbSizeLog; }
};

/**
 * Unified ORAM block-id layout: data blocks first, then one contiguous
 * range per tree-resident position-map level. The last (smallest)
 * position-map table is on-chip and has no block ids.
 */
class BlockSpace
{
  public:
    explicit BlockSpace(const OramConfig &cfg);

    std::uint64_t numDataBlocks() const { return numData_; }
    std::uint64_t numTotalBlocks() const { return total_; }
    std::uint32_t posMapLevels() const
    {
        return static_cast<std::uint32_t>(levelBase_.size());
    }
    std::uint32_t fanout() const { return fanout_; }

    bool isData(BlockId id) const { return id.value() < numData_; }

    /**
     * The position-map block holding @p id's entry, or kInvalidBlock
     * if the entry lives in the on-chip table.
     */
    BlockId posMapBlockOf(BlockId id) const;

    /** Recursion level of a block: 0 = data, k = level-k pos-map. */
    std::uint32_t levelOf(BlockId id) const;

    /** First block id of pos-map level @p level (1-based). */
    BlockId levelBase(std::uint32_t level) const;

    /** Number of blocks at pos-map level @p level (1-based). */
    std::uint64_t levelCount(std::uint32_t level) const;

  private:
    std::uint64_t numData_;
    std::uint32_t fanout_;
    std::uint64_t total_;
    std::vector<BlockId> levelBase_;
    std::vector<std::uint64_t> levelCount_;
};

/** Flat functional position map over all tree-resident blocks. */
class PositionMap
{
  public:
    PositionMap(std::uint64_t num_blocks, Leaf num_leaves);

    PosEntry &entry(BlockId id);
    const PosEntry &entry(BlockId id) const;

    Leaf leafOf(BlockId id) const { return entry(id).leaf; }

    /**
     * Remap @p id to @p leaf. The single write point for leaves: also
     * refreshes the attached stash's cached copy, so a remap made
     * mid-access is visible to that access's own eviction scan.
     * (Writing entry(id).leaf directly bypasses the stash and is a
     * coherence bug whenever the block can be stash-resident.)
     */
    void setLeaf(BlockId id, Leaf leaf)
    {
        entry(id).leaf = leaf;
        if (leafCache_)
            leafCache_->updateLeaf(id, leaf);
    }

    /** Register @p stash as the leaf-cache coherence listener
     *  (PathOram wires this up; nullptr detaches). */
    void attachLeafCache(Stash *stash) { leafCache_ = stash; }

    std::uint64_t size() const { return entries_.size(); }
    Leaf numLeaves() const { return numLeaves_; }

  private:
    std::vector<PosEntry> entries_;
    Leaf numLeaves_;
    Stash *leafCache_ = nullptr;
};

/**
 * PLB: fully-associative LRU cache of position-map *blocks* held
 * on-chip (Unified ORAM / Freecursive). A hit means the leaf labels of
 * that block's children are available without extra path accesses.
 * Write-back of evicted pos-map blocks is treated as free (the entry's
 * authoritative copy lives in PositionMap); DESIGN.md records this
 * simplification.
 *
 * Layout: fixed slot array with intrusive prev/next index links (the
 * LRU chain) plus a FlatIndex for id -> slot lookup. No per-operation
 * allocation; an LRU refresh rewires three slots' links in place.
 */
class PosMapBlockCache
{
  public:
    explicit PosMapBlockCache(std::uint32_t entries);

    /** @return true if @p pm_block is cached; refreshes LRU. */
    bool lookup(BlockId pm_block);

    /** Insert (possibly evicting LRU). */
    void insert(BlockId pm_block);

    bool contains(BlockId pm_block) const;
    std::size_t size() const { return index_.size(); }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

    struct Node
    {
        BlockId id = kInvalidBlock;
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
    };

    /** Unhook @p slot from the chain (it must be linked). */
    void unlink(std::uint32_t slot);
    /** Make @p slot the MRU head. */
    void linkFront(std::uint32_t slot);

    std::uint32_t capacity_;
    std::vector<Node> nodes_;
    /** Slots [0, used_) hold (or held) entries; the rest are virgin. */
    std::uint32_t used_ = 0;
    std::uint32_t head_ = kNil; // MRU
    std::uint32_t tail_ = kNil; // LRU
    FlatIndex index_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace proram

#endif // PRORAM_ORAM_POSITION_MAP_HH
