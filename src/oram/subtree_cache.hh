/**
 * @file
 * Locking discipline for concurrent access to the shared Path ORAM
 * tree (the "subtree cache" of the concurrent controller).
 *
 * The flat SoA slot arena in tree.hh is the shared subtree store:
 * every in-flight request reads and writes buckets of the same tree.
 * This class adds the per-node mutual exclusion that makes those
 * bucket operations safe: the top levels of the tree - where every
 * path overlaps and contention concentrates - get one dedicated mutex
 * per node, while the exponentially many deeper nodes hash onto a
 * fixed stripe table (false sharing of a stripe only costs a little
 * extra serialisation, never correctness).
 *
 * Deadlock freedom is by protocol, not by this class: callers hold at
 * most ONE node lock at a time (fetch and write-back walk the path
 * bucket by bucket, releasing each before locking the next), so the
 * stripe mapping can alias arbitrary nodes without ordering concerns.
 * See DESIGN.md "Concurrent controller" for the full lock hierarchy.
 */

#ifndef PRORAM_ORAM_SUBTREE_CACHE_HH
#define PRORAM_ORAM_SUBTREE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "util/types.hh"

namespace proram
{

class SubtreeCache
{
  public:
    /**
     * @param num_buckets total nodes in the tree (heap order).
     * @param dedicated_levels tree levels with a private mutex per
     *        node (root is level 0); deeper nodes share stripes.
     * @param stripes size of the shared stripe table.
     */
    explicit SubtreeCache(std::uint64_t num_buckets,
                          std::uint32_t dedicated_levels = 8,
                          std::size_t stripes = 512);

    /** RAII exclusive hold on @p node's bucket. Callers must not hold
     *  another node guard while acquiring (see file comment). */
    std::unique_lock<std::mutex> lockNode(TreeIdx node);

    /** Total lockNode() calls (relaxed; observability only). */
    std::uint64_t acquisitions() const
    {
        return acquisitions_.load(std::memory_order_relaxed);
    }
    /** Calls that found the mutex already held and had to block. */
    std::uint64_t contended() const
    {
        return contended_.load(std::memory_order_relaxed);
    }

    std::uint64_t dedicatedNodes() const { return dedicated_; }
    std::size_t stripeCount() const { return stripes_; }

  private:
    std::mutex &mutexFor(TreeIdx node);

    /** Nodes with index < dedicated_ own nodeMutexes_[index]. */
    std::uint64_t dedicated_;
    std::size_t stripes_;
    std::unique_ptr<std::mutex[]> nodeMutexes_;
    std::unique_ptr<std::mutex[]> stripeMutexes_;
    std::atomic<std::uint64_t> acquisitions_{0};
    std::atomic<std::uint64_t> contended_{0};
};

} // namespace proram

#endif // PRORAM_ORAM_SUBTREE_CACHE_HH
