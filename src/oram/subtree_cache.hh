/**
 * @file
 * Locking discipline plus cross-request path deduplication for
 * concurrent access to the shared Path ORAM tree (the "subtree cache"
 * of the concurrent controller).
 *
 * The flat SoA slot arena in tree.hh is the shared subtree store:
 * every in-flight request reads and writes buckets of the same tree.
 * This class adds two things on top:
 *
 *  1. Per-node mutual exclusion. The top levels of the tree - where
 *     every path overlaps and contention concentrates - get one
 *     dedicated mutex per node, while the exponentially many deeper
 *     nodes hash onto a fixed stripe table (false sharing of a stripe
 *     only costs a little extra serialisation, never correctness).
 *
 *  2. A resident-bucket *window* over the dedicated nodes (TaoStore-
 *     style path deduplication, enableWindow()). The first in-flight
 *     request to touch a dedicated bucket in a drain window loads it
 *     from the arena (a dedup miss); every overlapping path after
 *     that adopts the already-resident copy instead of re-reading the
 *     arena (a dedup hit). Dirty residents are written back to the
 *     arena once per drain window by flushWindow() - called at a
 *     quiescent point - instead of once per request, with the saved
 *     arena traffic visible in the hit/miss/flush counters. Logical
 *     accounting is unchanged: stats and the obliviousness auditor
 *     still see every path touch; only physical arena reads/writes of
 *     shared buckets are collapsed.
 *
 * Lock hierarchy (DESIGN.md Sec. 11/13): controller meta lock <
 * node locks (this class) < stash-shard locks. Callers hold at most
 * ONE node lock at a time (fetch and write-back walk the path bucket
 * by bucket, releasing each before locking the next), so the stripe
 * mapping can alias arbitrary nodes without ordering concerns; a
 * node lock may be held while acquiring a stash-shard lock (the
 * eviction pass revalidates and erases candidates under the level's
 * node hold), never the reverse. All windowed-bucket accessors
 * require the node's lock - a contract clang's thread-safety
 * analysis checks statically (PRORAM_REQUIRES(mutexFor(node))), the
 * lock-order lint checks textually, and Debug builds check at
 * runtime via lock_order::Rank::Node (DESIGN.md Sec. 15).
 */

#ifndef PRORAM_ORAM_SUBTREE_CACHE_HH
#define PRORAM_ORAM_SUBTREE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/annotations.hh"
#include "util/mutex.hh"
#include "util/types.hh"

namespace proram
{

class BinaryTree;

class SubtreeCache
{
  public:
    /**
     * @param num_buckets total nodes in the tree (heap order).
     * @param dedicated_levels tree levels with a private mutex per
     *        node (root is level 0); deeper nodes share stripes.
     * @param stripes size of the shared stripe table.
     */
    explicit SubtreeCache(std::uint64_t num_buckets,
                          std::uint32_t dedicated_levels = 8,
                          std::size_t stripes = 512);

    /** RAII exclusive hold on @p node's bucket. Callers must not hold
     *  another node guard while acquiring (see file comment). Counts
     *  the acquisition and (for windowed nodes) the dedup touch. */
    util::ScopedLock lockNode(TreeIdx node)
        PRORAM_ACQUIRE(mutexFor(node));

    /**
     * lockNode() minus the per-call accounting: contention is still
     * recorded, but the caller batches acquisition and window-touch
     * counts via noteAcquisitions()/noteWindowTouches() - one atomic
     * add per path instead of one per bucket on the fetch/evict hot
     * paths.
     */
    util::ScopedLock lockNodeFast(TreeIdx node)
        PRORAM_ACQUIRE(mutexFor(node));

    /** Credit @p n lockNodeFast() acquisitions. */
    void noteAcquisitions(std::uint64_t n)
    {
        acquisitions_.fetch_add(n, std::memory_order_relaxed);
    }
    /** Credit @p n windowed-bucket holds taken via lockNodeFast(). */
    void noteWindowTouches(std::uint64_t n)
    {
        windowTouches_.fetch_add(n, std::memory_order_relaxed);
    }

    /** @name Resident-bucket window (path deduplication). @{ */

    /** Allocate the window over the dedicated nodes of @p tree. The
     *  window becomes the authoritative copy of those buckets for all
     *  engine accesses; flushWindow() syncs the arena for external
     *  readers (integrity checks, serial re-reads). */
    void enableWindow(const BinaryTree &tree);
    bool windowEnabled() const { return windowEnabled_; }

    /** Whether @p node's bucket routes through the window. */
    bool windowed(TreeIdx node) const
    {
        return windowEnabled_ && node.value() < dedicated_;
    }

    /** Number of complete tree levels the window covers (floor): the
     *  dedicated prefix holds 2^L - 1 nodes, so every node of levels
     *  [0, L) is windowed. */
    std::uint32_t windowLevels() const
    {
        std::uint32_t l = 0;
        while ((std::uint64_t{2} << l) - 1 <= dedicated_)
            ++l;
        return l;
    }

    /** @name Windowed bucket operations.
     *  Caller holds lockNode(node) and windowed(node) is true; the
     *  bucket is loaded from @p tree on first touch. Semantics mirror
     *  BinaryTree's accessors. @{ */
    std::uint32_t occupancy(TreeIdx node, const BinaryTree &tree)
        PRORAM_REQUIRES(mutexFor(node));
    std::uint32_t freeSlots(TreeIdx node, const BinaryTree &tree)
        PRORAM_REQUIRES(mutexFor(node));
    BlockId slotId(TreeIdx node, std::uint32_t i,
                   const BinaryTree &tree)
        PRORAM_REQUIRES(mutexFor(node));
    std::uint64_t slotData(TreeIdx node, std::uint32_t i,
                           const BinaryTree &tree)
        PRORAM_REQUIRES(mutexFor(node));
    void clearSlot(TreeIdx node, std::uint32_t i,
                   const BinaryTree &tree)
        PRORAM_REQUIRES(mutexFor(node));
    bool tryPlace(TreeIdx node, BlockId id, std::uint64_t data,
                  const BinaryTree &tree)
        PRORAM_REQUIRES(mutexFor(node));
    /** @} */

    /**
     * Write every dirty resident bucket back to the arena (once per
     * drain window). Must run at a quiescent point - no in-flight
     * requests - before anything reads the tree directly (integrity
     * checker, goldens, serial traffic). Residency is kept: clean
     * buckets keep deduplicating across windows.
     */
    void flushWindow(BinaryTree &tree);

    /** Dedicated-bucket touches that adopted a resident copy:
     *  total windowed holds minus first-touch arena loads (residency
     *  never clears, so every non-first touch adopts the copy). */
    std::uint64_t dedupHits() const
    {
        const std::uint64_t touches =
            windowTouches_.load(std::memory_order_relaxed);
        const std::uint64_t misses =
            dedupMisses_.load(std::memory_order_relaxed);
        return touches > misses ? touches - misses : 0;
    }
    /** Dedicated-bucket touches that had to read the arena. */
    std::uint64_t dedupMisses() const
    {
        return dedupMisses_.load(std::memory_order_relaxed);
    }
    /** Arena bucket writes performed by flushWindow(). */
    std::uint64_t flushWrites() const
    {
        return flushWrites_.load(std::memory_order_relaxed);
    }
    /** @} */

    /** Total lockNode() calls (relaxed; observability only). */
    std::uint64_t acquisitions() const
    {
        return acquisitions_.load(std::memory_order_relaxed);
    }
    /** Calls that found the mutex already held and had to block. */
    std::uint64_t contended() const
    {
        return contended_.load(std::memory_order_relaxed);
    }

    std::uint64_t dedicatedNodes() const { return dedicated_; }
    std::size_t stripeCount() const { return stripes_; }

    /** Capability owning @p node's bucket (dedicated or striped).
     *  Exposed so lock annotations (here and in bucket_ops.hh) can
     *  name it; callers lock via lockNode()/lockNodeFast(), never
     *  directly. */
    util::Mutex &mutexFor(TreeIdx node);

  private:

    /** Load @p node's bucket from the arena if not yet resident.
     *  Caller holds the node's lock. */
    void ensureResident(std::uint64_t n, const BinaryTree &tree);

    /** Nodes with index < dedicated_ own nodeMutexes_[index]. */
    std::uint64_t dedicated_;
    std::size_t stripes_;
    /** Ranked lock_order::Rank::Node at construction. */
    std::unique_ptr<util::Mutex[]> nodeMutexes_;
    std::unique_ptr<util::Mutex[]> stripeMutexes_;
    std::atomic<std::uint64_t> acquisitions_{0};
    std::atomic<std::uint64_t> contended_{0};

    // Window storage: flat per-dedicated-node bucket lanes, each
    // bucket's words guarded by its node mutex (flags are plain bytes
    // for that reason; the flush runs quiescent).
    bool windowEnabled_ = false;
    std::uint32_t z_ = 0;
    std::vector<BlockId> winIds_;
    std::vector<std::uint64_t> winData_;
    std::vector<std::uint32_t> winFree_;
    std::vector<std::uint8_t> winResident_;
    std::vector<std::uint8_t> winDirty_;
    /** Windowed-bucket holds (lockNode counts inline; lockNodeFast
     *  callers batch via noteWindowTouches). */
    std::atomic<std::uint64_t> windowTouches_{0};
    std::atomic<std::uint64_t> dedupMisses_{0};
    std::atomic<std::uint64_t> flushWrites_{0};
};

} // namespace proram

#endif // PRORAM_ORAM_SUBTREE_CACHE_HH
