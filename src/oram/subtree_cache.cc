#include "oram/subtree_cache.hh"

#include <algorithm>

#include "oram/tree.hh"
#include "util/annotations.hh"
#include "util/logging.hh"

namespace proram
{

SubtreeCache::SubtreeCache(std::uint64_t num_buckets,
                           std::uint32_t dedicated_levels,
                           std::size_t stripes)
    : dedicated_(std::min<std::uint64_t>(
          num_buckets,
          dedicated_levels >= 63
              ? num_buckets
              : (std::uint64_t{1} << dedicated_levels) - 1)),
      stripes_(std::max<std::size_t>(1, stripes))
{
    fatal_if(num_buckets == 0, "SubtreeCache over an empty tree");
    if (dedicated_ > 0)
        nodeMutexes_ = std::make_unique<util::Mutex[]>(dedicated_);
    stripeMutexes_ = std::make_unique<util::Mutex[]>(stripes_);
    // Node locks sit between the controller meta lock and the stash
    // shard locks; Debug builds assert that order on every acquire.
    for (std::uint64_t n = 0; n < dedicated_; ++n)
        nodeMutexes_[n].setRank(lock_order::Rank::Node);
    for (std::size_t i = 0; i < stripes_; ++i)
        stripeMutexes_[i].setRank(lock_order::Rank::Node);
}

util::Mutex &
SubtreeCache::mutexFor(TreeIdx node)
{
    const std::uint64_t n = node.value();
    if (n < dedicated_)
        return nodeMutexes_[n];
    return stripeMutexes_[n % stripes_];
}

// Lock factories: the header's PRORAM_ACQUIRE(mutexFor(node)) is the
// contract clang checks at call sites; the bodies hand a scoped
// capability out by value, which the analysis cannot model, hence the
// documented escapes.
util::ScopedLock
SubtreeCache::lockNode(TreeIdx node) PRORAM_NO_THREAD_SAFETY_ANALYSIS
{
    // Relaxed: observability counters only, never synchronize.
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    if (windowed(node))
        windowTouches_.fetch_add(1, std::memory_order_relaxed);
    return lockNodeFast(node);
}

PRORAM_HOT util::ScopedLock
SubtreeCache::lockNodeFast(TreeIdx node)
    PRORAM_NO_THREAD_SAFETY_ANALYSIS
{
    return util::ScopedLock(mutexFor(node), contended_);
}

void
SubtreeCache::enableWindow(const BinaryTree &tree)
{
    z_ = tree.z();
    winIds_.assign(dedicated_ * z_, kInvalidBlock);
    winData_.assign(dedicated_ * z_, 0);
    winFree_.assign(dedicated_, z_);
    winResident_.assign(dedicated_, 0);
    winDirty_.assign(dedicated_, 0);
    windowEnabled_ = true;
}

void
SubtreeCache::ensureResident(std::uint64_t n, const BinaryTree &tree)
{
    if (winResident_[n] != 0)
        return;
    // Dedup accounting: a miss is exactly a first-touch arena load
    // (residency never clears - the flush keeps buckets resident), so
    // counting it here keeps the hot lock path free of accounting
    // RMWs; hits are derived as windowTouches - misses.
    dedupMisses_.fetch_add(1, std::memory_order_relaxed);
    const TreeIdx node{n};
    for (std::uint32_t i = 0; i < z_; ++i) {
        winIds_[n * z_ + i] = tree.slotId(node, i);
        winData_[n * z_ + i] = tree.slotData(node, i);
    }
    winFree_[n] = tree.freeSlots(node);
    winDirty_[n] = 0;
    winResident_[n] = 1;
}

std::uint32_t
SubtreeCache::occupancy(TreeIdx node, const BinaryTree &tree)
{
    ensureResident(node.value(), tree);
    return z_ - winFree_[node.value()];
}

std::uint32_t
SubtreeCache::freeSlots(TreeIdx node, const BinaryTree &tree)
{
    ensureResident(node.value(), tree);
    return winFree_[node.value()];
}

BlockId
SubtreeCache::slotId(TreeIdx node, std::uint32_t i,
                     const BinaryTree &tree)
{
    ensureResident(node.value(), tree);
    return winIds_[node.value() * z_ + i];
}

std::uint64_t
SubtreeCache::slotData(TreeIdx node, std::uint32_t i,
                       const BinaryTree &tree)
{
    ensureResident(node.value(), tree);
    return winData_[node.value() * z_ + i];
}

void
SubtreeCache::clearSlot(TreeIdx node, std::uint32_t i,
                        const BinaryTree &tree)
{
    const std::uint64_t n = node.value();
    ensureResident(n, tree);
    const std::uint64_t at = n * z_ + i;
    if (winIds_[at] != kInvalidBlock) {
        ++winFree_[n];
        winData_[at] = 0;
    }
    winIds_[at] = kInvalidBlock;
    winDirty_[n] = 1;
}

bool
SubtreeCache::tryPlace(TreeIdx node, BlockId id, std::uint64_t data,
                       const BinaryTree &tree)
{
    const std::uint64_t n = node.value();
    ensureResident(n, tree);
    if (winFree_[n] == 0)
        return false;
    for (std::uint32_t i = 0; i < z_; ++i) {
        if (winIds_[n * z_ + i] == kInvalidBlock) {
            winIds_[n * z_ + i] = id;
            winData_[n * z_ + i] = data;
            --winFree_[n];
            winDirty_[n] = 1;
            return true;
        }
    }
    panic("windowed bucket free-slot count ", winFree_[n],
          " but no dummy slot");
}

void
SubtreeCache::flushWindow(BinaryTree &tree)
{
    if (!windowEnabled_)
        return;
    // Write back every *resident* bucket, dirty or not: residency
    // grows monotonically toward the full dedicated prefix, so the
    // arena write set is a function of how many drain windows ran,
    // never of which blocks moved inside them - the batched
    // write-back leaks nothing about placements (DESIGN.md Sec. 13).
    for (std::uint64_t n = 0; n < dedicated_; ++n) {
        if (winResident_[n] == 0)
            continue;
        tree.storeBucket(TreeIdx{n}, &winIds_[n * z_],
                         &winData_[n * z_], winFree_[n]);
        winDirty_[n] = 0;
        flushWrites_.fetch_add(1, std::memory_order_relaxed);
    }
}

} // namespace proram
