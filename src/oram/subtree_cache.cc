#include "oram/subtree_cache.hh"

#include <algorithm>

#include "util/logging.hh"

namespace proram
{

SubtreeCache::SubtreeCache(std::uint64_t num_buckets,
                           std::uint32_t dedicated_levels,
                           std::size_t stripes)
    : dedicated_(std::min<std::uint64_t>(
          num_buckets,
          dedicated_levels >= 63
              ? num_buckets
              : (std::uint64_t{1} << dedicated_levels) - 1)),
      stripes_(std::max<std::size_t>(1, stripes))
{
    fatal_if(num_buckets == 0, "SubtreeCache over an empty tree");
    if (dedicated_ > 0)
        nodeMutexes_ = std::make_unique<std::mutex[]>(dedicated_);
    stripeMutexes_ = std::make_unique<std::mutex[]>(stripes_);
}

std::mutex &
SubtreeCache::mutexFor(TreeIdx node)
{
    const std::uint64_t n = node.value();
    if (n < dedicated_)
        return nodeMutexes_[n];
    return stripeMutexes_[n % stripes_];
}

std::unique_lock<std::mutex>
SubtreeCache::lockNode(TreeIdx node)
{
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lk(mutexFor(node), std::try_to_lock);
    if (!lk.owns_lock()) {
        contended_.fetch_add(1, std::memory_order_relaxed);
        lk.lock();
    }
    return lk;
}

} // namespace proram
