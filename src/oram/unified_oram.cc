#include "oram/unified_oram.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace proram
{

UnifiedOram::UnifiedOram(const OramConfig &cfg)
    : cfg_(cfg), space_(cfg),
      posMap_(space_.numTotalBlocks(),
              static_cast<Leaf>(1ULL << cfg.levels())),
      oram_(makeOramScheme(cfg_, posMap_)), plb_(cfg.plbEntries)
{
    cfg_.validate();
}

void
UnifiedOram::initialize(std::uint32_t static_sb_size)
{
    panic_if(initialized_, "UnifiedOram initialized twice");
    fatal_if(static_sb_size == 0 || !isPowerOf2(static_sb_size),
             "static super block size must be a power of two");
    fatal_if(static_sb_size > space_.fanout(),
             "super block cannot span position-map blocks (Sec. 4.1)");

    const std::uint64_t total = space_.numTotalBlocks();
    const std::uint64_t num_data = space_.numDataBlocks();
    const std::uint8_t sb_log =
        static_cast<std::uint8_t>(log2Floor(static_sb_size));

    // Direct PosEntry::leaf writes are safe only here: the stash is
    // empty until placeInitial below, so there are no cached leaves to
    // keep coherent yet. Everywhere else leaves go through setLeaf().
    for (BlockId id{0}; id.value() < total; ++id) {
        PosEntry &e = posMap_.entry(id);
        if (id.value() < num_data && static_sb_size > 1) {
            // Super block members share the leaf of their base block.
            const BlockId base{alignDown(id.value(), static_sb_size)};
            e.leaf = (id == base) ? oram_->randomLeaf()
                                  : posMap_.leafOf(base);
            e.sbSizeLog = sb_log;
        } else {
            e.leaf = oram_->randomLeaf();
            e.sbSizeLog = 0;
        }
    }
    if (cfg_.lazyInit) {
        // Leaves are assigned eagerly (the position map is flat and
        // O(total) regardless) but nothing is placed: every block is
        // virtual until ensureCreated() materializes it on first
        // access, so an untouched subtree never costs arena chunks.
        created_.assign((total + 63) / 64, 0);
    } else {
        for (BlockId id{0}; id.value() < total; ++id)
            oram_->placeInitial(id, 0);
    }
    initialized_ = true;
}

bool
UnifiedOram::ensureCreated(BlockId id)
{
    if (!cfg_.lazyInit || isCreated(id))
        return false;
    // First physical appearance: payload 0 under the current mapping,
    // exactly what eager initialization would have left on this
    // block's path. The stash insert is the creation point; the
    // normal write-back machinery moves it into the tree.
    oram_->stash().insert(id, 0, posMap_.leafOf(id));
    created_[id.value() >> 6] |= 1ULL << (id.value() & 63);
    return true;
}

bool
UnifiedOram::posMapCached(BlockId id) const
{
    const BlockId pm = space_.posMapBlockOf(id);
    return pm == kInvalidBlock || plb_.contains(pm);
}

void
UnifiedOram::fetchPosMapBlock(BlockId pm_block)
{
    PRORAM_TRACE_SCOPE_ARG("posmap", "fetch", "block", pm_block);
    const Leaf leaf = posMap_.leafOf(pm_block);
    if (posMapObserver_)
        posMapObserver_(leaf);
    // Concurrent mode: claim the pos-map block across the
    // read-remap span. Without the claim, a concurrent evictPath
    // could revalidate the block against its *old* leaf after we
    // remap it below and place it on a path the new leaf does not
    // cover, breaking the path invariant. The claim pins the block
    // (whether already resident or absorbed by the readPath) until
    // the remap has landed.
    const bool claim = claimTable_ != nullptr;
    if (claim) {
        oram_->stash().claimPin(pm_block,
                               claimTable_[pm_block.value()]);
    }
    oram_->readPath(leaf);
    ensureCreated(pm_block);
    if (!oram_->stash().contains(pm_block)) {
        // In concurrent mode another request's fetch stage may have
        // cleared this block off a shared bucket into its private
        // buffer. That is harmless: the pos-map *content* lives in
        // the flat table (the simulated block carries no payload the
        // walk reads), and the remap below is safe for an in-flight
        // block because absorbPath re-reads the leaf at deposit time.
        // The access therefore completes obliviously - fresh remap,
        // same-path write-back, PLB insert - with no retry, keeping
        // the audited leaf sequence identical in distribution to the
        // serial one (DESIGN.md §11).
        panic_if(!oram_->concurrentEnabled(), "pos-map block ",
                 pm_block, " missing from path ", leaf);
    }
    posMap_.setLeaf(pm_block, oram_->randomLeaf());
    if (claim) {
        // Remap landed: the block may evict normally again (this
        // very writePath included, under its new leaf).
        oram_->stash().releaseUnpin(pm_block,
                                   claimTable_[pm_block.value()]);
    }
    oram_->writePath(leaf);
    plb_.insert(pm_block);
}

PosMapWalk
UnifiedOram::posMapWalk(BlockId id)
{
    panic_if(!initialized_, "posMapWalk before initialize()");
    PosMapWalk walk;

    // Collect the chain of pos-map blocks covering `id`, innermost
    // (direct parent) first, ending when the table is on-chip. The
    // chain scratch is reused across calls (allocation-free once
    // warmed up; its length is the recursion depth).
    std::vector<BlockId> &chain = chainScratch_;
    chain.clear();
    BlockId cursor = id;
    while (true) {
        const BlockId pm = space_.posMapBlockOf(cursor);
        if (pm == kInvalidBlock)
            break;
        chain.push_back(pm);
        cursor = pm;
    }

    // Find the deepest cached level; everything below it must be
    // fetched, outermost first (each fetch needs its parent's leaf,
    // which the previous fetch just brought on-chip).
    std::size_t first_cached = chain.size();
    for (std::size_t i = 0; i < chain.size(); ++i) {
        if (plb_.lookup(chain[i])) {
            first_cached = i;
            PRORAM_TRACE_EVENT("plb", "hit", "level", i);
            break;
        }
        PRORAM_TRACE_EVENT("plb", "miss", "level", i);
    }
    for (std::size_t i = first_cached; i-- > 0;) {
        fetchPosMapBlock(chain[i]);
        walk.fetched.push_back(chain[i]);
    }
    PRORAM_TRACE_EVENT("posmap", "walk", "depth",
                       walk.fetched.size());
    return walk;
}

} // namespace proram
