/**
 * @file
 * Vectorized eviction-level classification: the data-parallel core of
 * the writePath eviction scan. For every stash slot, the level at
 * which the block may land on the current path is
 * `levels - bit_width(leaf ^ path_leaf)` (BinaryTree::commonLevel) -
 * a pure bit operation on the contiguous leaf lane of the SoA stash,
 * so it vectorizes trivially.
 *
 * Three kernels compute the same function:
 *  - Scalar: one std::bit_width per slot (the reference).
 *  - Swar:   two 32-bit leaves per std::uint64_t load/xor
 *            (portable; little-endian hosts only).
 *  - Avx2:   eight leaves per iteration (x86-64, runtime-detected).
 *
 * All kernels are bit-identical on every input, including the garbage
 * lanes of dead stash slots (unsigned wrap-around and all): the
 * randomized equivalence test in tests/oram/evict_kernel_test.cc
 * drives every available variant against the scalar reference, and
 * the golden-stats grid re-runs under each forced kernel. Dispatch
 * picks the best available variant at first use; the
 * PRORAM_EVICT_KERNEL environment variable (scalar|swar|avx2) pins a
 * specific one for debugging and CI.
 */

#ifndef PRORAM_ORAM_EVICT_KERNEL_HH
#define PRORAM_ORAM_EVICT_KERNEL_HH

#include <cstddef>
#include <cstdint>

#include "util/types.hh"

namespace proram
{
namespace evict
{

/** Kernel variants (Auto = runtime-dispatched best available). */
enum class Kernel : std::uint8_t { Auto, Scalar, Swar, Avx2 };

/**
 * Fill out[i] = levels - bit_width(leaves[i] ^ path_leaf) for
 * i < n, using the dispatched kernel. The subtraction is mod 2^32 in
 * every variant, so callers may feed garbage lanes (dead stash slots)
 * as long as they ignore the corresponding outputs.
 */
void classifyLevels(const Leaf *leaves, std::size_t n, Leaf path_leaf,
                    std::uint32_t levels, std::uint32_t *out);

/** Same, with an explicit variant. Fatal if @p k is unavailable. */
void classifyLevelsWith(Kernel k, const Leaf *leaves, std::size_t n,
                        Leaf path_leaf, std::uint32_t levels,
                        std::uint32_t *out);

/** Can @p k run on this host/build? (Scalar and Auto: always.) */
bool kernelAvailable(Kernel k);

/** The variant classifyLevels() currently dispatches to. */
Kernel activeKernel();

/** Human-readable variant name ("scalar", "swar", "avx2"). */
const char *kernelName(Kernel k);

/**
 * Pin dispatch to @p k (Auto = re-resolve from host + environment).
 * Test/debug hook; not safe concurrently with classifyLevels() from
 * other threads.
 */
void forceKernel(Kernel k);

} // namespace evict
} // namespace proram

#endif // PRORAM_ORAM_EVICT_KERNEL_HH
