/**
 * @file
 * The on-chip stash: blocks read from the tree that have not yet been
 * evicted back. Path ORAM's invariant is that a block mapped to leaf s
 * is either on path s or in the stash.
 *
 * Storage is a dense insertion-ordered flat map: entries live in one
 * contiguous vector (the eviction scan streams over it), a FlatIndex
 * maps BlockId -> vector slot, and erase marks the slot dead instead
 * of shuffling survivors so iteration order stays insertion order by
 * construction - the determinism the replay tests rely on. Each entry
 * also caches the block's mapped leaf (kept coherent by PositionMap's
 * setLeaf hook) so writePath computes commonLevel straight off the
 * entry without a position-map lookup per block per access.
 */

#ifndef PRORAM_ORAM_STASH_HH
#define PRORAM_ORAM_STASH_HH

#include <cstdint>
#include <vector>

#include "stats/stats.hh"
#include "util/flat_index.hh"
#include "util/types.hh"

namespace proram
{

/** A stash-resident block. @c id is kInvalidBlock for dead (erased)
 *  slots awaiting compaction. @c leaf mirrors the position map's
 *  mapping for the block - see Stash::updateLeaf(). */
struct StashEntry
{
    BlockId id = kInvalidBlock;
    Leaf leaf = kInvalidLeaf;
    std::uint64_t data = 0;
};

/**
 * Dense block store with occupancy statistics. The capacity is a
 * soft threshold consulted by the controller to trigger background
 * eviction - the stash itself never refuses an insertion (hardware
 * would deadlock; the controller's job is to keep it small).
 *
 * Pointers returned by find() are invalidated by insert(), erase(),
 * and any call that may compact the entry vector.
 */
class Stash
{
  public:
    explicit Stash(std::uint32_t capacity);

    /** Add a block mapped to @p leaf. @return false if already
     *  present (the existing entry is left untouched). */
    bool insert(BlockId id, std::uint64_t data, Leaf leaf);

    bool contains(BlockId id) const;

    /** @return pointer to the entry or nullptr. Invalidated by any
     *  mutating call. */
    StashEntry *find(BlockId id);

    /** Remove a block. @return true if it was present. */
    bool erase(BlockId id);

    /**
     * Refresh the cached leaf of @p id if it is resident; no-op
     * otherwise. Called from PositionMap::setLeaf() so remaps made
     * mid-access (eviction, super-block merge/break) are visible to
     * the same access's eviction scan.
     */
    void updateLeaf(BlockId id, Leaf leaf);

    std::size_t size() const { return live_; }
    std::uint32_t capacity() const { return capacity_; }
    bool overCapacity() const { return live_ > capacity_; }

    /**
     * Visit every resident block in insertion order without
     * snapshotting (the eviction scan's hot path). @p fn is called as
     * fn(const StashEntry &); the stash must not be mutated during
     * iteration.
     */
    template <typename Fn>
    void forEachResident(Fn &&fn) const
    {
        for (const StashEntry &e : entries_) {
            if (e.id != kInvalidBlock)
                fn(e);
        }
    }

    /** Snapshot of resident ids in insertion order (invariant checks /
     *  tests only - allocates; use forEachResident() on hot paths). */
    std::vector<BlockId> residentIds() const;

    /** Record an occupancy sample (called once per ORAM access). */
    void sampleOccupancy();

    const stats::Distribution &occupancy() const { return occupancy_; }

  private:
    /** Drop dead slots, preserving the survivors' relative order. */
    void compact();

    std::uint32_t capacity_;
    /** Insertion-ordered entries; dead slots keep id == kInvalidBlock
     *  until compact() reclaims them. */
    std::vector<StashEntry> entries_;
    /** BlockId -> entries_ slot. */
    FlatIndex index_;
    std::size_t live_ = 0;
    std::size_t dead_ = 0;
    stats::Distribution occupancy_;
};

} // namespace proram

#endif // PRORAM_ORAM_STASH_HH
