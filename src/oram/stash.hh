/**
 * @file
 * The on-chip stash: blocks read from the tree that have not yet been
 * evicted back. Path ORAM's invariant is that a block mapped to leaf s
 * is either on path s or in the stash.
 *
 * Storage is a dense insertion-ordered flat map in structure-of-arrays
 * form: three parallel lanes (block ids, cached leaves, payload words)
 * share slot numbering, a FlatIndex maps BlockId -> slot, and erase
 * marks the slot dead instead of shuffling survivors so iteration
 * order stays insertion order by construction - the determinism the
 * replay tests rely on. The leaf lane is what makes the writePath
 * eviction scan vectorizable: evict::classifyLevels streams one
 * contiguous Leaf array with no per-entry struct stride. Cached
 * leaves mirror the position map (kept coherent by PositionMap's
 * setLeaf hook) so writePath never does a position-map lookup per
 * block per access.
 */

#ifndef PRORAM_ORAM_STASH_HH
#define PRORAM_ORAM_STASH_HH

#include <cstdint>
#include <vector>

#include "stats/stats.hh"
#include "util/flat_index.hh"
#include "util/types.hh"

namespace proram
{

/** Snapshot view of one resident stash block (assembled from the SoA
 *  lanes; not the storage format). */
struct StashEntry
{
    BlockId id = kInvalidBlock;
    Leaf leaf = kInvalidLeaf;
    std::uint64_t data = 0;
};

/**
 * Dense block store with occupancy statistics. The capacity is a
 * soft threshold consulted by the controller to trigger background
 * eviction - the stash itself never refuses an insertion (hardware
 * would deadlock; the controller's job is to keep it small).
 *
 * Pointers returned by findData() and the lane pointers are
 * invalidated by insert(), erase(), and any call that may compact
 * the lanes.
 */
class Stash
{
  public:
    explicit Stash(std::uint32_t capacity);

    /** Add a block mapped to @p leaf. @return false if already
     *  present (the existing entry is left untouched). */
    bool insert(BlockId id, std::uint64_t data, Leaf leaf);

    bool contains(BlockId id) const;

    /** @return pointer to the block's payload word or nullptr.
     *  Invalidated by any mutating call. */
    std::uint64_t *findData(BlockId id);

    /** Cached leaf of @p id, or kInvalidLeaf if not resident. */
    Leaf leafOf(BlockId id) const;

    /** Remove a block. @return true if it was present. */
    bool erase(BlockId id);

    /**
     * Refresh the cached leaf of @p id if it is resident; no-op
     * otherwise. Called from PositionMap::setLeaf() so remaps made
     * mid-access (eviction, super-block merge/break) are visible to
     * the same access's eviction scan.
     */
    void updateLeaf(BlockId id, Leaf leaf);

    std::size_t size() const { return live_; }
    std::uint32_t capacity() const { return capacity_; }
    bool overCapacity() const { return live_ > capacity_; }

    /** @name SoA lanes (the eviction engine's hot interface).
     *  Slots [0, slotCount()) include dead entries: a slot is live iff
     *  idLane()[slot] != kInvalidBlock, and dead slots' leaf/data
     *  lanes hold stale values callers must ignore. Pointers are
     *  invalidated by any mutating call. @{ */
    std::size_t slotCount() const { return ids_.size(); }
    const BlockId *idLane() const { return ids_.data(); }
    const Leaf *leafLane() const { return leaves_.data(); }
    const std::uint64_t *dataLane() const { return data_.data(); }
    /** Per-slot pin flags (1 = claimed by an in-flight request, must
     *  not be evicted). All zero unless a pin filter is set. */
    const std::uint8_t *pinnedLane() const { return pinned_.data(); }
    /** @} */

    /**
     * Concurrent-controller hook: @p claimed is a per-BlockId byte
     * array (indexed by id.value()); a block inserted while its byte
     * is non-zero starts pinned. nullptr (the default) disables
     * pinning entirely. The array must outlive the stash or be
     * cleared with setPinFilter(nullptr).
     */
    void setPinFilter(const std::uint8_t *claimed)
    {
        pinFilter_ = claimed;
    }

    /** Pin or unpin a resident block; no-op if absent. */
    void setPinned(BlockId id, bool pinned);

    /**
     * Visit every resident block in insertion order without
     * snapshotting. @p fn is called as fn(const StashEntry &) with a
     * view assembled from the lanes; the stash must not be mutated
     * during iteration.
     */
    template <typename Fn>
    void forEachResident(Fn &&fn) const
    {
        const std::size_t n = ids_.size();
        for (std::size_t i = 0; i < n; ++i) {
            if (ids_[i] != kInvalidBlock)
                fn(StashEntry{ids_[i], leaves_[i], data_[i]});
        }
    }

    /** Snapshot of resident ids in insertion order (invariant checks /
     *  tests only - allocates; use the lanes on hot paths). */
    std::vector<BlockId> residentIds() const;

    /** Record an occupancy sample (called once per ORAM access). */
    void sampleOccupancy();

    const stats::Distribution &occupancy() const { return occupancy_; }

  private:
    /** Drop dead slots, preserving the survivors' relative order. */
    void compact();

    std::uint32_t capacity_;
    /** Parallel SoA lanes; dead slots keep id == kInvalidBlock until
     *  compact() reclaims them. */
    std::vector<BlockId> ids_;
    std::vector<Leaf> leaves_;
    std::vector<std::uint64_t> data_;
    /** Fourth lane: 1 = pinned (skip in eviction scans). */
    std::vector<std::uint8_t> pinned_;
    const std::uint8_t *pinFilter_ = nullptr;
    /** BlockId -> slot. */
    FlatIndex index_;
    std::size_t live_ = 0;
    std::size_t dead_ = 0;
    stats::Distribution occupancy_;
};

} // namespace proram

#endif // PRORAM_ORAM_STASH_HH
