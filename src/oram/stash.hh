/**
 * @file
 * The on-chip stash: blocks read from the tree that have not yet been
 * evicted back. Path ORAM's invariant is that a block mapped to leaf s
 * is either on path s or in the stash.
 */

#ifndef PRORAM_ORAM_STASH_HH
#define PRORAM_ORAM_STASH_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stats/stats.hh"
#include "util/types.hh"

namespace proram
{

/** A stash-resident block (payload only; the leaf lives in the
 *  position map, which is the single source of truth). */
struct StashEntry
{
    std::uint64_t data = 0;
};

/**
 * Unordered block store with occupancy statistics. The capacity is a
 * soft threshold consulted by the controller to trigger background
 * eviction - the stash itself never refuses an insertion (hardware
 * would deadlock; the controller's job is to keep it small).
 */
class Stash
{
  public:
    explicit Stash(std::uint32_t capacity);

    /** Add a block. @return false if it was already present. */
    bool insert(BlockId id, std::uint64_t data);

    bool contains(BlockId id) const;

    /** @return pointer to the entry or nullptr. */
    StashEntry *find(BlockId id);

    /** Remove a block. @return true if it was present. */
    bool erase(BlockId id);

    std::size_t size() const { return entries_.size(); }
    std::uint32_t capacity() const { return capacity_; }
    bool overCapacity() const { return entries_.size() > capacity_; }

    /**
     * Visit every resident block without snapshotting (the eviction
     * scan's hot path). @p fn is called as fn(BlockId, const
     * StashEntry &); the stash must not be mutated during iteration.
     * Visit order matches residentIds(), keeping eviction decisions
     * bit-identical to the snapshot-based scan.
     */
    template <typename Fn>
    void forEachResident(Fn &&fn) const
    {
        for (const auto &[id, entry] : entries_)
            fn(id, entry);
    }

    /** Snapshot of resident ids (invariant checks / tests only -
     *  allocates; use forEachResident() on hot paths). */
    std::vector<BlockId> residentIds() const;

    /** Record an occupancy sample (called once per ORAM access). */
    void sampleOccupancy();

    const stats::Distribution &occupancy() const { return occupancy_; }

  private:
    std::uint32_t capacity_;
    std::unordered_map<BlockId, StashEntry> entries_;
    stats::Distribution occupancy_;
};

} // namespace proram

#endif // PRORAM_ORAM_STASH_HH
