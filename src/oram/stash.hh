/**
 * @file
 * The on-chip stash: blocks read from the tree that have not yet been
 * evicted back. Path ORAM's invariant is that a block mapped to leaf s
 * is either on path s or in the stash.
 *
 * Storage is one or more dense insertion-ordered flat maps ("shards")
 * in structure-of-arrays form: three parallel lanes (block ids, cached
 * leaves, payload words) share slot numbering, a FlatIndex maps
 * BlockId -> slot, and erase marks the slot dead instead of shuffling
 * survivors so iteration order stays insertion order by construction -
 * the determinism the replay tests rely on. The leaf lane is what
 * makes the writePath eviction scan vectorizable: evict::classifyLevels
 * streams one contiguous Leaf array per shard with no per-entry struct
 * stride. Cached leaves mirror the position map (kept coherent by
 * PositionMap's setLeaf hook) so writePath never does a position-map
 * lookup per block per access.
 *
 * Serial mode runs a single shard with locking compiled out of the
 * path (one branch per call), so behaviour and iteration order are
 * bit-identical to the pre-shard dense stash. enableConcurrent(N)
 * splits the store into N lock-striped shards keyed by a BlockId
 * hash: absorb/find/pin and the eviction scan then take one shard
 * mutex instead of a stash-global lock, which is what lets in-flight
 * requests of the concurrent controller overlap (DESIGN.md Sec. 13).
 * Lock ordering: shard locks are the innermost level of the
 * hierarchy (meta < node < stash-shard) - a caller may hold the
 * controller's meta lock and/or one tree node lock while acquiring a
 * shard lock, and never acquires anything under one; the rare
 * multi-shard operations (resharding, iteration helpers) run
 * single-threaded by contract and take no locks. The discipline is
 * machine-checked three ways (DESIGN.md Sec. 15): shard mutexes are
 * util::Mutex capabilities ranked lock_order::Rank::StashShard, the
 * lock factories carry PRORAM_ACQUIRE(shardMutex(s)) so clang's
 * thread-safety analysis verifies *Locked() call sites, and the
 * lock-order lint rejects out-of-order acquisition textually.
 */

#ifndef PRORAM_ORAM_STASH_HH
#define PRORAM_ORAM_STASH_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <vector>

#include "stats/stats.hh"
#include "util/annotations.hh"
#include "util/flat_index.hh"
#include "util/mutex.hh"
#include "util/types.hh"

namespace proram
{

/** Snapshot view of one resident stash block (assembled from the SoA
 *  lanes; not the storage format). */
struct StashEntry
{
    BlockId id = kInvalidBlock;
    Leaf leaf = kInvalidLeaf;
    std::uint64_t data = 0;
};

/**
 * Dense block store with occupancy statistics. The capacity is a
 * soft threshold consulted by the controller to trigger background
 * eviction - the stash itself never refuses an insertion (hardware
 * would deadlock; the controller's job is to keep it small).
 *
 * Pointers returned by findData() and the lane pointers are
 * invalidated by insert(), erase(), and any call that may compact
 * the lanes. In concurrent mode they are additionally only stable
 * while the owning shard's lock is held.
 */
class Stash
{
  public:
    explicit Stash(std::uint32_t capacity);

    /** Add a block mapped to @p leaf. @return false if already
     *  present (the existing entry is left untouched). Self-locking
     *  in concurrent mode; wakes awaitResident() waiters. */
    bool insert(BlockId id, std::uint64_t data, Leaf leaf);

    bool contains(BlockId id) const;

    /** @return pointer to the block's payload word or nullptr.
     *  Invalidated by any mutating call; serial mode / tests only -
     *  concurrent callers use findDataLocked() under the shard lock. */
    std::uint64_t *findData(BlockId id);

    /** Cached leaf of @p id, or kInvalidLeaf if not resident. */
    Leaf leafOf(BlockId id) const;

    /** Remove a block. @return true if it was present. */
    bool erase(BlockId id);

    /**
     * Refresh the cached leaf of @p id if it is resident; no-op
     * otherwise. Called from PositionMap::setLeaf() so remaps made
     * mid-access (eviction, super-block merge/break) are visible to
     * the same access's eviction scan.
     */
    void updateLeaf(BlockId id, Leaf leaf);

    /** Total live blocks (relaxed per-shard sum: size() and the
     *  controller's over-capacity probe are lock-free; shard counts
     *  are tiny and the sum is observability/threshold-only). */
    std::size_t size() const
    {
        std::size_t total = 0;
        for (std::uint32_t s = 0; s < shardCount_; ++s)
            total += shards_[s].live.load(std::memory_order_relaxed);
        return total;
    }
    std::uint32_t capacity() const { return capacity_; }
    bool overCapacity() const { return size() > capacity_; }

    /** @name Sharding (concurrent controller interface).
     *
     * enableConcurrent(N) redistributes the store over N lock-striped
     * shards (power of two, clamped to [1, kMaxShards]) and turns
     * every public mutator self-locking. Must run while no other
     * thread touches the stash. @{ */
    static constexpr std::uint32_t kMaxShards = 256;

    void enableConcurrent(std::uint32_t shards);
    bool concurrentEnabled() const { return locking_; }
    std::uint32_t shardCount() const { return shardCount_; }

    /** Owning shard of @p id (0 when single-sharded). */
    std::uint32_t shardOf(BlockId id) const
    {
        return static_cast<std::uint32_t>(
                   id.value() * 0x9E3779B97F4A7C15ULL >> 56) &
               shardMask_;
    }

    /** Capability of shard @p s, for thread-safety annotations and
     *  condition-variable plumbing. */
    util::Mutex &shardMutex(std::uint32_t s) const
    {
        return shards_[s].mtx;
    }

    /**
     * Exclusive hold on shard @p s, with contention accounting. Lock
     * ordering: shard locks are innermost - the caller may hold the
     * controller meta lock and/or one tree node lock, and must not
     * acquire anything underneath; two shard locks are never held at
     * once on the hot path.
     */
    util::ScopedLock lockShard(std::uint32_t s) const
        PRORAM_ACQUIRE(shardMutex(s));

    /**
     * lockShard() minus the per-call acquisition count: contention is
     * still recorded, but the caller batches the acquisition count
     * via noteShardAcquisitions() - one atomic add per pass instead
     * of one per lock on the eviction/absorb hot paths.
     */
    util::ScopedLock lockShardFast(std::uint32_t s) const
        PRORAM_ACQUIRE(shardMutex(s));

    /** Credit @p n shard-lock acquisitions taken via lockShardFast(). */
    void noteShardAcquisitions(std::uint64_t n) const
    {
        shardAcquisitions_.fetch_add(n, std::memory_order_relaxed);
    }

    /**
     * Insert @p n blocks grouped by owning shard: one shard lock per
     * distinct shard instead of one per block (the absorb-stage batch
     * path). Panics on a duplicate - callers feed blocks extracted
     * from tree buckets, which can never already be stash-resident.
     * Wakes awaitResident() waiters like insert().
     */
    void insertBatch(const BlockId *ids, const std::uint64_t *data,
                     const Leaf *leaves, std::size_t n);

    /** @name Shard-locked primitives (caller holds lockShard(s) and
     *  s == shardOf(id); enforced by clang -Wthread-safety). @{ */
    std::uint64_t *findDataLocked(std::uint32_t s, BlockId id)
        PRORAM_REQUIRES(shardMutex(s));
    bool eraseLocked(std::uint32_t s, BlockId id)
        PRORAM_REQUIRES(shardMutex(s));
    void setPinnedLocked(std::uint32_t s, BlockId id, bool pinned)
        PRORAM_REQUIRES(shardMutex(s));
    /** Combined resident lookup: fills any non-null out-params.
     *  @return false (outputs untouched) if @p id is absent. */
    bool lookupLocked(std::uint32_t s, BlockId id, Leaf *leaf,
                      std::uint64_t *data, bool *pinned) const
        PRORAM_REQUIRES(shardMutex(s));
    /** @} */

    /**
     * Claim protocol (concurrent mode): atomically - with respect to
     * insert()'s pin filter - bump @p count and pin @p id if it is
     * resident. A block claimed before it arrives starts pinned at
     * insert; a block resident at claim time is pinned here. Either
     * way, "claimed implies pinned while resident" holds.
     */
    void claimPin(BlockId id, std::atomic<std::uint8_t> &count);
    /** Drop one claim from @p count; unpin @p id when it reaches 0. */
    void releaseUnpin(BlockId id, std::atomic<std::uint8_t> &count);

    /** Block until @p id is stash-resident (concurrent mode; the
     *  caller must hold no stash/meta locks). Returns immediately if
     *  already resident. */
    void awaitResident(BlockId id) const;

    /** Shard-lock contention counters (relaxed; observability). */
    std::uint64_t shardLockAcquisitions() const
    {
        return shardAcquisitions_.load(std::memory_order_relaxed);
    }
    std::uint64_t shardLockContended() const
    {
        return shardContended_.load(std::memory_order_relaxed);
    }
    /** @} */

    /** @name SoA lanes (the eviction engine's hot interface).
     *  Per shard: slots [0, slotCount(s)) include dead entries: a slot
     *  is live iff idLane(s)[slot] != kInvalidBlock, and dead slots'
     *  leaf/data lanes hold stale values callers must ignore. Pointers
     *  are invalidated by any mutating call; concurrent callers hold
     *  the shard lock. The no-argument forms view shard 0 - the whole
     *  stash in serial mode. @{ */
    std::size_t slotCount(std::uint32_t s) const
    {
        return shards_[s].ids.size();
    }
    /** Live blocks in shard @p s (relaxed read; lets eviction scans
     *  skip empty shards without touching their lock). */
    std::size_t liveCount(std::uint32_t s) const
    {
        return shards_[s].live.load(std::memory_order_relaxed);
    }
    const BlockId *idLane(std::uint32_t s) const
    {
        return shards_[s].ids.data();
    }
    const Leaf *leafLane(std::uint32_t s) const
    {
        return shards_[s].leaves.data();
    }
    const std::uint64_t *dataLane(std::uint32_t s) const
    {
        return shards_[s].data.data();
    }
    /** Per-slot pin flags (1 = claimed by an in-flight request, must
     *  not be evicted). All zero unless a pin filter is set. */
    const std::uint8_t *pinnedLane(std::uint32_t s) const
    {
        return shards_[s].pinned.data();
    }
    std::size_t slotCount() const { return slotCount(0); }
    const BlockId *idLane() const { return idLane(0); }
    const Leaf *leafLane() const { return leafLane(0); }
    const std::uint64_t *dataLane() const { return dataLane(0); }
    const std::uint8_t *pinnedLane() const { return pinnedLane(0); }
    /** @} */

    /**
     * Concurrent-controller hook: @p claimed is a per-BlockId atomic
     * claim-count array (indexed by id.value()); a block inserted
     * while its count is non-zero starts pinned. nullptr (the
     * default) disables pinning entirely. The array must outlive the
     * stash or be cleared with setPinFilter(nullptr).
     */
    void setPinFilter(const std::atomic<std::uint8_t> *claimed)
    {
        pinFilter_ = claimed;
    }

    /** Pin or unpin a resident block; no-op if absent. */
    void setPinned(BlockId id, bool pinned);

    /**
     * Visit every resident block without snapshotting, shard by shard
     * in insertion order (plain insertion order in serial mode).
     * @p fn is called as fn(const StashEntry &) with a view assembled
     * from the lanes; the stash must not be mutated during iteration,
     * and no other thread may be active (drained / serial contract).
     */
    template <typename Fn>
    void forEachResident(Fn &&fn) const
    {
        for (std::uint32_t s = 0; s < shardCount_; ++s) {
            const Shard &sh = shards_[s];
            const std::size_t n = sh.ids.size();
            for (std::size_t i = 0; i < n; ++i) {
                if (sh.ids[i] != kInvalidBlock)
                    fn(StashEntry{sh.ids[i], sh.leaves[i], sh.data[i]});
            }
        }
    }

    /** Snapshot of resident ids in iteration order (invariant checks /
     *  tests only - allocates; use the lanes on hot paths). */
    std::vector<BlockId> residentIds() const;

    /** Record an occupancy sample (called once per eviction pass;
     *  internally serialized in concurrent mode). */
    void sampleOccupancy();

    const stats::Distribution &occupancy() const { return occupancy_; }

  private:
    /** One lock-striped slice of the store: the pre-shard dense stash
     *  layout plus its mutex and residency-waiter bookkeeping. */
    struct Shard
    {
        /** Parallel SoA lanes; dead slots keep id == kInvalidBlock
         *  until compact() reclaims them. */
        std::vector<BlockId> ids;
        std::vector<Leaf> leaves;
        std::vector<std::uint64_t> data;
        /** Fourth lane: 1 = pinned (skip in eviction scans). */
        std::vector<std::uint8_t> pinned;
        /** BlockId -> slot. */
        FlatIndex index;
        /** Mutated under mtx; atomic so liveCount() can skip empty
         *  shards without taking the lock (eviction-scan fast path). */
        std::atomic<std::size_t> live{0};
        std::size_t dead = 0;
        /** Innermost hierarchy level below meta and node locks;
         *  rank-checked in Debug builds (util/lock_order.hh). */
        mutable util::Mutex mtx{lock_order::Rank::StashShard};
        /** Signalled on insert while waiters > 0 (awaitResident);
         *  waits on mtx.native(). */
        mutable std::condition_variable cv;
        mutable std::uint32_t waiters = 0;
    };

    /** Allocate @p n shards, each pre-reserved for the full soft
     *  capacity (shard skew can concentrate load; lanes are tiny). */
    std::unique_ptr<Shard[]> makeShards(std::uint32_t n) const;

    /** Serial/concurrent dual-mode hold: a real shard lock in
     *  concurrent mode, an empty guard in serial mode. Annotated as
     *  an unconditional acquire - serial mode is single-threaded, so
     *  statically claiming the capability is sound and lets the
     *  analysis check the shared *Locked() call sites downstream. */
    util::ScopedLock maybeLock(std::uint32_t s) const
        PRORAM_ACQUIRE(shardMutex(s))
        // Dual-mode body (conditionally empty guard) is beyond the
        // analysis; the declaration's ACQUIRE is the call-site
        // contract.
        PRORAM_NO_THREAD_SAFETY_ANALYSIS
    {
        return locking_ ? lockShard(s) : util::ScopedLock();
    }

    bool insertInto(Shard &sh, BlockId id, std::uint64_t data,
                    Leaf leaf);
    /** Drop dead slots, preserving the survivors' relative order. */
    void compact(Shard &sh);

    std::uint32_t capacity_;
    std::uint32_t shardCount_ = 1;
    std::uint32_t shardMask_ = 0;
    bool locking_ = false;
    std::unique_ptr<Shard[]> shards_;
    const std::atomic<std::uint8_t> *pinFilter_ = nullptr;
    mutable std::atomic<std::uint64_t> shardAcquisitions_{0};
    mutable std::atomic<std::uint64_t> shardContended_{0};
    /** Guards occupancy_ in concurrent mode (Distribution is not
     *  thread-safe; serial mode and the drained-by-contract
     *  occupancy() reporter read it lock-free, so the guard is
     *  documented rather than GUARDED_BY-annotated). Leaf rank:
     *  never acquires anything beneath it. */
    mutable util::Mutex statsLock_{lock_order::Rank::Leaf};
    stats::Distribution occupancy_;
};

} // namespace proram

#endif // PRORAM_ORAM_STASH_HH
