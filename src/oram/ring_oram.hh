/**
 * @file
 * The functional Ring ORAM engine (Ren et al., USENIX Sec'15) behind
 * the OramScheme interface. Reads touch one block per bucket (a real
 * block when the bucket holds one of interest, a dummy otherwise);
 * writes are decoupled from reads and happen on a deterministic
 * reverse-lexicographic schedule, one full-path eviction every A
 * accesses; a bucket that has served S reads since it was last
 * rewritten is early-reshuffled.
 *
 * Modeling granularity: the adversary in this simulator observes
 * *bucket* touches, not intra-bucket slot indices, so the per-bucket
 * valid/dummy permutation of the hardware design collapses to a
 * 1-byte read counter per bucket - an early reshuffle re-randomizes
 * the (unmodeled) permutation and resets the counter, and a scheduled
 * eviction rewrites the path's buckets wholesale (resetting their
 * counters the way the real rewrite refreshes their dummies). The
 * block-of-interest selection per bucket is client-internal metadata
 * in the hardware design (the encrypted bucket header), never
 * revealed by the access pattern. See DESIGN.md Sec. 14.
 *
 * Concrete OramScheme; callers outside src/oram/ use oram/scheme.hh.
 */

#ifndef PRORAM_ORAM_RING_ORAM_HH
#define PRORAM_ORAM_RING_ORAM_HH

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "oram/scheme.hh"
#include "util/mutex.hh"

namespace proram
{

class RingOram final : public OramScheme
{
  public:
    RingOram(const OramConfig &cfg, PositionMap &pos_map);

    const char *name() const override { return "ring"; }

    /**
     * Bring every block currently mapped to @p leaf (the interest
     * set: the demanded super block's members, or a pos-map block)
     * into the stash, one modeled block read per bucket. Buckets
     * whose read budget S is exhausted are early-reshuffled.
     */
    void readPath(Leaf leaf) override;

    /**
     * Count one access; every A-th call runs the scheduled eviction
     * on the next reverse-lexicographic path (extract + greedy
     * write-back + counter reset). @p leaf (the just-read path) is
     * deliberately unused for tree writes - Ring ORAM's write
     * schedule is independent of the demand sequence.
     */
    void writePath(Leaf leaf) override;

    /**
     * Stage: path fetch (concurrent). Copy claimed blocks on path
     * @p leaf into @p out under per-node locks and clear their tree
     * slots; unclaimed blocks stay in place (they cannot be remapped
     * while unclaimed - same argument as the Path ORAM skim). Every
     * kResortPeriod-th fetch extracts in full so stale blocks keep
     * re-sorting through the stash. Bucket read counters and early
     * reshuffles are accounted under the same node holds.
     */
    std::size_t fetchPath(Leaf leaf, FetchedBlock *out) override;

    /**
     * Stage: evict classify (serial). Identical greedy counting-sort
     * classification as Path ORAM, against the *eviction* path
     * @p leaf. Serial mode only - member scratch is unsynchronized.
     */
    void evictClassify(Leaf leaf) override;

    /** Stage: write-back fill of @p leaf (serial; see evictClassify). */
    void evictWriteBack(Leaf leaf) override;

    /**
     * Stage: concurrent eviction hook. Counts one access; every A-th
     * call runs the sharded eviction pass over the next scheduled
     * reverse-lexicographic path (per-shard classify, then bucket
     * fill under one node hold per level with per-candidate shard
     * revalidation - the Path ORAM discipline, DESIGN.md Sec. 13 -
     * plus the read-counter reset under the same node holds).
     * @p leaf is unused; the schedule picks the path.
     */
    void evictPath(Leaf leaf) override;

    /**
     * Background eviction: force the next scheduled eviction pass
     * immediately (off-schedule "piggyback" eviction). Guaranteed
     * eviction progress - stash occupancy cannot increase.
     * @return the reverse-lexicographic leaf that was written.
     */
    Leaf dummyAccess() override;

    /** The scheduled eviction classifies from the stash shards and
     *  locks nodes itself - no absorb stage, no meta lock. The
     *  controller's background-eviction loop calls dummyAccess()
     *  directly instead of round-tripping a random path that the
     *  claim-gated fetch would extract nothing from. */
    bool dummyAccessConcurrentSafe() const override { return true; }

    SchemeCounters schemeCounters() const override;

    /** @name Ring parameters and schedule introspection (tests). @{ */
    std::uint32_t ringS() const { return s_; }
    std::uint32_t ringA() const { return a_; }
    /** Reads served by @p node 's bucket since its last rewrite. */
    std::uint32_t bucketReadCount(TreeIdx node) const
    {
        return readCount_[node.value()];
    }
    /** Scheduled evictions run so far (the schedule position g). */
    std::uint64_t evictionsRun() const
    {
        return evictionSeq_.load(std::memory_order_relaxed);
    }
    /** The leaf the @p g -th scheduled eviction writes. */
    Leaf evictionLeafAt(std::uint64_t g) const;
    /** @} */

  private:
    /** Serial scheduled eviction: extract the g-th reverse-lex path
     *  into the stash (resetting its read counters), then greedy
     *  write-back. @return the path written. */
    Leaf runScheduledEviction();

    /** Concurrent twin: sharded eviction pass over the g-th path with
     *  counter resets under the node holds (no prior extraction - the
     *  fetch-stage resort keeps tree blocks cycling).
     *  @return the path written. */
    Leaf runScheduledEvictionConcurrent();

    /** Draw the next schedule position and notify the auditor hook
     *  (one atomic step, so the observed sequence is in order). */
    Leaf nextEvictionLeaf();

    /** Account one modeled bucket read; early-reshuffle on budget
     *  exhaustion. Caller holds the node lock in concurrent mode. */
    void noteBucketRead(TreeIdx node, std::uint32_t extracted);

    /** Dummy-read budget per bucket (early-reshuffle threshold). */
    std::uint32_t s_;
    /** Eviction rate: one scheduled eviction per A accesses. */
    std::uint32_t a_;
    /** Reads served per bucket since its last rewrite (1 B/bucket;
     *  guarded by the bucket's node lock in concurrent mode). */
    std::vector<std::uint8_t> readCount_;
    /** Accesses since construction (schedules evictions mod A). */
    std::atomic<std::uint64_t> accessSeq_{0};
    /** Scheduled evictions run (the reverse-lex counter g). */
    std::atomic<std::uint64_t> evictionSeq_{0};
    /** Orders schedule draws + observer calls in concurrent mode so
     *  the audited eviction sequence is exactly g = 0, 1, 2, ...
     *  Leaf-level lock: never held across bucket or stash work
     *  (lock_order::Rank::Leaf; rank-checked in Debug builds). */
    util::Mutex scheduleMutex_{lock_order::Rank::Leaf};
    /** Fetch ordinal for the full-extract resort cadence (concurrent
     *  mode), Weyl-hashed like Path ORAM's. */
    static constexpr std::uint64_t kResortPeriod = 4;
    std::atomic<std::uint64_t> fetchSeq_{0};

    // Traffic counters (schemeCounters()).
    stats::AtomicCounter bucketReads_;
    stats::AtomicCounter dummyReads_;
    stats::AtomicCounter earlyReshuffles_;

    // Serial eviction scratch, pre-sized at construction (the same
    // counting-sort layout as Path ORAM's).
    struct Evictable
    {
        BlockId id;
        std::uint64_t data;
    };
    void reserveScratch(std::size_t slots);
    std::vector<std::uint32_t> levelScratch_;
    std::vector<std::uint32_t> histScratch_;
    std::vector<std::uint32_t> levelStartScratch_;
    std::vector<std::uint32_t> levelCursorScratch_;
    std::vector<Evictable> sortedScratch_;
    std::vector<Evictable> poolScratch_;
};

} // namespace proram

#endif // PRORAM_ORAM_RING_ORAM_HH
