#include "oram/integrity.hh"

#include <sstream>
#include <vector>

#include "util/bits.hh"

namespace proram
{

namespace
{

std::string
str(const char *what, BlockId id)
{
    std::ostringstream os;
    os << what << " (block " << id << ")";
    return os.str();
}

} // namespace

IntegrityReport
checkIntegrity(const UnifiedOram &oram)
{
    IntegrityReport report;
    const BinaryTree &tree = oram.engine().tree();
    const PositionMap &pos = oram.posMap();
    const BlockSpace &space = oram.space();
    const std::uint64_t total = space.numTotalBlocks();

    // Pass 1: locate every tree copy; detect duplicates and misplaced
    // blocks. A block at bucket `node`, level `l` must satisfy
    // node == nodeOnPath(leaf(id), l). The copy counts live in a
    // dense per-id table (ids are contiguous in [0, total)); pass 3
    // walks the whole range anyway.
    std::vector<int> copies(total, 0);
    for (TreeIdx node{0}; node.value() < tree.numBuckets(); ++node) {
        // Recover the level of this heap node.
        const Level level{log2Floor(node.value() + 1)};
        for (std::uint32_t i = 0; i < tree.z(); ++i) {
            const BlockId id = tree.slotId(node, i);
            if (id == kInvalidBlock)
                continue;
            if (id.value() >= total) {
                report.fail(str("tree slot holds out-of-range id", id));
                continue;
            }
            ++copies[id.value()];
            const Leaf leaf = pos.leafOf(id);
            if (leaf == kInvalidLeaf || leaf.value() >= tree.numLeaves()) {
                report.fail(str("tree block has invalid leaf", id));
                continue;
            }
            if (tree.nodeOnPath(leaf, level) != node)
                report.fail(str("block off its mapped path", id));
        }
    }

    // Pass 2: stash copies.
    for (BlockId id : oram.engine().stash().residentIds()) {
        if (id.value() >= total) {
            report.fail(str("stash holds out-of-range id", id));
            continue;
        }
        ++copies[id.value()];
    }

    // Pass 3: exactly-once existence. Under lazy initialization a
    // block that was never created has no physical copy by design
    // (it is virtually resident with payload 0); a *created* block
    // must still exist exactly once, and an uncreated block with a
    // copy means the created bitset lies.
    for (BlockId id{0}; id.value() < total; ++id) {
        const int n = copies[id.value()];
        if (n == 0) {
            if (oram.isCreated(id))
                report.fail(str("block lost (no copy anywhere)", id));
        } else if (!oram.isCreated(id)) {
            report.fail(str("uncreated block has a tree/stash copy",
                            id));
        } else if (n > 1) {
            report.fail(str("block duplicated", id));
        }
    }

    // Pass 4: super-block geometry and co-location.
    for (BlockId id{0}; id.value() < total; ++id) {
        const PosEntry &e = pos.entry(id);
        const std::uint32_t size = e.sbSize();
        if (!space.isData(id)) {
            if (size != 1)
                report.fail(str("pos-map block inside a super block", id));
            continue;
        }
        if (size == 1)
            continue;
        const std::uint32_t stride_log = e.sbStrideLog;
        if ((static_cast<std::uint64_t>(size) << stride_log) >
            space.fanout()) {
            report.fail(str("super block exceeds pos-map fanout", id));
            continue;
        }
        // Member set: blocks agreeing with id outside the bit field
        // [stride_log, stride_log + log2(size)) - contiguous when
        // stride_log is 0, strided otherwise (Sec. 6.2 extension).
        const std::uint64_t field =
            (static_cast<std::uint64_t>(size) - 1) << stride_log;
        const BlockId base{id.value() & ~field};
        for (std::uint32_t i = 0; i < size; ++i) {
            const BlockId m =
                base + (static_cast<std::uint64_t>(i) << stride_log);
            if (m.value() >= space.numDataBlocks()) {
                report.fail(str("super block spills past data space", id));
                break;
            }
            const PosEntry &me = pos.entry(m);
            if (me.sbSizeLog != e.sbSizeLog ||
                me.sbStrideLog != e.sbStrideLog) {
                report.fail(str("super block geometry mismatch", m));
            } else if (me.leaf != e.leaf) {
                report.fail(str("super block members on different leaves",
                                m));
            }
        }
    }

    return report;
}

} // namespace proram
