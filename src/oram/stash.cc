#include "oram/stash.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"
#include "util/annotations.hh"

namespace proram
{

Stash::Stash(std::uint32_t capacity) : capacity_(capacity)
{
    shards_ = makeShards(1);
}

std::unique_ptr<Stash::Shard[]>
Stash::makeShards(std::uint32_t n) const
{
    auto shards = std::make_unique<Shard[]>(n);
    const std::size_t reserve =
        static_cast<std::size_t>(capacity_) * 2;
    for (std::uint32_t s = 0; s < n; ++s) {
        Shard &sh = shards[s];
        sh.ids.reserve(reserve);
        sh.leaves.reserve(reserve);
        sh.data.reserve(reserve);
        sh.pinned.reserve(reserve);
        sh.index = FlatIndex(reserve);
    }
    return shards;
}

void
Stash::enableConcurrent(std::uint32_t shards)
{
    std::uint32_t n = shards == 0 ? 1 : std::min(shards, kMaxShards);
    n = std::uint32_t{1} << log2Floor(n); // round down to a power of 2
    std::unique_ptr<Shard[]> fresh = makeShards(n);
    // Redistribute in iteration order so per-shard insertion order is
    // deterministic given the pre-shard contents (normally empty: the
    // controller flips concurrent mode before any traffic).
    const std::uint32_t old_count = shardCount_;
    shardCount_ = n;
    shardMask_ = n - 1;
    for (std::uint32_t s = 0; s < old_count; ++s) {
        const Shard &old_sh = shards_[s];
        for (std::size_t i = 0; i < old_sh.ids.size(); ++i) {
            if (old_sh.ids[i] == kInvalidBlock)
                continue;
            Shard &dst = fresh[shardOf(old_sh.ids[i])];
            const bool ok = insertInto(dst, old_sh.ids[i],
                                       old_sh.data[i],
                                       old_sh.leaves[i]);
            panic_if(!ok, "duplicate stash block ", old_sh.ids[i],
                     " while resharding");
            dst.pinned.back() = old_sh.pinned[i];
        }
    }
    shards_ = std::move(fresh);
    locking_ = true;
}

// Lock factories: the header's PRORAM_ACQUIRE(shardMutex(s)) is the
// contract clang checks at call sites; the bodies hand a scoped
// capability out by value, which the analysis cannot model, hence the
// documented escapes.
util::ScopedLock
Stash::lockShard(std::uint32_t s) const PRORAM_NO_THREAD_SAFETY_ANALYSIS
{
    // Per-call acquisition count is relaxed: observability counter,
    // never synchronizes anything.
    shardAcquisitions_.fetch_add(1, std::memory_order_relaxed);
    return lockShardFast(s);
}

PRORAM_HOT util::ScopedLock
Stash::lockShardFast(std::uint32_t s) const
    PRORAM_NO_THREAD_SAFETY_ANALYSIS
{
    return util::ScopedLock(shards_[s].mtx, shardContended_);
}

PRORAM_HOT bool
Stash::insertInto(Shard &sh, BlockId id, std::uint64_t data, Leaf leaf)
{
    if (sh.index.get(id.value()) != FlatIndex::kNone)
        return false;
    sh.index.put(id.value(), static_cast<std::uint32_t>(sh.ids.size()));
    // PRORAM_LINT_ALLOW(hot-alloc): lanes reserve 2x capacity up
    // front; these appends only reallocate past double overflow.
    sh.ids.push_back(id);
    // PRORAM_LINT_ALLOW(hot-alloc): see above
    sh.leaves.push_back(leaf);
    // PRORAM_LINT_ALLOW(hot-alloc): see above
    sh.data.push_back(data);
    // PRORAM_LINT_ALLOW(hot-alloc): see above
    sh.pinned.push_back(
        pinFilter_ != nullptr &&
                pinFilter_[id.value()].load(
                    std::memory_order_relaxed) != 0
            ? 1
            : 0);
    // live is mutex-serialized (shard lock held, or serial mode) -
    // only size() reads it cross-thread, so a relaxed load+store
    // pair suffices and keeps the locked RMW off the serial path.
    sh.live.store(sh.live.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    return true;
}

PRORAM_HOT bool
Stash::insert(BlockId id, std::uint64_t data, Leaf leaf)
{
    const std::uint32_t s = shardOf(id);
    Shard &sh = shards_[s];
    const util::ScopedLock lk = maybeLock(s);
    const bool fresh = insertInto(sh, id, data, leaf);
    if (fresh && sh.waiters != 0)
        sh.cv.notify_all();
    return fresh;
}

// Dual serial/concurrent body (conditionally empty guard per chunk)
// is beyond the analysis; self-locking entry point, caller holds no
// shard locks.
PRORAM_HOT void
Stash::insertBatch(const BlockId *ids, const std::uint64_t *data,
                   const Leaf *leaves, std::size_t n)
    PRORAM_NO_THREAD_SAFETY_ANALYSIS
{
    // Group-by-shard without sorting: claim each unvisited block's
    // shard, then sweep the remainder of its 64-block chunk for
    // same-shard siblings under the one hold. Quadratic in the chunk,
    // but a chunk is at most one path's blocks and the inner compare
    // is a masked hash - cheaper than n lock round-trips. A set bit
    // in `done` marks an inserted block.
    std::uint64_t locks = 0;
    for (std::size_t base = 0; base < n; base += 64) {
        const std::size_t lim = std::min<std::size_t>(n - base, 64);
        std::uint64_t done = 0;
        for (std::size_t i = 0; i < lim; ++i) {
            if ((done >> i) & 1)
                continue;
            const std::uint32_t s = shardOf(ids[base + i]);
            Shard &sh = shards_[s];
            const util::ScopedLock lk =
                locking_ ? lockShardFast(s) : util::ScopedLock();
            ++locks;
            bool fresh_any = false;
            for (std::size_t j = i; j < lim; ++j) {
                if (((done >> j) & 1) || shardOf(ids[base + j]) != s)
                    continue;
                const bool fresh = insertInto(sh, ids[base + j],
                                              data[base + j],
                                              leaves[base + j]);
                panic_if(!fresh, "block ", ids[base + j],
                         " duplicated between tree and stash");
                fresh_any = true;
                done |= std::uint64_t{1} << j;
            }
            if (fresh_any && sh.waiters != 0)
                sh.cv.notify_all();
        }
    }
    if (locking_ && locks != 0)
        noteShardAcquisitions(locks);
}

PRORAM_HOT void
Stash::setPinned(BlockId id, bool pinned)
{
    const std::uint32_t s = shardOf(id);
    const util::ScopedLock lk = maybeLock(s);
    setPinnedLocked(s, id, pinned);
}

PRORAM_HOT void
Stash::setPinnedLocked(std::uint32_t s, BlockId id, bool pinned)
{
    Shard &sh = shards_[s];
    const std::uint32_t slot = sh.index.get(id.value());
    if (slot != FlatIndex::kNone)
        sh.pinned[slot] = pinned ? 1 : 0;
}

void
Stash::claimPin(BlockId id, std::atomic<std::uint8_t> &count)
{
    // The shard lock makes the count bump atomic with respect to
    // insert()'s pin-filter read: an insert either sees the new count
    // (starts pinned) or finishes first (pinned here).
    const std::uint32_t s = shardOf(id);
    const util::ScopedLock lk = maybeLock(s);
    count.fetch_add(1, std::memory_order_relaxed);
    setPinnedLocked(s, id, true);
}

void
Stash::releaseUnpin(BlockId id, std::atomic<std::uint8_t> &count)
{
    const std::uint32_t s = shardOf(id);
    const util::ScopedLock lk = maybeLock(s);
    if (count.fetch_sub(1, std::memory_order_relaxed) == 1)
        setPinnedLocked(s, id, false);
}

// Condition-variable wait needs the native std::mutex handle and
// releases/reacquires it invisibly - the one lock shape the analysis
// cannot model. The rank tracker still sees the hold via ScopedRank.
void
Stash::awaitResident(BlockId id) const PRORAM_NO_THREAD_SAFETY_ANALYSIS
{
    const std::uint32_t s = shardOf(id);
    const Shard &sh = shards_[s];
    shardAcquisitions_.fetch_add(1, std::memory_order_relaxed);
    const lock_order::ScopedRank rank(lock_order::Rank::StashShard);
    std::unique_lock<std::mutex> lk(sh.mtx.native());
    if (sh.index.get(id.value()) != FlatIndex::kNone)
        return;
    ++sh.waiters;
    sh.cv.wait(lk, [&] {
        return sh.index.get(id.value()) != FlatIndex::kNone;
    });
    --sh.waiters;
}

PRORAM_HOT bool
Stash::contains(BlockId id) const
{
    const std::uint32_t s = shardOf(id);
    const util::ScopedLock lk = maybeLock(s);
    return shards_[s].index.get(id.value()) != FlatIndex::kNone;
}

PRORAM_HOT std::uint64_t *
Stash::findData(BlockId id)
{
    const std::uint32_t s = shardOf(id);
    const util::ScopedLock lk = maybeLock(s);
    return findDataLocked(s, id);
}

PRORAM_HOT std::uint64_t *
Stash::findDataLocked(std::uint32_t s, BlockId id)
{
    Shard &sh = shards_[s];
    const std::uint32_t slot = sh.index.get(id.value());
    return slot == FlatIndex::kNone ? nullptr : &sh.data[slot];
}

PRORAM_HOT bool
Stash::lookupLocked(std::uint32_t s, BlockId id, Leaf *leaf,
                    std::uint64_t *data, bool *pinned) const
{
    const Shard &sh = shards_[s];
    const std::uint32_t slot = sh.index.get(id.value());
    if (slot == FlatIndex::kNone)
        return false;
    if (leaf != nullptr)
        *leaf = sh.leaves[slot];
    if (data != nullptr)
        *data = sh.data[slot];
    if (pinned != nullptr)
        *pinned = sh.pinned[slot] != 0;
    return true;
}

PRORAM_HOT Leaf
Stash::leafOf(BlockId id) const
{
    const std::uint32_t s = shardOf(id);
    const util::ScopedLock lk = maybeLock(s);
    const Shard &sh = shards_[s];
    const std::uint32_t slot = sh.index.get(id.value());
    return slot == FlatIndex::kNone ? kInvalidLeaf : sh.leaves[slot];
}

PRORAM_HOT bool
Stash::erase(BlockId id)
{
    const std::uint32_t s = shardOf(id);
    const util::ScopedLock lk = maybeLock(s);
    return eraseLocked(s, id);
}

PRORAM_HOT bool
Stash::eraseLocked(std::uint32_t s, BlockId id)
{
    Shard &sh = shards_[s];
    const std::uint32_t slot = sh.index.get(id.value());
    if (slot == FlatIndex::kNone)
        return false;
    // Mark dead in place: shuffling survivors would perturb the
    // insertion order the eviction scan (and replay determinism)
    // depends on. Compaction below preserves relative order. The
    // leaf/data lanes keep their stale words - lane consumers skip
    // dead slots by id.
    sh.ids[slot] = kInvalidBlock;
    sh.index.erase(id.value());
    // Mutex-serialized like the insert side: see insertInto().
    sh.live.store(sh.live.load(std::memory_order_relaxed) - 1,
                  std::memory_order_relaxed);
    ++sh.dead;
    if (sh.dead >= 16 &&
        sh.dead >= sh.live.load(std::memory_order_relaxed))
        compact(sh);
    return true;
}

PRORAM_HOT void
Stash::updateLeaf(BlockId id, Leaf leaf)
{
    const std::uint32_t s = shardOf(id);
    const util::ScopedLock lk = maybeLock(s);
    Shard &sh = shards_[s];
    const std::uint32_t slot = sh.index.get(id.value());
    if (slot != FlatIndex::kNone)
        sh.leaves[slot] = leaf;
}

void
Stash::compact(Shard &sh)
{
    std::size_t out = 0;
    for (std::size_t in = 0; in < sh.ids.size(); ++in) {
        if (sh.ids[in] == kInvalidBlock)
            continue;
        if (out != in) {
            sh.ids[out] = sh.ids[in];
            sh.leaves[out] = sh.leaves[in];
            sh.data[out] = sh.data[in];
            sh.pinned[out] = sh.pinned[in];
        }
        sh.index.put(sh.ids[out].value(),
                     static_cast<std::uint32_t>(out));
        ++out;
    }
    sh.ids.resize(out);
    sh.leaves.resize(out);
    sh.data.resize(out);
    sh.pinned.resize(out);
    sh.dead = 0;
}

std::vector<BlockId>
Stash::residentIds() const
{
    std::vector<BlockId> out;
    out.reserve(size());
    for (std::uint32_t s = 0; s < shardCount_; ++s) {
        for (BlockId id : shards_[s].ids) {
            if (id != kInvalidBlock)
                out.push_back(id);
        }
    }
    return out;
}

void
Stash::sampleOccupancy()
{
    if (locking_) {
        const util::ScopedLock g(statsLock_);
        occupancy_.sample(static_cast<double>(size()));
        return;
    }
    occupancy_.sample(static_cast<double>(size()));
}

} // namespace proram
