#include "oram/stash.hh"

namespace proram
{

Stash::Stash(std::uint32_t capacity)
    : capacity_(capacity), index_(capacity * 2)
{
    entries_.reserve(capacity * 2);
}

bool
Stash::insert(BlockId id, std::uint64_t data, Leaf leaf)
{
    if (index_.get(id) != FlatIndex::kNone)
        return false;
    index_.put(id, static_cast<std::uint32_t>(entries_.size()));
    entries_.push_back(StashEntry{id, leaf, data});
    ++live_;
    return true;
}

bool
Stash::contains(BlockId id) const
{
    return index_.get(id) != FlatIndex::kNone;
}

StashEntry *
Stash::find(BlockId id)
{
    const std::uint32_t slot = index_.get(id);
    return slot == FlatIndex::kNone ? nullptr : &entries_[slot];
}

bool
Stash::erase(BlockId id)
{
    const std::uint32_t slot = index_.get(id);
    if (slot == FlatIndex::kNone)
        return false;
    // Mark dead in place: shuffling survivors would perturb the
    // insertion order the eviction scan (and replay determinism)
    // depends on. Compaction below preserves relative order.
    entries_[slot].id = kInvalidBlock;
    index_.erase(id);
    --live_;
    ++dead_;
    if (dead_ >= 16 && dead_ >= live_)
        compact();
    return true;
}

void
Stash::updateLeaf(BlockId id, Leaf leaf)
{
    const std::uint32_t slot = index_.get(id);
    if (slot != FlatIndex::kNone)
        entries_[slot].leaf = leaf;
}

void
Stash::compact()
{
    std::size_t out = 0;
    for (std::size_t in = 0; in < entries_.size(); ++in) {
        if (entries_[in].id == kInvalidBlock)
            continue;
        if (out != in)
            entries_[out] = entries_[in];
        index_.put(entries_[out].id, static_cast<std::uint32_t>(out));
        ++out;
    }
    entries_.resize(out);
    dead_ = 0;
}

std::vector<BlockId>
Stash::residentIds() const
{
    std::vector<BlockId> ids;
    ids.reserve(live_);
    for (const StashEntry &e : entries_) {
        if (e.id != kInvalidBlock)
            ids.push_back(e.id);
    }
    return ids;
}

void
Stash::sampleOccupancy()
{
    occupancy_.sample(static_cast<double>(live_));
}

} // namespace proram
