#include "oram/stash.hh"

namespace proram
{

Stash::Stash(std::uint32_t capacity)
    : capacity_(capacity), index_(capacity * 2)
{
    ids_.reserve(capacity * 2);
    leaves_.reserve(capacity * 2);
    data_.reserve(capacity * 2);
}

bool
Stash::insert(BlockId id, std::uint64_t data, Leaf leaf)
{
    if (index_.get(id) != FlatIndex::kNone)
        return false;
    index_.put(id, static_cast<std::uint32_t>(ids_.size()));
    ids_.push_back(id);
    leaves_.push_back(leaf);
    data_.push_back(data);
    ++live_;
    return true;
}

bool
Stash::contains(BlockId id) const
{
    return index_.get(id) != FlatIndex::kNone;
}

std::uint64_t *
Stash::findData(BlockId id)
{
    const std::uint32_t slot = index_.get(id);
    return slot == FlatIndex::kNone ? nullptr : &data_[slot];
}

Leaf
Stash::leafOf(BlockId id) const
{
    const std::uint32_t slot = index_.get(id);
    return slot == FlatIndex::kNone ? kInvalidLeaf : leaves_[slot];
}

bool
Stash::erase(BlockId id)
{
    const std::uint32_t slot = index_.get(id);
    if (slot == FlatIndex::kNone)
        return false;
    // Mark dead in place: shuffling survivors would perturb the
    // insertion order the eviction scan (and replay determinism)
    // depends on. Compaction below preserves relative order. The
    // leaf/data lanes keep their stale words - lane consumers skip
    // dead slots by id.
    ids_[slot] = kInvalidBlock;
    index_.erase(id);
    --live_;
    ++dead_;
    if (dead_ >= 16 && dead_ >= live_)
        compact();
    return true;
}

void
Stash::updateLeaf(BlockId id, Leaf leaf)
{
    const std::uint32_t slot = index_.get(id);
    if (slot != FlatIndex::kNone)
        leaves_[slot] = leaf;
}

void
Stash::compact()
{
    std::size_t out = 0;
    for (std::size_t in = 0; in < ids_.size(); ++in) {
        if (ids_[in] == kInvalidBlock)
            continue;
        if (out != in) {
            ids_[out] = ids_[in];
            leaves_[out] = leaves_[in];
            data_[out] = data_[in];
        }
        index_.put(ids_[out], static_cast<std::uint32_t>(out));
        ++out;
    }
    ids_.resize(out);
    leaves_.resize(out);
    data_.resize(out);
    dead_ = 0;
}

std::vector<BlockId>
Stash::residentIds() const
{
    std::vector<BlockId> out;
    out.reserve(live_);
    for (BlockId id : ids_) {
        if (id != kInvalidBlock)
            out.push_back(id);
    }
    return out;
}

void
Stash::sampleOccupancy()
{
    occupancy_.sample(static_cast<double>(live_));
}

} // namespace proram
