#include "oram/stash.hh"

#include "util/annotations.hh"

namespace proram
{

Stash::Stash(std::uint32_t capacity)
    : capacity_(capacity), index_(capacity * 2)
{
    ids_.reserve(capacity * 2);
    leaves_.reserve(capacity * 2);
    data_.reserve(capacity * 2);
    pinned_.reserve(capacity * 2);
}

PRORAM_HOT bool
Stash::insert(BlockId id, std::uint64_t data, Leaf leaf)
{
    if (index_.get(id.value()) != FlatIndex::kNone)
        return false;
    index_.put(id.value(), static_cast<std::uint32_t>(ids_.size()));
    // PRORAM_LINT_ALLOW(hot-alloc): lanes reserve 2x capacity up
    // front; these appends only reallocate past double overflow.
    ids_.push_back(id);
    // PRORAM_LINT_ALLOW(hot-alloc): see above
    leaves_.push_back(leaf);
    // PRORAM_LINT_ALLOW(hot-alloc): see above
    data_.push_back(data);
    // PRORAM_LINT_ALLOW(hot-alloc): see above
    pinned_.push_back(
        pinFilter_ != nullptr && pinFilter_[id.value()] != 0 ? 1 : 0);
    ++live_;
    return true;
}

PRORAM_HOT void
Stash::setPinned(BlockId id, bool pinned)
{
    const std::uint32_t slot = index_.get(id.value());
    if (slot != FlatIndex::kNone)
        pinned_[slot] = pinned ? 1 : 0;
}

PRORAM_HOT bool
Stash::contains(BlockId id) const
{
    return index_.get(id.value()) != FlatIndex::kNone;
}

PRORAM_HOT std::uint64_t *
Stash::findData(BlockId id)
{
    const std::uint32_t slot = index_.get(id.value());
    return slot == FlatIndex::kNone ? nullptr : &data_[slot];
}

PRORAM_HOT Leaf
Stash::leafOf(BlockId id) const
{
    const std::uint32_t slot = index_.get(id.value());
    return slot == FlatIndex::kNone ? kInvalidLeaf : leaves_[slot];
}

PRORAM_HOT bool
Stash::erase(BlockId id)
{
    const std::uint32_t slot = index_.get(id.value());
    if (slot == FlatIndex::kNone)
        return false;
    // Mark dead in place: shuffling survivors would perturb the
    // insertion order the eviction scan (and replay determinism)
    // depends on. Compaction below preserves relative order. The
    // leaf/data lanes keep their stale words - lane consumers skip
    // dead slots by id.
    ids_[slot] = kInvalidBlock;
    index_.erase(id.value());
    --live_;
    ++dead_;
    if (dead_ >= 16 && dead_ >= live_)
        compact();
    return true;
}

PRORAM_HOT void
Stash::updateLeaf(BlockId id, Leaf leaf)
{
    const std::uint32_t slot = index_.get(id.value());
    if (slot != FlatIndex::kNone)
        leaves_[slot] = leaf;
}

void
Stash::compact()
{
    std::size_t out = 0;
    for (std::size_t in = 0; in < ids_.size(); ++in) {
        if (ids_[in] == kInvalidBlock)
            continue;
        if (out != in) {
            ids_[out] = ids_[in];
            leaves_[out] = leaves_[in];
            data_[out] = data_[in];
            pinned_[out] = pinned_[in];
        }
        index_.put(ids_[out].value(), static_cast<std::uint32_t>(out));
        ++out;
    }
    ids_.resize(out);
    leaves_.resize(out);
    data_.resize(out);
    pinned_.resize(out);
    dead_ = 0;
}

std::vector<BlockId>
Stash::residentIds() const
{
    std::vector<BlockId> out;
    out.reserve(live_);
    for (BlockId id : ids_) {
        if (id != kInvalidBlock)
            out.push_back(id);
    }
    return out;
}

void
Stash::sampleOccupancy()
{
    occupancy_.sample(static_cast<double>(live_));
}

} // namespace proram
