#include "oram/stash.hh"

namespace proram
{

Stash::Stash(std::uint32_t capacity) : capacity_(capacity)
{
    entries_.reserve(capacity * 2);
}

bool
Stash::insert(BlockId id, std::uint64_t data)
{
    return entries_.emplace(id, StashEntry{data}).second;
}

bool
Stash::contains(BlockId id) const
{
    return entries_.count(id) != 0;
}

StashEntry *
Stash::find(BlockId id)
{
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second;
}

bool
Stash::erase(BlockId id)
{
    return entries_.erase(id) != 0;
}

std::vector<BlockId>
Stash::residentIds() const
{
    std::vector<BlockId> ids;
    ids.reserve(entries_.size());
    for (const auto &[id, entry] : entries_)
        ids.push_back(id);
    return ids;
}

void
Stash::sampleOccupancy()
{
    occupancy_.sample(static_cast<double>(entries_.size()));
}

} // namespace proram
