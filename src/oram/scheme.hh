/**
 * @file
 * The abstract ORAM scheme interface: the tree-protocol contract the
 * controller, the policy layer and the concurrent pipeline are written
 * against. One logical access decomposes into the stage split of
 * DESIGN.md Sec. 13 - position-map walk (owned by UnifiedOram), path
 * fetch, stash absorb, eviction - and every concrete protocol (Path
 * ORAM, Ring ORAM) implements those stages over the shared tree,
 * stash, position map and RNG owned here. Nothing outside src/oram/
 * may name a concrete scheme; callers select one via
 * OramConfig::scheme / $PRORAM_SCHEME and talk to this interface.
 */

#ifndef PRORAM_ORAM_SCHEME_HH
#define PRORAM_ORAM_SCHEME_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "oram/config.hh"
#include "oram/position_map.hh"
#include "oram/stash.hh"
#include "oram/tree.hh"
#include "util/mutex.hh"
#include "util/random.hh"

namespace proram
{

class SubtreeCache;

/** One real block copied off a tree path by fetchPath(), pending
 *  absorption into the stash (the concurrent pipeline's hand-off
 *  between the lock-free-of-stash fetch stage and the stash-locked
 *  absorb stage). */
struct FetchedBlock
{
    BlockId id = kInvalidBlock;
    std::uint64_t data = 0;
};

/** Protocol-specific traffic counters (all zero for Path ORAM, whose
 *  bucket traffic is fully described by pathReads()). Monotonic;
 *  sampled by the controller's stat group. */
struct SchemeCounters
{
    /** Modeled one-block bucket reads (Ring: one per path bucket). */
    std::uint64_t bucketReads = 0;
    /** Bucket reads that returned no block of interest (dummy reads). */
    std::uint64_t dummyReads = 0;
    /** Buckets early-reshuffled after S reads since the last shuffle. */
    std::uint64_t earlyReshuffles = 0;
    /** Deterministic reverse-lexicographic eviction passes. */
    std::uint64_t scheduledEvictions = 0;
};

/**
 * Binary tree + stash + remap machinery behind a protocol-agnostic
 * stage interface. The position map is owned by the caller (the
 * unified front end) because recursion and the super-block metadata
 * live there; tree, stash and RNG are owned here and shared by every
 * concrete scheme.
 *
 * Contract the controller may assume (DESIGN.md Sec. 14):
 *  - After readPath(leafOf(b)) returns, every block currently mapped
 *    to that leaf - in particular b and its whole super block - is
 *    stash-resident (or claimed-in-flight in concurrent mode, where
 *    Stash::awaitResident covers the hand-off).
 *  - The policy may remap any stash-resident block via
 *    PositionMap::setLeaf between readPath and writePath; schemes must
 *    not cache block->leaf assignments across that boundary.
 *  - writePath(leaf) restores the scheme's tree invariant ("a block
 *    is on its mapped path or in the stash"); it need not write the
 *    demanded path (Ring ORAM evicts on its own schedule).
 *  - dummyAccess() makes eviction progress (stash occupancy cannot
 *    increase) and returns the public leaf it touched.
 */
class OramScheme
{
  public:
    OramScheme(const OramConfig &cfg, PositionMap &pos_map);
    virtual ~OramScheme();

    OramScheme(const OramScheme &) = delete;
    OramScheme &operator=(const OramScheme &) = delete;

    /** Printable protocol name ("path" / "ring"). */
    virtual const char *name() const = 0;

    /** Bring every block of interest on path @p leaf into the stash
     *  (Path: all real blocks on the path; Ring: the blocks mapped to
     *  @p leaf, one modeled bucket read each). */
    virtual void readPath(Leaf leaf) = 0;

    /**
     * Write-back half of one access. Path ORAM evicts onto @p leaf;
     * Ring ORAM counts the access and runs its scheduled
     * reverse-lexicographic eviction every A-th call (@p leaf names
     * the just-read path for symmetry but the eviction path is the
     * scheme's own choice).
     */
    virtual void writePath(Leaf leaf) = 0;

    /** @name Pipeline stages (concurrent controller interface).
     *
     * Locking contracts are per function (DESIGN.md "Concurrent
     * controller"): fetchPath takes per-node locks only, absorbPath
     * requires the controller meta lock, evictPath takes shard and
     * node locks bucket-wise. @{ */

    /**
     * Stage: path fetch. Copy this scheme's blocks of interest on
     * path @p leaf into @p out (capacity >= maxPathBlocks()) and
     * clear their tree slots. Takes per-node locks only - never the
     * stash. @return number of blocks copied.
     */
    virtual std::size_t fetchPath(Leaf leaf, FetchedBlock *out) = 0;

    /**
     * Stage: stash absorb. Insert @p n fetched blocks, re-reading
     * each block's current leaf from the position map (a concurrent
     * remap between fetch and absorb must win). Caller must hold the
     * controller's meta lock in concurrent mode.
     */
    virtual void absorbPath(const FetchedBlock *blocks, std::size_t n);

    /** Stage: evict classify (serial only; see concrete scheme). */
    virtual void evictClassify(Leaf leaf) = 0;

    /** Stage: write-back fill (serial only; see concrete scheme). */
    virtual void evictWriteBack(Leaf leaf) = 0;

    /**
     * Stage: concurrent eviction pass - the sharded twin of
     * evictClassify + evictWriteBack. Caller must hold no locks;
     * concurrent mode only.
     */
    virtual void evictPath(Leaf leaf) = 0;
    /** @} */

    /**
     * Background eviction (Sec. 2.4): one eviction-progress access
     * that remaps nothing. Stash occupancy cannot increase.
     * @return the public leaf that was accessed.
     */
    virtual Leaf dummyAccess() = 0;

    /**
     * True when dummyAccess() may be called directly in concurrent
     * mode: the scheme's eviction-progress step takes its own node
     * and shard locks and never needs the meta-locked absorb stage
     * (Ring's scheduled eviction classifies from the stash shards
     * alone). When false (Path ORAM, whose dummy is a full
     * read-path round-trip through the stash), the controller
     * decomposes the dummy into fetchPath / absorbPath / evictPath
     * around its meta lock instead.
     */
    virtual bool dummyAccessConcurrentSafe() const { return false; }

    /** Protocol-specific traffic counters (zeros for Path ORAM). */
    virtual SchemeCounters schemeCounters() const { return {}; }

    /** Upper bound on real blocks one path can hold ((L+1)*Z). */
    std::size_t maxPathBlocks() const
    {
        return static_cast<std::size_t>(tree_.levels() + 1) * tree_.z();
    }

    /** @name Geometry (delegates to the shared tree). @{ */
    TreeIdx nodeOnPath(Leaf leaf, Level level) const
    {
        return tree_.nodeOnPath(leaf, level);
    }
    std::uint32_t levels() const { return tree_.levels(); }
    std::uint32_t bucketSlots() const { return tree_.z(); }
    std::uint64_t numLeaves() const { return tree_.numLeaves(); }
    /** @} */

    /**
     * Switch the scheme into concurrent mode: bucket operations take
     * per-node locks from @p cache (and route dedicated buckets
     * through its dedup window when enabled), readPath decomposes
     * into fetchPath + absorbPath, writePath routes to the sharded
     * eviction, the stash shards into @p stash_shards lock-striped
     * shards, randomLeaf() serialises on an internal RNG mutex, and
     * blocks inserted while claimed in @p claim_filter (per-BlockId
     * atomic counts, controller-owned) start pinned against eviction.
     * Serial mode (cache == nullptr, the default) takes no locks.
     */
    void enableConcurrent(SubtreeCache *cache,
                          const std::atomic<std::uint8_t> *claim_filter,
                          std::uint32_t stash_shards);

    bool concurrentEnabled() const { return cache_ != nullptr; }

    /** Fresh uniformly random leaf (step 4 remap target). */
    Leaf randomLeaf();

    /**
     * Place a block into the deepest free bucket on its mapped path,
     * falling back to the stash. Used for initialization only.
     */
    void placeInitial(BlockId id, std::uint64_t data);

    /**
     * Observe the (public) leaf of every *scheduled* eviction pass,
     * in schedule order, just before the pass runs. Pure observation
     * hook for the obliviousness auditor's deterministic-eviction
     * accounting (Ring ORAM); Path ORAM never fires it. Calls are
     * serialised by the scheme even in concurrent mode.
     */
    void setEvictionObserver(std::function<void(Leaf)> fn)
    {
        evictionObserver_ = std::move(fn);
    }

    BinaryTree &tree() { return tree_; }
    const BinaryTree &tree() const { return tree_; }
    Stash &stash() { return stash_; }
    const Stash &stash() const { return stash_; }
    PositionMap &posMap() { return posMap_; }

    std::uint64_t pathReads() const { return pathReads_.value(); }

  protected:
    /** Concurrent-mode hook for scheme-specific state (dedup window
     *  geometry, counter guards); runs after the shared switches. */
    virtual void onEnableConcurrent() {}

    OramConfig cfg_;
    PositionMap &posMap_;
    BinaryTree tree_;
    Stash stash_;
    Rng rng_;
    stats::AtomicCounter pathReads_;
    /** Non-null in concurrent mode: per-node locking discipline. */
    SubtreeCache *cache_ = nullptr;
    /** Concurrent mode: per-BlockId claim counts (controller-owned).
     *  Schemes consult it to keep unclaimed blocks in place in their
     *  buckets instead of round-tripping them through the stash
     *  (DESIGN.md Sec. 13) - only claimed blocks can be remapped by
     *  the in-flight policy, so an unclaimed block's path assignment
     *  cannot change under it. */
    const std::atomic<std::uint8_t> *claimFilter_ = nullptr;
    /** Serialises rng_ draws in concurrent mode. Leaf-level lock:
     *  acquirable under any other lock, never acquires one itself
     *  (lock_order::Rank::Leaf; rank-checked in Debug builds). */
    util::Mutex rngMutex_{lock_order::Rank::Leaf};
    /** Auditor hook; empty (and never called) unless auditing. */
    std::function<void(Leaf)> evictionObserver_;
};

/** Build the scheme selected by @p cfg (after resolvedScheme()). */
std::unique_ptr<OramScheme> makeOramScheme(const OramConfig &cfg,
                                           PositionMap &pos_map);

} // namespace proram

#endif // PRORAM_ORAM_SCHEME_HH
