/**
 * @file
 * Whole-ORAM invariant checker used by the test suite (never on the
 * simulated critical path): validates the Path ORAM invariant, copy
 * uniqueness, and super-block co-location after arbitrary access
 * sequences.
 */

#ifndef PRORAM_ORAM_INTEGRITY_HH
#define PRORAM_ORAM_INTEGRITY_HH

#include <string>
#include <vector>

#include "oram/unified_oram.hh"

namespace proram
{

/** Result of one integrity sweep. */
struct IntegrityReport
{
    bool ok = true;
    std::vector<std::string> violations;

    void fail(std::string msg)
    {
        ok = false;
        violations.push_back(std::move(msg));
    }
};

/**
 * Check every invariant the paper's correctness rests on:
 *  1. every block exists exactly once (stash xor tree);
 *  2. a tree-resident block sits on the path its leaf maps to;
 *  3. super blocks are aligned, power-of-two sized, size-consistent
 *     and co-mapped to a single leaf (Sec. 3.2);
 *  4. position-map blocks never belong to super blocks;
 *  5. every leaf label is within range.
 */
IntegrityReport checkIntegrity(const UnifiedOram &oram);

} // namespace proram

#endif // PRORAM_ORAM_INTEGRITY_HH
