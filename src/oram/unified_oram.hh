/**
 * @file
 * Unified (recursive) ORAM front end, after Freecursive ORAM
 * (Fletcher et al., ASPLOS'15), the paper's baseline (Sec. 2.3):
 * position-map blocks live in the same binary tree as data blocks and
 * are cached on-chip in a PLB; a PLB miss costs extra path accesses.
 */

#ifndef PRORAM_ORAM_UNIFIED_ORAM_HH
#define PRORAM_ORAM_UNIFIED_ORAM_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "oram/position_map.hh"
#include "oram/scheme.hh"

namespace proram
{

/** Outcome of resolving a block's leaf through the recursion. */
struct PosMapWalk
{
    /** Position-map blocks that had to be path-accessed (PLB misses),
     *  outermost (closest to on-chip) first. */
    std::vector<BlockId> fetched;

    std::uint64_t pathAccesses() const { return fetched.size(); }
};

/**
 * Owns the functional state: block-id layout, flat position map, the
 * tree engine (any OramScheme - Path or Ring, per OramConfig::scheme)
 * and PLB. The ORAM controller (core/) drives it.
 */
class UnifiedOram
{
  public:
    explicit UnifiedOram(const OramConfig &cfg);

    /**
     * Initialize: assign every block (data + pos-map) an independent
     * random leaf and place it in the tree. If @p static_sb_size > 1,
     * data blocks are pre-merged into aligned super blocks of that
     * size (static super block scheme initialization, Sec. 3.3).
     */
    void initialize(std::uint32_t static_sb_size = 1);

    /**
     * Bring the position-map block chain for @p id on-chip,
     * path-accessing (and remapping) every PLB-missing level.
     */
    PosMapWalk posMapWalk(BlockId id);

    /** @return true if @p id's pos-map block is PLB-resident (or
     *  on-chip), without updating any state. Testing/diagnostics. */
    bool posMapCached(BlockId id) const;

    /**
     * Observe the (public) leaf of every position-map path access,
     * just before the path is read. Pure observation hook for the
     * obliviousness auditor; must not touch ORAM state.
     */
    void setPosMapObserver(std::function<void(Leaf)> fn)
    {
        posMapObserver_ = std::move(fn);
    }

    /** @name Lazy initialization (OramConfig::lazyInit).
     *
     * In lazy mode initialize() assigns leaves but places nothing:
     * every block is "virtually resident" with payload 0 until its
     * first access, when ensureCreated() inserts it into the stash
     * (from where the normal write-back path materializes it). The
     * created bitset records which blocks exist physically; the
     * integrity checker skips the exactly-once test for uncreated
     * blocks. Callers in concurrent mode must hold the stash lock
     * (the controller's stage-1/stage-3a hooks do).  @{ */
    bool lazyInit() const { return cfg_.lazyInit; }

    /** True when @p id has a physical copy (always, in eager mode). */
    bool isCreated(BlockId id) const
    {
        if (!cfg_.lazyInit)
            return true;
        return (created_[id.value() >> 6] >>
                (id.value() & 63)) & 1;
    }

    /**
     * Create @p id in the stash (payload 0, current leaf) if lazy
     * initialization left it virtual. @return true if created now.
     */
    bool ensureCreated(BlockId id);
    /** @} */

    /**
     * Concurrent-controller hook: the per-BlockId claim-count table
     * (same array the stash's pin filter reads). When set,
     * fetchPosMapBlock claims its pos-map block for the duration of
     * the read-remap span so no concurrent eviction can place the
     * block under its old leaf after the remap (the walk itself runs
     * under the controller meta lock; the claim protects against
     * *eviction* passes, which take no meta). nullptr in serial mode.
     */
    void setClaimTable(std::atomic<std::uint8_t> *claimed)
    {
        claimTable_ = claimed;
    }

    const OramConfig &config() const { return cfg_; }
    const BlockSpace &space() const { return space_; }
    PositionMap &posMap() { return posMap_; }
    const PositionMap &posMap() const { return posMap_; }
    OramScheme &engine() { return *oram_; }
    const OramScheme &engine() const { return *oram_; }
    PosMapBlockCache &plb() { return plb_; }
    const PosMapBlockCache &plb() const { return plb_; }

  private:
    /** Path-access one pos-map block: read, remap, write back. In
     *  concurrent mode the access completes even while the block is
     *  in another request's in-flight fetch buffer (the walk never
     *  reads the simulated block's payload - see the .cc comment). */
    void fetchPosMapBlock(BlockId pm_block);

    OramConfig cfg_;
    BlockSpace space_;
    PositionMap posMap_;
    std::unique_ptr<OramScheme> oram_;
    PosMapBlockCache plb_;
    bool initialized_ = false;
    /** Auditor hook; empty (and never called) unless auditing. */
    std::function<void(Leaf)> posMapObserver_;
    /** posMapWalk scratch (no allocation per walk once warmed up). */
    std::vector<BlockId> chainScratch_;
    /** Claim-count table (controller-owned); see setClaimTable(). */
    std::atomic<std::uint8_t> *claimTable_ = nullptr;
    /** Lazy mode: bit per block id, set once the block physically
     *  exists (stash or tree). Empty in eager mode. Guarded by the
     *  controller's stash lock in concurrent mode. */
    std::vector<std::uint64_t> created_;
};

} // namespace proram

#endif // PRORAM_ORAM_UNIFIED_ORAM_HH
