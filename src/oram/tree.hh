/**
 * @file
 * The Path ORAM binary-tree storage: a chunked structure-of-arrays
 * slot arena living in (simulated) untrusted DRAM, behind a pluggable
 * storage backend (mem/arena.hh, DESIGN.md Sec. 12).
 *
 * Node numbering is heap order: node 0 is the root; node n has children
 * 2n+1 / 2n+2. Leaf label s in [0, 2^L) names the leaf reached by
 * following s's bits from the root; path s is the L+1 buckets from the
 * root to that leaf. Node indices are the *public* coordinates of the
 * protocol (the server sees every bucket touched), so they carry their
 * own strong type (TreeIdx) distinct from the secret leaf labels that
 * select them - confusing the two is a compile error.
 *
 * Memory layout (DESIGN.md "Memory layout" / Sec. 12): buckets are
 * grouped into fixed-size chunks; within a chunk, bucket c slot i
 * lives at lane offset c*Z+i. Block ids and payload words are split
 * into two parallel lanes so the hot scans (readPath looking for real
 * blocks, occupancy checks) stream over one contiguous id run per
 * bucket and never touch payloads they do not copy. Per-bucket
 * free-slot counts are a third lane, making occupancy O(1). A chunk
 * that was never *written* is implicit: it reads as all-dummy without
 * existing in memory, which is what makes paper-scale (2^26-block)
 * trees affordable - reads never materialize, only tryPlace and the
 * raw test accessors do.
 */

#ifndef PRORAM_ORAM_TREE_HH
#define PRORAM_ORAM_TREE_HH

#include <cstdint>
#include <memory>

#include "mem/arena.hh"
#include "util/types.hh"

namespace proram
{

class BinaryTree;

/**
 * Lightweight view of one bucket inside the tree's slot arena. Cheap
 * to construct (a pointer + node index); mutating methods maintain the
 * bucket's free-slot count. The raw accessors exist for tests that
 * corrupt state deliberately - occupancy changes made through them are
 * not reflected in the free count (use occupancyScan() afterwards).
 */
class BucketRef
{
  public:
    std::uint32_t z() const;

    BlockId id(std::uint32_t i) const;
    std::uint64_t data(std::uint32_t i) const;
    bool isDummy(std::uint32_t i) const { return id(i) == kInvalidBlock; }

    /** Real (non-dummy) blocks resident, from the free count (O(1)). */
    std::uint32_t occupancy() const;

    /**
     * Real blocks resident by scanning the Z slots (O(Z)). Ground
     * truth even after raw-slot corruption; the checked slow path the
     * tests compare against occupancy().
     */
    std::uint32_t occupancyScan() const;

    /** Free slots available via tryPlace(). */
    std::uint32_t freeSlots() const;

    /**
     * Place a real block into the first dummy slot. @return false if
     * the bucket is full (O(1) in that case).
     */
    bool tryPlace(BlockId id, std::uint64_t data);

    /** Evict slot @p i back to dummy, releasing it for reuse. */
    void clearSlot(std::uint32_t i);

    /** @name Raw slot words (test/corruption interface).
     *  Writes bypass the free-slot bookkeeping; taking a reference
     *  counts as a write and materializes the owning chunk. @{ */
    BlockId &rawId(std::uint32_t i);
    std::uint64_t &rawData(std::uint32_t i);
    /** @} */

  private:
    friend class BinaryTree;
    BucketRef(BinaryTree *tree, TreeIdx node) : tree_(tree), node_(node)
    {
    }

    BinaryTree *tree_;
    TreeIdx node_;
};

/**
 * The complete binary tree of buckets over the chunked slot arena.
 * Provides path geometry helpers used by the ORAM engine and by the
 * invariant checker.
 *
 * Read accessors (slotId/slotData/freeSlots/occupancy) never
 * materialize: an implicit chunk answers all-dummy from the null
 * directory entry alone. Writes (tryPlace, rawId/rawData) materialize
 * the owning chunk on first touch; clearSlot of an implicit chunk is
 * a no-op (the slot is already dummy).
 */
class BinaryTree
{
  public:
    /** @param levels L: root is level 0, leaves level L.
     *  @param arena storage backend selection (mem/arena.hh); the
     *  default resolves $PRORAM_ARENA and falls back to dense. */
    BinaryTree(std::uint32_t levels, std::uint32_t z,
               const ArenaOptions &arena = {});

    std::uint32_t levels() const { return levels_; }
    /** One past the deepest level: Level{0} .. leafLevel(). */
    Level leafLevel() const { return Level{levels_}; }
    std::uint64_t numLeaves() const { return 1ULL << levels_; }
    std::uint64_t numBuckets() const { return numBuckets_; }
    std::uint32_t z() const { return z_; }

    /** The storage backend (geometry + materialization telemetry). */
    const ArenaBackend &arena() const { return *arena_; }

    /** Heap index of the bucket at @p level on path @p leaf. */
    TreeIdx nodeOnPath(Leaf leaf, Level level) const;

    /** View of bucket @p node. */
    BucketRef bucket(TreeIdx node) { return BucketRef(this, node); }
    BucketRef bucket(TreeIdx node) const
    {
        return BucketRef(const_cast<BinaryTree *>(this), node);
    }

    /** @name Arena hot-path accessors (chunked; bucket b slot i at
     *  lane offset (b mod chunk)*Z+i of chunk b/chunk). @{ */
    BlockId slotId(TreeIdx node, std::uint32_t i) const
    {
        const std::uint64_t n = node.value();
        const ArenaBackend::View v = arena_->view(n >> chunkShift_);
        if (v.ids == nullptr)
            return kInvalidBlock;
        return v.ids[(n & chunkMask_) * z_ + i];
    }
    std::uint64_t slotData(TreeIdx node, std::uint32_t i) const
    {
        const std::uint64_t n = node.value();
        const ArenaBackend::View v = arena_->view(n >> chunkShift_);
        if (v.ids == nullptr)
            return 0;
        return v.data[(n & chunkMask_) * z_ + i];
    }

    /** Free slots of @p node (O(1); z for an implicit chunk). */
    std::uint32_t freeSlots(TreeIdx node) const
    {
        const std::uint64_t n = node.value();
        const ArenaBackend::View v = arena_->view(n >> chunkShift_);
        if (v.ids == nullptr)
            return z_;
        return v.free[n & chunkMask_];
    }
    /** Real blocks in @p node from the free count (O(1)). */
    std::uint32_t occupancy(TreeIdx node) const
    {
        return z_ - freeSlots(node);
    }

    /** Place a block in the first dummy slot of @p node; false if the
     *  bucket is full (O(1) in that case). Materializes the owning
     *  chunk on first touch. */
    bool tryPlace(TreeIdx node, BlockId id, std::uint64_t data);

    /** Evict slot @p i of @p node back to dummy. */
    void clearSlot(TreeIdx node, std::uint32_t i);

    /**
     * Overwrite the whole bucket @p node from caller-provided lanes
     * (@p ids / @p data are Z slots; @p free_slots becomes the free
     * count). Used by the SubtreeCache window flush to sync a
     * resident bucket back into the arena. An all-dummy bucket over a
     * still-implicit chunk is a no-op, so flushing never materializes
     * chunks the window only read.
     */
    void storeBucket(TreeIdx node, const BlockId *ids,
                     const std::uint64_t *data,
                     std::uint32_t free_slots);
    /** @} */

    /**
     * Deepest level at which paths @p a and @p b share a bucket
     * (their lowest common ancestor's level).
     */
    Level commonLevel(Leaf a, Leaf b) const;

    /** Total real blocks stored in the tree, by scanning the
     *  materialized chunks (O(resident slots); tests only - reflects
     *  raw-slot corruption). */
    std::uint64_t countRealBlocks() const;

  private:
    friend class BucketRef;

    /** Writable slot words; materializes the owning chunk. */
    BlockId &rawSlotId(TreeIdx node, std::uint32_t i);
    std::uint64_t &rawSlotData(TreeIdx node, std::uint32_t i);

    std::uint32_t levels_;
    std::uint32_t z_;
    std::uint64_t numBuckets_;
    /** Chunked slot-lane storage (dense / sparse / mmap). */
    std::unique_ptr<ArenaBackend> arena_;
    /** Cached arena geometry (node -> chunk, node -> in-chunk). */
    std::uint32_t chunkShift_;
    std::uint64_t chunkMask_;
};

inline std::uint32_t
BucketRef::z() const
{
    return tree_->z_;
}

inline BlockId
BucketRef::id(std::uint32_t i) const
{
    return tree_->slotId(node_, i);
}

inline std::uint64_t
BucketRef::data(std::uint32_t i) const
{
    return tree_->slotData(node_, i);
}

inline std::uint32_t
BucketRef::occupancy() const
{
    return tree_->occupancy(node_);
}

inline std::uint32_t
BucketRef::freeSlots() const
{
    return tree_->freeSlots(node_);
}

inline bool
BucketRef::tryPlace(BlockId id, std::uint64_t data)
{
    return tree_->tryPlace(node_, id, data);
}

inline void
BucketRef::clearSlot(std::uint32_t i)
{
    tree_->clearSlot(node_, i);
}

inline BlockId &
BucketRef::rawId(std::uint32_t i)
{
    return tree_->rawSlotId(node_, i);
}

inline std::uint64_t &
BucketRef::rawData(std::uint32_t i)
{
    return tree_->rawSlotData(node_, i);
}

} // namespace proram

#endif // PRORAM_ORAM_TREE_HH
