/**
 * @file
 * The Path ORAM binary-tree storage: a flat structure-of-arrays slot
 * arena living in (simulated) untrusted DRAM.
 *
 * Node numbering is heap order: node 0 is the root; node n has children
 * 2n+1 / 2n+2. Leaf label s in [0, 2^L) names the leaf reached by
 * following s's bits from the root; path s is the L+1 buckets from the
 * root to that leaf. Node indices are the *public* coordinates of the
 * protocol (the server sees every bucket touched), so they carry their
 * own strong type (TreeIdx) distinct from the secret leaf labels that
 * select them - confusing the two is a compile error.
 *
 * Memory layout (DESIGN.md "Memory layout"): bucket b slot i lives at
 * arena offset b*Z+i. Block ids and payload words are split into two
 * parallel arrays so the hot scans (readPath looking for real blocks,
 * occupancy checks) stream over one contiguous id run per bucket and
 * never touch payloads they do not copy. Per-bucket free-slot counts
 * are a third array, making occupancy O(1).
 */

#ifndef PRORAM_ORAM_TREE_HH
#define PRORAM_ORAM_TREE_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace proram
{

class BinaryTree;

/**
 * Lightweight view of one bucket inside the tree's slot arena. Cheap
 * to construct (a pointer + node index); mutating methods maintain the
 * bucket's free-slot count. The raw accessors exist for tests that
 * corrupt state deliberately - occupancy changes made through them are
 * not reflected in the free count (use occupancyScan() afterwards).
 */
class BucketRef
{
  public:
    std::uint32_t z() const;

    BlockId id(std::uint32_t i) const;
    std::uint64_t data(std::uint32_t i) const;
    bool isDummy(std::uint32_t i) const { return id(i) == kInvalidBlock; }

    /** Real (non-dummy) blocks resident, from the free count (O(1)). */
    std::uint32_t occupancy() const;

    /**
     * Real blocks resident by scanning the Z slots (O(Z)). Ground
     * truth even after raw-slot corruption; the checked slow path the
     * tests compare against occupancy().
     */
    std::uint32_t occupancyScan() const;

    /** Free slots available via tryPlace(). */
    std::uint32_t freeSlots() const;

    /**
     * Place a real block into the first dummy slot. @return false if
     * the bucket is full (O(1) in that case).
     */
    bool tryPlace(BlockId id, std::uint64_t data);

    /** Evict slot @p i back to dummy, releasing it for reuse. */
    void clearSlot(std::uint32_t i);

    /** @name Raw slot words (test/corruption interface).
     *  Writes bypass the free-slot bookkeeping. @{ */
    BlockId &rawId(std::uint32_t i);
    std::uint64_t &rawData(std::uint32_t i);
    /** @} */

  private:
    friend class BinaryTree;
    BucketRef(BinaryTree *tree, TreeIdx node) : tree_(tree), node_(node)
    {
    }

    BinaryTree *tree_;
    TreeIdx node_;
};

/**
 * The complete binary tree of buckets over the slot arena. Provides
 * path geometry helpers used by the ORAM engine and by the invariant
 * checker.
 */
class BinaryTree
{
  public:
    /** @param levels L: root is level 0, leaves level L. */
    BinaryTree(std::uint32_t levels, std::uint32_t z);

    std::uint32_t levels() const { return levels_; }
    /** One past the deepest level: Level{0} .. leafLevel(). */
    Level leafLevel() const { return Level{levels_}; }
    std::uint64_t numLeaves() const { return 1ULL << levels_; }
    std::uint64_t numBuckets() const { return numBuckets_; }
    std::uint32_t z() const { return z_; }

    /** Heap index of the bucket at @p level on path @p leaf. */
    TreeIdx nodeOnPath(Leaf leaf, Level level) const;

    /** View of bucket @p node. */
    BucketRef bucket(TreeIdx node) { return BucketRef(this, node); }
    BucketRef bucket(TreeIdx node) const
    {
        return BucketRef(const_cast<BinaryTree *>(this), node);
    }

    /** @name Arena hot-path accessors (bucket b slot i at b*Z+i). @{ */
    BlockId slotId(TreeIdx node, std::uint32_t i) const
    {
        return ids_[node.value() * z_ + i];
    }
    std::uint64_t slotData(TreeIdx node, std::uint32_t i) const
    {
        return data_[node.value() * z_ + i];
    }
    /** First slot offset of @p node in the id/payload arrays. */
    std::uint64_t slotBase(TreeIdx node) const
    {
        return node.value() * z_;
    }
    const BlockId *idArena() const { return ids_.data(); }
    const std::uint64_t *dataArena() const { return data_.data(); }

    /** Free slots of @p node (O(1)). */
    std::uint32_t freeSlots(TreeIdx node) const
    {
        return free_[node.value()];
    }
    /** Real blocks in @p node from the free count (O(1)). */
    std::uint32_t occupancy(TreeIdx node) const
    {
        return z_ - free_[node.value()];
    }

    /** Place a block in the first dummy slot of @p node; false if the
     *  bucket is full (O(1) in that case). */
    bool tryPlace(TreeIdx node, BlockId id, std::uint64_t data);

    /** Evict slot @p i of @p node back to dummy. */
    void clearSlot(TreeIdx node, std::uint32_t i);
    /** @} */

    /**
     * Deepest level at which paths @p a and @p b share a bucket
     * (their lowest common ancestor's level).
     */
    Level commonLevel(Leaf a, Leaf b) const;

    /** Total real blocks stored in the tree, by scanning the arena
     *  (O(slots); tests only - reflects raw-slot corruption). */
    std::uint64_t countRealBlocks() const;

  private:
    friend class BucketRef;

    std::uint32_t levels_;
    std::uint32_t z_;
    std::uint64_t numBuckets_;
    /** Slot arena, structure-of-arrays: all ids, then all payloads. */
    std::vector<BlockId> ids_;
    std::vector<std::uint64_t> data_;
    /** Per-bucket free-slot counts (occupancy in O(1)). */
    std::vector<std::uint32_t> free_;
};

inline std::uint32_t
BucketRef::z() const
{
    return tree_->z_;
}

inline BlockId
BucketRef::id(std::uint32_t i) const
{
    return tree_->slotId(node_, i);
}

inline std::uint64_t
BucketRef::data(std::uint32_t i) const
{
    return tree_->slotData(node_, i);
}

inline std::uint32_t
BucketRef::occupancy() const
{
    return tree_->occupancy(node_);
}

inline std::uint32_t
BucketRef::freeSlots() const
{
    return tree_->freeSlots(node_);
}

inline bool
BucketRef::tryPlace(BlockId id, std::uint64_t data)
{
    return tree_->tryPlace(node_, id, data);
}

inline void
BucketRef::clearSlot(std::uint32_t i)
{
    tree_->clearSlot(node_, i);
}

inline BlockId &
BucketRef::rawId(std::uint32_t i)
{
    return tree_->ids_[tree_->slotBase(node_) + i];
}

inline std::uint64_t &
BucketRef::rawData(std::uint32_t i)
{
    return tree_->data_[tree_->slotBase(node_) + i];
}

} // namespace proram

#endif // PRORAM_ORAM_TREE_HH
