/**
 * @file
 * The Path ORAM binary-tree storage: an array of buckets of Z slots
 * living in (simulated) untrusted DRAM.
 *
 * Node numbering is heap order: node 0 is the root; node n has children
 * 2n+1 / 2n+2. Leaf label s in [0, 2^L) names the leaf reached by
 * following s's bits from the root; path s is the L+1 buckets from the
 * root to that leaf.
 */

#ifndef PRORAM_ORAM_TREE_HH
#define PRORAM_ORAM_TREE_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace proram
{

/** One block slot inside a bucket. Invalid id = dummy block. */
struct Slot
{
    BlockId id = kInvalidBlock;
    /** Functional payload word (verifies read-your-writes in tests). */
    std::uint64_t data = 0;

    bool isDummy() const { return id == kInvalidBlock; }
};

/**
 * A bucket of Z slots. Tracks its free-slot count so a full bucket
 * answers freeSlot() in O(1); fill/clear must therefore go through
 * freeSlot()/clearSlot(). The non-const slot() accessor exists for
 * tests that corrupt state deliberately - occupancy changes made
 * through it are not reflected in the free count.
 */
class Bucket
{
  public:
    explicit Bucket(std::uint32_t z) : slots_(z), free_(z) {}

    std::uint32_t z() const
    {
        return static_cast<std::uint32_t>(slots_.size());
    }

    Slot &slot(std::uint32_t i) { return slots_[i]; }
    const Slot &slot(std::uint32_t i) const { return slots_[i]; }

    /** Number of real (non-dummy) blocks resident. */
    std::uint32_t occupancy() const;

    /** Free slots available via freeSlot(). */
    std::uint32_t freeSlots() const { return free_; }

    /**
     * Reserve a free slot, or nullptr if the bucket is full (O(1) in
     * that case). The caller must fill the returned slot with a real
     * block - the slot is counted as occupied from here on.
     */
    Slot *freeSlot();

    /** Evict slot @p i back to dummy, releasing it for reuse. */
    void clearSlot(std::uint32_t i);

  private:
    std::vector<Slot> slots_;
    std::uint32_t free_;
};

/**
 * The complete binary tree of buckets. Provides path geometry helpers
 * used by the ORAM engine and by the invariant checker.
 */
class BinaryTree
{
  public:
    /** @param levels L: root is level 0, leaves level L. */
    BinaryTree(std::uint32_t levels, std::uint32_t z);

    std::uint32_t levels() const { return levels_; }
    std::uint64_t numLeaves() const { return 1ULL << levels_; }
    std::uint64_t numBuckets() const { return buckets_.size(); }
    std::uint32_t z() const { return z_; }

    /** Heap index of the bucket at @p level on path @p leaf. */
    std::uint64_t nodeOnPath(Leaf leaf, std::uint32_t level) const;

    Bucket &bucket(std::uint64_t node) { return buckets_[node]; }
    const Bucket &bucket(std::uint64_t node) const
    {
        return buckets_[node];
    }

    /**
     * Deepest level at which paths @p a and @p b share a bucket
     * (their lowest common ancestor's level).
     */
    std::uint32_t commonLevel(Leaf a, Leaf b) const;

    /** Total real blocks stored in the tree (O(buckets); tests only). */
    std::uint64_t countRealBlocks() const;

  private:
    std::uint32_t levels_;
    std::uint32_t z_;
    std::vector<Bucket> buckets_;
};

} // namespace proram

#endif // PRORAM_ORAM_TREE_HH
