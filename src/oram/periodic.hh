/**
 * @file
 * Timing-channel protection via periodic ORAM accesses (paper
 * Sec. 2.5 / 5.6): path accesses may start only at public slot
 * boundaries spaced `pathCycles + Oint` apart; idle slots are filled
 * with dummy accesses (same operation as background eviction).
 */

#ifndef PRORAM_ORAM_PERIODIC_HH
#define PRORAM_ORAM_PERIODIC_HH

#include "util/types.hh"

namespace proram
{

/** Periodic-access configuration. */
struct PeriodicConfig
{
    bool enabled = false;
    /** Public interval between consecutive ORAM accesses (cycles). */
    Cycles oInt{100};
};

/** Result of scheduling one logical request. */
struct PeriodicGrant
{
    /** Cycle the first path access starts. */
    Cycles start{0};
    /** Cycle the last path access completes (data available). */
    Cycles completion{0};
    /** Dummy accesses that elapsed while the ORAM sat idle. */
    std::uint64_t elapsedDummies = 0;
};

/**
 * Slot bookkeeping. In non-periodic mode this degenerates to simple
 * busy-until serialization (one memory controller, Sec. 2.6).
 */
class PeriodicScheduler
{
  public:
    PeriodicScheduler(const PeriodicConfig &cfg, Cycles path_cycles);

    /**
     * Grant @p num_paths back-to-back path accesses to a request
     * arriving at @p now.
     */
    PeriodicGrant schedule(Cycles now, std::uint64_t num_paths);

    /**
     * Count the dummy accesses that would fire in (busy, now] with no
     * request pending - used at end-of-run to settle the access count.
     */
    std::uint64_t drainDummies(Cycles now);

    bool enabled() const { return cfg_.enabled; }
    Cycles period() const { return period_; }
    std::uint64_t totalDummies() const { return dummies_; }

  private:
    PeriodicConfig cfg_;
    Cycles pathCycles_;
    Cycles period_;
    /** Next slot boundary (periodic) / controller-free time. */
    Cycles nextFree_{0};
    std::uint64_t dummies_ = 0;
};

} // namespace proram

#endif // PRORAM_ORAM_PERIODIC_HH
