#include "oram/scheme.hh"

#include <vector>

#include "oram/path_oram.hh"
#include "oram/ring_oram.hh"
#include "util/annotations.hh"
#include "util/logging.hh"

namespace proram
{

OramScheme::OramScheme(const OramConfig &cfg, PositionMap &pos_map)
    : cfg_(cfg), posMap_(pos_map),
      tree_(cfg.levels(), cfg.z, cfg.arena),
      stash_(cfg.stashCapacity), rng_(cfg.seed ^ 0x0aa77aa55aa33aa1ULL)
{
    // Every leaf remap must reach stash-resident entries' cached
    // leaves; routing through the position map's single write point
    // covers all remap sites (eviction, merge, break) at once.
    posMap_.attachLeafCache(&stash_);
}

OramScheme::~OramScheme()
{
    posMap_.attachLeafCache(nullptr);
}

void
OramScheme::enableConcurrent(SubtreeCache *cache,
                             const std::atomic<std::uint8_t> *claim_filter,
                             std::uint32_t stash_shards)
{
    cache_ = cache;
    claimFilter_ = claim_filter;
    stash_.setPinFilter(claim_filter);
    stash_.enableConcurrent(stash_shards);
    onEnableConcurrent();
}

PRORAM_HOT Leaf
OramScheme::randomLeaf()
{
    if (cache_ != nullptr) {
        const util::ScopedLock g(rngMutex_);
        return Leaf{
            static_cast<std::uint32_t>(rng_.below(tree_.numLeaves()))};
    }
    return Leaf{
        static_cast<std::uint32_t>(rng_.below(tree_.numLeaves()))};
}

PRORAM_HOT void
OramScheme::absorbPath(const FetchedBlock *blocks, std::size_t n)
{
    if (n == 0)
        return;
    // The leaf is re-read from the position map at absorb time, not
    // fetch time: a concurrent remap between the two stages must win.
    // Unzip into parallel lanes so the stash can group the inserts by
    // shard (one lock per distinct shard instead of one per block).
    static thread_local std::vector<BlockId> ids;
    static thread_local std::vector<std::uint64_t> data;
    static thread_local std::vector<Leaf> leaves;
    if (ids.size() < n) {
        // PRORAM_LINT_ALLOW(hot-alloc): thread-local, path-bounded.
        ids.resize(n);
        // PRORAM_LINT_ALLOW(hot-alloc): see above.
        data.resize(n);
        // PRORAM_LINT_ALLOW(hot-alloc): see above.
        leaves.resize(n);
    }
    for (std::size_t i = 0; i < n; ++i) {
        ids[i] = blocks[i].id;
        data[i] = blocks[i].data;
        leaves[i] = posMap_.leafOf(blocks[i].id);
    }
    stash_.insertBatch(ids.data(), data.data(), leaves.data(), n);
}

void
OramScheme::placeInitial(BlockId id, std::uint64_t data)
{
    const Leaf leaf = posMap_.leafOf(id);
    panic_if(leaf == kInvalidLeaf, "placeInitial before leaf assignment");
    for (std::uint32_t l = tree_.levels() + 1; l-- > 0;) {
        if (tree_.tryPlace(tree_.nodeOnPath(leaf, Level{l}), id, data))
            return;
    }
    stash_.insert(id, data, leaf);
}

std::unique_ptr<OramScheme>
makeOramScheme(const OramConfig &cfg, PositionMap &pos_map)
{
    switch (cfg.resolvedScheme()) {
      case SchemeKind::Path:
        return std::make_unique<PathOram>(cfg, pos_map);
      case SchemeKind::Ring:
        return std::make_unique<RingOram>(cfg, pos_map);
      case SchemeKind::Default:
        break;
    }
    panic("unresolved ORAM scheme");
}

} // namespace proram
