/**
 * @file
 * The functional Path ORAM engine (Stefanov et al., CCS'13), split
 * into the read-path and write-path halves of one access so the
 * super-block policies can remap blocks in between (merging/breaking
 * must pick final leaves *before* the write-back phase, exactly as the
 * hardware does - paper Sec. 2.2 steps 4-5). Concrete OramScheme;
 * callers outside src/oram/ use oram/scheme.hh.
 */

#ifndef PRORAM_ORAM_PATH_ORAM_HH
#define PRORAM_ORAM_PATH_ORAM_HH

#include <atomic>
#include <cstddef>
#include <vector>

#include "oram/scheme.hh"

namespace proram
{

/**
 * Path ORAM: readPath extracts every real block on the accessed path
 * into the stash; writePath greedily evicts the stash back onto the
 * same path, deepest buckets first.
 */
class PathOram final : public OramScheme
{
  public:
    PathOram(const OramConfig &cfg, PositionMap &pos_map);

    const char *name() const override { return "path"; }

    /** Read every bucket on path @p leaf into the stash (step 2). */
    void readPath(Leaf leaf) override;

    /**
     * Evict as many stash blocks as possible onto path @p leaf,
     * deepest buckets first (step 5). Blocks land only in buckets that
     * lie on both @p leaf and their own mapped path. Equivalent to
     * evictClassify(leaf) followed by evictWriteBack(leaf).
     */
    void writePath(Leaf leaf) override;

    /**
     * Stage: path fetch. Copy every real block on path @p leaf into
     * @p out (capacity >= maxPathBlocks()) and clear the tree slots.
     * Takes per-node locks only - never the stash - so it may run
     * concurrently with other requests' fetch/write-back traffic.
     * @return number of blocks copied.
     */
    std::size_t fetchPath(Leaf leaf, FetchedBlock *out) override;

    /**
     * Stage: evict classify (serial). Classify every stash slot's
     * deepest eligible level on path @p leaf and counting-sort the
     * live slots deepest level first into internal scratch. Serial
     * mode only - the member scratch is unsynchronized; concurrent
     * evictions run evictPath().
     */
    void evictClassify(Leaf leaf) override;

    /**
     * Stage: write-back (serial). Fill buckets of path @p leaf from
     * the classified scratch, leaf upward. Serial mode only; see
     * evictClassify().
     */
    void evictWriteBack(Leaf leaf) override;

    /**
     * Stage: concurrent eviction pass over path @p leaf - the
     * sharded twin of evictClassify + evictWriteBack. Classifies
     * shard by shard under each shard's lock into thread-local
     * scratch, then fills buckets leaf upward under ONE node hold per
     * level, revalidating every candidate under its shard lock
     * (current leaf, pin state, payload) inside the node hold -
     * classification is only a hint once the global stash lock is
     * gone. Lock order: node, then stash-shard (DESIGN.md Sec. 13).
     * Caller must hold no locks; concurrent mode only.
     */
    void evictPath(Leaf leaf) override;

    /**
     * Background eviction (Sec. 2.4): read + write a random path
     * without remapping anything. Stash occupancy cannot increase.
     * @return the (random) leaf that was accessed.
     */
    Leaf dummyAccess() override;

  private:
    /** A stash block staged for eviction: id plus payload captured in
     *  the single stash scan so write-back needs no re-lookup. */
    struct Evictable
    {
        BlockId id;
        std::uint64_t data;
    };

    /** Grow the per-slot scratch to cover @p slots stash slots. */
    void reserveScratch(std::size_t slots);

    void onEnableConcurrent() override;

    /** Windowed (dedup-resident) buckets on any one path: cached at
     *  enableConcurrent so fetchPath's batched touch accounting is a
     *  constant add. Zero when the window is disabled. */
    std::uint64_t windowLevelsOnPath_ = 0;
    /** Fetch sequence number: every kWindowResortPeriod-th fetch
     *  extracts windowed buckets in full so the classic Path ORAM
     *  path re-sort still runs (keeps deep placement alive and the
     *  stash bounded). Counter-based, so the cadence depends only on
     *  the public number of path reads, never on their contents. */
    static constexpr std::uint64_t kWindowResortPeriod = 4;
    std::atomic<std::uint64_t> fetchSeq_{0};

    // writePath scratch, pre-sized from tree geometry at construction
    // (see reserveScratch) so even the first paths allocate nothing.
    /** Per-slot eviction level, filled by evict::classifyLevels. */
    std::vector<std::uint32_t> levelScratch_;
    /** Counting sort: per-level population / start offset / cursor. */
    std::vector<std::uint32_t> histScratch_;
    std::vector<std::uint32_t> levelStartScratch_;
    std::vector<std::uint32_t> levelCursorScratch_;
    /** Evictables grouped deepest level first, insertion order kept
     *  within each level (the stable-scatter output). */
    std::vector<Evictable> sortedScratch_;
    std::vector<Evictable> poolScratch_;
};

} // namespace proram

#endif // PRORAM_ORAM_PATH_ORAM_HH
