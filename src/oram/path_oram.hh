/**
 * @file
 * The functional Path ORAM engine (Stefanov et al., CCS'13), split
 * into the read-path and write-path halves of one access so the
 * super-block policies can remap blocks in between (merging/breaking
 * must pick final leaves *before* the write-back phase, exactly as the
 * hardware does - paper Sec. 2.2 steps 4-5).
 */

#ifndef PRORAM_ORAM_PATH_ORAM_HH
#define PRORAM_ORAM_PATH_ORAM_HH

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "oram/config.hh"
#include "oram/position_map.hh"
#include "oram/stash.hh"
#include "oram/tree.hh"
#include "util/random.hh"

namespace proram
{

class SubtreeCache;

/** One real block copied off a tree path by fetchPath(), pending
 *  absorption into the stash (the concurrent pipeline's hand-off
 *  between the lock-free-of-stash fetch stage and the stash-locked
 *  absorb stage). */
struct FetchedBlock
{
    BlockId id = kInvalidBlock;
    std::uint64_t data = 0;
};

/**
 * Binary tree + stash + remap machinery. The position map is owned by
 * the caller (the unified front end) because recursion and the
 * super-block metadata live there.
 */
class PathOram
{
  public:
    PathOram(const OramConfig &cfg, PositionMap &pos_map);
    ~PathOram();

    PathOram(const PathOram &) = delete;
    PathOram &operator=(const PathOram &) = delete;

    /** Read every bucket on path @p leaf into the stash (step 2). */
    void readPath(Leaf leaf);

    /**
     * Evict as many stash blocks as possible onto path @p leaf,
     * deepest buckets first (step 5). Blocks land only in buckets that
     * lie on both @p leaf and their own mapped path. Equivalent to
     * evictClassify(leaf) followed by evictWriteBack(leaf).
     */
    void writePath(Leaf leaf);

    /** @name Pipeline stages (concurrent controller interface).
     *
     * One serial access decomposes into position-map lookup (owned by
     * UnifiedOram), path fetch, stash absorb/remap, evict classify,
     * and write-back. The stage functions below expose the engine
     * half of that pipeline so the controller can interleave stages
     * of different requests; locking contracts are per function (see
     * DESIGN.md "Concurrent controller"). @{ */

    /**
     * Stage: path fetch. Copy every real block on path @p leaf into
     * @p out (capacity >= maxPathBlocks()) and clear the tree slots.
     * Takes per-node locks only - never the stash - so it may run
     * concurrently with other requests' fetch/write-back traffic.
     * @return number of blocks copied.
     */
    std::size_t fetchPath(Leaf leaf, FetchedBlock *out);

    /**
     * Stage: stash absorb. Insert @p n fetched blocks, re-reading
     * each block's current leaf from the position map. Caller must
     * hold the controller's meta lock in concurrent mode (the
     * position-map read); stash inserts take their shard lock
     * internally.
     */
    void absorbPath(const FetchedBlock *blocks, std::size_t n);

    /**
     * Stage: evict classify (serial). Classify every stash slot's
     * deepest eligible level on path @p leaf and counting-sort the
     * live slots deepest level first into internal scratch. Serial
     * mode only - the member scratch is unsynchronized; concurrent
     * evictions run evictPath().
     */
    void evictClassify(Leaf leaf);

    /**
     * Stage: write-back (serial). Fill buckets of path @p leaf from
     * the classified scratch, leaf upward. Serial mode only; see
     * evictClassify().
     */
    void evictWriteBack(Leaf leaf);

    /**
     * Stage: concurrent eviction pass over path @p leaf - the
     * sharded twin of evictClassify + evictWriteBack. Classifies
     * shard by shard under each shard's lock into thread-local
     * scratch, then fills buckets leaf upward under ONE node hold per
     * level, revalidating every candidate under its shard lock
     * (current leaf, pin state, payload) inside the node hold -
     * classification is only a hint once the global stash lock is
     * gone. Lock order: node, then stash-shard (DESIGN.md Sec. 13).
     * Caller must hold no locks; concurrent mode only.
     */
    void evictPath(Leaf leaf);

    /** Upper bound on real blocks one path can hold ((L+1)*Z). */
    std::size_t maxPathBlocks() const
    {
        return static_cast<std::size_t>(tree_.levels() + 1) * tree_.z();
    }

    /**
     * Switch the engine into concurrent mode: bucket operations in
     * fetchPath/readPath/evictPath take per-node locks from @p cache
     * (and route dedicated buckets through its dedup window when
     * enabled), readPath decomposes into fetchPath + absorbPath,
     * writePath routes to evictPath, the stash shards into
     * @p stash_shards lock-striped shards, randomLeaf() serialises on
     * an internal RNG mutex, and blocks inserted while claimed in
     * @p claim_filter (per-BlockId atomic counts, controller-owned)
     * start pinned against eviction. Serial mode (cache == nullptr,
     * the default) takes no locks at all.
     */
    void enableConcurrent(SubtreeCache *cache,
                          const std::atomic<std::uint8_t> *claim_filter,
                          std::uint32_t stash_shards);

    bool concurrentEnabled() const { return cache_ != nullptr; }
    /** @} */

    /**
     * Background eviction (Sec. 2.4): read + write a random path
     * without remapping anything. Stash occupancy cannot increase.
     * @return the (random) leaf that was accessed.
     */
    Leaf dummyAccess();

    /** Fresh uniformly random leaf (step 4 remap target). */
    Leaf randomLeaf();

    /**
     * Place a block into the deepest free bucket on its mapped path,
     * falling back to the stash. Used for initialization only.
     */
    void placeInitial(BlockId id, std::uint64_t data);

    BinaryTree &tree() { return tree_; }
    const BinaryTree &tree() const { return tree_; }
    Stash &stash() { return stash_; }
    const Stash &stash() const { return stash_; }
    PositionMap &posMap() { return posMap_; }

    std::uint64_t pathReads() const { return pathReads_.value(); }

  private:
    /** A stash block staged for eviction: id plus payload captured in
     *  the single stash scan so write-back needs no re-lookup. */
    struct Evictable
    {
        BlockId id;
        std::uint64_t data;
    };

    /** Grow the per-slot scratch to cover @p slots stash slots. */
    void reserveScratch(std::size_t slots);

    OramConfig cfg_;
    PositionMap &posMap_;
    BinaryTree tree_;
    Stash stash_;
    Rng rng_;
    stats::AtomicCounter pathReads_;
    /** Non-null in concurrent mode: per-node locking discipline. */
    SubtreeCache *cache_ = nullptr;
    /** Concurrent mode: per-BlockId claim counts (controller-owned).
     *  fetchPath consults it to leave unclaimed blocks in place in
     *  their buckets instead of round-tripping them through the
     *  stash (DESIGN.md Sec. 13) - only claimed blocks can be
     *  remapped by the in-flight policy, so an unclaimed block's
     *  path assignment cannot change under it. */
    const std::atomic<std::uint8_t> *claimFilter_ = nullptr;
    /** Windowed (dedup-resident) buckets on any one path: cached at
     *  enableConcurrent so fetchPath's batched touch accounting is a
     *  constant add. Zero when the window is disabled. */
    std::uint64_t windowLevelsOnPath_ = 0;
    /** Fetch sequence number: every kWindowResortPeriod-th fetch
     *  extracts windowed buckets in full so the classic Path ORAM
     *  path re-sort still runs (keeps deep placement alive and the
     *  stash bounded). Counter-based, so the cadence depends only on
     *  the public number of path reads, never on their contents. */
    static constexpr std::uint64_t kWindowResortPeriod = 4;
    std::atomic<std::uint64_t> fetchSeq_{0};
    /** Serialises rng_ draws in concurrent mode. Leaf-level lock:
     *  acquirable under any other lock, never acquires one itself. */
    std::mutex rngMutex_;

    // writePath scratch, pre-sized from tree geometry at construction
    // (see reserveScratch) so even the first paths allocate nothing.
    /** Per-slot eviction level, filled by evict::classifyLevels. */
    std::vector<std::uint32_t> levelScratch_;
    /** Counting sort: per-level population / start offset / cursor. */
    std::vector<std::uint32_t> histScratch_;
    std::vector<std::uint32_t> levelStartScratch_;
    std::vector<std::uint32_t> levelCursorScratch_;
    /** Evictables grouped deepest level first, insertion order kept
     *  within each level (the stable-scatter output). */
    std::vector<Evictable> sortedScratch_;
    std::vector<Evictable> poolScratch_;
};

} // namespace proram

#endif // PRORAM_ORAM_PATH_ORAM_HH
