/**
 * @file
 * The functional Path ORAM engine (Stefanov et al., CCS'13), split
 * into the read-path and write-path halves of one access so the
 * super-block policies can remap blocks in between (merging/breaking
 * must pick final leaves *before* the write-back phase, exactly as the
 * hardware does - paper Sec. 2.2 steps 4-5).
 */

#ifndef PRORAM_ORAM_PATH_ORAM_HH
#define PRORAM_ORAM_PATH_ORAM_HH

#include <vector>

#include "oram/config.hh"
#include "oram/position_map.hh"
#include "oram/stash.hh"
#include "oram/tree.hh"
#include "util/random.hh"

namespace proram
{

/**
 * Binary tree + stash + remap machinery. The position map is owned by
 * the caller (the unified front end) because recursion and the
 * super-block metadata live there.
 */
class PathOram
{
  public:
    PathOram(const OramConfig &cfg, PositionMap &pos_map);
    ~PathOram();

    PathOram(const PathOram &) = delete;
    PathOram &operator=(const PathOram &) = delete;

    /** Read every bucket on path @p leaf into the stash (step 2). */
    void readPath(Leaf leaf);

    /**
     * Evict as many stash blocks as possible onto path @p leaf,
     * deepest buckets first (step 5). Blocks land only in buckets that
     * lie on both @p leaf and their own mapped path.
     */
    void writePath(Leaf leaf);

    /**
     * Background eviction (Sec. 2.4): read + write a random path
     * without remapping anything. Stash occupancy cannot increase.
     * @return the (random) leaf that was accessed.
     */
    Leaf dummyAccess();

    /** Fresh uniformly random leaf (step 4 remap target). */
    Leaf randomLeaf();

    /**
     * Place a block into the deepest free bucket on its mapped path,
     * falling back to the stash. Used for initialization only.
     */
    void placeInitial(BlockId id, std::uint64_t data);

    BinaryTree &tree() { return tree_; }
    const BinaryTree &tree() const { return tree_; }
    Stash &stash() { return stash_; }
    const Stash &stash() const { return stash_; }
    PositionMap &posMap() { return posMap_; }

    std::uint64_t pathReads() const { return pathReads_.value(); }

  private:
    /** A stash block staged for eviction: id plus payload captured in
     *  the single stash scan so write-back needs no re-lookup. */
    struct Evictable
    {
        BlockId id;
        std::uint64_t data;
    };

    /** Grow the per-slot scratch to cover @p slots stash slots. */
    void reserveScratch(std::size_t slots);

    OramConfig cfg_;
    PositionMap &posMap_;
    BinaryTree tree_;
    Stash stash_;
    Rng rng_;
    stats::Counter pathReads_;

    // writePath scratch, pre-sized from tree geometry at construction
    // (see reserveScratch) so even the first paths allocate nothing.
    /** Per-slot eviction level, filled by evict::classifyLevels. */
    std::vector<std::uint32_t> levelScratch_;
    /** Counting sort: per-level population / start offset / cursor. */
    std::vector<std::uint32_t> histScratch_;
    std::vector<std::uint32_t> levelStartScratch_;
    std::vector<std::uint32_t> levelCursorScratch_;
    /** Evictables grouped deepest level first, insertion order kept
     *  within each level (the stable-scatter output). */
    std::vector<Evictable> sortedScratch_;
    std::vector<Evictable> poolScratch_;
};

} // namespace proram

#endif // PRORAM_ORAM_PATH_ORAM_HH
