#include "oram/periodic.hh"

#include <algorithm>

#include "util/logging.hh"

namespace proram
{

PeriodicScheduler::PeriodicScheduler(const PeriodicConfig &cfg,
                                     Cycles path_cycles)
    : cfg_(cfg), pathCycles_(path_cycles),
      period_(path_cycles + cfg.oInt)
{
    fatal_if(path_cycles == Cycles{0},
             "path access cannot take zero cycles");
}

PeriodicGrant
PeriodicScheduler::schedule(Cycles now, std::uint64_t num_paths)
{
    PeriodicGrant grant;
    if (!cfg_.enabled) {
        grant.start = std::max(now, nextFree_);
        grant.completion = grant.start + num_paths * pathCycles_;
        nextFree_ = grant.completion;
        return grant;
    }

    // Idle slots before `now` ran dummy accesses.
    while (nextFree_ < now) {
        ++dummies_;
        ++grant.elapsedDummies;
        nextFree_ += period_;
    }
    grant.start = nextFree_;
    grant.completion =
        grant.start + (num_paths - 1) * period_ + pathCycles_;
    nextFree_ = grant.start + num_paths * period_;
    return grant;
}

std::uint64_t
PeriodicScheduler::drainDummies(Cycles now)
{
    if (!cfg_.enabled)
        return 0;
    std::uint64_t n = 0;
    while (nextFree_ < now) {
        ++n;
        ++dummies_;
        nextFree_ += period_;
    }
    return n;
}

} // namespace proram
