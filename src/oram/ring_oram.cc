#include "oram/ring_oram.hh"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/trace.hh"
#include "oram/bucket_ops.hh"
#include "oram/evict_kernel.hh"
#include "oram/subtree_cache.hh"
#include "util/annotations.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace proram
{

RingOram::RingOram(const OramConfig &cfg, PositionMap &pos_map)
    : OramScheme(cfg, pos_map), s_(cfg.resolvedRingS()),
      a_(cfg.resolvedRingA()),
      readCount_(tree_.numBuckets(), 0)
{
    // Same scratch pre-sizing as Path ORAM: first accesses after
    // construction are allocation-free.
    const std::size_t slot_bound =
        static_cast<std::size_t>(cfg.stashCapacity) * 2 +
        static_cast<std::size_t>(tree_.levels() + 1) * tree_.z();
    reserveScratch(slot_bound);
    const std::size_t level_slots = tree_.levels() + 2;
    histScratch_.resize(level_slots, 0);
    levelStartScratch_.resize(level_slots, 0);
    levelCursorScratch_.resize(level_slots, 0);
}

void
RingOram::reserveScratch(std::size_t slots)
{
    if (levelScratch_.size() < slots)
        levelScratch_.resize(slots);
    if (sortedScratch_.size() < slots)
        sortedScratch_.resize(slots);
    if (poolScratch_.capacity() < slots)
        poolScratch_.reserve(slots);
}

Leaf
RingOram::evictionLeafAt(std::uint64_t g) const
{
    // Reverse-lexicographic order: the g-th eviction writes leaf
    // bit-reverse(g mod 2^L). The sequence is public and fixed at
    // design time - it carries zero bits about the demand pattern.
    return Leaf{static_cast<std::uint32_t>(
        reverseBits(g & (tree_.numLeaves() - 1), tree_.levels()))};
}

Leaf
RingOram::nextEvictionLeaf()
{
    // One atomic schedule step: the counter draw and the observer
    // call happen under the same (leaf-level) lock, so the audited
    // eviction sequence is exactly g = 0, 1, 2, ... even when
    // concurrent requests trigger evictions back to back.
    const util::ScopedLock g(scheduleMutex_);
    const std::uint64_t seq =
        evictionSeq_.fetch_add(1, std::memory_order_relaxed);
    const Leaf leaf = evictionLeafAt(seq);
    if (evictionObserver_)
        evictionObserver_(leaf);
    return leaf;
}

PRORAM_HOT void
RingOram::noteBucketRead(TreeIdx node, std::uint32_t extracted)
{
    // Every bucket on an accessed path serves exactly one modeled
    // block read - a real block when it held one of interest, a dummy
    // otherwise. A bucket that held several interest blocks (a
    // co-located super block) is billed one read per block: the
    // hardware design would need that many single-block reads too.
    // The counter write is guarded by the bucket's node lock in
    // concurrent mode; the early-reshuffle itself is metadata-only at
    // this simulator's bucket granularity (the intra-bucket
    // permutation is not modeled - see ring_oram.hh).
    const std::uint32_t reads = extracted > 1 ? extracted : 1;
    bucketReads_ += reads;
    if (extracted == 0)
        ++dummyReads_;
    const std::uint32_t count = readCount_[node.value()] + reads;
    if (count >= s_) {
        readCount_[node.value()] = 0;
        ++earlyReshuffles_;
    } else {
        readCount_[node.value()] =
            static_cast<std::uint8_t>(count < 255 ? count : 255);
    }
}

PRORAM_OBLIVIOUS PRORAM_HOT void
RingOram::readPath(Leaf leaf)
{
    if (cache_ != nullptr) {
        // Concurrent mode: route through the stage pair so bucket
        // traffic takes node locks and stash inserts batch by shard
        // (fetchPath counts the path read and the bucket reads).
        static thread_local std::vector<FetchedBlock> buf;
        if (buf.size() < maxPathBlocks()) {
            // PRORAM_LINT_ALLOW(hot-alloc): thread-local, sized once.
            buf.resize(maxPathBlocks());
        }
        const std::size_t n = fetchPath(leaf, buf.data());
        absorbPath(buf.data(), n);
        return;
    }
    PRORAM_TRACE_SCOPE_ARG("oram", "readPath", "leaf", leaf);
    ++pathReads_;
    const std::uint32_t z = tree_.z();
    for (Level level{0}; level <= tree_.leafLevel(); ++level) {
        const TreeIdx node = tree_.nodeOnPath(leaf, level);
        std::uint32_t extracted = 0;
        if (tree_.occupancy(node) != 0) {
            for (std::uint32_t i = 0; i < z; ++i) {
                const BlockId id = tree_.slotId(node, i);
                if (id == kInvalidBlock)
                    continue;
                // Interest-set probe: only blocks mapped to the
                // accessed leaf leave their bucket (the demanded
                // super block's members and pos-map blocks all map
                // there). Which block a bucket read returns is
                // client-internal metadata in the hardware design;
                // the public pattern is one read per bucket on the
                // path either way.
                // PRORAM_LINT_ALLOW(secret-branch): see above.
                if (posMap_.leafOf(id) != leaf)
                    continue;
                const bool fresh = stash_.insert(
                    id, tree_.slotData(node, i), leaf);
                panic_if(!fresh, "block ", id,
                         " duplicated between tree and stash");
                tree_.clearSlot(node, i);
                ++extracted;
            }
        }
        noteBucketRead(node, extracted);
    }
}

// Thread-safety escape: dual serial/concurrent body - the per-level
// guard is conditionally empty in serial mode, a shape the analysis
// cannot model. The locking contract (node locks only, one at a
// time) is documented in scheme.hh and rank-checked in Debug builds.
PRORAM_OBLIVIOUS PRORAM_HOT std::size_t
RingOram::fetchPath(Leaf leaf, FetchedBlock *out)
    PRORAM_NO_THREAD_SAFETY_ANALYSIS
{
    // Concurrent-pipeline fetch: the claimed blocks on the path (the
    // in-flight interest set - exactly the blocks stage 1 claimed)
    // move to the caller's buffer under per-node locks; everything
    // else stays in place. Claim-based selection instead of the
    // serial leaf probe keeps the stage free of position-map reads
    // (those are meta-locked); the two pick the same blocks because a
    // claim is only ever taken on blocks mapped to a leaf the claimer
    // is about to read. Every kResortPeriod-th fetch extracts in full
    // so tree-resident blocks keep cycling through the stash and the
    // scheduled evictions can re-sort them (Ring's eviction pass
    // rewrites paths from the stash, so placement flux must stay
    // alive); the cadence is a function of the public fetch ordinal
    // only.
    PRORAM_TRACE_SCOPE_ARG("oram", "readPath", "leaf", leaf);
    ++pathReads_;
    const std::uint64_t seq =
        fetchSeq_.fetch_add(1, std::memory_order_relaxed);
    const bool resort =
        (seq * 0x9E3779B97F4A7C15ULL >> 32) % kResortPeriod == 0;
    const std::uint32_t z = tree_.z();
    std::size_t n = 0;
    if (cache_ != nullptr) {
        cache_->noteAcquisitions(tree_.levels() + 1);
        if (cache_->windowEnabled()) {
            cache_->noteWindowTouches(std::min<std::uint64_t>(
                cache_->windowLevels(), tree_.levels() + 1));
        }
    }
    const bool skim =
        !resort && cache_ != nullptr && claimFilter_ != nullptr;
    for (Level level{0}; level <= tree_.leafLevel(); ++level) {
        const TreeIdx node = tree_.nodeOnPath(leaf, level);
        const util::ScopedLock guard =
            cache_ != nullptr ? cache_->lockNodeFast(node)
                              : util::ScopedLock();
        std::uint32_t extracted = 0;
        if (bucket_ops::occupancy(cache_, tree_, node) != 0) {
            for (std::uint32_t i = 0; i < z; ++i) {
                const BlockId id =
                    bucket_ops::slotId(cache_, tree_, node, i);
                if (id == kInvalidBlock)
                    continue;
                // The claim probe decides only whether the block
                // transits the stash or stays put - controller-
                // internal state; the observable bucket sequence is
                // this path's L+1 nodes either way.
                // PRORAM_LINT_ALLOW(secret-branch): see above.
                if (skim && claimFilter_ != nullptr &&
                    claimFilter_[id.value()].load(
                        std::memory_order_relaxed) == 0) {
                    continue; // unclaimed: stays on its mapped path
                }
                out[n++] = FetchedBlock{
                    id, bucket_ops::slotData(cache_, tree_, node, i)};
                bucket_ops::clearSlot(cache_, tree_, node, i);
                ++extracted;
            }
        }
        noteBucketRead(node, extracted);
    }
    return n;
}

PRORAM_OBLIVIOUS PRORAM_HOT void
RingOram::writePath(Leaf leaf)
{
    if (cache_ != nullptr) {
        // Concurrent mode: the access count and schedule live behind
        // the stage interface.
        evictPath(leaf);
        return;
    }
    // Ring ORAM writes nothing on the demand path: the access is
    // counted and every A-th one triggers the scheduled eviction on
    // the next reverse-lexicographic path. @p leaf is public either
    // way; using it only for the trace keeps the write schedule fully
    // demand-independent.
    PRORAM_TRACE_SCOPE_ARG("oram", "writePath", "leaf", leaf);
    const std::uint64_t seq =
        accessSeq_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (seq % a_ == 0) {
        runScheduledEviction();
        return;
    }
    stash_.sampleOccupancy();
}

PRORAM_OBLIVIOUS PRORAM_HOT void
RingOram::evictClassify(Leaf leaf)
{
    // Greedy counting-sort classification against the eviction path -
    // the same kernel and placement policy as Path ORAM, but @p leaf
    // comes from the reverse-lexicographic schedule, never from the
    // demand sequence. Serial mode only (member scratch).
    const std::uint32_t levels = tree_.levels();
    const std::size_t slots = stash_.slotCount();
    reserveScratch(slots);
    {
        PRORAM_TRACE_SCOPE_ARG("evict", "classify", "slots", slots);
        evict::classifyLevels(stash_.leafLane(), slots, leaf, levels,
                              levelScratch_.data());
    }

    const BlockId *ids = stash_.idLane();
    const Leaf *leaves = stash_.leafLane();
    const std::uint64_t *payloads = stash_.dataLane();
    for (std::uint32_t l = 0; l <= levels; ++l)
        histScratch_[l] = 0;
    for (std::size_t i = 0; i < slots; ++i) {
        if (ids[i] == kInvalidBlock)
            continue;
        panic_if(leaves[i] == kInvalidLeaf, "stash block ", ids[i],
                 " has no leaf");
        ++histScratch_[levelScratch_[i]];
    }
    std::uint32_t offset = 0;
    for (std::uint32_t l = levels + 1; l-- > 0;) {
        levelStartScratch_[l] = offset;
        levelCursorScratch_[l] = offset;
        offset += histScratch_[l];
    }
    for (std::size_t i = 0; i < slots; ++i) {
        if (ids[i] == kInvalidBlock)
            continue;
        sortedScratch_[levelCursorScratch_[levelScratch_[i]]++] =
            Evictable{ids[i], payloads[i]};
    }
}

PRORAM_OBLIVIOUS PRORAM_HOT void
RingOram::evictWriteBack(Leaf leaf)
{
    // Fill the eviction path's buckets greedily from the leaf upward
    // (the scheduled rewrite); unplaced deeper blocks stay pooled and
    // may still land closer to the root. Serial mode only.
    PRORAM_TRACE_SCOPE_ARG("evict", "scatterFill", "leaf", leaf);
    const std::uint32_t levels = tree_.levels();
    poolScratch_.clear();
    for (std::uint32_t l = levels + 1; l-- > 0;) {
        const std::uint32_t start = levelStartScratch_[l];
        const std::uint32_t end = start + histScratch_[l];
        for (std::uint32_t s = start; s < end; ++s) {
            // PRORAM_LINT_ALLOW(hot-alloc): capacity pre-reserved by
            // reserveScratch; push_back never grows in steady state.
            poolScratch_.push_back(sortedScratch_[s]);
        }
        const TreeIdx node = tree_.nodeOnPath(leaf, Level{l});
        while (!poolScratch_.empty() && tree_.freeSlots(node) != 0) {
            const Evictable ev = poolScratch_.back();
            poolScratch_.pop_back();
            tree_.tryPlace(node, ev.id, ev.data);
            const bool erased = stash_.erase(ev.id);
            assert(erased && "eligible block vanished from stash");
            (void)erased;
        }
    }
    stash_.sampleOccupancy();
}

PRORAM_OBLIVIOUS PRORAM_HOT void
RingOram::evictPath(Leaf leaf)
{
    // Concurrent access hook: @p leaf (the demand path) is public but
    // unused - Ring's tree writes follow the reverse-lexicographic
    // schedule only. Counts one access; every A-th runs the sharded
    // scheduled eviction.
    panic_if(cache_ == nullptr, "evictPath requires concurrent mode");
    (void)leaf;
    const std::uint64_t seq =
        accessSeq_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (seq % a_ == 0) {
        runScheduledEvictionConcurrent();
        return;
    }
    stash_.sampleOccupancy();
}

PRORAM_OBLIVIOUS Leaf
RingOram::runScheduledEviction()
{
    // Serial scheduled eviction: extract every real block on the
    // g-th reverse-lexicographic path into the stash (the rewrite
    // reads the whole path - resetting the read counters models the
    // fresh permutation the real rewrite installs), then greedily
    // write the path back from the stash.
    const Leaf ev = nextEvictionLeaf();
    PRORAM_TRACE_SCOPE_ARG("evict", "ringScheduled", "leaf", ev);
    ++pathReads_;
    const std::uint32_t z = tree_.z();
    for (Level level{0}; level <= tree_.leafLevel(); ++level) {
        const TreeIdx node = tree_.nodeOnPath(ev, level);
        readCount_[node.value()] = 0;
        if (tree_.occupancy(node) == 0)
            continue;
        for (std::uint32_t i = 0; i < z; ++i) {
            const BlockId id = tree_.slotId(node, i);
            if (id == kInvalidBlock)
                continue;
            const bool fresh = stash_.insert(id, tree_.slotData(node, i),
                                             posMap_.leafOf(id));
            panic_if(!fresh, "block ", id,
                     " duplicated between tree and stash");
            tree_.clearSlot(node, i);
        }
    }
    evictClassify(ev);
    evictWriteBack(ev);
    return ev;
}

PRORAM_OBLIVIOUS PRORAM_HOT Leaf
RingOram::runScheduledEvictionConcurrent()
{
    // Sharded scheduled eviction (concurrent mode): the Path ORAM
    // two-phase discipline (DESIGN.md Sec. 13) over the scheduled
    // path - per-shard classification into thread-local scratch, then
    // bucket fill leaf upward under ONE node hold per level with
    // per-candidate shard revalidation. Unlike Path, every level's
    // node lock is taken even with an empty candidate pool: the
    // rewrite resets the bucket's read counter, and the reset must
    // happen under the node hold. No prior path extraction - the
    // fetch-stage resort keeps tree-resident blocks cycling through
    // the stash instead.
    const Leaf leaf = nextEvictionLeaf();
    PRORAM_TRACE_SCOPE_ARG("evict", "ringScheduled", "leaf", leaf);
    ++pathReads_;

    struct Scratch
    {
        std::vector<std::uint32_t> levels;
        std::vector<BlockId> cand;
        std::vector<std::uint32_t> candLevel;
        std::vector<std::uint32_t> hist;
        std::vector<std::uint32_t> startAt;
        std::vector<std::uint32_t> cursor;
        std::vector<BlockId> sorted;
        std::vector<BlockId> pool;
        std::vector<BlockId> keep;
    };
    static thread_local Scratch sc;

    const std::uint32_t levels = tree_.levels();
    const std::uint32_t level_slots = levels + 2;
    if (sc.hist.size() < level_slots) {
        // PRORAM_LINT_ALLOW(hot-alloc): thread-local, sized once.
        sc.hist.resize(level_slots);
        sc.startAt.resize(level_slots);
        // PRORAM_LINT_ALLOW(hot-alloc): thread-local, sized once.
        sc.cursor.resize(level_slots);
    }

    // Phase 1: per-shard classification sweep against the scheduled
    // path (candidates are hints; see PathOram::evictPath).
    std::uint64_t shard_locks = 0;
    sc.cand.clear();
    sc.candLevel.clear();
    const std::uint32_t shards = stash_.shardCount();
    for (std::uint32_t s = 0; s < shards; ++s) {
        if (stash_.liveCount(s) == 0)
            continue;
        const util::ScopedLock lk = stash_.lockShardFast(s);
        ++shard_locks;
        const std::size_t slots = stash_.slotCount(s);
        if (sc.levels.size() < slots) {
            // PRORAM_LINT_ALLOW(hot-alloc): thread-local, grows to
            // the largest shard once.
            sc.levels.resize(slots);
        }
        evict::classifyLevels(stash_.leafLane(s), slots, leaf, levels,
                              sc.levels.data());
        const BlockId *ids = stash_.idLane(s);
        const std::uint8_t *pins = stash_.pinnedLane(s);
        for (std::size_t i = 0; i < slots; ++i) {
            if (ids[i] == kInvalidBlock)
                continue;
            if (pins[i] != 0)
                continue;
            // PRORAM_LINT_ALLOW(hot-alloc): thread-local; capacity
            // reaches steady state after the first paths.
            sc.cand.push_back(ids[i]);
            // PRORAM_LINT_ALLOW(hot-alloc): see above.
            sc.candLevel.push_back(sc.levels[i]);
        }
    }

    for (std::uint32_t l = 0; l <= levels; ++l)
        sc.hist[l] = 0;
    const std::size_t ncand = sc.cand.size();
    for (std::size_t i = 0; i < ncand; ++i)
        ++sc.hist[sc.candLevel[i]];
    std::uint32_t offset = 0;
    for (std::uint32_t l = levels + 1; l-- > 0;) {
        sc.startAt[l] = offset;
        sc.cursor[l] = offset;
        offset += sc.hist[l];
    }
    if (sc.sorted.size() < ncand) {
        // PRORAM_LINT_ALLOW(hot-alloc): thread-local, steady state.
        sc.sorted.resize(ncand);
    }
    for (std::size_t i = 0; i < ncand; ++i)
        sc.sorted[sc.cursor[sc.candLevel[i]]++] = sc.cand[i];

    // Phase 2: fill leaf upward; counter reset + fill under one node
    // hold per level.
    std::uint64_t node_locks = 0;
    std::uint64_t window_holds = 0;
    sc.pool.clear();
    for (std::uint32_t l = levels + 1; l-- > 0;) {
        const std::uint32_t cstart = sc.startAt[l];
        const std::uint32_t cend = cstart + sc.hist[l];
        for (std::uint32_t c = cstart; c < cend; ++c) {
            // PRORAM_LINT_ALLOW(hot-alloc): thread-local steady state.
            sc.pool.push_back(sc.sorted[c]);
        }
        const TreeIdx node = tree_.nodeOnPath(leaf, Level{l});
        const util::ScopedLock guard = cache_->lockNodeFast(node);
        ++node_locks;
        window_holds += cache_->windowed(node) ? 1 : 0;
        readCount_[node.value()] = 0;
        std::uint32_t free_now =
            bucket_ops::freeSlots(cache_, tree_, node);
        if (free_now == 0 || sc.pool.empty())
            continue;
        sc.keep.clear();
        while (!sc.pool.empty()) {
            const BlockId id = sc.pool.back();
            sc.pool.pop_back();
            if (free_now == 0) {
                // PRORAM_LINT_ALLOW(hot-alloc): thread-local.
                sc.keep.push_back(id);
                continue;
            }
            const std::uint32_t s = stash_.shardOf(id);
            const util::ScopedLock sl = stash_.lockShardFast(s);
            ++shard_locks;
            Leaf cur = kInvalidLeaf;
            std::uint64_t payload = 0;
            bool pinned = false;
            const bool resident =
                stash_.lookupLocked(s, id, &cur, &payload, &pinned);
            const bool evictable = resident && !pinned;
            if (!evictable)
                continue; // claimed or evicted since classification
            const std::uint32_t deepest =
                tree_.commonLevel(cur, leaf).value();
            if (deepest < l) {
                // PRORAM_LINT_ALLOW(hot-alloc): thread-local.
                sc.keep.push_back(id);
                continue;
            }
            const bool placed =
                bucket_ops::tryPlace(cache_, tree_, node, id, payload);
            panic_if(!placed, "bucket with ", free_now,
                     " free slots refused a placement");
            stash_.eraseLocked(s, id);
            --free_now;
        }
        std::swap(sc.pool, sc.keep);
    }
    cache_->noteAcquisitions(node_locks);
    cache_->noteWindowTouches(window_holds);
    stash_.noteShardAcquisitions(shard_locks);
    stash_.sampleOccupancy();
    return leaf;
}

PRORAM_OBLIVIOUS Leaf
RingOram::dummyAccess()
{
    // Background eviction: run the next scheduled eviction pass
    // immediately, off schedule. The pass is pure eviction progress
    // (nothing is remapped), so stash occupancy cannot increase; the
    // returned leaf is the schedule's next reverse-lex path, public
    // by construction.
    PRORAM_TRACE_SCOPE("dummy", "ringBgEvict");
    return cache_ != nullptr ? runScheduledEvictionConcurrent()
                             : runScheduledEviction();
}

SchemeCounters
RingOram::schemeCounters() const
{
    SchemeCounters c;
    c.bucketReads = bucketReads_.value();
    c.dummyReads = dummyReads_.value();
    c.earlyReshuffles = earlyReshuffles_.value();
    c.scheduledEvictions =
        evictionSeq_.load(std::memory_order_relaxed);
    return c;
}

} // namespace proram
