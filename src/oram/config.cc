#include "oram/config.hh"

#include <cmath>

#include "util/bits.hh"
#include "util/logging.hh"

namespace proram
{

std::uint32_t
OramConfig::posMapFanout() const
{
    // Each position-map block stores blockBytes/posMapEntryBytes leaf
    // labels (the paper: 128 B block => 32 labels of ~27 bits + flags).
    return blockBytes / posMapEntryBytes;
}

std::uint32_t
OramConfig::posMapLevels() const
{
    const std::uint32_t fanout = posMapFanout();
    std::uint64_t count = numDataBlocks;
    std::uint32_t levels = 0;
    // Keep adding position-map levels until the next table fits
    // on-chip, capped by the configured hierarchy count (the data ORAM
    // is hierarchy #1).
    while (levels + 1 < hierarchies && count > fanout) {
        count = divCeil(count, fanout);
        ++levels;
    }
    return levels;
}

std::uint64_t
OramConfig::onChipPosMapEntries() const
{
    const std::uint32_t fanout = posMapFanout();
    std::uint64_t count = numDataBlocks;
    for (std::uint32_t l = 0; l < posMapLevels(); ++l)
        count = divCeil(count, fanout);
    return count;
}

std::uint64_t
OramConfig::numTotalBlocks() const
{
    const std::uint32_t fanout = posMapFanout();
    std::uint64_t total = numDataBlocks;
    std::uint64_t count = numDataBlocks;
    for (std::uint32_t l = 0; l < posMapLevels(); ++l) {
        count = divCeil(count, fanout);
        total += count;
    }
    return total;
}

std::uint32_t
OramConfig::levels() const
{
    // 2^L leaves with L = ceil(lg(totalBlocks)) - 2: two-to-four
    // blocks per leaf, i.e. ~1/Z to ~2/Z slot utilization for Z=3 -
    // the operating point Ren et al. showed viable with background
    // eviction, and high enough that super blocks exert real stash
    // pressure (the effect Figs. 7/12 measure).
    const std::uint64_t total = numTotalBlocks();
    const unsigned lg = log2Ceil(total < 4 ? 4 : total);
    return lg >= 2 ? lg - 2 : 1;
}

std::uint32_t
OramConfig::effectiveTimingLevels() const
{
    return timingLevels != 0 ? timingLevels : levels();
}

Cycles
OramConfig::pathAccessCycles() const
{
    const std::uint64_t buckets = effectiveTimingLevels() + 1;
    const double bytes_moved =
        2.0 * static_cast<double>(buckets) * z * blockBytes;
    return pathOverheadCycles +
           static_cast<Cycles>(std::ceil(bytes_moved / dramBytesPerCycle));
}

void
OramConfig::validate() const
{
    fatal_if(numDataBlocks < 8, "ORAM needs at least 8 data blocks");
    fatal_if(blockBytes == 0 || !isPowerOf2(blockBytes),
             "ORAM block size must be a power of two");
    fatal_if(z == 0, "bucket size Z must be at least 1");
    fatal_if(hierarchies == 0, "need at least the data ORAM hierarchy");
    fatal_if(posMapEntryBytes == 0 || blockBytes < posMapEntryBytes,
             "position-map entry must fit in a block");
    fatal_if(!isPowerOf2(posMapFanout()),
             "position-map fanout must be a power of two");
    fatal_if(dramBytesPerCycle <= 0.0, "DRAM bandwidth must be positive");
    fatal_if(stashCapacity == 0, "stash capacity must be positive");
    arena.validate();
}

} // namespace proram
