#include "oram/config.hh"

#include <cmath>
#include <cstdlib>

#include "util/bits.hh"
#include "util/logging.hh"

namespace proram
{

const char *
schemeKindName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::Path:
        return "path";
      case SchemeKind::Ring:
        return "ring";
      case SchemeKind::Default:
        return "default";
    }
    return "unknown";
}

SchemeKind
parseSchemeKind(const std::string &name)
{
    if (name == "path")
        return SchemeKind::Path;
    if (name == "ring")
        return SchemeKind::Ring;
    fatal("unknown ORAM scheme '", name, "' (want path or ring)");
}

SchemeKind
OramConfig::resolvedScheme() const
{
    if (scheme != SchemeKind::Default)
        return scheme;
    const char *env = std::getenv("PRORAM_SCHEME");
    return env != nullptr ? parseSchemeKind(env) : SchemeKind::Path;
}

namespace
{

std::uint32_t
resolveRingKnob(std::uint32_t configured, const char *env_name,
                std::uint32_t fallback, std::uint32_t max)
{
    if (configured != 0)
        return configured;
    const char *env = std::getenv(env_name);
    if (env == nullptr)
        return fallback;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    fatal_if(end == env || *end != '\0' || v == 0 || v > max,
             env_name, ": invalid value '", env, "' (want 1..", max,
             ")");
    return static_cast<std::uint32_t>(v);
}

} // namespace

std::uint32_t
OramConfig::resolvedRingS() const
{
    // Capped at 255: the per-bucket read counters are one byte each
    // so paper-scale trees pay 1 B/bucket of metadata.
    const std::uint32_t fallback = 2 * z < 255 ? 2 * z : 255;
    return resolveRingKnob(ringS, "PRORAM_RING_S", fallback, 255);
}

std::uint32_t
OramConfig::resolvedRingA() const
{
    return resolveRingKnob(ringA, "PRORAM_RING_A", 2, 1U << 16);
}

std::uint32_t
OramConfig::posMapFanout() const
{
    // Each position-map block stores blockBytes/posMapEntryBytes leaf
    // labels (the paper: 128 B block => 32 labels of ~27 bits + flags).
    return blockBytes / posMapEntryBytes;
}

std::uint32_t
OramConfig::posMapLevels() const
{
    const std::uint32_t fanout = posMapFanout();
    std::uint64_t count = numDataBlocks;
    std::uint32_t levels = 0;
    // Keep adding position-map levels until the next table fits
    // on-chip, capped by the configured hierarchy count (the data ORAM
    // is hierarchy #1).
    while (levels + 1 < hierarchies && count > fanout) {
        count = divCeil(count, fanout);
        ++levels;
    }
    return levels;
}

std::uint64_t
OramConfig::onChipPosMapEntries() const
{
    const std::uint32_t fanout = posMapFanout();
    std::uint64_t count = numDataBlocks;
    for (std::uint32_t l = 0; l < posMapLevels(); ++l)
        count = divCeil(count, fanout);
    return count;
}

std::uint64_t
OramConfig::numTotalBlocks() const
{
    const std::uint32_t fanout = posMapFanout();
    std::uint64_t total = numDataBlocks;
    std::uint64_t count = numDataBlocks;
    for (std::uint32_t l = 0; l < posMapLevels(); ++l) {
        count = divCeil(count, fanout);
        total += count;
    }
    return total;
}

std::uint32_t
OramConfig::levels() const
{
    // 2^L leaves with L = ceil(lg(totalBlocks)) - 2: two-to-four
    // blocks per leaf, i.e. ~1/Z to ~2/Z slot utilization for Z=3 -
    // the operating point Ren et al. showed viable with background
    // eviction, and high enough that super blocks exert real stash
    // pressure (the effect Figs. 7/12 measure).
    const std::uint64_t total = numTotalBlocks();
    const unsigned lg = log2Ceil(total < 4 ? 4 : total);
    return lg >= 2 ? lg - 2 : 1;
}

std::uint32_t
OramConfig::effectiveTimingLevels() const
{
    return timingLevels != 0 ? timingLevels : levels();
}

Cycles
OramConfig::pathAccessCycles() const
{
    const std::uint64_t buckets = effectiveTimingLevels() + 1;
    const double bytes_moved =
        2.0 * static_cast<double>(buckets) * z * blockBytes;
    return pathOverheadCycles +
           static_cast<Cycles>(std::ceil(bytes_moved / dramBytesPerCycle));
}

void
OramConfig::validate() const
{
    fatal_if(numDataBlocks < 8, "ORAM needs at least 8 data blocks");
    fatal_if(blockBytes == 0 || !isPowerOf2(blockBytes),
             "ORAM block size must be a power of two");
    fatal_if(z == 0, "bucket size Z must be at least 1");
    fatal_if(hierarchies == 0, "need at least the data ORAM hierarchy");
    fatal_if(posMapEntryBytes == 0 || blockBytes < posMapEntryBytes,
             "position-map entry must fit in a block");
    fatal_if(!isPowerOf2(posMapFanout()),
             "position-map fanout must be a power of two");
    fatal_if(dramBytesPerCycle <= 0.0, "DRAM bandwidth must be positive");
    fatal_if(stashCapacity == 0, "stash capacity must be positive");
    fatal_if(ringS > 255, "ring dummy budget S out of range (max 255)");
    fatal_if(ringA > (1U << 16), "ring eviction rate A out of range");
    arena.validate();
}

} // namespace proram
