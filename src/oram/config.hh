/**
 * @file
 * Path ORAM configuration and derived geometry/timing.
 *
 * Functional capacity (numDataBlocks) is decoupled from the *timing*
 * level count: the paper simulates an 8 GB ORAM (2^26 blocks), which is
 * too large to hold functionally, so experiments run smaller trees
 * while (optionally) billing latency for the full-size configuration.
 * See DESIGN.md Sec. 2 for the substitution argument.
 */

#ifndef PRORAM_ORAM_CONFIG_HH
#define PRORAM_ORAM_CONFIG_HH

#include <cstdint>
#include <string>

#include "mem/arena.hh"
#include "util/types.hh"

namespace proram
{

/**
 * Which tree protocol runs under the controller (the *protocol* axis;
 * orthogonal to sim/MemScheme, which selects the super-block policy).
 */
enum class SchemeKind : std::uint8_t
{
    Default, ///< resolve from $PRORAM_SCHEME, falling back to Path
    Path,    ///< Path ORAM (Stefanov et al., CCS'13)
    Ring,    ///< Ring ORAM (Ren et al., USENIX Sec'15)
};

/** Printable protocol name ("path" / "ring"). */
const char *schemeKindName(SchemeKind kind);

/** Parse a PRORAM_SCHEME value; throws SimFatal on unknown names. */
SchemeKind parseSchemeKind(const std::string &name);

/** Parameters mirroring Table 1 of the paper. */
struct OramConfig
{
    /** Number of logical data blocks (working-set capacity). */
    std::uint64_t numDataBlocks = 1ULL << 16;
    /** Block (= cache line) size in bytes. */
    std::uint32_t blockBytes = 128;
    /** Blocks per bucket. */
    std::uint32_t z = 3;
    /** Stash capacity in blocks (excluding the in-flight path). */
    std::uint32_t stashCapacity = 100;
    /**
     * Total number of ORAM hierarchies (data ORAM + position-map
     * ORAMs). The final position-map level is kept on-chip.
     */
    std::uint32_t hierarchies = 4;
    /** Bytes of leaf-label payload per position-map entry. */
    std::uint32_t posMapEntryBytes = 4;
    /** On-chip position-map-block cache (PLB) entries. */
    std::uint32_t plbEntries = 64;

    /** DRAM bus bandwidth in bytes per cycle (16 GB/s @ 1 GHz). */
    double dramBytesPerCycle = 16.0;
    /** Fixed per-path overhead: DRAM latency + decrypt pipeline. */
    Cycles pathOverheadCycles{100};

    /**
     * If nonzero, bill path latency as if the tree had this many
     * levels (full-size configuration); 0 = use functional levels.
     */
    std::uint32_t timingLevels = 0;

    /** RNG seed for leaf assignment. */
    std::uint64_t seed = 1;

    /**
     * Slot-arena storage backend for the binary tree (mem/arena.hh,
     * DESIGN.md Sec. 12). The default resolves $PRORAM_ARENA and
     * falls back to the eager dense layout; every backend is
     * functionally bit-identical, they differ only in memory cost.
     */
    ArenaOptions arena{};

    /**
     * Skip the eager placement pass of initialize(): blocks start
     * "virtually resident" with payload 0 and are created in the
     * stash on first access. Payload-equivalent to eager
     * initialization but not stat-identical (the tree starts empty),
     * so it is a separate knob from the arena backend; required to
     * run paper-scale (2^26-block) trees functionally, where eager
     * placement would materialize nearly every chunk.
     */
    bool lazyInit = false;

    /**
     * Tree protocol behind the OramScheme interface (oram/scheme.hh).
     * Default resolves $PRORAM_SCHEME={path,ring} and falls back to
     * Path ORAM. Both protocols are payload-equivalent; they differ in
     * bucket traffic and eviction scheduling, so stats and goldens are
     * pinned per scheme.
     */
    SchemeKind scheme = SchemeKind::Default;

    /**
     * Ring ORAM only: per-bucket dummy-read budget S. A bucket that
     * has served this many one-block reads since its last shuffle is
     * early-reshuffled. 0 = $PRORAM_RING_S or the built-in default
     * (2*Z). Ignored by Path ORAM.
     */
    std::uint32_t ringS = 0;

    /**
     * Ring ORAM only: eviction rate A - one deterministic
     * reverse-lexicographic eviction pass per A accesses. 0 =
     * $PRORAM_RING_A or the built-in default (2, aggressive enough
     * for this repo's ~1/Z-utilization trees). Ignored by Path ORAM.
     */
    std::uint32_t ringA = 0;

    /** The protocol a tree will actually run with (env resolved). */
    SchemeKind resolvedScheme() const;

    /** Ring dummy-read budget S after env resolution (>= 1). */
    std::uint32_t resolvedRingS() const;

    /** Ring eviction rate A after env resolution (>= 1). */
    std::uint32_t resolvedRingA() const;

    /**
     * Levels below the root in the functional tree (root = level 0,
     * leaves = level L): chosen so the tree has ~numTotalBlocks
     * leaves / 2, i.e. utilization ~1/Z with background eviction.
     */
    std::uint32_t levels() const;

    /** Position-map entries per position-map block. */
    std::uint32_t posMapFanout() const;

    /** Blocks including position-map blocks of all tree-resident levels. */
    std::uint64_t numTotalBlocks() const;

    /** Number of position-map levels stored in the tree. */
    std::uint32_t posMapLevels() const;

    /** Entries in the final, on-chip position-map table. */
    std::uint64_t onChipPosMapEntries() const;

    /** Levels used for latency computation. */
    std::uint32_t effectiveTimingLevels() const;

    /** Latency in cycles of one full path read + write. */
    Cycles pathAccessCycles() const;

    /** Validate invariants; throws SimFatal on bad configuration. */
    void validate() const;
};

} // namespace proram

#endif // PRORAM_ORAM_CONFIG_HH
