/**
 * @file
 * Bucket accessors shared by the concrete schemes' .cc files, routed
 * through the SubtreeCache dedup window for dedicated nodes when the
 * window is enabled and falling back to the arena otherwise. Callers
 * hold the node's lock in concurrent mode (cache != nullptr); in
 * serial mode cache is null and these collapse to the plain tree
 * accessors. Internal to src/oram/ - not part of the scheme interface.
 *
 * Each accessor requires the node's lock when cache is non-null
 * (PRORAM_REQUIRES(cache->mutexFor(node))): clang's thread-safety
 * analysis verifies concurrent callers hold the node capability they
 * acquired via SubtreeCache::lockNode(Fast); serial-mode call sites
 * live in dual-mode stage bodies with documented escapes.
 */

#ifndef PRORAM_ORAM_BUCKET_OPS_HH
#define PRORAM_ORAM_BUCKET_OPS_HH

#include <cstdint>

#include "oram/subtree_cache.hh"
#include "oram/tree.hh"
#include "util/annotations.hh"

namespace proram::bucket_ops
{

inline std::uint32_t
occupancy(SubtreeCache *cache, BinaryTree &tree, TreeIdx node)
    PRORAM_REQUIRES(cache->mutexFor(node))
{
    const bool win = cache != nullptr && cache->windowed(node);
    return win ? cache->occupancy(node, tree) : tree.occupancy(node);
}

inline std::uint32_t
freeSlots(SubtreeCache *cache, BinaryTree &tree, TreeIdx node)
    PRORAM_REQUIRES(cache->mutexFor(node))
{
    const bool win = cache != nullptr && cache->windowed(node);
    return win ? cache->freeSlots(node, tree) : tree.freeSlots(node);
}

inline BlockId
slotId(SubtreeCache *cache, BinaryTree &tree, TreeIdx node,
       std::uint32_t i)
    PRORAM_REQUIRES(cache->mutexFor(node))
{
    const bool win = cache != nullptr && cache->windowed(node);
    return win ? cache->slotId(node, i, tree) : tree.slotId(node, i);
}

inline std::uint64_t
slotData(SubtreeCache *cache, BinaryTree &tree, TreeIdx node,
         std::uint32_t i)
    PRORAM_REQUIRES(cache->mutexFor(node))
{
    const bool win = cache != nullptr && cache->windowed(node);
    return win ? cache->slotData(node, i, tree) : tree.slotData(node, i);
}

inline void
clearSlot(SubtreeCache *cache, BinaryTree &tree, TreeIdx node,
          std::uint32_t i)
    PRORAM_REQUIRES(cache->mutexFor(node))
{
    const bool win = cache != nullptr && cache->windowed(node);
    if (win)
        cache->clearSlot(node, i, tree);
    else
        tree.clearSlot(node, i);
}

inline bool
tryPlace(SubtreeCache *cache, BinaryTree &tree, TreeIdx node,
         BlockId id, std::uint64_t data)
    PRORAM_REQUIRES(cache->mutexFor(node))
{
    const bool win = cache != nullptr && cache->windowed(node);
    return win ? cache->tryPlace(node, id, data, tree)
               : tree.tryPlace(node, id, data);
}

} // namespace proram::bucket_ops

#endif // PRORAM_ORAM_BUCKET_OPS_HH
