#include "oram/tree.hh"

#include <bit>

#include "util/logging.hh"

namespace proram
{

std::uint32_t
Bucket::occupancy() const
{
    std::uint32_t n = 0;
    for (const Slot &s : slots_) {
        if (!s.isDummy())
            ++n;
    }
    return n;
}

Slot *
Bucket::freeSlot()
{
    if (free_ == 0)
        return nullptr;
    for (Slot &s : slots_) {
        if (s.isDummy()) {
            --free_;
            return &s;
        }
    }
    panic("bucket free-slot count ", free_, " but no dummy slot");
}

void
Bucket::clearSlot(std::uint32_t i)
{
    Slot &s = slots_[i];
    if (!s.isDummy())
        ++free_;
    s.id = kInvalidBlock;
    s.data = 0;
}

BinaryTree::BinaryTree(std::uint32_t levels, std::uint32_t z)
    : levels_(levels), z_(z)
{
    fatal_if(levels > 40, "tree too deep to simulate functionally");
    buckets_.assign((2ULL << levels) - 1, Bucket(z));
}

std::uint64_t
BinaryTree::nodeOnPath(Leaf leaf, std::uint32_t level) const
{
    panic_if(leaf >= numLeaves(), "leaf ", leaf, " out of range");
    panic_if(level > levels_, "level ", level, " out of range");
    // Heap level l spans indices [2^l - 1, 2^(l+1) - 2] and the path
    // node within it is indexed by the top `level` bits of the leaf
    // label, so the bit-by-bit walk collapses to one shift-and-add.
    return ((1ULL << level) - 1) +
           (static_cast<std::uint64_t>(leaf) >> (levels_ - level));
}

std::uint32_t
BinaryTree::commonLevel(Leaf a, Leaf b) const
{
    // Paths diverge at the highest differing leaf bit: the shared
    // depth is levels_ minus the XOR's bit width (equal labels share
    // the whole path).
    const std::uint64_t diff =
        static_cast<std::uint64_t>(a) ^ static_cast<std::uint64_t>(b);
    return levels_ - static_cast<std::uint32_t>(std::bit_width(diff));
}

std::uint64_t
BinaryTree::countRealBlocks() const
{
    std::uint64_t n = 0;
    for (const Bucket &b : buckets_)
        n += b.occupancy();
    return n;
}

} // namespace proram
