#include "oram/tree.hh"

#include <bit>

#include "util/logging.hh"

namespace proram
{

std::uint32_t
BucketRef::occupancyScan() const
{
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < tree_->z_; ++i) {
        if (!isDummy(i))
            ++n;
    }
    return n;
}

BinaryTree::BinaryTree(std::uint32_t levels, std::uint32_t z)
    : levels_(levels), z_(z)
{
    fatal_if(levels > 40, "tree too deep to simulate functionally");
    numBuckets_ = (2ULL << levels) - 1;
    ids_.assign(numBuckets_ * z_, kInvalidBlock);
    data_.assign(numBuckets_ * z_, 0);
    free_.assign(numBuckets_, z_);
}

TreeIdx
BinaryTree::nodeOnPath(Leaf leaf, Level level) const
{
    panic_if(leaf.value() >= numLeaves(), "leaf ", leaf,
             " out of range");
    panic_if(level.value() > levels_, "level ", level, " out of range");
    // Heap level l spans indices [2^l - 1, 2^(l+1) - 2] and the path
    // node within it is indexed by the top `level` bits of the leaf
    // label, so the bit-by-bit walk collapses to one shift-and-add.
    return TreeIdx{((1ULL << level.value()) - 1) +
                   (static_cast<std::uint64_t>(leaf.value()) >>
                    (levels_ - level.value()))};
}

bool
BinaryTree::tryPlace(TreeIdx node, BlockId id, std::uint64_t data)
{
    if (free_[node.value()] == 0)
        return false;
    const std::uint64_t base = node.value() * z_;
    for (std::uint32_t i = 0; i < z_; ++i) {
        if (ids_[base + i] == kInvalidBlock) {
            ids_[base + i] = id;
            data_[base + i] = data;
            --free_[node.value()];
            return true;
        }
    }
    panic("bucket free-slot count ", free_[node.value()],
          " but no dummy slot");
}

void
BinaryTree::clearSlot(TreeIdx node, std::uint32_t i)
{
    const std::uint64_t at = node.value() * z_ + i;
    if (ids_[at] != kInvalidBlock)
        ++free_[node.value()];
    ids_[at] = kInvalidBlock;
    data_[at] = 0;
}

Level
BinaryTree::commonLevel(Leaf a, Leaf b) const
{
    // Paths diverge at the highest differing leaf bit: the shared
    // depth is levels_ minus the XOR's bit width (equal labels share
    // the whole path).
    const std::uint32_t diff = a ^ b;
    return Level{levels_ -
                 static_cast<std::uint32_t>(std::bit_width(diff))};
}

std::uint64_t
BinaryTree::countRealBlocks() const
{
    std::uint64_t n = 0;
    for (BlockId id : ids_) {
        if (id != kInvalidBlock)
            ++n;
    }
    return n;
}

} // namespace proram
