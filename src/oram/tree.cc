#include "oram/tree.hh"

#include <bit>

#include "util/logging.hh"

namespace proram
{

std::uint32_t
BucketRef::occupancyScan() const
{
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < tree_->z_; ++i) {
        if (!isDummy(i))
            ++n;
    }
    return n;
}

BinaryTree::BinaryTree(std::uint32_t levels, std::uint32_t z,
                       const ArenaOptions &arena)
    : levels_(levels), z_(z)
{
    fatal_if(levels > 40, "tree too deep to simulate functionally");
    numBuckets_ = (2ULL << levels) - 1;
    arena_ = ArenaBackend::make(arena, numBuckets_, z_);
    chunkShift_ = arena_->chunkShift();
    chunkMask_ = arena_->chunkBuckets() - 1;
}

TreeIdx
BinaryTree::nodeOnPath(Leaf leaf, Level level) const
{
    panic_if(leaf.value() >= numLeaves(), "leaf ", leaf,
             " out of range");
    panic_if(level.value() > levels_, "level ", level, " out of range");
    // Heap level l spans indices [2^l - 1, 2^(l+1) - 2] and the path
    // node within it is indexed by the top `level` bits of the leaf
    // label, so the bit-by-bit walk collapses to one shift-and-add.
    return TreeIdx{((1ULL << level.value()) - 1) +
                   (static_cast<std::uint64_t>(leaf.value()) >>
                    (levels_ - level.value()))};
}

bool
BinaryTree::tryPlace(TreeIdx node, BlockId id, std::uint64_t data)
{
    const std::uint64_t n = node.value();
    ArenaBackend::Lanes l = arena_->lanes(n >> chunkShift_);
    if (l.ids != nullptr && l.free[n & chunkMask_] == 0)
        return false;
    if (l.ids == nullptr) {
        // First write into an implicit chunk: the bucket is all-dummy
        // (it cannot be full), so a placement is guaranteed and the
        // materialization cost is paid by an insertion, never a read.
        l = arena_->materialize(n >> chunkShift_);
    }
    const std::uint64_t base = (n & chunkMask_) * z_;
    for (std::uint32_t i = 0; i < z_; ++i) {
        if (l.ids[base + i] == kInvalidBlock) {
            l.ids[base + i] = id;
            l.data[base + i] = data;
            --l.free[n & chunkMask_];
            return true;
        }
    }
    panic("bucket free-slot count ", l.free[n & chunkMask_],
          " but no dummy slot");
}

void
BinaryTree::clearSlot(TreeIdx node, std::uint32_t i)
{
    const std::uint64_t n = node.value();
    const ArenaBackend::Lanes l = arena_->lanes(n >> chunkShift_);
    if (l.ids == nullptr)
        return; // implicit chunk: the slot is already dummy
    const std::uint64_t at = (n & chunkMask_) * z_ + i;
    if (l.ids[at] != kInvalidBlock) {
        ++l.free[n & chunkMask_];
        l.data[at] = 0;
    }
    l.ids[at] = kInvalidBlock;
}

void
BinaryTree::storeBucket(TreeIdx node, const BlockId *ids,
                        const std::uint64_t *data,
                        std::uint32_t free_slots)
{
    const std::uint64_t n = node.value();
    if (free_slots == z_ &&
        arena_->view(n >> chunkShift_).ids == nullptr) {
        return; // all-dummy over an implicit chunk: stays implicit
    }
    const ArenaBackend::Lanes l = arena_->materialize(n >> chunkShift_);
    const std::uint64_t base = (n & chunkMask_) * z_;
    for (std::uint32_t i = 0; i < z_; ++i) {
        l.ids[base + i] = ids[i];
        l.data[base + i] = data[i];
    }
    l.free[n & chunkMask_] = free_slots;
}

BlockId &
BinaryTree::rawSlotId(TreeIdx node, std::uint32_t i)
{
    const std::uint64_t n = node.value();
    const ArenaBackend::Lanes l = arena_->materialize(n >> chunkShift_);
    return l.ids[(n & chunkMask_) * z_ + i];
}

std::uint64_t &
BinaryTree::rawSlotData(TreeIdx node, std::uint32_t i)
{
    const std::uint64_t n = node.value();
    const ArenaBackend::Lanes l = arena_->materialize(n >> chunkShift_);
    return l.data[(n & chunkMask_) * z_ + i];
}

Level
BinaryTree::commonLevel(Leaf a, Leaf b) const
{
    // Paths diverge at the highest differing leaf bit: the shared
    // depth is levels_ minus the XOR's bit width (equal labels share
    // the whole path).
    const std::uint32_t diff = a ^ b;
    return Level{levels_ -
                 static_cast<std::uint32_t>(std::bit_width(diff))};
}

std::uint64_t
BinaryTree::countRealBlocks() const
{
    std::uint64_t n = 0;
    const std::uint64_t chunk_slots =
        static_cast<std::uint64_t>(arena_->chunkBuckets()) * z_;
    for (std::uint64_t c = 0; c < arena_->numChunks(); ++c) {
        const ArenaBackend::View v = arena_->view(c);
        if (v.ids == nullptr)
            continue; // implicit chunk: all-dummy by construction
        for (std::uint64_t s = 0; s < chunk_slots; ++s) {
            if (v.ids[s] != kInvalidBlock)
                ++n;
        }
    }
    return n;
}

} // namespace proram
