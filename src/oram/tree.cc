#include "oram/tree.hh"

#include "util/logging.hh"

namespace proram
{

std::uint32_t
Bucket::occupancy() const
{
    std::uint32_t n = 0;
    for (const Slot &s : slots_) {
        if (!s.isDummy())
            ++n;
    }
    return n;
}

Slot *
Bucket::freeSlot()
{
    for (Slot &s : slots_) {
        if (s.isDummy())
            return &s;
    }
    return nullptr;
}

BinaryTree::BinaryTree(std::uint32_t levels, std::uint32_t z)
    : levels_(levels), z_(z)
{
    fatal_if(levels > 40, "tree too deep to simulate functionally");
    buckets_.assign((2ULL << levels) - 1, Bucket(z));
}

std::uint64_t
BinaryTree::nodeOnPath(Leaf leaf, std::uint32_t level) const
{
    panic_if(leaf >= numLeaves(), "leaf ", leaf, " out of range");
    panic_if(level > levels_, "level ", level, " out of range");
    // The node at `level` on path `leaf` is reached by following the
    // top `level` bits of the leaf label from the root.
    std::uint64_t node = 0;
    for (std::uint32_t l = 0; l < level; ++l) {
        const std::uint32_t bit = (leaf >> (levels_ - 1 - l)) & 1;
        node = 2 * node + 1 + bit;
    }
    return node;
}

std::uint32_t
BinaryTree::commonLevel(Leaf a, Leaf b) const
{
    std::uint32_t level = 0;
    while (level < levels_) {
        const std::uint32_t bit_a = (a >> (levels_ - 1 - level)) & 1;
        const std::uint32_t bit_b = (b >> (levels_ - 1 - level)) & 1;
        if (bit_a != bit_b)
            break;
        ++level;
    }
    return level;
}

std::uint64_t
BinaryTree::countRealBlocks() const
{
    std::uint64_t n = 0;
    for (const Bucket &b : buckets_)
        n += b.occupancy();
    return n;
}

} // namespace proram
