#include "oram/path_oram.hh"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/trace.hh"
#include "oram/bucket_ops.hh"
#include "oram/evict_kernel.hh"
#include "oram/subtree_cache.hh"
#include "util/annotations.hh"
#include "util/logging.hh"

namespace proram
{

namespace
{

// Local aliases keep the hot loops exactly as readable as the former
// file-scope accessors.

inline std::uint32_t
bucketOccupancy(SubtreeCache *cache, BinaryTree &tree, TreeIdx node)
    PRORAM_REQUIRES(cache->mutexFor(node))
{
    return bucket_ops::occupancy(cache, tree, node);
}

inline std::uint32_t
bucketFreeSlots(SubtreeCache *cache, BinaryTree &tree, TreeIdx node)
    PRORAM_REQUIRES(cache->mutexFor(node))
{
    return bucket_ops::freeSlots(cache, tree, node);
}

inline BlockId
bucketSlotId(SubtreeCache *cache, BinaryTree &tree, TreeIdx node,
             std::uint32_t i)
    PRORAM_REQUIRES(cache->mutexFor(node))
{
    return bucket_ops::slotId(cache, tree, node, i);
}

inline std::uint64_t
bucketSlotData(SubtreeCache *cache, BinaryTree &tree, TreeIdx node,
               std::uint32_t i)
    PRORAM_REQUIRES(cache->mutexFor(node))
{
    return bucket_ops::slotData(cache, tree, node, i);
}

inline void
bucketClearSlot(SubtreeCache *cache, BinaryTree &tree, TreeIdx node,
                std::uint32_t i)
    PRORAM_REQUIRES(cache->mutexFor(node))
{
    bucket_ops::clearSlot(cache, tree, node, i);
}

inline bool
bucketTryPlace(SubtreeCache *cache, BinaryTree &tree, TreeIdx node,
               BlockId id, std::uint64_t data)
    PRORAM_REQUIRES(cache->mutexFor(node))
{
    return bucket_ops::tryPlace(cache, tree, node, id, data);
}

} // namespace

PathOram::PathOram(const OramConfig &cfg, PositionMap &pos_map)
    : OramScheme(cfg, pos_map)
{
    // Pre-size every scratch buffer from the tree geometry so the
    // first accesses after construction are allocation-free too
    // (previously the per-level vectors warmed up lazily). The slot
    // bound matches the stash lanes' reserve plus one path's worth of
    // readPath growth; reserveScratch() covers the (rare) overshoot.
    const std::size_t slot_bound =
        static_cast<std::size_t>(cfg.stashCapacity) * 2 +
        static_cast<std::size_t>(tree_.levels() + 1) * tree_.z();
    reserveScratch(slot_bound);
    const std::size_t level_slots = tree_.levels() + 2;
    histScratch_.resize(level_slots, 0);
    levelStartScratch_.resize(level_slots, 0);
    levelCursorScratch_.resize(level_slots, 0);
}

void
PathOram::reserveScratch(std::size_t slots)
{
    if (levelScratch_.size() < slots)
        levelScratch_.resize(slots);
    if (sortedScratch_.size() < slots)
        sortedScratch_.resize(slots);
    if (poolScratch_.capacity() < slots)
        poolScratch_.reserve(slots);
}

void
PathOram::onEnableConcurrent()
{
    windowLevelsOnPath_ =
        cache_ != nullptr && cache_->windowEnabled()
            ? std::min<std::uint64_t>(cache_->windowLevels(),
                                      tree_.levels() + 1)
            : 0;
}

PRORAM_OBLIVIOUS PRORAM_HOT void
PathOram::readPath(Leaf leaf)
{
    if (cache_ != nullptr) {
        // Concurrent mode: same public access pattern, but routed
        // through the stage pair so bucket traffic takes node locks
        // (and the dedup window, including the claim-gated skim) and
        // stash inserts batch by shard. fetchPath counts the path
        // read and emits the trace scope.
        static thread_local std::vector<FetchedBlock> buf;
        if (buf.size() < maxPathBlocks()) {
            // PRORAM_LINT_ALLOW(hot-alloc): thread-local, sized once.
            buf.resize(maxPathBlocks());
        }
        const std::size_t n = fetchPath(leaf, buf.data());
        absorbPath(buf.data(), n);
        return;
    }
    PRORAM_TRACE_SCOPE_ARG("oram", "readPath", "leaf", leaf);
    ++pathReads_;
    const std::uint32_t z = tree_.z();
    for (Level level{0}; level <= tree_.leafLevel(); ++level) {
        const TreeIdx node = tree_.nodeOnPath(leaf, level);
        if (tree_.occupancy(node) == 0)
            continue;
        for (std::uint32_t i = 0; i < z; ++i) {
            const BlockId id = tree_.slotId(node, i);
            if (id == kInvalidBlock)
                continue;
            const bool fresh = stash_.insert(id, tree_.slotData(node, i),
                                             posMap_.leafOf(id));
            panic_if(!fresh, "block ", id,
                     " duplicated between tree and stash");
            tree_.clearSlot(node, i);
        }
    }
}

// Thread-safety escape: dual serial/concurrent body - the per-level
// guard is conditionally empty in serial mode, a shape the analysis
// cannot model. The locking contract (node locks only, one at a
// time) is documented in scheme.hh and rank-checked in Debug builds.
PRORAM_OBLIVIOUS PRORAM_HOT std::size_t
PathOram::fetchPath(Leaf leaf, FetchedBlock *out)
    PRORAM_NO_THREAD_SAFETY_ANALYSIS
{
    // Concurrent-pipeline twin of readPath: same public access
    // pattern (all L+1 buckets of one path, root to leaf), but blocks
    // land in a caller-local buffer instead of the stash so no stash
    // lock is needed. Each bucket is held exclusively only while its
    // slots are copied and cleared; dedicated buckets route through
    // the dedup window, so an overlapping in-flight path adopts the
    // resident copy instead of re-reading the arena.
    PRORAM_TRACE_SCOPE_ARG("oram", "readPath", "leaf", leaf);
    ++pathReads_;
    // Claim-gated skim (concurrent mode): an unclaimed block can stay
    // in its bucket instead of round-tripping through the stash. Only
    // claimed blocks (the in-flight remap set - the demanded super
    // block's members and the pos-map blocks) can be remapped by the
    // policy, so an unclaimed block's path assignment cannot change
    // while it sits in place, and the Path ORAM invariant (block on
    // its mapped path or in the stash) holds without moving it; an
    // overlapping fetch that does extract it clears the slot under
    // the same node lock, so no copy is ever duplicated. Every
    // kWindowResortPeriod-th fetch extracts in full so the classic
    // path re-sort keeps running at reduced cadence (downward
    // placement flux stays alive, the stash stays bounded). The
    // cadence is a function of the public fetch count only; the
    // observable access pattern is the unchanged L+1 buckets of one
    // path either way.
    // Weyl-hash the fetch ordinal instead of taking it mod the
    // period: the raw sequence interleaves data and pos-map paths in
    // a near-periodic pattern that a plain modulus locks onto (e.g.
    // every data path resorting, every pos-map path skimming).
    const std::uint64_t seq =
        fetchSeq_.fetch_add(1, std::memory_order_relaxed);
    const bool resort = (seq * 0x9E3779B97F4A7C15ULL >> 32) %
                            kWindowResortPeriod ==
                        0;
    const std::uint32_t z = tree_.z();
    std::size_t n = 0;
    if (cache_ != nullptr) {
        // Batched lock accounting: one add per path, not per bucket.
        cache_->noteAcquisitions(tree_.levels() + 1);
        cache_->noteWindowTouches(windowLevelsOnPath_);
    }
    for (Level level{0}; level <= tree_.leafLevel(); ++level) {
        const TreeIdx node = tree_.nodeOnPath(leaf, level);
        const util::ScopedLock guard =
            cache_ != nullptr ? cache_->lockNodeFast(node)
                              : util::ScopedLock();
        if (bucketOccupancy(cache_, tree_, node) == 0)
            continue;
        const bool skim =
            !resort && cache_ != nullptr && claimFilter_ != nullptr;
        for (std::uint32_t i = 0; i < z; ++i) {
            const BlockId id = bucketSlotId(cache_, tree_, node, i);
            if (id == kInvalidBlock)
                continue;
            // The claim probe decides only whether the block transits
            // the stash or stays put in its bucket - both are
            // controller-internal state; the externally observable
            // bucket sequence (this path's L+1 nodes) is identical
            // either way.
            // PRORAM_LINT_ALLOW(secret-branch): see above.
            if (skim && claimFilter_[id.value()].load(
                            std::memory_order_relaxed) == 0)
                continue; // unclaimed: stays in place on its path
            out[n++] =
                FetchedBlock{id, bucketSlotData(cache_, tree_, node, i)};
            bucketClearSlot(cache_, tree_, node, i);
        }
    }
    return n;
}

PRORAM_OBLIVIOUS PRORAM_HOT void
PathOram::writePath(Leaf leaf)
{
    if (cache_ != nullptr) {
        // Concurrent mode: the member eviction scratch is
        // unsynchronized, so route to the sharded pass.
        evictPath(leaf);
        return;
    }
    PRORAM_TRACE_SCOPE_ARG("oram", "writePath", "leaf", leaf);
    evictClassify(leaf);
    evictWriteBack(leaf);
}

PRORAM_OBLIVIOUS PRORAM_HOT void
PathOram::evictClassify(Leaf leaf)
{
    // Counting-sort eviction: classify every stash slot's deepest
    // eligible level in one vectorized sweep over the contiguous leaf
    // lane, histogram the live slots per level, then stable-scatter
    // ids + payloads into one flat array grouped deepest level first.
    // Insertion order within a level is preserved, so the write-back
    // fill makes bit-identical placement decisions to the former
    // per-level scratch-vector pushes. Serial mode only (nothing is
    // ever pinned): the concurrent controller runs evictPath().
    const std::uint32_t levels = tree_.levels();
    const std::size_t slots = stash_.slotCount();
    reserveScratch(slots);
    {
        PRORAM_TRACE_SCOPE_ARG("evict", "classify", "slots", slots);
        evict::classifyLevels(stash_.leafLane(), slots, leaf, levels,
                              levelScratch_.data());
    }

    const BlockId *ids = stash_.idLane();
    const Leaf *leaves = stash_.leafLane();
    const std::uint64_t *payloads = stash_.dataLane();
    for (std::uint32_t l = 0; l <= levels; ++l)
        histScratch_[l] = 0;
    for (std::size_t i = 0; i < slots; ++i) {
        if (ids[i] == kInvalidBlock)
            continue;
        panic_if(leaves[i] == kInvalidLeaf, "stash block ", ids[i],
                 " has no leaf");
        ++histScratch_[levelScratch_[i]];
    }
    std::uint32_t offset = 0;
    for (std::uint32_t l = levels + 1; l-- > 0;) {
        levelStartScratch_[l] = offset;
        levelCursorScratch_[l] = offset;
        offset += histScratch_[l];
    }
    for (std::size_t i = 0; i < slots; ++i) {
        if (ids[i] == kInvalidBlock)
            continue;
        sortedScratch_[levelCursorScratch_[levelScratch_[i]]++] =
            Evictable{ids[i], payloads[i]};
    }
}

PRORAM_OBLIVIOUS PRORAM_HOT void
PathOram::evictWriteBack(Leaf leaf)
{
    // Fill buckets greedily from the leaf upward; unplaced deeper
    // blocks stay pooled and may still land closer to the root.
    // Serial mode only; see evictClassify().
    PRORAM_TRACE_SCOPE_ARG("evict", "scatterFill", "leaf", leaf);
    const std::uint32_t levels = tree_.levels();
    poolScratch_.clear();
    for (std::uint32_t l = levels + 1; l-- > 0;) {
        const std::uint32_t start = levelStartScratch_[l];
        const std::uint32_t end = start + histScratch_[l];
        for (std::uint32_t s = start; s < end; ++s) {
            // PRORAM_LINT_ALLOW(hot-alloc): capacity pre-reserved by
            // reserveScratch; push_back never grows in steady state.
            poolScratch_.push_back(sortedScratch_[s]);
        }
        const TreeIdx node = tree_.nodeOnPath(leaf, Level{l});
        while (!poolScratch_.empty() && tree_.freeSlots(node) != 0) {
            const Evictable ev = poolScratch_.back();
            poolScratch_.pop_back();
            tree_.tryPlace(node, ev.id, ev.data);
            const bool erased = stash_.erase(ev.id);
            assert(erased && "eligible block vanished from stash");
            (void)erased;
        }
    }
    stash_.sampleOccupancy();
}

PRORAM_OBLIVIOUS PRORAM_HOT void
PathOram::evictPath(Leaf leaf)
{
    // Sharded eviction pass (concurrent mode). Phase 1 classifies
    // shard by shard under each shard's lock, collecting one
    // (id, level) candidate per live unpinned slot into thread-local
    // scratch - candidates are *hints*, because the shard lock is
    // released before placement and a concurrent request may claim,
    // remap, or evict any of them in between. Phase 2 fills buckets
    // leaf upward like the serial pass, but revalidates every
    // candidate under its shard lock (resident, unpinned, current
    // leaf still shares the bucket's level) immediately before
    // placing it under the node lock; the stash copy is erased before
    // the node lock releases, so no concurrent fetch can ever observe
    // a block both in the tree and in the stash. The public access
    // pattern is unchanged: the same L+1 buckets of one path, leaf
    // upward.
    PRORAM_TRACE_SCOPE_ARG("evict", "evictPath", "leaf", leaf);
    panic_if(cache_ == nullptr, "evictPath requires concurrent mode");

    struct Scratch
    {
        std::vector<std::uint32_t> levels;
        std::vector<BlockId> cand;
        std::vector<std::uint32_t> candLevel;
        std::vector<std::uint32_t> hist;
        std::vector<std::uint32_t> startAt;
        std::vector<std::uint32_t> cursor;
        std::vector<BlockId> sorted;
        std::vector<BlockId> pool;
        std::vector<BlockId> keep;
    };
    static thread_local Scratch sc;

    const std::uint32_t levels = tree_.levels();
    const std::uint32_t level_slots = levels + 2;
    if (sc.hist.size() < level_slots) {
        // PRORAM_LINT_ALLOW(hot-alloc): thread-local, sized once.
        sc.hist.resize(level_slots);
        sc.startAt.resize(level_slots);
        // PRORAM_LINT_ALLOW(hot-alloc): thread-local, sized once.
        sc.cursor.resize(level_slots);
    }

    // Phase 1: per-shard classification sweep (shard lock held only
    // across its own contiguous leaf lane).
    std::uint64_t shard_locks = 0;
    sc.cand.clear();
    sc.candLevel.clear();
    const std::uint32_t shards = stash_.shardCount();
    for (std::uint32_t s = 0; s < shards; ++s) {
        // Lock-free empty-shard skip: the stash runs near empty in
        // steady state, so most shards have nothing to classify. A
        // block absorbed concurrently after the probe is only a
        // missed *hint* - it belongs to an in-flight request (pinned,
        // not evictable) or waits for the next pass.
        if (stash_.liveCount(s) == 0)
            continue;
        const util::ScopedLock lk = stash_.lockShardFast(s);
        ++shard_locks;
        const std::size_t slots = stash_.slotCount(s);
        if (sc.levels.size() < slots) {
            // PRORAM_LINT_ALLOW(hot-alloc): thread-local, grows to
            // the largest shard once.
            sc.levels.resize(slots);
        }
        evict::classifyLevels(stash_.leafLane(s), slots, leaf, levels,
                              sc.levels.data());
        const BlockId *ids = stash_.idLane(s);
        const std::uint8_t *pins = stash_.pinnedLane(s);
        for (std::size_t i = 0; i < slots; ++i) {
            if (ids[i] == kInvalidBlock)
                continue;
            if (pins[i] != 0)
                continue;
            // PRORAM_LINT_ALLOW(hot-alloc): thread-local; capacity
            // reaches steady state after the first paths.
            sc.cand.push_back(ids[i]);
            // PRORAM_LINT_ALLOW(hot-alloc): see above.
            sc.candLevel.push_back(sc.levels[i]);
        }
    }

    // Counting sort, deepest level first; insertion order within a
    // level is preserved (same placement policy as the serial pass).
    for (std::uint32_t l = 0; l <= levels; ++l)
        sc.hist[l] = 0;
    const std::size_t ncand = sc.cand.size();
    for (std::size_t i = 0; i < ncand; ++i)
        ++sc.hist[sc.candLevel[i]];
    std::uint32_t offset = 0;
    for (std::uint32_t l = levels + 1; l-- > 0;) {
        sc.startAt[l] = offset;
        sc.cursor[l] = offset;
        offset += sc.hist[l];
    }
    if (sc.sorted.size() < ncand) {
        // PRORAM_LINT_ALLOW(hot-alloc): thread-local, steady state.
        sc.sorted.resize(ncand);
    }
    for (std::size_t i = 0; i < ncand; ++i)
        sc.sorted[sc.cursor[sc.candLevel[i]]++] = sc.cand[i];

    // Phase 2: fill leaf upward under ONE node hold per level - the
    // free-slot count cannot change while the hold lasts, so the pass
    // stops the moment the bucket fills without per-candidate
    // re-peeks. Each candidate is revalidated under its shard lock
    // (node < shard, DESIGN.md Sec. 13) immediately before placement;
    // the stash copy is erased under the same shard hold, so no
    // concurrent fetch can ever observe a block both in the tree and
    // in the stash. Deferred candidates (bucket full, or remapped
    // shallower mid-pass) stay pooled for the next level up. Levels
    // with an empty pool are skipped entirely: the skip depends only
    // on how many classified candidates remain, never on bucket
    // contents, and lock traffic is controller-internal state anyway.
    std::uint64_t node_locks = 0;
    std::uint64_t window_holds = 0;
    sc.pool.clear();
    for (std::uint32_t l = levels + 1; l-- > 0;) {
        const std::uint32_t cstart = sc.startAt[l];
        const std::uint32_t cend = cstart + sc.hist[l];
        for (std::uint32_t c = cstart; c < cend; ++c) {
            // PRORAM_LINT_ALLOW(hot-alloc): thread-local steady state.
            sc.pool.push_back(sc.sorted[c]);
        }
        if (sc.pool.empty())
            continue;
        const TreeIdx node = tree_.nodeOnPath(leaf, Level{l});
        const util::ScopedLock guard = cache_->lockNodeFast(node);
        ++node_locks;
        window_holds += cache_->windowed(node) ? 1 : 0;
        std::uint32_t free_now = bucketFreeSlots(cache_, tree_, node);
        if (free_now == 0)
            continue;
        sc.keep.clear();
        while (!sc.pool.empty()) {
            const BlockId id = sc.pool.back();
            sc.pool.pop_back();
            if (free_now == 0) {
                // PRORAM_LINT_ALLOW(hot-alloc): thread-local.
                sc.keep.push_back(id);
                continue;
            }
            const std::uint32_t s = stash_.shardOf(id);
            const util::ScopedLock sl = stash_.lockShardFast(s);
            ++shard_locks;
            Leaf cur = kInvalidLeaf;
            std::uint64_t payload = 0;
            bool pinned = false;
            const bool resident =
                stash_.lookupLocked(s, id, &cur, &payload, &pinned);
            const bool evictable = resident && !pinned;
            if (!evictable)
                continue; // claimed or evicted since classification
            const std::uint32_t deepest =
                tree_.commonLevel(cur, leaf).value();
            if (deepest < l) {
                // Remapped mid-pass: eligible again at every level
                // at or above the new common level (l == 0 always
                // qualifies, so deferral terminates).
                // PRORAM_LINT_ALLOW(hot-alloc): thread-local.
                sc.keep.push_back(id);
                continue;
            }
            const bool placed =
                bucketTryPlace(cache_, tree_, node, id, payload);
            panic_if(!placed, "bucket with ", free_now,
                     " free slots refused a placement");
            stash_.eraseLocked(s, id);
            --free_now;
        }
        std::swap(sc.pool, sc.keep);
    }
    cache_->noteAcquisitions(node_locks);
    cache_->noteWindowTouches(window_holds);
    stash_.noteShardAcquisitions(shard_locks);
    stash_.sampleOccupancy();
}

PRORAM_OBLIVIOUS Leaf
PathOram::dummyAccess()
{
    const Leaf leaf = randomLeaf();
    PRORAM_TRACE_SCOPE_ARG("dummy", "bgEvict", "leaf", leaf);
    readPath(leaf);
    writePath(leaf);
    return leaf;
}

} // namespace proram
