#include "oram/path_oram.hh"

#include <cassert>

#include "util/logging.hh"

namespace proram
{

PathOram::PathOram(const OramConfig &cfg, PositionMap &pos_map)
    : cfg_(cfg), posMap_(pos_map), tree_(cfg.levels(), cfg.z),
      stash_(cfg.stashCapacity), rng_(cfg.seed ^ 0x0aa77aa55aa33aa1ULL),
      eligibleScratch_(tree_.levels() + 1)
{
    poolScratch_.reserve(cfg.stashCapacity);
    // Every leaf remap must reach stash-resident entries' cached
    // leaves; routing through the position map's single write point
    // covers all remap sites (eviction, merge, break) at once.
    posMap_.attachLeafCache(&stash_);
}

PathOram::~PathOram()
{
    posMap_.attachLeafCache(nullptr);
}

Leaf
PathOram::randomLeaf()
{
    return static_cast<Leaf>(rng_.below(tree_.numLeaves()));
}

void
PathOram::readPath(Leaf leaf)
{
    ++pathReads_;
    const std::uint32_t z = tree_.z();
    for (std::uint32_t level = 0; level <= tree_.levels(); ++level) {
        const std::uint64_t node = tree_.nodeOnPath(leaf, level);
        if (tree_.occupancy(node) == 0)
            continue;
        for (std::uint32_t i = 0; i < z; ++i) {
            const BlockId id = tree_.slotId(node, i);
            if (id == kInvalidBlock)
                continue;
            const bool fresh = stash_.insert(id, tree_.slotData(node, i),
                                             posMap_.leafOf(id));
            panic_if(!fresh, "block ", id,
                     " duplicated between tree and stash");
            tree_.clearSlot(node, i);
        }
    }
}

void
PathOram::writePath(Leaf leaf)
{
    // Bucket the stash by the deepest level each block may occupy on
    // this path, then fill buckets greedily from the leaf upward.
    // One scan over the contiguous entry vector captures id + payload
    // and reads the cached leaf straight off the entry (no position
    // map lookup per block); the per-level scratch vectors keep their
    // capacity across calls (no allocations once warmed up).
    const std::uint32_t levels = tree_.levels();
    for (auto &level_blocks : eligibleScratch_)
        level_blocks.clear();
    stash_.forEachResident([&](const StashEntry &e) {
        panic_if(e.leaf == kInvalidLeaf,
                 "stash block ", e.id, " has no leaf");
        eligibleScratch_[tree_.commonLevel(e.leaf, leaf)]
            .push_back({e.id, e.data});
    });

    poolScratch_.clear();
    for (std::uint32_t l = levels + 1; l-- > 0;) {
        for (const Evictable &ev : eligibleScratch_[l])
            poolScratch_.push_back(ev);
        const std::uint64_t node = tree_.nodeOnPath(leaf, l);
        while (!poolScratch_.empty() && tree_.freeSlots(node) != 0) {
            const Evictable ev = poolScratch_.back();
            poolScratch_.pop_back();
            tree_.tryPlace(node, ev.id, ev.data);
            const bool erased = stash_.erase(ev.id);
            assert(erased && "eligible block vanished from stash");
            (void)erased;
        }
    }
    stash_.sampleOccupancy();
}

Leaf
PathOram::dummyAccess()
{
    const Leaf leaf = randomLeaf();
    readPath(leaf);
    writePath(leaf);
    return leaf;
}

void
PathOram::placeInitial(BlockId id, std::uint64_t data)
{
    const Leaf leaf = posMap_.leafOf(id);
    panic_if(leaf == kInvalidLeaf, "placeInitial before leaf assignment");
    for (std::uint32_t l = tree_.levels() + 1; l-- > 0;) {
        if (tree_.tryPlace(tree_.nodeOnPath(leaf, l), id, data))
            return;
    }
    stash_.insert(id, data, leaf);
}

} // namespace proram
