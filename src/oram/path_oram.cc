#include "oram/path_oram.hh"

#include <cassert>

#include "util/logging.hh"

namespace proram
{

PathOram::PathOram(const OramConfig &cfg, PositionMap &pos_map)
    : cfg_(cfg), posMap_(pos_map), tree_(cfg.levels(), cfg.z),
      stash_(cfg.stashCapacity), rng_(cfg.seed ^ 0x0aa77aa55aa33aa1ULL),
      eligibleScratch_(tree_.levels() + 1)
{
    poolScratch_.reserve(cfg.stashCapacity);
}

Leaf
PathOram::randomLeaf()
{
    return static_cast<Leaf>(rng_.below(tree_.numLeaves()));
}

void
PathOram::readPath(Leaf leaf)
{
    ++pathReads_;
    for (std::uint32_t level = 0; level <= tree_.levels(); ++level) {
        Bucket &b = tree_.bucket(tree_.nodeOnPath(leaf, level));
        for (std::uint32_t i = 0; i < b.z(); ++i) {
            const Slot &s = b.slot(i);
            if (s.isDummy())
                continue;
            const bool fresh = stash_.insert(s.id, s.data);
            panic_if(!fresh, "block ", s.id,
                     " duplicated between tree and stash");
            b.clearSlot(i);
        }
    }
}

void
PathOram::writePath(Leaf leaf)
{
    // Bucket the stash by the deepest level each block may occupy on
    // this path, then fill buckets greedily from the leaf upward.
    // One scan captures id + payload, so eviction below needs no
    // stash re-lookup; the per-level scratch vectors keep their
    // capacity across calls (no allocations once warmed up).
    const std::uint32_t levels = tree_.levels();
    for (auto &level_blocks : eligibleScratch_)
        level_blocks.clear();
    stash_.forEachResident([&](BlockId id, const StashEntry &e) {
        const Leaf block_leaf = posMap_.leafOf(id);
        panic_if(block_leaf == kInvalidLeaf,
                 "stash block ", id, " has no leaf");
        eligibleScratch_[tree_.commonLevel(block_leaf, leaf)]
            .push_back({id, e.data});
    });

    poolScratch_.clear();
    for (std::uint32_t l = levels + 1; l-- > 0;) {
        for (const Evictable &ev : eligibleScratch_[l])
            poolScratch_.push_back(ev);
        Bucket &b = tree_.bucket(tree_.nodeOnPath(leaf, l));
        while (!poolScratch_.empty()) {
            Slot *slot = b.freeSlot();
            if (!slot)
                break;
            const Evictable ev = poolScratch_.back();
            poolScratch_.pop_back();
            slot->id = ev.id;
            slot->data = ev.data;
            const bool erased = stash_.erase(ev.id);
            assert(erased && "eligible block vanished from stash");
            (void)erased;
        }
    }
    stash_.sampleOccupancy();
}

Leaf
PathOram::dummyAccess()
{
    const Leaf leaf = randomLeaf();
    readPath(leaf);
    writePath(leaf);
    return leaf;
}

void
PathOram::placeInitial(BlockId id, std::uint64_t data)
{
    const Leaf leaf = posMap_.leafOf(id);
    panic_if(leaf == kInvalidLeaf, "placeInitial before leaf assignment");
    for (std::uint32_t l = tree_.levels() + 1; l-- > 0;) {
        Bucket &b = tree_.bucket(tree_.nodeOnPath(leaf, l));
        if (Slot *slot = b.freeSlot()) {
            slot->id = id;
            slot->data = data;
            return;
        }
    }
    stash_.insert(id, data);
}

} // namespace proram
