#include "oram/path_oram.hh"

#include <cassert>
#include <mutex>

#include "obs/trace.hh"
#include "oram/evict_kernel.hh"
#include "oram/subtree_cache.hh"
#include "util/annotations.hh"
#include "util/logging.hh"

namespace proram
{

PathOram::PathOram(const OramConfig &cfg, PositionMap &pos_map)
    : cfg_(cfg), posMap_(pos_map),
      tree_(cfg.levels(), cfg.z, cfg.arena),
      stash_(cfg.stashCapacity), rng_(cfg.seed ^ 0x0aa77aa55aa33aa1ULL)
{
    // Pre-size every scratch buffer from the tree geometry so the
    // first accesses after construction are allocation-free too
    // (previously the per-level vectors warmed up lazily). The slot
    // bound matches the stash lanes' reserve plus one path's worth of
    // readPath growth; reserveScratch() covers the (rare) overshoot.
    const std::size_t slot_bound =
        static_cast<std::size_t>(cfg.stashCapacity) * 2 +
        static_cast<std::size_t>(tree_.levels() + 1) * tree_.z();
    reserveScratch(slot_bound);
    const std::size_t level_slots = tree_.levels() + 2;
    histScratch_.resize(level_slots, 0);
    levelStartScratch_.resize(level_slots, 0);
    levelCursorScratch_.resize(level_slots, 0);
    // Every leaf remap must reach stash-resident entries' cached
    // leaves; routing through the position map's single write point
    // covers all remap sites (eviction, merge, break) at once.
    posMap_.attachLeafCache(&stash_);
}

PathOram::~PathOram()
{
    posMap_.attachLeafCache(nullptr);
}

void
PathOram::reserveScratch(std::size_t slots)
{
    if (levelScratch_.size() < slots)
        levelScratch_.resize(slots);
    if (sortedScratch_.size() < slots)
        sortedScratch_.resize(slots);
    if (poolScratch_.capacity() < slots)
        poolScratch_.reserve(slots);
}

void
PathOram::enableConcurrent(SubtreeCache *cache,
                           const std::uint8_t *claim_filter)
{
    cache_ = cache;
    stash_.setPinFilter(claim_filter);
}

PRORAM_HOT Leaf
PathOram::randomLeaf()
{
    if (cache_ != nullptr) {
        const std::lock_guard<std::mutex> g(rngMutex_);
        return Leaf{
            static_cast<std::uint32_t>(rng_.below(tree_.numLeaves()))};
    }
    return Leaf{
        static_cast<std::uint32_t>(rng_.below(tree_.numLeaves()))};
}

PRORAM_OBLIVIOUS PRORAM_HOT void
PathOram::readPath(Leaf leaf)
{
    PRORAM_TRACE_SCOPE_ARG("oram", "readPath", "leaf", leaf);
    ++pathReads_;
    const std::uint32_t z = tree_.z();
    for (Level level{0}; level <= tree_.leafLevel(); ++level) {
        const TreeIdx node = tree_.nodeOnPath(leaf, level);
        std::unique_lock<std::mutex> guard;
        if (cache_ != nullptr)
            guard = cache_->lockNode(node);
        if (tree_.occupancy(node) == 0)
            continue;
        for (std::uint32_t i = 0; i < z; ++i) {
            const BlockId id = tree_.slotId(node, i);
            if (id == kInvalidBlock)
                continue;
            const bool fresh = stash_.insert(id, tree_.slotData(node, i),
                                             posMap_.leafOf(id));
            panic_if(!fresh, "block ", id,
                     " duplicated between tree and stash");
            tree_.clearSlot(node, i);
        }
    }
}

PRORAM_OBLIVIOUS PRORAM_HOT std::size_t
PathOram::fetchPath(Leaf leaf, FetchedBlock *out)
{
    // Concurrent-pipeline twin of readPath: same public access
    // pattern (all L+1 buckets of one path, root to leaf), but blocks
    // land in a caller-local buffer instead of the stash so no stash
    // lock is needed. Each bucket is held exclusively only while its
    // slots are copied and cleared.
    PRORAM_TRACE_SCOPE_ARG("oram", "readPath", "leaf", leaf);
    ++pathReads_;
    const std::uint32_t z = tree_.z();
    std::size_t n = 0;
    for (Level level{0}; level <= tree_.leafLevel(); ++level) {
        const TreeIdx node = tree_.nodeOnPath(leaf, level);
        std::unique_lock<std::mutex> guard;
        if (cache_ != nullptr)
            guard = cache_->lockNode(node);
        if (tree_.occupancy(node) == 0)
            continue;
        for (std::uint32_t i = 0; i < z; ++i) {
            const BlockId id = tree_.slotId(node, i);
            if (id == kInvalidBlock)
                continue;
            out[n++] = FetchedBlock{id, tree_.slotData(node, i)};
            tree_.clearSlot(node, i);
        }
    }
    return n;
}

PRORAM_HOT void
PathOram::absorbPath(const FetchedBlock *blocks, std::size_t n)
{
    // The leaf is re-read from the position map at absorb time, not
    // fetch time: a concurrent remap between the two stages must win.
    for (std::size_t i = 0; i < n; ++i) {
        const bool fresh = stash_.insert(blocks[i].id, blocks[i].data,
                                         posMap_.leafOf(blocks[i].id));
        panic_if(!fresh, "block ", blocks[i].id,
                 " duplicated between tree and stash");
    }
}

PRORAM_OBLIVIOUS PRORAM_HOT void
PathOram::writePath(Leaf leaf)
{
    PRORAM_TRACE_SCOPE_ARG("oram", "writePath", "leaf", leaf);
    evictClassify(leaf);
    evictWriteBack(leaf);
}

PRORAM_OBLIVIOUS PRORAM_HOT void
PathOram::evictClassify(Leaf leaf)
{
    // Counting-sort eviction: classify every stash slot's deepest
    // eligible level in one vectorized sweep over the contiguous leaf
    // lane, histogram the live slots per level, then stable-scatter
    // ids + payloads into one flat array grouped deepest level first.
    // Insertion order within a level is preserved, so the write-back
    // fill makes bit-identical placement decisions to the former
    // per-level scratch-vector pushes. Pinned slots (blocks claimed
    // by another in-flight request) are excluded up front; the pin
    // lane is all zero in serial mode.
    const std::uint32_t levels = tree_.levels();
    const std::size_t slots = stash_.slotCount();
    reserveScratch(slots);
    {
        PRORAM_TRACE_SCOPE_ARG("evict", "classify", "slots", slots);
        evict::classifyLevels(stash_.leafLane(), slots, leaf, levels,
                              levelScratch_.data());
    }

    const BlockId *ids = stash_.idLane();
    const Leaf *leaves = stash_.leafLane();
    const std::uint64_t *payloads = stash_.dataLane();
    const std::uint8_t *pins =
        cache_ != nullptr ? stash_.pinnedLane() : nullptr;
    for (std::uint32_t l = 0; l <= levels; ++l)
        histScratch_[l] = 0;
    for (std::size_t i = 0; i < slots; ++i) {
        if (ids[i] == kInvalidBlock)
            continue;
        if (pins != nullptr && pins[i] != 0)
            continue;
        panic_if(leaves[i] == kInvalidLeaf, "stash block ", ids[i],
                 " has no leaf");
        ++histScratch_[levelScratch_[i]];
    }
    std::uint32_t offset = 0;
    for (std::uint32_t l = levels + 1; l-- > 0;) {
        levelStartScratch_[l] = offset;
        levelCursorScratch_[l] = offset;
        offset += histScratch_[l];
    }
    for (std::size_t i = 0; i < slots; ++i) {
        if (ids[i] == kInvalidBlock)
            continue;
        if (pins != nullptr && pins[i] != 0)
            continue;
        sortedScratch_[levelCursorScratch_[levelScratch_[i]]++] =
            Evictable{ids[i], payloads[i]};
    }
}

PRORAM_OBLIVIOUS PRORAM_HOT void
PathOram::evictWriteBack(Leaf leaf)
{
    // Fill buckets greedily from the leaf upward; unplaced deeper
    // blocks stay pooled and may still land closer to the root. Each
    // bucket is locked only while its free slots are consumed.
    PRORAM_TRACE_SCOPE_ARG("evict", "scatterFill", "leaf", leaf);
    const std::uint32_t levels = tree_.levels();
    poolScratch_.clear();
    for (std::uint32_t l = levels + 1; l-- > 0;) {
        const std::uint32_t start = levelStartScratch_[l];
        const std::uint32_t end = start + histScratch_[l];
        for (std::uint32_t s = start; s < end; ++s) {
            // PRORAM_LINT_ALLOW(hot-alloc): capacity pre-reserved by
            // reserveScratch; push_back never grows in steady state.
            poolScratch_.push_back(sortedScratch_[s]);
        }
        const TreeIdx node = tree_.nodeOnPath(leaf, Level{l});
        std::unique_lock<std::mutex> guard;
        if (cache_ != nullptr)
            guard = cache_->lockNode(node);
        while (!poolScratch_.empty() && tree_.freeSlots(node) != 0) {
            const Evictable ev = poolScratch_.back();
            poolScratch_.pop_back();
            tree_.tryPlace(node, ev.id, ev.data);
            const bool erased = stash_.erase(ev.id);
            assert(erased && "eligible block vanished from stash");
            (void)erased;
        }
    }
    stash_.sampleOccupancy();
}

PRORAM_OBLIVIOUS Leaf
PathOram::dummyAccess()
{
    const Leaf leaf = randomLeaf();
    PRORAM_TRACE_SCOPE_ARG("dummy", "bgEvict", "leaf", leaf);
    readPath(leaf);
    writePath(leaf);
    return leaf;
}

void
PathOram::placeInitial(BlockId id, std::uint64_t data)
{
    const Leaf leaf = posMap_.leafOf(id);
    panic_if(leaf == kInvalidLeaf, "placeInitial before leaf assignment");
    for (std::uint32_t l = tree_.levels() + 1; l-- > 0;) {
        if (tree_.tryPlace(tree_.nodeOnPath(leaf, Level{l}), id, data))
            return;
    }
    stash_.insert(id, data, leaf);
}

} // namespace proram
