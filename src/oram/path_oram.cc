#include "oram/path_oram.hh"

#include "util/logging.hh"

namespace proram
{

PathOram::PathOram(const OramConfig &cfg, PositionMap &pos_map)
    : cfg_(cfg), posMap_(pos_map), tree_(cfg.levels(), cfg.z),
      stash_(cfg.stashCapacity), rng_(cfg.seed ^ 0x0aa77aa55aa33aa1ULL)
{
}

Leaf
PathOram::randomLeaf()
{
    return static_cast<Leaf>(rng_.below(tree_.numLeaves()));
}

void
PathOram::readPath(Leaf leaf)
{
    ++pathReads_;
    for (std::uint32_t level = 0; level <= tree_.levels(); ++level) {
        Bucket &b = tree_.bucket(tree_.nodeOnPath(leaf, level));
        for (std::uint32_t i = 0; i < b.z(); ++i) {
            Slot &s = b.slot(i);
            if (s.isDummy())
                continue;
            const bool fresh = stash_.insert(s.id, s.data);
            panic_if(!fresh, "block ", s.id,
                     " duplicated between tree and stash");
            s.id = kInvalidBlock;
            s.data = 0;
        }
    }
}

void
PathOram::writePath(Leaf leaf)
{
    // Bucket the stash by the deepest level each block may occupy on
    // this path, then fill buckets greedily from the leaf upward.
    const std::uint32_t levels = tree_.levels();
    std::vector<std::vector<BlockId>> eligible(levels + 1);
    for (BlockId id : stash_.residentIds()) {
        const Leaf block_leaf = posMap_.leafOf(id);
        panic_if(block_leaf == kInvalidLeaf,
                 "stash block ", id, " has no leaf");
        eligible[tree_.commonLevel(block_leaf, leaf)].push_back(id);
    }

    std::vector<BlockId> pool;
    for (std::uint32_t l = levels + 1; l-- > 0;) {
        for (BlockId id : eligible[l])
            pool.push_back(id);
        Bucket &b = tree_.bucket(tree_.nodeOnPath(leaf, l));
        while (!pool.empty()) {
            Slot *slot = b.freeSlot();
            if (!slot)
                break;
            const BlockId id = pool.back();
            pool.pop_back();
            StashEntry *e = stash_.find(id);
            panic_if(!e, "eligible block ", id, " vanished from stash");
            slot->id = id;
            slot->data = e->data;
            stash_.erase(id);
        }
    }
    stash_.sampleOccupancy();
}

Leaf
PathOram::dummyAccess()
{
    const Leaf leaf = randomLeaf();
    readPath(leaf);
    writePath(leaf);
    return leaf;
}

void
PathOram::placeInitial(BlockId id, std::uint64_t data)
{
    const Leaf leaf = posMap_.leafOf(id);
    panic_if(leaf == kInvalidLeaf, "placeInitial before leaf assignment");
    for (std::uint32_t l = tree_.levels() + 1; l-- > 0;) {
        Bucket &b = tree_.bucket(tree_.nodeOnPath(leaf, l));
        if (Slot *slot = b.freeSlot()) {
            slot->id = id;
            slot->data = data;
            return;
        }
    }
    stash_.insert(id, data);
}

} // namespace proram
