#include "oram/evict_kernel.hh"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <string>
#include <type_traits>

#include "util/annotations.hh"
#include "util/logging.hh"

// The build system probes for per-function target("avx2") support
// and defines PRORAM_HAVE_AVX2_KERNEL; standalone compilation falls
// back to sniffing the platform directly.
#if defined(PRORAM_HAVE_AVX2_KERNEL)
#define PRORAM_EVICT_HAVE_AVX2 PRORAM_HAVE_AVX2_KERNEL
#elif defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PRORAM_EVICT_HAVE_AVX2 1
#else
#define PRORAM_EVICT_HAVE_AVX2 0
#endif

#if PRORAM_EVICT_HAVE_AVX2
#include <immintrin.h>
#endif

namespace proram
{
namespace evict
{
namespace
{

using KernelFn = void (*)(const Leaf *, std::size_t, Leaf,
                          std::uint32_t, std::uint32_t *);

// The SWAR / AVX2 kernels stream the stash's Leaf lane as raw 32-bit
// words; the strong wrapper must stay layout-identical to its rep.
static_assert(sizeof(Leaf) == sizeof(std::uint32_t) &&
              std::is_trivially_copyable_v<Leaf>);

inline std::uint32_t
classifyOne(Leaf leaf, Leaf path_leaf, std::uint32_t levels)
{
    const std::uint32_t diff = leaf ^ path_leaf;
    return levels - static_cast<std::uint32_t>(std::bit_width(diff));
}

PRORAM_OBLIVIOUS PRORAM_HOT void
classifyScalar(const Leaf *leaves, std::size_t n, Leaf path_leaf,
               std::uint32_t levels, std::uint32_t *out)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = classifyOne(leaves[i], path_leaf, levels);
}

/** Two leaves per 64-bit load+xor; the per-lane bit_width still runs
 *  in scalar registers, so the win is halved load/xor traffic. */
PRORAM_OBLIVIOUS PRORAM_HOT void
classifySwar(const Leaf *leaves, std::size_t n, Leaf path_leaf,
             std::uint32_t levels, std::uint32_t *out)
{
    const std::uint64_t broadcast =
        static_cast<std::uint64_t>(path_leaf.value()) *
        0x0000000100000001ULL;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        std::uint64_t lo, hi;
        std::memcpy(&lo, leaves + i, sizeof(lo));
        std::memcpy(&hi, leaves + i + 2, sizeof(hi));
        const std::uint64_t d0 = lo ^ broadcast;
        const std::uint64_t d1 = hi ^ broadcast;
        out[i] = levels - static_cast<std::uint32_t>(std::bit_width(
                              static_cast<std::uint32_t>(d0)));
        out[i + 1] =
            levels - static_cast<std::uint32_t>(
                         std::bit_width(static_cast<std::uint32_t>(
                             d0 >> 32)));
        out[i + 2] = levels - static_cast<std::uint32_t>(std::bit_width(
                                  static_cast<std::uint32_t>(d1)));
        out[i + 3] =
            levels - static_cast<std::uint32_t>(
                         std::bit_width(static_cast<std::uint32_t>(
                             d1 >> 32)));
    }
    for (; i < n; ++i)
        out[i] = classifyOne(leaves[i], path_leaf, levels);
}

#if PRORAM_EVICT_HAVE_AVX2

/**
 * Eight leaves per iteration. bit_width has no 32-bit AVX2
 * instruction, so it is computed via the float exponent: smear the
 * XOR down to a mask, isolate the MSB (a power of two, which
 * converts to float exactly - including bit 31, whose signed
 * conversion -2^31 still carries exponent 31), and read the biased
 * exponent field. diff == 0 lanes are forced to bit_width 0.
 */
__attribute__((target("avx2"))) void
classifyAvx2(const Leaf *leaves, std::size_t n, Leaf path_leaf,
             std::uint32_t levels, std::uint32_t *out)
{
    const __m256i broadcast =
        _mm256_set1_epi32(static_cast<int>(path_leaf.value()));
    const __m256i vlevels =
        _mm256_set1_epi32(static_cast<int>(levels));
    const __m256i exp_mask = _mm256_set1_epi32(0xFF);
    const __m256i bias_m1 = _mm256_set1_epi32(126);
    const __m256i zero = _mm256_setzero_si256();

    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(leaves + i));
        const __m256i diff = _mm256_xor_si256(v, broadcast);
        __m256i s = diff;
        s = _mm256_or_si256(s, _mm256_srli_epi32(s, 1));
        s = _mm256_or_si256(s, _mm256_srli_epi32(s, 2));
        s = _mm256_or_si256(s, _mm256_srli_epi32(s, 4));
        s = _mm256_or_si256(s, _mm256_srli_epi32(s, 8));
        s = _mm256_or_si256(s, _mm256_srli_epi32(s, 16));
        const __m256i msb =
            _mm256_sub_epi32(s, _mm256_srli_epi32(s, 1));
        const __m256i bits =
            _mm256_castps_si256(_mm256_cvtepi32_ps(msb));
        const __m256i exponent = _mm256_and_si256(
            _mm256_srli_epi32(bits, 23), exp_mask);
        __m256i bw = _mm256_sub_epi32(exponent, bias_m1);
        bw = _mm256_andnot_si256(_mm256_cmpeq_epi32(diff, zero), bw);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            _mm256_sub_epi32(vlevels, bw));
    }
    for (; i < n; ++i)
        out[i] = classifyOne(leaves[i], path_leaf, levels);
}

bool
hostHasAvx2()
{
    return __builtin_cpu_supports("avx2");
}

#else

bool
hostHasAvx2()
{
    return false;
}

#endif // PRORAM_EVICT_HAVE_AVX2

bool
swarUsable()
{
    // The SWAR kernel splits a 64-bit load into lanes by shift, which
    // assumes little-endian lane order.
    return std::endian::native == std::endian::little;
}

KernelFn
fnFor(Kernel k)
{
    switch (k) {
      case Kernel::Scalar:
        return classifyScalar;
      case Kernel::Swar:
        return classifySwar;
#if PRORAM_EVICT_HAVE_AVX2
      case Kernel::Avx2:
        return classifyAvx2;
#endif
      default:
        return nullptr;
    }
}

/** Best available variant, honoring $PRORAM_EVICT_KERNEL. */
Kernel
resolveKernel()
{
    if (const char *env = std::getenv("PRORAM_EVICT_KERNEL")) {
        const std::string want(env);
        Kernel k = Kernel::Auto;
        if (want == "scalar")
            k = Kernel::Scalar;
        else if (want == "swar")
            k = Kernel::Swar;
        else if (want == "avx2")
            k = Kernel::Avx2;
        else if (!want.empty() && want != "auto")
            fatal("unknown PRORAM_EVICT_KERNEL '", want,
                  "' (scalar|swar|avx2|auto)");
        if (k != Kernel::Auto) {
            fatal_if(!kernelAvailable(k), "PRORAM_EVICT_KERNEL=", want,
                     " not available on this host/build");
            return k;
        }
    }
    if (hostHasAvx2())
        return Kernel::Avx2;
    if (swarUsable())
        return Kernel::Swar;
    return Kernel::Scalar;
}

/** Dispatched kernel; lazily resolved, overridable by forceKernel().
 *  Relaxed ordering is fine: every resolution writes the same value,
 *  and kernels are pure. */
std::atomic<Kernel> g_active{Kernel::Auto};

Kernel
activeOrResolve()
{
    Kernel k = g_active.load(std::memory_order_relaxed);
    if (k == Kernel::Auto) {
        k = resolveKernel();
        g_active.store(k, std::memory_order_relaxed);
    }
    return k;
}

} // namespace

bool
kernelAvailable(Kernel k)
{
    switch (k) {
      case Kernel::Auto:
      case Kernel::Scalar:
        return true;
      case Kernel::Swar:
        return swarUsable();
      case Kernel::Avx2:
        return hostHasAvx2();
    }
    return false;
}

Kernel
activeKernel()
{
    return activeOrResolve();
}

const char *
kernelName(Kernel k)
{
    switch (k) {
      case Kernel::Auto:
        return "auto";
      case Kernel::Scalar:
        return "scalar";
      case Kernel::Swar:
        return "swar";
      case Kernel::Avx2:
        return "avx2";
    }
    return "?";
}

void
forceKernel(Kernel k)
{
    if (k != Kernel::Auto)
        fatal_if(!kernelAvailable(k), "kernel ", kernelName(k),
                 " not available on this host/build");
    g_active.store(k == Kernel::Auto ? resolveKernel() : k,
                   std::memory_order_relaxed);
}

PRORAM_OBLIVIOUS PRORAM_HOT void
classifyLevels(const Leaf *leaves, std::size_t n, Leaf path_leaf,
               std::uint32_t levels, std::uint32_t *out)
{
    fnFor(activeOrResolve())(leaves, n, path_leaf, levels, out);
}

void
classifyLevelsWith(Kernel k, const Leaf *leaves, std::size_t n,
                   Leaf path_leaf, std::uint32_t levels,
                   std::uint32_t *out)
{
    if (k == Kernel::Auto) {
        classifyLevels(leaves, n, path_leaf, levels, out);
        return;
    }
    fatal_if(!kernelAvailable(k), "kernel ", kernelName(k),
             " not available on this host/build");
    fnFor(k)(leaves, n, path_leaf, levels, out);
}

} // namespace evict
} // namespace proram
