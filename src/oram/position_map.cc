#include "oram/position_map.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace proram
{

BlockSpace::BlockSpace(const OramConfig &cfg)
    : numData_(cfg.numDataBlocks), fanout_(cfg.posMapFanout())
{
    std::uint64_t count = numData_;
    BlockId base{numData_};
    for (std::uint32_t l = 0; l < cfg.posMapLevels(); ++l) {
        count = divCeil(count, fanout_);
        levelBase_.push_back(base);
        levelCount_.push_back(count);
        base += count;
    }
    total_ = base.value();
}

std::uint32_t
BlockSpace::levelOf(BlockId id) const
{
    panic_if(id.value() >= total_, "block id ", id, " out of range");
    if (id.value() < numData_)
        return 0;
    for (std::uint32_t l = 0; l < levelBase_.size(); ++l) {
        if (id < levelBase_[l] + levelCount_[l])
            return l + 1;
    }
    panic("unreachable: id ", id, " not in any level");
}

BlockId
BlockSpace::posMapBlockOf(BlockId id) const
{
    const std::uint32_t level = levelOf(id);
    // Index of this block within its own level.
    const std::uint64_t index =
        level == 0 ? id.value() : id - levelBase_[level - 1];
    if (level >= levelBase_.size()) {
        // The covering table is on-chip.
        return kInvalidBlock;
    }
    return levelBase_[level] + index / fanout_;
}

BlockId
BlockSpace::levelBase(std::uint32_t level) const
{
    panic_if(level == 0 || level > levelBase_.size(),
             "pos-map level ", level, " out of range");
    return levelBase_[level - 1];
}

std::uint64_t
BlockSpace::levelCount(std::uint32_t level) const
{
    panic_if(level == 0 || level > levelCount_.size(),
             "pos-map level ", level, " out of range");
    return levelCount_[level - 1];
}

PositionMap::PositionMap(std::uint64_t num_blocks, Leaf num_leaves)
    : entries_(num_blocks), numLeaves_(num_leaves)
{
    fatal_if(num_leaves == Leaf{0},
             "position map needs at least one leaf");
}

PosEntry &
PositionMap::entry(BlockId id)
{
    panic_if(id.value() >= entries_.size(), "pos-map index ", id,
             " out of range");
    return entries_[id.value()];
}

const PosEntry &
PositionMap::entry(BlockId id) const
{
    panic_if(id.value() >= entries_.size(), "pos-map index ", id,
             " out of range");
    return entries_[id.value()];
}

PosMapBlockCache::PosMapBlockCache(std::uint32_t entries)
    : capacity_(entries), nodes_(entries), index_(entries)
{
    fatal_if(entries == 0, "PLB needs at least one entry");
}

void
PosMapBlockCache::unlink(std::uint32_t slot)
{
    Node &n = nodes_[slot];
    if (n.prev != kNil)
        nodes_[n.prev].next = n.next;
    else
        head_ = n.next;
    if (n.next != kNil)
        nodes_[n.next].prev = n.prev;
    else
        tail_ = n.prev;
}

void
PosMapBlockCache::linkFront(std::uint32_t slot)
{
    Node &n = nodes_[slot];
    n.prev = kNil;
    n.next = head_;
    if (head_ != kNil)
        nodes_[head_].prev = slot;
    head_ = slot;
    if (tail_ == kNil)
        tail_ = slot;
}

bool
PosMapBlockCache::lookup(BlockId pm_block)
{
    const std::uint32_t slot = index_.get(pm_block.value());
    if (slot == FlatIndex::kNone) {
        ++misses_;
        return false;
    }
    ++hits_;
    if (head_ != slot) {
        unlink(slot);
        linkFront(slot);
    }
    return true;
}

void
PosMapBlockCache::insert(BlockId pm_block)
{
    std::uint32_t slot = index_.get(pm_block.value());
    if (slot != FlatIndex::kNone) {
        if (head_ != slot) {
            unlink(slot);
            linkFront(slot);
        }
        return;
    }
    if (used_ < capacity_) {
        slot = used_++;
    } else {
        slot = tail_;
        index_.erase(nodes_[slot].id.value());
        unlink(slot);
    }
    nodes_[slot].id = pm_block;
    linkFront(slot);
    index_.put(pm_block.value(), slot);
}

bool
PosMapBlockCache::contains(BlockId pm_block) const
{
    return index_.get(pm_block.value()) != FlatIndex::kNone;
}

} // namespace proram
