/**
 * @file
 * Fixed-size trace-decode batch for the simulation drive loop. The
 * core decodes up to one batch of records at a time
 * (TraceGenerator::fillBatch), then retires them in a tight loop with
 * per-batch statistics flushes, amortizing the per-record virtual
 * dispatch and counter updates of the one-request-at-a-time loop.
 * Batching is purely a drive-loop mechanism: records retire in the
 * same order with the same per-record semantics, so results are
 * bit-identical for every batch size (pinned by
 * tests/integration/batched_drive_test.cc).
 */

#ifndef PRORAM_CPU_REQUEST_BATCH_HH
#define PRORAM_CPU_REQUEST_BATCH_HH

#include <cstddef>

#include "trace/generator.hh"

namespace proram
{

/** One decode batch: a bounded record buffer refilled in place. */
struct RequestBatch
{
    /** Hard cap on records per refill (buffer size). */
    static constexpr std::size_t kCapacity = 256;
    /** Default refill size; large enough to amortize dispatch,
     *  small enough to stay L1-resident. */
    static constexpr std::size_t kDefaultSize = 64;

    TraceRecord records[kCapacity];
    std::size_t size = 0;
};

/** Batch size from $PRORAM_BATCH, clamped to [1, kCapacity];
 *  kDefaultSize when unset or unparsable. */
std::size_t batchSizeFromEnv();

/** Hard cap on concurrent drive workers (queue drain threads). */
inline constexpr unsigned kMaxDriveWorkers = 64;

/** Worker count from $PRORAM_WORKERS, clamped to
 *  [1, kMaxDriveWorkers]; 1 (serial drive) when unset or
 *  unparsable. Workers > 1 select the concurrent queue-drain mode
 *  (System::runQueue) instead of the serial replay loop. */
unsigned workersFromEnv();

} // namespace proram

#endif // PRORAM_CPU_REQUEST_BATCH_HH
