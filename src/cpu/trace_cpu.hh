/**
 * @file
 * Trace-driven in-order core (Table 1: 1 GHz, in-order, blocking
 * loads). Consumes TraceRecords, walks the cache hierarchy, and
 * stalls on the memory backend for LLC misses; dirty LLC victims
 * become backend write-backs that do not stall the core but occupy
 * the memory controller.
 */

#ifndef PRORAM_CPU_TRACE_CPU_HH
#define PRORAM_CPU_TRACE_CPU_HH

#include <cstdint>

#include "mem/backend.hh"
#include "mem/cache_hierarchy.hh"
#include "trace/generator.hh"

namespace proram
{

/** Per-run results (inputs to every figure's metric). */
struct CpuRunResult
{
    Cycles cycles = 0;
    std::uint64_t references = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t writebacks = 0;
};

/** The core. */
class TraceCpu
{
  public:
    TraceCpu(CacheHierarchy &hierarchy, MemBackend &backend,
             std::uint32_t line_bytes);

    /**
     * Run the whole trace; at the end, drain dirty LLC lines through
     * the backend (so schemes pay for the write traffic they incur)
     * and let the backend settle periodic dummies.
     */
    CpuRunResult run(TraceGenerator &gen);

  private:
    CacheHierarchy &hierarchy_;
    MemBackend &backend_;
    std::uint32_t lineShift_;
};

} // namespace proram

#endif // PRORAM_CPU_TRACE_CPU_HH
