/**
 * @file
 * Trace-driven in-order core (Table 1: 1 GHz, in-order, blocking
 * loads). Consumes TraceRecords batch-wise: records are decoded into
 * a fixed-size RequestBatch (one fillBatch call per batch instead of
 * one virtual next() per record) and retired in a tight loop whose
 * run counters live in locals, flushed once per batch. Retirement
 * order and per-record semantics are unchanged, so results are
 * bit-identical for every batch size. LLC misses stall the core on
 * the memory backend; dirty LLC victims become backend write-backs
 * that do not stall the core but occupy the memory controller.
 */

#ifndef PRORAM_CPU_TRACE_CPU_HH
#define PRORAM_CPU_TRACE_CPU_HH

#include <cstdint>

#include "cpu/request_batch.hh"
#include "mem/backend.hh"
#include "mem/cache_hierarchy.hh"
#include "trace/generator.hh"

namespace proram
{

/** Per-run results (inputs to every figure's metric). */
struct CpuRunResult
{
    Cycles cycles{0};
    std::uint64_t references = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t writebacks = 0;
};

/** The core. */
class TraceCpu
{
  public:
    /** @param batch_size records decoded per fillBatch call, clamped
     *  to [1, RequestBatch::kCapacity]; 0 = $PRORAM_BATCH / default. */
    TraceCpu(CacheHierarchy &hierarchy, MemBackend &backend,
             std::uint32_t line_bytes, std::size_t batch_size = 0);

    /**
     * Run the whole trace; at the end, drain dirty LLC lines through
     * the backend (so schemes pay for the write traffic they incur)
     * and let the backend settle periodic dummies.
     */
    CpuRunResult run(TraceGenerator &gen);

    std::size_t batchSize() const { return batchSize_; }

  private:
    CacheHierarchy &hierarchy_;
    MemBackend &backend_;
    std::uint32_t lineShift_;
    std::size_t batchSize_;
};

} // namespace proram

#endif // PRORAM_CPU_TRACE_CPU_HH
