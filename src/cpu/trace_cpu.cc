#include "cpu/trace_cpu.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace proram
{

TraceCpu::TraceCpu(CacheHierarchy &hierarchy, MemBackend &backend,
                   std::uint32_t line_bytes)
    : hierarchy_(hierarchy), backend_(backend),
      lineShift_(log2Floor(line_bytes))
{
    fatal_if(!isPowerOf2(line_bytes), "line size must be a power of two");
}

CpuRunResult
TraceCpu::run(TraceGenerator &gen)
{
    CpuRunResult res;
    Cycles cycle = 0;
    TraceRecord rec;

    while (gen.next(rec)) {
        ++res.references;
        cycle += rec.computeCycles;

        const BlockId block = rec.addr >> lineShift_;
        const HitLevel level = hierarchy_.lookup(block, rec.op);

        switch (level) {
          case HitLevel::L1:
            cycle += hierarchy_.hitLatency(HitLevel::L1);
            ++res.l1Hits;
            break;

          case HitLevel::L2:
            cycle += hierarchy_.hitLatency(HitLevel::L2);
            ++res.l2Hits;
            backend_.onDemandTouch(cycle, block);
            break;

          case HitLevel::Miss: {
            ++res.llcMisses;
            const Cycles issue =
                cycle + hierarchy_.hitLatency(HitLevel::L2);
            cycle = backend_.demandAccess(issue, block, rec.op);
            backend_.onDemandTouch(cycle, block);
            for (const EvictedLine &v : hierarchy_.fillFromMemory(
                     block, rec.op == OpType::Write)) {
                backend_.writebackAccess(cycle, v.block);
                ++res.writebacks;
            }
            break;
          }
        }
    }

    // Drain: dirty lines must eventually reach memory; charging them
    // keeps the energy metric honest across schemes.
    for (BlockId b : hierarchy_.drainDirty()) {
        backend_.writebackAccess(cycle, b);
        ++res.writebacks;
    }
    backend_.finalize(cycle);

    res.cycles = cycle;
    return res;
}

} // namespace proram
