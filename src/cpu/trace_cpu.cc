#include "cpu/trace_cpu.hh"

#include <algorithm>
#include <cstdlib>

#include "obs/trace.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace proram
{

std::size_t
batchSizeFromEnv()
{
    const char *env = std::getenv("PRORAM_BATCH");
    if (!env)
        return RequestBatch::kDefaultSize;
    const long v = std::atol(env);
    if (v <= 0)
        return RequestBatch::kDefaultSize;
    return std::min<std::size_t>(static_cast<std::size_t>(v),
                                 RequestBatch::kCapacity);
}

unsigned
workersFromEnv()
{
    const char *env = std::getenv("PRORAM_WORKERS");
    if (!env)
        return 1;
    const long v = std::atol(env);
    if (v <= 0)
        return 1;
    return std::min<unsigned>(static_cast<unsigned>(v),
                              kMaxDriveWorkers);
}

TraceCpu::TraceCpu(CacheHierarchy &hierarchy, MemBackend &backend,
                   std::uint32_t line_bytes, std::size_t batch_size)
    : hierarchy_(hierarchy), backend_(backend),
      lineShift_(log2Floor(line_bytes)),
      batchSize_(batch_size == 0
                     ? batchSizeFromEnv()
                     : std::min(batch_size, RequestBatch::kCapacity))
{
    fatal_if(!isPowerOf2(line_bytes), "line size must be a power of two");
}

CpuRunResult
TraceCpu::run(TraceGenerator &gen)
{
    CpuRunResult res;
    Cycles cycle{0};
    RequestBatch batch;

    for (;;) {
        batch.size = gen.fillBatch(batch.records, batchSize_);
        if (batch.size == 0)
            break;
        PRORAM_TRACE_SCOPE_ARG("cpu", "batch", "size", batch.size);

        // Per-batch counters: retire the whole batch against locals,
        // flush once. Retirement itself is record-at-a-time (the
        // blocking core serializes misses anyway); the amortization
        // is in decode and accounting.
        std::uint64_t l1_hits = 0;
        std::uint64_t l2_hits = 0;
        std::uint64_t llc_misses = 0;
        std::uint64_t writebacks = 0;

        for (std::size_t r = 0; r < batch.size; ++r) {
            const TraceRecord &rec = batch.records[r];
            cycle += Cycles{rec.computeCycles};

            const BlockId block{rec.addr >> lineShift_};
            const HitLevel level = hierarchy_.lookup(block, rec.op);

            switch (level) {
              case HitLevel::L1:
                cycle += hierarchy_.hitLatency(HitLevel::L1);
                ++l1_hits;
                break;

              case HitLevel::L2:
                cycle += hierarchy_.hitLatency(HitLevel::L2);
                ++l2_hits;
                backend_.onDemandTouch(cycle, block);
                break;

              case HitLevel::Miss: {
                ++llc_misses;
                PRORAM_TRACE_EVENT("cpu", "llcMiss", "block", block);
                const Cycles issue =
                    cycle + hierarchy_.hitLatency(HitLevel::L2);
                cycle = backend_.demandAccess(issue, block, rec.op);
                backend_.onDemandTouch(cycle, block);
                for (const EvictedLine &v : hierarchy_.fillFromMemory(
                         block, rec.op == OpType::Write)) {
                    backend_.writebackAccess(cycle, v.block);
                    ++writebacks;
                }
                break;
              }
            }
        }

        res.references += batch.size;
        res.l1Hits += l1_hits;
        res.l2Hits += l2_hits;
        res.llcMisses += llc_misses;
        res.writebacks += writebacks;
    }

    // Drain: dirty lines must eventually reach memory; charging them
    // keeps the energy metric honest across schemes. The drain list
    // goes down as one batch (the backend devirtualizes the loop).
    const std::vector<BlockId> dirty = hierarchy_.drainDirty();
    backend_.writebackBatch(cycle, dirty.data(), dirty.size());
    res.writebacks += dirty.size();
    backend_.finalize(cycle);

    res.cycles = cycle;
    return res;
}

} // namespace proram
