/**
 * @file
 * The insecure DRAM memory backend (the paper's "dram" baseline),
 * optionally fronted by the traditional stream prefetcher + prefetch
 * buffer ("dram_pre" in Fig. 5). Bank-level parallelism lets demand
 * latency overlap with prefetch transfers; only the bus serializes.
 */

#ifndef PRORAM_MEM_DRAM_BACKEND_HH
#define PRORAM_MEM_DRAM_BACKEND_HH

#include <deque>
#include <memory>
#include <unordered_map>

#include "mem/backend.hh"
#include "mem/dram.hh"
#include "mem/stream_prefetcher.hh"

namespace proram
{

/** DRAM backend configuration. */
struct DramBackendConfig
{
    DramConfig dram{};
    bool prefetch = false;
    PrefetcherConfig prefetcher{};
    /** Prefetch buffer (stream buffer) capacity in lines. */
    std::uint32_t bufferLines = 32;
};

/** The backend. */
class DramBackend : public MemBackend
{
  public:
    explicit DramBackend(const DramBackendConfig &cfg);

    Cycles demandAccess(Cycles now, BlockId block, OpType op) override;
    void writebackAccess(Cycles now, BlockId block) override;
    void onDemandTouch(Cycles now, BlockId block) override;
    std::uint64_t memAccessCount() const override;

    std::uint64_t prefetchBufferHits() const { return bufferHits_; }
    const StreamPrefetcher *prefetcher() const { return pf_.get(); }

  private:
    void issuePrefetches(Cycles now, BlockId trigger);

    DramBackendConfig cfg_;
    DramModel dram_;
    std::unique_ptr<StreamPrefetcher> pf_;

    /** Prefetched line -> data-ready cycle. */
    std::unordered_map<BlockId, Cycles> buffer_;
    std::deque<BlockId> bufferFifo_;
    std::uint64_t bufferHits_ = 0;
};

} // namespace proram

#endif // PRORAM_MEM_DRAM_BACKEND_HH
