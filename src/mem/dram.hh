/**
 * @file
 * Flat-latency, bandwidth-limited DRAM timing model.
 *
 * Matches the Graphite DRAM model used by the paper (Sec. 5.1): a fixed
 * access latency (100 cycles) plus a shared data bus whose bandwidth is
 * the pin bandwidth (16 GB/s at 1 GHz => 16 bytes/cycle). Unlike the
 * ORAM backend, multiple DRAM requests may overlap (bank-level
 * parallelism): only the bus transfer serializes.
 */

#ifndef PRORAM_MEM_DRAM_HH
#define PRORAM_MEM_DRAM_HH

#include "stats/stats.hh"
#include "util/types.hh"

namespace proram
{

/** Configuration for the DRAM timing model. */
struct DramConfig
{
    /** Fixed access latency in cycles (row access + controller). */
    Cycles latency{100};
    /** Bus bandwidth in bytes per core cycle (16 GB/s @ 1 GHz = 16). */
    double bytesPerCycle = 16.0;
    /** Transfer granularity = cache line size in bytes. */
    std::uint32_t lineBytes = 128;
};

/**
 * DRAM timing engine. Tracks when the shared bus frees up; each
 * transfer occupies lineBytes/bytesPerCycle cycles of bus time and the
 * data arrives latency + transfer cycles after the bus grant.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &cfg);

    /**
     * Schedule one line transfer issued at cycle @p now.
     * @return the cycle at which the data is available.
     */
    Cycles schedule(Cycles now);

    /** Cycle at which the bus next becomes free. */
    Cycles busFreeAt() const { return busFreeAt_; }

    /** Bus-occupancy cycles of one line transfer. */
    Cycles transferCycles() const { return transferCycles_; }

    /** Fixed portion of the access latency. */
    Cycles latency() const { return cfg_.latency; }

    std::uint64_t numTransfers() const { return transfers_.value(); }

  private:
    DramConfig cfg_;
    Cycles transferCycles_;
    Cycles busFreeAt_{0};
    stats::Counter transfers_;
};

} // namespace proram

#endif // PRORAM_MEM_DRAM_HH
