#include "mem/cache.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"

namespace proram
{

SetAssocCache::SetAssocCache(const CacheConfig &cfg) : cfg_(cfg)
{
    fatal_if(cfg.lineBytes == 0 || !isPowerOf2(cfg.lineBytes),
             "cache line size must be a power of two");
    fatal_if(cfg.ways == 0, "cache must have at least one way");
    fatal_if(cfg.sizeBytes % (static_cast<std::uint64_t>(cfg.ways) *
                              cfg.lineBytes) != 0,
             "cache size must be a multiple of ways * lineBytes");
    numSets_ = cfg.numSets();
    fatal_if(numSets_ == 0, "cache has zero sets");
    fatal_if(!isPowerOf2(numSets_), "number of sets must be a power of 2");
    lines_.resize(numSets_ * cfg.ways);
}

std::uint64_t
SetAssocCache::setIndex(BlockId block) const
{
    return block.value() & (numSets_ - 1);
}

SetAssocCache::Line *
SetAssocCache::findLine(BlockId block)
{
    const std::uint64_t base = setIndex(block) * cfg_.ways;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        Line &l = lines_[base + w];
        if (l.valid && l.block == block)
            return &l;
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(BlockId block) const
{
    return const_cast<SetAssocCache *>(this)->findLine(block);
}

bool
SetAssocCache::access(BlockId block, OpType op)
{
    Line *l = findLine(block);
    if (!l) {
        ++misses_;
        return false;
    }
    ++hits_;
    l->lruStamp = ++lruClock_;
    if (op == OpType::Write)
        l->dirty = true;
    return true;
}

bool
SetAssocCache::probe(BlockId block) const
{
    return findLine(block) != nullptr;
}

void
SetAssocCache::markDirty(BlockId block)
{
    if (Line *l = findLine(block))
        l->dirty = true;
}

std::optional<EvictedLine>
SetAssocCache::insert(BlockId block, bool dirty, bool low_priority)
{
    if (Line *l = findLine(block)) {
        // Re-insertion of a resident line just refreshes state.
        l->dirty = l->dirty || dirty;
        if (!low_priority)
            l->lruStamp = ++lruClock_;
        return std::nullopt;
    }

    const std::uint64_t base = setIndex(block) * cfg_.ways;
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        Line &l = lines_[base + w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (!victim || l.lruStamp < victim->lruStamp)
            victim = &l;
    }

    std::optional<EvictedLine> evicted;
    if (victim->valid) {
        evicted = EvictedLine{victim->block, victim->dirty};
        if (victim->dirty)
            ++dirtyEvictions_;
    }

    victim->block = block;
    victim->valid = true;
    victim->dirty = dirty;
    // Low-priority (prefetch) insertions take the LRU position: they
    // are the set's next victim unless a demand hit promotes them.
    victim->lruStamp = low_priority ? 0 : ++lruClock_;
    return evicted;
}

std::optional<EvictedLine>
SetAssocCache::peekVictim(BlockId block) const
{
    if (probe(block))
        return std::nullopt;
    const std::uint64_t base = setIndex(block) * cfg_.ways;
    const Line *victim = nullptr;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        const Line &l = lines_[base + w];
        if (!l.valid)
            return std::nullopt;
        if (!victim || l.lruStamp < victim->lruStamp)
            victim = &l;
    }
    return EvictedLine{victim->block, victim->dirty};
}

std::optional<bool>
SetAssocCache::peekDirty(BlockId block) const
{
    const Line *l = findLine(block);
    if (!l)
        return std::nullopt;
    return l->dirty;
}

std::optional<bool>
SetAssocCache::invalidate(BlockId block)
{
    Line *l = findLine(block);
    if (!l)
        return std::nullopt;
    l->valid = false;
    const bool was_dirty = l->dirty;
    l->dirty = false;
    l->block = kInvalidBlock;
    return was_dirty;
}

std::vector<BlockId>
SetAssocCache::residentBlocks() const
{
    std::vector<BlockId> out;
    for (const Line &l : lines_) {
        if (l.valid)
            out.push_back(l.block);
    }
    return out;
}

} // namespace proram
