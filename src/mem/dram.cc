#include "mem/dram.hh"

#include <algorithm>
#include <cmath>

#include "obs/trace.hh"
#include "util/logging.hh"

namespace proram
{

DramModel::DramModel(const DramConfig &cfg) : cfg_(cfg)
{
    fatal_if(cfg.bytesPerCycle <= 0.0, "DRAM bandwidth must be positive");
    fatal_if(cfg.lineBytes == 0, "DRAM line size must be positive");
    transferCycles_ = Cycles{static_cast<std::uint64_t>(
        std::ceil(cfg.lineBytes / cfg.bytesPerCycle))};
    if (transferCycles_ == Cycles{0})
        transferCycles_ = Cycles{1};
}

Cycles
DramModel::schedule(Cycles now)
{
    const Cycles start = std::max(now, busFreeAt_);
    busFreeAt_ = start + transferCycles_;
    ++transfers_;
    PRORAM_TRACE_EVENT("dram", "transfer", "busStart", start);
    return start + cfg_.latency + transferCycles_;
}

} // namespace proram
