/**
 * @file
 * Pluggable storage backends for the Path ORAM slot arena
 * (DESIGN.md Sec. 12).
 *
 * The tree's id/payload/free-count lanes are split into fixed-size
 * *chunks* of consecutive heap-order buckets (a power of two, default
 * sized so one chunk's lanes span a small number of pages). A chunk
 * that has never been written does not exist: it reads as all-dummy
 * (every slot id == kInvalidBlock, occupancy 0) without touching any
 * memory, so a 2^26-block tree costs only its touched fraction. Three
 * backends provide the storage:
 *
 *  - Dense: every chunk is materialized at construction into three
 *    contiguous per-lane allocations (the pre-arena layout; the
 *    default, keeping fixed-seed goldens bit-identical and the hot
 *    scans globally contiguous).
 *  - Sparse: chunks are heap-allocated on first write and published
 *    into an atomic chunk directory.
 *  - Mmap: one large MAP_NORESERVE mapping (anonymous or file-backed)
 *    reserved up front; materialization touches only the chunk's id
 *    and free-count pages. Linux-only; optionally MADV_HUGEPAGE.
 *
 * First-touch is thread-safe under PRORAM_WORKERS: readers
 * acquire-load the chunk's id-lane pointer from the directory (null
 * means implicit all-dummy) and writers materialize under a striped
 * chunk-level once-latch, release-storing the pointer last. The
 * materialization coordinate is the *public* heap node index - the
 * same value the simulated server observes for every bucket touched -
 * so demand materialization leaks nothing beyond the access pattern
 * Path ORAM already publishes (DESIGN.md Sec. 12).
 *
 * Selection: OramConfig::arena, or the PRORAM_ARENA /
 * PRORAM_ARENA_CHUNK / PRORAM_ARENA_FILE / PRORAM_ARENA_HUGE
 * environment variables when the config leaves the default
 * (EXPERIMENTS.md).
 */

#ifndef PRORAM_MEM_ARENA_HH
#define PRORAM_MEM_ARENA_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/mutex.hh"
#include "util/types.hh"

namespace proram
{

/** Which slot-arena storage backend backs the tree. */
enum class ArenaKind : std::uint8_t
{
    Default, ///< resolve from $PRORAM_ARENA, falling back to Dense
    Dense,   ///< eager contiguous lanes (pre-arena layout)
    Sparse,  ///< chunks heap-allocated on first write
    Mmap,    ///< reserved mapping, materialized per chunk
};

/** Printable backend name ("dense" / "sparse" / "mmap"). */
const char *arenaKindName(ArenaKind kind);

/** Parse a PRORAM_ARENA value; throws SimFatal on unknown names. */
ArenaKind parseArenaKind(const std::string &name);

/** User-facing arena selection, embedded in OramConfig. */
struct ArenaOptions
{
    ArenaKind kind = ArenaKind::Default;
    /**
     * Buckets per chunk (power of two). 0 = $PRORAM_ARENA_CHUNK or
     * the built-in default (kDefaultChunkBuckets).
     */
    std::uint32_t chunkBuckets = 0;
    /**
     * Mmap backend only: backing file path. Empty = $PRORAM_ARENA_FILE
     * or an anonymous mapping.
     */
    std::string mmapPath;
    /** Mmap backend only: advise transparent huge pages. */
    bool hugePages = false;

    /**
     * The options a tree will actually run with: every defaulted
     * field replaced by its environment override or built-in value.
     */
    ArenaOptions resolved() const;

    /** Throws SimFatal on invalid combinations (bad chunk size). */
    void validate() const;
};

/**
 * Chunked slot-arena storage shared by all backends: the atomic chunk
 * directory, the first-touch latch, the all-dummy fill and the
 * materialization counters. Derived classes only provide raw lane
 * storage for one chunk (provideChunk) and a name.
 *
 * Thread safety: view() is wait-free (one acquire load); concurrent
 * materialize() calls for the same chunk serialize on a striped mutex
 * and all but one become lookups. Counter reads are monotonic
 * snapshots.
 */
class ArenaBackend
{
  public:
    /** Default chunk geometry: 256 buckets = 10 KiB of id lane + free
     *  lane + payload at Z=3, a small number of 4 KiB pages. */
    static constexpr std::uint32_t kDefaultChunkBuckets = 256;

    /** Build the backend selected by @p opts (after resolved()) for a
     *  tree of @p num_buckets buckets of @p z slots each. */
    static std::unique_ptr<ArenaBackend>
    make(const ArenaOptions &opts, std::uint64_t num_buckets,
         std::uint32_t z);

    virtual ~ArenaBackend();

    ArenaBackend(const ArenaBackend &) = delete;
    ArenaBackend &operator=(const ArenaBackend &) = delete;

    /** Lane pointers for one materialized chunk (slot i of the
     *  chunk's bucket c lives at index c*z+i of ids/data). */
    struct Lanes
    {
        BlockId *ids = nullptr;
        std::uint64_t *data = nullptr;
        std::uint32_t *free = nullptr;
    };

    /** Read-only lane pointers; all null while the chunk is
     *  implicit (all-dummy). */
    struct View
    {
        const BlockId *ids = nullptr;
        const std::uint64_t *data = nullptr;
        const std::uint32_t *free = nullptr;
    };

    /** @name Geometry. @{ */
    std::uint64_t numBuckets() const { return numBuckets_; }
    std::uint32_t z() const { return z_; }
    std::uint32_t chunkBuckets() const { return chunkBuckets_; }
    std::uint32_t chunkShift() const { return chunkShift_; }
    std::uint64_t numChunks() const { return numChunks_; }
    /** Footprint of one chunk's three lanes, in bytes. */
    std::uint64_t chunkBytes() const { return chunkBytes_; }
    /** @} */

    virtual const char *name() const = 0;

    /**
     * Read access to chunk @p chunk. Null pointers mean the chunk is
     * still implicit: every slot id reads kInvalidBlock, every
     * bucket has z() free slots, payloads read 0. Never materializes
     * (reads must stay O(0) memory - see BinaryTree).
     */
    View view(std::uint64_t chunk) const
    {
        const Chunk &c = chunks_[chunk];
        // Release/acquire pairing with materialize(): observing the
        // id pointer implies the data/free pointers and the
        // all-dummy lane fill are visible too.
        const BlockId *ids = c.ids.load(std::memory_order_acquire);
        if (ids == nullptr)
            return View{};
        return View{ids, c.data, c.free};
    }

    /** Writable lanes of chunk @p chunk, or all-null if implicit. */
    Lanes lanes(std::uint64_t chunk)
    {
        const Chunk &c = chunks_[chunk];
        BlockId *ids = c.ids.load(std::memory_order_acquire);
        if (ids == nullptr)
            return Lanes{};
        return Lanes{ids, c.data, c.free};
    }

    /**
     * Materialize chunk @p chunk (idempotent, thread-safe): allocate
     * its lanes, fill the id lane with kInvalidBlock and the free
     * lane with z (the payload lane is left unwritten - dummy
     * payloads are never read), publish, count. The argument is a
     * public tree coordinate; see the file comment.
     */
    Lanes materialize(std::uint64_t chunk);

    bool materialized(std::uint64_t chunk) const
    {
        return chunks_[chunk].ids.load(std::memory_order_acquire) !=
               nullptr;
    }

    /** @name Telemetry (PR-4 metrics registry / `arena` traces). @{ */
    std::uint64_t chunksMaterialized() const
    {
        return chunksMaterialized_.load(std::memory_order_relaxed);
    }
    /** Lane bytes of materialized chunks (chunkBytes granularity). */
    std::uint64_t bytesResident() const
    {
        return chunksMaterialized() * chunkBytes_;
    }
    /** Lane bytes if every chunk were materialized (dense cost). */
    std::uint64_t bytesTotal() const
    {
        return numChunks_ * chunkBytes_;
    }
    /** @} */

  protected:
    ArenaBackend(std::uint64_t num_buckets, std::uint32_t z,
                 std::uint32_t chunk_buckets);

    /** Raw (uninitialized) lane storage for chunk @p chunk. Called
     *  once per chunk under its once-latch. */
    virtual Lanes provideChunk(std::uint64_t chunk) = 0;

    /** Dense construction path: materialize every chunk without
     *  per-chunk trace events. */
    void materializeAll();

    /** Slots per chunk (chunkBuckets * z), for lane sizing. */
    std::uint64_t chunkSlots() const
    {
        return static_cast<std::uint64_t>(chunkBuckets_) * z_;
    }

  private:
    struct Chunk
    {
        /** Publication point: non-null once the chunk's all-dummy
         *  fill is complete (release-stored last). */
        std::atomic<BlockId *> ids{nullptr};
        std::uint64_t *data = nullptr;
        std::uint32_t *free = nullptr;
    };

    Lanes materializeLocked(std::uint64_t chunk, bool trace);

    std::uint64_t numBuckets_;
    std::uint32_t z_;
    std::uint32_t chunkBuckets_;
    std::uint32_t chunkShift_;
    std::uint64_t numChunks_;
    std::uint64_t chunkBytes_;
    std::unique_ptr<Chunk[]> chunks_;

    /** Striped first-touch once-latches (chunk -> stripe). Rank Leaf:
     *  held only around provideChunk + lane fill, deepest in the
     *  hierarchy (a writer reaching materialize() may already hold a
     *  node lock), and never while taking any other ranked lock. */
    static constexpr std::size_t kLatchStripes = 64;
    std::array<util::Mutex, kLatchStripes> latches_;

    std::atomic<std::uint64_t> chunksMaterialized_{0};
};

} // namespace proram

#endif // PRORAM_MEM_ARENA_HH
