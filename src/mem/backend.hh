/**
 * @file
 * The memory-backend interface the trace CPU drives: an insecure DRAM
 * or an ORAM controller, interchangeable below the cache hierarchy.
 */

#ifndef PRORAM_MEM_BACKEND_HH
#define PRORAM_MEM_BACKEND_HH

#include <cstddef>

#include "util/types.hh"

namespace proram
{

/**
 * One memory controller serving LLC misses and write-backs. All
 * methods are functional *and* timed: `now` is the issue cycle, the
 * return value the completion cycle.
 */
class MemBackend
{
  public:
    virtual ~MemBackend() = default;

    /** Demand LLC miss; the core stalls until the returned cycle. */
    virtual Cycles demandAccess(Cycles now, BlockId block, OpType op) = 0;

    /**
     * Dirty-victim write-back; the core does not wait, but the
     * transfer occupies the controller.
     */
    virtual void writebackAccess(Cycles now, BlockId block) = 0;

    /**
     * Batched write-backs, semantically identical to calling
     * writebackAccess() once per block in order. Backends override
     * to retire the batch without per-block virtual dispatch.
     */
    virtual void writebackBatch(Cycles now, const BlockId *blocks,
                                std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            writebackAccess(now, blocks[i]);
    }

    /** The core demand-touched @p block in the hierarchy (cache hit
     *  or miss-return); lets prefetchers train and hit bits set. */
    virtual void onDemandTouch(Cycles now, BlockId block)
    {
        (void)now;
        (void)block;
    }

    /** End-of-run settlement (periodic dummies etc.). */
    virtual void finalize(Cycles end) { (void)end; }

    /**
     * Total memory-subsystem accesses for the energy proxy the paper
     * plots ("Norm. Memory Accesses"): for ORAM, path accesses
     * including background evictions and periodic dummies.
     */
    virtual std::uint64_t memAccessCount() const = 0;
};

} // namespace proram

#endif // PRORAM_MEM_BACKEND_HH
