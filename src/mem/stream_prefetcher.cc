#include "mem/stream_prefetcher.hh"

#include "util/logging.hh"

namespace proram
{

StreamPrefetcher::StreamPrefetcher(const PrefetcherConfig &cfg)
    : cfg_(cfg), streams_(cfg.numStreams)
{
    fatal_if(cfg.numStreams == 0, "prefetcher needs at least one stream");
    fatal_if(cfg.degree == 0, "prefetch degree must be at least 1");
}

StreamPrefetcher::Stream *
StreamPrefetcher::findStream(BlockId block, int *direction_out)
{
    for (Stream &s : streams_) {
        if (!s.valid)
            continue;
        if (block == s.lastBlock + 1) {
            *direction_out = +1;
            return &s;
        }
        if (s.lastBlock != BlockId{0} && block == s.lastBlock - 1) {
            *direction_out = -1;
            return &s;
        }
    }
    return nullptr;
}

StreamPrefetcher::Stream &
StreamPrefetcher::allocateStream(BlockId block)
{
    Stream *victim = nullptr;
    for (Stream &s : streams_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (!victim || s.lruStamp < victim->lruStamp)
            victim = &s;
    }
    *victim = Stream{};
    victim->valid = true;
    victim->lastBlock = block;
    victim->frontier = block;
    victim->lruStamp = ++lruClock_;
    return *victim;
}

std::vector<BlockId>
StreamPrefetcher::observe(BlockId block)
{
    std::vector<BlockId> out;

    int direction = 0;
    Stream *s = findStream(block, &direction);
    if (!s) {
        allocateStream(block);
        return out;
    }

    s->lruStamp = ++lruClock_;
    if (s->direction == direction) {
        ++s->confidence;
    } else {
        s->direction = direction;
        s->confidence = 1;
        s->trained = false;
        s->frontier = block;
    }
    s->lastBlock = block;

    if (!s->trained && s->confidence >= cfg_.trainThreshold) {
        s->trained = true;
        s->frontier = block;
        ++trained_;
    }
    if (!s->trained)
        return out;

    // Run the frontier up to `distance` blocks ahead of the demand
    // stream, issuing at most `degree` prefetches per trigger.
    const std::int64_t dir = s->direction;
    for (std::uint32_t i = 0; i < cfg_.degree; ++i) {
        const std::int64_t ahead =
            dir * (static_cast<std::int64_t>(s->frontier.value()) -
                   static_cast<std::int64_t>(block.value()));
        if (ahead >= static_cast<std::int64_t>(cfg_.distance))
            break;
        const std::int64_t next =
            static_cast<std::int64_t>(s->frontier.value()) + dir;
        if (next < 0)
            break;
        s->frontier = BlockId{static_cast<std::uint64_t>(next)};
        out.push_back(s->frontier);
        ++issued_;
    }
    return out;
}

} // namespace proram
