#include "mem/arena.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "obs/trace.hh"
#include "util/annotations.hh"
#include "util/bits.hh"
#include "util/logging.hh"

#if defined(__linux__)
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace proram
{

namespace
{

/**
 * Per-lane byte offsets inside one chunk's storage block. The id lane
 * leads so the publication pointer is also the block base; 8-byte
 * alignment holds throughout (ids and payloads are 8-byte, the free
 * lane trails and only needs 4).
 */
struct ChunkLayout
{
    std::uint64_t idBytes;
    std::uint64_t dataBytes;
    std::uint64_t freeBytes;
    std::uint64_t totalBytes;
};

ChunkLayout
chunkLayout(std::uint64_t chunk_slots, std::uint32_t chunk_buckets)
{
    ChunkLayout l;
    l.idBytes = chunk_slots * sizeof(BlockId);
    l.dataBytes = chunk_slots * sizeof(std::uint64_t);
    l.freeBytes =
        static_cast<std::uint64_t>(chunk_buckets) * sizeof(std::uint32_t);
    l.totalBytes = l.idBytes + l.dataBytes + l.freeBytes;
    return l;
}

ArenaBackend::Lanes
lanesAt(std::byte *base, const ChunkLayout &l)
{
    ArenaBackend::Lanes lanes;
    lanes.ids = reinterpret_cast<BlockId *>(base);
    lanes.data =
        reinterpret_cast<std::uint64_t *>(base + l.idBytes);
    lanes.free = reinterpret_cast<std::uint32_t *>(base + l.idBytes +
                                                   l.dataBytes);
    return lanes;
}

const char *
envOrNull(const char *name)
{
    return std::getenv(name);
}

/**
 * Eager backend: one allocation holding every chunk back-to-back
 * (the pre-arena contiguous layout, chunk-major). All chunks are
 * materialized at construction; the payload lane is left
 * uninitialized even here (the "small fix": dummy payloads are never
 * read, so zero-filling 2/3 of the arena bought nothing).
 */
class DenseArena final : public ArenaBackend
{
  public:
    DenseArena(std::uint64_t num_buckets, std::uint32_t z,
               std::uint32_t chunk_buckets)
        : ArenaBackend(num_buckets, z, chunk_buckets),
          layout_(chunkLayout(chunkSlots(), chunkBuckets())),
          storage_(new std::byte[layout_.totalBytes * numChunks()])
    {
        materializeAll();
    }

    const char *name() const override { return "dense"; }

  protected:
    Lanes provideChunk(std::uint64_t chunk) override
    {
        return lanesAt(storage_.get() + chunk * layout_.totalBytes,
                       layout_);
    }

  private:
    ChunkLayout layout_;
    std::unique_ptr<std::byte[]> storage_;
};

/** Demand backend: each chunk is its own heap allocation. */
class SparseArena final : public ArenaBackend
{
  public:
    SparseArena(std::uint64_t num_buckets, std::uint32_t z,
                std::uint32_t chunk_buckets)
        : ArenaBackend(num_buckets, z, chunk_buckets),
          layout_(chunkLayout(chunkSlots(), chunkBuckets())),
          storage_(numChunks())
    {
    }

    const char *name() const override { return "sparse"; }

  protected:
    /**
     * First write into an implicit chunk, reached from tryPlace /
     * write-back under the chunk once-latch. The allocation is
     * deliberate hot-path work: its trigger is the public heap node
     * index the server already observes (file comment / DESIGN.md
     * Sec. 12), it happens at most once per chunk, and the
     * alternative - eager allocation - is exactly the dense backend.
     */
    PRORAM_HOT Lanes provideChunk(std::uint64_t chunk) override
    {
        // PRORAM_LINT_ALLOW(hot-alloc): once-per-chunk demand
        // materialization keyed on a public tree coordinate
        storage_[chunk].reset(new std::byte[layout_.totalBytes]);
        return lanesAt(storage_[chunk].get(), layout_);
    }

  private:
    ChunkLayout layout_;
    std::vector<std::unique_ptr<std::byte[]>> storage_;
};

#if defined(__linux__)

/**
 * Reserved-mapping backend: the whole arena is one MAP_NORESERVE
 * mapping (anonymous, or MAP_SHARED on a backing file), so untouched
 * chunks cost address space but no memory; materialization writes the
 * chunk's id/free lanes, committing only those pages.
 */
class MmapArena final : public ArenaBackend
{
  public:
    MmapArena(std::uint64_t num_buckets, std::uint32_t z,
              std::uint32_t chunk_buckets, const std::string &path,
              bool huge_pages)
        : ArenaBackend(num_buckets, z, chunk_buckets),
          layout_(chunkLayout(chunkSlots(), chunkBuckets())),
          mapBytes_(layout_.totalBytes * numChunks())
    {
        int flags = MAP_NORESERVE;
        if (path.empty()) {
            flags |= MAP_PRIVATE | MAP_ANONYMOUS;
        } else {
            fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
            fatal_if(fd_ < 0, "arena mmap backend: cannot open '",
                     path, "': ", std::strerror(errno));
            fatal_if(::ftruncate(fd_,
                                 static_cast<off_t>(mapBytes_)) != 0,
                     "arena mmap backend: cannot size '", path,
                     "' to ", mapBytes_, " bytes: ",
                     std::strerror(errno));
            flags |= MAP_SHARED;
        }
        void *m = ::mmap(nullptr, mapBytes_, PROT_READ | PROT_WRITE,
                         flags, fd_, 0);
        if (m == MAP_FAILED) {
            const int err = errno;
            closeFd();
            fatal("arena mmap backend: mmap of ", mapBytes_,
                  " bytes failed: ", std::strerror(err));
        }
        map_ = static_cast<std::byte *>(m);
        if (huge_pages) {
            // Advisory only: not every kernel/filesystem combination
            // supports THP here, so a refusal is not an error.
            if (::madvise(map_, mapBytes_, MADV_HUGEPAGE) != 0)
                warn("arena mmap backend: MADV_HUGEPAGE refused: ",
                     std::strerror(errno));
        }
    }

    ~MmapArena() override
    {
        if (map_ != nullptr)
            ::munmap(map_, mapBytes_);
        closeFd();
    }

    const char *name() const override { return "mmap"; }

  protected:
    Lanes provideChunk(std::uint64_t chunk) override
    {
        return lanesAt(map_ + chunk * layout_.totalBytes, layout_);
    }

  private:
    void closeFd()
    {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ChunkLayout layout_;
    std::uint64_t mapBytes_;
    std::byte *map_ = nullptr;
    int fd_ = -1;
};

#endif // __linux__

} // namespace

const char *
arenaKindName(ArenaKind kind)
{
    switch (kind) {
    case ArenaKind::Default:
        return "default";
    case ArenaKind::Dense:
        return "dense";
    case ArenaKind::Sparse:
        return "sparse";
    case ArenaKind::Mmap:
        return "mmap";
    }
    panic("unreachable arena kind");
}

ArenaKind
parseArenaKind(const std::string &name)
{
    if (name == "dense")
        return ArenaKind::Dense;
    if (name == "sparse")
        return ArenaKind::Sparse;
    if (name == "mmap")
        return ArenaKind::Mmap;
    fatal("PRORAM_ARENA: unknown backend '", name,
          "' (expected dense, sparse or mmap)");
}

ArenaOptions
ArenaOptions::resolved() const
{
    ArenaOptions r = *this;
    if (r.kind == ArenaKind::Default) {
        const char *env = envOrNull("PRORAM_ARENA");
        r.kind = env != nullptr ? parseArenaKind(env)
                                : ArenaKind::Dense;
    }
    if (r.chunkBuckets == 0) {
        const char *env = envOrNull("PRORAM_ARENA_CHUNK");
        if (env != nullptr) {
            char *end = nullptr;
            const unsigned long long v = std::strtoull(env, &end, 10);
            fatal_if(end == env || *end != '\0' || v == 0 ||
                         v > (1ULL << 20),
                     "PRORAM_ARENA_CHUNK: invalid chunk size '", env,
                     "'");
            r.chunkBuckets = static_cast<std::uint32_t>(v);
        } else {
            r.chunkBuckets = ArenaBackend::kDefaultChunkBuckets;
        }
    }
    if (r.kind == ArenaKind::Mmap && r.mmapPath.empty()) {
        const char *env = envOrNull("PRORAM_ARENA_FILE");
        if (env != nullptr)
            r.mmapPath = env;
    }
    if (!r.hugePages) {
        const char *env = envOrNull("PRORAM_ARENA_HUGE");
        r.hugePages = env != nullptr && env[0] == '1';
    }
    r.validate();
    return r;
}

void
ArenaOptions::validate() const
{
    fatal_if(chunkBuckets != 0 && !isPowerOf2(chunkBuckets),
             "arena chunk size must be a power of two, got ",
             chunkBuckets);
    fatal_if(!mmapPath.empty() && kind != ArenaKind::Mmap &&
                 kind != ArenaKind::Default,
             "arena mmapPath set but backend is ",
             arenaKindName(kind));
}

ArenaBackend::ArenaBackend(std::uint64_t num_buckets, std::uint32_t z,
                           std::uint32_t chunk_buckets)
    : numBuckets_(num_buckets), z_(z), chunkBuckets_(chunk_buckets)
{
    panic_if(chunk_buckets == 0 || !isPowerOf2(chunk_buckets),
             "arena chunk size must be a power of two");
    chunkShift_ = log2Floor(chunk_buckets);
    numChunks_ = (num_buckets + chunk_buckets - 1) / chunk_buckets;
    chunkBytes_ = chunkLayout(chunkSlots(), chunkBuckets_).totalBytes;
    chunks_ = std::make_unique<Chunk[]>(numChunks_);
    // std::array members default-construct unranked; rank them before
    // the backend sees any traffic (we are still in the ctor).
    for (auto &latch : latches_)
        latch.setRank(lock_order::Rank::Leaf);
}

ArenaBackend::~ArenaBackend() = default;

ArenaBackend::Lanes
ArenaBackend::materialize(std::uint64_t chunk)
{
    Lanes existing = lanes(chunk);
    if (existing.ids != nullptr)
        return existing;
    return materializeLocked(chunk, true);
}

ArenaBackend::Lanes
ArenaBackend::materializeLocked(std::uint64_t chunk, bool trace)
{
    const util::ScopedLock latch(latches_[chunk % kLatchStripes]);
    // Double-check under the latch: a racing first-touch may have
    // published while we waited.
    Lanes existing = lanes(chunk);
    if (existing.ids != nullptr)
        return existing;

    Lanes fresh = provideChunk(chunk);
    // All-dummy fill: id lane to the (non-zero) kInvalidBlock
    // sentinel, free lane to z. The payload lane stays unwritten -
    // dummy payloads are never read (readPath skips dummy slots and
    // tryPlace overwrites before any real read), and skipping it is
    // what keeps materialization (and the dense constructor) from
    // touching 2/3 of the chunk's pages.
    std::uninitialized_fill_n(fresh.ids, chunkSlots(), kInvalidBlock);
    std::uninitialized_fill_n(fresh.free, chunkBuckets_, z_);

    Chunk &c = chunks_[chunk];
    c.data = fresh.data;
    c.free = fresh.free;
    // Publication point: the release store of the id pointer is what
    // makes the plain data/free stores above and the lane fills
    // visible to any thread whose view()/lanes() acquire-load observes
    // non-null ids. Storing ids last is load-bearing.
    c.ids.store(fresh.ids, std::memory_order_release);
    // Telemetry counter only (chunksMaterialized() snapshots): relaxed
    // is enough, nothing is ordered against it.
    chunksMaterialized_.fetch_add(1, std::memory_order_relaxed);
    if (trace)
        PRORAM_TRACE_EVENT("arena", "materialize", "chunk", chunk);
    return fresh;
}

void
ArenaBackend::materializeAll()
{
    for (std::uint64_t c = 0; c < numChunks_; ++c)
        materializeLocked(c, false);
    PRORAM_TRACE_EVENT("arena", "materializeAll", "chunks",
                       numChunks_);
}

std::unique_ptr<ArenaBackend>
ArenaBackend::make(const ArenaOptions &opts, std::uint64_t num_buckets,
                   std::uint32_t z)
{
    const ArenaOptions r = opts.resolved();
    switch (r.kind) {
    case ArenaKind::Dense:
        return std::make_unique<DenseArena>(num_buckets, z,
                                            r.chunkBuckets);
    case ArenaKind::Sparse:
        return std::make_unique<SparseArena>(num_buckets, z,
                                             r.chunkBuckets);
    case ArenaKind::Mmap:
#if defined(__linux__)
        return std::make_unique<MmapArena>(num_buckets, z,
                                           r.chunkBuckets, r.mmapPath,
                                           r.hugePages);
#else
        fatal("arena mmap backend is only available on Linux");
#endif
    case ArenaKind::Default:
        break;
    }
    panic("unresolved arena kind");
}

} // namespace proram
