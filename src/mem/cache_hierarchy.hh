/**
 * @file
 * Two-level cache hierarchy (private L1 + shared, inclusive LLC)
 * matching the Table 1 configuration: 32 KB 4-way L1, 512 KB 8-way L2,
 * 128-byte lines.
 */

#ifndef PRORAM_MEM_CACHE_HIERARCHY_HH
#define PRORAM_MEM_CACHE_HIERARCHY_HH

#include <vector>

#include "mem/cache.hh"
#include "stats/stats.hh"
#include "util/types.hh"

namespace proram
{

/** Where a demand access was satisfied. */
enum class HitLevel : std::uint8_t { L1, L2, Miss };

/** Timing + geometry configuration of the hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1{32 * 1024, 4, 128};
    CacheConfig l2{512 * 1024, 8, 128};
    Cycles l1Latency{1};
    Cycles l2Latency{10};
};

/**
 * L1 + inclusive LLC. The LLC is the level the ORAM controller
 * interacts with: super-block prefetches are inserted here and the
 * merge scheme probes its tag array for neighbour residency.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig &cfg);

    /**
     * Demand access from the core.
     * @return the level that hit (Miss if memory must be accessed).
     */
    HitLevel lookup(BlockId block, OpType op);

    /**
     * Install a demand-fetched line in both levels.
     * @return LLC victims that must be written back (dirty only).
     */
    std::vector<EvictedLine> fillFromMemory(BlockId block, bool dirty);

    /**
     * Install a prefetched line in the LLC only. A prefetch never
     * forces a write-back: if the victim would be dirty, the
     * insertion is dropped instead (standard prefetch etiquette -
     * displacing dirty data would turn a free prefetch into a full
     * memory write).
     * @param clean_victim set to the clean line displaced, if any.
     * @return true if the line was installed.
     */
    bool insertPrefetch(BlockId block, BlockId *clean_victim);

    /** Tag-only residency test against the LLC (merge scheme). */
    bool probeLlc(BlockId block) const;

    /** Latency of a hit at the given level. */
    Cycles hitLatency(HitLevel level) const;

    const SetAssocCache &l1() const { return l1_; }
    const SetAssocCache &llc() const { return l2_; }

    /** Named-statistics view (hit/miss/eviction counters). */
    stats::StatGroup buildStatGroup() const;

    /**
     * Flush every dirty LLC line (end-of-run drain).
     * @return the dirty blocks, for the final write-back accounting.
     */
    std::vector<BlockId> drainDirty();

  private:
    /** Evict @p victim from the LLC: back-invalidate L1 (inclusion). */
    EvictedLine reconcileVictim(const EvictedLine &victim);

    HierarchyConfig cfg_;
    SetAssocCache l1_;
    SetAssocCache l2_;
};

} // namespace proram

#endif // PRORAM_MEM_CACHE_HIERARCHY_HH
