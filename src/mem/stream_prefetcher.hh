/**
 * @file
 * Traditional multi-stream prefetcher (Palacharla & Kessler style).
 *
 * Used only for the Fig. 5 experiment: the paper shows this class of
 * prefetcher helps on DRAM (spare bandwidth exists between demand
 * accesses) but is useless-to-harmful on ORAM (every prefetch occupies
 * the fully-serialized ORAM controller). The prefetcher is
 * timing-agnostic: it observes the demand miss stream and proposes
 * block ids to prefetch; the memory backend decides when (and whether)
 * bandwidth allows issuing them.
 */

#ifndef PRORAM_MEM_STREAM_PREFETCHER_HH
#define PRORAM_MEM_STREAM_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "stats/stats.hh"
#include "util/types.hh"

namespace proram
{

/** Stream prefetcher parameters. */
struct PrefetcherConfig
{
    /** Number of concurrently tracked streams. */
    std::uint32_t numStreams = 8;
    /** Prefetches issued per trained-stream trigger. */
    std::uint32_t degree = 2;
    /** How far ahead of the demand stream to run. */
    std::uint32_t distance = 4;
    /** Consecutive unit-stride misses required to train a stream. */
    std::uint32_t trainThreshold = 2;
};

/**
 * Detects ascending and descending unit-stride block streams in the
 * demand miss sequence and proposes prefetch candidates.
 */
class StreamPrefetcher
{
  public:
    explicit StreamPrefetcher(const PrefetcherConfig &cfg);

    /**
     * Observe a demand access that reached memory (LLC miss) or hit a
     * previously prefetched block.
     * @return block ids the prefetcher wants fetched, nearest first.
     */
    std::vector<BlockId> observe(BlockId block);

    std::uint64_t issued() const { return issued_.value(); }
    std::uint64_t streamsTrained() const { return trained_.value(); }

  private:
    struct Stream
    {
        bool valid = false;
        bool trained = false;
        BlockId lastBlock = kInvalidBlock;
        /** +1 ascending, -1 descending. */
        int direction = 0;
        std::uint32_t confidence = 0;
        /** Furthest block already requested for this stream. */
        BlockId frontier = kInvalidBlock;
        std::uint64_t lruStamp = 0;
    };

    Stream *findStream(BlockId block, int *direction_out);
    Stream &allocateStream(BlockId block);

    PrefetcherConfig cfg_;
    std::vector<Stream> streams_;
    std::uint64_t lruClock_ = 0;

    stats::Counter issued_;
    stats::Counter trained_;
};

} // namespace proram

#endif // PRORAM_MEM_STREAM_PREFETCHER_HH
