/**
 * @file
 * Set-associative write-back cache with true-LRU replacement.
 *
 * All addresses at and below this level are *block ids* (byte address
 * divided by the line size); the CPU front end does the conversion.
 * The cache stores no data payloads - the simulator's functional data
 * lives in the ORAM/DRAM backends - only tags and state bits.
 */

#ifndef PRORAM_MEM_CACHE_HH
#define PRORAM_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "stats/stats.hh"
#include "util/types.hh"

namespace proram
{

/** Geometry of one cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 512 * 1024;
    std::uint32_t ways = 8;
    std::uint32_t lineBytes = 128;

    std::uint64_t numLines() const { return sizeBytes / lineBytes; }
    std::uint64_t numSets() const { return numLines() / ways; }
};

/** A line pushed out of the cache by an insertion. */
struct EvictedLine
{
    BlockId block = kInvalidBlock;
    bool dirty = false;
};

/**
 * A single set-associative cache level. Lookup/insert/probe/invalidate
 * plus hit/miss statistics. probe() deliberately leaves LRU state
 * untouched: it models the tag-array-only check the dynamic super block
 * scheme performs to test whether a neighbour block is resident
 * (paper Sec. 4.5.2).
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &cfg);

    /**
     * Demand access. On a hit, updates LRU and the dirty bit (for
     * writes). @return true on hit.
     */
    bool access(BlockId block, OpType op);

    /** Tag-array check only; no LRU or state update. */
    bool probe(BlockId block) const;

    /** Mark a resident line dirty (used for L1 victim write-back). */
    void markDirty(BlockId block);

    /**
     * Insert a line, evicting the set's LRU victim if the set is full.
     * @param low_priority insert at LRU position instead of MRU -
     *        used for prefetches so that useless ones are evicted
     *        before demand-fetched lines (pollution control).
     * @return the victim, if one was evicted.
     */
    std::optional<EvictedLine> insert(BlockId block, bool dirty,
                                      bool low_priority = false);

    /**
     * Drop a line if present. @return the line's dirty state, or
     * nullopt if it was not resident.
     */
    std::optional<bool> invalidate(BlockId block);

    /**
     * Which line would inserting @p block evict? No state change.
     * @return nullopt if a free way (or the block itself) exists.
     */
    std::optional<EvictedLine> peekVictim(BlockId block) const;

    /** Dirty state of a resident line, nullopt if absent. */
    std::optional<bool> peekDirty(BlockId block) const;

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t dirtyEvictions() const { return dirtyEvictions_.value(); }

    const CacheConfig &config() const { return cfg_; }

    /** Enumerate resident blocks (testing / drain support). */
    std::vector<BlockId> residentBlocks() const;

  private:
    struct Line
    {
        BlockId block = kInvalidBlock;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    std::uint64_t setIndex(BlockId block) const;
    Line *findLine(BlockId block);
    const Line *findLine(BlockId block) const;

    CacheConfig cfg_;
    std::uint64_t numSets_;
    std::vector<Line> lines_;
    std::uint64_t lruClock_ = 0;

    stats::Counter hits_;
    stats::Counter misses_;
    stats::Counter dirtyEvictions_;
};

} // namespace proram

#endif // PRORAM_MEM_CACHE_HH
