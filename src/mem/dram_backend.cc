#include "mem/dram_backend.hh"

#include <algorithm>

namespace proram
{

DramBackend::DramBackend(const DramBackendConfig &cfg)
    : cfg_(cfg), dram_(cfg.dram)
{
    if (cfg.prefetch)
        pf_ = std::make_unique<StreamPrefetcher>(cfg.prefetcher);
}

void
DramBackend::issuePrefetches(Cycles now, BlockId trigger)
{
    if (!pf_)
        return;
    for (BlockId cand : pf_->observe(trigger)) {
        if (buffer_.count(cand))
            continue;
        const Cycles ready = dram_.schedule(now);
        // FIFO entries may be stale (consumed by a demand hit); keep
        // popping until the map actually shrinks below capacity.
        while (buffer_.size() >= cfg_.bufferLines &&
               !bufferFifo_.empty()) {
            buffer_.erase(bufferFifo_.front());
            bufferFifo_.pop_front();
        }
        buffer_[cand] = ready;
        bufferFifo_.push_back(cand);
    }
}

Cycles
DramBackend::demandAccess(Cycles now, BlockId block, OpType op)
{
    (void)op;
    Cycles completion;
    auto it = buffer_.find(block);
    if (it != buffer_.end()) {
        completion = std::max(now, it->second);
        buffer_.erase(it);
        // Lazy FIFO cleanup: the id is dropped when it reaches the
        // front; correctness only needs buffer_ membership.
        ++bufferHits_;
    } else {
        completion = dram_.schedule(now);
    }
    issuePrefetches(now, block);
    return completion;
}

void
DramBackend::writebackAccess(Cycles now, BlockId block)
{
    (void)block;
    dram_.schedule(now);
}

void
DramBackend::onDemandTouch(Cycles now, BlockId block)
{
    (void)now;
    (void)block;
}

std::uint64_t
DramBackend::memAccessCount() const
{
    return dram_.numTransfers();
}

} // namespace proram
