#include "mem/cache_hierarchy.hh"

#include "util/logging.hh"

namespace proram
{

CacheHierarchy::CacheHierarchy(const HierarchyConfig &cfg)
    : cfg_(cfg), l1_(cfg.l1), l2_(cfg.l2)
{
    fatal_if(cfg.l1.lineBytes != cfg.l2.lineBytes,
             "L1 and LLC must share a line size");
}

HitLevel
CacheHierarchy::lookup(BlockId block, OpType op)
{
    if (l1_.access(block, op))
        return HitLevel::L1;

    if (l2_.access(block, op)) {
        // Fill L1 from L2; an L1 victim writes back into the
        // (inclusive) LLC, so it only needs its dirty bit merged.
        if (auto victim = l1_.insert(block, op == OpType::Write)) {
            if (victim->dirty)
                l2_.markDirty(victim->block);
        }
        return HitLevel::L2;
    }
    return HitLevel::Miss;
}

EvictedLine
CacheHierarchy::reconcileVictim(const EvictedLine &victim)
{
    EvictedLine out = victim;
    // Inclusion: an LLC eviction back-invalidates the L1 copy; if the
    // L1 copy was dirtier than the LLC's, the write-back carries it.
    if (auto l1_dirty = l1_.invalidate(victim.block))
        out.dirty = out.dirty || *l1_dirty;
    return out;
}

std::vector<EvictedLine>
CacheHierarchy::fillFromMemory(BlockId block, bool dirty)
{
    std::vector<EvictedLine> writebacks;

    if (auto l2_victim = l2_.insert(block, dirty)) {
        EvictedLine v = reconcileVictim(*l2_victim);
        if (v.dirty)
            writebacks.push_back(v);
    }
    if (auto l1_victim = l1_.insert(block, dirty)) {
        if (l1_victim->dirty)
            l2_.markDirty(l1_victim->block);
    }
    return writebacks;
}

bool
CacheHierarchy::insertPrefetch(BlockId block, BlockId *clean_victim)
{
    if (clean_victim)
        *clean_victim = kInvalidBlock;
    if (l2_.probe(block))
        return true; // already resident; nothing to do

    // Refuse insertions whose victim is dirty (in L1 or L2).
    if (auto victim = l2_.peekVictim(block)) {
        bool dirty = victim->dirty;
        if (auto l1_dirty = l1_.peekDirty(victim->block))
            dirty = dirty || *l1_dirty;
        if (dirty)
            return false;
    }

    auto l2_victim = l2_.insert(block, false, /*low_priority=*/true);
    if (!l2_victim)
        return true;
    EvictedLine v = reconcileVictim(*l2_victim);
    panic_if(v.dirty, "prefetch displaced a dirty line despite check");
    if (clean_victim)
        *clean_victim = v.block;
    return true;
}

bool
CacheHierarchy::probeLlc(BlockId block) const
{
    return l2_.probe(block);
}

Cycles
CacheHierarchy::hitLatency(HitLevel level) const
{
    switch (level) {
      case HitLevel::L1:
        return cfg_.l1Latency;
      case HitLevel::L2:
        return cfg_.l1Latency + cfg_.l2Latency;
      case HitLevel::Miss:
        return Cycles{0};
    }
    panic("unreachable hit level");
}

stats::StatGroup
CacheHierarchy::buildStatGroup() const
{
    stats::StatGroup g("caches");
    const SetAssocCache *l1 = &l1_;
    const SetAssocCache *l2 = &l2_;
    g.addValue("l1Hits", "L1 hits",
               [l1] { return static_cast<double>(l1->hits()); });
    g.addValue("l1Misses", "L1 misses",
               [l1] { return static_cast<double>(l1->misses()); });
    g.addValue("llcHits", "LLC hits",
               [l2] { return static_cast<double>(l2->hits()); });
    g.addValue("llcMisses", "LLC misses",
               [l2] { return static_cast<double>(l2->misses()); });
    g.addValue("llcDirtyEvictions", "dirty LLC victims", [l2] {
        return static_cast<double>(l2->dirtyEvictions());
    });
    return g;
}

std::vector<BlockId>
CacheHierarchy::drainDirty()
{
    std::vector<BlockId> dirty;
    for (BlockId b : l2_.residentBlocks()) {
        auto l2_dirty = l2_.invalidate(b);
        bool is_dirty = l2_dirty.value_or(false);
        if (auto l1_dirty = l1_.invalidate(b))
            is_dirty = is_dirty || *l1_dirty;
        if (is_dirty)
            dirty.push_back(b);
    }
    return dirty;
}

} // namespace proram
