/**
 * @file
 * Minimal gem5-flavoured statistics package: named scalar counters,
 * distributions, and formulas, registered into a StatGroup that can be
 * dumped as text.
 */

#ifndef PRORAM_STATS_STATS_HH
#define PRORAM_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace proram::stats
{

/** A monotonically growing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A sampled distribution: tracks count, sum, min, max and mean.
 * Used for stash occupancy, super-block sizes, queue delays etc.
 */
class Distribution
{
  public:
    void sample(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bucket histogram over [0, buckets*bucketWidth); out-of-range
 * samples clamp into the last bucket.
 */
class Histogram
{
  public:
    Histogram(std::size_t num_buckets, double bucket_width);

    void sample(double v);

    std::size_t numBuckets() const { return counts_.size(); }
    double bucketWidth() const { return bucketWidth_; }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::uint64_t total() const { return total_; }
    void reset();

  private:
    std::vector<std::uint64_t> counts_;
    double bucketWidth_;
    std::uint64_t total_ = 0;
};

/** One named stat inside a group: name, description, value closure. */
struct StatEntry
{
    std::string name;
    std::string desc;
    std::function<double()> value;
};

/**
 * A named collection of statistics belonging to one simulated
 * component. Components register their counters at construction; the
 * experiment harness reads or prints them after a run.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addScalar(const std::string &name, const std::string &desc,
                   const Counter &c);
    void addValue(const std::string &name, const std::string &desc,
                  std::function<double()> fn);

    const std::string &name() const { return name_; }
    const std::vector<StatEntry> &entries() const { return entries_; }

    /** Look up a stat by name; panics if absent (simulator bug). */
    double get(const std::string &name) const;

    /** Render "group.stat value # desc" lines, gem5 stats.txt style. */
    std::string dump() const;

  private:
    std::string name_;
    std::vector<StatEntry> entries_;
};

} // namespace proram::stats

#endif // PRORAM_STATS_STATS_HH
