/**
 * @file
 * Minimal gem5-flavoured statistics package: named scalar counters,
 * distributions, and formulas, registered into a StatGroup that can be
 * dumped as text.
 */

#ifndef PRORAM_STATS_STATS_HH
#define PRORAM_STATS_STATS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace proram::stats
{

/** A monotonically growing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A monotonically growing scalar that may be bumped from several
 * threads at once (relaxed ordering: it is a pure event count, never
 * used for inter-thread synchronisation). Drop-in for Counter where
 * the concurrent controller's workers share a component.
 */
class AtomicCounter
{
  public:
    AtomicCounter() = default;

    AtomicCounter &operator++()
    {
        value_.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }
    AtomicCounter &operator+=(std::uint64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
        return *this;
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * A sampled distribution: tracks count, sum, min, max and mean.
 * Used for stash occupancy, super-block sizes, queue delays etc.
 */
class Distribution
{
  public:
    void sample(double v);

    /** Fold @p other into this distribution (sharded collection:
     *  each worker samples a private copy, merged once at the end). */
    void merge(const Distribution &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bucket histogram over [0, buckets*bucketWidth); out-of-range
 * samples clamp into the last bucket.
 */
class Histogram
{
  public:
    Histogram(std::size_t num_buckets, double bucket_width);

    void sample(double v);

    std::size_t numBuckets() const { return counts_.size(); }
    double bucketWidth() const { return bucketWidth_; }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::uint64_t total() const { return total_; }
    void reset();

  private:
    std::vector<std::uint64_t> counts_;
    double bucketWidth_;
    std::uint64_t total_ = 0;
};

/**
 * Log2-bucketed histogram over unsigned samples: bucket i counts
 * values whose bit width is i, i.e. bucket 0 holds v == 0, bucket i
 * holds v in [2^(i-1), 2^i). Constant 65-bucket footprint covers the
 * full uint64 range, which is what makes it safe to histogram
 * latencies whose magnitude is unknown up front (the observability
 * layer's latency/size distributions).
 */
class LogHistogram
{
  public:
    static constexpr std::size_t kBuckets = 65;

    void sample(std::uint64_t v);

    /** Fold @p other into this histogram (sharded collection). */
    void merge(const LogHistogram &other);

    std::uint64_t total() const { return total_; }
    std::uint64_t min() const { return total_ ? min_ : 0; }
    std::uint64_t max() const { return total_ ? max_ : 0; }
    double sum() const { return sum_; }
    double mean() const { return total_ ? sum_ / total_ : 0.0; }

    std::uint64_t bucketCount(std::size_t i) const
    {
        return counts_[i];
    }
    /** Inclusive lower edge of bucket @p i (0, 1, 2, 4, 8, ...). */
    static std::uint64_t bucketLo(std::size_t i);
    /** Exclusive upper edge of bucket @p i. */
    static std::uint64_t bucketHi(std::size_t i);
    /** Index of the last non-empty bucket (0 when empty). */
    std::size_t maxBucket() const;

    /** Smallest bucket upper edge covering fraction @p p of samples
     *  (a coarse percentile; exact within a factor of two). */
    std::uint64_t percentileUpperBound(double p) const;

    void reset();

  private:
    std::uint64_t counts_[kBuckets] = {};
    std::uint64_t total_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    double sum_ = 0.0;
};

/** One named stat inside a group: name, description, value closure. */
struct StatEntry
{
    std::string name;
    std::string desc;
    std::function<double()> value;
};

/**
 * A named collection of statistics belonging to one simulated
 * component. Components register their counters at construction; the
 * experiment harness reads or prints them after a run.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addScalar(const std::string &name, const std::string &desc,
                   const Counter &c);
    void addValue(const std::string &name, const std::string &desc,
                  std::function<double()> fn);

    const std::string &name() const { return name_; }
    const std::vector<StatEntry> &entries() const { return entries_; }

    /** Look up a stat by name; panics if absent (simulator bug). */
    double get(const std::string &name) const;

    /** Render "group.stat value # desc" lines, gem5 stats.txt style. */
    std::string dump() const;

    /** Write {"stat": value, ...} into @p w (machine-readable twin
     *  of dump(); the writer must be inside an object with the
     *  group's key already emitted). */
    void dumpJson(class JsonWriter &w) const;

  private:
    std::string name_;
    std::vector<StatEntry> entries_;
};

} // namespace proram::stats

#endif // PRORAM_STATS_STATS_HH
