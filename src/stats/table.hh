/**
 * @file
 * Text table formatter used by the benchmark harness to print
 * paper-style result rows (figures/tables from the PrORAM evaluation).
 */

#ifndef PRORAM_STATS_TABLE_HH
#define PRORAM_STATS_TABLE_HH

#include <string>
#include <vector>

namespace proram::stats
{

/**
 * A simple column-aligned text table. Cells are strings; numeric
 * helpers format with fixed precision. Rendered with a header rule,
 * suitable for diffing bench output across runs.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent add*() calls fill it. */
    Table &row();

    Table &add(const std::string &cell);
    Table &add(double v, int precision = 3);
    Table &addInt(std::uint64_t v);
    /** Format as a percentage with sign, e.g. +20.2%. */
    Table &addPct(double fraction, int precision = 1);

    /** Render the aligned table. */
    std::string str() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace proram::stats

#endif // PRORAM_STATS_TABLE_HH
