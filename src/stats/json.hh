/**
 * @file
 * Minimal streaming JSON writer: just enough for the machine-readable
 * stats/metrics dumps and the Chrome trace output. Handles comma
 * placement and string escaping; the caller is responsible for
 * balanced begin/end calls (checked with panics, not silently).
 */

#ifndef PRORAM_STATS_JSON_HH
#define PRORAM_STATS_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace proram::stats
{

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(std::string_view s);

/** Streaming writer. Values may be objects, arrays, strings, numbers
 *  or booleans; keys are only legal directly inside an object. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os);
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    void key(std::string_view k);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(bool v);

  private:
    enum class Ctx : std::uint8_t { Object, Array };

    /** Emit the separating comma / nothing, as context requires. */
    void preValue();

    std::ostream &os_;
    std::vector<Ctx> stack_;
    bool needComma_ = false;
    bool pendingKey_ = false;
};

} // namespace proram::stats

#endif // PRORAM_STATS_JSON_HH
