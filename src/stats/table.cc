#include "stats/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace proram::stats
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    fatal_if(headers_.empty(), "Table needs at least one column");
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::add(const std::string &cell)
{
    panic_if(rows_.empty(), "Table::add before Table::row");
    panic_if(rows_.back().size() >= headers_.size(),
             "row has more cells than headers");
    rows_.back().push_back(cell);
    return *this;
}

Table &
Table::add(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return add(os.str());
}

Table &
Table::addInt(std::uint64_t v)
{
    return add(std::to_string(v));
}

Table &
Table::addPct(double fraction, int precision)
{
    std::ostringstream os;
    os << std::showpos << std::fixed << std::setprecision(precision)
       << fraction * 100.0 << "%";
    return add(os.str());
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &r : rows_) {
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    }

    std::ostringstream os;
    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << cell;
            if (c + 1 < headers_.size())
                os << "  ";
        }
        os << "\n";
    };

    emitRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &r : rows_)
        emitRow(r);
    return os.str();
}

} // namespace proram::stats
