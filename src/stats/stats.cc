#include "stats/stats.hh"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <limits>
#include <sstream>

#include "stats/json.hh"
#include "util/logging.hh"

namespace proram::stats
{

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
Distribution::merge(const Distribution &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

Histogram::Histogram(std::size_t num_buckets, double bucket_width)
    : counts_(num_buckets, 0), bucketWidth_(bucket_width)
{
    fatal_if(num_buckets == 0, "Histogram needs at least one bucket");
    fatal_if(bucket_width <= 0.0, "Histogram bucket width must be > 0");
}

void
Histogram::sample(double v)
{
    auto idx = static_cast<std::size_t>(std::max(0.0, v) / bucketWidth_);
    if (idx >= counts_.size())
        idx = counts_.size() - 1;
    ++counts_[idx];
    ++total_;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

void
LogHistogram::sample(std::uint64_t v)
{
    if (total_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++counts_[std::bit_width(v)];
    ++total_;
    sum_ += static_cast<double>(v);
}

void
LogHistogram::merge(const LogHistogram &other)
{
    if (other.total_ == 0)
        return;
    if (total_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    for (std::size_t i = 0; i < kBuckets; ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
}

std::uint64_t
LogHistogram::bucketLo(std::size_t i)
{
    if (i == 0)
        return 0;
    return std::uint64_t{1} << (i - 1);
}

std::uint64_t
LogHistogram::bucketHi(std::size_t i)
{
    if (i == 0)
        return 1;
    if (i >= 64)
        return std::numeric_limits<std::uint64_t>::max();
    return std::uint64_t{1} << i;
}

std::size_t
LogHistogram::maxBucket() const
{
    for (std::size_t i = kBuckets; i-- > 0;) {
        if (counts_[i])
            return i;
    }
    return 0;
}

std::uint64_t
LogHistogram::percentileUpperBound(double p) const
{
    if (total_ == 0)
        return 0;
    const double target = p * static_cast<double>(total_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += counts_[i];
        if (static_cast<double>(seen) >= target)
            return bucketHi(i);
    }
    return bucketHi(kBuckets - 1);
}

void
LogHistogram::reset()
{
    std::fill(std::begin(counts_), std::end(counts_), 0);
    total_ = 0;
    min_ = max_ = 0;
    sum_ = 0.0;
}

void
StatGroup::addScalar(const std::string &name, const std::string &desc,
                     const Counter &c)
{
    const Counter *ptr = &c;
    entries_.push_back(
        {name, desc, [ptr] { return static_cast<double>(ptr->value()); }});
}

void
StatGroup::addValue(const std::string &name, const std::string &desc,
                    std::function<double()> fn)
{
    entries_.push_back({name, desc, std::move(fn)});
}

double
StatGroup::get(const std::string &name) const
{
    for (const auto &e : entries_) {
        if (e.name == name)
            return e.value();
    }
    panic("unknown stat '", name, "' in group '", name_, "'");
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &e : entries_) {
        os << std::left << std::setw(40) << (name_ + "." + e.name)
           << std::right << std::setw(16) << std::fixed
           << std::setprecision(4) << e.value() << "  # " << e.desc
           << "\n";
    }
    return os.str();
}

void
StatGroup::dumpJson(JsonWriter &w) const
{
    w.beginObject();
    for (const auto &e : entries_) {
        w.key(e.name);
        w.value(e.value());
    }
    w.endObject();
}

} // namespace proram::stats
