#include "stats/json.hh"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/logging.hh"

namespace proram::stats
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream &os) : os_(os) {}

JsonWriter::~JsonWriter()
{
    // Unbalanced begin/end is a caller bug; surface it loudly in
    // debug-style runs instead of emitting truncated JSON silently.
    if (!stack_.empty())
        warn("JsonWriter destroyed with ", stack_.size(),
             " unclosed scope(s)");
}

void
JsonWriter::preValue()
{
    panic_if(!stack_.empty() && stack_.back() == Ctx::Object &&
                 !pendingKey_,
             "JSON value inside an object requires a key");
    if (needComma_ && !pendingKey_)
        os_ << ",";
    needComma_ = false;
    pendingKey_ = false;
}

void
JsonWriter::beginObject()
{
    preValue();
    os_ << "{";
    stack_.push_back(Ctx::Object);
    needComma_ = false;
}

void
JsonWriter::endObject()
{
    panic_if(stack_.empty() || stack_.back() != Ctx::Object,
             "endObject outside an object");
    panic_if(pendingKey_, "endObject with a dangling key");
    stack_.pop_back();
    os_ << "}";
    needComma_ = true;
}

void
JsonWriter::beginArray()
{
    preValue();
    os_ << "[";
    stack_.push_back(Ctx::Array);
    needComma_ = false;
}

void
JsonWriter::endArray()
{
    panic_if(stack_.empty() || stack_.back() != Ctx::Array,
             "endArray outside an array");
    stack_.pop_back();
    os_ << "]";
    needComma_ = true;
}

void
JsonWriter::key(std::string_view k)
{
    panic_if(stack_.empty() || stack_.back() != Ctx::Object,
             "JSON key outside an object");
    panic_if(pendingKey_, "two keys in a row");
    if (needComma_)
        os_ << ",";
    os_ << "\"" << jsonEscape(k) << "\":";
    needComma_ = false;
    pendingKey_ = true;
}

void
JsonWriter::value(std::string_view v)
{
    preValue();
    os_ << "\"" << jsonEscape(v) << "\"";
    needComma_ = true;
}

void
JsonWriter::value(double v)
{
    preValue();
    if (std::isfinite(v)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        os_ << buf;
    } else {
        os_ << "null"; // JSON has no NaN/Inf
    }
    needComma_ = true;
}

void
JsonWriter::value(std::uint64_t v)
{
    preValue();
    os_ << v;
    needComma_ = true;
}

void
JsonWriter::value(std::int64_t v)
{
    preValue();
    os_ << v;
    needComma_ = true;
}

void
JsonWriter::value(bool v)
{
    preValue();
    os_ << (v ? "true" : "false");
    needComma_ = true;
}

} // namespace proram::stats
